// Reproduces Figures 14 and 15: our algorithm specialized to stale-value
// approximations (theta' = Cvr/Cqr = 0.5) vs Divergence Caching [HSW94]
// with window k = 23, as the average staleness constraint delta_avg varies
// over 0..14 updates; Figure 14 uses Tq = 1, Figure 15 Tq = 5. Costs:
// Cvr = 1, Cqr = 2.
#include <cstdio>

#include "bench_util.h"
#include "sim/experiments.h"

namespace {

void RunFigure(const char* id, double tq) {
  using namespace apc;
  char title[96];
  std::snprintf(title, sizeof(title),
                "vs Divergence Caching (stale values), Tq = %.0f", tq);
  bench::Banner(id, title);

  std::printf("%10s | %16s %16s %10s\n", "delta_avg", "Divergence[HSW94]",
              "our algorithm", "gain");
  for (double delta_avg : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0}) {
    StaleExperiment exp;
    exp.tq = tq;
    exp.delta_avg = delta_avg;
    exp.rho = 1.0;
    exp.horizon = 60000;
    exp.warmup = 5000;

    SimResult divergence = RunStaleDivergenceCaching(exp);
    SimResult ours = RunStaleAdaptive(exp);
    std::printf("%10.0f | %16.3f %16.3f %9.1f%%\n", delta_avg,
                divergence.cost_rate, ours.cost_rate,
                100.0 * (1.0 - ours.cost_rate / divergence.cost_rate));
  }
}

}  // namespace

int main() {
  RunFigure("Figure 14", /*tq=*/1.0);
  RunFigure("Figure 15", /*tq=*/5.0);
  apc::bench::Note("");
  apc::bench::Note("paper: our algorithm shows a modest improvement over "
                   "Divergence Caching across the constraint range");
  apc::bench::Note("here: ours wins decisively at tight constraints "
                   "(subsumption of the cache/don't-cache decision) and "
                   "sits within ~10% of the projection baseline at loose "
                   "constraints, where that baseline computes near-oracle "
                   "interior optima; see EXPERIMENTS.md E11");
  return 0;
}
