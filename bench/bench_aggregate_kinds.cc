// Extension bench: how the four bounded aggregates compare on the same
// cached data, and what width distribution the algorithm converges to.
// SUM pays for every wide member; AVG divides the constraint burden by the
// group size; MAX/MIN exploit candidate elimination and are the cheapest —
// the §4.6 effect, generalized across kinds.
#include <cstdio>

#include "bench_util.h"
#include "core/adaptive_policy.h"
#include "sim/experiments.h"
#include "stats/histogram.h"

int main() {
  using namespace apc;
  bench::Banner("Extension (aggregates)",
                "bounded SUM / AVG / MAX / MIN on the network trace");

  struct Mix {
    const char* name;
    double max_f, min_f, avg_f;
  };
  const Mix mixes[] = {{"SUM", 0, 0, 0},
                       {"AVG", 0, 0, 1.0},
                       {"MAX", 1.0, 0, 0},
                       {"MIN", 0, 1.0, 0}};

  std::printf("%6s | %12s %12s  (delta_avg = 100K / exact)\n", "kind",
              "cost @100K", "cost @0");
  for (const Mix& mix : mixes) {
    double costs[2];
    int i = 0;
    for (double delta_avg : {100e3, 0.0}) {
      NetworkExperiment exp;
      exp.delta_avg = delta_avg;
      exp.rho = 0.5;
      exp.delta0 = 1e3;
      SimConfig config = exp.ToSimConfig();
      config.workload.query.max_fraction = mix.max_f;
      config.workload.query.min_fraction = mix.min_f;
      config.workload.query.avg_fraction = mix.avg_f;
      AdaptivePolicy prototype(exp.ToPolicyParams(), 5);
      costs[i++] = RunIntervalSimulation(
                       config, MakeTraceStreams(SharedNetworkTrace()),
                       prototype)
                       .cost_rate;
    }
    std::printf("%6s | %12.3f %12.3f\n", mix.name, costs[0], costs[1]);
  }
  bench::Note("AVG is the cheapest SUM-family query (constraint scales "
              "with group size); MAX/MIN profit from candidate "
              "elimination, dramatically so at exact precision");

  bench::Banner("Extension (width distribution)",
                "converged raw widths across the 50 sources (SUM, 100K)");
  NetworkExperiment exp;
  exp.delta_avg = 100e3;
  exp.rho = 0.5;
  AdaptivePolicy prototype(exp.ToPolicyParams(), 5);
  Histogram widths = Histogram::LogSpaced(1e2, 1e7, 10);
  RunIntervalSimulation(
      exp.ToSimConfig(), MakeTraceStreams(SharedNetworkTrace()), prototype,
      [&](int64_t now, const CacheSystem& system) {
        if (now % 600 != 0) return;  // sample every 10 minutes
        for (size_t id = 0; id < system.num_sources(); ++id) {
          widths.Add(system.source(static_cast<int>(id))->raw_width());
        }
      });
  std::printf("%s", widths.ToString().c_str());
  std::printf("  p10 %.0f | median %.0f | p90 %.0f  (delta_avg/10 = %.0f)\n",
              widths.Quantile(0.1), widths.Quantile(0.5),
              widths.Quantile(0.9), exp.delta_avg / 10.0);
  bench::Note("widths are not one number: quiet hosts sit orders of "
              "magnitude below the busy ones — per-value adaptation is the "
              "point of the algorithm");
  return 0;
}
