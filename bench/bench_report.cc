#include "bench_report.h"

#include <cmath>
#include <cstdio>

namespace apc::bench {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderNum(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace

JsonRow& JsonRow::Raw(const std::string& key, std::string rendered) {
  fields_.emplace_back(key, std::move(rendered));
  return *this;
}

JsonRow& JsonRow::Int(const std::string& key, int64_t value) {
  return Raw(key, std::to_string(value));
}

JsonRow& JsonRow::Num(const std::string& key, double value) {
  return Raw(key, RenderNum(value));
}

JsonRow& JsonRow::Str(const std::string& key, const std::string& value) {
  return Raw(key, "\"" + EscapeJson(value) + "\"");
}

JsonRow& JsonRow::Bool(const std::string& key, bool value) {
  return Raw(key, value ? "true" : "false");
}

std::string JsonRow::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + EscapeJson(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)) {}

JsonRow& BenchReport::AddRun() {
  runs_.emplace_back();
  return runs_.back();
}

std::string BenchReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"bench\": \"" + EscapeJson(name_) + "\",\n";
  out += "  \"schema\": \"apcache-bench-v1\",\n";
  out += "  \"meta\": " + meta_.ToJson() + ",\n";
  out += "  \"runs\": [\n";
  size_t i = 0;
  for (const JsonRow& run : runs_) {
    out += "    " + run.ToJson();
    out += ++i < runs_.size() ? ",\n" : "\n";
  }
  out += "  ]\n}";
  return out;
}

bool BenchReport::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = ToJson();
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace apc::bench
