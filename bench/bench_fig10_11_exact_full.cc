// Reproduces Figures 10 and 11: our algorithm vs the adaptive exact-caching
// baseline [WJH97], SUM queries over the network trace, full cache
// (chi = 50), query periods Tq in {0.5, 1, 2, 5}; Figure 10 uses theta = 1,
// Figure 11 theta = 4. Curves: exact caching (x tuned per run), ours with
// delta1 = delta0 (exact-or-nothing mode), and ours with delta1 = inf at
// delta_avg in {0, 100K, 500K}.
#include <cstdio>

#include "bench_util.h"
#include "sim/experiments.h"

namespace {

void RunFigure(const char* id, double theta, size_t chi) {
  using namespace apc;
  char title[96];
  std::snprintf(title, sizeof(title),
                "vs exact caching, theta = %.0f, chi = %zu", theta, chi);
  bench::Banner(id, title);

  std::printf("%5s | %12s %14s | %12s %12s %12s\n", "Tq", "exact[WJH97]",
              "ours d1=d0", "d1=inf,d=0", "d1=inf,100K", "d1=inf,500K");
  for (double tq : {0.5, 1.0, 2.0, 5.0}) {
    NetworkExperiment base;
    base.tq = tq;
    base.theta = theta;
    base.chi = chi;
    base.rho = 0.5;
    base.delta0 = 1e3;

    int best_x = 0;
    NetworkExperiment exact_exp = base;
    exact_exp.delta_avg = 0.0;  // constraints ignored by the baseline
    SimResult exact = RunNetworkExactCaching(
        exact_exp, DefaultExactCachingXGrid(), &best_x);

    NetworkExperiment ours_exact = base;
    ours_exact.delta_avg = 0.0;
    ours_exact.delta1 = 1e3;  // = delta0
    SimResult r_exact_mode = RunNetworkAdaptive(ours_exact);

    SimResult r_inf[3];
    int i = 0;
    for (double delta_avg : {0.0, 100e3, 500e3}) {
      NetworkExperiment exp = base;
      exp.delta_avg = delta_avg;
      exp.delta1 = kInfinity;
      r_inf[i++] = RunNetworkAdaptive(exp);
    }

    std::printf("%5.1f | %9.2f(x=%2d) %14.2f | %12.2f %12.2f %12.2f\n", tq,
                exact.cost_rate, best_x, r_exact_mode.cost_rate,
                r_inf[0].cost_rate, r_inf[1].cost_rate, r_inf[2].cost_rate);
  }
  bench::Note("paper: ours with delta1=delta0 tracks exact caching; "
              "delta1=inf wins by a growing margin as delta_avg rises");
}

}  // namespace

int main() {
  RunFigure("Figure 10", /*theta=*/1.0, /*chi=*/50);
  RunFigure("Figure 11", /*theta=*/4.0, /*chi=*/50);
  return 0;
}
