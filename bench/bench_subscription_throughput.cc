// Throughput and amortization bench for the continuous-query subscription
// subsystem (src/subscribe/) — and the writer of BENCH_subscriptions.json,
// the push-side third of the repo's persisted perf trajectory.
//
// Part 1 re-validates the acceptance bar: a 1-shard engine with one
// subscriber per source, driven in lockstep, must produce per tick exactly
// the notifications implied by the sequential CacheSystem's interval
// changes — bit-for-bit answers, intervals, epochs, and charges (the
// mirror re-derives the expected stream from CacheSystem transitions
// alone).
//
// Part 2 sweeps the subscription workload across subscriber count × δ_sub
// distribution: subscriber threads drain the NotificationHub while the
// updater streams ticks through the UpdateBus and the concurrent
// no-missed-violation checker probes subscriber-held answers against the
// true values mid-run. Every row also runs the measured polling
// equivalent (same standing set, one poll per subscription per tick on a
// seed-identical engine), so the savings claim — subscription Cvr+Cqr
// never exceeds the polling cost — is checked on every summary row, with
// the numbers computed in one place (RunSubscriptionWorkload).
//
// Part 3 runs the churn scenario: standing queries are unsubscribed and
// re-registered and live-Reprecisioned while updates stream.
//
// Usage: bench_subscription_throughput [ticks] [num_sources] [out.json]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "cache/system.h"
#include "query/constraint_gen.h"
#include "runtime/sharded_engine.h"
#include "runtime/workload_driver.h"

namespace {

using namespace apc;

constexpr uint64_t kSeed = 2027;

std::vector<Notification> DrainAll(NotificationHub& hub) {
  std::vector<Notification> all;
  std::vector<Notification> batch;
  while (hub.size() > 0) {
    hub.PopBatch(&batch, 256);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

/// Part 1: the lockstep determinism bar. One subscriber per source on a
/// 1-shard engine versus a mirror that re-derives the expected
/// notification stream from the sequential CacheSystem's interval
/// changes. Everything must match bit for bit: sub ids, epochs, answer
/// intervals, compute ticks, and the total Cvr/Cqr charges.
bool LockstepCheck(int num_sources, int64_t ticks) {
  SystemConfig sys_config;
  sys_config.cache_capacity = static_cast<size_t>(num_sources);

  CacheSystem sequential(
      sys_config,
      BuildRandomWalkSources(num_sources, RandomWalkParams{},
                             AdaptivePolicyParams{}, kSeed),
      kSeed);
  sequential.PopulateInitial(0);
  sequential.costs().BeginMeasurement(0);

  EngineConfig engine_config;
  engine_config.system = sys_config;
  engine_config.num_shards = 1;
  engine_config.seed = kSeed;
  engine_config.subscription_hub_capacity = 1 << 15;
  ShardedEngine engine(
      engine_config,
      BuildRandomWalkSources(num_sources, RandomWalkParams{},
                             AdaptivePolicyParams{}, kSeed));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  ConstraintGenerator deltas(ConstraintParams{3.0, 1.0}, kSeed ^ 0xD);
  std::vector<double> delta(static_cast<size_t>(num_sources));
  for (double& d : delta) d = deltas.Next();

  struct MirrorSub {
    Interval last = Interval::Unbounded();
    int64_t epoch = 0;
  };
  std::vector<MirrorSub> mirror(static_cast<size_t>(num_sources));
  std::vector<Interval> seen(static_cast<size_t>(num_sources));
  std::vector<int64_t> sub_of(static_cast<size_t>(num_sources));

  auto mirror_eval = [&](int id, int64_t t,
                         std::vector<Notification>* expected) {
    size_t i = static_cast<size_t>(id);
    Interval answer = sequential.table().VisibleInterval(id, t);
    if (answer.Width() > delta[i]) {
      Query pull;
      pull.kind = AggregateKind::kSum;
      pull.source_ids = {id};
      pull.constraint = delta[i];
      sequential.ExecuteQuery(pull, t);
      answer = sequential.table().VisibleInterval(id, t);
    }
    MirrorSub& sub = mirror[i];
    bool first = sub.epoch == 0;
    bool moved = !sub.last.Contains(answer);
    bool regained =
        sub.last.Width() > delta[i] && answer.Width() <= delta[i];
    if (first || moved || regained) {
      Notification record;
      record.sub_id = sub_of[i];
      record.answer = answer;
      record.epoch = ++sub.epoch;
      record.now = t;
      sub.last = answer;
      expected->push_back(record);
    }
    seen[i] = sequential.table().VisibleInterval(id, t);
  };

  auto matches = [](const std::vector<Notification>& actual,
                    const std::vector<Notification>& expected) {
    if (actual.size() != expected.size()) return false;
    for (size_t i = 0; i < expected.size(); ++i) {
      if (actual[i].sub_id != expected[i].sub_id ||
          actual[i].epoch != expected[i].epoch ||
          actual[i].now != expected[i].now ||
          !(actual[i].answer == expected[i].answer)) {
        return false;
      }
    }
    return true;
  };

  bool match = true;
  std::vector<Notification> expected;
  for (int id = 0; id < num_sources; ++id) {
    Query query;
    query.kind = AggregateKind::kSum;
    query.source_ids = {id};
    sub_of[static_cast<size_t>(id)] =
        engine.Subscribe(query, delta[static_cast<size_t>(id)], 0);
    mirror_eval(id, 0, &expected);
  }
  engine.subscriptions().WaitQuiescent();
  match = matches(DrainAll(engine.notifications()), expected) && match;

  for (int64_t t = 1; t <= ticks; ++t) {
    sequential.Tick(t);
    engine.TickAll(t);
    engine.subscriptions().WaitQuiescent();
    expected.clear();
    for (int id = 0; id < num_sources; ++id) {
      if (sequential.table().VisibleInterval(id, t) !=
          seen[static_cast<size_t>(id)]) {
        mirror_eval(id, t, &expected);
      }
    }
    match = matches(DrainAll(engine.notifications()), expected) && match;
  }

  sequential.costs().EndMeasurement(ticks);
  engine.EndMeasurement(ticks);
  EngineCosts costs = engine.TotalCosts();
  bool charges_match =
      costs.value_refreshes == sequential.costs().value_refreshes() &&
      costs.query_refreshes == sequential.costs().query_refreshes() &&
      costs.total_cost == sequential.costs().total_cost();
  std::printf(
      "  %d subscribers, %lld ticks vs CacheSystem: vr=%lld qr=%lld "
      "cost=%.0f  ->  %s\n",
      num_sources, static_cast<long long>(ticks),
      static_cast<long long>(costs.value_refreshes),
      static_cast<long long>(costs.query_refreshes), costs.total_cost,
      match && charges_match ? "MATCH" : "MISMATCH");
  return match && charges_match;
}

SubscriptionWorkloadConfig BaseConfig(int num_sources, int64_t ticks) {
  SubscriptionWorkloadConfig config;
  config.engine.num_shards = 4;
  config.engine.system.cache_capacity = static_cast<size_t>(num_sources);
  config.engine.seed = kSeed;
  config.engine.subscription_hub_capacity = 1 << 14;
  config.num_sources = num_sources;
  config.num_subscribers = 64;
  config.subscriber_threads = 1;  // epoch ordering checkable
  config.point_fraction = 0.75;
  config.group_size = 8;
  config.ticks = ticks;
  config.update_burst = 8;
  config.seed = kSeed;
  return config;
}

void AddRow(apc::bench::BenchReport& report, const std::string& scenario,
            const SubscriptionWorkloadConfig& config,
            const SubscriptionDriverReport& r) {
  double savings_pct =
      r.polling_equivalent_cost > 0.0
          ? 100.0 * (r.polling_equivalent_cost - r.subscription_total_cost) /
                r.polling_equivalent_cost
          : 0.0;
  report.AddRun()
      .Str("scenario", scenario)
      .Int("subscribers", r.subscriptions)
      .Int("subscriber_threads", config.subscriber_threads)
      .Num("point_fraction", config.point_fraction)
      .Int("group_size", config.group_size)
      .Num("delta_avg", config.deltas.avg)
      .Num("delta_rho", config.deltas.rho)
      .Int("ticks", r.ticks)
      .Int("churn_ops", r.churn_ops)
      .Int("reprecision_ops", r.reprecision_ops)
      .Int("notifications", r.notifications)
      .Int("delivered", r.delivered)
      .Num("notifications_per_second", r.notifications_per_second)
      .Num("delivery_lag_ticks_mean", r.delivery_lag_ticks_mean)
      .Num("delivery_lag_ticks_p50", r.delivery_lag_ticks_p50)
      .Num("delivery_lag_ticks_p90", r.delivery_lag_ticks_p90)
      .Num("delivery_lag_ticks_p99", r.delivery_lag_ticks_p99)
      .Int("evaluations", r.evaluations)
      .Int("escalations", r.escalations)
      .Int("suppressed", r.suppressed)
      .Int("sub_value_refreshes", r.costs.value_refreshes)
      .Int("sub_query_refreshes", r.costs.query_refreshes)
      .Num("sub_engine_cost", r.costs.total_cost)
      .Num("sub_client_push_cost", r.client_push_cost)
      .Num("sub_total_cost", r.subscription_total_cost)
      .Int("polls", r.polls)
      .Int("poll_value_refreshes", r.polling_costs.value_refreshes)
      .Int("poll_query_refreshes", r.polling_costs.query_refreshes)
      .Num("poll_engine_cost", r.polling_costs.total_cost)
      .Num("poll_client_cost", r.polling_client_cost)
      .Num("polling_equivalent_cost", r.polling_equivalent_cost)
      .Num("savings_pct", savings_pct)
      .Int("checker_probes", r.checker_probes)
      .Int("missed_violations", r.missed_violations)
      .Int("order_regressions", r.order_regressions);
}

void PrintRow(const std::string& tag,
              const SubscriptionWorkloadConfig& config,
              const SubscriptionDriverReport& r) {
  double savings_pct =
      r.polling_equivalent_cost > 0.0
          ? 100.0 * (r.polling_equivalent_cost - r.subscription_total_cost) /
                r.polling_equivalent_cost
          : 0.0;
  std::printf(
      "  %-7s %6lld %6.1f %10lld %10.0f %7.1f %7.1f %11.0f %11.0f %7.1f%% "
      "%7lld %6lld\n",
      tag.c_str(), static_cast<long long>(r.subscriptions),
      config.deltas.avg, static_cast<long long>(r.notifications),
      r.notifications_per_second, r.delivery_lag_ticks_mean,
      r.delivery_lag_ticks_p99, r.subscription_total_cost,
      r.polling_equivalent_cost, savings_pct,
      static_cast<long long>(r.checker_probes),
      static_cast<long long>(r.missed_violations));
}

}  // namespace

int main(int argc, char** argv) {
  int64_t ticks = argc > 1 ? std::atoll(argv[1]) : 2000;
  int num_sources = argc > 2 ? std::atoi(argv[2]) : 128;
  std::string out_path = argc > 3 ? argv[3] : "BENCH_subscriptions.json";
  if (ticks <= 0 || num_sources <= 0) {
    std::fprintf(stderr, "usage: %s [ticks] [num_sources] [out.json]\n",
                 argv[0]);
    return 2;
  }

  bench::BenchReport report("subscription_throughput");
  report.Meta()
      .Int("ticks", ticks)
      .Int("num_sources", num_sources)
      .Str("costs", "cvr=1 cqr=2 (engine and client links)")
      .Int("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Str("workload",
           "standing precision-bounded queries (75% point, 25% aggregate) "
           "notified from the change hook; polling equivalent = one poll "
           "per subscription per tick on a seed-identical engine")
      .Str("units",
           "lag in logical ticks (drain-time clock - compute tick; "
           "p50/p90/p99 from the obs registry's subs.delivery_lag_ticks "
           "histogram when compiled in), costs in protocol cost units over "
           "the measured period");

  bench::Banner("SUBS-1",
                "lockstep: notifications == CacheSystem interval changes");
  bool lockstep = LockstepCheck(/*num_sources=*/24, /*ticks=*/250);

  bench::Banner("SUBS-2",
                "standing queries: subscribers x delta_sub distribution");
  bench::Note("checker = concurrent no-missed-violation probes (mid-run);");
  bench::Note("polling equivalent measured per row on a seed-identical twin");
  std::printf("\n  %-7s %6s %6s %10s %10s %7s %7s %11s %11s %8s %7s %6s\n",
              "scen", "subs", "delta", "notifs", "notifs/s", "lag-mu",
              "lag-p99", "sub-cost", "poll-cost", "savings", "probes",
              "missed");

  bool savings_hold = true;
  bool checker_ran = false;
  int64_t total_missed = 0;
  int64_t total_regressions = 0;
  for (int subscribers : {16, 64, 256}) {
    for (double delta_avg : {4.0, 16.0}) {
      SubscriptionWorkloadConfig config = BaseConfig(num_sources, ticks);
      config.num_subscribers = subscribers;
      config.deltas = {delta_avg, 1.0};
      // Row-independent seeds: every cell faces a fresh but reproducible
      // draw of standing queries and walks.
      config.seed = kSeed + static_cast<uint64_t>(subscribers) * 100 +
                    static_cast<uint64_t>(delta_avg);
      config.engine.seed = config.seed;
      SubscriptionDriverReport r = RunSubscriptionWorkload(config);
      PrintRow("steady", config, r);
      AddRow(report, "steady", config, r);
      savings_hold = savings_hold &&
                     r.subscription_total_cost <= r.polling_equivalent_cost;
      checker_ran = checker_ran || r.checker_probes > 0;
      total_missed += r.missed_violations;
      total_regressions += r.order_regressions;
    }
  }

  bench::Banner("SUBS-3", "churn + live Reprecision while updates stream");
  bench::Note("a control thread unsubscribes/re-registers and re-bounds");
  bench::Note("standing queries mid-run; delivery stays ordered, no");
  bench::Note("violation missed");
  std::printf("\n  %-7s %6s %6s %10s %10s %7s %7s %11s %11s %8s %7s %6s\n",
              "scen", "subs", "delta", "notifs", "notifs/s", "lag-mu",
              "lag-p99", "sub-cost", "poll-cost", "savings", "probes",
              "missed");
  {
    SubscriptionWorkloadConfig config = BaseConfig(num_sources, ticks);
    config.num_subscribers = 64;
    config.deltas = {8.0, 1.0};
    config.churn_ops = 200;
    config.reprecision_ops = 200;
    config.subscriber_threads = 2;  // a pool, not a single drainer
    SubscriptionDriverReport r = RunSubscriptionWorkload(config);
    PrintRow("churn", config, r);
    AddRow(report, "churn", config, r);
    savings_hold = savings_hold &&
                   r.subscription_total_cost <= r.polling_equivalent_cost;
    checker_ran = checker_ran || r.checker_probes > 0;
    total_missed += r.missed_violations;
    total_regressions += r.order_regressions;
  }

  bool wrote = report.WriteFile(out_path);
  std::printf("\n");
  bench::Note(wrote ? "trajectory written to " + out_path
                    : "FAILED to write " + out_path);
  bench::Note(lockstep
                  ? "lockstep: notifications MATCH CacheSystem interval "
                    "changes (answers + charges bit-for-bit)"
                  : "lockstep: MISMATCH vs CacheSystem (BUG)");
  bench::Note(total_missed == 0 && checker_ran
                  ? "no-missed-violation: 0 violations across all "
                    "concurrent checker probes"
                  : "no-missed-violation: FAILED (BUG)");
  bench::Note(total_regressions == 0
                  ? "ordering: per-subscription epochs arrived in order"
                  : "ordering: EPOCH REGRESSIONS OBSERVED (BUG)");
  bench::Note(savings_hold
                  ? "amortization: subscription Cvr+Cqr <= polling "
                    "equivalent on every summary row"
                  : "amortization: subscriptions cost MORE than polling "
                    "(BUG)");
  return (lockstep && wrote && checker_ran && total_missed == 0 &&
          total_regressions == 0 && savings_hold)
             ? 0
             : 1;
}
