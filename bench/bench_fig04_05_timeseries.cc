// Reproduces Figures 4 and 5: the exact source value and the cached
// interval for one host over a time window, with a small average precision
// constraint (Figure 4, delta_avg = 50K: narrow intervals hugging the
// value) and a large one (Figure 5, delta_avg = 500K: wide intervals that
// rarely refresh). The paper plots t in [5000, 6000]; we print a decimated
// table of the same window for a host that wakes from an idle period.
#include <cstdio>

#include "bench_util.h"
#include "sim/experiments.h"

namespace {

void RunOne(const char* figure, double delta_avg) {
  using namespace apc;
  bench::Banner(figure, delta_avg < 100e3
                            ? "interval tracking, small constraints (50K)"
                            : "interval tracking, large constraints (500K)");
  NetworkExperiment exp;
  exp.delta_avg = delta_avg;
  exp.rho = 1.0;
  exp.tq = 1.0;
  exp.theta = 1.0;
  exp.delta0 = 0.0;
  exp.delta1 = kInfinity;

  // Pick a host that transitions from idle to active inside the window,
  // like the paper's illustrative host.
  const Trace& trace = SharedNetworkTrace();
  int host = 0;
  for (size_t h = 0; h < trace.num_hosts(); ++h) {
    bool idle_early = true;
    for (int t = 5000; t < 5200; ++t) {
      idle_early = idle_early && trace.hosts[h][static_cast<size_t>(t)] < 1e3;
    }
    bool active_late = false;
    for (int t = 5400; t < 6000; ++t) {
      active_late =
          active_late || trace.hosts[h][static_cast<size_t>(t)] > 20e3;
    }
    if (idle_early && active_late) {
      host = static_cast<int>(h);
      break;
    }
  }

  IntervalTimeSeries series = RecordHostInterval(exp, host, 5000, 6000);
  std::printf("  host %d, t in [5000, 6000), every 25 s\n", host);
  std::printf("%8s %14s %14s %14s %12s\n", "t", "value", "lo", "hi",
              "width");
  for (size_t i = 0; i < series.value.size(); i += 25) {
    double w = series.hi.points()[i].value - series.lo.points()[i].value;
    std::printf("%8lld %14.0f %14.0f %14.0f %12s\n",
                static_cast<long long>(series.value.points()[i].time),
                series.value.points()[i].value, series.lo.points()[i].value,
                series.hi.points()[i].value, apc::bench::Num(w).c_str());
  }
  double mean_width = 0.0;
  for (size_t i = 0; i < series.value.size(); ++i) {
    mean_width +=
        series.hi.points()[i].value - series.lo.points()[i].value;
  }
  mean_width /= static_cast<double>(series.value.size());
  std::printf("  mean interval width over window: %.0f (delta_avg/10 = "
              "%.0f)\n", mean_width, delta_avg / 10.0);
}

}  // namespace

int main() {
  RunOne("Figure 4", 50e3);
  RunOne("Figure 5", 500e3);
  apc::bench::Note("");
  apc::bench::Note("paper: widths settle near delta_avg/10 (the per-item "
                   "share of a 10-way SUM constraint)");
  return 0;
}
