// Reproduces the §4.4/§4.6 MAX-query findings: because cached intervals
// eliminate MAX candidates, keeping intervals (delta1 = inf) beats the
// exact-or-nothing configuration and the exact-caching baseline even when
// every query demands an exact answer (delta_avg = 0).
#include <cstdio>

#include "bench_util.h"
#include "sim/experiments.h"

int main() {
  using namespace apc;
  bench::Banner("Section 4.6 (MAX)",
                "MAX queries: intervals help even at exact precision");

  std::printf("%5s %10s | %12s %14s %12s\n", "Tq", "delta_avg",
              "exact[WJH97]", "ours d1=d0", "ours d1=inf");
  for (double tq : {0.5, 1.0, 2.0, 5.0}) {
    for (double delta_avg : {0.0, 100e3}) {
      NetworkExperiment base;
      base.tq = tq;
      base.theta = 1.0;
      base.delta_avg = delta_avg;
      base.rho = 0.5;
      base.delta0 = 1e3;
      base.max_fraction = 1.0;  // pure MAX workload

      SimResult exact =
          RunNetworkExactCaching(base, DefaultExactCachingXGrid());

      NetworkExperiment ours_exact = base;
      ours_exact.delta1 = 1e3;
      SimResult r_d0 = RunNetworkAdaptive(ours_exact);

      NetworkExperiment ours_inf = base;
      ours_inf.delta1 = kInfinity;
      SimResult r_inf = RunNetworkAdaptive(ours_inf);

      std::printf("%5.1f %10s | %12.2f %14.2f %12.2f\n", tq,
                  bench::Num(delta_avg).c_str(), exact.cost_rate,
                  r_d0.cost_rate, r_inf.cost_rate);
    }
  }
  bench::Note("");
  bench::Note("paper: for MAX queries delta1 = inf gives the best "
              "performance for ALL delta_avg, including 0 — values are "
              "eliminated as max-candidates from intervals alone");
  return 0;
}
