#ifndef APC_BENCH_BENCH_REPORT_H_
#define APC_BENCH_BENCH_REPORT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace apc::bench {

/// One flat JSON object: an ordered list of key → scalar fields. Values are
/// rendered at insertion time (numbers via %.10g with non-finite mapped to
/// null, strings escaped), so a row is just the pre-serialized pieces.
class JsonRow {
 public:
  JsonRow& Int(const std::string& key, int64_t value);
  JsonRow& Num(const std::string& key, double value);
  JsonRow& Str(const std::string& key, const std::string& value);
  JsonRow& Bool(const std::string& key, bool value);

  /// Renders `{"k": v, ...}` (insertion order preserved).
  std::string ToJson() const;

 private:
  JsonRow& Raw(const std::string& key, std::string rendered);

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Collects a bench's persisted trajectory: run metadata plus one row per
/// measured configuration, written as
///
///   {
///     "bench": "<name>",
///     "schema": "apcache-bench-v1",
///     "meta": { ...run-level context... },
///     "runs": [ { ...one row per swept configuration... } ]
///   }
///
/// The BENCH_*.json files at the repo root are committed so every PR's
/// numbers land in history and regressions are diffable.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  /// Run-level context (host parameters, workload constants, units).
  JsonRow& Meta() { return meta_; }

  /// Appends a run row; the reference stays valid for the report's life.
  JsonRow& AddRun();

  std::string ToJson() const;

  /// Writes ToJson() to `path` (+ trailing newline). Returns false and
  /// leaves no partial file behind when the path cannot be opened.
  bool WriteFile(const std::string& path) const;

 private:
  std::string name_;
  JsonRow meta_;
  std::deque<JsonRow> runs_;  // deque: stable references across AddRun
};

}  // namespace apc::bench

#endif  // APC_BENCH_BENCH_REPORT_H_
