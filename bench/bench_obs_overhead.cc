// Overhead bench for the observability layer (src/obs/) — and the data
// source for BENCH_obs.json, the committed obs-on vs obs-off comparison.
//
// The question it answers: what does leaving APC_OBS compiled in cost on
// the hottest path the repo has? The measured row replicates
// bench_runtime_throughput's widest-concurrency seqlock cell exactly —
// same seed, same workload mix, same 0.95 point-read fraction, 8 shards x
// 8 threads, updates streaming through the bus — so the number is
// comparable against the main trajectory. The binary reports whichever
// obs mode it was COMPILED with (stamped into every row as obs_enabled);
// `scripts/check.sh --obs` builds both modes, runs this bench in each
// tree, and asserts the obs-on qps stays within 5% of obs-off.
//
// Three rows are measured:
//   "steady_flight_recorder" — the RECOMMENDED always-on configuration and
//                     the GATED row: every registry metric live AND the
//                     crash-dump flight recorder armed at its default
//                     TraceLevel::kFlight (span begin/end, escalations,
//                     bus/offer events — per-read records skipped). The
//                     ≤5% gate holds with the recorder running, not just
//                     with it off.
//   "steady"        — metrics live, trace recorder in its default disabled
//                     state (one relaxed load per call site); the
//                     historical baseline row, kept for trajectory
//                     continuity.
//   "steady_traced" — full per-event tracing (TraceLevel::kFull) enabled,
//                     recording every read/bus/offer event into per-thread
//                     rings. Tracing everything is an on-demand debugging
//                     facility, so its (much larger) cost is persisted in
//                     the trajectory but not gated.
//
// Usage: bench_obs_overhead [queries_per_thread] [num_sources] [out.json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "obs/exporter.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "runtime/sharded_engine.h"
#include "runtime/workload_driver.h"

namespace {

using namespace apc;

// Identical to bench_runtime_throughput's sweep constants — the row here
// must be comparable against the committed BENCH_runtime.json trajectory.
constexpr uint64_t kSeed = 77;
constexpr double kPointReadFraction = 0.95;
constexpr int kShards = 8;
constexpr int kThreads = 8;

QueryWorkloadParams Workload(int num_sources) {
  QueryWorkloadParams params;
  params.num_sources = num_sources;
  params.group_size = 10;
  params.max_fraction = 0.25;
  params.min_fraction = 0.25;
  params.avg_fraction = 0.25;
  params.constraints.avg = 20.0;
  params.constraints.rho = 1.0;
  return params;
}

DriverReport RunOne(int64_t queries_per_thread, int num_sources,
                    int64_t* seqlock_retries) {
  EngineConfig config;
  config.num_shards = kShards;
  config.system.cache_capacity = static_cast<size_t>(num_sources) * 3 / 4;
  config.seed = kSeed;
  config.read_lock_mode = ReadLockMode::kSeqlock;
  ShardedEngine engine(config,
                       BuildRandomWalkSources(num_sources, RandomWalkParams{},
                                              AdaptivePolicyParams{}, kSeed));

  DriverConfig driver;
  driver.num_threads = kThreads;
  driver.queries_per_thread = queries_per_thread;
  driver.workload = Workload(num_sources);
  driver.run_updates = true;
  driver.point_read_fraction = kPointReadFraction;
  // The same seed formula bench_runtime_throughput uses for this cell.
  driver.seed = kSeed + static_cast<uint64_t>(kShards * 1000 + kThreads * 10);
  DriverReport report = RunWorkload(engine, driver);
  *seqlock_retries = engine.counters().seqlock_retries.load();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t queries_per_thread = argc > 1 ? std::atoll(argv[1]) : 20000;
  int num_sources = argc > 2 ? std::atoi(argv[2]) : 256;
  std::string out_path = argc > 3 ? argv[3] : "BENCH_obs.json";
  if (queries_per_thread <= 0 || !Workload(num_sources).IsValid()) {
    std::fprintf(stderr,
                 "usage: %s [queries_per_thread] [num_sources] [out.json]\n",
                 argv[0]);
    return 2;
  }

  bench::BenchReport report("obs_overhead");
  report.Meta()
      .Int("obs_enabled", APC_OBS)
      .Int("queries_per_thread", queries_per_thread)
      .Int("num_sources", num_sources)
      .Num("point_read_fraction", kPointReadFraction)
      .Int("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Str("workload",
           "bench_runtime_throughput's seqlock/8-shard/8-thread cell: mixed "
           "SUM/MAX/MIN/AVG + point reads, updates via bus; "
           "'steady_flight_recorder' = metrics live + flight recorder armed "
           "at kFlight (the recommended always-on config, gated), 'steady' = "
           "metrics live + recorder disabled (baseline), 'steady_traced' = "
           "full per-event tracing on (on-demand debugging cost, "
           "informational)")
      .Str("units", "latency us, qps queries/s");

  bench::Banner("OBS-1", std::string("seqlock hot path with the obs layer ") +
                             (APC_OBS ? "COMPILED IN" : "COMPILED OUT"));

  int64_t total_violations = 0;
  // qps-median run per configuration, same policy as
  // bench_runtime_throughput: the committed number tracks the code, not
  // the interleaving lottery.
  auto run_median = [&](int64_t* seqlock_retries) -> DriverReport {
    constexpr int kRepeats = 7;
    std::vector<DriverReport> reports;
    for (int rep = 0; rep < kRepeats; ++rep) {
      reports.push_back(
          RunOne(queries_per_thread, num_sources, seqlock_retries));
      total_violations += reports.back().violations;
    }
    std::vector<size_t> order(reports.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return reports[a].queries_per_second < reports[b].queries_per_second;
    });
    return reports[order[order.size() / 2]];
  };

  auto add_row = [&](const std::string& scenario, const DriverReport& r,
                     int64_t seqlock_retries, int64_t trace_records) {
    std::printf(
        "  %-13s obs=%d seqlock %d shards x %d threads: %.0f q/s, "
        "p50 %.1f us, p99 %.1f us, %lld trace records\n",
        scenario.c_str(), APC_OBS, kShards, kThreads, r.queries_per_second,
        r.latency_p50_us, r.latency_p99_us,
        static_cast<long long>(trace_records));
    report.AddRun()
        .Str("scenario", scenario)
        .Str("mode", "seqlock")
        .Int("obs_enabled", APC_OBS)
        .Num("zipf_s", 0.0)
        .Int("shards", kShards)
        .Int("threads", kThreads)
        .Num("qps", r.queries_per_second)
        .Num("p50_us", r.latency_p50_us)
        .Num("p95_us", r.latency_p95_us)
        .Num("p99_us", r.latency_p99_us)
        .Int("queries", r.queries)
        .Int("ticks", r.ticks)
        .Int("seqlock_retries", seqlock_retries)
        .Int("trace_records", trace_records)
        .Int("violations", r.violations);
  };

  // One unmeasured warmup run: thread creation, page faults, and allocator
  // steady state land outside every measured row, so row order cannot bias
  // the gated first-row comparison (both build modes warm up identically).
  {
    int64_t warmup_retries = 0;
    RunOne(queries_per_thread, num_sources, &warmup_retries);
  }

  // Row 1 (gated): the crash-dump flight recorder armed at its default
  // kFlight level — the configuration the ≤5% overhead promise covers.
  obs::FlightRecorder::Arm();
  int64_t armed_retries = 0;
  DriverReport armed = run_median(&armed_retries);
  obs::FlightRecorder::Disarm();
  int64_t flight_records =
      static_cast<int64_t>(obs::TraceRecorder::DumpTrace().size());
  obs::TraceRecorder::Reset();
  add_row("steady_flight_recorder", armed, armed_retries, flight_records);

  // Row 2: metrics live, recorder in its default disabled state — the
  // historical baseline.
  int64_t seqlock_retries = 0;
  DriverReport steady = run_median(&seqlock_retries);
  add_row("steady", steady, seqlock_retries, 0);

  // Row 3 (informational): full tracing on — every read start, bus event,
  // and offer recorded into per-thread rings while the workload runs.
  obs::TraceRecorder::Enable(/*ring_capacity=*/1 << 14);
  int64_t traced_retries = 0;
  DriverReport traced = run_median(&traced_retries);
  obs::TraceRecorder::Disable();
  int64_t trace_records =
      static_cast<int64_t>(obs::TraceRecorder::DumpTrace().size());
  obs::TraceRecorder::Reset();
  add_row("steady_traced", traced, traced_retries, trace_records);

  bool wrote = report.WriteFile(out_path);
  bench::Note(wrote ? "rows written to " + out_path
                    : "FAILED to write " + out_path);
  bench::Note(total_violations == 0
                  ? "precision: every concurrent result met its constraint"
                  : "precision: CONSTRAINT VIOLATIONS OBSERVED (BUG)");
#if APC_OBS
  bench::Note(trace_records > 0
                  ? "tracing: the recorder captured events when enabled"
                  : "tracing: NO EVENTS CAPTURED with obs compiled in (BUG)");
  bool obs_live = trace_records > 0;
#else
  bench::Note(trace_records == 0
                  ? "tracing: compiled out, zero records as expected"
                  : "tracing: RECORDS CAPTURED with obs compiled OUT (BUG)");
  bool obs_live = trace_records == 0;
#endif
  return (wrote && total_violations == 0 && obs_live) ? 0 : 1;
}
