// Microbenchmarks (google-benchmark) for the hot paths of the library:
// width adjustment, interval algebra, refresh-set selection and cache
// offers. These quantify the per-refresh overhead of the adaptive
// algorithm — the paper's pitch is that it needs no history or monitoring,
// so a width update should be a handful of nanoseconds.
#include <benchmark/benchmark.h>

#include <vector>

#include "cache/cache.h"
#include "core/adaptive_policy.h"
#include "query/aggregate.h"
#include "util/rng.h"

namespace {

using namespace apc;

void BM_AdaptiveWidthUpdate(benchmark::State& state) {
  AdaptivePolicyParams params;
  params.cvr = 4.0;  // theta = 4: exercises the probabilistic branch
  AdaptivePolicy policy(params, 1);
  RefreshContext ctx{RefreshType::kQueryInitiated, false, 0};
  double w = 8.0;
  for (auto _ : state) {
    w = policy.NextWidth(w, ctx);
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_AdaptiveWidthUpdate);

void BM_IntervalSum(benchmark::State& state) {
  Rng rng(7);
  std::vector<QueryItem> items;
  for (int i = 0; i < state.range(0); ++i) {
    items.push_back(
        {i, Interval::Centered(rng.Uniform(-100, 100), rng.Uniform(0, 10))});
  }
  for (auto _ : state) {
    Interval s = SumInterval(items);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_IntervalSum)->Arg(10)->Arg(100);

void BM_SumRefreshSelection(benchmark::State& state) {
  Rng rng(7);
  std::vector<QueryItem> items;
  for (int i = 0; i < state.range(0); ++i) {
    items.push_back(
        {i, Interval::Centered(rng.Uniform(-100, 100), rng.Uniform(0, 10))});
  }
  double constraint = 0.25 * 5.0 * state.range(0);
  for (auto _ : state) {
    auto sel = SumRefreshSelection(items, constraint);
    benchmark::DoNotOptimize(sel);
  }
}
BENCHMARK(BM_SumRefreshSelection)->Arg(10)->Arg(100);

void BM_MaxCandidateSelection(benchmark::State& state) {
  Rng rng(7);
  std::vector<QueryItem> items;
  for (int i = 0; i < state.range(0); ++i) {
    items.push_back(
        {i, Interval::Centered(rng.Uniform(-100, 100), rng.Uniform(0, 10))});
  }
  for (auto _ : state) {
    int idx = NextMaxRefreshCandidate(items, 0.5);
    benchmark::DoNotOptimize(idx);
  }
}
BENCHMARK(BM_MaxCandidateSelection)->Arg(10)->Arg(100);

void BM_CacheOffer(benchmark::State& state) {
  Cache cache(64);
  Rng rng(7);
  CachedApprox approx;
  approx.base = Interval(0, 1);
  int id = 0;
  for (auto _ : state) {
    cache.Offer(id, approx, rng.Uniform(0, 100));
    id = (id + 1) % 128;  // half the offers hit capacity pressure
  }
}
BENCHMARK(BM_CacheOffer);

}  // namespace

BENCHMARK_MAIN();
