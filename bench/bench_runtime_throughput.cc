// Scaling bench for the concurrent serving runtime (src/runtime/) — and
// the writer of BENCH_runtime.json, the repo's persisted perf trajectory.
//
// Part 1 re-validates the runtime's equivalence claim: a single-shard
// engine driven in lockstep from one thread must reproduce the sequential
// CacheSystem's cost accounting exactly — same value- and query-initiated
// refresh counts, same total cost. Since the shared-core refactor both
// sides drive the same ProtocolTable, so this now re-checks the wiring in
// every read-lock mode rather than two hand-maintained twins.
//
// Part 2 sweeps the read-mostly serving hot path (point_read_fraction
// 0.95) across worker threads × shards × Zipf skew, in all THREE lock
// modes: "seqlock" (the runtime default: snapshot reads validate an
// optimistic per-entry versioned read and take no shard lock at all),
// "shared" (snapshot reads acquire the shard shared_mutex shared — the
// pre-seqlock runtime), and "exclusive" (every access exclusive — the
// original baseline). The updater streams tick-all events through the
// UpdateBus during every run, so readers race a cycling writer. Every
// returned interval is checked against its precision constraint;
// violations must be 0.
//
// Part 3 runs a phase-shifting scenario: a skewed read-heavy regime, then
// a write-heavy uniform regime, then a pure-read regime — the update:query
// ratio flips mid-run, exercising the adaptive δ policies under regime
// change.
//
// Part 4 measures the batched update rings themselves: a raw-bus drain
// race (consumer PopBatch with max_batch 256 vs 1 against the identical
// producer stream — the whole-burst drain the pump uses vs a per-event
// consumer), and a pump-under-load run whose bus.drain_batch_size
// histogram is snapshotted from the obs registry into the committed
// trajectory.
//
// Usage: bench_runtime_throughput [queries_per_thread] [num_sources] [out.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "cache/system.h"
#include "core/adaptive_policy.h"
#include "obs/metrics.h"
#include "query/query_gen.h"
#include "runtime/sharded_engine.h"
#include "runtime/update_bus.h"
#include "runtime/workload_driver.h"

namespace {

using namespace apc;

constexpr uint64_t kSeed = 77;
constexpr double kPointReadFraction = 0.95;

constexpr ReadLockMode kModes[] = {ReadLockMode::kSeqlock,
                                   ReadLockMode::kShared,
                                   ReadLockMode::kExclusive};

const char* ModeName(ReadLockMode mode) {
  switch (mode) {
    case ReadLockMode::kSeqlock:
      return "seqlock";
    case ReadLockMode::kShared:
      return "shared";
    case ReadLockMode::kExclusive:
      return "exclusive";
  }
  return "?";
}

QueryWorkloadParams Workload(int num_sources) {
  QueryWorkloadParams params;
  params.num_sources = num_sources;
  params.group_size = 10;
  params.max_fraction = 0.25;  // mixed SUM / MAX / MIN / AVG workload
  params.min_fraction = 0.25;
  params.avg_fraction = 0.25;
  params.constraints.avg = 20.0;
  params.constraints.rho = 1.0;
  return params;
}

std::vector<std::unique_ptr<Source>> Sources(int n) {
  return BuildRandomWalkSources(n, RandomWalkParams{},
                                AdaptivePolicyParams{}, kSeed);
}

bool DeterminismCheck(int num_sources) {
  constexpr int64_t kTicks = 500;
  SystemConfig sys_config;
  sys_config.cache_capacity = static_cast<size_t>(num_sources) * 3 / 4;

  bool all_match = true;
  for (ReadLockMode mode : kModes) {
    CacheSystem sequential(sys_config, Sources(num_sources));
    sequential.PopulateInitial(0);
    sequential.costs().BeginMeasurement(0);

    EngineConfig engine_config;
    engine_config.system = sys_config;
    engine_config.num_shards = 1;
    engine_config.read_lock_mode = mode;
    ShardedEngine engine(engine_config, Sources(num_sources));
    engine.PopulateInitial(0);
    engine.BeginMeasurement(0);

    QueryGenerator gen_a(Workload(num_sources), kSeed ^ 0x7e57);
    QueryGenerator gen_b(Workload(num_sources), kSeed ^ 0x7e57);
    for (int64_t t = 1; t <= kTicks; ++t) {
      sequential.Tick(t);
      engine.TickAll(t);
      sequential.ExecuteQuery(gen_a.Next(), t);
      engine.ExecuteQuery(gen_b.Next(), t);
    }
    sequential.costs().EndMeasurement(kTicks);
    engine.EndMeasurement(kTicks);

    EngineCosts engine_costs = engine.TotalCosts();
    bool match =
        engine_costs.value_refreshes ==
            sequential.costs().value_refreshes() &&
        engine_costs.query_refreshes ==
            sequential.costs().query_refreshes() &&
        engine_costs.total_cost == sequential.costs().total_cost();
    std::printf(
        "  %-9s vs CacheSystem: vr=%lld qr=%lld cost=%s  ->  %s\n",
        ModeName(mode), static_cast<long long>(engine_costs.value_refreshes),
        static_cast<long long>(engine_costs.query_refreshes),
        bench::Num(engine_costs.total_cost).c_str(),
        match ? "MATCH" : "MISMATCH");
    all_match = all_match && match;
  }
  return all_match;
}

struct SweepPoint {
  ReadLockMode mode = ReadLockMode::kSeqlock;
  double zipf_s = 0.0;
  int shards = 1;
  int threads = 1;
  DriverReport report;
};

DriverReport RunOne(ReadLockMode mode, double zipf_s, int shards,
                    int threads, int64_t queries_per_thread, int num_sources,
                    const std::vector<WorkloadPhase>& phases,
                    int64_t* queries_executed) {
  EngineConfig config;
  config.num_shards = shards;
  config.system.cache_capacity = static_cast<size_t>(num_sources) * 3 / 4;
  config.seed = kSeed;
  config.read_lock_mode = mode;
  ShardedEngine engine(config, Sources(num_sources));

  DriverConfig driver;
  driver.num_threads = threads;
  driver.queries_per_thread = queries_per_thread;
  driver.workload = Workload(num_sources);
  driver.workload.zipf_s = zipf_s;
  driver.run_updates = true;
  driver.point_read_fraction = kPointReadFraction;
  driver.phases = phases;
  // Deliberately mode-independent: every lock mode faces the identical
  // query/constraint streams, so mode comparisons differ only in the code
  // under test, not in the workload draw.
  driver.seed = kSeed + static_cast<uint64_t>(shards * 1000 + threads * 10);
  DriverReport report = RunWorkload(engine, driver);
  // Progress is judged by the engine's own atomic counter, not by the
  // driver's derived tally: every issued query must have reached the engine.
  *queries_executed = engine.counters().queries_executed.load();
  return report;
}

/// Repeats a sweep point and keeps the qps-median run: single runs are
/// scheduler-noisy (especially on few-core hosts), and the committed
/// trajectory should track the code, not the interleaving lottery.
/// Violations accumulate across ALL repeats — the precision guarantee has
/// no noise to hide behind.
DriverReport RunMedian(int repeats, ReadLockMode mode, double zipf_s,
                       int shards, int threads, int64_t queries_per_thread,
                       int num_sources, int64_t* queries_executed,
                       int64_t* all_violations) {
  std::vector<DriverReport> reports;
  std::vector<int64_t> executed(static_cast<size_t>(repeats), 0);
  for (int r = 0; r < repeats; ++r) {
    reports.push_back(RunOne(mode, zipf_s, shards, threads,
                             queries_per_thread, num_sources, {},
                             &executed[static_cast<size_t>(r)]));
    *all_violations += reports.back().violations;
  }
  size_t median = 0;
  std::vector<size_t> order(reports.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return reports[a].queries_per_second < reports[b].queries_per_second;
  });
  median = order[order.size() / 2];
  *queries_executed = executed[median];
  return reports[median];
}

/// End-to-end events/sec through a raw multi-ring bus: one producer
/// pushing fixed 64-event batches (one destination per batch, so each
/// PushBatch is a single contiguous reservation), one consumer draining
/// with the given max_batch. max_batch 256 is the pump's whole-burst
/// drain; max_batch 1 simulates the old one-event-per-lock-acquisition
/// consumer. Returns events/sec, or a negative count on lost events.
double DrainThroughput(size_t max_batch, int64_t total_batches) {
  constexpr size_t kRings = 4;
  constexpr size_t kBatch = 64;
  constexpr int kIds = 16;
  UpdateBus bus(1024, kRings);
  auto start = std::chrono::steady_clock::now();
  std::thread producer([&bus, total_batches] {
    UpdateEvent events[kBatch];
    for (int64_t b = 0; b < total_batches; ++b) {
      int id = static_cast<int>(b % kIds);
      for (size_t j = 0; j < kBatch; ++j) {
        events[j] = {b * static_cast<int64_t>(kBatch) + static_cast<int64_t>(j),
                     id};
      }
      bus.PushBatch(events, kBatch);  // blocking: backpressure is real
    }
    bus.Close();
  });
  int64_t drained = 0;
  std::vector<UpdateEvent> batch;
  for (size_t n = 0; (n = bus.PopBatch(&batch, max_batch)) > 0;) {
    drained += static_cast<int64_t>(n);
  }
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  producer.join();
  const int64_t expected = total_batches * static_cast<int64_t>(kBatch);
  if (drained != expected) return static_cast<double>(drained - expected);
  return static_cast<double>(drained) / wall;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t queries_per_thread = argc > 1 ? std::atoll(argv[1]) : 20000;
  int num_sources = argc > 2 ? std::atoi(argv[2]) : 256;
  std::string out_path = argc > 3 ? argv[3] : "BENCH_runtime.json";
  if (queries_per_thread <= 0 || !Workload(num_sources).IsValid()) {
    std::fprintf(stderr,
                 "usage: %s [queries_per_thread] [num_sources] [out.json]\n"
                 "  queries_per_thread >= 1, num_sources >= 10 (group size)\n",
                 argv[0]);
    return 2;
  }

  bench::BenchReport report("runtime_throughput");
  report.Meta()
      .Int("queries_per_thread", queries_per_thread)
      .Int("num_sources", num_sources)
      .Num("point_read_fraction", kPointReadFraction)
      .Int("group_size", 10)
      .Int("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Str("workload", "mixed SUM/MAX/MIN/AVG + point reads, updates via bus")
      .Str("units", "latency us, qps queries/s, cost_rate cost/tick");

  bench::Banner("RUNTIME-1",
                "single shard + single thread reproduces CacheSystem");
  bool deterministic = DeterminismCheck(num_sources);

  bench::Banner(
      "RUNTIME-2",
      "read-mostly hot path: threads x shards x skew, all three lock modes");
  bench::Note("point_read_fraction 0.95, updates streaming through the bus;");
  bench::Note("'seqlock' = optimistic per-entry versioned reads, no shard "
              "lock (the runtime),");
  bench::Note("'shared' = snapshot reads take shard locks shared,");
  bench::Note("'exclusive' = every access exclusive (original baseline)");
  std::printf("\n  %9s %5s %7s %8s %12s %9s %9s %9s %10s %7s %11s\n", "mode",
              "zipf", "shards", "threads", "queries/s", "p50 us", "p95 us",
              "p99 us", "cost/tick", "ticks", "violations");

  std::vector<SweepPoint> sweep;
  int64_t total_violations = 0;
  bool concurrent_progress = false;
  for (ReadLockMode mode : kModes) {
    for (double zipf_s : {0.0, 1.1}) {
      for (int shards : {1, 8}) {
        for (int threads : {1, 4, 8}) {
          SweepPoint point;
          point.mode = mode;
          point.zipf_s = zipf_s;
          point.shards = shards;
          point.threads = threads;
          int64_t executed = 0;
          point.report =
              RunMedian(/*repeats=*/7, mode, zipf_s, shards, threads,
                        queries_per_thread, num_sources, &executed,
                        &total_violations);
          const DriverReport& r = point.report;
          if (threads > 1 &&
              executed ==
                  static_cast<int64_t>(threads) * queries_per_thread) {
            concurrent_progress = true;
          }
          std::printf(
              "  %9s %5.1f %7d %8d %12.0f %9.1f %9.1f %9.1f %10.3f %7lld"
              " %11lld\n",
              ModeName(mode), zipf_s, shards, threads, r.queries_per_second,
              r.latency_p50_us, r.latency_p95_us, r.latency_p99_us,
              r.costs.CostRate(), static_cast<long long>(r.ticks),
              static_cast<long long>(r.violations));
          report.AddRun()
              .Str("scenario", "steady")
              .Str("mode", ModeName(mode))
              .Num("zipf_s", zipf_s)
              .Int("shards", shards)
              .Int("threads", threads)
              .Num("point_read_fraction", kPointReadFraction)
              .Num("qps", r.queries_per_second)
              .Num("p50_us", r.latency_p50_us)
              .Num("p95_us", r.latency_p95_us)
              .Num("p99_us", r.latency_p99_us)
              .Num("cost_rate", r.costs.CostRate())
              .Int("queries", r.queries)
              .Int("ticks", r.ticks)
              .Int("value_refreshes", r.costs.value_refreshes)
              .Int("query_refreshes", r.costs.query_refreshes)
              .Int("rejected_updates", r.rejected_updates)
              .Int("rejected_query_ids", r.rejected_query_ids)
              .Int("violations", r.violations);
          sweep.push_back(std::move(point));
        }
      }
    }
  }

  bench::Banner("RUNTIME-3", "phase-shifting workload (regime change)");
  bench::Note("phase 1: skewed read-heavy | phase 2: uniform write-heavy | "
              "phase 3: pure reads, updates paused");
  {
    std::vector<WorkloadPhase> phases(3);
    phases[0].queries_per_thread = queries_per_thread;
    phases[0].point_read_fraction = 0.95;
    phases[0].zipf_s = 1.1;
    phases[0].update_burst = 4;
    phases[1].queries_per_thread = queries_per_thread;
    phases[1].point_read_fraction = 0.2;
    phases[1].zipf_s = 0.0;
    phases[1].update_burst = 64;
    phases[2].queries_per_thread = queries_per_thread;
    phases[2].point_read_fraction = 1.0;
    phases[2].zipf_s = 1.1;
    phases[2].update_burst = 0;
    int64_t executed = 0;
    DriverReport r = RunOne(ReadLockMode::kSeqlock, 0.0, 8, 4,
                            queries_per_thread, num_sources, phases,
                            &executed);
    total_violations += r.violations;
    std::printf("  %lld queries in %.2fs -> %.0f q/s, p99 %.1f us, "
                "%lld ticks, %lld violations\n",
                static_cast<long long>(r.queries), r.wall_seconds,
                r.queries_per_second, r.latency_p99_us,
                static_cast<long long>(r.ticks),
                static_cast<long long>(r.violations));
    report.AddRun()
        .Str("scenario", "phase_shift")
        .Str("mode", "seqlock")
        .Str("phases",
             "read95/zipf1.1/burst4 -> read20/uniform/burst64 -> "
             "read100/zipf1.1/paused")
        .Int("shards", 8)
        .Int("threads", 4)
        .Num("qps", r.queries_per_second)
        .Num("p50_us", r.latency_p50_us)
        .Num("p95_us", r.latency_p95_us)
        .Num("p99_us", r.latency_p99_us)
        .Num("cost_rate", r.costs.CostRate())
        .Int("queries", r.queries)
        .Int("ticks", r.ticks)
        .Int("rejected_updates", r.rejected_updates)
        .Int("rejected_query_ids", r.rejected_query_ids)
        .Int("violations", r.violations);
  }

  bench::Banner("RUNTIME-4", "batched update rings: drain granularity");
  bench::Note("raw bus, identical producer stream; consumer max_batch 256 "
              "(the pump's whole-burst drain) vs 1 (per-event consumer)");
  bool bus_drain_complete = true;
  {
    const int64_t drain_batches = std::max<int64_t>(
        200, queries_per_thread / 4);  // scale with the smoke knob
    double batched_eps = DrainThroughput(/*max_batch=*/256, drain_batches);
    double per_event_eps = DrainThroughput(/*max_batch=*/1, drain_batches);
    bus_drain_complete = batched_eps > 0.0 && per_event_eps > 0.0;
    std::printf("  batched  (max_batch 256): %12.0f events/s\n"
                "  per-event (max_batch  1): %12.0f events/s  "
                "(batched %+.1f%%)\n",
                batched_eps, per_event_eps,
                per_event_eps > 0.0
                    ? 100.0 * (batched_eps - per_event_eps) / per_event_eps
                    : 0.0);
    for (int pass = 0; pass < 2; ++pass) {
      report.AddRun()
          .Str("scenario", "bus_drain")
          .Int("consumer_max_batch", pass == 0 ? 256 : 1)
          .Int("rings", 4)
          .Int("producer_batch", 64)
          .Int("events", drain_batches * 64)
          .Num("events_per_second", pass == 0 ? batched_eps : per_event_eps);
    }

    // The pump under real load: an update-heavy driver run, then the
    // bus.drain_batch_size histogram lifted from the obs registry — the
    // committed evidence that the pump drains multi-event bursts per shard
    // lock acquisition rather than one event at a time. (Zeros under
    // APC_OBS=0 builds.)
    EngineConfig config;
    config.num_shards = 8;
    config.system.cache_capacity = static_cast<size_t>(num_sources) * 3 / 4;
    config.seed = kSeed;
    config.read_lock_mode = ReadLockMode::kSeqlock;
    ShardedEngine engine(config, Sources(num_sources));
    DriverConfig driver;
    driver.num_threads = 2;
    driver.queries_per_thread = queries_per_thread;
    driver.workload = Workload(num_sources);
    driver.run_updates = true;
    driver.update_burst = 64;
    driver.point_read_fraction = 0.5;
    driver.seed = kSeed + 4;
    DriverReport r = RunWorkload(engine, driver);
    total_violations += r.violations;
    obs::MetricsRegistry::Snapshot snap = engine.metrics().TakeSnapshot();
    double drain_p50 = snap.HistogramQuantile("bus.drain_batch_size", 0.5);
    double drain_p95 = snap.HistogramQuantile("bus.drain_batch_size", 0.95);
    int64_t batches = snap.HistogramCount("bus.drain_batch_size");
    std::printf("  pump under load (burst 64): drain_batch_size p50 %.0f "
                "p95 %.0f over %lld drains, %lld ticks\n",
                drain_p50, drain_p95, static_cast<long long>(batches),
                static_cast<long long>(r.ticks));
    report.AddRun()
        .Str("scenario", "drain_histogram")
        .Str("mode", "seqlock")
        .Int("shards", 8)
        .Int("threads", 2)
        .Int("update_burst", 64)
        .Num("drain_batch_p50", drain_p50)
        .Num("drain_batch_p95", drain_p95)
        .Int("drain_batches", batches)
        .Int("ticks", r.ticks)
        .Num("qps", r.queries_per_second)
        .Int("violations", r.violations);
  }

  // Headline comparison: the three modes at the widest concurrency. The
  // committed BENCH_runtime.json must show seqlock >= shared at 8 threads
  // (the seqlock refactor's acceptance bar); the note below reports it,
  // but the exit status deliberately gates only the correctness invariants
  // (determinism, precision, progress) — a scheduler-noisy smoke run on an
  // arbitrary host must not flake CI over a perf race it cannot resolve.
  bench::Banner("SUMMARY", "seqlock vs shared vs exclusive at 8 threads");
  bool seqlock_holds = true;
  for (double zipf_s : {0.0, 1.1}) {
    for (int shards : {1, 8}) {
      double qps[3] = {0.0, 0.0, 0.0};
      for (const SweepPoint& point : sweep) {
        if (point.threads != 8 || point.shards != shards ||
            point.zipf_s != zipf_s) {
          continue;
        }
        qps[static_cast<int>(point.mode)] = point.report.queries_per_second;
      }
      double seqlock = qps[static_cast<int>(ReadLockMode::kSeqlock)];
      double shared = qps[static_cast<int>(ReadLockMode::kShared)];
      double exclusive = qps[static_cast<int>(ReadLockMode::kExclusive)];
      if (seqlock < shared) seqlock_holds = false;
      std::printf(
          "  8 threads, %d shard%s, zipf %.1f: seqlock %8.0f | shared "
          "%8.0f | exclusive %8.0f q/s  (seqlock vs shared %+.1f%%)\n",
          shards, shards == 1 ? " " : "s", zipf_s, seqlock, shared,
          exclusive,
          shared > 0.0 ? 100.0 * (seqlock - shared) / shared : 0.0);
    }
  }

  // Scaling gate, honestly conditional: the slab's zero-hash seqlock read
  // path must scale 8 threads >= 3x 1 thread (8 shards, uniform ids), but
  // only a host with >= 8 hardware threads can run 8 readers in parallel —
  // on smaller hosts the ratio is recorded in the trajectory and the gate
  // is skipped, never faked.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  double qps_1t = 0.0;
  double qps_8t = 0.0;
  for (const SweepPoint& point : sweep) {
    if (point.mode != ReadLockMode::kSeqlock || point.shards != 8 ||
        point.zipf_s != 0.0) {
      continue;
    }
    if (point.threads == 1) qps_1t = point.report.queries_per_second;
    if (point.threads == 8) qps_8t = point.report.queries_per_second;
  }
  const double scaling = qps_1t > 0.0 ? qps_8t / qps_1t : 0.0;
  const bool scaling_gated = hw_threads >= 8;
  const bool scaling_ok = !scaling_gated || scaling >= 3.0;
  report.Meta()
      .Num("seqlock_8t_over_1t", scaling)
      .Bool("seqlock_scaling_gated", scaling_gated);

  bool wrote = report.WriteFile(out_path);
  std::printf("\n");
  bench::Note(wrote ? "trajectory written to " + out_path
                    : "FAILED to write " + out_path);
  bench::Note(deterministic
                  ? "determinism: 1 shard / 1 thread MATCHES CacheSystem in "
                    "all modes"
                  : "determinism: MISMATCH vs CacheSystem (BUG)");
  bench::Note(total_violations == 0
                  ? "precision: every concurrent result met its constraint"
                  : "precision: CONSTRAINT VIOLATIONS OBSERVED (BUG)");
  bench::Note(concurrent_progress
                  ? "concurrency: multi-thread runs completed all queries"
                  : "concurrency: multi-thread runs made no progress (BUG)");
  bench::Note(seqlock_holds
                  ? "seqlock read path >= shared-lock path at 8 threads"
                  : "seqlock read path LOST to shared locks at 8 threads");
  bench::Note(bus_drain_complete
                  ? "bus drain: every pushed event was delivered exactly once"
                  : "bus drain: EVENTS LOST OR DUPLICATED (BUG)");
  {
    char scaling_note[160];
    if (scaling_gated) {
      std::snprintf(scaling_note, sizeof(scaling_note),
                    "seqlock scaling: 8t = %.2fx 1t (gate >= 3x, host has %u "
                    "hw threads) -> %s",
                    scaling, hw_threads, scaling_ok ? "OK" : "FAIL");
    } else {
      std::snprintf(scaling_note, sizeof(scaling_note),
                    "seqlock scaling: 8t = %.2fx 1t recorded, gate skipped "
                    "(host has %u hw threads, needs >= 8)",
                    scaling, hw_threads);
    }
    bench::Note(scaling_note);
  }
  return (deterministic && total_violations == 0 && concurrent_progress &&
          bus_drain_complete && scaling_ok && wrote)
             ? 0
             : 1;
}
