// Scaling bench for the concurrent serving runtime (src/runtime/).
//
// Part 1 re-validates the runtime's equivalence claim: a single-shard
// engine driven in lockstep from one thread must reproduce the sequential
// CacheSystem's cost accounting exactly — same value- and query-initiated
// refresh counts, same total cost.
//
// Part 2 sweeps worker threads (1 → N) against shard counts and reports
// closed-loop throughput and latency percentiles, with an updater thread
// streaming source updates through the UpdateBus during every run. Every
// returned interval is checked against its precision constraint; the
// violations column must read 0.
//
// Usage: bench_runtime_throughput [queries_per_thread] [num_sources]
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "cache/system.h"
#include "core/adaptive_policy.h"
#include "query/query_gen.h"
#include "runtime/sharded_engine.h"
#include "runtime/workload_driver.h"

namespace {

using namespace apc;

constexpr uint64_t kSeed = 77;

QueryWorkloadParams Workload(int num_sources) {
  QueryWorkloadParams params;
  params.num_sources = num_sources;
  params.group_size = 10;
  params.max_fraction = 0.25;  // mixed SUM / MAX / MIN / AVG workload
  params.min_fraction = 0.25;
  params.avg_fraction = 0.25;
  params.constraints.avg = 20.0;
  params.constraints.rho = 1.0;
  return params;
}

std::vector<std::unique_ptr<Source>> Sources(int n) {
  return BuildRandomWalkSources(n, RandomWalkParams{},
                                AdaptivePolicyParams{}, kSeed);
}

bool DeterminismCheck(int num_sources) {
  constexpr int64_t kTicks = 500;
  SystemConfig sys_config;
  sys_config.cache_capacity = static_cast<size_t>(num_sources) * 3 / 4;

  CacheSystem sequential(sys_config, Sources(num_sources));
  sequential.PopulateInitial(0);
  sequential.costs().BeginMeasurement(0);

  EngineConfig engine_config;
  engine_config.system = sys_config;
  engine_config.num_shards = 1;
  ShardedEngine engine(engine_config, Sources(num_sources));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  QueryGenerator gen_a(Workload(num_sources), kSeed ^ 0x7e57);
  QueryGenerator gen_b(Workload(num_sources), kSeed ^ 0x7e57);
  for (int64_t t = 1; t <= kTicks; ++t) {
    sequential.Tick(t);
    engine.TickAll(t);
    sequential.ExecuteQuery(gen_a.Next(), t);
    engine.ExecuteQuery(gen_b.Next(), t);
  }
  sequential.costs().EndMeasurement(kTicks);
  engine.EndMeasurement(kTicks);

  EngineCosts engine_costs = engine.TotalCosts();
  bool match =
      engine_costs.value_refreshes == sequential.costs().value_refreshes() &&
      engine_costs.query_refreshes == sequential.costs().query_refreshes() &&
      engine_costs.total_cost == sequential.costs().total_cost();
  std::printf(
      "  sequential CacheSystem: vr=%lld qr=%lld cost=%s\n"
      "  1-shard engine:         vr=%lld qr=%lld cost=%s   ->  %s\n",
      static_cast<long long>(sequential.costs().value_refreshes()),
      static_cast<long long>(sequential.costs().query_refreshes()),
      bench::Num(sequential.costs().total_cost()).c_str(),
      static_cast<long long>(engine_costs.value_refreshes),
      static_cast<long long>(engine_costs.query_refreshes),
      bench::Num(engine_costs.total_cost).c_str(),
      match ? "MATCH" : "MISMATCH");
  return match;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t queries_per_thread = argc > 1 ? std::atoll(argv[1]) : 2000;
  int num_sources = argc > 2 ? std::atoi(argv[2]) : 256;
  if (queries_per_thread <= 0 || !Workload(num_sources).IsValid()) {
    std::fprintf(stderr,
                 "usage: %s [queries_per_thread] [num_sources]\n"
                 "  queries_per_thread >= 1, num_sources >= 10 (group size)\n",
                 argv[0]);
    return 2;
  }

  bench::Banner("RUNTIME-1",
                "single shard + single thread reproduces CacheSystem");
  bool deterministic = DeterminismCheck(num_sources);

  bench::Banner("RUNTIME-2",
                "closed-loop throughput, threads x shards sweep");
  bench::Note("mixed SUM/MAX/MIN/AVG workload, group size 10, "
              "updates streaming through the UpdateBus");
  std::printf(
      "\n  %7s %8s %12s %10s %10s %10s %11s\n",
      "shards", "threads", "queries/s", "p50 us", "p99 us", "ticks",
      "violations");

  int64_t total_violations = 0;
  bool concurrent_progress = false;
  for (int shards : {1, 2, 4, 8}) {
    for (int threads : {1, 2, 4}) {
      EngineConfig config;
      config.num_shards = shards;
      config.system.cache_capacity = static_cast<size_t>(num_sources) * 3 / 4;
      config.seed = kSeed;
      ShardedEngine engine(config, Sources(num_sources));

      DriverConfig driver;
      driver.num_threads = threads;
      driver.queries_per_thread = queries_per_thread;
      driver.workload = Workload(num_sources);
      driver.run_updates = true;
      driver.point_read_fraction = 0.2;
      driver.seed = kSeed + static_cast<uint64_t>(shards * 100 + threads);
      DriverReport report = RunWorkload(engine, driver);

      total_violations += report.violations;
      // Progress is judged by the engine's own atomic counter, not by the
      // driver's derived tally: every query issued by every worker must
      // actually have reached the engine.
      if (threads > 1 && engine.counters().queries_executed.load() ==
                             threads * queries_per_thread) {
        concurrent_progress = true;
      }
      std::printf("  %7d %8d %12.0f %10.1f %10.1f %10lld %11lld\n", shards,
                  threads, report.queries_per_second, report.latency_p50_us,
                  report.latency_p99_us,
                  static_cast<long long>(report.ticks),
                  static_cast<long long>(report.violations));
    }
  }

  std::printf("\n");
  bench::Note(deterministic
                  ? "determinism: 1 shard / 1 thread MATCHES CacheSystem"
                  : "determinism: MISMATCH vs CacheSystem (BUG)");
  bench::Note(total_violations == 0
                  ? "precision: every concurrent result met its constraint"
                  : "precision: CONSTRAINT VIOLATIONS OBSERVED (BUG)");
  bench::Note(concurrent_progress
                  ? "concurrency: multi-thread runs completed all queries"
                  : "concurrency: multi-thread runs made no progress (BUG)");
  return (deterministic && total_violations == 0 && concurrent_progress) ? 0
                                                                         : 1;
}
