// Reproduces Figure 3: measured refresh probabilities and cost rate on
// random-walk data (step ~ U[0.5, 1.5] per second) with the width PINNED,
// swept over W = 1..10; workload Tq = 2, delta_avg = 20, rho = 1, theta = 1.
// Verifies empirically that Pvr ~ 1/W^2 and Pqr ~ W, and that the minimum
// measured cost sits where the probabilities cross.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/experiments.h"

int main() {
  using namespace apc;
  bench::Banner("Figure 3",
                "measured refresh probabilities vs fixed interval width");

  WalkExperiment exp;  // paper defaults: Tq=2, delta_avg=20, rho=1, theta=1
  exp.horizon = 400000;
  exp.warmup = 10000;

  std::vector<double> widths;
  for (double w = 1.0; w <= 10.0; w += 0.5) widths.push_back(w);
  auto results = SweepFixedWidths(exp, widths);

  std::printf("%8s %10s %10s %10s %14s %12s\n", "W", "Pvr", "Pqr", "cost",
              "Pvr*W^2", "Pqr/W");
  double best_cost = kInfinity, best_w = 0.0;
  for (size_t i = 0; i < widths.size(); ++i) {
    const SimResult& r = results[i];
    double w = widths[i];
    std::printf("%8.1f %10.5f %10.5f %10.5f %14.4f %12.5f\n", w, r.pvr,
                r.pqr, r.cost_rate, r.pvr * w * w, r.pqr / w);
    if (r.cost_rate < best_cost) {
      best_cost = r.cost_rate;
      best_w = w;
    }
  }
  std::printf("\n  best fixed width W* ~= %.2f with cost %.5f\n", best_w,
              best_cost);
  bench::Note("paper: Pvr proportional to 1/W^2 (Pvr*W^2 column ~ const for "
              "W past the escape-every-step regime),");
  bench::Note("Pqr proportional to W (Pqr/W column ~ const), minimum cost "
              "at the crossing");
  return 0;
}
