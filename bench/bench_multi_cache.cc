// Extension bench: the paper's §1.1 multi-cache topology (one source
// value approximated by m independent caches). Shows (a) that per-
// (cache,value) adaptation converges to different widths for the same
// value under different local precision demands, and (b) how push cost
// scales with the number of caches — only invalidated caches are pushed
// to, so loose caches are nearly free.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "cache/multi_system.h"
#include "data/random_walk.h"
#include "util/rng.h"

namespace {

using namespace apc;

std::vector<std::unique_ptr<UpdateStream>> Streams(int n, uint64_t seed) {
  RandomWalkParams walk;
  std::vector<std::unique_ptr<UpdateStream>> streams;
  Rng seeder(seed);
  for (int i = 0; i < n; ++i) {
    streams.push_back(
        std::make_unique<RandomWalkStream>(walk, seeder.NextUint64()));
  }
  return streams;
}

}  // namespace

int main() {
  bench::Banner("Extension (multi-cache)",
                "per-cache precision for the same source values");

  // Four caches watch the same 10 values with constraints spanning two
  // orders of magnitude.
  MultiSystemConfig config;
  config.costs = {1.0, 2.0};
  config.num_caches = 4;
  config.policy.alpha = 1.0;
  config.policy.initial_width = 8.0;
  const double kConstraints[4] = {2.0, 10.0, 50.0, 250.0};

  MultiCacheSystem system(config, Streams(10, 3), 7);
  system.costs().BeginMeasurement(0);
  Rng rng(5);
  const int64_t kHorizon = 100000;
  for (int64_t t = 1; t <= kHorizon; ++t) {
    system.Tick(t);
    for (int cache = 0; cache < 4; ++cache) {
      Query q;
      q.kind = AggregateKind::kSum;
      q.source_ids = {static_cast<int>(rng.UniformInt(0, 9))};
      q.constraint = kConstraints[cache];
      system.ExecuteQuery(cache, q, t);
    }
  }
  system.costs().EndMeasurement(kHorizon);

  std::printf("%8s %14s %18s\n", "cache", "constraint", "mean raw width");
  for (int cache = 0; cache < 4; ++cache) {
    double mean = 0.0;
    for (int id = 0; id < 10; ++id) mean += system.raw_width(cache, id);
    std::printf("%8d %14.1f %18.2f\n", cache, kConstraints[cache],
                mean / 10.0);
  }
  std::printf("  total cost rate: %.3f\n", system.costs().CostRate());
  bench::Note("one source value, four widths: each cache's approximation "
              "converges to ITS readers' precision, and the source pushes "
              "to each cache only when that cache's interval breaks — "
              "paper 1.1's topology, fully adaptive");
  return 0;
}
