// Reproduces §4.2's convergence claims: the adaptive algorithm, run on
// steady-state random-walk data, converges to a width whose cost is within
// a few percent of the best fixed width, across all combinations of
// Tq in {1, 2}, delta_avg in {10, 20}, theta in {1, 4}.
//
// The paper reports within 1% for the base case and within 5% across the
// grid. With alpha = 1 the width path oscillates a full octave around W*
// and pays a measurable premium on *stationary* data, so we report both
// alpha = 1 (the paper's recommended dynamic setting) and a gentler
// alpha = 0.25 (see EXPERIMENTS.md E3 for discussion).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/experiments.h"
#include "util/mathutil.h"

int main() {
  using namespace apc;
  bench::Banner("Section 4.2",
                "adaptive convergence vs best fixed width (random walk)");

  std::printf("%5s %10s %6s | %10s %8s | %12s %9s | %12s %9s\n", "Tq",
              "d_avg", "theta", "best fixed", "W*", "cost(a=1)", "vs opt",
              "cost(a=.25)", "vs opt");

  for (double tq : {1.0, 2.0}) {
    for (double delta_avg : {10.0, 20.0}) {
      for (double theta : {1.0, 4.0}) {
        WalkExperiment exp;
        exp.tq = tq;
        exp.delta_avg = delta_avg;
        exp.theta = theta;
        exp.horizon = 300000;
        exp.warmup = 10000;

        std::vector<double> widths;
        for (double w = 0.5; w <= 16.0; w += 0.25) widths.push_back(w);
        auto fixed = SweepFixedWidths(exp, widths);
        double best_cost = kInfinity, best_w = 0.0;
        for (size_t i = 0; i < widths.size(); ++i) {
          if (fixed[i].cost_rate < best_cost) {
            best_cost = fixed[i].cost_rate;
            best_w = widths[i];
          }
        }

        WalkExperiment a1 = exp;
        a1.alpha = 1.0;
        SimResult r1 = RunWalkExperiment(a1);
        WalkExperiment a25 = exp;
        a25.alpha = 0.25;
        SimResult r25 = RunWalkExperiment(a25);

        std::printf(
            "%5.1f %10.0f %6.0f | %10.4f %8.2f | %12.4f %8.1f%% | %12.4f "
            "%8.1f%%\n",
            tq, delta_avg, theta, best_cost, best_w, r1.cost_rate,
            100.0 * (r1.cost_rate / best_cost - 1.0), r25.cost_rate,
            100.0 * (r25.cost_rate / best_cost - 1.0));
      }
    }
  }
  bench::Note("");
  bench::Note("paper: converged width ~ W* with cost within 1-5% of optimal");
  bench::Note("here: alpha=0.25 lands within ~5-10%; alpha=1 trades ~25% "
              "stationary overhead for fast adaptation on dynamic data");
  return 0;
}
