// Scaling bench for the tiered (edge/regional) concurrent runtime
// (src/runtime/tiered_engine.{h,cc}) — and the writer of BENCH_tiered.json,
// the tiered half of the repo's persisted perf trajectory.
//
// Part 1 re-validates the tier's equivalence claim: a TieredEngine driven
// in lockstep from one thread must reproduce the sequential
// HierarchicalSystem's answers and per-link (WAN/LAN) charges exactly, in
// every read-lock mode — the 1-edge/1-shard case is the pinned acceptance
// bar, and a multi-edge case checks that per-entity policy RNG streams
// keep the guarantee independent of topology.
//
// Part 2 sweeps the geo-skewed tiered serving workload (per-edge Zipf
// hotspots, precision-bounded edge reads, updates streaming through the
// bus) across edges × worker threads × read-lock modes. "seqlock" edge
// reads validate an optimistic per-entry versioned read and take no lock
// at all; "shared"/"exclusive" are the lock baselines. Every returned
// interval is checked against its constraint; violations must be 0.
//
// Part 3 runs the phase-shifting edge-affinity scenario: each thread's
// home edge rotates mid-run, so every hotspot migrates to an edge whose
// derived widths were tuned for different traffic and the adaptive δ
// must re-converge.
//
// Usage: bench_tiered_throughput [queries_per_thread] [num_sources] [out.json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "hierarchy/hierarchy.h"
#include "runtime/tiered_engine.h"
#include "runtime/workload_driver.h"
#include "util/rng.h"

namespace {

using namespace apc;

constexpr uint64_t kSeed = 2026;
constexpr double kZipfS = 1.1;

constexpr ReadLockMode kModes[] = {ReadLockMode::kSeqlock,
                                   ReadLockMode::kShared,
                                   ReadLockMode::kExclusive};

const char* ModeName(ReadLockMode mode) {
  switch (mode) {
    case ReadLockMode::kSeqlock:
      return "seqlock";
    case ReadLockMode::kShared:
      return "shared";
    case ReadLockMode::kExclusive:
      return "exclusive";
  }
  return "?";
}

HierarchyConfig SequentialConfig(int sources, int edges) {
  HierarchyConfig config;
  config.num_sources = sources;
  config.num_edges = edges;
  config.wan = {4.0, 8.0};
  config.lan = {1.0, 2.0};
  config.regional_policy.alpha = 1.0;
  config.regional_policy.initial_width = 4.0;
  config.edge_policy.alpha = 1.0;
  config.edge_policy.initial_width = 8.0;
  return config;
}

TieredConfig TieredFrom(const HierarchyConfig& sequential, int num_shards,
                        ReadLockMode mode) {
  TieredConfig config;
  config.num_edges = sequential.num_edges;
  config.num_shards = num_shards;
  config.wan = sequential.wan;
  config.lan = sequential.lan;
  config.regional_policy = sequential.regional_policy;
  config.edge_policy = sequential.edge_policy;
  config.read_lock_mode = mode;
  config.seed = kSeed;
  return config;
}

std::vector<std::unique_ptr<UpdateStream>> Streams(int n, uint64_t seed) {
  return BuildRandomWalkStreams(n, RandomWalkParams{}, seed);
}

/// Part 1: lockstep parity vs the sequential HierarchicalSystem — same
/// answers tick for tick, same WAN and LAN charges at the end.
bool ParityCheck(int num_sources, int num_edges, ReadLockMode mode) {
  constexpr int64_t kTicks = 400;
  HierarchyConfig seq_config = SequentialConfig(num_sources, num_edges);
  HierarchicalSystem sequential(seq_config, Streams(num_sources, kSeed ^ 0x7),
                                kSeed);
  sequential.BeginMeasurement(0);

  TieredEngine tiered(TieredFrom(seq_config, 1, mode),
                      Streams(num_sources, kSeed ^ 0x7));
  tiered.PopulateInitial(0);
  tiered.BeginMeasurement(0);

  Rng reads(kSeed ^ 0xF00D);
  bool answers_match = true;
  for (int64_t t = 1; t <= kTicks; ++t) {
    sequential.Tick(t);
    tiered.TickAll(t);
    int edge = static_cast<int>(reads.UniformInt(0, num_edges - 1));
    int id = static_cast<int>(reads.UniformInt(0, num_sources - 1));
    double constraint = reads.Uniform(0.0, 30.0);
    answers_match = answers_match &&
                    sequential.Read(edge, id, constraint, t) ==
                        tiered.Read(edge, id, constraint, t);
  }
  sequential.EndMeasurement(kTicks);
  tiered.EndMeasurement(kTicks);

  EngineCosts wan = tiered.WanCosts();
  EngineCosts lan = tiered.LanCosts();
  bool match =
      answers_match &&
      wan.value_refreshes == sequential.wan_costs().value_refreshes() &&
      wan.query_refreshes == sequential.wan_costs().query_refreshes() &&
      lan.value_refreshes == sequential.lan_costs().value_refreshes() &&
      lan.query_refreshes == sequential.lan_costs().query_refreshes() &&
      wan.total_cost + lan.total_cost ==
          sequential.wan_costs().total_cost() +
              sequential.lan_costs().total_cost();
  std::printf(
      "  %-9s %d edge%s vs HierarchicalSystem: wan vr=%lld qr=%lld | "
      "lan vr=%lld qr=%lld  ->  %s\n",
      ModeName(mode), num_edges, num_edges == 1 ? " " : "s",
      static_cast<long long>(wan.value_refreshes),
      static_cast<long long>(wan.query_refreshes),
      static_cast<long long>(lan.value_refreshes),
      static_cast<long long>(lan.query_refreshes),
      match ? "MATCH" : "MISMATCH");
  return match;
}

struct SweepPoint {
  ReadLockMode mode = ReadLockMode::kSeqlock;
  int edges = 1;
  int threads = 1;
  TieredDriverReport report;
};

TieredDriverReport RunOne(ReadLockMode mode, int edges, int threads,
                          int64_t queries_per_thread, int num_sources,
                          int num_phases, int64_t* reads_executed) {
  HierarchyConfig seq_config = SequentialConfig(num_sources, edges);
  // Shards scale with the host, never past the source count.
  int shards = std::min(num_sources, 4);
  TieredEngine engine(TieredFrom(seq_config, shards, mode),
                      Streams(num_sources, kSeed ^ 0x31));

  TieredWorkloadConfig workload;
  workload.num_threads = threads;
  workload.queries_per_thread = queries_per_thread;
  workload.num_sources = num_sources;
  workload.zipf_s = kZipfS;
  workload.constraints = {15.0, 1.0};
  workload.run_updates = true;
  workload.update_burst = 8;
  workload.num_phases = num_phases;
  // Mode-independent seed: every lock mode faces identical draws.
  workload.seed = kSeed + static_cast<uint64_t>(edges * 1000 + threads * 10);
  TieredDriverReport report = RunTieredWorkload(engine, workload);
  *reads_executed = engine.counters().reads.load();
  return report;
}

/// Median-of-repeats, like bench_runtime_throughput: the committed
/// trajectory tracks the code, not the interleaving lottery. Violations
/// accumulate across ALL repeats.
TieredDriverReport RunMedian(int repeats, ReadLockMode mode, int edges,
                             int threads, int64_t queries_per_thread,
                             int num_sources, int64_t* reads_executed,
                             int64_t* all_violations) {
  std::vector<TieredDriverReport> reports;
  std::vector<int64_t> executed(static_cast<size_t>(repeats), 0);
  for (int r = 0; r < repeats; ++r) {
    reports.push_back(RunOne(mode, edges, threads, queries_per_thread,
                             num_sources, /*num_phases=*/1,
                             &executed[static_cast<size_t>(r)]));
    *all_violations += reports.back().violations;
  }
  std::vector<size_t> order(reports.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return reports[a].queries_per_second < reports[b].queries_per_second;
  });
  size_t median = order[order.size() / 2];
  *reads_executed = executed[median];
  return reports[median];
}

}  // namespace

int main(int argc, char** argv) {
  int64_t queries_per_thread = argc > 1 ? std::atoll(argv[1]) : 20000;
  int num_sources = argc > 2 ? std::atoi(argv[2]) : 256;
  std::string out_path = argc > 3 ? argv[3] : "BENCH_tiered.json";
  if (queries_per_thread <= 0 || num_sources <= 0) {
    std::fprintf(stderr,
                 "usage: %s [queries_per_thread] [num_sources] [out.json]\n",
                 argv[0]);
    return 2;
  }

  bench::BenchReport report("tiered_throughput");
  report.Meta()
      .Int("queries_per_thread", queries_per_thread)
      .Int("num_sources", num_sources)
      .Num("zipf_s", kZipfS)
      .Str("costs", "wan cvr=4 cqr=8, lan cvr=1 cqr=2")
      .Int("hardware_threads",
           static_cast<int64_t>(std::thread::hardware_concurrency()))
      .Str("workload",
           "geo-skewed precision-bounded edge reads, tick-all updates via "
           "bus")
      .Str("units", "latency us, qps reads/s, cost rates cost/tick");

  bench::Banner("TIERED-1",
                "lockstep TieredEngine reproduces HierarchicalSystem");
  bool parity = true;
  for (ReadLockMode mode : kModes) {
    parity = ParityCheck(/*num_sources=*/8, /*num_edges=*/1, mode) && parity;
  }
  parity = ParityCheck(/*num_sources=*/8, /*num_edges=*/3,
                       ReadLockMode::kSeqlock) &&
           parity;

  bench::Banner("TIERED-2",
                "geo-skewed edge serving: edges x threads x read mode");
  bench::Note("per-edge Zipf hotspots; seqlock edge reads take no lock;");
  bench::Note("escalation: edge -> regional (lan Cqr) -> source (wan Cqr)");
  std::printf("\n  %9s %6s %8s %12s %9s %9s %10s %10s %7s %11s\n", "mode",
              "edges", "threads", "reads/s", "p50 us", "p99 us", "edge-hit%",
              "cost/tick", "ticks", "violations");

  std::vector<SweepPoint> sweep;
  int64_t total_violations = 0;
  bool concurrent_progress = false;
  for (ReadLockMode mode : kModes) {
    for (int edges : {1, 4}) {
      for (int threads : {1, 4, 8}) {
        SweepPoint point;
        point.mode = mode;
        point.edges = edges;
        point.threads = threads;
        int64_t executed = 0;
        point.report =
            RunMedian(/*repeats=*/5, mode, edges, threads,
                      queries_per_thread, num_sources, &executed,
                      &total_violations);
        const TieredDriverReport& r = point.report;
        if (threads > 1 &&
            executed == static_cast<int64_t>(threads) * queries_per_thread) {
          concurrent_progress = true;
        }
        double edge_hit_pct =
            r.queries > 0
                ? 100.0 * static_cast<double>(r.edge_hits) /
                      static_cast<double>(r.queries)
                : 0.0;
        std::printf(
            "  %9s %6d %8d %12.0f %9.1f %9.1f %9.1f%% %10.3f %7lld %11lld\n",
            ModeName(mode), edges, threads, r.queries_per_second,
            r.latency_p50_us, r.latency_p99_us, edge_hit_pct,
            r.TotalCostRate(), static_cast<long long>(r.ticks),
            static_cast<long long>(r.violations));
        report.AddRun()
            .Str("scenario", "steady")
            .Str("mode", ModeName(mode))
            .Int("edges", edges)
            .Int("threads", threads)
            .Num("zipf_s", kZipfS)
            .Num("qps", r.queries_per_second)
            .Num("p50_us", r.latency_p50_us)
            .Num("p95_us", r.latency_p95_us)
            .Num("p99_us", r.latency_p99_us)
            .Num("wan_cost_rate", r.wan.CostRate())
            .Num("lan_cost_rate", r.lan.CostRate())
            .Num("cost_rate", r.TotalCostRate())
            .Int("queries", r.queries)
            .Int("ticks", r.ticks)
            .Int("edge_hits", r.edge_hits)
            .Int("regional_hits", r.regional_hits)
            .Int("source_pulls", r.source_pulls)
            .Int("derived_pushes", r.derived_pushes)
            .Int("violations", r.violations);
        sweep.push_back(std::move(point));
      }
    }
  }

  bench::Banner("TIERED-3", "phase-shifting edge affinity (hotspot migration)");
  bench::Note("3 phases: every thread's home edge rotates, each Zipf hotspot");
  bench::Note("lands on an edge whose derived widths were tuned elsewhere");
  {
    int64_t executed = 0;
    TieredDriverReport r =
        RunOne(ReadLockMode::kSeqlock, /*edges=*/4, /*threads=*/4,
               queries_per_thread, num_sources, /*num_phases=*/3, &executed);
    total_violations += r.violations;
    std::printf("  %lld reads in %.2fs -> %.0f reads/s, p99 %.1f us, "
                "%lld ticks, hit mix %lld/%lld/%lld, %lld violations\n",
                static_cast<long long>(r.queries), r.wall_seconds,
                r.queries_per_second, r.latency_p99_us,
                static_cast<long long>(r.ticks),
                static_cast<long long>(r.edge_hits),
                static_cast<long long>(r.regional_hits),
                static_cast<long long>(r.source_pulls),
                static_cast<long long>(r.violations));
    report.AddRun()
        .Str("scenario", "phase_shift")
        .Str("mode", "seqlock")
        .Int("edges", 4)
        .Int("threads", 4)
        .Num("zipf_s", kZipfS)
        .Int("phases", 3)
        .Num("qps", r.queries_per_second)
        .Num("p50_us", r.latency_p50_us)
        .Num("p95_us", r.latency_p95_us)
        .Num("p99_us", r.latency_p99_us)
        .Num("wan_cost_rate", r.wan.CostRate())
        .Num("lan_cost_rate", r.lan.CostRate())
        .Num("cost_rate", r.TotalCostRate())
        .Int("queries", r.queries)
        .Int("ticks", r.ticks)
        .Int("edge_hits", r.edge_hits)
        .Int("regional_hits", r.regional_hits)
        .Int("source_pulls", r.source_pulls)
        .Int("derived_pushes", r.derived_pushes)
        .Int("violations", r.violations);
  }

  // Headline: the three modes at the widest concurrency. As in
  // bench_runtime_throughput, the exit status gates only the correctness
  // invariants — perf ordering is reported, not enforced, because a smoke
  // run on an arbitrary host cannot resolve a perf race.
  bench::Banner("SUMMARY", "seqlock vs shared vs exclusive at 8 threads");
  bool seqlock_holds = true;
  for (int edges : {1, 4}) {
    double qps[3] = {0.0, 0.0, 0.0};
    for (const SweepPoint& point : sweep) {
      if (point.threads != 8 || point.edges != edges) continue;
      qps[static_cast<int>(point.mode)] = point.report.queries_per_second;
    }
    double seqlock = qps[static_cast<int>(ReadLockMode::kSeqlock)];
    double shared = qps[static_cast<int>(ReadLockMode::kShared)];
    double exclusive = qps[static_cast<int>(ReadLockMode::kExclusive)];
    if (seqlock < shared) seqlock_holds = false;
    std::printf(
        "  8 threads, %d edge%s: seqlock %8.0f | shared %8.0f | exclusive "
        "%8.0f reads/s  (seqlock vs shared %+.1f%%)\n",
        edges, edges == 1 ? " " : "s", seqlock, shared, exclusive,
        shared > 0.0 ? 100.0 * (seqlock - shared) / shared : 0.0);
  }

  bool wrote = report.WriteFile(out_path);
  std::printf("\n");
  bench::Note(wrote ? "trajectory written to " + out_path
                    : "FAILED to write " + out_path);
  bench::Note(parity ? "parity: lockstep TieredEngine MATCHES "
                       "HierarchicalSystem (answers + WAN/LAN charges)"
                     : "parity: MISMATCH vs HierarchicalSystem (BUG)");
  bench::Note(total_violations == 0
                  ? "precision: every concurrent read met its constraint"
                  : "precision: CONSTRAINT VIOLATIONS OBSERVED (BUG)");
  bench::Note(concurrent_progress
                  ? "concurrency: multi-thread runs completed all reads"
                  : "concurrency: multi-thread runs made no progress (BUG)");
  bench::Note(seqlock_holds
                  ? "seqlock edge reads >= shared-lock reads at 8 threads"
                  : "seqlock edge reads LOST to shared locks at 8 threads");
  return (parity && total_violations == 0 && concurrent_progress && wrote)
             ? 0
             : 1;
}
