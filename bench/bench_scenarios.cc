// Adversarial scenario matrix: replays the four scripted scenarios
// (flash crowd, hotspot migration, correlated update bursts, subscriber
// thundering herd — src/scenario/) under the four precision policies of
// the paper's comparison set (adaptive intervals, exact caching [WJH97],
// stale-adapted adaptive, Divergence Caching [HSW94]) and reports the
// mid-run self-check tallies next to the cost comparison.
//
// Exit gate: every adaptive row must finish with zero precision
// violations, zero containment failures, zero hull failures and zero
// notification order regressions — counted WHILE the workload runs, not
// recomputed afterwards — and the checkers must actually have probed
// (checker_probes > 0). A non-zero tally exits 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "scenario/scenario.h"
#include "scenario/scenario_runner.h"

namespace {

using namespace apc;

void AddRow(bench::BenchReport& report, const ScenarioMetrics& m) {
  report.AddRun()
      .Str("scenario", m.scenario)
      .Str("policy", m.policy)
      .Int("ticks", m.ticks)
      .Int("reads", m.reads)
      .Int("updates", m.updates)
      .Int("violations", m.violations)
      .Int("containment_failures", m.containment_failures)
      .Int("hull_failures", m.hull_failures)
      .Int("order_regressions", m.order_regressions)
      .Int("checker_probes", m.checker_probes)
      .Int("value_refreshes", m.value_refreshes)
      .Int("query_refreshes", m.query_refreshes)
      .Num("total_cost", m.total_cost)
      .Num("cost_rate", m.cost_rate)
      .Int("subscriptions", m.subscriptions)
      .Int("notifications", m.notifications)
      .Int("sub_rejected", m.sub_rejected)
      .Int("bound_met", m.bound_met);
}

void PrintRow(const ScenarioMetrics& m) {
  std::printf("  %-18s %-10s %7lld %8lld %5lld %5lld %5lld %5lld %8lld %11.1f %8.3f\n",
              m.scenario.c_str(), m.policy.c_str(),
              static_cast<long long>(m.reads),
              static_cast<long long>(m.updates),
              static_cast<long long>(m.violations),
              static_cast<long long>(m.containment_failures),
              static_cast<long long>(m.hull_failures),
              static_cast<long long>(m.order_regressions),
              static_cast<long long>(m.checker_probes), m.total_cost,
              m.cost_rate);
}

}  // namespace

int main(int argc, char** argv) {
  int ticks = argc > 1 ? std::atoi(argv[1]) : 240;
  uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1;
  std::string out_path = argc > 3 ? argv[3] : "BENCH_scenarios.json";
  if (ticks <= 0) {
    std::fprintf(stderr, "usage: %s [ticks] [seed] [out.json]\n", argv[0]);
    return 2;
  }

  bench::BenchReport report("scenarios");
  report.Meta()
      .Int("ticks", ticks)
      .Int("seed", static_cast<int64_t>(seed))
      .Str("scenarios",
           "flash_crowd, hotspot_migration (tiered), correlated_bursts, "
           "thundering_herd (subscriptions)")
      .Str("policies",
           "adaptive (system under test), exact [WJH97], stale-adapted "
           "adaptive, divergence caching [HSW94]")
      .Str("costs",
           "flat: cvr=1 cqr=2; hotspot: wan cvr=4 cqr=8 + lan cvr=1 cqr=2 "
           "(baselines charged at wan)")
      .Str("checkers",
           "MID-RUN: every read checked against its constraint and the "
           "scripted exact value as it executes; tiered hull invariant "
           "probed every tick; drained notifications checked for epoch "
           "order and containment at their compute tick")
      .Str("units",
           "costs in protocol cost units; stale-model constraints in "
           "update units (paper section 4.7)");

  const ScenarioKind kKinds[] = {
      ScenarioKind::kFlashCrowd,
      ScenarioKind::kHotspotMigration,
      ScenarioKind::kCorrelatedBursts,
      ScenarioKind::kThunderingHerd,
  };
  const PolicyKind kPolicies[] = {
      PolicyKind::kAdaptive,
      PolicyKind::kExact,
      PolicyKind::kStale,
      PolicyKind::kDivergence,
  };

  bench::Banner("SCEN-1",
                "adversarial scenarios x precision policies (self-checked)");
  std::printf("\n  %-18s %-10s %7s %8s %5s %5s %5s %5s %8s %11s %8s\n",
              "scenario", "policy", "reads", "updates", "viol", "cont",
              "hull", "order", "probes", "cost", "cost/t");

  bool gate_ok = true;
  for (ScenarioKind kind : kKinds) {
    ScenarioConfig config;
    config.kind = kind;
    config.ticks = ticks;
    config.seed = seed;
    ScenarioScript script = BuildScenario(config);
    for (PolicyKind policy : kPolicies) {
      ScenarioMetrics m = RunScenario(script, policy);
      PrintRow(m);
      AddRow(report, m);
      if (m.checker_probes <= 0) gate_ok = false;
      // The adaptive rows are the protocol's contract: zero tolerance.
      // Baseline rows honor their own (weaker) models' guarantees, which
      // the checkers verify in those models' units — also zero.
      if (m.violations != 0 || m.containment_failures != 0 ||
          m.hull_failures != 0 || m.order_regressions != 0) {
        gate_ok = false;
      }
    }
    std::printf("\n");
  }

  bool wrote = report.WriteFile(out_path);
  bench::Note(wrote ? "trajectory written to " + out_path
                    : "FAILED to write " + out_path);
  bench::Note(gate_ok ? "gate: zero violations on every row, checkers probed"
                      : "gate: FAILED (violations observed or checkers idle)");
  if (!wrote || !gate_ok) return 1;
  return 0;
}
