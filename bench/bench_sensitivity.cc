// Reproduces the §4.4 sensitivity notes that accompany Figures 6-9:
//  (a) lower-threshold delta0: performance under a delta_avg = 0 workload
//      is insensitive to delta0 as long as delta0 > 0, and a small delta0
//      costs queries with small nonzero constraints (5K..15K) well under a
//      few percent;
//  (b) constraint-variation rho: widening the constraint distribution from
//      rho = 0 to rho = 1 degrades performance only mildly (paper: 1.9% at
//      delta_avg = 100K, 5.5% at 10K, <1% at 5K).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/experiments.h"

int main() {
  using namespace apc;

  bench::Banner("Section 4.4(a)", "sensitivity to the lower threshold delta0");
  std::printf("  exact workload (delta_avg = 0, Tq = 1, delta1 = delta0):\n");
  std::printf("%12s %12s\n", "delta0", "cost");
  for (double delta0 : {0.5e3, 1e3, 2e3, 4e3}) {
    NetworkExperiment exp;
    exp.delta_avg = 0.0;
    exp.rho = 0.0;
    exp.delta0 = delta0;
    exp.delta1 = delta0;
    SimResult r = RunNetworkAdaptive(exp);
    std::printf("%12s %12.3f\n", bench::Num(delta0).c_str(), r.cost_rate);
  }

  std::printf("\n  small nonzero constraints (5K..15K, Tq = 1, delta1 = inf):\n");
  std::printf("%12s %12s %10s\n", "delta0", "cost", "vs d0=0");
  double baseline = 0.0;
  for (double delta0 : {0.0, 1e3, 2e3, 4e3}) {
    NetworkExperiment exp;
    exp.delta_avg = 10e3;
    exp.rho = 0.5;  // constraints uniform on [5K, 15K]
    exp.delta0 = delta0;
    exp.delta1 = kInfinity;
    SimResult r = RunNetworkAdaptive(exp);
    if (delta0 == 0.0) baseline = r.cost_rate;
    std::printf("%12s %12.3f %9.1f%%\n", bench::Num(delta0).c_str(),
                r.cost_rate, 100.0 * (r.cost_rate / baseline - 1.0));
  }
  bench::Note("paper: delta0 = 1K degrades [5K,15K] workloads by < 1%");

  bench::Banner("Section 4.4(b)",
                "sensitivity to the constraint variation rho");
  std::printf("%12s | %12s %12s %10s   (each cell: mean of 5 seeds)\n",
              "delta_avg", "cost rho=0", "cost rho=1", "delta");
  for (double delta_avg : {5e3, 10e3, 100e3}) {
    double mean_cost[2] = {0.0, 0.0};
    int i = 0;
    for (double rho : {0.0, 1.0}) {
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        NetworkExperiment exp;
        exp.delta_avg = delta_avg;
        exp.rho = rho;
        exp.delta0 = 1e3;
        exp.delta1 = kInfinity;
        exp.tq = 1.0;
        exp.seed = seed;
        mean_cost[i] += RunNetworkAdaptive(exp).cost_rate / 5.0;
      }
      ++i;
    }
    std::printf("%12s | %12.3f %12.3f %9.1f%%\n",
                bench::Num(delta_avg).c_str(), mean_cost[0], mean_cost[1],
                100.0 * (mean_cost[1] / mean_cost[0] - 1.0));
  }
  bench::Note("paper: 1.9% at 100K, 5.5% at 10K, <1% at 5K — the algorithm "
              "is not very sensitive to the constraint spread");
  return 0;
}
