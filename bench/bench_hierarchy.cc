// Extension bench (paper §5 future work): two-level caching. Measures how
// WAN traffic scales with the number of edge caches sharing a regional
// cache, and the derived-precision effect — edges cannot be more precise
// than their parent, so a single tight-reading edge drags WAN cost up for
// everyone.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "data/random_walk.h"
#include "hierarchy/hierarchy.h"
#include "util/rng.h"

namespace {

using namespace apc;

HierarchyConfig BaseConfig(int sources, int edges) {
  HierarchyConfig config;
  config.num_sources = sources;
  config.num_edges = edges;
  config.wan = {4.0, 8.0};
  config.lan = {1.0, 2.0};
  config.regional_policy.alpha = 1.0;
  config.regional_policy.initial_width = 4.0;
  config.edge_policy.alpha = 1.0;
  config.edge_policy.initial_width = 8.0;
  return config;
}

std::vector<std::unique_ptr<UpdateStream>> Streams(int n) {
  RandomWalkParams walk;
  std::vector<std::unique_ptr<UpdateStream>> streams;
  Rng seeder(77);
  for (int i = 0; i < n; ++i) {
    streams.push_back(
        std::make_unique<RandomWalkStream>(walk, seeder.NextUint64()));
  }
  return streams;
}

struct HierarchyResult {
  double wan, lan, total;
};

HierarchyResult Run(int edges, double tight_slack, double loose_slack,
                    int tight_edges) {
  const int kSources = 20;
  const int64_t kHorizon = 60000;
  HierarchicalSystem system(BaseConfig(kSources, edges), Streams(kSources),
                            13);
  Rng rng(5);
  system.BeginMeasurement(0);
  for (int64_t t = 1; t <= kHorizon; ++t) {
    system.Tick(t);
    for (int e = 0; e < edges; ++e) {
      int id = static_cast<int>(rng.UniformInt(0, kSources - 1));
      double slack = e < tight_edges ? tight_slack : loose_slack;
      system.Read(e, id, slack, t);
    }
  }
  system.EndMeasurement(kHorizon);
  return {system.wan_costs().CostRate(), system.lan_costs().CostRate(),
          system.TotalCostRate()};
}

}  // namespace

int main() {
  bench::Banner("Extension (paper 5)",
                "two-level caching: WAN amortization across edges");

  std::printf("  20 random-walk sources, 1 read/edge/s, slack 20, WAN costs"
              " (4,8), LAN (1,2)\n");
  std::printf("%8s %10s %10s %10s %16s\n", "edges", "WAN", "LAN", "total",
              "WAN per edge");
  for (int edges : {1, 2, 4, 8, 16}) {
    HierarchyResult r = Run(edges, 20.0, 20.0, edges);
    std::printf("%8d %10.3f %10.3f %10.3f %16.3f\n", edges, r.wan, r.lan,
                r.total, r.wan / edges);
  }
  bench::Note("WAN cost grows sublinearly with edges: the regional cache "
              "absorbs shared precision demand");

  bench::Banner("Extension (paper 5b)",
                "derived precision: one tight edge raises everyone's cost");
  std::printf("  8 edges, loose slack 40; k edges read with slack 2\n");
  std::printf("%14s %10s %10s %10s\n", "tight edges", "WAN", "LAN",
              "total");
  for (int tight : {0, 1, 4, 8}) {
    HierarchyResult r = Run(8, 2.0, 40.0, tight);
    std::printf("%14d %10.3f %10.3f %10.3f\n", tight, r.wan, r.lan,
                r.total);
  }
  bench::Note("a single tight reader forces narrow regional intervals, so "
              "WAN pushes rise even though 7 of 8 edges stayed loose — the "
              "multi-level precision coupling the paper's future work "
              "anticipates");
  return 0;
}
