// Reproduces Figures 12 and 13: the same exact-caching comparison as
// Figures 10-11 but with a small cache (chi = 20 of 50 values). With
// limited space, inexact intervals tend to be evicted (they are the
// widest), so nonzero precision constraints help much less.
#include <cstdio>

#include "bench_util.h"
#include "sim/experiments.h"

namespace {

void RunFigure(const char* id, double theta) {
  using namespace apc;
  char title[96];
  std::snprintf(title, sizeof(title),
                "vs exact caching, theta = %.0f, chi = 20 (small cache)",
                theta);
  bench::Banner(id, title);

  std::printf("%5s | %12s %14s | %12s %12s\n", "Tq", "exact[WJH97]",
              "ours d1=d0", "d1=inf,d=0", "d1=inf,500K");
  for (double tq : {0.5, 1.0, 2.0, 5.0}) {
    NetworkExperiment base;
    base.tq = tq;
    base.theta = theta;
    base.chi = 20;
    base.rho = 0.5;
    base.delta0 = 1e3;

    int best_x = 0;
    NetworkExperiment exact_exp = base;
    exact_exp.delta_avg = 0.0;
    SimResult exact = RunNetworkExactCaching(
        exact_exp, DefaultExactCachingXGrid(), &best_x);

    NetworkExperiment ours_exact = base;
    ours_exact.delta_avg = 0.0;
    ours_exact.delta1 = 1e3;
    SimResult r_exact_mode = RunNetworkAdaptive(ours_exact);

    SimResult r_inf[2];
    int i = 0;
    for (double delta_avg : {0.0, 500e3}) {
      NetworkExperiment exp = base;
      exp.delta_avg = delta_avg;
      exp.delta1 = kInfinity;
      r_inf[i++] = RunNetworkAdaptive(exp);
    }

    std::printf("%5.1f | %9.2f(x=%2d) %14.2f | %12.2f %12.2f\n", tq,
                exact.cost_rate, best_x, r_exact_mode.cost_rate,
                r_inf[0].cost_rate, r_inf[1].cost_rate);
  }
  bench::Note("paper: with chi = 20 the delta1=d0 curve still tracks exact "
              "caching; precision slack helps less than with a full cache");
}

}  // namespace

int main() {
  RunFigure("Figure 12", /*theta=*/1.0);
  RunFigure("Figure 13", /*theta=*/4.0);
  return 0;
}
