// Reproduces Figures 7, 8 and 9: average cost rate as a function of the
// average precision constraint delta_avg, for three settings of the upper
// threshold delta1 (delta1 = delta0 = 1K, delta1 = 2K, delta1 = inf), one
// figure per query period Tq in {0.5, 1, 2}. Fixed: alpha = 1, rho = 0.5,
// delta0 = 1K, theta = 1, SUM queries.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/experiments.h"

int main() {
  using namespace apc;
  const std::vector<double> delta_avgs = {0.0,   25e3,  50e3,  100e3,
                                          200e3, 300e3, 400e3, 500e3};
  const struct {
    double delta1;
    const char* label;
  } settings[] = {{1e3, "delta1=delta0=1K"},
                  {2e3, "delta1=2K"},
                  {kInfinity, "delta1=inf"}};

  int figure = 7;
  for (double tq : {0.5, 1.0, 2.0}) {
    char id[32];
    std::snprintf(id, sizeof(id), "Figure %d", figure++);
    char title[64];
    std::snprintf(title, sizeof(title),
                  "upper-threshold settings, Tq = %.1f", tq);
    bench::Banner(id, title);

    std::printf("%10s |", "delta_avg");
    for (const auto& s : settings) std::printf(" %18s", s.label);
    std::printf("\n");
    for (double delta_avg : delta_avgs) {
      std::printf("%10s |", bench::Num(delta_avg).c_str());
      for (const auto& s : settings) {
        NetworkExperiment exp;
        exp.tq = tq;
        exp.delta_avg = delta_avg;
        exp.rho = 0.5;
        exp.alpha = 1.0;
        exp.delta0 = 1e3;
        exp.delta1 = s.delta1;
        exp.theta = 1.0;
        SimResult r = RunNetworkAdaptive(exp);
        std::printf(" %18.3f", r.cost_rate);
      }
      std::printf("\n");
    }
  }
  bench::Note("");
  bench::Note("paper: delta1=delta0 is flat in delta_avg (exact-or-nothing) "
              "and best at delta_avg=0;");
  bench::Note("delta1=inf wins once constraints allow imprecision; "
              "delta1=2K sits between");
  return 0;
}
