// Reproduces §4.5, "Unsuccessful Variations": ablation of the three
// algorithm variants the paper tried and rejected —
//  (1) uncentered intervals (independent upper/lower widths),
//  (2) time-varying intervals (widths growing like t^(1/2) or t^(1/3), and
//      linearly drifting intervals), and
//  (3) refresh-history windows (adjust on the majority of the last r
//      refreshes)
// on three workloads: the unbiased random walk, a strongly biased random
// walk, and the network trace. The paper's findings to reproduce: the base
// algorithm wins everywhere except that uncentered intervals and linearly
// drifting intervals help slightly on *biased* walks.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_util.h"
#include "core/variants/history_policy.h"
#include "core/variants/time_varying.h"
#include "core/variants/uncentered_policy.h"
#include "sim/experiments.h"

namespace {

using namespace apc;

struct Variant {
  const char* name;
  std::function<std::unique_ptr<PrecisionPolicy>(
      const AdaptivePolicyParams&, uint64_t)>
      make;
};

const Variant kVariants[] = {
    {"base (centered, const)",
     [](const AdaptivePolicyParams& p, uint64_t seed) {
       return std::unique_ptr<PrecisionPolicy>(
           std::make_unique<AdaptivePolicy>(p, seed));
     }},
    {"uncentered",
     [](const AdaptivePolicyParams& p, uint64_t seed) {
       return std::unique_ptr<PrecisionPolicy>(
           std::make_unique<UncenteredPolicy>(p, seed));
     }},
    {"grow t^(1/2)",
     [](const AdaptivePolicyParams& p, uint64_t seed) {
       return std::unique_ptr<PrecisionPolicy>(
           std::make_unique<TimeVaryingPolicy>(
               p, TimeVaryingMode::kSqrtGrowth, 0.25 * p.initial_width,
               seed));
     }},
    {"grow t^(1/3)",
     [](const AdaptivePolicyParams& p, uint64_t seed) {
       return std::unique_ptr<PrecisionPolicy>(
           std::make_unique<TimeVaryingPolicy>(
               p, TimeVaryingMode::kCbrtGrowth, 0.25 * p.initial_width,
               seed));
     }},
    {"history r=3",
     [](const AdaptivePolicyParams& p, uint64_t seed) {
       return std::unique_ptr<PrecisionPolicy>(
           std::make_unique<HistoryPolicy>(p, 3, 1.0, seed));
     }},
    {"history r=5 weighted",
     [](const AdaptivePolicyParams& p, uint64_t seed) {
       return std::unique_ptr<PrecisionPolicy>(
           std::make_unique<HistoryPolicy>(p, 5, 0.7, seed));
     }},
};

double RunWalkVariant(const Variant& variant, double up_probability,
                      double drift_coeff) {
  WalkExperiment exp;
  exp.horizon = 150000;
  exp.warmup = 5000;
  SimConfig config = exp.ToSimConfig();

  AdaptivePolicyParams params;
  RefreshCosts costs = CostsForTheta(exp.theta);
  params.cvr = costs.cvr;
  params.cqr = costs.cqr;
  params.alpha = 1.0;
  params.initial_width = 1.0;

  RandomWalkParams walk;
  walk.up_probability = up_probability;

  std::unique_ptr<PrecisionPolicy> prototype;
  if (drift_coeff != 0.0) {
    prototype = std::make_unique<TimeVaryingPolicy>(
        params, TimeVaryingMode::kLinearDrift, drift_coeff, 99);
  } else {
    prototype = variant.make(params, 99);
  }
  return RunIntervalSimulation(config, MakeRandomWalkStreams(1, walk, 5),
                               *prototype)
      .cost_rate;
}

double RunTraceVariant(const Variant& variant) {
  NetworkExperiment exp;
  exp.delta_avg = 100e3;
  exp.rho = 0.5;
  std::unique_ptr<PrecisionPolicy> prototype =
      variant.make(exp.ToPolicyParams(), 99);
  return RunIntervalSimulation(exp.ToSimConfig(),
                               MakeTraceStreams(SharedNetworkTrace()),
                               *prototype)
      .cost_rate;
}

}  // namespace

int main() {
  bench::Banner("Section 4.5", "ablation of the unsuccessful variations");

  std::printf("%-24s %14s %14s %14s\n", "variant", "unbiased walk",
              "biased walk", "network trace");
  for (const auto& variant : kVariants) {
    std::printf("%-24s %14.4f %14.4f %14.4f\n", variant.name,
                RunWalkVariant(variant, 0.5, 0.0),
                RunWalkVariant(variant, 0.9, 0.0), RunTraceVariant(variant));
  }

  // Linear drift, tuned to the biased walk's mean rate: E[step] = 1.0 at
  // up-probability 0.9 gives drift ~ (0.9 - 0.1) * 1.0 = 0.8 per tick.
  Variant base = kVariants[0];
  std::printf("%-24s %14s %14.4f %14s\n", "drift k*t (k=0.8)", "-",
              RunWalkVariant(base, 0.9, 0.8), "-");

  bench::Note("");
  bench::Note("paper: base beats the variants on unbiased and trace data; "
              "uncentered and linear-drift intervals help only on biased "
              "walks");
  return 0;
}
