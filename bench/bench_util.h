#ifndef APC_BENCH_BENCH_UTIL_H_
#define APC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <limits>
#include <string>

namespace apc::bench {

/// Prints a figure/table banner so the bench output reads like the paper's
/// evaluation section.
inline void Banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Formats a value that may be infinity (delta1 = inf rows).
inline std::string Num(double v) {
  if (v == std::numeric_limits<double>::infinity()) return "inf";
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

}  // namespace apc::bench

#endif  // APC_BENCH_BENCH_UTIL_H_
