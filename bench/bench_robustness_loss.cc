// Robustness bench: the paper's protocol guarantees cached intervals stay
// valid "modulo communication overhead" (§1.1), i.e. assuming reliable
// delivery of value-initiated refreshes. This bench drops pushes with
// probability p and measures (a) how much of the time cached entries are
// silently invalid and (b) what happens to the cost rate — quantifying how
// much the correctness of approximate answers depends on the transport.
#include <cstdio>

#include "bench_util.h"
#include "core/adaptive_policy.h"
#include "sim/experiments.h"
#include "sim/simulation.h"

int main() {
  using namespace apc;
  bench::Banner("Robustness", "push loss vs validity and cost");

  std::printf("%10s %10s %12s %14s %16s\n", "loss p", "cost", "lost pushes",
              "invalid rate", "mean #invalid");
  for (double loss : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5}) {
    NetworkExperiment exp;
    exp.delta_avg = 100e3;
    exp.rho = 0.5;
    SimConfig config = exp.ToSimConfig();
    config.system.push_loss_probability = loss;
    AdaptivePolicy prototype(exp.ToPolicyParams(), 5);

    int64_t invalid_ticks = 0;
    int64_t invalid_entries = 0;
    int64_t ticks = 0;
    int64_t lost = 0;
    SimResult r = RunIntervalSimulation(
        config, MakeTraceStreams(SharedNetworkTrace()), prototype,
        [&](int64_t now, const CacheSystem& system) {
          ++ticks;
          int invalid = system.CountInvalidEntries(now);
          invalid_entries += invalid;
          if (invalid > 0) ++invalid_ticks;
          lost = system.lost_pushes();
        });

    std::printf("%10.2f %10.3f %12lld %13.1f%% %16.2f\n", loss, r.cost_rate,
                static_cast<long long>(lost),
                100.0 * static_cast<double>(invalid_ticks) /
                    static_cast<double>(ticks),
                static_cast<double>(invalid_entries) /
                    static_cast<double>(ticks));
  }
  bench::Note("");
  bench::Note("validity degrades roughly linearly in the loss rate while "
              "cost barely moves: lost pushes silently convert refresh "
              "traffic into wrong answers — monitoring validity, not cost, "
              "is what catches a flaky transport");
  return 0;
}
