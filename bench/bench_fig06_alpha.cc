// Reproduces Figure 6: average cost rate as a function of the adaptivity
// parameter alpha, on the network trace with SUM queries, for all twelve
// combinations of theta in {1, 4}, Tq in {0.5, 1, 6} and
// (delta_min, delta_max) in {(50K, 150K), (0, 100K)}; delta0 = 0,
// delta1 = inf (thresholds disabled, as in the paper's alpha study).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/experiments.h"

int main() {
  using namespace apc;
  bench::Banner("Figure 6", "effect of the adaptivity parameter alpha");

  const std::vector<double> alphas = {0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 10.0};

  std::printf("%6s %5s %12s |", "theta", "Tq", "constraints");
  for (double a : alphas) std::printf(" a=%-5.3g", a);
  std::printf("\n");

  struct ConstraintRange {
    double min, max;
    const char* label;
  };
  const ConstraintRange ranges[] = {{50e3, 150e3, "50K..150K"},
                                    {0.0, 100e3, "0..100K"}};

  for (double theta : {1.0, 4.0}) {
    for (double tq : {0.5, 1.0, 6.0}) {
      for (const auto& range : ranges) {
        std::printf("%6.0f %5.1f %12s |", theta, tq, range.label);
        for (double alpha : alphas) {
          NetworkExperiment exp;
          exp.theta = theta;
          exp.tq = tq;
          exp.delta_avg = 0.5 * (range.min + range.max);
          exp.rho = (range.max - range.min) / (range.max + range.min);
          exp.alpha = alpha;
          exp.delta0 = 0.0;
          exp.delta1 = kInfinity;
          SimResult r = RunNetworkAdaptive(exp);
          std::printf(" %7.2f", r.cost_rate);
        }
        std::printf("\n");
      }
    }
  }
  bench::Note("");
  bench::Note("paper: cost is lowest and flattest around alpha ~ 1; very "
              "small alpha adapts too slowly, very large alpha overshoots");
  return 0;
}
