// Reproduces Figure 2: analytic cost rate and refresh probabilities as
// functions of the interval width W, for K1 = 1, K2 = 1/200, theta = 1.
// The cost-rate minimum must coincide with the Pvr/Pqr crossing.
#include <cstdio>

#include "bench_util.h"
#include "core/analytic_model.h"

int main() {
  using namespace apc;
  bench::Banner("Figure 2", "analytic cost rate and refresh probabilities");

  IntervalCostModel model;
  model.k1 = 1.0;
  model.k2 = 1.0 / 200.0;
  model.cvr = 1.0;
  model.cqr = 2.0;  // theta = 1

  std::printf("%8s %10s %10s %10s\n", "W", "Pvr", "Pqr", "cost");
  for (const auto& pt : SweepModel(model, 2.0, 20.0, 19)) {
    std::printf("%8.1f %10.5f %10.5f %10.5f\n", pt.width, pt.pvr, pt.pqr,
                pt.cost_rate);
  }

  double wstar = model.OptimalWidth();
  std::printf("\n  W* (argmin of cost)        = %.4f\n", wstar);
  std::printf("  W at theta*Pvr = Pqr       = %.4f\n", model.BalanceWidth());
  std::printf("  cost at W*                 = %.5f\n", model.CostRate(wstar));
  std::printf("  Pvr(W*) = %.5f, Pqr(W*) = %.5f  (equal when theta = 1)\n",
              model.Pvr(wstar), model.Pqr(wstar));
  bench::Note("paper: minimum of cost curve lies exactly at the Pvr/Pqr "
              "crossing");
  return 0;
}
