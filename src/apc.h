#ifndef APC_APC_H_
#define APC_APC_H_

/// \file
/// Umbrella header for the apcache library — the public API of the
/// SIGMOD 2001 "Adaptive Precision Setting for Cached Approximate Values"
/// reproduction. Include this to get everything; individual headers are
/// fine too and compile faster.
///
/// Layering (each layer only depends on the ones above it):
///   util      — Status/Result, Rng, math helpers, flags
///   core      — Interval, precision policies, analytic model, and the
///               engine-agnostic protocol core: ProtocolCell (per-value
///               state machine), ProtocolTable (entry store + eviction +
///               charging + versioned read slots), CostTracker
///   data      — update streams, synthetic traces, trace I/O
///   query     — precision constraints, bounded aggregates
///   cache     — Source/Cache/CacheSystem: the sequential driver over the
///               protocol core
///   baseline  — WJH97 exact caching, HSW94 divergence caching
///   hierarchy — two-level caching extension
///   sim       — simulation drivers and canned experiments
///   stats     — summaries, series, histograms
///   subscribe — standing precision-bounded queries: SubscriptionTable,
///               NotificationHub, SubscriptionManager over the core's
///               change-detection hook
///   runtime   — sharded concurrent serving engine, the tiered
///               edge/regional engine, and the load drivers

#include "util/flags.h"
#include "util/mathutil.h"
#include "util/rng.h"
#include "util/status.h"

#include "core/adaptive_policy.h"
#include "core/analytic_model.h"
#include "core/cost_model.h"
#include "core/interval.h"
#include "core/precision_policy.h"
#include "core/protocol_cell.h"
#include "core/protocol_table.h"
#include "core/stale_policy.h"
#include "core/variants/history_policy.h"
#include "core/variants/time_varying.h"
#include "core/variants/uncentered_policy.h"

#include "data/random_walk.h"
#include "data/trace_io.h"
#include "data/traffic_trace.h"
#include "data/update_stream.h"

#include "query/aggregate.h"
#include "query/constraint_gen.h"
#include "query/query_gen.h"

#include "cache/cache.h"
#include "cache/source.h"
#include "cache/multi_system.h"
#include "cache/system.h"

#include "baseline/divergence_caching.h"
#include "baseline/exact_caching.h"
#include "baseline/stale_system.h"

#include "hierarchy/hierarchy.h"

#include "sim/experiments.h"
#include "sim/simulation.h"

#include "stats/histogram.h"
#include "stats/stats.h"

#include "subscribe/change_sink.h"
#include "subscribe/notification_hub.h"
#include "subscribe/subscription_manager.h"
#include "subscribe/subscription_table.h"

#include "runtime/shard.h"
#include "runtime/sharded_engine.h"
#include "runtime/tiered_engine.h"
#include "runtime/update_bus.h"
#include "runtime/workload_driver.h"

#endif  // APC_APC_H_
