#ifndef APC_CACHE_SOURCE_H_
#define APC_CACHE_SOURCE_H_

#include <memory>

#include "core/precision_policy.h"
#include "data/update_stream.h"

namespace apc {

/// A data source hosting one exact numeric value (paper §4.1: "each source
/// holds one exact numeric value"). The source owns:
///
///  * the update stream that drives the value,
///  * its per-value precision policy instance, and
///  * the *retained raw width* plus the last approximation it shipped.
///
/// The last shipped approximation matters because caches never notify
/// sources of evictions (paper §2): the source keeps testing validity
/// against what it last sent and keeps pushing value-initiated refreshes
/// even if the cache has since dropped the entry.
class Source {
 public:
  Source(int id, std::unique_ptr<UpdateStream> stream,
         std::unique_ptr<PrecisionPolicy> policy);

  int id() const { return id_; }
  double value() const { return stream_->current(); }
  double raw_width() const { return raw_width_; }
  const CachedApprox& last_approx() const { return last_approx_; }
  PrecisionPolicy* policy() { return policy_.get(); }

  /// Advances the update stream one tick and returns the new exact value.
  double Tick();

  /// True when the current exact value has escaped the last shipped
  /// approximation — the trigger for a value-initiated refresh.
  bool NeedsValueRefresh(int64_t now) const;

  /// True when the escape is above the interval's upper endpoint (consulted
  /// by the uncentered policy variant).
  bool EscapedAbove(int64_t now) const;

  /// Applies the policy's width update for a refresh of kind `type` and
  /// returns the fresh approximation of the current exact value. Updates
  /// both the retained raw width and the last shipped approximation.
  CachedApprox Refresh(RefreshType type, int64_t now);

  /// Ships the very first approximation (initial cache population; the
  /// paper's warm-up period absorbs its cost).
  CachedApprox InitialApprox(int64_t now);

 private:
  int id_;
  std::unique_ptr<UpdateStream> stream_;
  std::unique_ptr<PrecisionPolicy> policy_;
  double raw_width_;
  CachedApprox last_approx_;
};

}  // namespace apc

#endif  // APC_CACHE_SOURCE_H_
