#ifndef APC_CACHE_SOURCE_H_
#define APC_CACHE_SOURCE_H_

#include <memory>

#include "core/protocol_cell.h"
#include "data/update_stream.h"

namespace apc {

/// A data source hosting one exact numeric value (paper §4.1: "each source
/// holds one exact numeric value"): an update stream driving the value,
/// paired with the value's ProtocolCell — the per-value protocol state
/// machine (retained raw width, last-shipped approximation, policy hook)
/// shared by every execution engine (core/protocol_cell.h).
///
/// The last shipped approximation matters because caches never notify
/// sources of evictions (paper §2): the source keeps testing validity
/// against what it last sent and keeps pushing value-initiated refreshes
/// even if the cache has since dropped the entry.
class Source {
 public:
  Source(int id, std::unique_ptr<UpdateStream> stream,
         std::unique_ptr<PrecisionPolicy> policy);

  int id() const { return id_; }
  double value() const { return stream_->current(); }
  double raw_width() const { return cell_.raw_width(); }
  const CachedApprox& last_approx() const { return cell_.last_shipped(); }
  PrecisionPolicy* policy() { return cell_.policy(); }
  const PrecisionPolicy* policy() const { return cell_.policy(); }

  /// The protocol state machine, for engines (ProtocolTable drivers) that
  /// operate on cells directly.
  ProtocolCell& cell() { return cell_; }
  const ProtocolCell& cell() const { return cell_; }

  /// Advances the update stream one tick and returns the new exact value.
  double Tick();

  /// True when the current exact value has escaped the last shipped
  /// approximation — the trigger for a value-initiated refresh.
  bool NeedsValueRefresh(int64_t now) const {
    return cell_.NeedsValueRefresh(value(), now);
  }

  /// True when the escape is above the interval's upper endpoint (consulted
  /// by the uncentered policy variant).
  bool EscapedAbove(int64_t now) const {
    return cell_.EscapedAbove(value(), now);
  }

  /// Applies the policy's width update for a refresh of kind `type` and
  /// returns the fresh approximation of the current exact value.
  CachedApprox Refresh(RefreshType type, int64_t now) {
    return cell_.Refresh(value(), type, now);
  }

  /// Ships the very first approximation (initial cache population; the
  /// paper's warm-up period absorbs its cost).
  CachedApprox InitialApprox(int64_t now) { return cell_.Ship(value(), now); }

 private:
  int id_;
  std::unique_ptr<UpdateStream> stream_;
  ProtocolCell cell_;
};

}  // namespace apc

#endif  // APC_CACHE_SOURCE_H_
