#include "cache/source.h"

namespace apc {

Source::Source(int id, std::unique_ptr<UpdateStream> stream,
               std::unique_ptr<PrecisionPolicy> policy)
    : id_(id),
      stream_(std::move(stream)),
      policy_(std::move(policy)),
      raw_width_(policy_->InitialWidth()) {
  last_approx_ = policy_->MakeApprox(stream_->current(), raw_width_, 0);
}

double Source::Tick() { return stream_->Next(); }

bool Source::NeedsValueRefresh(int64_t now) const {
  return !last_approx_.Valid(value(), now);
}

bool Source::EscapedAbove(int64_t now) const {
  return value() > last_approx_.AtTime(now).hi();
}

CachedApprox Source::Refresh(RefreshType type, int64_t now) {
  RefreshContext ctx;
  ctx.type = type;
  ctx.escaped_above =
      (type == RefreshType::kValueInitiated) && EscapedAbove(now);
  ctx.time = now;
  raw_width_ = policy_->NextWidth(raw_width_, ctx);
  last_approx_ = policy_->MakeApprox(value(), raw_width_, now);
  return last_approx_;
}

CachedApprox Source::InitialApprox(int64_t now) {
  last_approx_ = policy_->MakeApprox(value(), raw_width_, now);
  return last_approx_;
}

}  // namespace apc
