#include "cache/source.h"

namespace apc {

Source::Source(int id, std::unique_ptr<UpdateStream> stream,
               std::unique_ptr<PrecisionPolicy> policy)
    : id_(id),
      stream_(std::move(stream)),
      cell_(std::move(policy), stream_->current(), 0) {}

double Source::Tick() { return stream_->Next(); }

}  // namespace apc
