#ifndef APC_CACHE_CACHE_H_
#define APC_CACHE_CACHE_H_

#include <cstddef>
#include <unordered_map>

#include "core/precision_policy.h"

namespace apc {

/// One cached approximation together with the raw width the source retained
/// when shipping it. Eviction ordering uses raw widths: the paper is
/// explicit that the widest-interval eviction decision "is based on
/// original widths, not on 0 or ∞ widths due to thresholds".
struct CacheEntry {
  CachedApprox approx;
  double raw_width = 0.0;
};

/// Fixed-capacity cache of interval approximations keyed by source id.
/// When full, it evicts the entry with the largest raw width — the least
/// precise approximation contributes least to overall cache precision
/// (paper §2). An offered approximation that would itself be the widest is
/// rejected and the value simply stays uncached.
class Cache {
 public:
  /// `capacity` is the paper's χ: the number of approximations the cache
  /// can hold.
  explicit Cache(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }

  /// Returns the entry for `id`, or nullptr when not cached.
  const CacheEntry* Find(int id) const;

  /// Offers a (re)freshed approximation. Replaces in place when `id` is
  /// already cached; inserts when below capacity; otherwise either evicts
  /// the current widest entry (when the offer is narrower) or rejects the
  /// offer. Returns true when the approximation is cached afterwards.
  bool Offer(int id, const CachedApprox& approx, double raw_width);

  /// Drops `id` if present (used by tests and by capacity changes).
  void Erase(int id);

  /// Id of the entry with the largest raw width, or -1 when empty.
  int WidestId() const;

  const std::unordered_map<int, CacheEntry>& entries() const {
    return entries_;
  }

 private:
  size_t capacity_;
  std::unordered_map<int, CacheEntry> entries_;
};

}  // namespace apc

#endif  // APC_CACHE_CACHE_H_
