#ifndef APC_CACHE_CACHE_H_
#define APC_CACHE_CACHE_H_

#include "core/protocol_table.h"

namespace apc {

/// The storage-and-eviction semantics moved into the protocol core
/// (core/protocol_table.h) so the sequential system, the baselines, and
/// the concurrent shards share one implementation; these aliases keep the
/// historical names working for direct users and tests.
using CacheEntry = ProtocolEntry;

/// Fixed-capacity cache of interval approximations keyed by source id —
/// exactly EntryStore; see its documentation for the eviction rule.
class Cache : public EntryStore {
 public:
  using EntryStore::EntryStore;
};

}  // namespace apc

#endif  // APC_CACHE_CACHE_H_
