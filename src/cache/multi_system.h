#ifndef APC_CACHE_MULTI_SYSTEM_H_
#define APC_CACHE_MULTI_SYSTEM_H_

#include <memory>
#include <vector>

#include "core/adaptive_policy.h"
#include "core/cost_model.h"
#include "data/update_stream.h"
#include "query/aggregate.h"

namespace apc {

/// The general topology of paper §1.1: "Each exact value V may be cached
/// as an approximation by zero or more caches C1, C2, ... Cm", with the
/// source applying the validity test *per cache* — every cache holds its
/// own approximation at its own precision, and the source pushes a refresh
/// only to the caches whose interval the new value escapes.
///
/// Width setting is per (cache, value): each pair runs its own instance of
/// the adaptive algorithm, so a value read tightly at one cache and
/// loosely at another converges to different widths at the two — the
/// flat-m generalization of the single-cache CacheSystem (and of the
/// hierarchical variant, minus the middle tier).
struct MultiSystemConfig {
  RefreshCosts costs;
  int num_caches = 2;
  /// Per-(cache,value) width policy parameters; cvr/cqr are overwritten
  /// from `costs`.
  AdaptivePolicyParams policy;

  bool IsValid() const { return num_caches > 0 && costs.IsValid(); }
};

/// Protocol engine for the multi-cache topology. Queries execute at a
/// specific cache against that cache's approximations; pulls refresh only
/// that cache's interval, pushes go to exactly the caches invalidated by
/// an update.
class MultiCacheSystem {
 public:
  MultiCacheSystem(const MultiSystemConfig& config,
                   std::vector<std::unique_ptr<UpdateStream>> streams,
                   uint64_t seed);

  /// Advances every source one tick; pushes a refresh (cost Cvr each) to
  /// every cache whose approximation the new value escaped.
  void Tick(int64_t now);

  /// Executes a bounded aggregate query at cache `cache`; pulls (cost Cqr
  /// each) refresh only this cache's approximations.
  Interval ExecuteQuery(int cache, const Query& query, int64_t now);

  CostTracker& costs() { return costs_; }
  const CostTracker& costs() const { return costs_; }
  int num_caches() const { return config_.num_caches; }
  size_t num_sources() const { return streams_.size(); }
  double exact_value(int id) const {
    return streams_[static_cast<size_t>(id)]->current();
  }
  Interval interval(int cache, int id) const {
    return entry(cache, id).approx.base;
  }
  double raw_width(int cache, int id) const {
    return entry(cache, id).raw_width;
  }

 private:
  struct Entry {
    std::unique_ptr<AdaptivePolicy> policy;
    double raw_width = 0.0;
    CachedApprox approx;
  };

  Entry& entry(int cache, int id) {
    return entries_[static_cast<size_t>(cache)][static_cast<size_t>(id)];
  }
  const Entry& entry(int cache, int id) const {
    return entries_[static_cast<size_t>(cache)][static_cast<size_t>(id)];
  }

  /// Re-ships (cache, id)'s approximation after a refresh of `type`.
  void Refresh(int cache, int id, RefreshType type, int64_t now);

  MultiSystemConfig config_;
  std::vector<std::unique_ptr<UpdateStream>> streams_;
  std::vector<std::vector<Entry>> entries_;  // [cache][id]
  CostTracker costs_;
};

}  // namespace apc

#endif  // APC_CACHE_MULTI_SYSTEM_H_
