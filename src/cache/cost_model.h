#ifndef APC_CACHE_COST_MODEL_H_
#define APC_CACHE_COST_MODEL_H_

/// Compatibility forwarder: the cost model (RefreshCosts, CostTracker) is
/// part of the engine-agnostic protocol core shared by the sequential
/// system, the baselines, and the concurrent runtime, and lives in
/// core/cost_model.h. Include that directly in new code.
#include "core/cost_model.h"

#endif  // APC_CACHE_COST_MODEL_H_
