#ifndef APC_CACHE_SYSTEM_H_
#define APC_CACHE_SYSTEM_H_

#include <memory>
#include <vector>

#include "cache/cache.h"
#include "cache/source.h"
#include "core/cost_model.h"
#include "core/protocol_table.h"
#include "query/aggregate.h"

namespace apc {

/// Wiring of the approximate-caching environment of paper §1.1/§4.1: n
/// sources, one cache of capacity χ, and the refresh protocol between them.
struct SystemConfig {
  RefreshCosts costs;
  /// Cache capacity χ (number of approximations).
  size_t cache_capacity = 50;
  /// Failure injection: probability that a value-initiated refresh message
  /// is lost in transit. The source believes it shipped (it will not
  /// resend until the value escapes the NEW interval), while the cache
  /// keeps the stale entry — opening a window in which the protocol's
  /// validity guarantee is broken. 0 disables injection; the paper's
  /// protocol assumes reliable delivery ("modulo communication overhead",
  /// §1.1), and the robustness bench quantifies what that assumption is
  /// worth.
  double push_loss_probability = 0.0;

  /// The protocol-core slice of this configuration.
  ProtocolTable::Config TableConfig() const {
    return {costs, cache_capacity, push_loss_probability};
  }
};

/// The sequential end-to-end protocol engine: a single-threaded driver over
/// the shared protocol core (core/protocol_table.h). Advances source
/// updates, lets the ProtocolTable detect and charge value-initiated
/// refreshes, and executes precision-constrained aggregate queries,
/// charging a query-initiated refresh per exact value pulled from a
/// source. The concurrent runtime's Shard drives the very same table, so a
/// single-shard engine reproduces this system bit-for-bit (the lockstep
/// parity tests in tests/runtime_test.cc enforce it).
class CacheSystem {
 public:
  CacheSystem(const SystemConfig& config,
              std::vector<std::unique_ptr<Source>> sources,
              uint64_t seed = 0);

  /// Ships every source's initial approximation to the cache (free of
  /// charge; the paper's warm-up discards start-up costs anyway).
  void PopulateInitial(int64_t now);

  /// Advances every source one tick, then performs all value-initiated
  /// refreshes the new values trigger (cost Cvr each).
  void Tick(int64_t now);

  /// Executes a bounded aggregate query at time `now`. Pulls exact values
  /// (cost Cqr per value) until the result interval satisfies the query's
  /// precision constraint; each pull also ships a fresh interval that is
  /// offered to the cache. Returns the final result interval, whose width
  /// is guaranteed to be at most the constraint.
  Interval ExecuteQuery(const Query& query, int64_t now);

  CostTracker& costs() { return table_.costs(); }
  const CostTracker& costs() const { return table_.costs(); }
  /// The cached-entry view (Find/size/capacity/entries) of the protocol
  /// table — the historical `cache()` observers read through it unchanged.
  const ProtocolTable& cache() const { return table_; }
  const ProtocolTable& table() const { return table_; }
  Source* source(int id) { return sources_.at(static_cast<size_t>(id)).get(); }
  const Source* source(int id) const {
    return sources_.at(static_cast<size_t>(id)).get();
  }
  size_t num_sources() const { return sources_.size(); }

  /// Mean retained raw width across sources, a convergence observable.
  double MeanRawWidth() const;

  /// Number of value-initiated refresh messages dropped by failure
  /// injection so far.
  int64_t lost_pushes() const { return table_.lost_pushes(); }

  /// Diagnostic: how many cached entries do NOT currently contain their
  /// source's exact value. Always 0 under reliable delivery; with push
  /// loss it measures the blast radius of dropped refreshes.
  int CountInvalidEntries(int64_t now) const;

 private:
  /// The interval a query sees for `id` at time `now`: the cached interval,
  /// or the unbounded interval when the value is not cached.
  Interval VisibleInterval(int id, int64_t now) const {
    return table_.VisibleInterval(id, now);
  }

  /// Pulls the exact value of `id` (query-initiated refresh): charges Cqr,
  /// updates the source's width, offers the fresh approximation to the
  /// cache, and returns the exact value.
  double PullExact(int id, int64_t now);

  std::vector<std::unique_ptr<Source>> sources_;
  ProtocolTable table_;
};

}  // namespace apc

#endif  // APC_CACHE_SYSTEM_H_
