#include "cache/multi_system.h"

#include "util/rng.h"

namespace apc {

MultiCacheSystem::MultiCacheSystem(
    const MultiSystemConfig& config,
    std::vector<std::unique_ptr<UpdateStream>> streams, uint64_t seed)
    : config_(config), streams_(std::move(streams)), costs_(config.costs) {
  AdaptivePolicyParams params = config_.policy;
  params.cvr = config_.costs.cvr;
  params.cqr = config_.costs.cqr;

  Rng seeder(seed);
  entries_.resize(static_cast<size_t>(config_.num_caches));
  for (auto& cache : entries_) {
    cache.resize(streams_.size());
    for (size_t id = 0; id < streams_.size(); ++id) {
      Entry& e = cache[id];
      e.policy = std::make_unique<AdaptivePolicy>(params,
                                                  seeder.NextUint64());
      e.raw_width = params.initial_width;
      e.approx = e.policy->MakeApprox(streams_[id]->current(), e.raw_width,
                                      0);
    }
  }
}

void MultiCacheSystem::Refresh(int cache, int id, RefreshType type,
                               int64_t now) {
  Entry& e = entry(cache, id);
  double value = streams_[static_cast<size_t>(id)]->current();
  RefreshContext ctx;
  ctx.type = type;
  ctx.escaped_above = (type == RefreshType::kValueInitiated) &&
                      value > e.approx.base.hi();
  ctx.time = now;
  e.raw_width = e.policy->NextWidth(e.raw_width, ctx);
  e.approx = e.policy->MakeApprox(value, e.raw_width, now);
}

void MultiCacheSystem::Tick(int64_t now) {
  for (size_t id = 0; id < streams_.size(); ++id) {
    double v = streams_[id]->Next();
    // The source applies Valid(Aj, V') for EACH cache Cj holding an
    // approximation (paper §1.1) and refreshes exactly the invalidated
    // ones.
    for (int cache = 0; cache < config_.num_caches; ++cache) {
      if (!entry(cache, static_cast<int>(id)).approx.Valid(v, now)) {
        costs_.RecordValueRefresh();
        Refresh(cache, static_cast<int>(id),
                RefreshType::kValueInitiated, now);
      }
    }
  }
}

Interval MultiCacheSystem::ExecuteQuery(int cache, const Query& query,
                                        int64_t now) {
  std::vector<QueryItem> items;
  items.reserve(query.source_ids.size());
  for (int id : query.source_ids) {
    items.push_back({id, entry(cache, id).approx.AtTime(now)});
  }

  auto pull = [&](size_t idx) {
    costs_.RecordQueryRefresh();
    int id = items[idx].source_id;
    Refresh(cache, id, RefreshType::kQueryInitiated, now);
    items[idx].interval =
        Interval::Exact(streams_[static_cast<size_t>(id)]->current());
  };

  switch (query.kind) {
    case AggregateKind::kSum: {
      for (size_t idx : SumRefreshSelection(items, query.constraint)) {
        pull(idx);
      }
      return SumInterval(items);
    }
    case AggregateKind::kAvg: {
      for (size_t idx : AvgRefreshSelection(items, query.constraint)) {
        pull(idx);
      }
      return AvgInterval(items);
    }
    case AggregateKind::kMax: {
      int idx;
      while ((idx = NextMaxRefreshCandidate(items, query.constraint)) >= 0) {
        pull(static_cast<size_t>(idx));
      }
      return MaxInterval(items);
    }
    case AggregateKind::kMin: {
      int idx;
      while ((idx = NextMinRefreshCandidate(items, query.constraint)) >= 0) {
        pull(static_cast<size_t>(idx));
      }
      return MinInterval(items);
    }
  }
  return Interval(0.0, 0.0);
}

}  // namespace apc
