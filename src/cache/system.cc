#include "cache/system.h"

namespace apc {

CacheSystem::CacheSystem(const SystemConfig& config,
                         std::vector<std::unique_ptr<Source>> sources,
                         uint64_t seed)
    : sources_(std::move(sources)), table_(config.TableConfig(), seed) {
  for (const auto& src : sources_) table_.Register(src->id());
}

void CacheSystem::PopulateInitial(int64_t now) {
  for (auto& src : sources_) {
    table_.OfferInitial(src->id(), src->cell(), src->value(), now);
  }
}

void CacheSystem::Tick(int64_t now) {
  for (auto& src : sources_) {
    src->Tick();
    table_.OnValueTick(src->id(), src->cell(), src->value(), now);
  }
}

double CacheSystem::PullExact(int id, int64_t now) {
  Source* src = source(id);
  return table_.Pull(id, src->cell(), src->value(), now);
}

Interval CacheSystem::ExecuteQuery(const Query& query, int64_t now) {
  std::vector<QueryItem> items;
  items.reserve(query.source_ids.size());
  for (int id : query.source_ids) {
    items.push_back({id, VisibleInterval(id, now)});
  }

  switch (query.kind) {
    case AggregateKind::kSum: {
      // One-shot selection: refreshing an item removes exactly its width
      // from the result, so the refresh set is known up front.
      std::vector<size_t> selection =
          SumRefreshSelection(items, query.constraint);
      for (size_t idx : selection) {
        double exact = PullExact(items[idx].source_id, now);
        items[idx].interval = Interval::Exact(exact);
      }
      return SumInterval(items);
    }
    case AggregateKind::kMax: {
      // Iterative selection with candidate elimination: each pull either
      // lowers the result's upper bound or raises its lower bound.
      int idx;
      while ((idx = NextMaxRefreshCandidate(items, query.constraint)) >= 0) {
        double exact = PullExact(items[static_cast<size_t>(idx)].source_id,
                                 now);
        items[static_cast<size_t>(idx)].interval = Interval::Exact(exact);
      }
      return MaxInterval(items);
    }
    case AggregateKind::kMin: {
      int idx;
      while ((idx = NextMinRefreshCandidate(items, query.constraint)) >= 0) {
        double exact = PullExact(items[static_cast<size_t>(idx)].source_id,
                                 now);
        items[static_cast<size_t>(idx)].interval = Interval::Exact(exact);
      }
      return MinInterval(items);
    }
    case AggregateKind::kAvg: {
      std::vector<size_t> selection =
          AvgRefreshSelection(items, query.constraint);
      for (size_t idx2 : selection) {
        double exact = PullExact(items[idx2].source_id, now);
        items[idx2].interval = Interval::Exact(exact);
      }
      return AvgInterval(items);
    }
  }
  return Interval(0.0, 0.0);
}

int CacheSystem::CountInvalidEntries(int64_t now) const {
  int invalid = 0;
  for (const auto& [id, entry] : table_.entries()) {
    if (!entry.approx.Valid(source(id)->value(), now)) ++invalid;
  }
  return invalid;
}

double CacheSystem::MeanRawWidth() const {
  if (sources_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& src : sources_) total += src->raw_width();
  return total / static_cast<double>(sources_.size());
}

}  // namespace apc
