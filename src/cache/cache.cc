#include "cache/cache.h"

namespace apc {

const CacheEntry* Cache::Find(int id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

int Cache::WidestId() const {
  int widest = -1;
  double widest_width = -1.0;
  for (const auto& [id, entry] : entries_) {
    if (entry.raw_width > widest_width ||
        (entry.raw_width == widest_width && id > widest)) {
      widest = id;
      widest_width = entry.raw_width;
    }
  }
  return widest;
}

bool Cache::Offer(int id, const CachedApprox& approx, double raw_width) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.approx = approx;
    it->second.raw_width = raw_width;
    return true;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(id, CacheEntry{approx, raw_width});
    return true;
  }
  if (capacity_ == 0) return false;
  int widest = WidestId();
  const CacheEntry& incumbent = entries_.at(widest);
  // "the modified approximation may still be the widest and remain
  // uncached" — ties keep the incumbent to avoid pointless churn.
  if (raw_width >= incumbent.raw_width) return false;
  entries_.erase(widest);
  entries_.emplace(id, CacheEntry{approx, raw_width});
  return true;
}

void Cache::Erase(int id) { entries_.erase(id); }

}  // namespace apc
