#include "subscribe/subscription_table.h"

#include <algorithm>

namespace apc {

int64_t SubscriptionTable::Add(const Query& query, double delta) {
  int64_t sub_id = next_id_++;
  Subscription sub;
  sub.sub_id = sub_id;
  sub.query = query;
  sub.query.constraint = delta;
  sub.delta = delta;
  subs_.emplace(sub_id, std::move(sub));
  for (int id : query.source_ids) {
    std::vector<int64_t>& posting = postings_[id];
    // A duplicated id within one query must not double-post the sub; the
    // fresh sub_id can only have been pushed by this very loop, always at
    // the back.
    if (posting.empty() || posting.back() != sub_id) {
      posting.push_back(sub_id);
    }
  }
  return sub_id;
}

bool SubscriptionTable::Remove(int64_t sub_id) {
  auto it = subs_.find(sub_id);
  if (it == subs_.end()) return false;
  for (int id : it->second.query.source_ids) {
    auto posting = postings_.find(id);
    if (posting == postings_.end()) continue;
    auto& subs = posting->second;
    subs.erase(std::remove(subs.begin(), subs.end(), sub_id), subs.end());
    if (subs.empty()) postings_.erase(posting);
  }
  subs_.erase(it);
  return true;
}

Subscription* SubscriptionTable::Find(int64_t sub_id) {
  auto it = subs_.find(sub_id);
  return it == subs_.end() ? nullptr : &it->second;
}

const Subscription* SubscriptionTable::Find(int64_t sub_id) const {
  auto it = subs_.find(sub_id);
  return it == subs_.end() ? nullptr : &it->second;
}

void SubscriptionTable::AppendSubsOf(int source_id,
                                     std::vector<int64_t>* out) const {
  auto it = postings_.find(source_id);
  if (it == postings_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

std::vector<int64_t> SubscriptionTable::SubIds() const {
  std::vector<int64_t> ids;
  ids.reserve(subs_.size());
  for (const auto& [sub_id, sub] : subs_) ids.push_back(sub_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace apc
