#ifndef APC_SUBSCRIBE_NOTIFICATION_HUB_H_
#define APC_SUBSCRIBE_NOTIFICATION_HUB_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/interval.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {

/// One pushed answer flowing from the subscription manager to subscriber
/// threads: the standing query's fresh answer interval, the subscription's
/// per-delivery sequence number, and the logical tick the answer was
/// computed at (delivery latency in ticks = drain-time clock − `now`).
struct Notification {
  int64_t sub_id = 0;
  Interval answer;
  /// Per-subscription epoch, starting at 1 with the registration answer
  /// and strictly increasing — records for one subscription leave the hub
  /// in epoch order, so a consumer can detect reordering or loss.
  int64_t epoch = 0;
  /// Logical tick the answer was computed at.
  int64_t now = 0;
};

/// Bounded multi-producer multi-consumer queue carrying notifications out
/// of the subscription manager to subscriber threads — the push half of
/// the standing-query protocol, mirroring the UpdateBus discipline on the
/// update half: producers (the notifier, Subscribe/Reprecision) block when
/// the hub is full, so a slow subscriber throttles notification production
/// instead of the queue growing without bound; consumers drain in batches.
///
/// Ordering: the queue is FIFO, and the manager pushes every record for a
/// subscription under one mutex in epoch order, so per-subscription records
/// leave PopBatch in strictly increasing epoch order. Close() wakes
/// everyone: producers fail fast (Push returns false) and consumers drain
/// whatever remains, then PopBatch returns 0.
class NotificationHub {
 public:
  explicit NotificationHub(size_t capacity = 1024);

  /// Enqueues `record`, blocking while the hub is full. Returns false (and
  /// drops the record) when the hub has been closed.
  bool Push(const Notification& record);

  /// Non-blocking variant: returns false when full or closed.
  bool TryPush(const Notification& record);

  /// Enqueues `count` records under ONE lock acquisition per free-capacity
  /// chunk (one total when the burst fits) instead of one per record — the
  /// batch-reservation discipline of UpdateBus::PushBatch, applied to the
  /// delivery path. Records are appended in argument order, so the FIFO /
  /// per-subscription epoch-order guarantee is exactly Push's. Blocks
  /// while full, like Push; returns how many records were accepted —
  /// `count`, or fewer when the hub closes mid-batch (the rest are
  /// dropped, like Push after Close).
  size_t PushBatch(const Notification* records, size_t count);

  /// Moves up to `max_batch` records into `*out` (cleared first). Blocks
  /// until at least one record is available or the hub is closed and
  /// drained; returns the number of records delivered (0 only at shutdown).
  size_t PopBatch(std::vector<Notification>* out, size_t max_batch);

  /// Non-blocking drain: moves up to `max_batch` records into `*out`
  /// (cleared first) and returns immediately, 0 when the hub is currently
  /// empty. For single-threaded harnesses that drain at known quiescent
  /// points (the scenario runner) instead of parking a consumer thread.
  size_t TryPopBatch(std::vector<Notification>* out, size_t max_batch);

  /// Closes the hub: subsequent pushes fail, and once the backlog drains
  /// PopBatch returns 0.
  void Close();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Total records ever accepted (monotonic; for progress reporting).
  int64_t total_pushed() const;

  /// Registers this hub's traffic metrics with `registry` under
  /// "<prefix>." names: enqueued/drained counters and a queue_depth gauge.
  /// Non-owning; call before concurrent use. No-ops under APC_OBS=0.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix);

 private:
  const size_t capacity_;
  /// Innermost lock of the notification path: the manager pushes while
  /// holding its own mutex (rank kSubscriptionManager < kQueue) and
  /// shutdown closes under kControl; nothing is acquired under this lock.
  mutable Mutex mu_{LockRank::kQueue, "hub.mu"};
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<Notification> queue_ APC_GUARDED_BY(mu_);
  bool closed_ APC_GUARDED_BY(mu_) = false;
  int64_t total_pushed_ APC_GUARDED_BY(mu_) = 0;

  // Observability (updated under mu_, read lock-free by snapshots).
  obs::ObsCounter enqueued_;
  obs::ObsCounter drained_;
  obs::Gauge queue_depth_;
};

}  // namespace apc

#endif  // APC_SUBSCRIBE_NOTIFICATION_HUB_H_
