#include "subscribe/subscription_manager.h"

#include <algorithm>
#include <cmath>

#include "obs/attribution.h"
#include "obs/trace.h"

namespace apc {

void SubscriptionCounters::RegisterWith(obs::MetricsRegistry* registry,
                                        const std::string& prefix) const {
  registry->RegisterCounter(prefix + ".notifications", &notifications);
  registry->RegisterCounter(prefix + ".evaluations", &evaluations);
  registry->RegisterCounter(prefix + ".escalations", &escalations);
  registry->RegisterCounter(prefix + ".suppressed", &suppressed);
  registry->RegisterCounter(prefix + ".rejected", &rejected);
}

SubscriptionManager::SubscriptionManager(SubscriptionHost* host,
                                         size_t hub_capacity)
    : host_(host), hub_(hub_capacity) {
  notifier_ = std::thread([this] { NotifierLoop(); });
}

void SubscriptionManager::RegisterMetrics(obs::MetricsRegistry* registry) {
  counters_.RegisterWith(registry, "subs");
  registry->RegisterHistogram("subs.delivery_lag_ticks",
                              &delivery_lag_ticks_);
  hub_.RegisterMetrics(registry, "subs.hub");
}

SubscriptionManager::~SubscriptionManager() { Shutdown(); }

int64_t SubscriptionManager::Subscribe(const Query& query, double delta,
                                       int64_t now) {
  if (query.source_ids.empty() || !(delta >= 0.0)) {
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  for (int id : query.source_ids) {
    if (!host_->SubscriptionOwns(id)) {
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      return -1;
    }
  }
  MutexLock lock(mu_);
  // First subscriber ever: have the engine enable dirty-id tracking (its
  // tables were constructed with tracking off so subscription-free
  // engines pay nothing). Changes predating this instant are irrelevant —
  // the registration evaluation below snapshots fresh state.
  if (!has_subs_.load(std::memory_order_relaxed)) {
    host_->SubscriptionActivate();
  }
  int64_t sub_id = table_.Add(query, delta);
  has_subs_.store(true, std::memory_order_release);
  // The registration answer ships immediately at epoch 1, so a subscriber
  // always holds an answer (and the lockstep harness has a fixed point to
  // compare from).
  EvaluateLocked(*table_.Find(sub_id), now);
  FlushOutboxLocked();
  return sub_id;
}

bool SubscriptionManager::Unsubscribe(int64_t sub_id) {
  MutexLock lock(mu_);
  return table_.Remove(sub_id);
}

bool SubscriptionManager::Reprecision(int64_t sub_id, double delta,
                                      int64_t now) {
  if (!(delta >= 0.0)) {
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  MutexLock lock(mu_);
  Subscription* sub = table_.Find(sub_id);
  if (sub == nullptr) {
    counters_.rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  bool tightened = delta < sub->delta;
  sub->delta = delta;
  sub->query.constraint = delta;
  // Loosening never notifies: the held answer satisfies the looser bound
  // a fortiori. Tightening re-evaluates now — the "regained" shipping rule
  // pushes a fresh answer once the tightened bound is met.
  if (tightened) {
    EvaluateLocked(*sub, now);
    FlushOutboxLocked();
  }
  return true;
}

void SubscriptionManager::OnIntervalChanges(const std::vector<int>& ids,
                                            int64_t now) {
  // Hot-path early-out: a table nobody ever subscribed to costs one
  // relaxed load per engine mutation batch.
  if (!has_subs_.load(std::memory_order_acquire)) return;
  bool added = false;
  {
    MutexLock lock(pending_mu_);
    if (stop_) return;
    for (int id : ids) {
      if (pending_set_.insert(id).second) {
        pending_ids_.push_back(id);
        // Release pairs with the checker's acquire: once an engine
        // mutation is observable (its shard lock was released), its
        // change is already counted in flight.
        in_flight_.fetch_add(1, std::memory_order_release);
        added = true;
      }
    }
    if (now > pending_now_) pending_now_ = now;
  }
  if (added) pending_cv_.NotifyOne();
}

void SubscriptionManager::NotifierLoop() {
  std::vector<int> batch;
  while (true) {
    int64_t now;
    {
      MutexLock lock(pending_mu_);
      while (!stop_ && pending_ids_.empty()) pending_cv_.Wait(pending_mu_);
      if (pending_ids_.empty()) break;  // stopped and drained
      batch.clear();
      batch.swap(pending_ids_);
      pending_set_.clear();
      now = pending_now_;
      notifier_busy_ = true;
    }
    ProcessBatch(batch, now);
    {
      MutexLock lock(pending_mu_);
      notifier_busy_ = false;
      in_flight_.fetch_sub(static_cast<int64_t>(batch.size()),
                           std::memory_order_release);
    }
    quiescent_cv_.NotifyAll();
  }
  quiescent_cv_.NotifyAll();
}

void SubscriptionManager::ProcessBatch(const std::vector<int>& ids,
                                       int64_t now) {
  obs::TraceScope span(obs::SpanKind::kNotifyBatch, /*id=*/-1, now);
  MutexLock lock(mu_);
  if (table_.empty()) return;
  // Affected subscriptions, deduplicated across the batch and evaluated in
  // sub_id order — one evaluation per subscription per batch no matter how
  // many of its sources changed, and a deterministic order for the
  // lockstep harness.
  std::vector<int64_t> affected;
  for (int id : ids) table_.AppendSubsOf(id, &affected);
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (int64_t sub_id : affected) {
    Subscription* sub = table_.Find(sub_id);
    if (sub != nullptr) EvaluateLocked(*sub, now);
  }
  // One hub reservation for the whole drained burst, not one per record.
  FlushOutboxLocked();
}

Interval SubscriptionManager::Answer(AggregateKind kind,
                                     const std::vector<QueryItem>& items) {
  switch (kind) {
    case AggregateKind::kSum:
      return SumInterval(items);
    case AggregateKind::kAvg:
      return AvgInterval(items);
    case AggregateKind::kMax:
      return MaxInterval(items);
    case AggregateKind::kMin:
      return MinInterval(items);
  }
  return Interval(0.0, 0.0);
}

void SubscriptionManager::EvaluateLocked(Subscription& sub, int64_t now) {
  obs::TraceScope span(obs::SpanKind::kNotifyEval, /*id=*/-1, now);
  // Tag every charge this evaluation triggers (the SubscriptionPull
  // escalations below reach the tables' Cqr charge sites with this tag
  // ambient) as subscription-initiated, attributed to this sub_id.
  obs::ReaderScope reader(obs::ReaderKind::kSubscription, sub.sub_id);
  counters_.evaluations.fetch_add(1, std::memory_order_relaxed);
  obs::TraceRecorder::Record(obs::TraceEvent::kNotifyEvaluate, /*id=*/-1,
                             now, sub.sub_id);

  // The answer is built from guaranteed intervals, so it stays valid
  // passively until the next change event (see the class contract).
  std::vector<QueryItem> items;
  items.reserve(sub.query.source_ids.size());
  for (int id : sub.query.source_ids) {
    QueryItem item;
    item.source_id = id;
    item.interval = host_->SubscriptionSnapshot(id, now);
    items.push_back(item);
  }
  Interval answer = Answer(sub.query.kind, items);

  // Escalate while too wide: pick the item currently determining the
  // width, refresh it once (globally at most once per value per tick —
  // the shared-refresh cap), and recompute. The refreshed interval is
  // re-offered to the cache, so every other subscriber of the value gets
  // the narrower snapshot for free.
  while (answer.Width() > sub.delta) {
    int victim = -1;
    double victim_key = 0.0;
    for (size_t i = 0; i < items.size(); ++i) {
      const Interval& iv = items[i].interval;
      if (iv.Width() <= 0.0) continue;  // already exact: nothing to gain
      auto it = last_escalation_tick_.find(items[i].source_id);
      if (it != last_escalation_tick_.end() && it->second == now) {
        continue;  // per-value-per-tick escalation cap
      }
      double key;
      switch (sub.query.kind) {
        case AggregateKind::kMax:
          key = iv.hi();  // the item holding the result's upper bound
          break;
        case AggregateKind::kMin:
          key = -iv.lo();  // the item holding the result's lower bound
          break;
        default:
          key = iv.Width();  // widest-first, the SUM/AVG covering rule
          break;
      }
      if (victim < 0 || key > victim_key) {
        victim = static_cast<int>(i);
        victim_key = key;
      }
    }
    if (victim < 0) break;  // every useful escalation already spent
    int id = items[static_cast<size_t>(victim)].source_id;
    last_escalation_tick_[id] = now;
    counters_.escalations.fetch_add(1, std::memory_order_relaxed);
    Interval fresh = host_->SubscriptionPull(id, now);
    for (auto& item : items) {
      if (item.source_id == id) item.interval = fresh;
    }
    answer = Answer(sub.query.kind, items);
  }

  // Shipping rule: push when the fresh answer escapes the shipped one
  // (the held answer may no longer contain the truth), or when δ_sub is
  // newly met again after a too-wide spell; the very first evaluation
  // always ships. A contained answer is suppressed — the subscriber's
  // held answer is still valid and already within its bound.
  bool first = sub.epoch == 0;
  bool moved = !sub.last_answer.Contains(answer);
  bool regained =
      sub.last_answer.Width() > sub.delta && answer.Width() <= sub.delta;
  if (!first && !moved && !regained) {
    counters_.suppressed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++sub.epoch;
  sub.last_answer = answer;
  sub.last_now = now;
  Notification record;
  record.sub_id = sub.sub_id;
  record.answer = answer;
  record.epoch = sub.epoch;
  record.now = now;
  // Staged, not pushed: the caller flushes the whole burst with one hub
  // reservation (FlushOutboxLocked) before releasing mu_, so hub order ==
  // epoch order per subscription exactly as per-record Push gave.
  outbox_.push_back(record);
}

void SubscriptionManager::FlushOutboxLocked() {
  if (outbox_.empty()) return;
  // A full hub blocks here — backpressure onto the notifier and the APIs,
  // the UpdateBus discipline. A closed hub (shutdown) drops the tail;
  // counters and ship traces cover only what the hub accepted.
  size_t accepted = hub_.PushBatch(outbox_.data(), outbox_.size());
  if (accepted > 0) {
    counters_.notifications.fetch_add(static_cast<int64_t>(accepted),
                                      std::memory_order_relaxed);
    for (size_t i = 0; i < accepted; ++i) {
      obs::TraceRecorder::Record(obs::TraceEvent::kNotifyShip, /*id=*/-1,
                                 outbox_[i].now, outbox_[i].sub_id);
    }
  }
  outbox_.clear();
}

size_t SubscriptionManager::num_subscriptions() const {
  MutexLock lock(mu_);
  return table_.size();
}

bool SubscriptionManager::LatestAnswer(int64_t sub_id, Interval* answer,
                                       int64_t* epoch) const {
  MutexLock lock(mu_);
  const Subscription* sub = table_.Find(sub_id);
  if (sub == nullptr) return false;
  *answer = sub->last_answer;
  *epoch = sub->epoch;
  return true;
}

void SubscriptionManager::WaitQuiescent() {
  MutexLock lock(pending_mu_);
  while (!pending_ids_.empty() || notifier_busy_) {
    quiescent_cv_.Wait(pending_mu_);
  }
}

void SubscriptionManager::Shutdown() {
  MutexLock shutdown_lock(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;
  // Close the hub FIRST: a notifier blocked in Push on a full hub nobody
  // drains must fail fast (the record is dropped — acceptable at
  // shutdown) or the join below would wait forever.
  hub_.Close();
  {
    MutexLock lock(pending_mu_);
    stop_ = true;
  }
  pending_cv_.NotifyAll();
  notifier_.join();  // evaluates pending changes before exiting
}

}  // namespace apc
