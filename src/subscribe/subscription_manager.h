#ifndef APC_SUBSCRIBE_SUBSCRIPTION_MANAGER_H_
#define APC_SUBSCRIBE_SUBSCRIPTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "query/aggregate.h"
#include "subscribe/change_sink.h"
#include "subscribe/notification_hub.h"
#include "subscribe/subscription_table.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {

/// The engine surface the subscription manager drives — implemented by
/// ShardedEngine (over its shards) and TieredEngine (over its regional
/// tier), which is how both engines get subscriptions from one manager.
class SubscriptionHost {
 public:
  virtual ~SubscriptionHost() = default;

  /// Charge-free snapshot of the guaranteed (cached) interval of `id` at
  /// `now` — the unbounded interval when not cached. Thread-safe.
  virtual Interval SubscriptionSnapshot(int id, int64_t now) const = 0;

  /// Escalation: performs one query-initiated refresh of `id` (charged per
  /// the engine's semantics — Cqr on the sharded engine, a WAN Cqr plus
  /// LAN fan-out on the tiered engine) and returns the POST-refresh
  /// guaranteed interval. Thread-safe; never called with the manager's
  /// host-side locks held.
  virtual Interval SubscriptionPull(int id, int64_t now) = 0;

  /// True when the engine hosts `id` (Subscribe-time validation).
  virtual bool SubscriptionOwns(int id) const = 0;

  /// Called once, on the first successful Subscribe, so the engine can
  /// turn on the write path's dirty-id tracking lazily — an engine nobody
  /// ever subscribes to pays nothing for the change-detection hook. Takes
  /// the engine's shard locks; called with the manager mutex held (lock
  /// order: manager mutex → shard locks, same as SubscriptionPull).
  virtual void SubscriptionActivate() = 0;
};

/// Tallies observable without the manager's mutex. The fields are
/// obs::Counter — striped under APC_OBS=1, a single plain atomic under
/// APC_OBS=0 — so the .load()/.fetch_add() surface and the exact-total
/// guarantee are identical in both builds.
struct SubscriptionCounters {
  /// Notifications queued into the hub (including registration answers).
  obs::Counter notifications;
  /// Subscription re-evaluations triggered by interval changes or API
  /// calls (each recomputes one standing query's answer from snapshots).
  obs::Counter evaluations;
  /// Escalations: query-initiated refreshes the manager charged to narrow
  /// a too-wide answer. Capped at one per value per tick — the shared-
  /// refresh amortization bound.
  obs::Counter escalations;
  /// Evaluations whose fresh answer was contained in the already-shipped
  /// one: the subscriber's held answer is still valid, nothing is pushed.
  obs::Counter suppressed;
  /// Subscribe/Reprecision requests rejected up front (unknown id, empty
  /// query, invalid bound).
  obs::Counter rejected;

  /// Registers every field with `registry` under "<prefix>." names.
  /// Non-owning; this struct must outlive the registry's snapshots.
  void RegisterWith(obs::MetricsRegistry* registry,
                    const std::string& prefix) const;
};

/// The continuous-query layer over the refresh protocol: standing
/// precision-bounded queries evaluated push-style from the core's
/// change-detection hook, with one NotificationHub fanning fresh answers
/// out to subscriber threads.
///
/// Semantics. Every shipped answer is the aggregate of the GUARANTEED
/// (cached) intervals of the subscription's sources — never a bare exact
/// value — so an answer stays valid passively: as long as no interval
/// change fires, the protocol's validity guarantee (value ∈ cached
/// interval, under reliable delivery) keeps the true answer inside the
/// shipped interval. A notification is queued exactly when the fresh
/// answer escapes the shipped one (the subscriber's held answer may have
/// gone stale) or when the subscription's bound δ_sub is newly met again
/// (precision recovered after a too-wide spell). This is what makes the
/// no-missed-violation guarantee hold: "a subscriber never holds an
/// answer whose true value has exited the shipped interval without a
/// queued notification" — qualified, like the protocol itself, by
/// reliable delivery (push loss breaks validity upstream of this layer).
///
/// Shared-refresh amortization. A change is evaluated once per affected
/// subscription, but refreshes are shared: one escalation (query-initiated
/// refresh) re-offers a fresh interval that every subscriber of the value
/// snapshots, and a per-value-per-tick cap guarantees remaining too-wide
/// subscribers trigger at most ONE escalation per value per tick — the
/// repeated δ_sub-driven escalations then shrink the value's width through
/// the normal adaptive-policy feedback until pushes alone satisfy the
/// tightest subscriber, exactly the workload-driven width adaptation the
/// paper runs on, amortized across all subscribers instead of re-derived
/// per polling client.
///
/// Threading. OnIntervalChanges (the IntervalChangeSink side) only
/// enqueues — it is called under engine shard locks; a dedicated notifier
/// thread drains the pending ids, re-evaluates affected subscriptions in
/// sub_id order, and pushes notifications in per-subscription epoch order
/// (all hub pushes happen under the manager mutex). A full hub therefore
/// backpressures the notifier and the Subscribe/Reprecision APIs — the
/// UpdateBus discipline on the push half. Lock order: manager mutex →
/// engine shard locks; engines call the sink with shard locks held and the
/// sink takes only the (leaf) pending-queue mutex.
class SubscriptionManager : public IntervalChangeSink {
 public:
  /// `host` must outlive the manager. `hub_capacity` bounds the hub
  /// (clamped to >= 1).
  SubscriptionManager(SubscriptionHost* host, size_t hub_capacity);
  ~SubscriptionManager() override;

  SubscriptionManager(const SubscriptionManager&) = delete;
  SubscriptionManager& operator=(const SubscriptionManager&) = delete;

  // -- the standing-query API ------------------------------------------

  /// Registers a standing query with bound `delta` (`query.constraint` is
  /// ignored; `delta` is the subscription's bound). Evaluates it
  /// immediately — escalating if the current answer is too wide — and
  /// queues the initial answer at epoch 1. Returns the positive sub_id, or
  /// -1 when the query is empty, `delta` is negative/NaN, or any source id
  /// is not hosted by the engine (counted in counters().rejected).
  int64_t Subscribe(const Query& query, double delta, int64_t now);

  /// Drops the subscription. Returns false when unknown. Already-queued
  /// notifications stay in the hub.
  bool Unsubscribe(int64_t sub_id);

  /// Live re-precisioning without re-registration: replaces the bound.
  /// Tightening re-evaluates immediately (escalating if eligible under
  /// the per-value-per-tick cap) and notifies when the tightened bound is
  /// met by a fresh answer; if the cap was already spent this tick, the
  /// bound is pursued on the subscription's next change-driven
  /// evaluation — re-evaluation is change-driven throughout, so a source
  /// whose interval never changes again leaves the held (still valid)
  /// answer at its old width. Loosening never notifies (the held answer
  /// satisfies the looser bound a fortiori). Returns false when the
  /// sub_id is unknown or `delta` invalid.
  bool Reprecision(int64_t sub_id, double delta, int64_t now);

  // -- the engine-facing hook ------------------------------------------

  /// IntervalChangeSink: enqueue-only, called under engine shard locks.
  void OnIntervalChanges(const std::vector<int>& ids, int64_t now) override;

  // -- delivery and observability --------------------------------------

  NotificationHub& hub() { return hub_; }
  const SubscriptionCounters& counters() const { return counters_; }
  size_t num_subscriptions() const;

  /// Registers the subscription tallies (under "subs."), the delivery-lag
  /// histogram ("subs.delivery_lag_ticks"), and the hub's traffic metrics
  /// ("subs.hub.") with `registry`. Non-owning; call during engine
  /// construction. No-ops under APC_OBS=0.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// Records one delivered notification's lag (drain-time tick minus the
  /// record's compute tick) into the delivery-lag histogram. Called by
  /// subscriber/drainer threads; lock-free, no-op under APC_OBS=0.
  void RecordDeliveryLag(double ticks) { delivery_lag_ticks_.Record(ticks); }
  const obs::HistogramMetric& delivery_lag_histogram() const {
    return delivery_lag_ticks_;
  }

  /// Changes enqueued or mid-evaluation. 0 means every change handed to
  /// OnIntervalChanges has been fully evaluated (its notifications are in
  /// the hub). The no-missed-violation checker gates on this.
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  /// Latest QUEUED answer and epoch of `sub_id` (what the subscriber
  /// holds, or will once it drains the hub). False when unknown.
  bool LatestAnswer(int64_t sub_id, Interval* answer, int64_t* epoch) const;

  /// Blocks until every pending change has been evaluated (in_flight()
  /// transitions to 0). The lockstep determinism harness calls this after
  /// each synchronous tick before draining the hub.
  void WaitQuiescent();

  /// Closes the hub (consumers drain the backlog, then PopBatch returns
  /// 0; records evaluated from here on are dropped), then stops the
  /// notifier after it evaluates the pending changes. Closing first keeps
  /// shutdown non-blocking even when the hub is full and nobody drains.
  /// Idempotent; called by the destructor.
  void Shutdown();

 private:
  void NotifierLoop();
  /// Drains `ids` into affected subscriptions and evaluates each.
  void ProcessBatch(const std::vector<int>& ids, int64_t now);
  /// Recomputes `sub`'s answer from guaranteed-interval snapshots,
  /// escalating (at most once per value per tick, globally) while the
  /// answer is too wide, and stages a notification in `outbox_` per the
  /// shipping rule. Callers flush via FlushOutboxLocked before releasing
  /// mu_, so hub order == epoch order per subscription is preserved.
  void EvaluateLocked(Subscription& sub, int64_t now) APC_REQUIRES(mu_);
  /// Ships everything staged in `outbox_` with ONE hub reservation per
  /// drained burst (NotificationHub::PushBatch) instead of one lock
  /// round-trip per record, then clears the outbox. Counters and ship
  /// traces cover exactly the accepted records, as per-record Push did.
  void FlushOutboxLocked() APC_REQUIRES(mu_);
  /// The aggregate of `items` for `kind`.
  static Interval Answer(AggregateKind kind,
                         const std::vector<QueryItem>& items);

  SubscriptionHost* const host_;
  NotificationHub hub_;
  SubscriptionCounters counters_;
  /// Ticks between an answer's compute tick and its drain from the hub,
  /// recorded by consumers via RecordDeliveryLag. Log-spaced with a [0, 1)
  /// underflow bin, so same-tick deliveries participate in quantiles.
  obs::HistogramMetric delivery_lag_ticks_{1.0, 4096.0, 48};

  /// Subscriptions, epochs, escalation ledger. Rank kSubscriptionManager:
  /// taken BEFORE engine shard locks (SubscriptionActivate /
  /// SubscriptionPull / snapshot evaluation run under it).
  mutable Mutex mu_{LockRank::kSubscriptionManager, "subs.mu"};
  SubscriptionTable table_ APC_GUARDED_BY(mu_);
  /// Last tick each value was escalated at — the per-value-per-tick cap.
  std::unordered_map<int, int64_t> last_escalation_tick_ APC_GUARDED_BY(mu_);
  /// Notifications staged by EvaluateLocked awaiting the batched flush —
  /// appended in evaluation order, shipped FIFO by FlushOutboxLocked
  /// before mu_ is released (capacity is retained across bursts).
  std::vector<Notification> outbox_ APC_GUARDED_BY(mu_);
  /// True once any subscription was ever added; lets the hot sink path
  /// skip enqueueing when nobody is listening.
  // contracts-lint: allow(raw-atomic) -- lock-free fast-path flag read on
  // every engine mutation batch; not an observability tally.
  std::atomic<bool> has_subs_{false};

  /// The change sink's lock. Rank kSinkPending: engines call the sink
  /// with shard locks held (kEngineShard/kEdgeShard -> kSinkPending), and
  /// nothing below it is acquired while it is held.
  Mutex pending_mu_{LockRank::kSinkPending, "subs.pending_mu"};
  CondVar pending_cv_;
  CondVar quiescent_cv_;
  std::vector<int> pending_ids_ APC_GUARDED_BY(pending_mu_);
  std::unordered_set<int> pending_set_ APC_GUARDED_BY(pending_mu_);
  int64_t pending_now_ APC_GUARDED_BY(pending_mu_) = 0;
  bool stop_ APC_GUARDED_BY(pending_mu_) = false;
  bool notifier_busy_ APC_GUARDED_BY(pending_mu_) = false;
  // contracts-lint: allow(raw-atomic) -- quiescence gate read lock-free by
  // the no-missed-violation checker; not an observability tally.
  std::atomic<int64_t> in_flight_{0};

  /// Started in the constructor, joined exactly once under shutdown_mu_;
  /// never touched elsewhere, so it carries no guard of its own.
  std::thread notifier_;
  bool shut_down_ APC_GUARDED_BY(shutdown_mu_) = false;
  /// Rank kControl: Shutdown closes the hub (kQueue) and drains the
  /// pending leaf (kSinkPending) under it.
  Mutex shutdown_mu_{LockRank::kControl, "subs.shutdown_mu"};
};

}  // namespace apc

#endif  // APC_SUBSCRIBE_SUBSCRIPTION_MANAGER_H_
