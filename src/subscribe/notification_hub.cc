#include "subscribe/notification_hub.h"

namespace apc {

NotificationHub::NotificationHub(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void NotificationHub::RegisterMetrics(obs::MetricsRegistry* registry,
                                      const std::string& prefix) {
  registry->RegisterCounter(prefix + ".enqueued", &enqueued_);
  registry->RegisterCounter(prefix + ".drained", &drained_);
  registry->RegisterGauge(prefix + ".queue_depth", &queue_depth_);
}

bool NotificationHub::Push(const Notification& record) {
  size_t depth = 0;
  {
    MutexLock lock(mu_);
    while (!closed_ && queue_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    queue_.push_back(record);
    ++total_pushed_;
    depth = queue_.size();
  }
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.Set(static_cast<int64_t>(depth));
  not_empty_.NotifyOne();
  return true;
}

bool NotificationHub::TryPush(const Notification& record) {
  size_t depth = 0;
  {
    MutexLock lock(mu_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(record);
    ++total_pushed_;
    depth = queue_.size();
  }
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.Set(static_cast<int64_t>(depth));
  not_empty_.NotifyOne();
  return true;
}

size_t NotificationHub::PushBatch(const Notification* records, size_t count) {
  size_t accepted = 0;
  while (accepted < count) {
    size_t take = 0;
    size_t depth = 0;
    {
      MutexLock lock(mu_);
      while (!closed_ && queue_.size() >= capacity_) not_full_.Wait(mu_);
      if (closed_) break;
      // Reserve the whole free span at once; a burst larger than the
      // remaining capacity loops for another reservation after consumers
      // make room (each chunk is still FIFO-contiguous).
      take = capacity_ - queue_.size();
      if (take > count - accepted) take = count - accepted;
      for (size_t i = 0; i < take; ++i) {
        queue_.push_back(records[accepted + i]);
      }
      total_pushed_ += static_cast<int64_t>(take);
      depth = queue_.size();
    }
    accepted += take;
    enqueued_.fetch_add(static_cast<int64_t>(take),
                        std::memory_order_relaxed);
    queue_depth_.Set(static_cast<int64_t>(depth));
    not_empty_.NotifyAll();
  }
  return accepted;
}

size_t NotificationHub::PopBatch(std::vector<Notification>* out,
                                 size_t max_batch) {
  out->clear();
  if (max_batch == 0) return 0;
  size_t n = 0;
  size_t depth = 0;
  {
    MutexLock lock(mu_);
    // Multi-consumer: a woken consumer may find the queue already drained
    // by a sibling and simply waits again — the loop re-checks.
    while (!closed_ && queue_.empty()) not_empty_.Wait(mu_);
    n = queue_.size() < max_batch ? queue_.size() : max_batch;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(queue_.front());
      queue_.pop_front();
    }
    depth = queue_.size();
  }
  if (n > 0) {
    drained_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
    queue_depth_.Set(static_cast<int64_t>(depth));
    not_full_.NotifyAll();
  }
  return n;
}

size_t NotificationHub::TryPopBatch(std::vector<Notification>* out,
                                    size_t max_batch) {
  out->clear();
  if (max_batch == 0) return 0;
  size_t n = 0;
  size_t depth = 0;
  {
    MutexLock lock(mu_);
    n = queue_.size() < max_batch ? queue_.size() : max_batch;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(queue_.front());
      queue_.pop_front();
    }
    depth = queue_.size();
  }
  if (n > 0) {
    drained_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
    queue_depth_.Set(static_cast<int64_t>(depth));
    not_full_.NotifyAll();
  }
  return n;
}

void NotificationHub::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
}

bool NotificationHub::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

size_t NotificationHub::size() const {
  MutexLock lock(mu_);
  return queue_.size();
}

int64_t NotificationHub::total_pushed() const {
  MutexLock lock(mu_);
  return total_pushed_;
}

}  // namespace apc
