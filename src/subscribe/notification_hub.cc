#include "subscribe/notification_hub.h"

namespace apc {

NotificationHub::NotificationHub(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void NotificationHub::RegisterMetrics(obs::MetricsRegistry* registry,
                                      const std::string& prefix) {
  registry->RegisterCounter(prefix + ".enqueued", &enqueued_);
  registry->RegisterCounter(prefix + ".drained", &drained_);
  registry->RegisterGauge(prefix + ".queue_depth", &queue_depth_);
}

bool NotificationHub::Push(const Notification& record) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return false;
  queue_.push_back(record);
  ++total_pushed_;
  size_t depth = queue_.size();
  lock.unlock();
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.Set(static_cast<int64_t>(depth));
  not_empty_.notify_one();
  return true;
}

bool NotificationHub::TryPush(const Notification& record) {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(record);
    ++total_pushed_;
    depth = queue_.size();
  }
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.Set(static_cast<int64_t>(depth));
  not_empty_.notify_one();
  return true;
}

size_t NotificationHub::PopBatch(std::vector<Notification>* out,
                                 size_t max_batch) {
  out->clear();
  if (max_batch == 0) return 0;
  std::unique_lock<std::mutex> lock(mu_);
  // Multi-consumer: a woken consumer may find the queue already drained by
  // a sibling and simply waits again — the predicate re-checks.
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  size_t n = queue_.size() < max_batch ? queue_.size() : max_batch;
  for (size_t i = 0; i < n; ++i) {
    out->push_back(queue_.front());
    queue_.pop_front();
  }
  size_t depth = queue_.size();
  lock.unlock();
  if (n > 0) {
    drained_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
    queue_depth_.Set(static_cast<int64_t>(depth));
    not_full_.notify_all();
  }
  return n;
}

void NotificationHub::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool NotificationHub::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t NotificationHub::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int64_t NotificationHub::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pushed_;
}

}  // namespace apc
