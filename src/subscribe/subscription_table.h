#ifndef APC_SUBSCRIBE_SUBSCRIPTION_TABLE_H_
#define APC_SUBSCRIBE_SUBSCRIPTION_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/interval.h"
#include "query/aggregate.h"

namespace apc {

/// One standing precision-bounded query: a point read (a single-id query)
/// or a SUM/AVG/MAX/MIN aggregate, with its own precision bound δ_sub and
/// the delivery state the manager maintains for it. Per-subscriber
/// precision requirements vary over time (the dynamic-precision-scaling
/// observation), so `delta` is mutable via Reprecision — live, without
/// re-registration.
struct Subscription {
  int64_t sub_id = 0;
  /// The standing query. `query.constraint` mirrors `delta` so the spec
  /// can be handed to an engine's query path unchanged.
  Query query;
  /// Current precision bound δ_sub — the target the manager escalates
  /// toward (at most one escalation per value per tick, the shared-
  /// refresh cap). Validity comes first: an answer that MOVED ships even
  /// when still wider than this, and a bound unattainable under the cap
  /// is met on a later interval change, when escalation is eligible
  /// again.
  double delta = 0.0;
  /// Epoch of the last queued notification (0 = none yet). Strictly
  /// increasing per subscription; notification `epoch` fields match.
  int64_t epoch = 0;
  /// Last queued answer interval and its compute tick — "what the
  /// subscriber holds" (or will, once its thread drains the hub).
  Interval last_answer = Interval::Unbounded();
  int64_t last_now = 0;
};

/// The standing-query registry: subscriptions by id plus the inverted
/// postings index source id → subscriptions touching it, which is what
/// turns "these ids changed" into "these subscriptions need re-evaluation"
/// without scanning the whole table.
///
/// Plain state — every method requires the owning SubscriptionManager's
/// mutex (or single-threaded use). Never blocks, never charges.
///
/// The "caller holds the manager's mutex" contract is enforced by clang's
/// analysis AT THE OWNER: SubscriptionManager declares its table member
/// APC_GUARDED_BY(mu_), so every access to the table (including method
/// calls) requires mu_ held. The requirement cannot be spelled as
/// APC_REQUIRES here — the analysis matches capability expressions
/// structurally and cannot prove an injected mutex pointer aliases the
/// owner's member (see docs/STATIC_ANALYSIS.md, "where contracts live").
class SubscriptionTable {
 public:
  /// Registers a standing query; returns its new sub_id (> 0, unique for
  /// the table's lifetime). `query.source_ids` must be non-empty and
  /// `delta` >= 0 — the manager validates before calling.
  int64_t Add(const Query& query, double delta);

  /// Drops `sub_id`. Returns false when unknown.
  bool Remove(int64_t sub_id);

  /// Mutable subscription record, or nullptr when unknown.
  Subscription* Find(int64_t sub_id);
  const Subscription* Find(int64_t sub_id) const;

  /// Appends the sub_ids of every subscription touching `source_id` to
  /// `*out` (deduplicated against `*out`'s existing contents by the
  /// caller; one id's postings themselves contain no duplicates).
  void AppendSubsOf(int source_id, std::vector<int64_t>* out) const;

  size_t size() const { return subs_.size(); }
  bool empty() const { return subs_.empty(); }

  /// All live sub_ids, ascending (registration order) — the deterministic
  /// iteration order the lockstep guarantee needs.
  std::vector<int64_t> SubIds() const;

 private:
  int64_t next_id_ = 1;
  /// Ordered map semantics via sorted extraction would cost a sort per
  /// batch; instead sub_ids are handed out monotonically and SubIds()
  /// sorts, while postings keep registration order.
  std::unordered_map<int64_t, Subscription> subs_;
  std::unordered_map<int, std::vector<int64_t>> postings_;
};

}  // namespace apc

#endif  // APC_SUBSCRIBE_SUBSCRIPTION_TABLE_H_
