#ifndef APC_SUBSCRIBE_CHANGE_SINK_H_
#define APC_SUBSCRIBE_CHANGE_SINK_H_

#include <cstdint>
#include <vector>

namespace apc {

/// Consumer side of the protocol core's change-detection hook
/// (ProtocolTable::DrainDirtyIds): engines drain the ids whose cached
/// visible interval changed and hand them here.
///
/// Contract: OnIntervalChanges is invoked WHILE the engine still holds the
/// lock that covered the mutation, so an implementation must only enqueue
/// (never evaluate, never call back into the engine) — that is what makes
/// "the change is pending before the mutation is observable" hold, which
/// the no-missed-violation checker relies on. Implementations must be
/// thread-safe and must not block beyond a short internal mutex.
class IntervalChangeSink {
 public:
  virtual ~IntervalChangeSink() = default;

  /// `ids` changed their cached visible state at logical time `now`.
  virtual void OnIntervalChanges(const std::vector<int>& ids,
                                 int64_t now) = 0;
};

}  // namespace apc

#endif  // APC_SUBSCRIBE_CHANGE_SINK_H_
