#include "obs/metrics.h"

#if APC_OBS

#include <algorithm>
#include <cmath>

namespace apc {
namespace obs {

namespace internal {

size_t AllocateStripeIndex() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

HistogramMetric::HistogramMetric(double lo, double hi, int bins) {
  if (!(lo > 0.0)) lo = 1.0;
  if (!(hi > lo)) hi = lo * 2.0;
  if (bins < 1) bins = 1;
  // Edge layout: 0 | lo ... hi (log-spaced) | 2*hi. The first span is the
  // explicit underflow bin (lag 0 is a common sample), the last the
  // clamped overflow bin — both participate in counts and quantiles.
  edges_.reserve(static_cast<size_t>(bins) + 3);
  edges_.push_back(0.0);
  double ratio = std::pow(hi / lo, 1.0 / bins);
  double edge = lo;
  for (int i = 0; i < bins; ++i) {
    edges_.push_back(edge);
    edge *= ratio;
  }
  edges_.push_back(hi);
  edges_.push_back(2.0 * hi);
  num_counts_ = edges_.size() - 1;
  counts_ = std::make_unique<std::atomic<int64_t>[]>(num_counts_);
  for (size_t i = 0; i < num_counts_; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

int HistogramMetric::BinOf(double x) const {
  if (!(x > 0.0)) return 0;  // negatives and NaN land in the underflow bin
  auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  long idx = it - edges_.begin() - 1;
  if (idx < 0) idx = 0;
  long last = static_cast<long>(num_counts_) - 1;
  if (idx > last) idx = last;
  return static_cast<int>(idx);
}

HistogramMetric::Snapshot HistogramMetric::TakeSnapshot() const {
  Snapshot snap;
  snap.edges = edges_;
  snap.counts.resize(num_counts_);
  for (size_t i = 0; i < num_counts_; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  // Total is derived from the copied bins, never read separately — the
  // snapshot is internally consistent by construction even mid-race.
  for (int64_t c : snap.counts) snap.total += c;
  return snap;
}

int64_t HistogramMetric::Count() const { return TakeSnapshot().total; }

double HistogramMetric::Snapshot::Quantile(double q) const {
  if (total <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  double rank = q * static_cast<double>(total - 1);
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    int64_t c = counts[i];
    if (c <= 0) continue;
    if (rank < static_cast<double>(seen + c)) {
      double frac = (rank - static_cast<double>(seen)) /
                    static_cast<double>(c);
      double lo = edges[i];
      double hi = edges[i + 1];
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return edges.back();
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const Counter* counter) {
  MutexLock lock(mu_);
  counters_.emplace_back(name, counter);
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const Gauge* gauge) {
  MutexLock lock(mu_);
  gauges_.emplace_back(name, gauge);
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const HistogramMetric* histogram) {
  MutexLock lock(mu_);
  histograms_.emplace_back(name, histogram);
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  {
    MutexLock lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      snap.counters.emplace_back(name, counter->load());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      snap.gauges.emplace_back(name, gauge->Value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      snap.histograms.push_back({name, histogram->TakeSnapshot()});
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramEntry& a, const HistogramEntry& b) {
              return a.name < b.name;
            });
  return snap;
}

int64_t MetricsRegistry::Snapshot::CounterValue(
    const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsRegistry::Snapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsRegistry::Snapshot::HistogramQuantile(const std::string& name,
                                                    double q) const {
  for (const auto& entry : histograms) {
    if (entry.name == name) return entry.data.Quantile(q);
  }
  return 0.0;
}

int64_t MetricsRegistry::Snapshot::HistogramCount(
    const std::string& name) const {
  for (const auto& entry : histograms) {
    if (entry.name == name) return entry.data.total;
  }
  return 0;
}

}  // namespace obs
}  // namespace apc

#endif  // APC_OBS
