#ifndef APC_OBS_FLIGHT_RECORDER_H_
#define APC_OBS_FLIGHT_RECORDER_H_

// Always-on crash-dump flight recorder over the per-thread trace rings:
// Arm() keeps low-cost recording live (TraceLevel::kFlight by default —
// the configuration the BENCH_obs ≤5% gate covers), and DumpOnFailure()
// writes the last N seq-ordered events — spans included — to a timestamped
// file when something goes wrong, so concurrency heisenbugs arrive with
// evidence attached.
//
// Dump triggers wired in this repo:
//  * scenario-runner checker failures (violations, containment, hull,
//    ordering) — one dump per run, at the first failing check;
//  * lock-order validator aborts (Arm installs the abort hook);
//  * rejected-input storms: every kStormThreshold-th rejected update/read
//    noted via NoteRejectedInput while armed.
//
// Concurrency contract: DumpOnFailure first drops the recording level so
// no NEW records start, but a thread mid-RecordImpl can still be writing
// its ring — the dump is a best-effort diagnostic read, exact whenever the
// failing path is the only recording thread (the lockstep scenario runs
// the dump test uses), approximate under full concurrency. A thread_local
// guard makes it safe to call from the lock-order abort hook even when the
// dump itself re-enters the validator.
//
// Under APC_OBS=0 everything here is a no-op and DumpOnFailure returns "".

#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace apc {
namespace obs {

#if APC_OBS

class FlightRecorder {
 public:
  /// Rejected inputs per armed dump: NoteRejectedInput triggers one dump
  /// each time the process-wide rejection tally crosses a multiple of
  /// this (a storm of malformed input is a failure worth evidence).
  static constexpr int64_t kStormThreshold = 64;

  /// Arms the recorder: enables trace recording at `level` (rings of
  /// `ring_capacity` events per thread) and installs the lock-order abort
  /// hook. kFlight skips per-read records and is the ≤5%-overhead
  /// configuration; harnesses that need complete per-operation span trees
  /// in their dumps (the scenario runner's forced-failure test) arm kFull.
  /// Quiesced-only, like TraceRecorder::Enable.
  static void Arm(size_t ring_capacity = 1 << 14,
                  TraceLevel level = TraceLevel::kFlight);

  /// Disables recording and uninstalls the abort hook. Quiesced-only.
  static void Disarm();

  static bool armed();

  /// Directory dumps are written into (default "."). Applies to the next
  /// dump.
  static void SetDumpDir(const std::string& dir);

  /// Dumps every retained event, seq-ordered, to
  /// `<dump_dir>/apc_flight_<unixtime>_<n>.txt` with a header carrying
  /// `reason`, the armed level, and the obs.trace_dropped total; recording
  /// resumes at the armed level afterwards. Returns the path, or "" when
  /// not armed, re-entered, or the file could not be written.
  static std::string DumpOnFailure(const std::string& reason);

  /// Path of the most recent successful dump ("" when none).
  static std::string last_dump_path();

  /// Counts one rejected input (malformed update/read/frame); every
  /// kStormThreshold-th note while armed dumps once with a storm reason.
  static void NoteRejectedInput(const char* what, int32_t id, int64_t now);
};

#else  // !APC_OBS

class FlightRecorder {
 public:
  static constexpr int64_t kStormThreshold = 64;
  static void Arm(size_t = 1 << 14, TraceLevel = TraceLevel::kFlight) {}
  static void Disarm() {}
  static bool armed() { return false; }
  static void SetDumpDir(const std::string&) {}
  static std::string DumpOnFailure(const std::string&) { return ""; }
  static std::string last_dump_path() { return ""; }
  static void NoteRejectedInput(const char*, int32_t, int64_t) {}
};

#endif  // APC_OBS

}  // namespace obs
}  // namespace apc

#endif  // APC_OBS_FLIGHT_RECORDER_H_
