#include "obs/chrome_trace.h"

#include <cstdio>
#include <map>
#include <utility>

namespace apc {
namespace obs {

namespace {

/// Appends one trace-event object. `dur < 0` renders an instant event.
void AppendEvent(std::string* out, const char* name, const char* cat,
                 const TraceRecord& rec, int64_t dur, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  char buf[256];
  if (dur >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
                  "\"dur\":%lld,\"pid\":1,\"tid\":%u,",
                  name, cat, static_cast<unsigned long long>(rec.seq),
                  static_cast<long long>(dur), rec.tid);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%llu,"
                  "\"s\":\"t\",\"pid\":1,\"tid\":%u,",
                  name, cat, static_cast<unsigned long long>(rec.seq),
                  rec.tid);
  }
  *out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"args\":{\"op\":%llu,\"span\":%u,\"parent\":%u,\"id\":%d,"
                "\"now\":%lld,\"arg\":%lld}}",
                static_cast<unsigned long long>(rec.op), rec.span, rec.parent,
                rec.id, static_cast<long long>(rec.now),
                static_cast<long long>(rec.arg));
  *out += buf;
}

}  // namespace

std::string ChromeTraceExporter::ToJson(
    const std::vector<TraceRecord>& records) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  // Open spans by (op, span): per-operation span ids are unique, so a
  // begin/end pair matches exactly even across ring wraps on one side.
  std::map<std::pair<uint64_t, uint32_t>, TraceRecord> open;
  const uint64_t last_seq = records.empty() ? 0 : records.back().seq;
  for (const TraceRecord& rec : records) {
    switch (rec.event) {
      case TraceEvent::kSpanBegin:
        open[{rec.op, rec.span}] = rec;
        break;
      case TraceEvent::kSpanEnd: {
        auto it = open.find({rec.op, rec.span});
        if (it == open.end()) break;  // begin overwritten in the ring
        const TraceRecord& begin = it->second;
        int64_t dur = static_cast<int64_t>(rec.seq - begin.seq);
        AppendEvent(&out, SpanKindName(static_cast<SpanKind>(begin.arg)),
                    "span", begin, dur < 1 ? 1 : dur, &first);
        open.erase(it);
        break;
      }
      default:
        AppendEvent(&out, TraceEventName(rec.event), "event", rec,
                    /*dur=*/-1, &first);
    }
  }
  // Spans still open at dump time run to the end of the captured window.
  for (const auto& [key, begin] : open) {
    int64_t dur = static_cast<int64_t>(last_seq - begin.seq);
    AppendEvent(&out, SpanKindName(static_cast<SpanKind>(begin.arg)), "span",
                begin, dur < 1 ? 1 : dur, &first);
  }
  out += "\n]}";
  return out;
}

bool ChromeTraceExporter::WriteFile(const std::string& path,
                                    const std::vector<TraceRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = ToJson(records);
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace obs
}  // namespace apc
