#include "obs/attribution.h"

#include <algorithm>

namespace apc {
namespace obs {

#if APC_OBS

namespace {

size_t StripeIndex(int id) {
  // Same cheap spread the engines use for shard routing: ids are dense
  // small ints, so a multiplicative mix avoids clustering stripes.
  uint64_t h = static_cast<uint64_t>(static_cast<uint32_t>(id));
  h *= 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>(h >> 60);  // top 4 bits -> 16 stripes
}

}  // namespace

AttributionTable::Slot& AttributionTable::SlotOf(Stripe& stripe, int id) {
  for (auto& entry : stripe.slots) {
    if (entry.first == id) return entry.second;
  }
  stripe.slots.emplace_back(id, Slot{});
  return stripe.slots.back().second;
}

void AttributionTable::RecordWidth(Slot& slot, double width, int64_t now) {
  slot.last_width = width;
  slot.last_now = now;
  slot.history[slot.history_head] = WidthPoint{now, width};
  slot.history_head = (slot.history_head + 1) % kHistory;
  if (slot.history_size < kHistory) ++slot.history_size;
}

void AttributionTable::RecordValueRefresh(int id, double cost, double width,
                                          int64_t now) {
  Stripe& stripe = stripes_[StripeIndex(id)];
  MutexLock lock(stripe.mu);
  Slot& slot = SlotOf(stripe, id);
  ++slot.value_refreshes;
  slot.value_cost += cost;
  RecordWidth(slot, width, now);
}

void AttributionTable::RecordQueryRefresh(int id, double cost, double width,
                                          int64_t now) {
  ReaderKind reader = ReaderScope::current_kind();
  Stripe& stripe = stripes_[StripeIndex(id)];
  MutexLock lock(stripe.mu);
  Slot& slot = SlotOf(stripe, id);
  ++slot.query_refreshes;
  slot.query_cost += cost;
  switch (reader) {
    case ReaderKind::kQuery:
      ++slot.query_reader_refreshes;
      break;
    case ReaderKind::kSubscription:
      ++slot.subscription_reader_refreshes;
      break;
    case ReaderKind::kNone:
      ++slot.unattributed_query_refreshes;
      break;
  }
  RecordWidth(slot, width, now);
}

std::vector<AttributionTable::SourceStats> AttributionTable::Snapshot()
    const {
  std::vector<SourceStats> out;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mu);
    for (const auto& entry : stripe.slots) {
      const Slot& slot = entry.second;
      SourceStats stats;
      stats.id = entry.first;
      stats.value_refreshes = slot.value_refreshes;
      stats.query_refreshes = slot.query_refreshes;
      stats.query_reader_refreshes = slot.query_reader_refreshes;
      stats.subscription_reader_refreshes =
          slot.subscription_reader_refreshes;
      stats.unattributed_query_refreshes =
          slot.unattributed_query_refreshes;
      stats.value_cost = slot.value_cost;
      stats.query_cost = slot.query_cost;
      stats.last_width = slot.last_width;
      stats.last_now = slot.last_now;
      stats.width_history.reserve(slot.history_size);
      // Oldest retained point: head when wrapped, 0 otherwise.
      size_t start =
          slot.history_size < kHistory ? 0 : slot.history_head;
      for (size_t i = 0; i < slot.history_size; ++i) {
        stats.width_history.push_back(
            slot.history[(start + i) % kHistory]);
      }
      out.push_back(std::move(stats));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SourceStats& a, const SourceStats& b) {
              return a.id < b.id;
            });
  return out;
}

AttributionTable::Totals AttributionTable::TotalsSnapshot() const {
  Totals totals;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(stripe.mu);
    for (const auto& entry : stripe.slots) {
      const Slot& slot = entry.second;
      totals.value_refreshes += slot.value_refreshes;
      totals.query_refreshes += slot.query_refreshes;
      totals.query_reader_refreshes += slot.query_reader_refreshes;
      totals.subscription_reader_refreshes +=
          slot.subscription_reader_refreshes;
      totals.unattributed_query_refreshes +=
          slot.unattributed_query_refreshes;
      totals.value_cost += slot.value_cost;
      totals.query_cost += slot.query_cost;
    }
  }
  return totals;
}

#endif  // APC_OBS

}  // namespace obs
}  // namespace apc
