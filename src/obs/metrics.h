#ifndef APC_OBS_METRICS_H_
#define APC_OBS_METRICS_H_

// The metrics half of the observability layer (src/obs/): named counters,
// gauges, and log-spaced histograms with striped relaxed-atomic storage —
// hot-path increments touch one cache line private to a stripe and are
// merged on read — plus a registry that hands out consistent named
// snapshots for the exporter and the benches.
//
// Compile-time gate (MAGPIE-style): `cmake -DAPC_OBS=0` compiles gauges,
// histograms, and the registry down to no-ops. Counter is the one
// deliberate exception — it backs the engines' protocol-semantic tallies
// (RuntimeCounters, TieredCounters, SubscriptionCounters), whose accessor
// values tier-1 tests assert, so under APC_OBS=0 it degrades to a single
// plain relaxed atomic instead of vanishing. ObsCounter is the
// observability-only variant that does vanish.
#ifndef APC_OBS
#define APC_OBS 1
#endif

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {
namespace obs {

#if APC_OBS

namespace internal {
/// Slow path of ThreadStripeIndex: allocates the next dense index. Called
/// once per thread; indices are never reused (threads are few and
/// long-lived here).
size_t AllocateStripeIndex();

/// Biased by +1 so 0 means "unassigned": constant initialization keeps the
/// TLS access guard-free, which keeps Counter::fetch_add inlineable down
/// to a TLS load, a branch, and one relaxed RMW.
inline thread_local size_t t_stripe_plus_one = 0;

/// Small dense per-thread index used to pick a counter stripe; assigned on
/// first use.
inline size_t ThreadStripeIndex() {
  size_t biased = t_stripe_plus_one;
  if (biased == 0) {
    biased = AllocateStripeIndex() + 1;
    t_stripe_plus_one = biased;
  }
  return biased - 1;
}
}  // namespace internal

/// Monotonic counter with per-thread striped storage: fetch_add lands on
/// the calling thread's stripe (a relaxed RMW on an uncontended cache
/// line), load sums the stripes. The interface deliberately mirrors the
/// std::atomic<int64_t> subset the engine tallies always used — load and
/// fetch_add with an explicit memory order — so converting a tally struct
/// field is a type change, not a call-site change.
///
/// The merged value is exact at any quiescent point (all increments
/// happen-before the read); a load racing increments may miss in-flight
/// stripe bumps but never double-counts and never goes backwards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void fetch_add(int64_t n,
                 std::memory_order order = std::memory_order_relaxed) {
    stripes_[internal::ThreadStripeIndex() & (kStripes - 1)].v.fetch_add(
        n, order);
  }

  int64_t load(std::memory_order order = std::memory_order_relaxed) const {
    int64_t total = 0;
    for (const Stripe& s : stripes_) total += s.v.load(order);
    return total;
  }

 private:
  static constexpr size_t kStripes = 16;  // power of two
  struct alignas(64) Stripe {
    std::atomic<int64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

/// Observability-only counter: same surface as Counter, but compiled to a
/// true no-op under APC_OBS=0 (loads read 0). Use for rates nothing in the
/// protocol semantics depends on — seqlock retry tallies, bus traffic,
/// per-link loss breakdowns.
using ObsCounter = Counter;

/// Point-in-time level (queue depth, in-flight batch size). Last writer
/// wins; no striping — gauges are set under the owner's existing locks.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-spaced histogram with relaxed-atomic bins: Record is one relaxed
/// RMW on the sample's bin. Layout: an explicit [0, lo) underflow bin,
/// `bins` log-spaced bins over [lo, hi), and a clamped overflow bin — so a
/// snapshot's total is the sum of its bins by construction, the
/// consistency invariant the exporter test leans on. Quantiles interpolate
/// linearly inside the containing bin (the stats/Histogram convention).
class HistogramMetric {
 public:
  /// Requires 0 < lo < hi, bins >= 1 (clamped defensively otherwise).
  HistogramMetric(double lo, double hi, int bins);
  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

  void Record(double x) {
    counts_[static_cast<size_t>(BinOf(x))].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Consistent copy of the bins: `total` equals the sum of `counts`.
  struct Snapshot {
    std::vector<double> edges;    // counts.size() + 1 ascending edges
    std::vector<int64_t> counts;  // underflow, log bins, overflow
    int64_t total = 0;
    /// Approximate q-quantile (q in [0, 1]); 0 when empty.
    double Quantile(double q) const;
  };
  Snapshot TakeSnapshot() const;

  int64_t Count() const;
  double Quantile(double q) const { return TakeSnapshot().Quantile(q); }

 private:
  /// Bin index of x in [0, counts_ size): 0 below lo, last at/above hi.
  int BinOf(double x) const;

  std::vector<double> edges_;  // counts + 1 edges: 0, lo, ..., hi, 2*hi
  std::unique_ptr<std::atomic<int64_t>[]> counts_;
  size_t num_counts_ = 0;
};

/// Name → metric directory. Registration is non-owning — the engines own
/// their tally structs and register the fields; registered metrics must
/// outlive the registry (engines declare the registry first so it is
/// destroyed last). TakeSnapshot reads every registered metric once and
/// returns the values sorted by name.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void RegisterCounter(const std::string& name, const Counter* counter);
  void RegisterGauge(const std::string& name, const Gauge* gauge);
  void RegisterHistogram(const std::string& name,
                         const HistogramMetric* histogram);

  struct HistogramEntry {
    std::string name;
    HistogramMetric::Snapshot data;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, int64_t>> counters;  // name-sorted
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramEntry> histograms;

    /// Value of the named counter/gauge, or 0 when unregistered.
    int64_t CounterValue(const std::string& name) const;
    int64_t GaugeValue(const std::string& name) const;
    /// q-quantile of the named histogram, or 0 when unregistered/empty.
    double HistogramQuantile(const std::string& name, double q) const;
    int64_t HistogramCount(const std::string& name) const;
  };
  Snapshot TakeSnapshot() const;

 private:
  /// Near the top of the obs rank band: TakeSnapshot may run while engine
  /// or exporter locks are held by their owners elsewhere, but this thread
  /// holds none of them — registration and snapshots are leaf operations,
  /// so kObsRegistry sits above every engine class and the exporter.
  mutable Mutex mu_{LockRank::kObsRegistry, "obs.registry.mu"};
  std::vector<std::pair<std::string, const Counter*>> counters_
      APC_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, const Gauge*>> gauges_
      APC_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, const HistogramMetric*>> histograms_
      APC_GUARDED_BY(mu_);
};

#else  // !APC_OBS ------------------------------------------------------

/// APC_OBS=0: the protocol-semantic counter stays functional as one plain
/// relaxed atomic (tier-1 asserts its accessor values), everything else
/// compiles to empty bodies the optimizer erases.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void fetch_add(int64_t n,
                 std::memory_order order = std::memory_order_relaxed) {
    v_.fetch_add(n, order);
  }
  int64_t load(std::memory_order order = std::memory_order_relaxed) const {
    return v_.load(order);
  }

 private:
  std::atomic<int64_t> v_{0};
};

class ObsCounter {
 public:
  ObsCounter() = default;
  ObsCounter(const ObsCounter&) = delete;
  ObsCounter& operator=(const ObsCounter&) = delete;
  void fetch_add(int64_t, std::memory_order = std::memory_order_relaxed) {}
  int64_t load(std::memory_order = std::memory_order_relaxed) const {
    return 0;
  }
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t Value() const { return 0; }
};

class HistogramMetric {
 public:
  HistogramMetric(double, double, int) {}
  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;
  void Record(double) {}
  struct Snapshot {
    std::vector<double> edges;
    std::vector<int64_t> counts;
    int64_t total = 0;
    double Quantile(double) const { return 0.0; }
  };
  Snapshot TakeSnapshot() const { return Snapshot{}; }
  int64_t Count() const { return 0; }
  double Quantile(double) const { return 0.0; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  void RegisterCounter(const std::string&, const Counter*) {}
  void RegisterCounter(const std::string&, const ObsCounter*) {}
  void RegisterGauge(const std::string&, const Gauge*) {}
  void RegisterHistogram(const std::string&, const HistogramMetric*) {}

  struct HistogramEntry {
    std::string name;
    HistogramMetric::Snapshot data;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramEntry> histograms;
    int64_t CounterValue(const std::string&) const { return 0; }
    int64_t GaugeValue(const std::string&) const { return 0; }
    double HistogramQuantile(const std::string&, double) const {
      return 0.0;
    }
    int64_t HistogramCount(const std::string&) const { return 0; }
  };
  Snapshot TakeSnapshot() const { return Snapshot{}; }
};

#endif  // APC_OBS

}  // namespace obs
}  // namespace apc

#endif  // APC_OBS_METRICS_H_
