#include "obs/flight_recorder.h"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <vector>

#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {
namespace obs {

#if APC_OBS

namespace {

struct State {
  /// Control state of the recorder. Rank kObsFlight: DumpOnFailure runs
  /// under engine/queue locks (checker hooks, storm notes) and then takes
  /// the trace registry lock (kObsTrace, higher) for the dump itself.
  Mutex mu{LockRank::kObsFlight, "obs.flight.mu"};
  TraceLevel level APC_GUARDED_BY(mu) = TraceLevel::kFlight;
  std::string dump_dir APC_GUARDED_BY(mu) = ".";
  std::string last_dump APC_GUARDED_BY(mu);
  int64_t dump_count APC_GUARDED_BY(mu) = 0;
};

State& GlobalState() {
  static State* state = new State();  // leaked: outlives all threads
  return *state;
}

/// Lock-free armed check so NoteRejectedInput costs one relaxed load when
/// the recorder is off (rejection sites sit inside shard locks).
std::atomic<bool> g_armed{false};
std::atomic<int64_t> g_rejections{0};

/// Reentrancy guard: a dump that re-enters the validator (or a storm note
/// fired while dumping) must not recurse into another dump.
thread_local bool t_in_dump = false;

const char* LevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff:
      return "off";
    case TraceLevel::kFlight:
      return "flight";
    case TraceLevel::kFull:
      return "full";
  }
  return "unknown";
}

void LockOrderHook(const char* reason) {
  FlightRecorder::DumpOnFailure(reason);
}

}  // namespace

void FlightRecorder::Arm(size_t ring_capacity, TraceLevel level) {
  if (level == TraceLevel::kOff) level = TraceLevel::kFlight;
  {
    State& state = GlobalState();
    MutexLock lock(state.mu);
    state.level = level;
  }
  TraceRecorder::Enable(ring_capacity, level);
  g_armed.store(true, std::memory_order_release);
  SetLockOrderAbortHook(&LockOrderHook);
}

void FlightRecorder::Disarm() {
  SetLockOrderAbortHook(nullptr);
  g_armed.store(false, std::memory_order_release);
  TraceRecorder::Disable();
}

bool FlightRecorder::armed() {
  return g_armed.load(std::memory_order_acquire);
}

void FlightRecorder::SetDumpDir(const std::string& dir) {
  State& state = GlobalState();
  MutexLock lock(state.mu);
  state.dump_dir = dir.empty() ? "." : dir;
}

std::string FlightRecorder::DumpOnFailure(const std::string& reason) {
  if (t_in_dump || !armed()) return "";
  t_in_dump = true;
  // Stop NEW records so the rings hold still for the read below (a thread
  // already inside RecordImpl may still finish its slot — the best-effort
  // contract in the header).
  TraceRecorder::Disable();
  std::vector<TraceRecord> records = TraceRecorder::DumpTrace();

  State& state = GlobalState();
  std::string path;
  TraceLevel restore_level = TraceLevel::kFlight;
  {
    MutexLock lock(state.mu);
    restore_level = state.level;
    char name[128];
    std::snprintf(name, sizeof(name), "/apc_flight_%lld_%lld.txt",
                  static_cast<long long>(std::time(nullptr)),
                  static_cast<long long>(state.dump_count++));
    path = state.dump_dir + name;
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  bool ok = f != nullptr;
  if (ok) {
    std::fprintf(f, "# apcache flight recorder dump\n");
    std::fprintf(f, "# reason: %s\n", reason.c_str());
    std::fprintf(f, "# unix_time: %lld\n",
                 static_cast<long long>(std::time(nullptr)));
    std::fprintf(f, "# level: %s\n", LevelName(restore_level));
    std::fprintf(f, "# events: %zu\n", records.size());
    std::fprintf(f, "# trace_dropped: %lld\n",
                 static_cast<long long>(TraceRecorder::dropped()));
    std::fprintf(f, "# columns: seq op span parent tid event id now arg\n");
    for (const TraceRecord& rec : records) {
      std::fprintf(f, "%llu %llu %u %u %u %s %d %lld %lld\n",
                   static_cast<unsigned long long>(rec.seq),
                   static_cast<unsigned long long>(rec.op), rec.span,
                   rec.parent, rec.tid, TraceEventName(rec.event), rec.id,
                   static_cast<long long>(rec.now),
                   static_cast<long long>(rec.arg));
    }
    ok = std::fclose(f) == 0 && ok;
  }

  if (ok) {
    MutexLock lock(state.mu);
    state.last_dump = path;
  }
  // Resume recording at the armed level — the recorder stays always-on
  // past a dump (later failures in the same process still get evidence).
  TraceRecorder::SetLevel(restore_level);
  t_in_dump = false;
  return ok ? path : "";
}

std::string FlightRecorder::last_dump_path() {
  State& state = GlobalState();
  MutexLock lock(state.mu);
  return state.last_dump;
}

void FlightRecorder::NoteRejectedInput(const char* what, int32_t id,
                                       int64_t now) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  int64_t n = g_rejections.fetch_add(1, std::memory_order_relaxed) + 1;
  TraceRecorder::Record(TraceEvent::kRejectedInput, id, now, n);
  if (n % kStormThreshold != 0) return;
  std::string reason = "rejected-input storm (";
  reason += what;
  reason += ")";
  DumpOnFailure(reason);
}

#endif  // APC_OBS

}  // namespace obs
}  // namespace apc
