#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {
namespace obs {

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kReadStart:
      return "read_start";
    case TraceEvent::kSeqlockRetry:
      return "seqlock_retry";
    case TraceEvent::kSharedFallback:
      return "shared_fallback";
    case TraceEvent::kEscalateRegional:
      return "escalate_regional";
    case TraceEvent::kEscalateSource:
      return "escalate_source";
    case TraceEvent::kBusEnqueue:
      return "bus_enqueue";
    case TraceEvent::kBusDrainBatch:
      return "bus_drain_batch";
    case TraceEvent::kOfferApplied:
      return "offer_applied";
    case TraceEvent::kOfferChargedLost:
      return "offer_charged_lost";
    case TraceEvent::kNotifyEvaluate:
      return "notify_evaluate";
    case TraceEvent::kNotifyShip:
      return "notify_ship";
    case TraceEvent::kSpanBegin:
      return "span_begin";
    case TraceEvent::kSpanEnd:
      return "span_end";
    case TraceEvent::kRejectedInput:
      return "rejected_input";
  }
  return "unknown";
}

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kPointRead:
      return "point_read";
    case SpanKind::kQuery:
      return "query";
    case SpanKind::kTieredRead:
      return "tiered_read";
    case SpanKind::kTick:
      return "tick";
    case SpanKind::kNotifyBatch:
      return "notify_batch";
    case SpanKind::kNotifyEval:
      return "notify_eval";
    case SpanKind::kEscalateRegional:
      return "escalate_regional";
    case SpanKind::kEscalateSource:
      return "escalate_source";
    case SpanKind::kSourcePull:
      return "source_pull";
    case SpanKind::kFanOut:
      return "fan_out";
  }
  return "unknown";
}

#if APC_OBS

namespace {

/// One thread's ring: written by its owner only (no synchronization — the
/// quiesced-only dump contract), retained in the global registry past the
/// thread's exit so DumpTrace still sees its tail.
struct Ring {
  explicit Ring(size_t capacity) : slots(capacity) {}
  std::vector<TraceRecord> slots;
  size_t head = 0;       // next write position
  uint64_t written = 0;  // lifetime total (>= slots.size() once wrapped)
  uint32_t tid = 0;
};

struct Registry {
  /// Top of the rank order: ring registration is a leaf (first trace event
  /// on a thread, Enable/Reset/Dump from quiesced tests) and never takes
  /// another lock while held.
  Mutex mu{LockRank::kObsTrace, "obs.trace.mu"};
  std::vector<std::unique_ptr<Ring>> rings APC_GUARDED_BY(mu);
  size_t ring_capacity APC_GUARDED_BY(mu) = 4096;
  uint32_t next_tid APC_GUARDED_BY(mu) = 0;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

std::atomic<uint64_t> g_seq{0};
/// Operation (span tree) ids; 0 is reserved for "no operation".
std::atomic<uint64_t> g_op{0};
/// Bumped by Enable/Reset so cached thread_local ring pointers from a
/// previous generation are re-registered instead of dangling.
std::atomic<uint64_t> g_generation{0};

/// Monotonic ring-overwrite tally (the obs.trace_dropped counter): leaked
/// like the registry so late-exiting threads can still bump it.
Counter& DroppedCounter() {
  static Counter* dropped = new Counter();
  return *dropped;
}

Ring* ThisThreadRing() {
  thread_local Ring* ring = nullptr;
  thread_local uint64_t ring_generation = ~uint64_t{0};
  uint64_t generation = g_generation.load(std::memory_order_acquire);
  if (ring == nullptr || ring_generation != generation) {
    Registry& registry = GlobalRegistry();
    MutexLock lock(registry.mu);
    auto owned = std::make_unique<Ring>(registry.ring_capacity);
    owned->tid = registry.next_tid++;
    ring = owned.get();
    registry.rings.push_back(std::move(owned));
    ring_generation = generation;
  }
  return ring;
}

}  // namespace

void TraceRecorder::Enable(size_t ring_capacity, TraceLevel level) {
  Registry& registry = GlobalRegistry();
  {
    MutexLock lock(registry.mu);
    registry.rings.clear();
    registry.ring_capacity = ring_capacity < 1 ? 1 : ring_capacity;
    registry.next_tid = 0;
  }
  g_seq.store(0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_release);
  internal::g_trace_level.store(static_cast<uint8_t>(level),
                                std::memory_order_release);
}

void TraceRecorder::Disable() {
  internal::g_trace_level.store(0, std::memory_order_release);
}

void TraceRecorder::SetLevel(TraceLevel level) {
  uint8_t requested = static_cast<uint8_t>(level);
  uint8_t current = internal::g_trace_level.load(std::memory_order_relaxed);
  while (current < requested &&
         !internal::g_trace_level.compare_exchange_weak(
             current, requested, std::memory_order_release,
             std::memory_order_relaxed)) {
  }
}

void TraceRecorder::RecordImpl(TraceEvent event, int32_t id, int64_t now,
                               int64_t arg) {
  Ring* ring = ThisThreadRing();
  if (ring->written >= ring->slots.size()) {
    DroppedCounter().fetch_add(1, std::memory_order_relaxed);
  }
  const internal::TraceContext& ctx = internal::t_trace_context;
  TraceRecord& slot = ring->slots[ring->head];
  slot.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  slot.op = ctx.op;
  slot.now = now;
  slot.arg = arg;
  slot.span = ctx.span;
  slot.parent = ctx.parent;
  slot.id = id;
  slot.tid = ring->tid;
  slot.event = event;
  ring->head = (ring->head + 1) % ring->slots.size();
  ++ring->written;
}

std::vector<TraceRecord> TraceRecorder::DumpTrace() {
  Registry& registry = GlobalRegistry();
  std::vector<TraceRecord> out;
  {
    MutexLock lock(registry.mu);
    for (const auto& ring : registry.rings) {
      size_t capacity = ring->slots.size();
      size_t retained = ring->written < capacity
                            ? static_cast<size_t>(ring->written)
                            : capacity;
      // Oldest retained slot: head when wrapped, 0 otherwise.
      size_t start = ring->written < capacity ? 0 : ring->head;
      for (size_t i = 0; i < retained; ++i) {
        out.push_back(ring->slots[(start + i) % capacity]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

void TraceRecorder::Reset() {
  Registry& registry = GlobalRegistry();
  {
    MutexLock lock(registry.mu);
    registry.rings.clear();
    registry.next_tid = 0;
  }
  g_seq.store(0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_release);
}

int64_t TraceRecorder::dropped() {
  return DroppedCounter().load(std::memory_order_relaxed);
}

void TraceRecorder::RegisterMetrics(MetricsRegistry* registry) {
  registry->RegisterCounter("obs.trace_dropped", &DroppedCounter());
}

void TraceScope::Enter() {
  internal::TraceContext& ctx = internal::t_trace_context;
  saved_op_ = ctx.op;
  saved_span_ = ctx.span;
  saved_parent_ = ctx.parent;
  if (ctx.op == 0) {
    // Root of a new operation tree. +1 keeps 0 reserved.
    ctx.op = g_op.fetch_add(1, std::memory_order_relaxed) + 1;
    ctx.next_span = 1;
    ctx.span = 1;
    ctx.parent = 0;
  } else {
    ctx.parent = ctx.span;
    ctx.span = ++ctx.next_span;
  }
  active_ = true;
  TraceRecorder::RecordImpl(TraceEvent::kSpanBegin, id_, now_,
                            static_cast<int64_t>(kind_));
}

void TraceScope::Exit() {
  internal::TraceContext& ctx = internal::t_trace_context;
  TraceRecorder::RecordImpl(TraceEvent::kSpanEnd, id_, now_,
                            static_cast<int64_t>(kind_));
  // Restore the enclosing node but NOT next_span: a later sibling must
  // draw a fresh span id, not collide with this subtree's. Leaving the
  // root zeroes op, so the next root starts a new tree (and re-seeds
  // next_span itself).
  ctx.op = saved_op_;
  ctx.span = saved_span_;
  ctx.parent = saved_parent_;
}

#endif  // APC_OBS

}  // namespace obs
}  // namespace apc
