#ifndef APC_OBS_ATTRIBUTION_H_
#define APC_OBS_ATTRIBUTION_H_

// Cost & precision attribution: per-source tallies of every refresh charge
// the protocol core records — split by cause (value- vs query-initiated,
// the paper's Cvr/Cqr sides) and, for query-initiated refreshes, by the
// READER that triggered the pull (an aggregate/point-read query vs a
// standing subscription, tagged ambiently via ReaderScope) — plus a short
// per-source time-series of the shipped bound width.
//
// Reconciliation contract (asserted by tests/attribution_test.cc): with an
// AttributionTable attached from construction and measurement started at
// tick 0, the table's refresh counts equal the engine's CostTracker
// tallies bit-for-bit — sum(value_refreshes) == CostTracker value side,
// sum(query_refreshes) == query side — and the cost totals match exactly
// (each charge is recorded with the same cvr/cqr double the tracker adds).
//
// Locking: 16 striped mutexes (rank kObsAttribution, a leaf above every
// engine/queue lock), one stripe per id hash; snapshots visit one stripe
// at a time. Under APC_OBS=0 the whole layer is a no-op.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"  // the APC_OBS default
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {
namespace obs {

/// Who is reading when a query-initiated refresh is charged.
enum class ReaderKind : uint8_t {
  kNone = 0,        // no ambient reader (maintenance pulls)
  kQuery = 1,       // aggregate query / point read
  kSubscription = 2,  // standing-query evaluation or escalation
};

#if APC_OBS

namespace internal {
struct ReaderTag {
  ReaderKind kind = ReaderKind::kNone;
  int64_t id = -1;
};
inline thread_local ReaderTag t_reader;
}  // namespace internal

/// RAII ambient reader tag: every query-initiated refresh charged while
/// the scope is live is attributed to (kind, reader_id). Nests; the
/// innermost scope wins.
class ReaderScope {
 public:
  ReaderScope(ReaderKind kind, int64_t reader_id) {
    saved_ = internal::t_reader;
    internal::t_reader = internal::ReaderTag{kind, reader_id};
  }
  ~ReaderScope() { internal::t_reader = saved_; }
  ReaderScope(const ReaderScope&) = delete;
  ReaderScope& operator=(const ReaderScope&) = delete;

  static ReaderKind current_kind() { return internal::t_reader.kind; }
  static int64_t current_id() { return internal::t_reader.id; }

 private:
  internal::ReaderTag saved_;
};

class AttributionTable {
 public:
  /// Width-history points retained per source (newest kept).
  static constexpr size_t kHistory = 32;

  struct WidthPoint {
    int64_t now = 0;
    double width = 0.0;
  };

  struct SourceStats {
    int id = -1;
    int64_t value_refreshes = 0;  // Cvr charges
    int64_t query_refreshes = 0;  // Cqr charges, all readers
    /// Cqr charges split by the ambient reader at charge time.
    int64_t query_reader_refreshes = 0;
    int64_t subscription_reader_refreshes = 0;
    int64_t unattributed_query_refreshes = 0;
    double value_cost = 0.0;
    double query_cost = 0.0;
    double last_width = 0.0;
    int64_t last_now = 0;
    /// Oldest-first shipped-width series (up to kHistory points).
    std::vector<WidthPoint> width_history;
  };

  struct Totals {
    int64_t value_refreshes = 0;
    int64_t query_refreshes = 0;
    int64_t query_reader_refreshes = 0;
    int64_t subscription_reader_refreshes = 0;
    int64_t unattributed_query_refreshes = 0;
    double value_cost = 0.0;
    double query_cost = 0.0;
  };

  AttributionTable() = default;
  AttributionTable(const AttributionTable&) = delete;
  AttributionTable& operator=(const AttributionTable&) = delete;

  /// One value-initiated refresh of `id`, charged `cost` (Cvr), shipping a
  /// bound of width `width` at tick `now`. Called by the protocol core at
  /// its RecordValueRefresh sites, under the owning shard's lock.
  void RecordValueRefresh(int id, double cost, double width, int64_t now);

  /// One query-initiated refresh; the ambient ReaderScope decides which
  /// reader bucket the charge lands in.
  void RecordQueryRefresh(int id, double cost, double width, int64_t now);

  /// Per-source stats, id-ascending. Consistent per source (one stripe
  /// lock each), not across sources.
  std::vector<SourceStats> Snapshot() const;

  /// Sums of every per-source tally.
  Totals TotalsSnapshot() const;

 private:
  static constexpr size_t kStripes = 16;

  struct Slot {
    int64_t value_refreshes = 0;
    int64_t query_refreshes = 0;
    int64_t query_reader_refreshes = 0;
    int64_t subscription_reader_refreshes = 0;
    int64_t unattributed_query_refreshes = 0;
    double value_cost = 0.0;
    double query_cost = 0.0;
    double last_width = 0.0;
    int64_t last_now = 0;
    WidthPoint history[kHistory];
    size_t history_head = 0;  // next write
    size_t history_size = 0;
  };

  struct Stripe {
    /// Same rank for every stripe; never held together (per-id charges
    /// touch one stripe, snapshots visit them one at a time).
    mutable Mutex mu{LockRank::kObsAttribution, "obs.attribution.mu"};
    std::vector<std::pair<int, Slot>> slots APC_GUARDED_BY(mu);
  };

  /// Finds or creates `id`'s slot within `stripe`. Requires stripe.mu so
  /// the linear probe and the possible append are atomic per stripe.
  Slot& SlotOf(Stripe& stripe, int id) APC_REQUIRES(stripe.mu);
  void RecordWidth(Slot& slot, double width, int64_t now);

  Stripe stripes_[kStripes];
};

#else  // !APC_OBS

class ReaderScope {
 public:
  ReaderScope(ReaderKind, int64_t) {}
  ReaderScope(const ReaderScope&) = delete;
  ReaderScope& operator=(const ReaderScope&) = delete;
  static ReaderKind current_kind() { return ReaderKind::kNone; }
  static int64_t current_id() { return -1; }
};

class AttributionTable {
 public:
  static constexpr size_t kHistory = 32;
  struct WidthPoint {
    int64_t now = 0;
    double width = 0.0;
  };
  struct SourceStats {
    int id = -1;
    int64_t value_refreshes = 0;
    int64_t query_refreshes = 0;
    int64_t query_reader_refreshes = 0;
    int64_t subscription_reader_refreshes = 0;
    int64_t unattributed_query_refreshes = 0;
    double value_cost = 0.0;
    double query_cost = 0.0;
    double last_width = 0.0;
    int64_t last_now = 0;
    std::vector<WidthPoint> width_history;
  };
  struct Totals {
    int64_t value_refreshes = 0;
    int64_t query_refreshes = 0;
    int64_t query_reader_refreshes = 0;
    int64_t subscription_reader_refreshes = 0;
    int64_t unattributed_query_refreshes = 0;
    double value_cost = 0.0;
    double query_cost = 0.0;
  };
  AttributionTable() = default;
  AttributionTable(const AttributionTable&) = delete;
  AttributionTable& operator=(const AttributionTable&) = delete;
  void RecordValueRefresh(int, double, double, int64_t) {}
  void RecordQueryRefresh(int, double, double, int64_t) {}
  std::vector<SourceStats> Snapshot() const { return {}; }
  Totals TotalsSnapshot() const { return Totals{}; }
};

#endif  // APC_OBS

}  // namespace obs
}  // namespace apc

#endif  // APC_OBS_ATTRIBUTION_H_
