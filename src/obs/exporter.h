#ifndef APC_OBS_EXPORTER_H_
#define APC_OBS_EXPORTER_H_

// Snapshot exporter: serializes one consistent MetricsRegistry snapshot to
// JSON — on demand (ToJson/WriteFile) or on a background interval
// (StartBackground) — following the bench/bench_report conventions
// (escaped keys, %.10g numbers, a schema tag) so the same tooling that
// reads the BENCH_*.json trajectories can read live engine snapshots.
//
// Consistency contract: every serialized histogram's "count" equals the
// sum of its serialized bins (the snapshot derives one from the other), and
// all values in one document come from a single TakeSnapshot pass.
//
// Under APC_OBS=0 the document is a stub ("obs_enabled": 0, no metrics)
// and the background thread never starts.

#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {
namespace obs {

class AttributionTable;

class SnapshotExporter {
 public:
  /// `registry` must outlive the exporter (and its background thread).
  explicit SnapshotExporter(const MetricsRegistry* registry);
  ~SnapshotExporter();

  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  /// Attaches the engines' cost-attribution table (non-owning; nullptr
  /// detaches): every subsequent document carries an "attribution" section
  /// with the per-source Cvr/Cqr splits, reader buckets, and width
  /// time-series. Attach before concurrent use (StartBackground); the
  /// table must outlive the exporter. Without an attachment — and under
  /// APC_OBS=0 — the section is absent, which apcache-obs-v1 permits.
  void AttachAttribution(const AttributionTable* attribution) {
    attribution_ = attribution;
  }

  /// One consistent snapshot as a JSON document.
  std::string ToJson() const;

  /// Writes ToJson() (plus a trailing newline) to `path`.
  bool WriteFile(const std::string& path) const;

  /// Starts a background thread rewriting `path` every `interval_ms`
  /// (clamped to >= 1). No-op if already running or under APC_OBS=0.
  void StartBackground(const std::string& path, int64_t interval_ms);

  /// Stops the background thread (idempotent; called by the destructor).
  void Stop();

  /// Background snapshots written so far (for tests).
  int64_t exports_written() const;

 private:
  void BackgroundLoop();

  const MetricsRegistry* const registry_;
  /// Set before concurrent use, read by every ToJson; non-owning.
  const AttributionTable* attribution_ = nullptr;

  /// Ranked below the registry: the exporter never snapshots while holding
  /// mu_ (WriteFile runs unlocked), but a control thread may configure the
  /// exporter and then register metrics, so kObsExporter < kObsRegistry.
  mutable Mutex mu_{LockRank::kObsExporter, "obs.exporter.mu"};
  CondVar cv_;
  std::string path_ APC_GUARDED_BY(mu_);
  int64_t interval_ms_ APC_GUARDED_BY(mu_) = 0;
  int64_t exports_written_ APC_GUARDED_BY(mu_) = 0;
  bool running_ APC_GUARDED_BY(mu_) = false;
  bool stop_ APC_GUARDED_BY(mu_) = false;
  /// Managed by StartBackground/Stop only; Stop joins after observing
  /// running_ under mu_, so the handle itself needs no guard.
  std::thread worker_;
};

}  // namespace obs
}  // namespace apc

#endif  // APC_OBS_EXPORTER_H_
