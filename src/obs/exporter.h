#ifndef APC_OBS_EXPORTER_H_
#define APC_OBS_EXPORTER_H_

// Snapshot exporter: serializes one consistent MetricsRegistry snapshot to
// JSON — on demand (ToJson/WriteFile) or on a background interval
// (StartBackground) — following the bench/bench_report conventions
// (escaped keys, %.10g numbers, a schema tag) so the same tooling that
// reads the BENCH_*.json trajectories can read live engine snapshots.
//
// Consistency contract: every serialized histogram's "count" equals the
// sum of its serialized bins (the snapshot derives one from the other), and
// all values in one document come from a single TakeSnapshot pass.
//
// Under APC_OBS=0 the document is a stub ("obs_enabled": 0, no metrics)
// and the background thread never starts.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace apc {
namespace obs {

class SnapshotExporter {
 public:
  /// `registry` must outlive the exporter (and its background thread).
  explicit SnapshotExporter(const MetricsRegistry* registry);
  ~SnapshotExporter();

  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  /// One consistent snapshot as a JSON document.
  std::string ToJson() const;

  /// Writes ToJson() (plus a trailing newline) to `path`.
  bool WriteFile(const std::string& path) const;

  /// Starts a background thread rewriting `path` every `interval_ms`
  /// (clamped to >= 1). No-op if already running or under APC_OBS=0.
  void StartBackground(const std::string& path, int64_t interval_ms);

  /// Stops the background thread (idempotent; called by the destructor).
  void Stop();

  /// Background snapshots written so far (for tests).
  int64_t exports_written() const;

 private:
  void BackgroundLoop();

  const MetricsRegistry* const registry_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::string path_;
  int64_t interval_ms_ = 0;
  int64_t exports_written_ = 0;
  bool running_ = false;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace obs
}  // namespace apc

#endif  // APC_OBS_EXPORTER_H_
