#ifndef APC_OBS_CHROME_TRACE_H_
#define APC_OBS_CHROME_TRACE_H_

// Chrome trace-event exporter: renders a dumped TraceRecord stream as a
// trace-event JSON document loadable in Perfetto / chrome://tracing.
//
// Mapping: each kSpanBegin/kSpanEnd pair becomes one complete ("X") event
// named after its SpanKind, and every other record becomes an instant
// ("i") event named after its TraceEvent. The logical tick `now` is far
// too coarse for a timeline, so the global seq stamp serves as the
// microsecond timestamp — one trace "microsecond" per recorded event,
// which preserves exact global ordering and nesting. Span identity
// (op/span/parent), the source id, and the logical tick ride in args.
//
// Pure functions of the record vector: both compile and run identically
// under APC_OBS=0 (where DumpTrace is always empty, yielding the valid
// empty document).

#include <string>
#include <vector>

#include "obs/trace.h"

namespace apc {
namespace obs {

class ChromeTraceExporter {
 public:
  /// `records` must be seq-sorted (DumpTrace's contract). Unmatched
  /// kSpanBegin records (still-open spans at dump time) are emitted with a
  /// duration running to the last seq; unmatched kSpanEnd records are
  /// dropped (their begin was overwritten in the ring).
  static std::string ToJson(const std::vector<TraceRecord>& records);

  /// Writes ToJson(records) plus a trailing newline to `path`.
  static bool WriteFile(const std::string& path,
                        const std::vector<TraceRecord>& records);
};

}  // namespace obs
}  // namespace apc

#endif  // APC_OBS_CHROME_TRACE_H_
