#include "obs/exporter.h"

#include <cmath>
#include <cstdio>

#include "obs/attribution.h"

namespace apc {
namespace obs {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderNum(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

#if APC_OBS
/// The "attribution" section: per-source charge splits plus the summed
/// totals, from one AttributionTable snapshot (consistent per source).
std::string RenderAttribution(const AttributionTable& attribution) {
  std::string out = ",\n  \"attribution\": {";
  out += "\n    \"sources\": [";
  std::vector<AttributionTable::SourceStats> sources = attribution.Snapshot();
  for (size_t i = 0; i < sources.size(); ++i) {
    const AttributionTable::SourceStats& s = sources[i];
    if (i > 0) out += ",";
    out += "\n      {\"id\": " + std::to_string(s.id);
    out += ", \"value_refreshes\": " + std::to_string(s.value_refreshes);
    out += ", \"query_refreshes\": " + std::to_string(s.query_refreshes);
    out += ", \"query_reader_refreshes\": " +
           std::to_string(s.query_reader_refreshes);
    out += ", \"subscription_reader_refreshes\": " +
           std::to_string(s.subscription_reader_refreshes);
    out += ", \"unattributed_query_refreshes\": " +
           std::to_string(s.unattributed_query_refreshes);
    out += ", \"value_cost\": " + RenderNum(s.value_cost);
    out += ", \"query_cost\": " + RenderNum(s.query_cost);
    out += ", \"last_width\": " + RenderNum(s.last_width);
    out += ", \"last_now\": " + std::to_string(s.last_now);
    out += ", \"width_history\": [";
    for (size_t p = 0; p < s.width_history.size(); ++p) {
      if (p > 0) out += ", ";
      out += "[" + std::to_string(s.width_history[p].now) + ", " +
             RenderNum(s.width_history[p].width) + "]";
    }
    out += "]}";
  }
  out += sources.empty() ? "]" : "\n    ]";
  AttributionTable::Totals totals = attribution.TotalsSnapshot();
  out += ",\n    \"totals\": {";
  out += "\"value_refreshes\": " + std::to_string(totals.value_refreshes);
  out += ", \"query_refreshes\": " + std::to_string(totals.query_refreshes);
  out += ", \"query_reader_refreshes\": " +
         std::to_string(totals.query_reader_refreshes);
  out += ", \"subscription_reader_refreshes\": " +
         std::to_string(totals.subscription_reader_refreshes);
  out += ", \"unattributed_query_refreshes\": " +
         std::to_string(totals.unattributed_query_refreshes);
  out += ", \"value_cost\": " + RenderNum(totals.value_cost);
  out += ", \"query_cost\": " + RenderNum(totals.query_cost);
  out += "}";
  out += "\n  }";
  return out;
}
#endif  // APC_OBS

}  // namespace

SnapshotExporter::SnapshotExporter(const MetricsRegistry* registry)
    : registry_(registry) {}

SnapshotExporter::~SnapshotExporter() { Stop(); }

std::string SnapshotExporter::ToJson() const {
  std::string out = "{\n";
  out += "  \"schema\": \"apcache-obs-v1\",\n";
  out += std::string("  \"obs_enabled\": ") + (APC_OBS ? "1" : "0");
  MetricsRegistry::Snapshot snap = registry_->TakeSnapshot();
  out += ",\n  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n    \"" + EscapeJson(snap.counters[i].first) +
           "\": " + std::to_string(snap.counters[i].second);
  }
  out += snap.counters.empty() ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n    \"" + EscapeJson(snap.gauges[i].first) +
           "\": " + std::to_string(snap.gauges[i].second);
  }
  out += snap.gauges.empty() ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& entry = snap.histograms[i];
    if (i > 0) out += ",";
    out += "\n    \"" + EscapeJson(entry.name) + "\": {";
    out += "\"count\": " + std::to_string(entry.data.total);
    out += ", \"p50\": " + RenderNum(entry.data.Quantile(0.50));
    out += ", \"p90\": " + RenderNum(entry.data.Quantile(0.90));
    out += ", \"p99\": " + RenderNum(entry.data.Quantile(0.99));
    // Only occupied bins are listed; their counts sum to "count" (the
    // snapshot's consistency invariant).
    out += ", \"bins\": [";
    bool first = true;
    for (size_t b = 0; b < entry.data.counts.size(); ++b) {
      if (entry.data.counts[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "[" + RenderNum(entry.data.edges[b]) + ", " +
             RenderNum(entry.data.edges[b + 1]) + ", " +
             std::to_string(entry.data.counts[b]) + "]";
    }
    out += "]}";
  }
  out += snap.histograms.empty() ? "}" : "\n  }";
#if APC_OBS
  if (attribution_ != nullptr) out += RenderAttribution(*attribution_);
#endif
  out += "\n}";
  return out;
}

bool SnapshotExporter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = ToJson();
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

void SnapshotExporter::StartBackground(const std::string& path,
                                       int64_t interval_ms) {
#if APC_OBS
  MutexLock lock(mu_);
  if (running_) return;
  path_ = path;
  interval_ms_ = interval_ms < 1 ? 1 : interval_ms;
  stop_ = false;
  running_ = true;
  worker_ = std::thread([this] { BackgroundLoop(); });
#else
  (void)path;
  (void)interval_ms;
#endif
}

void SnapshotExporter::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
  MutexLock lock(mu_);
  running_ = false;
}

int64_t SnapshotExporter::exports_written() const {
  MutexLock lock(mu_);
  return exports_written_;
}

void SnapshotExporter::BackgroundLoop() {
  // Two scoped critical sections per cycle with the file write between
  // them, unlocked. WaitFor carries no predicate (predicate lambdas defeat
  // clang's analysis — see util/mutex.h); a spurious wake just runs one
  // extra export, which is harmless, and stop_ is re-checked under mu_ at
  // both the top and the bottom of the cycle.
  while (true) {
    std::string path;
    int64_t interval = 0;
    {
      MutexLock lock(mu_);
      if (stop_) return;
      path = path_;
      interval = interval_ms_;
    }
    bool wrote = WriteFile(path);
    {
      MutexLock lock(mu_);
      if (wrote) ++exports_written_;
      if (stop_) return;
      cv_.WaitFor(mu_, interval);
    }
  }
}

}  // namespace obs
}  // namespace apc
