#ifndef APC_OBS_TRACE_H_
#define APC_OBS_TRACE_H_

// Query-lifecycle trace recorder: a process-wide, off-by-default stream of
// typed events covering one request's path through the runtime — the read
// fast path and its seqlock fallbacks, tier escalation hops, bus traffic,
// the core's offer outcomes, and notification evaluation/shipping — plus
// the causal span layer that stitches those events into per-operation
// trees (see TraceScope below and obs/chrome_trace.h for the export).
//
// Recording is per-thread: each recording thread owns a fixed-size ring of
// the newest events (oldest overwritten on wrap, each overwrite counted in
// the obs.trace_dropped counter), stamped from one global sequence
// counter; DumpTrace stitches the rings into a single seq-ordered stream.
//
// Levels (the cost dial):
//   kOff    — default. Record is one relaxed byte load and a branch.
//   kFlight — the flight-recorder setting: low-frequency lifecycle events
//             only (retries, fallbacks, escalations, bus/offer/notify and
//             their spans). Per-read records — kReadStart and the
//             kPointRead/kQuery/kTieredRead spans — are skipped, which is
//             what keeps an armed flight recorder inside the BENCH_obs
//             ≤5% overhead gate on the seqlock hot row.
//   kFull   — everything, including one record + one span per read. The
//             on-demand debugging mode; its cost is persisted in
//             BENCH_obs.json as "steady_traced" but not gated.
//
// Under APC_OBS=0 the whole recorder is nothing at all.
//
// DumpTrace/Reset are QUIESCED-ONLY: callers must ensure no thread is
// concurrently recording (join or otherwise synchronize with the workload
// first) — rings are written without synchronization by design.

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"  // the APC_OBS default

namespace apc {
namespace obs {

enum class TraceLevel : uint8_t {
  kOff = 0,
  kFlight = 1,
  kFull = 2,
};

enum class TraceEvent : uint8_t {
  kReadStart,         // id = source, arg = read-lock mode (kFull only)
  kSeqlockRetry,      // id = source whose optimistic read tore
  kSharedFallback,    // id = source (or -1 for a batch), arg = torn count
  kEscalateRegional,  // id = source escalating edge -> regional
  kEscalateSource,    // id = source escalating regional -> source pull
  kBusEnqueue,        // id = source, arg = depth after enqueue (kFull only)
  kBusDrainBatch,     // id = -1, arg = batch size
  kOfferApplied,      // id = refreshed source (kFull only)
  kOfferChargedLost,  // id = source charged for a push lost in transit
  kNotifyEvaluate,    // id = -1, arg = sub id being re-evaluated
  kNotifyShip,        // id = -1, arg = sub id, now = compute tick
  kSpanBegin,         // arg = SpanKind; op/span/parent identify the node
  kSpanEnd,           // arg = SpanKind; same op/span as the begin
  kRejectedInput,     // id = offending id, arg = process rejection total
};

/// The span taxonomy: every node in an operation's tree is one of these
/// (carried in the arg of kSpanBegin/kSpanEnd). The per-read roots and
/// the per-charged-refresh kSourcePull run at data-plane frequency and
/// record at kFull only; the rest are low-frequency control-plane spans
/// and record at kFlight.
enum class SpanKind : uint8_t {
  kPointRead = 0,   // Shard::PointRead (root), id = source
  kQuery,           // ShardedEngine::ExecuteQuery (root), id = -1
  kTieredRead,      // TieredEngine::Read (root), id = source, arg n/a
  kTick,            // value-initiated refresh cascade of one tick (root)
  kNotifyBatch,     // one notifier ProcessBatch (root), id = -1
  kNotifyEval,      // one subscription evaluation, id = -1
  kEscalateRegional,  // tiered edge -> regional hop, id = source
  kEscalateSource,    // tiered regional -> source hop, id = source
  kSourcePull,      // exact pull against the source, id = source
  kFanOut,          // derived LAN fan-out of one id, id = source
};

const char* TraceEventName(TraceEvent event);
const char* SpanKindName(SpanKind kind);

/// Minimum level at which `event` records. constexpr so the check in
/// Record folds to a constant compare for the (universal) constant-event
/// call sites: the kOff cost stays one relaxed byte load and one branch.
/// kFlight is the armed-flight-recorder level, so it keeps only the
/// control-plane evidence (escalations, drain batches, loss, notify
/// decisions, rejections) and drops the per-operation data plane — one
/// record per read (kReadStart) and per streamed update
/// (kBusEnqueue/kOfferApplied) — whose volume is what the ≤5% overhead
/// bound cannot absorb.
constexpr TraceLevel MinLevel(TraceEvent event) {
  return (event == TraceEvent::kReadStart ||
          event == TraceEvent::kBusEnqueue ||
          event == TraceEvent::kOfferApplied)
             ? TraceLevel::kFull
             : TraceLevel::kFlight;
}
constexpr TraceLevel MinLevel(SpanKind kind) {
  return (kind == SpanKind::kPointRead || kind == SpanKind::kQuery ||
          kind == SpanKind::kTieredRead || kind == SpanKind::kSourcePull)
             ? TraceLevel::kFull
             : TraceLevel::kFlight;
}

struct TraceRecord {
  uint64_t seq = 0;  // global order across all threads
  uint64_t op = 0;   // operation (span tree) id; 0 = outside any span
  int64_t now = 0;   // logical tick at the event
  int64_t arg = 0;   // event-specific payload (see TraceEvent)
  uint32_t span = 0;    // span id within op; 0 = none
  uint32_t parent = 0;  // parent span id within op; 0 = root
  int32_t id = -1;   // source id, or -1
  uint32_t tid = 0;  // recorder-assigned thread index
  TraceEvent event = TraceEvent::kReadStart;
};

#if APC_OBS

namespace internal {
/// The process-wide recording level. Lives in the header as a C++17 inline
/// variable so Record's disabled fast path — one relaxed byte load and a
/// branch — inlines into every call site instead of paying a function
/// call on hot paths that are almost never traced.
inline std::atomic<uint8_t> g_trace_level{0};

/// Ambient per-thread span context, stamped into every record. op == 0
/// means the thread is outside any span (records are point events).
struct TraceContext {
  uint64_t op = 0;
  uint32_t span = 0;
  uint32_t parent = 0;
  uint32_t next_span = 0;  // highest span id handed out within op
};
inline thread_local TraceContext t_trace_context;
}  // namespace internal

class TraceRecorder {
 public:
  /// Turns recording on at `level`; each thread's ring holds the newest
  /// `ring_capacity` of its events. Quiesced-only (drops prior rings).
  static void Enable(size_t ring_capacity = 4096,
                     TraceLevel level = TraceLevel::kFull);
  static void Disable();
  static bool enabled() {
    return internal::g_trace_level.load(std::memory_order_relaxed) != 0;
  }
  static TraceLevel level() {
    return static_cast<TraceLevel>(
        internal::g_trace_level.load(std::memory_order_relaxed));
  }
  /// Raises (never lowers) the live level without touching the rings.
  static void SetLevel(TraceLevel level);

  /// Appends one event to the calling thread's ring, stamped with the
  /// ambient span context. One inlined relaxed load and return when the
  /// level is below the event's MinLevel.
  static void Record(TraceEvent event, int32_t id, int64_t now,
                     int64_t arg = 0) {
    if (internal::g_trace_level.load(std::memory_order_relaxed) <
        static_cast<uint8_t>(MinLevel(event))) {
      return;
    }
    RecordImpl(event, id, now, arg);
  }

  /// All retained events across all rings, sorted by seq (oldest first).
  /// Quiesced-only.
  static std::vector<TraceRecord> DumpTrace();

  /// Drops every ring and restarts the sequence counter. Quiesced-only.
  static void Reset();

  /// Ring overwrites since process start (monotonic — the obs counter
  /// convention): every event that displaced an older retained event.
  static int64_t dropped();
  /// Registers the process-wide drop tally as "obs.trace_dropped" with
  /// `registry` (non-owning; the counter is static and never dies).
  static void RegisterMetrics(MetricsRegistry* registry);

 private:
  friend class TraceScope;
  static void RecordImpl(TraceEvent event, int32_t id, int64_t now,
                         int64_t arg);
};

/// RAII span: entering opens a node in the calling thread's operation tree
/// (allocating a fresh operation id when none is ambient), records
/// kSpanBegin, and stamps every Record made inside with (op, span,
/// parent); leaving records kSpanEnd and restores the enclosing node.
/// Inert — no records, no context mutation — when the live level is below
/// the kind's MinLevel, so a skipped per-read root at kFlight simply makes
/// its low-frequency children roots of their own.
class TraceScope {
 public:
  TraceScope(SpanKind kind, int32_t id, int64_t now)
      : kind_(kind), id_(id), now_(now) {
    if (internal::g_trace_level.load(std::memory_order_relaxed) <
        static_cast<uint8_t>(MinLevel(kind))) {
      return;
    }
    Enter();
  }
  ~TraceScope() {
    if (active_) Exit();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void Enter();
  void Exit();

  const SpanKind kind_;
  const int32_t id_;
  const int64_t now_;
  bool active_ = false;
  uint64_t saved_op_ = 0;
  uint32_t saved_span_ = 0;
  uint32_t saved_parent_ = 0;
};

#else  // !APC_OBS

class TraceRecorder {
 public:
  static void Enable(size_t = 4096, TraceLevel = TraceLevel::kFull) {}
  static void Disable() {}
  static bool enabled() { return false; }
  static TraceLevel level() { return TraceLevel::kOff; }
  static void SetLevel(TraceLevel) {}
  static void Record(TraceEvent, int32_t, int64_t, int64_t = 0) {}
  static std::vector<TraceRecord> DumpTrace() { return {}; }
  static void Reset() {}
  static int64_t dropped() { return 0; }
  static void RegisterMetrics(MetricsRegistry*) {}
};

class TraceScope {
 public:
  TraceScope(SpanKind, int32_t, int64_t) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

#endif  // APC_OBS

}  // namespace obs
}  // namespace apc

#endif  // APC_OBS_TRACE_H_
