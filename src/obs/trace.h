#ifndef APC_OBS_TRACE_H_
#define APC_OBS_TRACE_H_

// Query-lifecycle trace recorder: a process-wide, off-by-default stream of
// typed events covering one request's path through the runtime — the read
// fast path and its seqlock fallbacks, tier escalation hops, bus traffic,
// the core's offer outcomes, and notification evaluation/shipping.
//
// Recording is per-thread: each recording thread owns a fixed-size ring of
// the newest events (oldest overwritten on wrap), stamped from one global
// sequence counter; DumpTrace stitches the rings into a single
// seq-ordered stream. Cost discipline: with tracing disabled (the
// default) Record is one relaxed bool load; under APC_OBS=0 it is nothing
// at all.
//
// DumpTrace/Reset are QUIESCED-ONLY: callers must ensure no thread is
// concurrently recording (join or otherwise synchronize with the workload
// first) — rings are written without synchronization by design.

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"  // the APC_OBS default

namespace apc {
namespace obs {

enum class TraceEvent : uint8_t {
  kReadStart,         // id = source, arg = read-lock mode
  kSeqlockRetry,      // id = source whose optimistic read tore
  kSharedFallback,    // id = source (or -1 for a batch), arg = torn count
  kEscalateRegional,  // id = source escalating edge -> regional
  kEscalateSource,    // id = source escalating regional -> source pull
  kBusEnqueue,        // id = source, arg = queue depth after enqueue
  kBusDrainBatch,     // id = -1, arg = batch size
  kOfferApplied,      // id = source whose cached interval was refreshed
  kOfferChargedLost,  // id = source charged for a push lost in transit
  kNotifyEvaluate,    // id = -1, arg = sub id being re-evaluated
  kNotifyShip,        // id = -1, arg = sub id, now = compute tick
};

const char* TraceEventName(TraceEvent event);

struct TraceRecord {
  uint64_t seq = 0;  // global order across all threads
  int64_t now = 0;   // logical tick at the event
  int64_t arg = 0;   // event-specific payload (see TraceEvent)
  int32_t id = -1;   // source id, or -1
  uint32_t tid = 0;  // recorder-assigned thread index
  TraceEvent event = TraceEvent::kReadStart;
};

#if APC_OBS

namespace internal {
/// The process-wide recording gate. Lives in the header as a C++17 inline
/// variable so Record's disabled fast path — one relaxed load and a
/// branch — inlines into every call site instead of paying a function
/// call on hot paths that are almost never traced.
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

class TraceRecorder {
 public:
  /// Turns recording on; each thread's ring holds the newest
  /// `ring_capacity` of its events. Quiesced-only (drops prior rings).
  static void Enable(size_t ring_capacity = 4096);
  static void Disable();
  static bool enabled() {
    return internal::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's ring. One inlined relaxed
  /// load and return when disabled.
  static void Record(TraceEvent event, int32_t id, int64_t now,
                     int64_t arg = 0) {
    if (!internal::g_trace_enabled.load(std::memory_order_relaxed)) return;
    RecordImpl(event, id, now, arg);
  }

  /// All retained events across all rings, sorted by seq (oldest first).
  /// Quiesced-only.
  static std::vector<TraceRecord> DumpTrace();

  /// Drops every ring and restarts the sequence counter. Quiesced-only.
  static void Reset();

 private:
  static void RecordImpl(TraceEvent event, int32_t id, int64_t now,
                         int64_t arg);
};

#else  // !APC_OBS

class TraceRecorder {
 public:
  static void Enable(size_t = 4096) {}
  static void Disable() {}
  static bool enabled() { return false; }
  static void Record(TraceEvent, int32_t, int64_t, int64_t = 0) {}
  static std::vector<TraceRecord> DumpTrace() { return {}; }
  static void Reset() {}
};

#endif  // APC_OBS

}  // namespace obs
}  // namespace apc

#endif  // APC_OBS_TRACE_H_
