#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace apc {

namespace {

std::vector<double> LinearEdges(double lo, double hi, int bins) {
  std::vector<double> edges(static_cast<size_t>(bins) + 1);
  for (int i = 0; i <= bins; ++i) {
    edges[static_cast<size_t>(i)] = lo + (hi - lo) * i / bins;
  }
  return edges;
}

std::vector<double> LogEdges(double lo, double hi, int bins) {
  std::vector<double> edges(static_cast<size_t>(bins) + 1);
  double llo = std::log(lo);
  double lhi = std::log(hi);
  for (int i = 0; i <= bins; ++i) {
    edges[static_cast<size_t>(i)] = std::exp(llo + (lhi - llo) * i / bins);
  }
  return edges;
}

}  // namespace

Histogram::Histogram(double lo, double hi, int bins)
    : Histogram(LinearEdges(lo, hi, std::max(bins, 1)), false) {}

Histogram Histogram::LogSpaced(double lo, double hi, int bins) {
  return Histogram(LogEdges(lo, hi, std::max(bins, 1)), true);
}

Histogram::Histogram(std::vector<double> edges, bool log_spaced)
    : edges_(std::move(edges)),
      counts_(edges_.size() - 1, 0),
      log_spaced_(log_spaced) {}

int Histogram::BinOf(double x) const {
  if (x < edges_.front()) return -1;
  if (x >= edges_.back()) return static_cast<int>(counts_.size());
  auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  return static_cast<int>(it - edges_.begin()) - 1;
}

void Histogram::Add(double x) { AddN(x, 1); }

void Histogram::AddN(double x, int64_t n) {
  if (n <= 0) return;
  int bin = BinOf(x);
  if (bin < 0) {
    underflow_ += n;
  } else if (bin >= static_cast<int>(counts_.size())) {
    overflow_ += n;
  } else {
    counts_[static_cast<size_t>(bin)] += n;
  }
  count_ += n;
  sum_ += x * static_cast<double>(n);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::bin_lo(int bin) const {
  return edges_.at(static_cast<size_t>(bin));
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  double running = static_cast<double>(underflow_);
  if (target <= running) return edges_.front();
  for (size_t bin = 0; bin < counts_.size(); ++bin) {
    double next = running + static_cast<double>(counts_[bin]);
    if (target <= next && counts_[bin] > 0) {
      double frac = (target - running) / static_cast<double>(counts_[bin]);
      return edges_[bin] + frac * (edges_[bin + 1] - edges_[bin]);
    }
    running = next;
  }
  return edges_.back();
}

bool Histogram::Merge(const Histogram& other) {
  if (other.edges_ != edges_ || other.log_spaced_ != log_spaced_) {
    return false;
  }
  for (size_t bin = 0; bin < counts_.size(); ++bin) {
    counts_[bin] += other.counts_[bin];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  if (underflow_ > 0) {
    os << "(-inf, " << edges_.front() << ") " << underflow_ << "\n";
  }
  for (size_t bin = 0; bin < counts_.size(); ++bin) {
    if (counts_[bin] == 0) continue;
    os << "[" << edges_[bin] << ", " << edges_[bin + 1] << ") "
       << counts_[bin] << "\n";
  }
  if (overflow_ > 0) {
    os << "[" << edges_.back() << ", +inf) " << overflow_ << "\n";
  }
  return os.str();
}

}  // namespace apc
