#ifndef APC_STATS_HISTOGRAM_H_
#define APC_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace apc {

/// Fixed-bin histogram with approximate quantiles, used to report width
/// and cost distributions in the benches (e.g. the spread of converged
/// interval widths across sources). Supports linear or logarithmic bin
/// spacing; samples outside [lo, hi) land in underflow/overflow bins that
/// participate in counts and quantiles (clamped to the range edges).
class Histogram {
 public:
  /// Linear bins over [lo, hi). Requires lo < hi, bins >= 1.
  Histogram(double lo, double hi, int bins);

  /// Log-spaced bins over [lo, hi); requires 0 < lo < hi.
  static Histogram LogSpaced(double lo, double hi, int bins);

  void Add(double x);
  /// Adds `n` occurrences of x (bulk accounting).
  void AddN(double x, int64_t n);

  int64_t count() const { return count_; }
  double mean() const;
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int num_bins() const { return static_cast<int>(counts_.size()); }
  int64_t bin_count(int bin) const {
    return counts_.at(static_cast<size_t>(bin));
  }
  /// Inclusive lower edge of `bin`.
  double bin_lo(int bin) const;
  double bin_hi(int bin) const { return bin_lo(bin + 1); }

  /// Approximate q-quantile (q in [0, 1]) by linear interpolation within
  /// the containing bin. Returns 0 when empty.
  double Quantile(double q) const;

  /// Merges a histogram with identical bin layout; mismatched layouts are
  /// ignored (returns false).
  bool Merge(const Histogram& other);

  /// One line per nonempty bin: "[lo, hi) count".
  std::string ToString() const;

 private:
  Histogram(std::vector<double> edges, bool log_spaced);

  int BinOf(double x) const;

  std::vector<double> edges_;  // bins+1 edges, ascending
  std::vector<int64_t> counts_;
  bool log_spaced_;
  int64_t count_ = 0;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  double sum_ = 0.0;
};

}  // namespace apc

#endif  // APC_STATS_HISTOGRAM_H_
