#include "stats/stats.h"

#include <algorithm>
#include <cmath>

namespace apc {

void SummaryStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::min() const { return count_ == 0 ? 0.0 : min_; }
double SummaryStats::max() const { return count_ == 0 ? 0.0 : max_; }

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double nn = static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / nn;
  mean_ += delta * nb / nn;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double SeriesRecorder::Mean() const {
  if (points_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : points_) sum += p.value;
  return sum / static_cast<double>(points_.size());
}

}  // namespace apc
