#ifndef APC_STATS_STATS_H_
#define APC_STATS_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace apc {

/// Streaming summary statistics (Welford's algorithm): numerically stable
/// mean/variance without storing samples.
class SummaryStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const;
  double max() const;
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Merges another summary into this one (parallel-sweep aggregation).
  void Merge(const SummaryStats& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A recorded (time, value) series, e.g. the source value and interval
/// endpoints plotted in the paper's Figures 4 and 5.
struct SeriesPoint {
  int64_t time = 0;
  double value = 0.0;
};

/// Append-only recorder for time series produced during a simulation run.
class SeriesRecorder {
 public:
  void Record(int64_t time, double value) { points_.push_back({time, value}); }
  const std::vector<SeriesPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  /// Mean of the recorded values (0 when empty).
  double Mean() const;

 private:
  std::vector<SeriesPoint> points_;
};

}  // namespace apc

#endif  // APC_STATS_STATS_H_
