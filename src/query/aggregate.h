#ifndef APC_QUERY_AGGREGATE_H_
#define APC_QUERY_AGGREGATE_H_

#include <vector>

#include "core/interval.h"

namespace apc {

/// Aggregate kinds over cached interval approximations, in the style of
/// the TRAPP bounded-aggregate queries [OW00]. The paper's workload (§4.1)
/// uses SUM and MAX; MIN (symmetric to MAX) and AVG (a scaled SUM) round
/// out the usual aggregate set.
enum class AggregateKind {
  kSum,
  kMax,
  kMin,
  kAvg,
};

/// One value accessed by a query: the source id and the interval the cache
/// currently holds for it (the unbounded interval when the value is not
/// cached at all).
struct QueryItem {
  int source_id = 0;
  Interval interval;
};

/// A query over a set of source values with a precision constraint: the
/// result interval's width must not exceed `constraint`.
struct Query {
  AggregateKind kind = AggregateKind::kSum;
  std::vector<int> source_ids;
  double constraint = 0.0;
};

/// Tightest interval guaranteed to contain the exact SUM: the Minkowski sum
/// of the item intervals. Its width is the sum of the item widths.
Interval SumInterval(const std::vector<QueryItem>& items);

/// Tightest interval guaranteed to contain the exact MAX:
/// [max_i lo_i, max_i hi_i].
Interval MaxInterval(const std::vector<QueryItem>& items);

/// Tightest interval guaranteed to contain the exact MIN:
/// [min_i lo_i, min_i hi_i].
Interval MinInterval(const std::vector<QueryItem>& items);

/// Tightest interval guaranteed to contain the exact AVG: the SUM interval
/// scaled by 1/n. Empty input yields [0, 0].
Interval AvgInterval(const std::vector<QueryItem>& items);

/// Chooses which items to refresh so that, once the chosen items are
/// replaced by exact values, the SUM interval's width is at most
/// `constraint`. Greedy widest-first, which refreshes the minimum possible
/// number of items (every refresh removes that item's full width from the
/// result and all refreshes cost the same Cqr). Returns indices into
/// `items`.
std::vector<size_t> SumRefreshSelection(const std::vector<QueryItem>& items,
                                        double constraint);

/// Allocation-free form of SumRefreshSelection: clears and fills `*out`
/// instead of returning a fresh vector, and sorts through a thread-local
/// index scratch — with a caller-reused `*out`, the steady state performs
/// zero heap allocations (the read hot path's contract; enforced by
/// tests/alloc_free_read_test.cc). Selection order is identical to
/// SumRefreshSelection's.
void SumRefreshSelectionInto(const std::vector<QueryItem>& items,
                             double constraint, std::vector<size_t>* out);

/// Iterative candidate selection for bounded MAX. Returns the index of the
/// next item to refresh, or -1 when the MAX interval already satisfies
/// `constraint`. The chosen item is the non-exact item with the largest
/// upper endpoint — the one currently determining the result's upper bound.
/// Items whose upper endpoint is below the result's lower bound are never
/// chosen (candidate elimination, which is why approximate caching helps
/// MAX even for exact-precision queries; paper §4.4/§4.6).
///
/// Caller contract: after refreshing the returned item, replace its
/// interval with the exact value and call again; each call strictly shrinks
/// the result interval, so the loop terminates.
int NextMaxRefreshCandidate(const std::vector<QueryItem>& items,
                            double constraint);

/// Mirror of NextMaxRefreshCandidate for bounded MIN: returns the index of
/// the non-exact item with the smallest lower endpoint, or -1 when the MIN
/// interval already satisfies `constraint`. Items whose lower endpoint is
/// above the result's upper bound are eliminated as candidates.
int NextMinRefreshCandidate(const std::vector<QueryItem>& items,
                            double constraint);

/// Refresh selection for bounded AVG: an AVG constraint of `constraint`
/// is exactly a SUM constraint of constraint * items.size().
std::vector<size_t> AvgRefreshSelection(const std::vector<QueryItem>& items,
                                        double constraint);

/// Allocation-free form of AvgRefreshSelection (see SumRefreshSelectionInto).
void AvgRefreshSelectionInto(const std::vector<QueryItem>& items,
                             double constraint, std::vector<size_t>* out);

}  // namespace apc

#endif  // APC_QUERY_AGGREGATE_H_
