#include "query/query_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace apc {

QueryGenerator::QueryGenerator(const QueryWorkloadParams& params,
                               uint64_t seed)
    : params_(params), rng_(seed), constraints_(params.constraints, seed ^ 0xc0ffee) {
  scratch_ids_.resize(static_cast<size_t>(params_.num_sources));
  std::iota(scratch_ids_.begin(), scratch_ids_.end(), 0);
  if (params_.zipf_s > 0.0) {
    zipf_cdf_.reserve(static_cast<size_t>(params_.num_sources));
    double total = 0.0;
    for (int k = 0; k < params_.num_sources; ++k) {
      total += std::pow(static_cast<double>(k + 1), -params_.zipf_s);
      zipf_cdf_.push_back(total);
    }
  }
}

Query QueryGenerator::Next() {
  Query q;
  Next(&q);
  return q;
}

void QueryGenerator::Next(Query* out) {
  Query& q = *out;
  double roll = rng_.Uniform(0.0, 1.0);
  if (roll < params_.max_fraction) {
    q.kind = AggregateKind::kMax;
  } else if (roll < params_.max_fraction + params_.min_fraction) {
    q.kind = AggregateKind::kMin;
  } else if (roll < params_.max_fraction + params_.min_fraction +
                        params_.avg_fraction) {
    q.kind = AggregateKind::kAvg;
  } else {
    q.kind = AggregateKind::kSum;
  }
  q.constraint = constraints_.Next();

  int n = params_.num_sources;
  int g = params_.group_size;
  if (zipf_cdf_.empty()) {
    // Partial Fisher-Yates: the first group_size slots become a uniform
    // sample of distinct ids. (This branch also keeps the historical Rng
    // stream bit-exact for zipf_s == 0 seeds.)
    for (int i = 0; i < g; ++i) {
      int j = static_cast<int>(rng_.UniformInt(i, n - 1));
      std::swap(scratch_ids_[static_cast<size_t>(i)],
                scratch_ids_[static_cast<size_t>(j)]);
    }
    q.source_ids.assign(scratch_ids_.begin(), scratch_ids_.begin() + g);
    return;
  }

  // Zipf-skewed sample of distinct ids. The first element is exactly
  // Zipf-distributed (point-read streams use it as the hot-key draw);
  // later elements are Zipf conditioned on distinctness — i.e. weighted
  // sampling without replacement. Fast path: draw from the full cdf and
  // reject duplicates (O(log n) per draw while the chosen mass is small).
  // When a draw keeps landing on already-chosen ids — g close to n with a
  // steep exponent concentrates nearly all mass on the chosen head, and
  // pure rejection would effectively never terminate — fall back to one
  // exact O(n) draw over the remaining ids.
  q.source_ids.clear();
  q.source_ids.reserve(static_cast<size_t>(g));
  double total = zipf_cdf_.back();
  double chosen_mass = 0.0;
  auto weight = [this](int id) {
    return id == 0 ? zipf_cdf_[0]
                   : zipf_cdf_[static_cast<size_t>(id)] -
                         zipf_cdf_[static_cast<size_t>(id) - 1];
  };
  auto chosen = [&q](int id) {
    return std::find(q.source_ids.begin(), q.source_ids.end(), id) !=
           q.source_ids.end();
  };
  constexpr int kMaxRejects = 32;
  while (static_cast<int>(q.source_ids.size()) < g) {
    int id = -1;
    for (int attempt = 0; attempt < kMaxRejects; ++attempt) {
      double u = rng_.Uniform(0.0, total);
      auto it = std::upper_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
      int candidate = static_cast<int>(it - zipf_cdf_.begin());
      if (candidate >= n) candidate = n - 1;  // u == total edge
      if (!chosen(candidate)) {
        id = candidate;
        break;
      }
    }
    if (id < 0) {
      // Exact draw over the not-yet-chosen ids, proportional to weight.
      // chosen_mass re-sums rounded cdf differences, so the remaining span
      // can round ever so slightly negative once only the coldest ids are
      // left — clamp, and the keep-last-unchosen edge below resolves it.
      double u = rng_.Uniform(0.0, std::max(0.0, total - chosen_mass));
      double acc = 0.0;
      for (int k = 0; k < n; ++k) {
        if (chosen(k)) continue;
        acc += weight(k);
        id = k;  // keep the last unchosen id so u == acc edges resolve
        if (u < acc) break;
      }
    }
    chosen_mass += weight(id);
    q.source_ids.push_back(id);
  }
}

}  // namespace apc
