#include "query/query_gen.h"

#include <numeric>

namespace apc {

QueryGenerator::QueryGenerator(const QueryWorkloadParams& params,
                               uint64_t seed)
    : params_(params), rng_(seed), constraints_(params.constraints, seed ^ 0xc0ffee) {
  scratch_ids_.resize(static_cast<size_t>(params_.num_sources));
  std::iota(scratch_ids_.begin(), scratch_ids_.end(), 0);
}

Query QueryGenerator::Next() {
  Query q;
  double roll = rng_.Uniform(0.0, 1.0);
  if (roll < params_.max_fraction) {
    q.kind = AggregateKind::kMax;
  } else if (roll < params_.max_fraction + params_.min_fraction) {
    q.kind = AggregateKind::kMin;
  } else if (roll < params_.max_fraction + params_.min_fraction +
                        params_.avg_fraction) {
    q.kind = AggregateKind::kAvg;
  } else {
    q.kind = AggregateKind::kSum;
  }
  q.constraint = constraints_.Next();

  // Partial Fisher-Yates: the first group_size slots become a uniform
  // sample of distinct ids.
  int n = params_.num_sources;
  int g = params_.group_size;
  for (int i = 0; i < g; ++i) {
    int j = static_cast<int>(rng_.UniformInt(i, n - 1));
    std::swap(scratch_ids_[static_cast<size_t>(i)],
              scratch_ids_[static_cast<size_t>(j)]);
  }
  q.source_ids.assign(scratch_ids_.begin(), scratch_ids_.begin() + g);
  return q;
}

}  // namespace apc
