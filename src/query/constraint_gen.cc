#include "query/constraint_gen.h"

#include <algorithm>

namespace apc {

ConstraintGenerator::ConstraintGenerator(const ConstraintParams& params,
                                         uint64_t seed)
    : params_(params), rng_(seed) {}

double ConstraintGenerator::Next() {
  double lo = params_.Min();
  double hi = params_.Max();
  if (hi <= lo) return std::max(lo, 0.0);
  return std::max(rng_.Uniform(lo, hi), 0.0);
}

}  // namespace apc
