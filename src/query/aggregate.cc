#include "query/aggregate.h"

#include <algorithm>
#include <numeric>

namespace apc {

Interval SumInterval(const std::vector<QueryItem>& items) {
  Interval total(0.0, 0.0);
  for (const auto& item : items) total = total + item.interval;
  return total;
}

Interval MaxInterval(const std::vector<QueryItem>& items) {
  if (items.empty()) return Interval(0.0, 0.0);
  Interval result = items.front().interval;
  for (size_t i = 1; i < items.size(); ++i) {
    result = Interval::Max(result, items[i].interval);
  }
  return result;
}

Interval MinInterval(const std::vector<QueryItem>& items) {
  if (items.empty()) return Interval(0.0, 0.0);
  Interval result = items.front().interval;
  for (size_t i = 1; i < items.size(); ++i) {
    result = Interval::Min(result, items[i].interval);
  }
  return result;
}

Interval AvgInterval(const std::vector<QueryItem>& items) {
  if (items.empty()) return Interval(0.0, 0.0);
  Interval sum = SumInterval(items);
  double n = static_cast<double>(items.size());
  return Interval(sum.lo() / n, sum.hi() / n);
}

void SumRefreshSelectionInto(const std::vector<QueryItem>& items,
                             double constraint, std::vector<size_t>* out) {
  out->clear();
  // Result width is the sum of item widths, so refreshing an item removes
  // exactly its width. Selecting widest-first minimizes the number of
  // (equal-cost) refreshes needed to bring the total under the constraint.
  static thread_local std::vector<size_t> order;
  order.resize(items.size());
  std::iota(order.begin(), order.end(), size_t{0});
  // std::sort with an explicit index tiebreak reproduces stable_sort's
  // order (width descending, ties in item order) without stable_sort's
  // internal temporary buffer — the read hot path must not allocate.
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double wa = items[a].interval.Width();
    double wb = items[b].interval.Width();
    if (wa != wb) return wa > wb;
    return a < b;
  });

  double finite_total = 0.0;
  size_t unbounded = 0;
  for (const auto& item : items) {
    double w = item.interval.Width();
    if (w == kInfinity) {
      ++unbounded;
    } else {
      finite_total += w;
    }
  }

  for (size_t idx : order) {
    if (unbounded == 0 && finite_total <= constraint) break;
    double w = items[idx].interval.Width();
    if (w == 0.0) break;  // only exact items remain; nothing left to shrink
    out->push_back(idx);
    if (w == kInfinity) {
      --unbounded;
    } else {
      finite_total -= w;
    }
  }
}

std::vector<size_t> SumRefreshSelection(const std::vector<QueryItem>& items,
                                        double constraint) {
  std::vector<size_t> selection;
  SumRefreshSelectionInto(items, constraint, &selection);
  return selection;
}

void AvgRefreshSelectionInto(const std::vector<QueryItem>& items,
                             double constraint, std::vector<size_t>* out) {
  SumRefreshSelectionInto(
      items, constraint * static_cast<double>(items.size()), out);
}

std::vector<size_t> AvgRefreshSelection(const std::vector<QueryItem>& items,
                                        double constraint) {
  return SumRefreshSelection(items,
                             constraint * static_cast<double>(items.size()));
}

int NextMaxRefreshCandidate(const std::vector<QueryItem>& items,
                            double constraint) {
  if (items.empty()) return -1;
  double max_lo = -kInfinity;
  double max_hi = -kInfinity;
  for (const auto& item : items) {
    max_lo = std::max(max_lo, item.interval.lo());
    max_hi = std::max(max_hi, item.interval.hi());
  }
  double width = (max_hi == kInfinity || max_lo == -kInfinity)
                     ? kInfinity
                     : max_hi - max_lo;
  if (width <= constraint) return -1;

  // Refresh the non-exact item with the largest upper endpoint: it defines
  // the result's upper bound, and learning its exact value either lowers
  // max_hi or raises max_lo. Items with hi <= max_lo can never be chosen —
  // they are eliminated as MAX candidates by the cached intervals alone.
  int best = -1;
  double best_hi = -kInfinity;
  double best_width = -1.0;
  for (size_t i = 0; i < items.size(); ++i) {
    const Interval& iv = items[i].interval;
    if (iv.IsExact()) continue;
    double w = iv.Width();
    if (iv.hi() > best_hi ||
        (iv.hi() == best_hi && w > best_width)) {
      best = static_cast<int>(i);
      best_hi = iv.hi();
      best_width = w;
    }
  }
  return best;
}

int NextMinRefreshCandidate(const std::vector<QueryItem>& items,
                            double constraint) {
  if (items.empty()) return -1;
  double min_lo = kInfinity;
  double min_hi = kInfinity;
  for (const auto& item : items) {
    min_lo = std::min(min_lo, item.interval.lo());
    min_hi = std::min(min_hi, item.interval.hi());
  }
  double width = (min_lo == -kInfinity || min_hi == kInfinity)
                     ? kInfinity
                     : min_hi - min_lo;
  if (width <= constraint) return -1;

  // Refresh the non-exact item with the smallest lower endpoint: it
  // defines the result's lower bound. Items with lo >= min_hi can never be
  // the minimum and are never chosen.
  int best = -1;
  double best_lo = kInfinity;
  double best_width = -1.0;
  for (size_t i = 0; i < items.size(); ++i) {
    const Interval& iv = items[i].interval;
    if (iv.IsExact()) continue;
    double w = iv.Width();
    if (iv.lo() < best_lo || (iv.lo() == best_lo && w > best_width)) {
      best = static_cast<int>(i);
      best_lo = iv.lo();
      best_width = w;
    }
  }
  return best;
}

}  // namespace apc
