#ifndef APC_QUERY_QUERY_GEN_H_
#define APC_QUERY_QUERY_GEN_H_

#include <vector>

#include "query/aggregate.h"
#include "query/constraint_gen.h"
#include "util/rng.h"

namespace apc {

/// Workload mix for query generation: queries aggregate `group_size`
/// distinct sources chosen uniformly at random (the paper uses SUM or MAX
/// over 10 randomly selected sources), with constraints drawn from
/// `constraints`.
struct QueryWorkloadParams {
  int num_sources = 50;
  int group_size = 10;
  /// Fractions of MAX / MIN / AVG queries; the remainder are SUM. The
  /// paper runs pure-SUM and pure-MAX workloads (max_fraction 0 or 1).
  double max_fraction = 0.0;
  double min_fraction = 0.0;
  double avg_fraction = 0.0;
  ConstraintParams constraints;

  bool IsValid() const {
    return num_sources > 0 && group_size > 0 &&
           group_size <= num_sources && max_fraction >= 0.0 &&
           min_fraction >= 0.0 && avg_fraction >= 0.0 &&
           max_fraction + min_fraction + avg_fraction <= 1.0 &&
           constraints.IsValid();
  }
};

/// Generates the paper's query workload deterministically from a seed.
class QueryGenerator {
 public:
  QueryGenerator(const QueryWorkloadParams& params, uint64_t seed);

  /// Next query: kind per `max_fraction`, `group_size` distinct source ids,
  /// constraint from the configured distribution.
  Query Next();

  const QueryWorkloadParams& params() const { return params_; }

 private:
  QueryWorkloadParams params_;
  Rng rng_;
  ConstraintGenerator constraints_;
  std::vector<int> scratch_ids_;
};

}  // namespace apc

#endif  // APC_QUERY_QUERY_GEN_H_
