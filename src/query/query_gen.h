#ifndef APC_QUERY_QUERY_GEN_H_
#define APC_QUERY_QUERY_GEN_H_

#include <vector>

#include "query/aggregate.h"
#include "query/constraint_gen.h"
#include "util/rng.h"

namespace apc {

/// Workload mix for query generation: queries aggregate `group_size`
/// distinct sources, with constraints drawn from `constraints`. Source
/// selection is uniform (the paper uses SUM or MAX over 10 randomly
/// selected sources) unless `zipf_s > 0`, which skews selection toward the
/// low ids with Zipf exponent s — the phase-varying, hot-key workloads
/// dynamic precision pays off on (Yesil et al., "On Dynamic Precision
/// Scaling"): id 0 is the hottest key, id k is drawn with probability
/// proportional to 1/(k+1)^s.
struct QueryWorkloadParams {
  int num_sources = 50;
  int group_size = 10;
  /// Fractions of MAX / MIN / AVG queries; the remainder are SUM. The
  /// paper runs pure-SUM and pure-MAX workloads (max_fraction 0 or 1).
  double max_fraction = 0.0;
  double min_fraction = 0.0;
  double avg_fraction = 0.0;
  /// Zipf exponent for source selection; 0 keeps the paper's uniform draw
  /// (and the exact historical Rng stream — seeds reproduce old runs).
  double zipf_s = 0.0;
  ConstraintParams constraints;

  bool IsValid() const {
    return num_sources > 0 && group_size > 0 &&
           group_size <= num_sources && max_fraction >= 0.0 &&
           min_fraction >= 0.0 && avg_fraction >= 0.0 &&
           max_fraction + min_fraction + avg_fraction <= 1.0 &&
           zipf_s >= 0.0 && constraints.IsValid();
  }
};

/// Generates the paper's query workload deterministically from a seed.
class QueryGenerator {
 public:
  QueryGenerator(const QueryWorkloadParams& params, uint64_t seed);

  /// Next query: kind per `max_fraction`, `group_size` distinct source ids
  /// (uniform or Zipf-skewed), constraint from the configured distribution.
  Query Next();

  /// Allocation-free form: overwrites `*out`, reusing its source_ids
  /// capacity, so a caller-hoisted Query makes the steady-state draw
  /// heap-allocation-free (the driver's query loop relies on this; see
  /// tests/alloc_free_read_test.cc). Same Rng stream as Next().
  void Next(Query* out);

  const QueryWorkloadParams& params() const { return params_; }

 private:
  QueryWorkloadParams params_;
  Rng rng_;
  ConstraintGenerator constraints_;
  std::vector<int> scratch_ids_;
  /// Cumulative Zipf weights over ids 0..n-1 (empty when zipf_s == 0).
  std::vector<double> zipf_cdf_;
};

}  // namespace apc

#endif  // APC_QUERY_QUERY_GEN_H_
