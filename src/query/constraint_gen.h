#ifndef APC_QUERY_CONSTRAINT_GEN_H_
#define APC_QUERY_CONSTRAINT_GEN_H_

#include "util/rng.h"

namespace apc {

/// Distribution of query precision constraints (paper §4.1): constraints
/// are sampled uniformly from [avg·(1-rho), avg·(1+rho)], where `avg` is
/// the average constraint (δ_avg) and `rho` the variation across queries.
/// rho = 0 gives every query the same constraint; rho = 1 spreads them over
/// [0, 2·avg].
struct ConstraintParams {
  double avg = 0.0;
  double rho = 1.0;

  double Min() const { return avg * (1.0 - rho); }
  double Max() const { return avg * (1.0 + rho); }
  bool IsValid() const { return avg >= 0.0 && rho >= 0.0 && rho <= 1.0; }
};

/// Samples precision constraints from a ConstraintParams distribution.
class ConstraintGenerator {
 public:
  ConstraintGenerator(const ConstraintParams& params, uint64_t seed);

  /// Next constraint δ >= 0.
  double Next();

  const ConstraintParams& params() const { return params_; }

 private:
  ConstraintParams params_;
  Rng rng_;
};

}  // namespace apc

#endif  // APC_QUERY_CONSTRAINT_GEN_H_
