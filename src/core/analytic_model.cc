#include "core/analytic_model.h"

#include <algorithm>
#include <cmath>

#include "util/mathutil.h"

namespace apc {

namespace {
double ClampProb(double p) { return std::clamp(p, 0.0, 1.0); }
}  // namespace

double IntervalCostModel::Pvr(double width) const {
  if (width <= 0.0) return 1.0;
  if (width == kInfinity) return 0.0;
  return ClampProb(k1 / (width * width));
}

double IntervalCostModel::Pqr(double width) const {
  if (width == kInfinity) return ClampProb(k2 * 1e30);
  return ClampProb(k2 * width);
}

double IntervalCostModel::CostRate(double width) const {
  return cvr * Pvr(width) + cqr * Pqr(width);
}

double IntervalCostModel::OptimalWidth() const {
  return std::cbrt(Theta() * k1 / k2);
}

double IntervalCostModel::BalanceWidth() const {
  // Solve theta * K1/W^2 = K2 * W  =>  W^3 = theta*K1/K2.
  return std::cbrt(Theta() * k1 / k2);
}

IntervalCostModel IntervalCostModel::FromWorkload(double step, double tq,
                                                  double delta_max,
                                                  double cvr, double cqr) {
  IntervalCostModel m;
  // Appendix A: Pvr ~ t*(2s/W)^2 per step; with per-step accounting t = 1.
  m.k1 = 4.0 * step * step;
  m.k2 = 1.0 / (tq * delta_max);
  m.cvr = cvr;
  m.cqr = cqr;
  return m;
}

double StaleCostModel::Pvr(double bound) const {
  if (bound <= 0.0) return 1.0;
  if (bound == kInfinity) return 0.0;
  return ClampProb(k1 / bound);
}

double StaleCostModel::Pqr(double bound) const {
  if (bound == kInfinity) return 1.0;
  return ClampProb(k2 * bound);
}

double StaleCostModel::CostRate(double bound) const {
  return cvr * Pvr(bound) + cqr * Pqr(bound);
}

double StaleCostModel::OptimalBound() const {
  return std::sqrt(Theta() * k1 / k2);
}

std::vector<ModelCurvePoint> SweepModel(const IntervalCostModel& model,
                                        double lo, double hi, int steps) {
  std::vector<ModelCurvePoint> out;
  if (steps <= 0 || hi < lo) return out;
  out.reserve(static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    double w = steps == 1 ? lo : lo + (hi - lo) * i / (steps - 1);
    out.push_back({w, model.Pvr(w), model.Pqr(w), model.CostRate(w)});
  }
  return out;
}

}  // namespace apc
