#ifndef APC_CORE_COST_MODEL_H_
#define APC_CORE_COST_MODEL_H_

#include <cstdint>

namespace apc {

/// Refresh costs of the environment (paper §4.3). The defaults model one
/// request/response pair per remote read (Cqr = 2) and a single update
/// message pushed to the cache (Cvr = 1, loose consistency). Under
/// two-phase locking a push needs two round trips, Cvr = 4.
struct RefreshCosts {
  double cvr = 1.0;
  double cqr = 2.0;

  /// Cost factor for interval approximations: theta = 2·Cvr/Cqr.
  double ThetaInterval() const { return 2.0 * cvr / cqr; }
  /// Cost factor for stale-value approximations: theta' = Cvr/Cqr.
  double ThetaStale() const { return cvr / cqr; }

  bool IsValid() const { return cvr > 0.0 && cqr > 0.0; }
};

/// Accumulates refresh counts and total cost, with warm-up gating: counts
/// recorded before BeginMeasurement() are tracked separately and excluded
/// from the reported cost rate, matching the paper's discarded warm-up
/// period.
///
/// Locking contract: plain state, not thread-safe. Each tracker is owned
/// by exactly one engine component (a ProtocolTable, a tier) whose lock
/// covers every call — the concurrent runtime snapshots trackers under the
/// owning shard's lock and sums the copies.
class CostTracker {
 public:
  explicit CostTracker(const RefreshCosts& costs) : costs_(costs) {}

  /// Starts the measured period at simulation time `now` (ticks). Counts
  /// recorded earlier move to the warm-up tallies and stop contributing to
  /// CostRate().
  void BeginMeasurement(int64_t now);

  /// Charges one value-initiated refresh (cost Cvr). Callers charge at
  /// escape detection, BEFORE failure injection decides the push's fate.
  void RecordValueRefresh();
  /// Charges one query-initiated refresh (cost Cqr), once per exact pull.
  void RecordQueryRefresh();

  /// Marks the end of the run; `now` is one past the final tick.
  void EndMeasurement(int64_t now);

  // Charge-free readers; same single-owner locking contract as the
  // mutators (a racing RecordValueRefresh would tear the tallies).
  bool measuring() const { return measuring_; }
  int64_t value_refreshes() const { return value_refreshes_; }
  int64_t query_refreshes() const { return query_refreshes_; }
  double total_cost() const;
  int64_t measured_ticks() const;

  /// Average cost per tick Ω over the measured period.
  double CostRate() const;
  /// Per-tick refresh probabilities over the measured period.
  double MeasuredPvr() const;
  double MeasuredPqr() const;

  const RefreshCosts& costs() const { return costs_; }

 private:
  RefreshCosts costs_;
  bool measuring_ = false;
  int64_t start_tick_ = 0;
  int64_t end_tick_ = 0;
  int64_t value_refreshes_ = 0;
  int64_t query_refreshes_ = 0;
  int64_t warmup_value_refreshes_ = 0;
  int64_t warmup_query_refreshes_ = 0;
};

}  // namespace apc

#endif  // APC_CORE_COST_MODEL_H_
