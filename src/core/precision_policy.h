#ifndef APC_CORE_PRECISION_POLICY_H_
#define APC_CORE_PRECISION_POLICY_H_

#include <cstdint>
#include <memory>

#include "core/interval.h"

namespace apc {

/// The two refresh kinds of the protocol (paper §1.1): a value-initiated
/// refresh is pushed by the source when the exact value escapes the cached
/// interval; a query-initiated refresh is pulled by the cache when a query
/// finds the interval too wide.
enum class RefreshType {
  kValueInitiated,
  kQueryInitiated,
};

/// Context handed to a policy when a refresh occurs. `escaped_above`
/// distinguishes the two directions of a value-initiated escape; only the
/// uncentered variant (paper §4.5) uses it.
struct RefreshContext {
  RefreshType type = RefreshType::kValueInitiated;
  bool escaped_above = false;
  int64_t time = 0;
};

/// An approximation as shipped to a cache: a base interval plus optional
/// time-varying behaviour (paper §4.5 studies widths growing like c·t^p and
/// intervals drifting linearly). For the main algorithm the base interval is
/// constant in time (growth and drift are zero).
struct CachedApprox {
  Interval base;
  int64_t refresh_time = 0;
  /// Each side of the interval grows by growth_coeff * elapsed^growth_exp.
  double growth_coeff = 0.0;
  double growth_exp = 0.0;
  /// Both endpoints translate by drift_rate * elapsed.
  double drift_rate = 0.0;

  /// The interval in force at time `now`.
  Interval AtTime(int64_t now) const;

  /// Validity test for the exact value `v` at time `now`.
  bool Valid(double v, int64_t now) const { return AtTime(now).Contains(v); }

  /// True when the approximation never changes with time.
  bool IsStatic() const { return growth_coeff == 0.0 && drift_rate == 0.0; }
};

/// Strategy that decides how wide each refreshed interval should be.
///
/// The protocol separates a *raw* width — the number the source retains and
/// keeps adjusting across refreshes — from the *effective* width actually
/// shipped to the cache. For the adaptive algorithm the two differ only when
/// the thresholds delta0/delta1 snap the effective width to 0 (exact copy)
/// or infinity (effectively uncached); the paper is explicit that the source
/// "still retains the original width, and uses it when setting the next
/// width" (§2). Eviction ordering likewise uses raw widths.
///
/// Policies may carry per-value state (uncentered and history variants), so
/// each source value owns its own instance, produced by Clone().
///
/// Charging and locking contract: policies never charge costs — they only
/// decide widths; charging is ProtocolTable's job. Instances are not
/// thread-safe (NextWidth advances a private RNG; EffectiveWidth may read
/// per-value state): every call must hold the lock of the engine component
/// owning the enclosing ProtocolCell.
class PrecisionPolicy {
 public:
  virtual ~PrecisionPolicy();

  /// Raw width assigned when a value is first cached. Const and
  /// state-independent: safe wherever the instance is reachable.
  virtual double InitialWidth() const = 0;

  /// Returns the new raw width given the retained raw width and the refresh
  /// that just occurred. May consult and update per-value state and the
  /// policy's private RNG stream — owner's lock required, exclusively.
  virtual double NextWidth(double raw_width, const RefreshContext& ctx) = 0;

  /// Maps a raw width to the effective width shipped to the cache. Identity
  /// unless the policy implements thresholds.
  virtual double EffectiveWidth(double raw_width) const;

  /// Builds the approximation for the current exact value. The default
  /// centers a constant interval of EffectiveWidth(raw_width) on `value`.
  virtual CachedApprox MakeApprox(double value, double raw_width,
                                  int64_t now) const;

  /// Deep copy, including per-value state and an independent RNG stream.
  virtual std::unique_ptr<PrecisionPolicy> Clone() const = 0;

  /// True when the policy's configuration is in its documented domain.
  /// Engines check this at construction so a bad parameter set (negative
  /// alpha, inverted thresholds, non-positive initial width, ...) is
  /// rejected up front instead of producing NaN widths mid-run. The
  /// default accepts everything; parameterized policies override.
  virtual bool IsValidConfig() const { return true; }
};

/// Policy that always uses the same width. Used to measure refresh
/// probabilities as a function of a pinned W (paper Figure 3, where the
/// adaptive part of the algorithm is switched off).
class FixedWidthPolicy : public PrecisionPolicy {
 public:
  explicit FixedWidthPolicy(double width) : width_(width) {}

  double InitialWidth() const override { return width_; }
  double NextWidth(double raw_width, const RefreshContext& ctx) override;
  std::unique_ptr<PrecisionPolicy> Clone() const override {
    return std::make_unique<FixedWidthPolicy>(width_);
  }

 private:
  double width_;
};

}  // namespace apc

#endif  // APC_CORE_PRECISION_POLICY_H_
