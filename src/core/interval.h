#ifndef APC_CORE_INTERVAL_H_
#define APC_CORE_INTERVAL_H_

#include <string>

#include "util/mathutil.h"

namespace apc {

/// A closed numeric interval [lo, hi] used as an approximation of an exact
/// value V. The approximation is *valid* while lo <= V <= hi (paper §2).
/// Precision is the reciprocal of the width: a zero-width interval is an
/// exact copy (infinite precision); an infinite-width interval carries no
/// information (zero precision) and models "effectively not cached".
class Interval {
 public:
  /// Constructs the degenerate interval [0, 0].
  Interval() : lo_(0.0), hi_(0.0) {}

  /// Constructs [lo, hi]. Requires lo <= hi (checked with assert semantics
  /// via Normalize in debug; swapped silently otherwise to preserve the
  /// no-exceptions contract).
  Interval(double lo, double hi);

  /// Interval of width `width` centered on `center`. An infinite width
  /// produces the unbounded interval (-inf, +inf).
  static Interval Centered(double center, double width);

  /// Interval around `value` with independent lower and upper extents:
  /// [value - lower_width, value + upper_width]. Used by the uncentered
  /// variant of the algorithm (paper §4.5).
  static Interval Uncentered(double value, double lower_width,
                             double upper_width);

  /// The exact copy of `value`: [value, value].
  static Interval Exact(double value) { return Interval(value, value); }

  /// The interval (-inf, +inf): zero precision.
  static Interval Unbounded() { return Interval(-kInfinity, kInfinity); }

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Width hi - lo; infinite for the unbounded interval.
  double Width() const;

  /// Midpoint; only meaningful for bounded intervals.
  double Center() const { return 0.5 * (lo_ + hi_); }

  /// Precision as defined by the paper: 1 / width. Infinite for exact
  /// copies, zero for the unbounded interval.
  double Precision() const;

  /// Validity test Valid([L,H], V): true iff lo <= v <= hi.
  bool Contains(double v) const { return lo_ <= v && v <= hi_; }

  /// True iff every point of `other` lies inside this interval.
  bool Contains(const Interval& other) const {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }

  /// True iff the two intervals share at least one point.
  bool Overlaps(const Interval& other) const {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  bool IsExact() const { return lo_ == hi_ && IsFinite(lo_); }
  bool IsUnbounded() const { return Width() == kInfinity; }

  /// Minkowski sum: [a.lo + b.lo, a.hi + b.hi]. The width of the sum is the
  /// sum of the widths, which is what makes bounded-SUM refresh selection
  /// a covering problem (see query/aggregate.h).
  Interval operator+(const Interval& other) const;

  /// Interval max: [max(a.lo, b.lo), max(a.hi, b.hi)] — the tightest
  /// interval guaranteed to contain max(Va, Vb).
  static Interval Max(const Interval& a, const Interval& b);

  /// Interval min: [min(a.lo, b.lo), min(a.hi, b.hi)].
  static Interval Min(const Interval& a, const Interval& b);

  /// Translates both endpoints by delta.
  Interval Shifted(double delta) const;

  /// Symmetrically grows (positive amount) or shrinks each side; the result
  /// never inverts (collapses to the center point at most).
  Interval Inflated(double amount) const;

  bool operator==(const Interval& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }
  bool operator!=(const Interval& other) const { return !(*this == other); }

  /// Renders "[lo, hi]".
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
};

}  // namespace apc

#endif  // APC_CORE_INTERVAL_H_
