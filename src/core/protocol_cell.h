#ifndef APC_CORE_PROTOCOL_CELL_H_
#define APC_CORE_PROTOCOL_CELL_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "core/precision_policy.h"

namespace apc {

/// The per-value state machine of the refresh protocol, engine-agnostic:
/// the retained raw width, the last-shipped approximation (the source-side
/// interval the protocol tests validity against), and the policy hook that
/// adjusts the width on each refresh.
///
/// Every execution engine drives the same cell: the sequential CacheSystem
/// and the concurrent runtime's shards wrap one in a Source (cell + update
/// stream), and the stale-value baseline uses the cell's width bookkeeping
/// directly (widths are divergence bounds there; the shipped interval is
/// unused). The cell itself knows nothing about caches, charging, or
/// locking — that is ProtocolTable's job (protocol_table.h).
///
/// Charging and locking contract: the cell never charges costs — engines
/// charge through ProtocolTable around these calls. Instances are not
/// thread-safe: mutators (AdvanceWidth, Refresh, Ship, ShipDerived) and
/// NextWidth-driving paths require the owning engine component's lock held
/// exclusively; const readers require it at least shared.
///
/// Two invariants the parity tests pin down live here:
///  * the *raw* width is retained across refreshes even when the effective
///    width snaps to 0 or infinity at the delta0/delta1 thresholds (paper
///    §2: the source "still retains the original width, and uses it when
///    setting the next width");
///  * escape direction is evaluated against the last-shipped approximation
///    BEFORE the width update, because caches never report evictions and
///    the source's view of "what the cache holds" is what it last sent.
class ProtocolCell {
 public:
  /// `policy` decides the widths; the cell takes per-value ownership (each
  /// value needs its own instance — policies may carry state and a private
  /// RNG stream). `initial_value` seeds the first shipped approximation,
  /// exactly as if the value had been shipped at time `now`.
  explicit ProtocolCell(std::unique_ptr<PrecisionPolicy> policy,
                        double initial_value = 0.0, int64_t now = 0);

  ProtocolCell(ProtocolCell&&) = default;
  ProtocolCell& operator=(ProtocolCell&&) = default;

  double raw_width() const { return raw_width_; }
  const CachedApprox& last_shipped() const { return last_shipped_; }
  PrecisionPolicy* policy() { return policy_.get(); }
  const PrecisionPolicy* policy() const { return policy_.get(); }

  /// Raw width after delta0/delta1 threshold snapping — what actually
  /// ships (or, in the stale-value setting, the installed bound).
  double EffectiveWidth() const { return policy_->EffectiveWidth(raw_width_); }

  /// True when `value` has escaped the last shipped approximation — the
  /// trigger for a value-initiated refresh.
  bool NeedsValueRefresh(double value, int64_t now) const {
    return !last_shipped_.Valid(value, now);
  }

  /// True when the escape is above the interval's upper endpoint (consulted
  /// by the uncentered policy variant).
  bool EscapedAbove(double value, int64_t now) const {
    return value > last_shipped_.AtTime(now).hi();
  }

  /// Applies the policy's width update for a refresh of kind `type` and
  /// returns the new raw width. Does NOT reship an approximation — the
  /// stale-value setting adjusts bounds without interval state.
  double AdvanceWidth(RefreshType type, bool escaped_above, int64_t now);

  /// Full refresh: advances the width (escape direction derived from the
  /// pre-refresh shipped interval) and ships a fresh approximation of
  /// `value`, which becomes the new last-shipped state.
  CachedApprox Refresh(double value, RefreshType type, int64_t now);

  /// Ships an approximation of `value` at the current width without a
  /// width update (initial cache population; the paper's warm-up period
  /// absorbs its cost).
  CachedApprox Ship(double value, int64_t now);

  /// Records an externally-constructed approximation as the last-shipped
  /// state, without a width update. Derived tiers (hierarchy §5, the tiered
  /// runtime) ship hull intervals that contain their parent's interval
  /// rather than value-centered ones, so MakeApprox cannot build them; the
  /// cell still needs to remember what was sent — the sender keeps testing
  /// containment against its last shipment even when the receiving cache
  /// lost or dropped it. Pair with AdvanceWidth for the width bookkeeping.
  const CachedApprox& ShipDerived(const CachedApprox& approx) {
    last_shipped_ = approx;
    return last_shipped_;
  }

 private:
  std::unique_ptr<PrecisionPolicy> policy_;
  double raw_width_;
  CachedApprox last_shipped_;
};

}  // namespace apc

#endif  // APC_CORE_PROTOCOL_CELL_H_
