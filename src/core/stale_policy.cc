#include "core/stale_policy.h"

namespace apc {

AdaptivePolicyParams StalePolicyParams::ToAdaptiveParams() const {
  AdaptivePolicyParams p;
  p.cvr = cvr;
  p.cqr = cqr;
  p.alpha = alpha;
  p.delta0 = delta0;
  p.delta1 = delta1;
  p.initial_width = initial_bound;
  p.theta_multiplier = 1.0;
  return p;
}

std::unique_ptr<AdaptivePolicy> MakeStaleAdaptivePolicy(
    const StalePolicyParams& params, uint64_t seed) {
  return std::make_unique<AdaptivePolicy>(params.ToAdaptiveParams(), seed);
}

}  // namespace apc
