#include "core/protocol_cell.h"

namespace apc {

ProtocolCell::ProtocolCell(std::unique_ptr<PrecisionPolicy> policy,
                           double initial_value, int64_t now)
    : policy_(std::move(policy)), raw_width_(policy_->InitialWidth()) {
  last_shipped_ = policy_->MakeApprox(initial_value, raw_width_, now);
}

double ProtocolCell::AdvanceWidth(RefreshType type, bool escaped_above,
                                  int64_t now) {
  RefreshContext ctx;
  ctx.type = type;
  ctx.escaped_above = escaped_above;
  ctx.time = now;
  raw_width_ = policy_->NextWidth(raw_width_, ctx);
  return raw_width_;
}

CachedApprox ProtocolCell::Refresh(double value, RefreshType type,
                                   int64_t now) {
  bool escaped_above =
      (type == RefreshType::kValueInitiated) && EscapedAbove(value, now);
  AdvanceWidth(type, escaped_above, now);
  last_shipped_ = policy_->MakeApprox(value, raw_width_, now);
  return last_shipped_;
}

CachedApprox ProtocolCell::Ship(double value, int64_t now) {
  last_shipped_ = policy_->MakeApprox(value, raw_width_, now);
  return last_shipped_;
}

}  // namespace apc
