#include "core/cost_model.h"

namespace apc {

void CostTracker::BeginMeasurement(int64_t now) {
  measuring_ = true;
  start_tick_ = now;
  end_tick_ = now;
}

void CostTracker::RecordValueRefresh() {
  if (measuring_) {
    ++value_refreshes_;
  } else {
    ++warmup_value_refreshes_;
  }
}

void CostTracker::RecordQueryRefresh() {
  if (measuring_) {
    ++query_refreshes_;
  } else {
    ++warmup_query_refreshes_;
  }
}

void CostTracker::EndMeasurement(int64_t now) { end_tick_ = now; }

double CostTracker::total_cost() const {
  return costs_.cvr * static_cast<double>(value_refreshes_) +
         costs_.cqr * static_cast<double>(query_refreshes_);
}

int64_t CostTracker::measured_ticks() const { return end_tick_ - start_tick_; }

double CostTracker::CostRate() const {
  int64_t ticks = measured_ticks();
  if (ticks <= 0) return 0.0;
  return total_cost() / static_cast<double>(ticks);
}

double CostTracker::MeasuredPvr() const {
  int64_t ticks = measured_ticks();
  if (ticks <= 0) return 0.0;
  return static_cast<double>(value_refreshes_) / static_cast<double>(ticks);
}

double CostTracker::MeasuredPqr() const {
  int64_t ticks = measured_ticks();
  if (ticks <= 0) return 0.0;
  return static_cast<double>(query_refreshes_) / static_cast<double>(ticks);
}

}  // namespace apc
