#ifndef APC_CORE_VARIANTS_HISTORY_POLICY_H_
#define APC_CORE_VARIANTS_HISTORY_POLICY_H_

#include <deque>
#include <memory>

#include "core/adaptive_policy.h"

namespace apc {

/// Refresh-history variant (paper §4.5): instead of reacting to each
/// refresh independently, consider the r most recent refreshes and grow the
/// width when the (optionally exponentially weighted) majority were
/// value-initiated, shrink otherwise. The base algorithm is the r = 1
/// special case; the paper reports that no r > 1 configuration beat it.
///
/// The theta-based probabilistic gating is preserved so the comparison with
/// the base algorithm isolates the effect of the history window alone.
class HistoryPolicy : public PrecisionPolicy {
 public:
  /// `window` is r >= 1; `recency_weight` in (0, 1] multiplies each older
  /// vote (1.0 = unweighted majority).
  HistoryPolicy(const AdaptivePolicyParams& params, int window,
                double recency_weight = 1.0, uint64_t seed = 0);
  HistoryPolicy(const AdaptivePolicyParams& params, int window,
                double recency_weight, const Rng& rng,
                std::deque<RefreshType> history);

  double InitialWidth() const override { return params_.initial_width; }
  double NextWidth(double raw_width, const RefreshContext& ctx) override;
  double EffectiveWidth(double raw_width) const override;
  std::unique_ptr<PrecisionPolicy> Clone() const override;

  int window() const { return window_; }

 private:
  /// Weighted vote over the current history; > 0 means grow.
  double VoteBalance() const;

  AdaptivePolicyParams params_;
  int window_;
  double recency_weight_;
  mutable Rng rng_;
  std::deque<RefreshType> history_;  // most recent at the back
};

}  // namespace apc

#endif  // APC_CORE_VARIANTS_HISTORY_POLICY_H_
