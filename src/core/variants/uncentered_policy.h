#ifndef APC_CORE_VARIANTS_UNCENTERED_POLICY_H_
#define APC_CORE_VARIANTS_UNCENTERED_POLICY_H_

#include <memory>

#include "core/adaptive_policy.h"

namespace apc {

/// Uncentered-interval variant of the adaptive algorithm (paper §4.5).
/// Two widths are maintained per value — a lower extent and an upper
/// extent — and adjusted independently:
///
///  * value escapes above the upper bound: with probability min(theta, 1)
///    grow the upper width;
///  * value escapes below the lower bound: with the same probability grow
///    the lower width;
///  * query-initiated refresh: with probability min(1/theta, 1) shrink
///    BOTH widths.
///
/// The paper found this variant worse than centered intervals except on
/// biased random walks, where it helps slightly; the ablation bench
/// reproduces that comparison.
class UncenteredPolicy : public PrecisionPolicy {
 public:
  UncenteredPolicy(const AdaptivePolicyParams& params, uint64_t seed = 0);
  UncenteredPolicy(const AdaptivePolicyParams& params, const Rng& rng,
                   double lower_width, double upper_width);

  double InitialWidth() const override { return params_.initial_width; }

  /// Returns the new *total* raw width (lower + upper); the split is
  /// internal per-value state.
  double NextWidth(double raw_width, const RefreshContext& ctx) override;

  double EffectiveWidth(double raw_width) const override;

  /// Builds [value - lower, value + upper] with threshold snapping applied
  /// proportionally to both sides.
  CachedApprox MakeApprox(double value, double raw_width,
                          int64_t now) const override;

  std::unique_ptr<PrecisionPolicy> Clone() const override;

  double lower_width() const { return lower_width_; }
  double upper_width() const { return upper_width_; }

 private:
  AdaptivePolicyParams params_;
  mutable Rng rng_;
  double lower_width_;
  double upper_width_;
};

}  // namespace apc

#endif  // APC_CORE_VARIANTS_UNCENTERED_POLICY_H_
