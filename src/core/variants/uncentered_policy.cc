#include "core/variants/uncentered_policy.h"

#include <algorithm>

namespace apc {

namespace {
constexpr double kMinSideWidth = 5e-31;
constexpr double kMaxSideWidth = 5e29;

double ClampSide(double w) {
  return std::clamp(w, kMinSideWidth, kMaxSideWidth);
}
}  // namespace

UncenteredPolicy::UncenteredPolicy(const AdaptivePolicyParams& params,
                                   uint64_t seed)
    : params_(params),
      rng_(seed),
      lower_width_(0.5 * params.initial_width),
      upper_width_(0.5 * params.initial_width) {}

UncenteredPolicy::UncenteredPolicy(const AdaptivePolicyParams& params,
                                   const Rng& rng, double lower_width,
                                   double upper_width)
    : params_(params),
      rng_(rng),
      lower_width_(lower_width),
      upper_width_(upper_width) {}

double UncenteredPolicy::NextWidth(double /*raw_width*/,
                                   const RefreshContext& ctx) {
  double theta = params_.Theta();
  switch (ctx.type) {
    case RefreshType::kValueInitiated:
      if (rng_.Bernoulli(std::min(theta, 1.0))) {
        if (ctx.escaped_above) {
          upper_width_ = ClampSide(upper_width_ * (1.0 + params_.alpha));
        } else {
          lower_width_ = ClampSide(lower_width_ * (1.0 + params_.alpha));
        }
      }
      break;
    case RefreshType::kQueryInitiated:
      if (rng_.Bernoulli(std::min(1.0 / theta, 1.0))) {
        lower_width_ = ClampSide(lower_width_ / (1.0 + params_.alpha));
        upper_width_ = ClampSide(upper_width_ / (1.0 + params_.alpha));
      }
      break;
  }
  return lower_width_ + upper_width_;
}

double UncenteredPolicy::EffectiveWidth(double raw_width) const {
  if (raw_width < params_.delta0) return 0.0;
  if (raw_width >= params_.delta1) return kInfinity;
  return raw_width;
}

CachedApprox UncenteredPolicy::MakeApprox(double value, double raw_width,
                                          int64_t now) const {
  CachedApprox approx;
  approx.refresh_time = now;
  double effective = EffectiveWidth(raw_width);
  if (effective == 0.0) {
    approx.base = Interval::Exact(value);
  } else if (effective == kInfinity) {
    approx.base = Interval::Unbounded();
  } else {
    approx.base = Interval::Uncentered(value, lower_width_, upper_width_);
  }
  return approx;
}

std::unique_ptr<PrecisionPolicy> UncenteredPolicy::Clone() const {
  return std::make_unique<UncenteredPolicy>(params_, rng_.Fork(),
                                            lower_width_, upper_width_);
}

}  // namespace apc
