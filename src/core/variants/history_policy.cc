#include "core/variants/history_policy.h"

#include <algorithm>

namespace apc {

namespace {
constexpr double kMinRawWidth = 1e-30;
constexpr double kMaxRawWidth = 1e30;
}  // namespace

HistoryPolicy::HistoryPolicy(const AdaptivePolicyParams& params, int window,
                             double recency_weight, uint64_t seed)
    : params_(params),
      window_(std::max(window, 1)),
      recency_weight_(recency_weight),
      rng_(seed) {}

HistoryPolicy::HistoryPolicy(const AdaptivePolicyParams& params, int window,
                             double recency_weight, const Rng& rng,
                             std::deque<RefreshType> history)
    : params_(params),
      window_(std::max(window, 1)),
      recency_weight_(recency_weight),
      rng_(rng),
      history_(std::move(history)) {}

double HistoryPolicy::VoteBalance() const {
  double balance = 0.0;
  double weight = 1.0;
  // Walk from most recent (back) to oldest, discounting older votes.
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    balance += (*it == RefreshType::kValueInitiated) ? weight : -weight;
    weight *= recency_weight_;
  }
  return balance;
}

double HistoryPolicy::NextWidth(double raw_width, const RefreshContext& ctx) {
  history_.push_back(ctx.type);
  while (static_cast<int>(history_.size()) > window_) history_.pop_front();

  double w = std::clamp(raw_width, kMinRawWidth, kMaxRawWidth);
  double theta = params_.Theta();
  double balance = VoteBalance();
  if (balance > 0.0) {
    if (rng_.Bernoulli(std::min(theta, 1.0))) w *= (1.0 + params_.alpha);
  } else if (balance < 0.0) {
    if (rng_.Bernoulli(std::min(1.0 / theta, 1.0))) {
      w /= (1.0 + params_.alpha);
    }
  }
  // A tied vote leaves the width unchanged.
  return std::clamp(w, kMinRawWidth, kMaxRawWidth);
}

double HistoryPolicy::EffectiveWidth(double raw_width) const {
  if (raw_width < params_.delta0) return 0.0;
  if (raw_width >= params_.delta1) return kInfinity;
  return raw_width;
}

std::unique_ptr<PrecisionPolicy> HistoryPolicy::Clone() const {
  return std::make_unique<HistoryPolicy>(params_, window_, recency_weight_,
                                         rng_.Fork(), history_);
}

}  // namespace apc
