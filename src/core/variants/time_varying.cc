#include "core/variants/time_varying.h"

#include <algorithm>

namespace apc {

namespace {
constexpr double kMinRawWidth = 1e-30;
constexpr double kMaxRawWidth = 1e30;
}  // namespace

TimeVaryingPolicy::TimeVaryingPolicy(const AdaptivePolicyParams& params,
                                     TimeVaryingMode mode, double coeff,
                                     uint64_t seed)
    : params_(params), mode_(mode), coeff_(coeff), rng_(seed) {}

TimeVaryingPolicy::TimeVaryingPolicy(const AdaptivePolicyParams& params,
                                     TimeVaryingMode mode, double coeff,
                                     const Rng& rng)
    : params_(params), mode_(mode), coeff_(coeff), rng_(rng) {}

double TimeVaryingPolicy::NextWidth(double raw_width,
                                    const RefreshContext& ctx) {
  // Width adaptation is the base algorithm's; only the shipped
  // approximation differs.
  double w = std::clamp(raw_width, kMinRawWidth, kMaxRawWidth);
  double theta = params_.Theta();
  switch (ctx.type) {
    case RefreshType::kValueInitiated:
      if (rng_.Bernoulli(std::min(theta, 1.0))) w *= (1.0 + params_.alpha);
      break;
    case RefreshType::kQueryInitiated:
      if (rng_.Bernoulli(std::min(1.0 / theta, 1.0))) {
        w /= (1.0 + params_.alpha);
      }
      break;
  }
  return std::clamp(w, kMinRawWidth, kMaxRawWidth);
}

double TimeVaryingPolicy::EffectiveWidth(double raw_width) const {
  if (raw_width < params_.delta0) return 0.0;
  if (raw_width >= params_.delta1) return kInfinity;
  return raw_width;
}

CachedApprox TimeVaryingPolicy::MakeApprox(double value, double raw_width,
                                           int64_t now) const {
  CachedApprox approx;
  approx.refresh_time = now;
  double effective = EffectiveWidth(raw_width);
  approx.base = Interval::Centered(value, effective);
  if (effective == 0.0 || effective == kInfinity) {
    // Threshold-snapped approximations stay static: growing an exact copy
    // would silently reintroduce imprecision, and the unbounded interval
    // has nothing to grow.
    return approx;
  }
  switch (mode_) {
    case TimeVaryingMode::kSqrtGrowth:
      approx.growth_coeff = coeff_ * 0.5 * effective;
      approx.growth_exp = 0.5;
      break;
    case TimeVaryingMode::kCbrtGrowth:
      approx.growth_coeff = coeff_ * 0.5 * effective;
      approx.growth_exp = 1.0 / 3.0;
      break;
    case TimeVaryingMode::kLinearDrift:
      approx.drift_rate = coeff_;
      break;
  }
  return approx;
}

std::unique_ptr<PrecisionPolicy> TimeVaryingPolicy::Clone() const {
  return std::make_unique<TimeVaryingPolicy>(params_, mode_, coeff_,
                                             rng_.Fork());
}

}  // namespace apc
