#ifndef APC_CORE_VARIANTS_TIME_VARYING_H_
#define APC_CORE_VARIANTS_TIME_VARYING_H_

#include <memory>

#include "core/adaptive_policy.h"

namespace apc {

/// How a shipped interval evolves after the refresh (paper §4.5).
enum class TimeVaryingMode {
  /// Each side grows by coeff * t^(1/2).
  kSqrtGrowth,
  /// Each side grows by coeff * t^(1/3).
  kCbrtGrowth,
  /// Both endpoints translate by coeff * t (the variant that helped on
  /// biased random walks: L(t) = L + k·t, H(t) = H + k·t).
  kLinearDrift,
};

/// Time-varying-interval variant: width adjustment is identical to the base
/// adaptive algorithm, but the approximation shipped to the cache widens or
/// drifts with time. For the growth modes the coefficient is *relative*:
/// each side of a shipped interval of width W grows by
/// coeff * (W/2) * t^p — "width increases with time proportionately to
/// t^p" in the paper's words, anchored to the interval's own scale. The paper found widening intervals strictly worse than
/// constant ones on both synthetic and network data, and linear drift useful
/// only when the data trends predictably; the ablation bench reproduces
/// both findings.
class TimeVaryingPolicy : public PrecisionPolicy {
 public:
  TimeVaryingPolicy(const AdaptivePolicyParams& params, TimeVaryingMode mode,
                    double coeff, uint64_t seed = 0);
  TimeVaryingPolicy(const AdaptivePolicyParams& params, TimeVaryingMode mode,
                    double coeff, const Rng& rng);

  double InitialWidth() const override { return params_.initial_width; }
  double NextWidth(double raw_width, const RefreshContext& ctx) override;
  double EffectiveWidth(double raw_width) const override;
  CachedApprox MakeApprox(double value, double raw_width,
                          int64_t now) const override;
  std::unique_ptr<PrecisionPolicy> Clone() const override;

  TimeVaryingMode mode() const { return mode_; }
  double coeff() const { return coeff_; }

 private:
  AdaptivePolicyParams params_;
  TimeVaryingMode mode_;
  double coeff_;
  mutable Rng rng_;
};

}  // namespace apc

#endif  // APC_CORE_VARIANTS_TIME_VARYING_H_
