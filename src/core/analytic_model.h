#ifndef APC_CORE_ANALYTIC_MODEL_H_
#define APC_CORE_ANALYTIC_MODEL_H_

#include <vector>

namespace apc {

/// Closed-form cost model of paper §3 / Appendix A for interval
/// approximations of a random-walk value:
///
///   Pvr(W) = K1 / W²      (probability of a value-initiated refresh)
///   Pqr(W) = K2 · W       (probability of a query-initiated refresh)
///   Ω(W)   = Cvr·Pvr + Cqr·Pqr
///
/// K1 captures update volatility (step size); K2 captures query frequency
/// and the precision-constraint distribution (K2 = 1/(Tq·δmax) for
/// constraints uniform on [0, δmax]). The optimum is
/// W* = (θ·K1/K2)^{1/3} with θ = 2·Cvr/Cqr, and at W* the balance
/// θ·Pvr = Pqr holds — the invariant the adaptive algorithm hunts for.
struct IntervalCostModel {
  double k1 = 1.0;
  double k2 = 1.0 / 200.0;
  double cvr = 1.0;
  double cqr = 2.0;

  double Theta() const { return 2.0 * cvr / cqr; }
  /// Pvr(W); clamped to [0, 1] since it is a probability.
  double Pvr(double width) const;
  /// Pqr(W); clamped to [0, 1].
  double Pqr(double width) const;
  /// Expected cost per time step at the given width.
  double CostRate(double width) const;
  /// The width minimizing CostRate: (θ·K1/K2)^{1/3}.
  double OptimalWidth() const;
  /// The width where θ·Pvr(W) = Pqr(W); equals OptimalWidth().
  double BalanceWidth() const;

  /// Builds K1/K2 from workload primitives: random-walk step bound s,
  /// query period Tq and max precision constraint δmax (Appendix A):
  /// Pvr ≈ (2s/W)², Pqr = W/(Tq·δmax).
  static IntervalCostModel FromWorkload(double step, double tq,
                                        double delta_max, double cvr,
                                        double cqr);
};

/// Closed-form cost model for the stale-value setting (paper §4.7): a
/// divergence bound of W updates is exceeded once every W updates, so
/// Pvr(W) = K1/W and the optimum is W* = sqrt(θ'·K1/K2) with
/// θ' = Cvr/Cqr.
struct StaleCostModel {
  double k1 = 1.0;
  double k2 = 1.0;
  double cvr = 1.0;
  double cqr = 2.0;

  double Theta() const { return cvr / cqr; }
  double Pvr(double bound) const;
  double Pqr(double bound) const;
  double CostRate(double bound) const;
  double OptimalBound() const;
};

/// One row of a swept analytic curve (used by the Figure 2 bench).
struct ModelCurvePoint {
  double width;
  double pvr;
  double pqr;
  double cost_rate;
};

/// Evaluates the model on `steps` evenly spaced widths in [lo, hi].
std::vector<ModelCurvePoint> SweepModel(const IntervalCostModel& model,
                                        double lo, double hi, int steps);

}  // namespace apc

#endif  // APC_CORE_ANALYTIC_MODEL_H_
