#include "core/precision_policy.h"

#include <cmath>

namespace apc {

Interval CachedApprox::AtTime(int64_t now) const {
  if (IsStatic()) return base;
  double elapsed = static_cast<double>(now - refresh_time);
  if (elapsed < 0.0) elapsed = 0.0;
  Interval result = base;
  if (growth_coeff != 0.0) {
    result = result.Inflated(growth_coeff * std::pow(elapsed, growth_exp));
  }
  if (drift_rate != 0.0) {
    result = result.Shifted(drift_rate * elapsed);
  }
  return result;
}

PrecisionPolicy::~PrecisionPolicy() = default;

double PrecisionPolicy::EffectiveWidth(double raw_width) const {
  return raw_width;
}

CachedApprox PrecisionPolicy::MakeApprox(double value, double raw_width,
                                         int64_t now) const {
  CachedApprox approx;
  approx.base = Interval::Centered(value, EffectiveWidth(raw_width));
  approx.refresh_time = now;
  return approx;
}

double FixedWidthPolicy::NextWidth(double /*raw_width*/,
                                   const RefreshContext& /*ctx*/) {
  return width_;
}

}  // namespace apc
