#ifndef APC_CORE_STALE_POLICY_H_
#define APC_CORE_STALE_POLICY_H_

#include <memory>

#include "core/adaptive_policy.h"

namespace apc {

/// Adaptation of the algorithm to *stale value approximations* (paper §2.1
/// and §4.7, the Divergence Caching setting of [HSW94]): the "width" W is a
/// bound on the number of source updates not yet reflected in the cached
/// copy, rather than a numeric interval width.
///
/// In this model a value-initiated refresh happens deterministically after
/// W updates, so Pvr ∝ 1/W instead of 1/W²; minimizing
/// Ω(W) = Cvr·K1/W + Cqr·K2·W puts the optimum where theta'·Pvr = Pqr with
/// theta' = Cvr/Cqr — i.e. the same algorithm with theta_multiplier = 1
/// (the paper: "we needed to adjust our formula for the cost factor to
/// theta' = Cvr/Cqr; no other modifications were necessary").
struct StalePolicyParams {
  double cvr = 1.0;
  double cqr = 2.0;
  double alpha = 1.0;
  /// Thresholds in units of updates; delta0 > 0 enables exact caching of
  /// values whose divergence bound becomes very small.
  double delta0 = 0.0;
  double delta1 = kInfinity;
  double initial_bound = 1.0;

  /// Lowers into the interval-policy parameter struct with the stale-model
  /// cost factor theta' = Cvr/Cqr.
  AdaptivePolicyParams ToAdaptiveParams() const;
};

/// Builds the stale-value specialization of the adaptive policy. The
/// returned policy adjusts the divergence bound exactly as AdaptivePolicy
/// adjusts interval widths, with theta' = Cvr/Cqr.
std::unique_ptr<AdaptivePolicy> MakeStaleAdaptivePolicy(
    const StalePolicyParams& params, uint64_t seed = 0);

}  // namespace apc

#endif  // APC_CORE_STALE_POLICY_H_
