#ifndef APC_CORE_ADAPTIVE_POLICY_H_
#define APC_CORE_ADAPTIVE_POLICY_H_

#include <memory>

#include "core/precision_policy.h"
#include "util/rng.h"

namespace apc {

/// Parameters of the adaptive precision-setting algorithm (paper §2,
/// Table 1). The first two are properties of the environment; the last
/// three tune the algorithm.
struct AdaptivePolicyParams {
  /// Cost of a value-initiated refresh (Cvr).
  double cvr = 1.0;
  /// Cost of a query-initiated refresh (Cqr).
  double cqr = 2.0;
  /// Adaptivity parameter alpha >= 0: widths are multiplied/divided by
  /// (1 + alpha). The paper's experiments find alpha = 1 a good overall
  /// setting (Figure 6).
  double alpha = 1.0;
  /// Lower threshold delta0: computed widths below it are shipped as 0
  /// (exact copy). Should be a small positive epsilon when exact-precision
  /// queries exist (paper §4.4).
  double delta0 = 0.0;
  /// Upper threshold delta1: computed widths at or above it are shipped as
  /// infinity (effectively uncached). Infinity disables the threshold;
  /// delta1 == delta0 degenerates to pure exact caching.
  double delta1 = kInfinity;
  /// Raw width assigned when a value is first cached.
  double initial_width = 1.0;
  /// Multiplier in the cost factor theta = multiplier * cvr / cqr. The
  /// interval model's analysis (Pvr ∝ 1/W², Appendix A) yields 2; the
  /// stale-value model (Pvr ∝ 1/W, §4.7) yields 1.
  double theta_multiplier = 2.0;

  /// Cost factor theta controlling the width-adjustment probabilities.
  double Theta() const { return theta_multiplier * cvr / cqr; }

  /// True when every parameter is in its documented domain.
  bool IsValid() const;
};

/// The paper's adaptive precision-setting algorithm. On each refresh of a
/// value the source updates the retained raw width W:
///
///   value-initiated:  with probability min(theta, 1),   W <- W * (1+alpha)
///   query-initiated:  with probability min(1/theta, 1), W <- W / (1+alpha)
///
/// which converges to the width W* minimizing the expected cost rate
/// Ω = Cvr·Pvr + Cqr·Pqr by equalizing theta·Pvr with Pqr (paper §3).
/// EffectiveWidth applies the delta0/delta1 threshold snapping.
class AdaptivePolicy : public PrecisionPolicy {
 public:
  /// `seed` derives this instance's private RNG stream; Clone() forks it.
  explicit AdaptivePolicy(const AdaptivePolicyParams& params,
                          uint64_t seed = 0);
  AdaptivePolicy(const AdaptivePolicyParams& params, const Rng& rng);

  double InitialWidth() const override { return params_.initial_width; }
  double NextWidth(double raw_width, const RefreshContext& ctx) override;
  double EffectiveWidth(double raw_width) const override;
  std::unique_ptr<PrecisionPolicy> Clone() const override;
  bool IsValidConfig() const override { return params_.IsValid(); }

  const AdaptivePolicyParams& params() const { return params_; }

  /// Probability that a value-initiated refresh grows the width.
  double GrowProbability() const;
  /// Probability that a query-initiated refresh shrinks the width.
  double ShrinkProbability() const;

 private:
  AdaptivePolicyParams params_;
  mutable Rng rng_;
};

}  // namespace apc

#endif  // APC_CORE_ADAPTIVE_POLICY_H_
