#ifndef APC_CORE_PROTOCOL_TABLE_H_
#define APC_CORE_PROTOCOL_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cost_model.h"
#include "core/interval.h"
#include "core/protocol_cell.h"
#include "util/rng.h"

namespace apc {
namespace obs {
class AttributionTable;
}  // namespace obs

/// One cached approximation together with the raw width the source retained
/// when shipping it. Eviction ordering uses raw widths: the paper is
/// explicit that the widest-interval eviction decision "is based on
/// original widths, not on 0 or ∞ widths due to thresholds".
struct ProtocolEntry {
  CachedApprox approx;
  double raw_width = 0.0;
};

/// Seqlock-protected mirror of one registered id's cached entry — the HOT
/// half of the store's hot/cold split (the cold eviction metadata stays in
/// the entry map). Writers (under the owner's exclusive synchronization)
/// bump `version` to odd, store the payload with relaxed atomics, then
/// publish an even version; readers validate the version around a relaxed
/// copy. Plain fields would be a data race; atomics make the optimistic
/// path well-defined. The struct is sized and aligned to one cache line so
/// an optimistic read touches exactly one line and slots never false-share.
// contracts-lint: allow(raw-atomic) -- seqlock slot payload: the atomics
// ARE the synchronization protocol (version-validated optimistic reads),
// not a tally; a mutex here would defeat the lock-free read path.
struct alignas(64) VersionedSlot {
  std::atomic<uint32_t> version{0};
  std::atomic<bool> cached{false};
  std::atomic<double> lo{0.0};
  std::atomic<double> hi{0.0};
  std::atomic<int64_t> refresh_time{0};
  std::atomic<double> growth_coeff{0.0};
  std::atomic<double> growth_exp{0.0};
  std::atomic<double> drift_rate{0.0};
};

/// Fixed-capacity map of interval approximations keyed by source id, with
/// the paper's eviction rule: when full, evict the entry with the largest
/// raw width — the least precise approximation contributes least to overall
/// cache precision (paper §2). An offered approximation that would itself
/// be the widest is rejected and the value simply stays uncached.
///
/// This is the storage-and-eviction half of the protocol, factored out of
/// the engines so the semantics exist once; `Cache` (cache/cache.h) is a
/// thin alias kept for direct users, and ProtocolTable composes it with
/// charging and the versioned read slots.
///
/// Memory layout — the hot/cold split: ids registered via RegisterSlot get
/// a `VersionedSlot` in one contiguous, index-addressed slab (each slot one
/// cache line), plus a dense id→index vector so the optimistic read path
/// does zero hashing and zero pointer chasing. The cold eviction metadata
/// (raw widths, the full CachedApprox) stays in the per-entry map — only
/// eviction decisions and authoritative locked reads walk it. Mutators
/// mirror every visible-state change into the slab; direct `Cache` users
/// that never register slots pay nothing for the mirror.
///
/// Charging and locking contract: the store never charges costs (charging
/// is ProtocolTable's job), and every method requires the owner's external
/// synchronization — mutators exclusively, const readers at least shared.
/// The sole exceptions are the slot readers (SlotIndexOf/SlotAt/HasSlot/
/// num_slots): the id→index mapping is immutable once registration ends,
/// so they are safe from any thread with no lock held.
class EntryStore {
 public:
  /// What an Offer did, so callers maintaining derived state (the seqlock
  /// slots) know exactly which ids changed.
  struct OfferResult {
    /// The offered approximation is cached afterwards.
    bool cached = false;
    /// Id evicted to make room, or -1.
    int evicted_id = -1;
  };

  /// `capacity` is the paper's χ: the number of approximations held.
  explicit EntryStore(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }

  /// Returns the entry for `id`, or nullptr when not cached.
  const ProtocolEntry* Find(int id) const;

  /// Offers a (re)freshed approximation. Replaces in place when `id` is
  /// already cached; inserts when below capacity; otherwise either evicts
  /// the current widest entry (when the offer is narrower) or rejects the
  /// offer. Returns true when the approximation is cached afterwards.
  bool Offer(int id, const CachedApprox& approx, double raw_width) {
    return OfferEx(id, approx, raw_width).cached;
  }

  /// Offer variant reporting the eviction, for mirrored-state maintainers.
  /// Mirrors the change into the seqlock slab: the evicted id's slot (if
  /// registered) is published not-cached, then the offered id's slot is
  /// published with the fresh approximation.
  OfferResult OfferEx(int id, const CachedApprox& approx, double raw_width);

  /// Drops `id` if present (used by tests and by capacity changes). The
  /// id's slot, if registered, is published not-cached.
  void Erase(int id);

  /// Id of the entry with the largest raw width, or -1 when empty. Ties
  /// keep the larger id, so the choice is deterministic regardless of map
  /// iteration order.
  int WidestId() const;

  const std::unordered_map<int, ProtocolEntry>& entries() const {
    return entries_;
  }

  // -- the seqlock slot slab -------------------------------------------
  // Hot read-path state, contiguous and index-addressed. Registration is
  // construction-time only (it must not race ANY other method); after it
  // ends the id→index mapping is immutable and the readers below are safe
  // from any thread with no lock held.

  /// Sentinel index: the id has no registered slot.
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  /// Allocates `id`'s slot in the slab. Returns false on a duplicate.
  /// Construction-time only — must not race any other method.
  bool RegisterSlot(int id);

  /// Slab index of `id`'s slot, or kNoSlot. Ids in [0, kDenseIdLimit) use
  /// one direct vector load — zero hashing on the optimistic read path;
  /// negative or huge ids fall back to a hash lookup.
  uint32_t SlotIndexOf(int id) const {
    if (id >= 0 && static_cast<size_t>(id) < dense_index_.size()) {
      return dense_index_[static_cast<size_t>(id)];
    }
    if (sparse_index_.empty()) return kNoSlot;
    auto it = sparse_index_.find(id);
    return it == sparse_index_.end() ? kNoSlot : it->second;
  }

  /// The slot at a valid index returned by SlotIndexOf.
  const VersionedSlot& SlotAt(uint32_t index) const { return slab_[index]; }

  bool HasSlot(int id) const { return SlotIndexOf(id) != kNoSlot; }
  size_t num_slots() const { return num_slots_; }

  // -- compile-gated cache instrumentation ------------------------------
  // -DAPC_CACHE_INSTRUMENT=ON tallies hits/misses (Find and, via
  // NoteSlotProbe, the owners' lock-free slot reads) and evictions. OFF —
  // the default — removes the members and every increment: the accessors
  // collapse to constant 0 and NoteSlotProbe to an empty inline, so probe
  // sites compile identically in both modes at true zero cost when off
  // (scripts/check.sh --obs builds both modes and asserts the split).

  /// True when this build carries the counters (constant per build mode).
  static constexpr bool cache_instrumented() {
#if APC_CACHE_INSTRUMENT
    return true;
#else
    return false;
#endif
  }

#if APC_CACHE_INSTRUMENT
  /// Lookups that found a cached entry (Find hits + reported slot hits).
  int64_t cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Lookups that found nothing cached.
  int64_t cache_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Entries evicted by the widest-out rule to admit a narrower offer.
  int64_t cache_evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Owners report the outcome of a validated lock-free slot read here so
  /// the optimistic path participates in the hit/miss tallies; callable
  /// from any thread (relaxed atomics), torn reads are not reported.
  void NoteSlotProbe(bool hit) const {
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  }
#else
  int64_t cache_hits() const { return 0; }
  int64_t cache_misses() const { return 0; }
  int64_t cache_evictions() const { return 0; }
  void NoteSlotProbe(bool) const {}
#endif

 private:
  /// Ids below this use the dense id→index vector (grown to max id + 1, 4
  /// bytes per id); ids at or above it — and negative ids — use the sparse
  /// map. Chosen so a pathological sparse id can't balloon the vector.
  static constexpr size_t kDenseIdLimit = size_t{1} << 20;

  OfferResult OfferUnmirrored(int id, const CachedApprox& approx,
                              double raw_width);
  VersionedSlot* SlotFor(int id) {
    uint32_t index = SlotIndexOf(id);
    return index == kNoSlot ? nullptr : &slab_[index];
  }
  static void WriteSlot(VersionedSlot& slot, const CachedApprox& approx,
                        bool cached);

  size_t capacity_;
  std::unordered_map<int, ProtocolEntry> entries_;

  // The slab: one cache line per registered id, contiguous, never moved
  // after registration ends (growth only happens during registration,
  // which is single-threaded by contract).
  std::unique_ptr<VersionedSlot[]> slab_;
  size_t num_slots_ = 0;
  size_t slab_capacity_ = 0;
  std::vector<uint32_t> dense_index_;            // id -> slab index
  std::unordered_map<int, uint32_t> sparse_index_;  // negative / huge ids

#if APC_CACHE_INSTRUMENT
  // contracts-lint: allow(raw-atomic) -- compile-gated instrumentation
  // tallies, bumped from const readers (shared lock or the lock-free slot
  // path); relaxed counts, not a synchronization protocol.
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
#endif
};

/// Outcome of a value-initiated protocol step, so engines can maintain
/// their own observability counters without re-deriving the decision.
struct ValueTickOutcome {
  /// The value had escaped its shipped interval: a refresh was performed
  /// and charged (Cvr) — even when the push was then lost in transit.
  bool refreshed = false;
  /// Failure injection dropped the push: the source updated its own notion
  /// of the shipped interval, but the cache never saw the message.
  bool lost = false;
};

/// Result of an optimistic (seqlock-validated) read of one entry.
enum class SnapshotRead {
  /// A concurrent writer raced the read; nothing can be concluded — the
  /// caller must fall back to a locked read.
  kTorn,
  /// Definitive: the id is not cached (or was never registered); a query
  /// sees the unbounded interval.
  kMiss,
  /// Definitive: `*out` holds the visible interval.
  kHit,
};

/// The engine-agnostic heart of the refresh protocol: the cell-driven
/// refresh/charging state machine, the capacity-χ entry store with
/// raw-width eviction, and per-entry versioned slots for optimistic
/// concurrent reads. Both the sequential CacheSystem and every concurrent
/// Shard are thin drivers over this table, which is what makes their
/// semantics provably identical (the lockstep parity tests in
/// tests/runtime_test.cc pin the equivalence bit-for-bit).
///
/// The charging discipline the paper implies and the tests enforce:
///  * a value-initiated refresh is charged Cvr when the escape is
///    detected, BEFORE failure injection decides the push's fate — the
///    source paid for the message whether or not it arrived;
///  * every query-initiated pull charges Cqr, and the fresh approximation
///    is re-offered to the cache on every pull (it may still be rejected
///    as the widest);
///  * eviction ordering uses retained raw widths, never the thresholded
///    effective widths.
///
/// Thread-compatibility contract: all mutating methods (and the
/// authoritative readers) require external synchronization by the owning
/// engine — the sequential system is single-threaded, a shard holds its
/// mutex exclusively. `TryVisibleInterval` is the one exception: it may be
/// called from any thread with NO lock held, and validates against the
/// per-entry version counters that every mutation bumps; a racing write
/// yields SnapshotRead::kTorn, never a mixed interval. All slot fields are
/// atomics, so the optimistic path is data-race-free (and TSan-clean) by
/// construction.
///
/// Clang's thread-safety analysis enforces this contract AT THE OWNER:
/// every engine declares its table member APC_GUARDED_BY its shard mutex,
/// so all table method calls require that mutex held. The requirement is
/// not spelled APC_REQUIRES here because the analysis matches capability
/// expressions structurally and cannot name "whichever mutex my owner
/// guards me with" (see docs/STATIC_ANALYSIS.md, "where contracts live").
/// The owners' TryVisibleInterval call sites are the sanctioned
/// APC_NO_THREAD_SAFETY_ANALYSIS carve-outs.
class ProtocolTable {
 public:
  struct Config {
    RefreshCosts costs;
    /// Cache capacity χ (number of approximations).
    size_t capacity = 50;
    /// Probability that a value-initiated refresh message is lost in
    /// transit (failure injection; 0 disables).
    double push_loss_probability = 0.0;
  };

  /// `seed` drives the push-loss Bernoulli stream only, so seed-matched
  /// engines lose the same pushes.
  ProtocolTable(const Config& config, uint64_t seed);

  ProtocolTable(const ProtocolTable&) = delete;
  ProtocolTable& operator=(const ProtocolTable&) = delete;

  /// Registers `id` before any concurrent access; allocates its versioned
  /// read slot in the store's contiguous slab. Returns false on a
  /// duplicate id. Charge-free. The id→slot mapping is immutable
  /// afterwards, which is what lets TryVisibleInterval run without any
  /// lock; registration itself is construction-time only and must not
  /// race any other method.
  bool Register(int id) { return store_.RegisterSlot(id); }
  /// Charge-free and safe without the owner's lock once construction ends
  /// (the id→slot mapping is immutable afterwards).
  bool Registered(int id) const { return store_.HasSlot(id); }
  /// Charge-free; safe without the owner's lock after construction.
  size_t num_registered() const { return store_.num_slots(); }

  // -- the protocol state machine ------------------------------------

  /// Ships `cell`'s initial approximation of `value` free of charge
  /// (initial cache population; warm-up absorbs the cost). Requires the
  /// owner's synchronization (held exclusively).
  void OfferInitial(int id, ProtocolCell& cell, double value, int64_t now);

  /// Value-initiated step: if `value` escaped the cell's shipped interval,
  /// charges Cvr, refreshes the cell, and offers the fresh approximation —
  /// unless failure injection drops the push, in which case the charge
  /// stands and the cache keeps (or keeps lacking) the stale entry. A
  /// still-valid value charges nothing. Requires the owner's
  /// synchronization (held exclusively).
  ValueTickOutcome OnValueTick(int id, ProtocolCell& cell, double value,
                               int64_t now);

  /// Query-initiated pull of the exact `value`: charges Cqr, refreshes the
  /// cell, re-offers the fresh approximation, and returns `value`.
  /// Requires the owner's synchronization (held exclusively).
  double Pull(int id, ProtocolCell& cell, double value, int64_t now);

  // -- derived tiers ----------------------------------------------------
  // A derived tier (hierarchy §5, the tiered runtime) caches approximations
  // of approximations: its intervals are hulls containing a parent tier's
  // interval, built by the engine rather than by a cell's MakeApprox. The
  // charging discipline is the same per hop — these entry points exist so
  // the seqlock slot mirroring and the charged-but-lost rule stay in the
  // core instead of being re-implemented per engine.

  /// Installs a derived approximation free of charge (initial population
  /// of a derived tier, absorbed by warm-up like OfferInitial). Requires
  /// the owner's synchronization (held exclusively).
  void OfferDerivedInitial(int id, const CachedApprox& approx,
                           double raw_width);

  /// Derived-tier refresh: charges per `type` — Cvr for a value-initiated
  /// push (the parent's data moved), Cqr for a query-initiated install
  /// (the reply of an escalated read) — then offers `approx`. A
  /// value-initiated push may be dropped by failure injection AFTER being
  /// charged, exactly like OnValueTick's charged-but-lost rule;
  /// query-initiated installs are read replies and are never dropped.
  /// Requires the owner's synchronization (held exclusively).
  ValueTickOutcome OfferDerived(int id, const CachedApprox& approx,
                                double raw_width, RefreshType type);

  // -- reads ----------------------------------------------------------

  /// The interval a query sees for `id` at `now`: the cached interval, or
  /// the unbounded interval when not cached. Charge-free (reads never
  /// charge; only pulls do). Authoritative; requires the owner's
  /// synchronization (shared suffices — nothing is mutated).
  Interval VisibleInterval(int id, int64_t now) const;

  /// Optimistic lock-free read of `id`'s visible interval: charge-free and
  /// callable from any thread with NO lock held (the one such method — see
  /// the class contract). On kMiss `*out` is the unbounded interval; on
  /// kTorn `*out` is unspecified and the caller must retry under the
  /// owner's lock.
  SnapshotRead TryVisibleInterval(int id, int64_t now, Interval* out) const;

  // -- cache view -------------------------------------------------------
  // Charge-free authoritative readers; all require the owner's
  // synchronization (shared suffices), except capacity(), which is
  // immutable after construction and safe anywhere.
  const ProtocolEntry* Find(int id) const { return store_.Find(id); }
  size_t size() const { return store_.size(); }
  size_t capacity() const { return store_.capacity(); }
  int WidestId() const { return store_.WidestId(); }
  const std::unordered_map<int, ProtocolEntry>& entries() const {
    return store_.entries();
  }

  // -- change detection (the subscription hook) -------------------------
  // The write path records which ids' cached visible state changed — an
  // offer that was applied, or an eviction — so engines can feed standing
  // queries (src/subscribe/) without re-deriving the protocol's decisions.
  // Off by default: a table that nobody subscribes to pays nothing.

  /// Turns dirty-id recording on. Engines enable it lazily on the first
  /// Subscribe; requires the owner's synchronization (held exclusively),
  /// like every other mutating method.
  void EnableChangeTracking() { change_tracking_ = true; }
  bool change_tracking_enabled() const { return change_tracking_; }

  /// Moves the set of ids whose cached visible interval changed since the
  /// last drain into `*out` (appended; deduplicated per drain window, in
  /// first-dirtied order). Requires the owner's synchronization (held
  /// exclusively). A lost push dirties nothing — the cache never saw it.
  void DrainDirtyIds(std::vector<int>* out);
  bool has_dirty_ids() const { return !dirty_ids_.empty(); }

  // -- charging and observability --------------------------------------
  // The trackers themselves are plain state: reading or mutating them
  // (Begin/EndMeasurement included) requires the owner's synchronization,
  // exclusive for the non-const accessor.
  CostTracker& costs() { return costs_; }
  const CostTracker& costs() const { return costs_; }
  int64_t lost_pushes() const { return lost_pushes_; }

  /// Attaches a per-source attribution sink (non-owning; nullptr detaches):
  /// every refresh charge is mirrored to it — same count, same cvr/cqr
  /// cost, the shipped raw width, the charge tick — so attribution totals
  /// reconcile bit-for-bit with the CostTracker (tests/attribution_test.cc
  /// pins this). The sink must outlive the table or the next SetAttribution
  /// call. Requires the owner's synchronization (held exclusively); charge
  /// sites call the sink under the same synchronization.
  void SetAttribution(obs::AttributionTable* sink) { attribution_ = sink; }
  obs::AttributionTable* attribution() const { return attribution_; }

 private:
  /// Offers to the store (which mirrors the change into its seqlock slab)
  /// and records the trace + dirty-id consequences.
  void OfferMirrored(int id, const CachedApprox& approx, double raw_width);
  void MarkDirty(int id);

  Config config_;
  EntryStore store_;
  CostTracker costs_;
  obs::AttributionTable* attribution_ = nullptr;  // non-owning
  Rng rng_;
  int64_t lost_pushes_ = 0;
  bool change_tracking_ = false;
  std::vector<int> dirty_ids_;           // first-dirtied order
  std::unordered_set<int> dirty_set_;    // dedup within a drain window
};

}  // namespace apc

#endif  // APC_CORE_PROTOCOL_TABLE_H_
