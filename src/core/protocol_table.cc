#include "core/protocol_table.h"

#include "obs/attribution.h"
#include "obs/trace.h"

namespace apc {

const ProtocolEntry* EntryStore::Find(int id) const {
  auto it = entries_.find(id);
  NoteSlotProbe(/*hit=*/it != entries_.end());
  return it == entries_.end() ? nullptr : &it->second;
}

int EntryStore::WidestId() const {
  int widest = -1;
  double widest_width = -1.0;
  for (const auto& [id, entry] : entries_) {
    if (entry.raw_width > widest_width ||
        (entry.raw_width == widest_width && id > widest)) {
      widest = id;
      widest_width = entry.raw_width;
    }
  }
  return widest;
}

EntryStore::OfferResult EntryStore::OfferEx(int id, const CachedApprox& approx,
                                            double raw_width) {
  OfferResult result = OfferUnmirrored(id, approx, raw_width);
  if (result.evicted_id >= 0) {
    if (VersionedSlot* evicted = SlotFor(result.evicted_id)) {
      WriteSlot(*evicted, CachedApprox{}, /*cached=*/false);
    }
  }
  if (result.cached) {
    if (VersionedSlot* slot = SlotFor(id)) {
      WriteSlot(*slot, approx, /*cached=*/true);
    }
  }
  return result;
}

EntryStore::OfferResult EntryStore::OfferUnmirrored(int id,
                                                    const CachedApprox& approx,
                                                    double raw_width) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.approx = approx;
    it->second.raw_width = raw_width;
    return {true, -1};
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(id, ProtocolEntry{approx, raw_width});
    return {true, -1};
  }
  if (capacity_ == 0) return {false, -1};
  int widest = WidestId();
  const ProtocolEntry& incumbent = entries_.at(widest);
  // "the modified approximation may still be the widest and remain
  // uncached" — ties keep the incumbent to avoid pointless churn.
  if (raw_width >= incumbent.raw_width) return {false, -1};
  entries_.erase(widest);
  entries_.emplace(id, ProtocolEntry{approx, raw_width});
#if APC_CACHE_INSTRUMENT
  evictions_.fetch_add(1, std::memory_order_relaxed);
#endif
  return {true, widest};
}

void EntryStore::Erase(int id) {
  if (entries_.erase(id) == 0) return;
  if (VersionedSlot* slot = SlotFor(id)) {
    WriteSlot(*slot, CachedApprox{}, /*cached=*/false);
  }
}

bool EntryStore::RegisterSlot(int id) {
  if (SlotIndexOf(id) != kNoSlot) return false;
  if (num_slots_ == slab_capacity_) {
    size_t next = slab_capacity_ == 0 ? 64 : slab_capacity_ * 2;
    auto grown = std::make_unique<VersionedSlot[]>(next);
    // Registration is single-threaded by contract, so relaxed copies of
    // the atomic payloads are safe; readers only start after it ends.
    for (size_t i = 0; i < num_slots_; ++i) {
      const VersionedSlot& from = slab_[i];
      VersionedSlot& to = grown[i];
      to.version.store(from.version.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      to.cached.store(from.cached.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      to.lo.store(from.lo.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      to.hi.store(from.hi.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
      to.refresh_time.store(from.refresh_time.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
      to.growth_coeff.store(from.growth_coeff.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
      to.growth_exp.store(from.growth_exp.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      to.drift_rate.store(from.drift_rate.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    slab_ = std::move(grown);
    slab_capacity_ = next;
  }
  uint32_t index = static_cast<uint32_t>(num_slots_++);
  if (id >= 0 && static_cast<size_t>(id) < kDenseIdLimit) {
    if (dense_index_.size() <= static_cast<size_t>(id)) {
      dense_index_.resize(static_cast<size_t>(id) + 1, kNoSlot);
    }
    dense_index_[static_cast<size_t>(id)] = index;
  } else {
    sparse_index_.emplace(id, index);
  }
  return true;
}

void EntryStore::WriteSlot(VersionedSlot& slot, const CachedApprox& approx,
                           bool cached) {
  // Seqlock publish: odd version -> payload -> even version. The release
  // fence keeps the payload stores from sinking above the odd mark; the
  // final release store publishes the payload to validating readers.
  uint32_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.cached.store(cached, std::memory_order_relaxed);
  slot.lo.store(approx.base.lo(), std::memory_order_relaxed);
  slot.hi.store(approx.base.hi(), std::memory_order_relaxed);
  slot.refresh_time.store(approx.refresh_time, std::memory_order_relaxed);
  slot.growth_coeff.store(approx.growth_coeff, std::memory_order_relaxed);
  slot.growth_exp.store(approx.growth_exp, std::memory_order_relaxed);
  slot.drift_rate.store(approx.drift_rate, std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
}

ProtocolTable::ProtocolTable(const Config& config, uint64_t seed)
    : config_(config),
      store_(config.capacity),
      costs_(config.costs),
      rng_(seed) {}

void ProtocolTable::MarkDirty(int id) {
  if (!change_tracking_) return;
  if (dirty_set_.insert(id).second) dirty_ids_.push_back(id);
}

void ProtocolTable::DrainDirtyIds(std::vector<int>* out) {
  out->insert(out->end(), dirty_ids_.begin(), dirty_ids_.end());
  dirty_ids_.clear();
  dirty_set_.clear();
}

void ProtocolTable::OfferMirrored(int id, const CachedApprox& approx,
                                  double raw_width) {
  // The store publishes the slab mirror itself (evicted slot first, then
  // the offered slot); this layer adds the trace and dirty-id outcomes.
  EntryStore::OfferResult result = store_.OfferEx(id, approx, raw_width);
  if (result.evicted_id >= 0) {
    // The evicted id's visible interval widened to unbounded — a change a
    // standing query over it must hear about.
    MarkDirty(result.evicted_id);
  }
  if (result.cached) {
    obs::TraceRecorder::Record(obs::TraceEvent::kOfferApplied, id,
                               approx.refresh_time);
    MarkDirty(id);
  }
}

void ProtocolTable::OfferInitial(int id, ProtocolCell& cell, double value,
                                 int64_t now) {
  CachedApprox approx = cell.Ship(value, now);
  OfferMirrored(id, approx, cell.raw_width());
}

ValueTickOutcome ProtocolTable::OnValueTick(int id, ProtocolCell& cell,
                                            double value, int64_t now) {
  ValueTickOutcome outcome;
  // The cell tests validity against the approximation it last shipped —
  // caches never report evictions (paper §2), so refreshes are pushed even
  // for entries the cache has dropped.
  if (!cell.NeedsValueRefresh(value, now)) return outcome;
  costs_.RecordValueRefresh();
  outcome.refreshed = true;
  CachedApprox approx = cell.Refresh(value, RefreshType::kValueInitiated, now);
  if (attribution_ != nullptr) {
    // Mirrored BEFORE loss injection, like the tracker charge: the source
    // paid Cvr whether or not the push arrives.
    attribution_->RecordValueRefresh(id, config_.costs.cvr, cell.raw_width(),
                                     now);
  }
  if (config_.push_loss_probability > 0.0 &&
      rng_.Bernoulli(config_.push_loss_probability)) {
    // The message is lost: the source has already updated its own notion of
    // the shipped interval (and paid Cvr), but the cache never sees it.
    ++lost_pushes_;
    outcome.lost = true;
    obs::TraceRecorder::Record(obs::TraceEvent::kOfferChargedLost, id, now);
    return outcome;
  }
  OfferMirrored(id, approx, cell.raw_width());
  return outcome;
}

double ProtocolTable::Pull(int id, ProtocolCell& cell, double value,
                           int64_t now) {
  costs_.RecordQueryRefresh();
  CachedApprox approx = cell.Refresh(value, RefreshType::kQueryInitiated, now);
  if (attribution_ != nullptr) {
    attribution_->RecordQueryRefresh(id, config_.costs.cqr, cell.raw_width(),
                                     now);
  }
  OfferMirrored(id, approx, cell.raw_width());
  return value;
}

void ProtocolTable::OfferDerivedInitial(int id, const CachedApprox& approx,
                                        double raw_width) {
  OfferMirrored(id, approx, raw_width);
}

ValueTickOutcome ProtocolTable::OfferDerived(int id, const CachedApprox& approx,
                                             double raw_width,
                                             RefreshType type) {
  ValueTickOutcome outcome;
  outcome.refreshed = true;
  if (type == RefreshType::kValueInitiated) {
    costs_.RecordValueRefresh();
    if (attribution_ != nullptr) {
      attribution_->RecordValueRefresh(id, config_.costs.cvr, raw_width,
                                       approx.refresh_time);
    }
    // Derived pushes cross a real link: the charge stands even when
    // failure injection drops the message (charged-but-lost, identical to
    // OnValueTick). The parent keeps its sender-side record of what it
    // shipped; the receiving cache simply never sees it.
    if (config_.push_loss_probability > 0.0 &&
        rng_.Bernoulli(config_.push_loss_probability)) {
      ++lost_pushes_;
      outcome.lost = true;
      obs::TraceRecorder::Record(obs::TraceEvent::kOfferChargedLost, id,
                                 approx.refresh_time);
      return outcome;
    }
  } else {
    // A query-initiated install is the reply of an escalated read the
    // reader already paid for; replies are not subject to push loss.
    costs_.RecordQueryRefresh();
    if (attribution_ != nullptr) {
      attribution_->RecordQueryRefresh(id, config_.costs.cqr, raw_width,
                                       approx.refresh_time);
    }
  }
  OfferMirrored(id, approx, raw_width);
  return outcome;
}

Interval ProtocolTable::VisibleInterval(int id, int64_t now) const {
  const ProtocolEntry* entry = store_.Find(id);
  if (entry == nullptr) return Interval::Unbounded();
  return entry->approx.AtTime(now);
}

SnapshotRead ProtocolTable::TryVisibleInterval(int id, int64_t now,
                                               Interval* out) const {
  // Dense ids: one vector load to find the slot, one cache line to read
  // it — no hashing, no pointer chasing on the optimistic path.
  uint32_t index = store_.SlotIndexOf(id);
  if (index == EntryStore::kNoSlot) {
    *out = Interval::Unbounded();
    return SnapshotRead::kMiss;
  }
  const VersionedSlot& slot = store_.SlotAt(index);
  uint32_t v1 = slot.version.load(std::memory_order_acquire);
  if (v1 & 1u) return SnapshotRead::kTorn;  // write in progress
  bool cached = slot.cached.load(std::memory_order_relaxed);
  double lo = slot.lo.load(std::memory_order_relaxed);
  double hi = slot.hi.load(std::memory_order_relaxed);
  int64_t refresh_time = slot.refresh_time.load(std::memory_order_relaxed);
  double growth_coeff = slot.growth_coeff.load(std::memory_order_relaxed);
  double growth_exp = slot.growth_exp.load(std::memory_order_relaxed);
  double drift_rate = slot.drift_rate.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.version.load(std::memory_order_relaxed) != v1) {
    return SnapshotRead::kTorn;
  }
  // Only a validated copy is materialized: a torn {lo, hi} pair could
  // violate lo <= hi and must never reach the Interval constructor.
  if (!cached) {
    store_.NoteSlotProbe(/*hit=*/false);
    *out = Interval::Unbounded();
    return SnapshotRead::kMiss;
  }
  store_.NoteSlotProbe(/*hit=*/true);
  CachedApprox approx;
  approx.base = Interval(lo, hi);
  approx.refresh_time = refresh_time;
  approx.growth_coeff = growth_coeff;
  approx.growth_exp = growth_exp;
  approx.drift_rate = drift_rate;
  *out = approx.AtTime(now);
  return SnapshotRead::kHit;
}

}  // namespace apc
