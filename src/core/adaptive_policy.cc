#include "core/adaptive_policy.h"

#include <algorithm>

namespace apc {

namespace {

// Raw widths are clamped to this range so repeated multiplicative updates
// can neither underflow to zero (which would freeze the width forever) nor
// overflow to infinity. The range is far wider than any meaningful data
// scale, so the clamp never binds in practice.
constexpr double kMinRawWidth = 1e-30;
constexpr double kMaxRawWidth = 1e30;

}  // namespace

bool AdaptivePolicyParams::IsValid() const {
  return cvr > 0.0 && cqr > 0.0 && alpha >= 0.0 && delta0 >= 0.0 &&
         delta1 >= delta0 && initial_width > 0.0 && theta_multiplier > 0.0;
}

AdaptivePolicy::AdaptivePolicy(const AdaptivePolicyParams& params,
                               uint64_t seed)
    : params_(params), rng_(seed) {}

AdaptivePolicy::AdaptivePolicy(const AdaptivePolicyParams& params,
                               const Rng& rng)
    : params_(params), rng_(rng) {}

double AdaptivePolicy::GrowProbability() const {
  return std::min(params_.Theta(), 1.0);
}

double AdaptivePolicy::ShrinkProbability() const {
  return std::min(1.0 / params_.Theta(), 1.0);
}

double AdaptivePolicy::NextWidth(double raw_width,
                                 const RefreshContext& ctx) {
  double w = std::clamp(raw_width, kMinRawWidth, kMaxRawWidth);
  switch (ctx.type) {
    case RefreshType::kValueInitiated:
      if (rng_.Bernoulli(GrowProbability())) {
        w *= (1.0 + params_.alpha);
      }
      break;
    case RefreshType::kQueryInitiated:
      if (rng_.Bernoulli(ShrinkProbability())) {
        w /= (1.0 + params_.alpha);
      }
      break;
  }
  return std::clamp(w, kMinRawWidth, kMaxRawWidth);
}

double AdaptivePolicy::EffectiveWidth(double raw_width) const {
  if (raw_width < params_.delta0) return 0.0;
  if (raw_width >= params_.delta1) return kInfinity;
  return raw_width;
}

std::unique_ptr<PrecisionPolicy> AdaptivePolicy::Clone() const {
  return std::make_unique<AdaptivePolicy>(params_, rng_.Fork());
}

}  // namespace apc
