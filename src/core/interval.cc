#include "core/interval.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace apc {

Interval::Interval(double lo, double hi) : lo_(lo), hi_(hi) {
  if (lo_ > hi_) std::swap(lo_, hi_);
}

Interval Interval::Centered(double center, double width) {
  if (width == kInfinity) return Unbounded();
  double half = 0.5 * width;
  return Interval(center - half, center + half);
}

Interval Interval::Uncentered(double value, double lower_width,
                              double upper_width) {
  double lo = (lower_width == kInfinity) ? -kInfinity : value - lower_width;
  double hi = (upper_width == kInfinity) ? kInfinity : value + upper_width;
  return Interval(lo, hi);
}

double Interval::Width() const {
  if (lo_ == -kInfinity || hi_ == kInfinity) return kInfinity;
  return hi_ - lo_;
}

double Interval::Precision() const {
  double w = Width();
  if (w == 0.0) return kInfinity;
  if (w == kInfinity) return 0.0;
  return 1.0 / w;
}

Interval Interval::operator+(const Interval& other) const {
  return Interval(lo_ + other.lo_, hi_ + other.hi_);
}

Interval Interval::Max(const Interval& a, const Interval& b) {
  return Interval(std::max(a.lo_, b.lo_), std::max(a.hi_, b.hi_));
}

Interval Interval::Min(const Interval& a, const Interval& b) {
  return Interval(std::min(a.lo_, b.lo_), std::min(a.hi_, b.hi_));
}

Interval Interval::Shifted(double delta) const {
  return Interval(lo_ + delta, hi_ + delta);
}

Interval Interval::Inflated(double amount) const {
  double lo = lo_ - amount;
  double hi = hi_ + amount;
  if (lo > hi) {
    double c = Center();
    return Interval(c, c);
  }
  return Interval(lo, hi);
}

std::string Interval::ToString() const {
  std::ostringstream os;
  os << "[" << lo_ << ", " << hi_ << "]";
  return os.str();
}

}  // namespace apc
