#include "sim/experiments.h"

#include "core/stale_policy.h"
#include "baseline/divergence_caching.h"
#include "util/rng.h"

namespace apc {

RefreshCosts CostsForTheta(double theta) {
  RefreshCosts costs;
  costs.cqr = 2.0;
  costs.cvr = theta;  // theta = 2*cvr/cqr = cvr when cqr == 2
  return costs;
}

std::vector<std::unique_ptr<UpdateStream>> MakeRandomWalkStreams(
    int n, const RandomWalkParams& params, uint64_t seed) {
  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.reserve(static_cast<size_t>(n));
  Rng root(seed);
  for (int i = 0; i < n; ++i) {
    streams.push_back(
        std::make_unique<RandomWalkStream>(params, root.NextUint64()));
  }
  return streams;
}

std::vector<std::unique_ptr<UpdateStream>> MakeTraceStreams(
    const Trace& trace) {
  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.reserve(trace.hosts.size());
  for (const auto& series : trace.hosts) {
    streams.push_back(std::make_unique<SeriesStream>(series));
  }
  return streams;
}

const Trace& SharedNetworkTrace() {
  static const Trace trace = [] {
    TrafficTraceParams params;  // defaults: 50 hosts, 7200 s, see header
    return GenerateTrafficTrace(params, /*seed=*/20010521);
  }();
  return trace;
}

SimConfig NetworkExperiment::ToSimConfig() const {
  SimConfig config;
  config.horizon = horizon;
  config.warmup = warmup;
  config.seed = seed;
  config.system.costs = CostsForTheta(theta);
  config.system.cache_capacity = chi;
  config.workload.tq = tq;
  config.workload.query.num_sources =
      static_cast<int>(SharedNetworkTrace().num_hosts());
  config.workload.query.group_size = 10;
  config.workload.query.max_fraction = max_fraction;
  config.workload.query.constraints.avg = delta_avg;
  config.workload.query.constraints.rho = rho;
  return config;
}

AdaptivePolicyParams NetworkExperiment::ToPolicyParams() const {
  AdaptivePolicyParams params;
  RefreshCosts costs = CostsForTheta(theta);
  params.cvr = costs.cvr;
  params.cqr = costs.cqr;
  params.alpha = alpha;
  params.delta0 = delta0;
  params.delta1 = delta1;
  params.initial_width = initial_width;
  params.theta_multiplier = 2.0;
  return params;
}

SimResult RunNetworkAdaptive(const NetworkExperiment& exp) {
  AdaptivePolicy prototype(exp.ToPolicyParams(), exp.seed ^ 0x9a11ce);
  return RunIntervalSimulation(exp.ToSimConfig(),
                               MakeTraceStreams(SharedNetworkTrace()),
                               prototype);
}

SimResult RunNetworkExactCaching(const NetworkExperiment& exp,
                                 const std::vector<int>& x_grid,
                                 int* best_x) {
  return BestExactCachingSimulation(
      exp.ToSimConfig(), x_grid,
      [] { return MakeTraceStreams(SharedNetworkTrace()); }, best_x);
}

const std::vector<int>& DefaultExactCachingXGrid() {
  static const std::vector<int> grid = {3, 5, 8, 12, 18, 25, 35, 45};
  return grid;
}

SimConfig WalkExperiment::ToSimConfig() const {
  SimConfig config;
  config.horizon = horizon;
  config.warmup = warmup;
  config.seed = seed;
  config.system.costs = CostsForTheta(theta);
  config.system.cache_capacity = 1;
  config.workload.tq = tq;
  config.workload.query.num_sources = 1;
  config.workload.query.group_size = 1;
  config.workload.query.max_fraction = 0.0;
  config.workload.query.constraints.avg = delta_avg;
  config.workload.query.constraints.rho = rho;
  return config;
}

SimResult RunWalkExperiment(const WalkExperiment& exp) {
  RandomWalkParams walk;  // step uniform in [0.5, 1.5], unbiased
  auto streams = MakeRandomWalkStreams(1, walk, exp.seed);
  SimConfig config = exp.ToSimConfig();
  if (exp.fixed_width > 0.0) {
    FixedWidthPolicy prototype(exp.fixed_width);
    return RunIntervalSimulation(config, std::move(streams), prototype);
  }
  AdaptivePolicyParams params;
  RefreshCosts costs = CostsForTheta(exp.theta);
  params.cvr = costs.cvr;
  params.cqr = costs.cqr;
  params.alpha = exp.alpha;
  params.delta0 = 0.0;
  params.delta1 = kInfinity;
  params.initial_width = exp.initial_width;
  AdaptivePolicy prototype(params, exp.seed ^ 0x9a11ce);
  return RunIntervalSimulation(config, std::move(streams), prototype);
}

std::vector<SimResult> SweepFixedWidths(const WalkExperiment& exp,
                                        const std::vector<double>& widths) {
  std::vector<SimResult> results;
  results.reserve(widths.size());
  for (double w : widths) {
    WalkExperiment point = exp;
    point.fixed_width = w;
    results.push_back(RunWalkExperiment(point));
  }
  return results;
}

StaleSimConfig StaleExperiment::ToConfig() const {
  StaleSimConfig config;
  config.horizon = horizon;
  config.warmup = warmup;
  config.seed = seed;
  config.system.costs.cvr = cvr;
  config.system.costs.cqr = cqr;
  config.system.num_sources = num_sources;
  config.system.update_probability = base_update_probability;
  config.system.burst_update_probability = burst_update_probability;
  config.system.regime_mean_seconds = regime_mean_seconds;
  config.tq = tq;
  config.group_size = group_size;
  config.constraints.avg = delta_avg;
  config.constraints.rho = rho;
  config.hot_read_fraction = hot_read_fraction;
  return config;
}

SimResult RunStaleAdaptive(const StaleExperiment& exp) {
  StalePolicyParams params;
  params.cvr = exp.cvr;
  params.cqr = exp.cqr;
  params.alpha = exp.alpha;
  params.delta0 = 1.0;
  // Paper §4.7: delta1 = delta0 for exact-precision workloads, infinity
  // otherwise.
  params.delta1 = (exp.delta_avg == 0.0) ? 1.0 : kInfinity;
  params.initial_bound = 2.0;
  auto bounds = std::make_unique<AdaptiveStaleBounds>(
      params.ToAdaptiveParams(), exp.num_sources, exp.seed ^ 0x57a1e);
  return RunStaleSimulation(exp.ToConfig(), std::move(bounds));
}

SimResult RunStaleDivergenceCaching(const StaleExperiment& exp) {
  DivergenceCachingParams params;
  params.costs.cvr = exp.cvr;
  params.costs.cqr = exp.cqr;
  params.window_k = exp.divergence_window_k;
  params.initial_bound = 2.0;
  auto bounds =
      std::make_unique<DivergenceCachingBounds>(params, exp.num_sources);
  return RunStaleSimulation(exp.ToConfig(), std::move(bounds));
}

IntervalTimeSeries RecordHostInterval(const NetworkExperiment& exp,
                                      int host_id, int64_t from,
                                      int64_t to) {
  IntervalTimeSeries series;
  AdaptivePolicy prototype(exp.ToPolicyParams(), exp.seed ^ 0x9a11ce);
  TickObserver observer = [&](int64_t now, const CacheSystem& system) {
    if (now < from || now >= to) return;
    series.value.Record(now, system.source(host_id)->value());
    const CacheEntry* entry = system.cache().Find(host_id);
    Interval iv = (entry != nullptr) ? entry->approx.AtTime(now)
                                     : Interval::Unbounded();
    series.lo.Record(now, iv.lo());
    series.hi.Record(now, iv.hi());
  };
  RunIntervalSimulation(exp.ToSimConfig(),
                        MakeTraceStreams(SharedNetworkTrace()), prototype,
                        observer);
  return series;
}

}  // namespace apc
