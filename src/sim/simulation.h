#ifndef APC_SIM_SIMULATION_H_
#define APC_SIM_SIMULATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "baseline/exact_caching.h"
#include "baseline/stale_system.h"
#include "cache/system.h"
#include "data/update_stream.h"
#include "query/query_gen.h"

namespace apc {

/// Query-arrival and mix configuration: one query is executed every Tq
/// seconds (Tq < 1 executes several per tick), with kind, group and
/// constraint chosen by QueryWorkloadParams.
struct WorkloadConfig {
  double tq = 1.0;
  QueryWorkloadParams query;

  bool IsValid() const { return tq > 0.0 && query.IsValid(); }
};

/// A full interval-caching simulation run (paper §4.1): horizon in
/// one-second ticks, of which the first `warmup` are discarded from cost
/// measurement.
struct SimConfig {
  int64_t horizon = 7200;
  int64_t warmup = 600;
  SystemConfig system;
  WorkloadConfig workload;
  uint64_t seed = 1;

  bool IsValid() const {
    return horizon > 0 && warmup >= 0 && warmup < horizon &&
           workload.IsValid() && system.costs.IsValid();
  }
};

/// Outcome of a run; cost_rate is the paper's Ω averaged over the measured
/// (post-warm-up) period.
struct SimResult {
  double cost_rate = 0.0;
  double pvr = 0.0;
  double pqr = 0.0;
  int64_t value_refreshes = 0;
  int64_t query_refreshes = 0;
  double total_cost = 0.0;
  int64_t measured_ticks = 0;
  /// Mean retained raw width across sources at the end of the run (the
  /// convergence observable of §4.2).
  double mean_raw_width = 0.0;
};

/// Optional per-tick hook (after updates and queries for that tick); used
/// to record time series like the paper's Figures 4–5.
using TickObserver = std::function<void(int64_t now, const CacheSystem&)>;

/// Runs the interval-caching simulation: builds one Source per stream with
/// a clone of `policy_prototype`, populates the cache, then alternates
/// source updates and precision-constrained aggregate queries.
SimResult RunIntervalSimulation(
    const SimConfig& config,
    std::vector<std::unique_ptr<UpdateStream>> streams,
    const PrecisionPolicy& policy_prototype,
    const TickObserver& observer = nullptr);

/// Runs the [WJH97] exact-caching baseline on the same workload shape.
/// Queries read every accessed value exactly; constraints are ignored.
SimResult RunExactCachingSimulation(
    const SimConfig& config, int reevaluation_x,
    std::vector<std::unique_ptr<UpdateStream>> streams);

/// Runs RunExactCachingSimulation for every x in `x_grid` (streams are
/// produced fresh per run by `make_streams`) and returns the best cost
/// rate, matching the paper's per-run tuning of x. `best_x` receives the
/// winning setting when non-null.
SimResult BestExactCachingSimulation(
    const SimConfig& config, const std::vector<int>& x_grid,
    const std::function<std::vector<std::unique_ptr<UpdateStream>>()>&
        make_streams,
    int* best_x = nullptr);

/// Stale-value (Divergence Caching setting) simulation: every tick applies
/// updates; every Tq seconds a read of `group_size` random values with a
/// staleness constraint drawn from `constraints` is executed.
struct StaleSimConfig {
  int64_t horizon = 20000;
  int64_t warmup = 2000;
  StaleSystemConfig system;
  double tq = 1.0;
  int group_size = 10;
  ConstraintParams constraints;
  /// Fraction of read-group members drawn preferentially from sources
  /// currently in a write burst ("watch the busy hosts"); the rest are
  /// uniform. Correlates read and write load per value over time, the
  /// regime the paper's monitoring workload lives in.
  double hot_read_fraction = 0.0;
  uint64_t seed = 1;

  bool IsValid() const {
    return horizon > 0 && warmup >= 0 && warmup < horizon && tq > 0.0 &&
           group_size > 0 && group_size <= system.num_sources &&
           constraints.IsValid() && system.costs.IsValid();
  }
};

/// Runs the stale-value simulation with the given bound-setting policy.
SimResult RunStaleSimulation(const StaleSimConfig& config,
                             std::unique_ptr<StaleBoundPolicy> policy);

}  // namespace apc

#endif  // APC_SIM_SIMULATION_H_
