#ifndef APC_SIM_EXPERIMENTS_H_
#define APC_SIM_EXPERIMENTS_H_

#include <memory>
#include <vector>

#include "core/adaptive_policy.h"
#include "data/random_walk.h"
#include "data/traffic_trace.h"
#include "sim/simulation.h"
#include "stats/stats.h"

namespace apc {

/// Costs used throughout the paper's study (§4.3): a remote read is one
/// request/response pair (Cqr = 2), and Cvr is chosen so that
/// theta = 2·Cvr/Cqr equals the requested cost factor (theta = 1: loose
/// consistency, Cvr = 1; theta = 4: two-phase locking, Cvr = 4).
RefreshCosts CostsForTheta(double theta);

/// n independent random-walk streams with per-stream derived seeds.
std::vector<std::unique_ptr<UpdateStream>> MakeRandomWalkStreams(
    int n, const RandomWalkParams& params, uint64_t seed);

/// One SeriesStream per trace host.
std::vector<std::unique_ptr<UpdateStream>> MakeTraceStreams(
    const Trace& trace);

/// The repository's stand-in for the paper's network monitoring data set:
/// a 50-host, two-hour synthetic self-similar trace, generated once per
/// process with a fixed seed (see DESIGN.md §4 for the substitution
/// rationale).
const Trace& SharedNetworkTrace();

/// Configuration of one point of the paper's network-data experiments
/// (§4.3–§4.6). Defaults mirror the paper's base setting: 50 sources, full
/// cache, SUM queries over 10 random sources every Tq seconds, alpha = 1,
/// delta0 = 1K, delta1 = infinity, theta = 1.
struct NetworkExperiment {
  double tq = 1.0;
  double theta = 1.0;
  double delta_avg = 100e3;
  double rho = 0.5;
  double alpha = 1.0;
  double delta0 = 1e3;
  double delta1 = kInfinity;
  double initial_width = 10e3;
  size_t chi = 50;
  /// 0.0 = pure SUM (the paper's default workload); 1.0 = pure MAX.
  double max_fraction = 0.0;
  int64_t horizon = 7200;
  int64_t warmup = 1200;
  uint64_t seed = 42;

  SimConfig ToSimConfig() const;
  AdaptivePolicyParams ToPolicyParams() const;
};

/// Runs our adaptive algorithm on the shared network trace.
SimResult RunNetworkAdaptive(const NetworkExperiment& exp);

/// Runs the [WJH97] exact-caching baseline on the shared network trace,
/// tuning the reevaluation parameter x over `x_grid` as the paper does.
SimResult RunNetworkExactCaching(const NetworkExperiment& exp,
                                 const std::vector<int>& x_grid,
                                 int* best_x = nullptr);

/// The default x grid the paper sweeps ("x, which varied from 3 to 45").
const std::vector<int>& DefaultExactCachingXGrid();

/// Configuration of the synthetic steady-state experiments of §4.2: a
/// single random-walk source (step uniform in [0.5, 1.5] per second),
/// queries with group size 1 every Tq seconds.
struct WalkExperiment {
  double tq = 2.0;
  double theta = 1.0;
  double delta_avg = 20.0;
  double rho = 1.0;
  double alpha = 1.0;
  /// When > 0 the width is pinned (FixedWidthPolicy), reproducing the
  /// measurement mode of Figure 3.
  double fixed_width = 0.0;
  double initial_width = 1.0;
  int64_t horizon = 200000;
  int64_t warmup = 5000;
  uint64_t seed = 7;

  SimConfig ToSimConfig() const;
};

/// Runs the single-source random-walk experiment (fixed or adaptive width).
SimResult RunWalkExperiment(const WalkExperiment& exp);

/// Sweeps fixed widths and returns one SimResult per width (the measured
/// Pvr/Pqr/cost curves of Figure 3).
std::vector<SimResult> SweepFixedWidths(const WalkExperiment& exp,
                                        const std::vector<double>& widths);

/// Configuration of the stale-value comparison of §4.7 (Figures 14–15):
/// Cvr = 1, Cqr = 2 (theta' = 0.5), 50 sources updated every tick, reads of
/// 10 random values with staleness constraints uniform in
/// [delta_avg(1-rho), delta_avg(1+rho)].
struct StaleExperiment {
  double tq = 1.0;
  double delta_avg = 7.0;
  double rho = 1.0;
  int num_sources = 50;
  int group_size = 10;
  double cvr = 1.0;
  double cqr = 2.0;
  double alpha = 1.0;
  int divergence_window_k = 23;
  /// Write-rate regime: sources alternate between quiet
  /// (base_update_probability per tick) and bursty
  /// (burst_update_probability) phases of mean regime_mean_seconds, like
  /// the bursty hosts of the paper's network evaluation. Set
  /// burst_update_probability = 0 for a stationary write stream at
  /// base_update_probability.
  double base_update_probability = 0.2;
  double burst_update_probability = 1.0;
  double regime_mean_seconds = 150.0;
  /// Readers follow the action: this fraction of read-group members is
  /// steered toward currently-bursting sources.
  double hot_read_fraction = 0.8;
  int64_t horizon = 30000;
  int64_t warmup = 3000;
  uint64_t seed = 11;

  StaleSimConfig ToConfig() const;
};

/// Our algorithm specialized to stale-value approximations (theta' =
/// Cvr/Cqr, delta0 = 1, delta1 = delta0 for exact workloads and infinity
/// otherwise — the paper's §4.7 settings).
SimResult RunStaleAdaptive(const StaleExperiment& exp);

/// The Divergence Caching baseline [HSW94] with moving-window size k.
SimResult RunStaleDivergenceCaching(const StaleExperiment& exp);

/// Recorded (source value, interval lo, interval hi) series for one host,
/// for the interval-tracking plots of Figures 4–5.
struct IntervalTimeSeries {
  SeriesRecorder value;
  SeriesRecorder lo;
  SeriesRecorder hi;
};

/// Runs RunNetworkAdaptive while recording host `host_id`'s exact value and
/// cached interval endpoints over [from, to).
IntervalTimeSeries RecordHostInterval(const NetworkExperiment& exp,
                                      int host_id, int64_t from, int64_t to);

}  // namespace apc

#endif  // APC_SIM_EXPERIMENTS_H_
