#include "sim/simulation.h"

#include <limits>

#include "util/rng.h"

namespace apc {

namespace {

SimResult CollectResult(const CostTracker& costs, double mean_raw_width) {
  SimResult r;
  r.cost_rate = costs.CostRate();
  r.pvr = costs.MeasuredPvr();
  r.pqr = costs.MeasuredPqr();
  r.value_refreshes = costs.value_refreshes();
  r.query_refreshes = costs.query_refreshes();
  r.total_cost = costs.total_cost();
  r.measured_ticks = costs.measured_ticks();
  r.mean_raw_width = mean_raw_width;
  return r;
}

}  // namespace

SimResult RunIntervalSimulation(
    const SimConfig& config,
    std::vector<std::unique_ptr<UpdateStream>> streams,
    const PrecisionPolicy& policy_prototype, const TickObserver& observer) {
  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(streams.size());
  for (size_t id = 0; id < streams.size(); ++id) {
    sources.push_back(std::make_unique<Source>(
        static_cast<int>(id), std::move(streams[id]),
        policy_prototype.Clone()));
  }

  CacheSystem system(config.system, std::move(sources),
                     config.seed ^ 0x1055);
  system.PopulateInitial(0);

  QueryGenerator queries(config.workload.query, config.seed ^ 0x5eed);

  if (config.warmup <= 0) system.costs().BeginMeasurement(0);
  double next_query = config.workload.tq;
  for (int64_t t = 1; t <= config.horizon; ++t) {
    if (t == config.warmup) system.costs().BeginMeasurement(t);
    system.Tick(t);
    while (next_query <= static_cast<double>(t)) {
      system.ExecuteQuery(queries.Next(), t);
      next_query += config.workload.tq;
    }
    if (observer) observer(t, system);
  }
  system.costs().EndMeasurement(config.horizon);
  return CollectResult(system.costs(), system.MeanRawWidth());
}

SimResult RunExactCachingSimulation(
    const SimConfig& config, int reevaluation_x,
    std::vector<std::unique_ptr<UpdateStream>> streams) {
  ExactCachingParams params;
  params.costs = config.system.costs;
  params.reevaluation_x = reevaluation_x;
  params.cache_capacity = config.system.cache_capacity;

  ExactCachingSystem system(params, std::move(streams));
  QueryGenerator queries(config.workload.query, config.seed ^ 0x5eed);

  if (config.warmup <= 0) system.costs().BeginMeasurement(0);
  double next_query = config.workload.tq;
  for (int64_t t = 1; t <= config.horizon; ++t) {
    if (t == config.warmup) system.costs().BeginMeasurement(t);
    system.Tick(t);
    while (next_query <= static_cast<double>(t)) {
      system.ExecuteQuery(queries.Next(), t);
      next_query += config.workload.tq;
    }
  }
  system.costs().EndMeasurement(config.horizon);
  return CollectResult(system.costs(), 0.0);
}

SimResult BestExactCachingSimulation(
    const SimConfig& config, const std::vector<int>& x_grid,
    const std::function<std::vector<std::unique_ptr<UpdateStream>>()>&
        make_streams,
    int* best_x) {
  SimResult best;
  best.cost_rate = std::numeric_limits<double>::infinity();
  int winner = 0;
  for (int x : x_grid) {
    SimResult r = RunExactCachingSimulation(config, x, make_streams());
    if (r.cost_rate < best.cost_rate) {
      best = r;
      winner = x;
    }
  }
  if (best_x != nullptr) *best_x = winner;
  return best;
}

SimResult RunStaleSimulation(const StaleSimConfig& config,
                             std::unique_ptr<StaleBoundPolicy> policy) {
  StaleCacheSystem system(config.system, std::move(policy),
                          config.seed ^ 0xabcd);
  ConstraintGenerator constraints(config.constraints, config.seed ^ 0xbeef);
  Rng rng(config.seed ^ 0xfeed);

  if (config.warmup <= 0) system.costs().BeginMeasurement(0);
  double next_read = config.tq;
  for (int64_t t = 1; t <= config.horizon; ++t) {
    if (t == config.warmup) system.costs().BeginMeasurement(t);
    system.Tick(t);
    while (next_read <= static_cast<double>(t)) {
      std::vector<int> ids;
      ids.reserve(static_cast<size_t>(config.group_size));
      // Sample distinct ids for the read group; with probability
      // hot_read_fraction a member is steered toward a bursting source.
      while (static_cast<int>(ids.size()) < config.group_size) {
        int id = static_cast<int>(
            rng.UniformInt(0, config.system.num_sources - 1));
        if (config.hot_read_fraction > 0.0 &&
            rng.Bernoulli(config.hot_read_fraction)) {
          for (int attempt = 0; attempt < 8 && !system.InBurst(id);
               ++attempt) {
            id = static_cast<int>(
                rng.UniformInt(0, config.system.num_sources - 1));
          }
        }
        bool dup = false;
        for (int existing : ids) dup = dup || (existing == id);
        if (!dup) ids.push_back(id);
      }
      system.ExecuteRead(ids, constraints.Next(), t);
      next_read += config.tq;
    }
  }
  system.costs().EndMeasurement(config.horizon);
  return CollectResult(system.costs(), 0.0);
}

}  // namespace apc
