#ifndef APC_UTIL_MUTEX_H_
#define APC_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "util/lock_order.h"
#include "util/thread_annotations.h"

/// Annotated, rank-checked mutex wrappers — the only lock types allowed
/// outside src/util/ (enforced by scripts/check_contracts.sh).
///
/// Why wrappers instead of std::mutex: libstdc++'s std::mutex is not a
/// clang thread-safety capability, so GUARDED_BY/REQUIRES contracts can't
/// attach to it; and the repo's cross-object lock order (manager → shard →
/// edge → leaf queues) needs the runtime LockOrderValidator hooks on every
/// acquisition. Each wrapper is the std primitive plus (a) the capability
/// attribute and (b) validator calls that compile to nothing when
/// APC_LOCK_ORDER=0 (release builds) — see src/util/lock_order.h.
///
/// Every mutex names its lock class at construction:
///     apc::Mutex mu_{LockRank::kQueue, "bus.mu"};
/// The mandatory rank argument is what makes "all mutex members declare a
/// lock-class rank" a compile-time property.

namespace apc {

/// std::mutex as a clang capability with lock-order validation.
class APC_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name = nullptr)
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// BasicLockable, so CondVar can wait on this type directly. The
  /// validator runs BEFORE blocking: an ordering bug aborts with both
  /// stacks printed instead of deadlocking silently.
  void lock() APC_ACQUIRE() {
    LockOrderValidator::OnAcquire(rank_, name_);
    mu_.lock();
  }
  void unlock() APC_RELEASE() {
    LockOrderValidator::OnRelease(rank_, name_);
    mu_.unlock();
  }

  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// std::shared_mutex as a clang capability with lock-order validation.
/// Shared and exclusive acquisitions obey the same rank order (the
/// validator does not distinguish modes: reader/writer nesting across
/// classes follows one partial order).
class APC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, const char* name = nullptr)
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() APC_ACQUIRE() {
    LockOrderValidator::OnAcquire(rank_, name_);
    mu_.lock();
  }
  void unlock() APC_RELEASE() {
    LockOrderValidator::OnRelease(rank_, name_);
    mu_.unlock();
  }
  void lock_shared() APC_ACQUIRE_SHARED() {
    LockOrderValidator::OnAcquire(rank_, name_);
    mu_.lock_shared();
  }
  void unlock_shared() APC_RELEASE_SHARED() {
    LockOrderValidator::OnRelease(rank_, name_);
    mu_.unlock_shared();
  }

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// RAII exclusive lock on a Mutex (the std::lock_guard idiom).
class APC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) APC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() APC_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock on a SharedMutex.
class APC_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) APC_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() APC_RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class APC_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) APC_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  // Generic release: the analysis tracks the shared hold from the ctor;
  // release_capability (exclusive) on it would warn about the mode mix.
  ~ReaderMutexLock() APC_RELEASE_GENERIC() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable that waits directly on apc::Mutex, so waits flow
/// through the capability annotations and the lock-order validator (the
/// re-acquisition after a wait re-runs the rank check).
///
/// No predicate overloads on purpose: clang's analysis does not propagate
/// REQUIRES into lambda bodies, so predicate lambdas touching guarded
/// state would warn under -Werror=thread-safety. Call sites use explicit
///     while (!cond) cv.Wait(mu);
/// loops instead, which also makes the guarded reads visible to analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and re-acquires. Spurious wakeups
  /// possible — always wait in a condition loop.
  void Wait(Mutex& mu) APC_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait; returns std::cv_status::timeout when `timeout_ms`
  /// elapsed without a notification. Spurious wakeups possible.
  std::cv_status WaitFor(Mutex& mu, int64_t timeout_ms) APC_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::milliseconds(timeout_ms));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace apc

#endif  // APC_UTIL_MUTEX_H_
