#ifndef APC_UTIL_RNG_H_
#define APC_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace apc {

/// Deterministic pseudo-random source used throughout the library. Every
/// stochastic component receives an Rng (or a seed) explicitly so that
/// simulations, tests and benchmarks are exactly reproducible; there is no
/// global random state anywhere in the library.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns true with probability p (p outside [0,1] is clamped).
  bool Bernoulli(double p);

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Pareto with shape `alpha` and minimum `xm`: heavy-tailed durations used
  /// by the synthetic self-similar traffic generator.
  double Pareto(double alpha, double xm);

  /// Standard normal scaled by `stddev` around `mean`.
  double Gaussian(double mean, double stddev);

  /// Raw 64-bit draw; useful for deriving independent child seeds.
  uint64_t NextUint64() { return engine_(); }

  /// Derives a child Rng whose stream is independent of subsequent draws
  /// from this one (splitmix-style mixing of the next raw draw).
  Rng Fork();

 private:
  std::mt19937_64 engine_;
};

}  // namespace apc

#endif  // APC_UTIL_RNG_H_
