#ifndef APC_UTIL_THREAD_ANNOTATIONS_H_
#define APC_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (the Abseil/LevelDB
/// convention, APC_-prefixed). Under clang, `scripts/check.sh --analyze`
/// compiles the tree with -Werror=thread-safety so every locking contract
/// expressed through these macros is enforced at compile time; under gcc
/// (the default toolchain here) they expand to nothing.
///
/// Conventions (see docs/STATIC_ANALYSIS.md for the full guide):
///   - mutex-protected members:      T x_ APC_GUARDED_BY(mu_);
///   - "caller holds mu_" methods:   void FooLocked() APC_REQUIRES(mu_);
///   - RAII lock types:              APC_SCOPED_CAPABILITY + ctor/dtor
///                                   APC_ACQUIRE / APC_RELEASE
///   - the seqlock optimistic read path is the ONE sanctioned carve-out:
///     wrap the lock-free access in a tiny helper marked
///     APC_NO_THREAD_SAFETY_ANALYSIS so the rest of the function stays
///     analyzed.

#if defined(__clang__)
#define APC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define APC_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex", "shared mutex", ...).
#define APC_CAPABILITY(x) APC_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define APC_SCOPED_CAPABILITY APC_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define APC_GUARDED_BY(x) APC_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose POINTEE is protected by the given capability.
#define APC_PT_GUARDED_BY(x) APC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability held exclusively (not acquired by it).
#define APC_REQUIRES(...) \
  APC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the capability held at least shared.
#define APC_REQUIRES_SHARED(...) \
  APC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and does not release it.
#define APC_ACQUIRE(...) \
  APC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared and does not release it.
#define APC_ACQUIRE_SHARED(...) \
  APC_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases an exclusively held capability.
#define APC_RELEASE(...) \
  APC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared-held capability.
#define APC_RELEASE_SHARED(...) \
  APC_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function releases a capability held in either mode (used by RAII
/// destructors that may hold shared or exclusive depending on a ctor arg).
#define APC_RELEASE_GENERIC(...) \
  APC_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first arg is the success return value.
#define APC_TRY_ACQUIRE(...) \
  APC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define APC_EXCLUDES(...) APC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, to the analysis) that the capability is held.
#define APC_ASSERT_CAPABILITY(x) \
  APC_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given capability.
#define APC_RETURN_CAPABILITY(x) APC_THREAD_ANNOTATION_(lock_returned(x))

/// Turns the analysis off for one function. Reserved for the seqlock
/// optimistic read path; every use must carry a comment saying why.
#define APC_NO_THREAD_SAFETY_ANALYSIS \
  APC_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // APC_UTIL_THREAD_ANNOTATIONS_H_
