#include "util/mathutil.h"

#include <algorithm>

namespace apc {

bool ApproxEqual(double a, double b, double abs_tol, double rel_tol) {
  if (a == b) return true;  // handles equal infinities
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  double diff = std::fabs(a - b);
  return diff <= abs_tol + rel_tol * std::max(std::fabs(a), std::fabs(b));
}

double RelativeError(double measured, double reference) {
  if (reference == 0.0) return std::fabs(measured);
  return std::fabs(measured - reference) / std::fabs(reference);
}

}  // namespace apc
