#ifndef APC_UTIL_LOCK_ORDER_H_
#define APC_UTIL_LOCK_ORDER_H_

#include <cstddef>
#include <cstdint>

/// Debug lock-order validator: a per-thread held-capability stack with
/// ranked lock classes. Clang's static thread-safety analysis checks WHO
/// holds a lock; it cannot express the repo's dynamic partial order across
/// per-shard lock arrays (manager mutex → MixId-routed shard locks,
/// regional → edge hierarchies). This validator checks the order at
/// runtime: every acquisition must have a rank strictly greater than every
/// rank already held by the thread, and a violation aborts after printing
/// the held stack plus the offending acquisition.
///
/// Compile gate (the APC_OBS discipline): APC_LOCK_ORDER=1 in debug and
/// sanitizer builds — CMake defaults it ON for every build type except
/// Release — and 0 in release, where every hook below compiles to an empty
/// inline function and apc::Mutex is exactly a std::mutex plus a dead
/// rank byte. Lockstep parity and bench qps are therefore untouched by
/// this layer in the builds that measure them.
#ifndef APC_LOCK_ORDER
#define APC_LOCK_ORDER 1
#endif

namespace apc {

/// The documented partial order of every lock class in the repo, one rank
/// per class, outermost first. A thread may only acquire ranks in strictly
/// increasing order; two locks of the SAME class are never held together
/// (the engines take shard/edge locks one at a time). The table mirrors
/// docs/STATIC_ANALYSIS.md — update both together.
enum class LockRank : uint16_t {
  /// Pump/shutdown control mutexes (ShardedEngine::pump_mu_,
  /// TieredEngine::pump_mu_, SubscriptionManager::shutdown_mu_): taken
  /// first on start/stop paths that then close queues and join threads.
  kControl = 10,
  /// SubscriptionManager::mu_ — taken before engine shard locks
  /// (SubscriptionActivate / SubscriptionPull / snapshot evaluation).
  kSubscriptionManager = 20,
  /// ShardedEngine's Shard::mu_ and TieredEngine's RegionalShard::mu —
  /// one at a time, after the manager mutex, before edge locks.
  kEngineShard = 30,
  /// TieredEngine's EdgeShard::mu — acquired under the regional lock on
  /// escalation/fan-out (regional → edge, never the reverse).
  kEdgeShard = 40,
  /// SubscriptionManager::pending_mu_ — the leaf the change sink takes
  /// under shard locks; nothing is acquired while holding it except the
  /// queue class below (shutdown drains).
  kSinkPending = 50,
  /// UpdateBus / NotificationHub internal mutexes: innermost of the
  /// engine/subscription paths (pushed to under manager mutex, closed
  /// under control mutexes).
  kQueue = 60,
  /// obs::SnapshotExporter::mu_ — the background writer's own state.
  kObsExporter = 70,
  /// obs::FlightRecorder control state — taken by DumpOnFailure, which may
  /// run under engine/queue locks (checker hooks, rejected-input storms)
  /// and then dumps the trace rings (kObsTrace, above).
  kObsFlight = 72,
  /// obs::AttributionTable stripe mutexes — leaves of the charge paths:
  /// taken under shard/edge/queue locks when a refresh is recorded, and
  /// alone by the exporter when the attribution section is serialized.
  kObsAttribution = 75,
  /// obs::MetricsRegistry::mu_ — leaf of every snapshot/registration path.
  kObsRegistry = 80,
  /// obs trace ring registry — leaf; taken on a thread's first trace
  /// record while engine locks may be held.
  kObsTrace = 85,
};

/// Human-readable name of a rank's lock class (never null).
const char* LockRankName(LockRank rank);

/// Diagnostic hook invoked once, best-effort, before the validator aborts
/// — installed by the obs flight recorder to dump trace evidence with the
/// failure. The hook MUST be reentrancy-safe: dumping may itself acquire
/// ranked locks and re-enter the validator. Returns the previous hook.
using LockOrderAbortHook = void (*)(const char* reason);
LockOrderAbortHook SetLockOrderAbortHook(LockOrderAbortHook hook);

#if APC_LOCK_ORDER

/// The per-thread validator. apc::Mutex / apc::SharedMutex call the hooks
/// from every lock/unlock (including re-acquisitions inside CondVar
/// waits); user code never calls these directly except in tests.
class LockOrderValidator {
 public:
  /// Records the acquisition of `rank`. Aborts (after printing the
  /// thread's held stack and the offending lock) unless `rank` is
  /// strictly greater than every rank currently held by this thread.
  /// `name` is the owning mutex's debug name (may be null → class name).
  static void OnAcquire(LockRank rank, const char* name);

  /// Removes the most recently acquired entry matching `rank`/`name`.
  static void OnRelease(LockRank rank, const char* name);

  /// Number of capabilities the calling thread currently holds.
  static size_t HeldDepth();
};

#else  // !APC_LOCK_ORDER: every hook is an empty inline — release builds
       // keep lock acquisition exactly as cheap as the raw primitive.

class LockOrderValidator {
 public:
  static inline void OnAcquire(LockRank, const char*) {}
  static inline void OnRelease(LockRank, const char*) {}
  static inline size_t HeldDepth() { return 0; }
};

#endif  // APC_LOCK_ORDER

}  // namespace apc

#endif  // APC_UTIL_LOCK_ORDER_H_
