#ifndef APC_UTIL_FLAGS_H_
#define APC_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace apc {

/// Minimal command-line flag parser for the repository's executables.
/// Accepts `--name=value` and bare boolean `--name`; anything else is an
/// error. No global state: each binary owns its parser.
class FlagParser {
 public:
  /// Parses argv[1..argc). Returns InvalidArgument on a malformed or
  /// positional argument; on error the parser's state is unspecified.
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  /// Typed access. The Get* forms fail with InvalidArgument when the flag
  /// is present but unparsable, NotFound when absent; the *Or forms
  /// substitute `fallback` when the flag is absent but still surface parse
  /// errors via their Result.
  Result<double> GetDouble(const std::string& name) const;
  Result<int64_t> GetInt(const std::string& name) const;
  Result<std::string> GetString(const std::string& name) const;

  Result<double> GetDoubleOr(const std::string& name, double fallback) const;
  Result<int64_t> GetIntOr(const std::string& name, int64_t fallback) const;
  std::string GetStringOr(const std::string& name,
                          const std::string& fallback) const;
  /// Bare `--name` and `--name=true/1` are true; `--name=false/0` false.
  Result<bool> GetBoolOr(const std::string& name, bool fallback) const;

  /// Flags in parse order (for --help style listings).
  const std::vector<std::string>& names() const { return order_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

}  // namespace apc

#endif  // APC_UTIL_FLAGS_H_
