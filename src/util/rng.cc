#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace apc {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Exponential(double rate) {
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

double Rng::Pareto(double alpha, double xm) {
  // Inverse-CDF sampling: X = xm / U^{1/alpha}. Guard against U == 0, which
  // uniform_real_distribution can in principle return.
  double u = Uniform(0.0, 1.0);
  if (u <= 0.0) u = 1e-300;
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

Rng Rng::Fork() {
  // splitmix64 finalizer over the next raw draw decorrelates the child
  // stream from the parent's subsequent output.
  uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return Rng(z);
}

}  // namespace apc
