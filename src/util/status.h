#ifndef APC_UTIL_STATUS_H_
#define APC_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace apc {

/// Error category for a Status. Mirrors the small set of failure modes the
/// library can actually produce; fallible operations return Status (or
/// Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kCorruption,
};

/// Lightweight status object in the LevelDB/RocksDB idiom. Cheap to copy in
/// the OK case; carries a code and human-readable message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-error return type. Holds either a T (when status().ok()) or an
/// error Status. Accessing value() on an error aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::IOError(...);`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace apc

#endif  // APC_UTIL_STATUS_H_
