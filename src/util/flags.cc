#include "util/flags.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace apc {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      return Status::InvalidArgument("expected --name[=value], got '" + arg +
                                     "'");
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value = "true";
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    }
    if (name.empty()) {
      return Status::InvalidArgument("empty flag name in '" + arg + "'");
    }
    if (values_.count(name) == 0) order_.push_back(name);
    values_[name] = value;
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

Result<std::string> FlagParser::GetString(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return Status::NotFound("flag --" + name + " not set");
  }
  return it->second;
}

Result<double> FlagParser::GetDouble(const std::string& name) const {
  Result<std::string> raw = GetString(name);
  if (!raw.ok()) return raw.status();
  const std::string& text = raw.value();
  if (text == "inf") return std::numeric_limits<double>::infinity();
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("--" + name + "=" + text +
                                   " is not a number");
  }
  return v;
}

Result<int64_t> FlagParser::GetInt(const std::string& name) const {
  Result<std::string> raw = GetString(name);
  if (!raw.ok()) return raw.status();
  const std::string& text = raw.value();
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("--" + name + "=" + text +
                                   " is not an integer");
  }
  return static_cast<int64_t>(v);
}

Result<double> FlagParser::GetDoubleOr(const std::string& name,
                                       double fallback) const {
  if (!Has(name)) return fallback;
  return GetDouble(name);
}

Result<int64_t> FlagParser::GetIntOr(const std::string& name,
                                     int64_t fallback) const {
  if (!Has(name)) return fallback;
  return GetInt(name);
}

std::string FlagParser::GetStringOr(const std::string& name,
                                    const std::string& fallback) const {
  Result<std::string> raw = GetString(name);
  return raw.ok() ? raw.value() : fallback;
}

Result<bool> FlagParser::GetBoolOr(const std::string& name,
                                   bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  if (text == "true" || text == "1") return true;
  if (text == "false" || text == "0") return false;
  return Status::InvalidArgument("--" + name + "=" + text +
                                 " is not a boolean");
}

}  // namespace apc
