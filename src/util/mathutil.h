#ifndef APC_UTIL_MATHUTIL_H_
#define APC_UTIL_MATHUTIL_H_

#include <cmath>
#include <limits>

namespace apc {

/// Positive infinity; the width of an interval that conveys no information
/// (precision zero) and the sentinel for "effectively uncached".
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Returns true when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
/// Infinities compare equal to themselves.
bool ApproxEqual(double a, double b, double abs_tol = 1e-9,
                 double rel_tol = 1e-9);

/// Relative error |measured - reference| / |reference|; returns absolute
/// error when the reference is zero.
double RelativeError(double measured, double reference);

/// True for finite, non-NaN values.
inline bool IsFinite(double x) { return std::isfinite(x); }

}  // namespace apc

#endif  // APC_UTIL_MATHUTIL_H_
