#include "util/lock_order.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace apc {

namespace {
std::atomic<LockOrderAbortHook> g_abort_hook{nullptr};
}  // namespace

LockOrderAbortHook SetLockOrderAbortHook(LockOrderAbortHook hook) {
  return g_abort_hook.exchange(hook, std::memory_order_acq_rel);
}

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kControl:
      return "control";
    case LockRank::kSubscriptionManager:
      return "subscription_manager";
    case LockRank::kEngineShard:
      return "engine_shard";
    case LockRank::kEdgeShard:
      return "edge_shard";
    case LockRank::kSinkPending:
      return "sink_pending";
    case LockRank::kQueue:
      return "queue";
    case LockRank::kObsExporter:
      return "obs_exporter";
    case LockRank::kObsFlight:
      return "obs_flight";
    case LockRank::kObsAttribution:
      return "obs_attribution";
    case LockRank::kObsRegistry:
      return "obs_registry";
    case LockRank::kObsTrace:
      return "obs_trace";
  }
  return "unknown";
}

#if APC_LOCK_ORDER

namespace {

struct HeldLock {
  LockRank rank;
  const char* name;  // may be null
};

// Per-thread held-capability stack, acquisition order, bottom first.
// Plain vector: the validator only runs in debug/sanitizer builds, and
// stacks are at most a few entries deep.
std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

const char* NameOrRank(LockRank rank, const char* name) {
  return name != nullptr ? name : LockRankName(rank);
}

/// Best-effort evidence dump before the abort; the installed hook guards
/// its own reentrancy (dumping can re-enter the validator).
void RunAbortHook(const char* reason) {
  if (LockOrderAbortHook hook =
          g_abort_hook.load(std::memory_order_acquire)) {
    hook(reason);
  }
}

[[noreturn]] void Die(LockRank rank, const char* name,
                      const std::vector<HeldLock>& held) {
  RunAbortHook("lock-order violation (inverted acquisition)");
  std::fprintf(stderr,
               "lock-order violation: thread acquiring '%s' (class %s, rank "
               "%u) while already holding %zu lock(s):\n",
               NameOrRank(rank, name), LockRankName(rank),
               static_cast<unsigned>(rank), held.size());
  for (size_t i = 0; i < held.size(); ++i) {
    std::fprintf(stderr, "  held[%zu]: '%s' (class %s, rank %u)\n", i,
                 NameOrRank(held[i].rank, held[i].name),
                 LockRankName(held[i].rank),
                 static_cast<unsigned>(held[i].rank));
  }
  std::fprintf(stderr,
               "  rule: acquisitions must use strictly increasing ranks "
               "(see LockRank in src/util/lock_order.h)\n");
  std::abort();
}

}  // namespace

void LockOrderValidator::OnAcquire(LockRank rank, const char* name) {
  std::vector<HeldLock>& held = HeldStack();
  for (const HeldLock& h : held) {
    if (h.rank >= rank) Die(rank, name, held);
  }
  held.push_back(HeldLock{rank, name});
}

void LockOrderValidator::OnRelease(LockRank rank, const char* name) {
  std::vector<HeldLock>& held = HeldStack();
  // Scan from the top: releases are almost always LIFO, but scoped locks
  // may legally unwind out of order, so match the newest entry of this
  // rank/name instead of requiring the top.
  for (size_t i = held.size(); i-- > 0;) {
    if (held[i].rank == rank && held[i].name == name) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
  // Releasing a lock the validator never saw acquired: a wrapper bug.
  RunAbortHook("lock-order violation (release of unheld lock)");
  std::fprintf(stderr,
               "lock-order violation: releasing '%s' (class %s) which this "
               "thread does not hold\n",
               NameOrRank(rank, name), LockRankName(rank));
  std::abort();
}

size_t LockOrderValidator::HeldDepth() { return HeldStack().size(); }

#endif  // APC_LOCK_ORDER

}  // namespace apc
