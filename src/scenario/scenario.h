#ifndef APC_SCENARIO_SCENARIO_H_
#define APC_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/traffic_trace.h"
#include "query/aggregate.h"
#include "runtime/shard.h"
#include "util/status.h"

namespace apc {

/// The four adversarial workload families (ROADMAP item 4) — each one a
/// regime change that breaks naive precision setting, encoded as a fully
/// deterministic script every engine can replay:
///
///  * kFlashCrowd — a cold, rarely-updated value becomes both the hottest
///    read target and volatile in one phase; the adaptive policy must
///    re-tighten its width before the herd's tight-constraint reads arrive.
///  * kHotspotMigration — geo-affinity across edge tiers flips at phase
///    boundaries, so every edge's derived widths are tuned for the wrong
///    hotspot after each flip (stresses derived-hull containment).
///  * kCorrelatedBursts — groups of sources jump together in burst ticks,
///    so group-aggregate reads hit many simultaneously-escaped intervals
///    (stresses the aggregate refresh-selection / re-offer path).
///  * kThunderingHerd — mass Subscribe in one tick, mass
///    Reprecision-tighten in another, mass Unsubscribe in a third
///    (stresses the subscription manager's shared-refresh amortization and
///    the hub's backpressure).
enum class ScenarioKind {
  kFlashCrowd,
  kHotspotMigration,
  kCorrelatedBursts,
  kThunderingHerd,
};

const char* ScenarioKindName(ScenarioKind kind);

/// One scripted read. `edge` is the edge tier the read arrives at — used
/// by tiered runs, ignored by flat engines (which execute `query`
/// directly).
struct ScenarioReadOp {
  int edge = 0;
  Query query;
};

/// One scripted standing-query operation. `slot` is a stable script-level
/// handle (0..max_sub_slots-1): the runner maps slots to live sub_ids so a
/// script can re-precision or drop a subscription it opened earlier.
struct ScenarioSubOp {
  enum Kind { kSubscribe, kReprecision, kUnsubscribe };
  Kind kind = kSubscribe;
  int slot = 0;
  /// kSubscribe only; `delta` is the subscription bound for kSubscribe and
  /// kReprecision.
  Query query;
  double delta = 0.0;
};

/// A fully materialized scenario: the per-source value series plus the
/// per-tick read and subscription schedules. Everything an engine run
/// consumes is in here — no RNG at replay time — so the same script drives
/// the sequential reference, the sharded engine, the tiered engine, and
/// every baseline with identical inputs.
///
/// Timebase: values.hosts[id][0] is source id's initial value (shipped by
/// PopulateInitial at t = 0); tick t in [1, ticks] moves each source to
/// values.hosts[id][t] (a repeated value = no update that tick), then
/// reads[t] and sub_ops[t] execute at time t. values.duration() is
/// therefore ticks + 1.
struct ScenarioScript {
  ScenarioKind kind = ScenarioKind::kFlashCrowd;
  std::string name;
  int num_sources = 0;
  /// Edge tiers the script's reads target (1 for flat scenarios).
  int num_edges = 1;
  int64_t ticks = 0;
  Trace values;
  /// reads[t] / sub_ops[t] execute at time t; index 0 is always empty.
  std::vector<std::vector<ScenarioReadOp>> reads;
  std::vector<std::vector<ScenarioSubOp>> sub_ops;
  /// One past the largest slot used by sub_ops (0 when no subscriptions).
  int max_sub_slots = 0;

  bool IsValid() const;
};

/// Knobs of the scenario generators. One config builds any kind; the
/// per-kind generators interpret the shared fields (phases, read rate)
/// in their own terms.
struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kFlashCrowd;
  int num_sources = 32;
  /// kHotspotMigration only: edge tiers whose affinity rotates.
  int num_edges = 4;
  int64_t ticks = 240;
  int reads_per_tick = 12;
  /// Regime changes: phase p covers ticks [p·ticks/num_phases, ...).
  int num_phases = 3;
  /// kThunderingHerd only: subscriptions in the herd.
  int herd_size = 48;
  uint64_t seed = 1;

  bool IsValid() const {
    return num_sources > 0 && num_edges > 0 && ticks > 0 &&
           reads_per_tick >= 0 && num_phases > 0 && num_phases <= ticks &&
           herd_size >= 0;
  }
};

/// Builds the scripted scenario for `config` — deterministic in
/// config.seed (same config, same script, bit for bit). An invalid config
/// yields an empty script (IsValid() false).
ScenarioScript BuildScenario(const ScenarioConfig& config);

/// Ids whose value changed at tick `t` (hosts[id][t] != hosts[id][t-1]) —
/// the update schedule a recorded trace implies, consumed by the
/// stale/divergence baselines that apply explicit update events.
std::vector<int> UpdatedIds(const Trace& values, int64_t t);

/// Loads a value trace for scenario replay through data/trace_io. Any load
/// failure (unreadable, empty, ragged, truncated-vs-header) is counted in
/// counters->rejected_traces (when non-null) per the established
/// counted-rejection pattern, and the error is returned for the caller to
/// skip the file — never fatal.
Result<Trace> LoadScenarioTrace(const std::string& path,
                                RuntimeCounters* counters);

}  // namespace apc

#endif  // APC_SCENARIO_SCENARIO_H_
