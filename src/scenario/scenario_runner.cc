#include "scenario/scenario_runner.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "baseline/divergence_caching.h"
#include "baseline/exact_caching.h"
#include "baseline/stale_system.h"
#include "core/stale_policy.h"
#include "runtime/sharded_engine.h"
#include "runtime/tiered_engine.h"
#include "obs/flight_recorder.h"
#include "runtime/workload_driver.h"
#include "subscribe/notification_hub.h"

namespace apc {

namespace {

/// Precision constraints are satisfied exactly by construction; the
/// tolerance only absorbs floating-point rounding in interval sums.
bool ViolatesConstraint(const Interval& result, double constraint) {
  double tolerance = 1e-9 * (1.0 + std::fabs(constraint));
  return result.Width() > constraint + tolerance;
}

/// Containment of the scripted exact value, with the same rounding slack:
/// interval endpoints are sums of the very doubles the exact answer sums,
/// but in a different association order.
bool ContainsExact(const Interval& result, double exact) {
  double tolerance = 1e-9 * (1.0 + std::fabs(exact));
  return result.lo() - tolerance <= exact && exact <= result.hi() + tolerance;
}

double ExactValueAt(const Trace& values, int id, int64_t t) {
  return values.hosts[static_cast<size_t>(id)][static_cast<size_t>(t)];
}

/// The exact aggregate the scripted values imply for `query` at tick `t` —
/// the ground truth every mid-run containment check compares against.
double ExactAnswer(const Trace& values, const Query& query, int64_t t) {
  double sum = 0.0;
  double max = -kInfinity;
  double min = kInfinity;
  for (int id : query.source_ids) {
    double v = ExactValueAt(values, id, t);
    sum += v;
    max = std::max(max, v);
    min = std::min(min, v);
  }
  switch (query.kind) {
    case AggregateKind::kSum:
      return sum;
    case AggregateKind::kMax:
      return max;
    case AggregateKind::kMin:
      return min;
    case AggregateKind::kAvg:
      return query.source_ids.empty()
                 ? 0.0
                 : sum / static_cast<double>(query.source_ids.size());
  }
  return sum;
}

ReadLockMode ModeOf(int mode) {
  switch (mode) {
    case 1:
      return ReadLockMode::kShared;
    case 2:
      return ReadLockMode::kExclusive;
    default:
      return ReadLockMode::kSeqlock;
  }
}

/// The WAN cost model for kHotspotMigration runs: the flat baselines model
/// a client reading sources across the wide-area link the tiered engine's
/// regional tier refreshes over, so their charges are comparable to the
/// tiered WAN+LAN total. Flat scenarios use the default costs.
RefreshCosts BaselineCosts(const ScenarioScript& script) {
  if (script.kind == ScenarioKind::kHotspotMigration) {
    return RefreshCosts{4.0, 8.0};
  }
  return RefreshCosts{};
}

ScenarioMetrics MakeMetrics(const ScenarioScript& script, PolicyKind policy) {
  ScenarioMetrics metrics;
  metrics.scenario = script.name;
  metrics.policy = PolicyKindName(policy);
  metrics.ticks = script.ticks;
  return metrics;
}

void FinishCosts(ScenarioMetrics& metrics, int64_t value_refreshes,
                 int64_t query_refreshes, double total_cost) {
  metrics.value_refreshes = value_refreshes;
  metrics.query_refreshes = query_refreshes;
  metrics.total_cost = total_cost;
  metrics.cost_rate =
      metrics.ticks > 0 ? total_cost / static_cast<double>(metrics.ticks)
                        : 0.0;
}

/// One flight-recorder dump per run, fired at the FIRST failing check —
/// the scenario-checker trigger documented in obs/flight_recorder.h. The
/// recorder no-ops when unarmed, so honest runs (and the committed bench
/// rows) pay one branch per failure, i.e. nothing.
class FailureDumper {
 public:
  void Note(const char* reason) {
    if (dumped_) return;
    dumped_ = true;
    obs::FlightRecorder::DumpOnFailure(reason);
  }

 private:
  bool dumped_ = false;
};

/// Per-slot state the thundering-herd checker tracks across drains.
struct SlotState {
  int64_t sub_id = -1;
  Query query;
  double delta = 0.0;
  int64_t last_epoch = 0;
  double last_width = kInfinity;
  bool ever_answered = false;
};

/// Adaptive replay on the sharded engine (flash crowd, correlated bursts,
/// thundering herd): deterministic lockstep — TickAll + sequential reads
/// from one thread — with every read checked as it executes and, when the
/// script subscribes, the notification stream drained and checked at
/// per-operation quiescent points.
ScenarioMetrics RunAdaptiveSharded(const ScenarioScript& script,
                                   const ScenarioRunOptions& options) {
  ScenarioMetrics metrics = MakeMetrics(script, PolicyKind::kAdaptive);
  const bool has_subs = script.max_sub_slots > 0;
  const double skew = options.inject_containment_skew;
  FailureDumper dumper;

  EngineConfig config;
  config.system.cache_capacity = static_cast<size_t>(script.num_sources);
  config.num_shards =
      has_subs ? 1
               : std::max(1, std::min(options.num_shards, script.num_sources));
  config.seed = options.engine_seed;
  config.read_lock_mode = ModeOf(options.read_lock_mode);
  config.subscription_hub_capacity = std::max<size_t>(
      1024, static_cast<size_t>(script.max_sub_slots) * 8);
  AdaptivePolicyParams policy;
  ShardedEngine engine(
      config,
      BuildTraceSources(script.values, policy, options.engine_seed));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  std::vector<SlotState> slots(static_cast<size_t>(script.max_sub_slots));
  std::unordered_map<int64_t, int> sub_to_slot;
  std::vector<Notification> batch;

  // Drains whatever the notifier has queued and runs the subscription
  // checkers: per-slot epoch monotonicity and containment of each drained
  // answer against the scripted exact value at its compute tick. Caller
  // must be at a quiescent point (WaitQuiescent) for the drain to be
  // deterministic.
  auto drain_and_check = [&]() {
    while (engine.notifications().TryPopBatch(&batch, 256) > 0) {
      for (const Notification& rec : batch) {
        auto it = sub_to_slot.find(rec.sub_id);
        if (it == sub_to_slot.end()) continue;
        SlotState& slot = slots[static_cast<size_t>(it->second)];
        ++metrics.checker_probes;
        if (rec.epoch <= slot.last_epoch) {
          ++metrics.order_regressions;
          dumper.Note("subscription epoch regression");
        }
        slot.last_epoch = rec.epoch;
        ++metrics.checker_probes;
        double exact = ExactAnswer(script.values, slot.query, rec.now) + skew;
        if (!ContainsExact(rec.answer, exact)) {
          ++metrics.containment_failures;
          dumper.Note("notification containment failure");
        }
        slot.last_width = rec.answer.Width();
        slot.ever_answered = true;
      }
    }
  };

  for (int64_t t = 1; t <= script.ticks; ++t) {
    engine.TickAll(t);
    if (has_subs) {
      // Quiesce after every change-producing step so the notifier sees
      // the same batch boundaries every run — the determinism contract.
      engine.subscriptions().WaitQuiescent();
      drain_and_check();
    }
    // Subscription ops run after the tick: Subscribe and Reprecision
    // evaluate their answer synchronously at `t`, so the sources must
    // already hold tick-t values for the containment checker's ground
    // truth (the scripted value at rec.now) to be the value they saw.
    for (const ScenarioSubOp& op : script.sub_ops[static_cast<size_t>(t)]) {
      SlotState& slot = slots[static_cast<size_t>(op.slot)];
      switch (op.kind) {
        case ScenarioSubOp::kSubscribe: {
          int64_t sub_id = engine.Subscribe(op.query, op.delta, t);
          if (sub_id >= 0) {
            slot.sub_id = sub_id;
            slot.query = op.query;
            slot.delta = op.delta;
            sub_to_slot[sub_id] = op.slot;
            ++metrics.subscriptions;
          }
          break;
        }
        case ScenarioSubOp::kReprecision:
          if (slot.sub_id >= 0 &&
              engine.Reprecision(slot.sub_id, op.delta, t)) {
            slot.delta = op.delta;
          }
          break;
        case ScenarioSubOp::kUnsubscribe:
          if (slot.sub_id >= 0) engine.Unsubscribe(slot.sub_id);
          break;
      }
      // Quiesce after EACH op, not just the batch: an op's escalation
      // publishes dirty ids, and letting the notifier's evaluation of
      // them race the NEXT op's state mutations makes the ship/suppress
      // decision (and so the notification count) timing-dependent.
      engine.subscriptions().WaitQuiescent();
    }
    if (has_subs) {
      engine.subscriptions().WaitQuiescent();
      drain_and_check();
    }
    for (const ScenarioReadOp& op : script.reads[static_cast<size_t>(t)]) {
      Interval result = engine.ExecuteQuery(op.query, t);
      ++metrics.reads;
      ++metrics.checker_probes;
      if (ViolatesConstraint(result, op.query.constraint)) {
        ++metrics.violations;
        dumper.Note("read constraint violation");
      }
      ++metrics.checker_probes;
      if (!ContainsExact(result,
                         ExactAnswer(script.values, op.query, t) + skew)) {
        ++metrics.containment_failures;
        dumper.Note("read containment failure");
      }
      if (has_subs) {
        engine.subscriptions().WaitQuiescent();
        drain_and_check();
      }
    }
    metrics.updates +=
        static_cast<int64_t>(UpdatedIds(script.values, t).size());
  }
  if (has_subs) {
    engine.subscriptions().WaitQuiescent();
    drain_and_check();
    for (const SlotState& slot : slots) {
      if (slot.ever_answered &&
          slot.last_width <= slot.delta + 1e-9 * (1.0 + slot.delta)) {
        ++metrics.bound_met;
      }
    }
    metrics.notifications = engine.subscriptions().counters().notifications.load(
        std::memory_order_relaxed);
    metrics.sub_rejected = engine.subscriptions().counters().rejected.load(
        std::memory_order_relaxed);
  }
  engine.EndMeasurement(script.ticks + 1);
  EngineCosts costs = engine.TotalCosts();
  FinishCosts(metrics, costs.value_refreshes, costs.query_refreshes,
              costs.total_cost);
  return metrics;
}

/// Adaptive replay on the tiered engine (hotspot migration): edge-targeted
/// point reads with the derived-hull invariant probed every tick, mid-run.
ScenarioMetrics RunAdaptiveTiered(const ScenarioScript& script,
                                  const ScenarioRunOptions& options) {
  ScenarioMetrics metrics = MakeMetrics(script, PolicyKind::kAdaptive);
  const double skew = options.inject_containment_skew;
  FailureDumper dumper;
  TieredConfig config;
  config.num_edges = script.num_edges;
  config.num_shards = std::max(1, std::min(2, script.num_sources));
  config.read_lock_mode = ModeOf(options.read_lock_mode);
  config.seed = options.engine_seed;
  TieredEngine engine(config, BuildTraceStreams(script.values));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  for (int64_t t = 1; t <= script.ticks; ++t) {
    engine.TickAll(t);
    for (const ScenarioReadOp& op : script.reads[static_cast<size_t>(t)]) {
      int id = op.query.source_ids.front();
      Interval result = engine.Read(op.edge, id, op.query.constraint, t);
      ++metrics.reads;
      ++metrics.checker_probes;
      if (ViolatesConstraint(result, op.query.constraint)) {
        ++metrics.violations;
        dumper.Note("tiered read constraint violation");
      }
      ++metrics.checker_probes;
      if (!ContainsExact(result, ExactValueAt(script.values, id, t) + skew)) {
        ++metrics.containment_failures;
        dumper.Note("tiered read containment failure");
      }
    }
    ++metrics.checker_probes;
    if (!engine.DerivedInvariantHolds(t)) {
      ++metrics.hull_failures;
      dumper.Note("derived hull invariant failure");
    }
    metrics.updates +=
        static_cast<int64_t>(UpdatedIds(script.values, t).size());
  }
  engine.EndMeasurement(script.ticks + 1);
  EngineCosts wan = engine.WanCosts();
  EngineCosts lan = engine.LanCosts();
  FinishCosts(metrics, wan.value_refreshes + lan.value_refreshes,
              wan.query_refreshes + lan.query_refreshes,
              wan.total_cost + lan.total_cost);
  return metrics;
}

/// The standing-query schedule lowered for baselines that have no push
/// surface: each active subscription becomes one poll per tick (the
/// polling equivalent the subscription bench measures savings against).
struct BaselinePolls {
  std::vector<Query> active;
  std::vector<double> delta;
};

void ApplySubOpsToPolls(const ScenarioScript& script, int64_t t,
                        std::vector<SlotState>& slots) {
  for (const ScenarioSubOp& op : script.sub_ops[static_cast<size_t>(t)]) {
    SlotState& slot = slots[static_cast<size_t>(op.slot)];
    switch (op.kind) {
      case ScenarioSubOp::kSubscribe:
        slot.sub_id = op.slot;
        slot.query = op.query;
        slot.delta = op.delta;
        break;
      case ScenarioSubOp::kReprecision:
        slot.delta = op.delta;
        break;
      case ScenarioSubOp::kUnsubscribe:
        slot.sub_id = -1;
        break;
    }
  }
}

/// The [WJH97] exact-replication baseline: replays the identical trace
/// (writes only for values that moved) and read schedule; every answer is
/// exact, so the precision checks trivially hold and the row's content is
/// the cost of that exactness.
ScenarioMetrics RunExactBaseline(const ScenarioScript& script) {
  ScenarioMetrics metrics = MakeMetrics(script, PolicyKind::kExact);
  ExactCachingParams params;
  params.costs = BaselineCosts(script);
  params.cache_capacity = static_cast<size_t>(script.num_sources);
  ExactCachingSystem system(params, BuildTraceStreams(script.values));
  system.costs().BeginMeasurement(0);
  std::vector<SlotState> slots(static_cast<size_t>(script.max_sub_slots));

  for (int64_t t = 1; t <= script.ticks; ++t) {
    ApplySubOpsToPolls(script, t, slots);
    system.TickTrace(t);
    for (const ScenarioReadOp& op : script.reads[static_cast<size_t>(t)]) {
      double answer = system.ExecuteQuery(op.query, t);
      ++metrics.reads;
      ++metrics.checker_probes;
      if (!ContainsExact(Interval::Exact(answer),
                         ExactAnswer(script.values, op.query, t))) {
        ++metrics.containment_failures;
      }
    }
    for (const SlotState& slot : slots) {
      if (slot.sub_id < 0) continue;
      system.ExecuteQuery(slot.query, t);
      ++metrics.reads;
      ++metrics.subscriptions;
    }
    metrics.updates +=
        static_cast<int64_t>(UpdatedIds(script.values, t).size());
  }
  system.costs().EndMeasurement(script.ticks + 1);
  FinishCosts(metrics, system.costs().value_refreshes(),
              system.costs().query_refreshes(), system.costs().total_cost());
  return metrics;
}

/// The stale-value baselines (our stale-adapted algorithm, or Divergence
/// Caching): the trace's update schedule drives explicit per-id update
/// events; each read's constraint is a maximum divergence bound in update
/// units. The mid-run check is the stale model's precision guarantee —
/// after a read, no read id may lag more updates than the constraint
/// allowed (the system refreshes exactly when the promised bound exceeds
/// it, so pending_updates ≤ constraint must hold at serve time).
ScenarioMetrics RunStaleBaseline(const ScenarioScript& script,
                                 PolicyKind policy, uint64_t seed) {
  ScenarioMetrics metrics = MakeMetrics(script, policy);
  StaleSystemConfig config;
  config.costs = BaselineCosts(script);
  config.num_sources = script.num_sources;
  std::unique_ptr<StaleBoundPolicy> bounds;
  if (policy == PolicyKind::kDivergence) {
    DivergenceCachingParams params;
    params.costs = config.costs;
    params.initial_bound = 2.0;
    bounds = std::make_unique<DivergenceCachingBounds>(params,
                                                       script.num_sources);
  } else {
    StalePolicyParams params;
    params.cvr = config.costs.cvr;
    params.cqr = config.costs.cqr;
    params.delta0 = 1.0;
    params.initial_bound = 2.0;
    bounds = std::make_unique<AdaptiveStaleBounds>(
        params.ToAdaptiveParams(), script.num_sources, seed ^ 0x57a1e);
  }
  StaleCacheSystem system(config, std::move(bounds), seed);
  system.costs().BeginMeasurement(0);
  std::vector<SlotState> slots(static_cast<size_t>(script.max_sub_slots));

  auto checked_read = [&](const std::vector<int>& ids, double constraint,
                          int64_t now) {
    system.ExecuteRead(ids, constraint, now);
    ++metrics.reads;
    for (int id : ids) {
      ++metrics.checker_probes;
      if (static_cast<double>(system.pending_updates(id)) >
          constraint + 1e-9 * (1.0 + constraint)) {
        ++metrics.violations;
      }
    }
  };

  for (int64_t t = 1; t <= script.ticks; ++t) {
    ApplySubOpsToPolls(script, t, slots);
    std::vector<int> updated = UpdatedIds(script.values, t);
    system.ApplyUpdates(updated, t);
    metrics.updates += static_cast<int64_t>(updated.size());
    for (const ScenarioReadOp& op : script.reads[static_cast<size_t>(t)]) {
      checked_read(op.query.source_ids, op.query.constraint, t);
    }
    for (const SlotState& slot : slots) {
      if (slot.sub_id < 0) continue;
      checked_read(slot.query.source_ids, slot.delta, t);
      ++metrics.subscriptions;
    }
  }
  system.costs().EndMeasurement(script.ticks + 1);
  FinishCosts(metrics, system.costs().value_refreshes(),
              system.costs().query_refreshes(), system.costs().total_cost());
  return metrics;
}

}  // namespace

const char* PolicyKindName(PolicyKind policy) {
  switch (policy) {
    case PolicyKind::kAdaptive:
      return "adaptive";
    case PolicyKind::kExact:
      return "exact";
    case PolicyKind::kStale:
      return "stale";
    case PolicyKind::kDivergence:
      return "divergence";
  }
  return "unknown";
}

std::string ScenarioMetrics::DebugString() const {
  std::ostringstream out;
  out.precision(17);
  out << "scenario=" << scenario << "\npolicy=" << policy
      << "\nticks=" << ticks << "\nreads=" << reads
      << "\nupdates=" << updates << "\nviolations=" << violations
      << "\ncontainment_failures=" << containment_failures
      << "\nhull_failures=" << hull_failures
      << "\norder_regressions=" << order_regressions
      << "\nchecker_probes=" << checker_probes
      << "\nvalue_refreshes=" << value_refreshes
      << "\nquery_refreshes=" << query_refreshes
      << "\ntotal_cost=" << total_cost << "\ncost_rate=" << cost_rate
      << "\nsubscriptions=" << subscriptions
      << "\nnotifications=" << notifications
      << "\nsub_rejected=" << sub_rejected << "\nbound_met=" << bound_met
      << "\n";
  return out.str();
}

ScenarioMetrics RunScenario(const ScenarioScript& script, PolicyKind policy,
                            const ScenarioRunOptions& options) {
  if (!script.IsValid()) return ScenarioMetrics{};
  switch (policy) {
    case PolicyKind::kAdaptive:
      return script.kind == ScenarioKind::kHotspotMigration
                 ? RunAdaptiveTiered(script, options)
                 : RunAdaptiveSharded(script, options);
    case PolicyKind::kExact:
      return RunExactBaseline(script);
    case PolicyKind::kStale:
    case PolicyKind::kDivergence:
      return RunStaleBaseline(script, policy, options.engine_seed);
  }
  return ScenarioMetrics{};
}

}  // namespace apc
