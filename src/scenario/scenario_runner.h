#ifndef APC_SCENARIO_SCENARIO_RUNNER_H_
#define APC_SCENARIO_SCENARIO_RUNNER_H_

#include <cstdint>
#include <string>

#include "scenario/scenario.h"

namespace apc {

/// The precision-setting policies a scenario is replayed under — the
/// paper's Section-6 comparison set. kAdaptive is the system under test
/// (interval approximations, adaptive width walk); the other three are the
/// baselines of §4.6/§4.7:
///
///  * kExact — the [WJH97]-style adaptive exact-replication baseline
///    (ExactCachingSystem): every answer exact, every cached write pushed.
///  * kStale — our algorithm specialized to stale-value approximations
///    (AdaptiveStaleBounds over StaleCacheSystem, theta' = Cvr/Cqr).
///  * kDivergence — Divergence Caching [HSW94] (projection-based bound
///    resetting over the same StaleCacheSystem).
///
/// The stale-model runs interpret each read's numeric constraint in update
/// units (a maximum divergence bound) rather than value units — the
/// paper's §4.7 setting, where precision is counted in unseen updates.
enum class PolicyKind {
  kAdaptive,
  kExact,
  kStale,
  kDivergence,
};

const char* PolicyKindName(PolicyKind policy);

/// Deterministic outcome of one scenario × policy run. Every field is a
/// pure function of (script, policy, options) — no wall-clock anywhere —
/// which is what the determinism suite asserts via DebugString().
struct ScenarioMetrics {
  std::string scenario;
  std::string policy;
  int64_t ticks = 0;
  int64_t reads = 0;
  /// Update events implied by the trace (values that actually moved).
  int64_t updates = 0;
  /// MID-RUN checker tallies — asserted while the workload runs, not
  /// post-hoc. All must be 0 on adaptive rows:
  /// result intervals wider than their constraint,
  int64_t violations = 0;
  /// answers (read results and drained subscription notifications) that
  /// failed to contain the exact scripted value at their compute tick,
  int64_t containment_failures = 0;
  /// ticks where the tiered derived-hull invariant A_edge ⊇ A_regional did
  /// not hold (tiered runs only),
  int64_t hull_failures = 0;
  /// per-subscription epoch regressions observed at drain time.
  int64_t order_regressions = 0;
  /// How hard the checkers tried (every individual check counts one).
  int64_t checker_probes = 0;
  // -- cost comparison ---------------------------------------------------
  int64_t value_refreshes = 0;
  int64_t query_refreshes = 0;
  double total_cost = 0.0;
  /// total_cost / ticks, the paper's Ω.
  double cost_rate = 0.0;
  // -- subscription-side tallies (thundering herd only) ------------------
  int64_t subscriptions = 0;
  int64_t notifications = 0;
  int64_t sub_rejected = 0;
  /// Slots whose last drained answer met the slot's then-current bound.
  /// Reported, not gated: the escalation cap legitimately lets a held
  /// answer exceed a freshly tightened bound for a few ticks.
  int64_t bound_met = 0;

  /// Every deterministic field, one per line — the determinism suite's
  /// comparison key.
  std::string DebugString() const;
};

/// Options of the replay harness. The defaults are the committed-bench
/// configuration; tests override shards/read mode to widen coverage.
struct ScenarioRunOptions {
  /// Shards of the flat engine. Thundering-herd runs force 1 regardless:
  /// with one shard each tick's dirty ids reach the notifier as ONE batch,
  /// which is what makes the notification stream deterministic.
  int num_shards = 4;
  /// 0 = seqlock, 1 = shared, 2 = exclusive (mirrors ReadLockMode without
  /// pulling the runtime header into every bench row).
  int read_lock_mode = 0;
  uint64_t engine_seed = 1234;
  /// Fault injection for the self-checkers: shifts the exact ground truth
  /// every containment check compares against by this amount. 0 (the
  /// default) checks honestly; a value wider than the workload's bounds
  /// forces deterministic containment failures — which is how the
  /// flight-recorder suite proves a failing check produces a dump without
  /// needing a real engine bug on demand.
  double inject_containment_skew = 0.0;
};

/// Replays `script` under `policy` with mid-run self-checking and returns
/// the metrics. Adaptive runs drive the real engines in deterministic
/// lockstep — the sharded engine for flat scenarios, the tiered engine for
/// kHotspotMigration, the subscription subsystem for kThunderingHerd —
/// checking every read against its constraint and the scripted exact
/// value as it happens; baseline runs replay the identical trace and read
/// schedule through the baseline simulators. An invalid script yields
/// zeroed metrics with checker_probes == 0 (a run that never probed can
/// never pass a violations==0 gate by accident).
ScenarioMetrics RunScenario(const ScenarioScript& script, PolicyKind policy,
                            const ScenarioRunOptions& options = {});

}  // namespace apc

#endif  // APC_SCENARIO_SCENARIO_RUNNER_H_
