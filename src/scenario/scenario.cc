#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>

#include "data/trace_io.h"
#include "util/rng.h"

namespace apc {

namespace {

/// Skewed id draw in [0, n): u^3 concentrates mass near 0, then the pick
/// is rotated by `hot` so the concentration lands on the scenario's
/// current hotspot. A cheap stand-in for Zipf that needs no table.
int SkewedId(Rng& rng, int n, int hot) {
  double u = rng.Uniform(0.0, 1.0);
  int offset = static_cast<int>(u * u * u * n);
  if (offset >= n) offset = n - 1;
  return (hot + offset) % n;
}

ScenarioReadOp PointRead(int id, double constraint, int edge = 0) {
  ScenarioReadOp op;
  op.edge = edge;
  op.query.kind = AggregateKind::kSum;
  op.query.source_ids = {id};
  op.query.constraint = constraint;
  return op;
}

/// Walks every source forward one tick: with probability p[id] the value
/// moves by ±U[lo[id], hi[id]], otherwise it repeats (no update).
struct WalkState {
  std::vector<double> update_probability;
  std::vector<double> step_lo;
  std::vector<double> step_hi;
};

void AdvanceWalk(Trace& values, const WalkState& walk, int64_t t, Rng& rng) {
  for (size_t id = 0; id < values.hosts.size(); ++id) {
    double prev = values.hosts[id][static_cast<size_t>(t - 1)];
    double next = prev;
    if (rng.Bernoulli(walk.update_probability[id])) {
      double step = rng.Uniform(walk.step_lo[id], walk.step_hi[id]);
      if (!rng.Bernoulli(0.5)) step = -step;
      next = prev + step;
    }
    values.hosts[id][static_cast<size_t>(t)] = next;
  }
}

/// Shared skeleton: initial values 100 + id, per-tick schedules sized
/// ticks + 1 with index 0 empty.
ScenarioScript MakeSkeleton(const ScenarioConfig& config) {
  ScenarioScript script;
  script.kind = config.kind;
  script.name = ScenarioKindName(config.kind);
  script.num_sources = config.num_sources;
  script.num_edges =
      config.kind == ScenarioKind::kHotspotMigration ? config.num_edges : 1;
  script.ticks = config.ticks;
  script.values.hosts.assign(
      static_cast<size_t>(config.num_sources),
      std::vector<double>(static_cast<size_t>(config.ticks) + 1, 0.0));
  for (int id = 0; id < config.num_sources; ++id) {
    script.values.hosts[static_cast<size_t>(id)][0] = 100.0 + id;
  }
  script.reads.resize(static_cast<size_t>(config.ticks) + 1);
  script.sub_ops.resize(static_cast<size_t>(config.ticks) + 1);
  return script;
}

int PhaseOf(const ScenarioConfig& config, int64_t t) {
  int phase = static_cast<int>(t * config.num_phases / (config.ticks + 1));
  return std::min(phase, config.num_phases - 1);
}

ScenarioScript BuildFlashCrowd(const ScenarioConfig& config) {
  ScenarioScript script = MakeSkeleton(config);
  Rng rng(config.seed);
  const int n = config.num_sources;
  // Source 0 is the cold value: near-frozen and never read in phase 0,
  // then volatile AND the target of 80% of reads (with much tighter
  // constraints) from phase 1 on — the policy has widened it to "barely
  // cached" exactly when the herd needs it tight.
  WalkState walk;
  walk.update_probability.assign(static_cast<size_t>(n), 0.8);
  walk.step_lo.assign(static_cast<size_t>(n), 0.5);
  walk.step_hi.assign(static_cast<size_t>(n), 1.5);
  walk.update_probability[0] = 0.05;
  for (int64_t t = 1; t <= config.ticks; ++t) {
    if (PhaseOf(config, t) >= 1) {
      walk.update_probability[0] = 1.0;
      walk.step_lo[0] = 1.0;
      walk.step_hi[0] = 3.0;
    }
    AdvanceWalk(script.values, walk, t, rng);
    auto& reads = script.reads[static_cast<size_t>(t)];
    bool crowd = PhaseOf(config, t) >= 1;
    for (int r = 0; r < config.reads_per_tick; ++r) {
      if (crowd && rng.Bernoulli(0.8)) {
        reads.push_back(PointRead(0, rng.Uniform(0.5, 2.0)));
        continue;
      }
      // Background traffic never touches source 0: skewed point reads and
      // the occasional small SUM over warm ids.
      int id = 1 + SkewedId(rng, n - 1, 0);
      if (rng.Bernoulli(0.7)) {
        reads.push_back(PointRead(id, rng.Uniform(5.0, 20.0)));
      } else {
        ScenarioReadOp op;
        op.query.kind = AggregateKind::kSum;
        for (int k = 0; k < 4; ++k) {
          op.query.source_ids.push_back(1 + (id - 1 + k) % (n - 1));
        }
        op.query.constraint = rng.Uniform(10.0, 30.0);
        reads.push_back(op);
      }
    }
  }
  return script;
}

ScenarioScript BuildHotspotMigration(const ScenarioConfig& config) {
  ScenarioScript script = MakeSkeleton(config);
  Rng rng(config.seed);
  const int n = config.num_sources;
  WalkState walk;
  walk.update_probability.assign(static_cast<size_t>(n), 0.5);
  walk.step_lo.assign(static_cast<size_t>(n), 0.5);
  walk.step_hi.assign(static_cast<size_t>(n), 1.5);
  for (int64_t t = 1; t <= config.ticks; ++t) {
    AdvanceWalk(script.values, walk, t, rng);
    int phase = PhaseOf(config, t);
    auto& reads = script.reads[static_cast<size_t>(t)];
    for (int r = 0; r < config.reads_per_tick; ++r) {
      int edge = static_cast<int>(
          rng.UniformInt(0, static_cast<int64_t>(config.num_edges) - 1));
      // Each edge's hotspot is a slice of the id space, rotated one edge
      // per phase: the ids edge e hammered in phase p belong to edge e+1
      // in phase p+1, so every per-(edge, value) derived width is tuned
      // for the wrong hotspot right after the boundary.
      int hot = ((edge + phase) % config.num_edges) * n / config.num_edges;
      int id = rng.Bernoulli(0.85) ? SkewedId(rng, n, hot)
                                   : static_cast<int>(rng.UniformInt(
                                         0, static_cast<int64_t>(n) - 1));
      reads.push_back(PointRead(id, rng.Uniform(2.0, 10.0), edge));
    }
  }
  return script;
}

ScenarioScript BuildCorrelatedBursts(const ScenarioConfig& config) {
  ScenarioScript script = MakeSkeleton(config);
  Rng rng(config.seed);
  const int n = config.num_sources;
  const int group_size = std::min(8, n);
  const int num_groups = std::max(1, n / group_size);
  const int64_t burst_every = std::max<int64_t>(1, config.ticks / 12);
  for (int64_t t = 1; t <= config.ticks; ++t) {
    // Quiet regime: sparse small moves. Burst tick: one whole group jumps
    // the same way at once, so every interval covering the group escapes
    // in the same tick and the group-aggregate reads that follow stress
    // refresh selection over many simultaneously-invalid items.
    int bursting_group = -1;
    double burst_step = 0.0;
    if (t % burst_every == 0) {
      bursting_group = static_cast<int>((t / burst_every) %
                                        static_cast<int64_t>(num_groups));
      burst_step = rng.Uniform(20.0, 40.0) * (rng.Bernoulli(0.5) ? 1 : -1);
    }
    for (int id = 0; id < n; ++id) {
      double prev =
          script.values.hosts[static_cast<size_t>(id)][static_cast<size_t>(
              t - 1)];
      double next = prev;
      if (bursting_group >= 0 &&
          std::min(id / group_size, num_groups - 1) == bursting_group) {
        next = prev + burst_step + rng.Uniform(-1.0, 1.0);
      } else if (rng.Bernoulli(0.3)) {
        next = prev + rng.Uniform(0.1, 0.3) * (rng.Bernoulli(0.5) ? 1 : -1);
      }
      script.values.hosts[static_cast<size_t>(id)][static_cast<size_t>(t)] =
          next;
    }
    auto& reads = script.reads[static_cast<size_t>(t)];
    for (int r = 0; r < config.reads_per_tick; ++r) {
      if (rng.Bernoulli(0.3)) {
        reads.push_back(PointRead(
            static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(n) - 1)),
            rng.Uniform(2.0, 8.0)));
        continue;
      }
      int g = static_cast<int>(
          rng.UniformInt(0, static_cast<int64_t>(num_groups) - 1));
      ScenarioReadOp op;
      op.query.kind = rng.Bernoulli(0.5) ? AggregateKind::kSum
                                         : AggregateKind::kAvg;
      int lo = g * group_size;
      int hi = (g == num_groups - 1) ? n : lo + group_size;
      for (int id = lo; id < hi; ++id) op.query.source_ids.push_back(id);
      op.query.constraint = op.query.kind == AggregateKind::kAvg
                                ? rng.Uniform(2.0, 6.0)
                                : rng.Uniform(10.0, 30.0);
      reads.push_back(op);
    }
  }
  return script;
}

ScenarioScript BuildThunderingHerd(const ScenarioConfig& config) {
  ScenarioScript script = MakeSkeleton(config);
  Rng rng(config.seed);
  const int n = config.num_sources;
  script.max_sub_slots = config.herd_size;
  WalkState walk;
  walk.update_probability.assign(static_cast<size_t>(n), 0.7);
  walk.step_lo.assign(static_cast<size_t>(n), 0.5);
  walk.step_hi.assign(static_cast<size_t>(n), 1.5);
  const int64_t t_subscribe = std::max<int64_t>(1, config.ticks / 4);
  const int64_t t_tighten = std::max<int64_t>(t_subscribe + 1, config.ticks / 2);
  const int64_t t_drop =
      std::max<int64_t>(t_tighten + 1, 3 * config.ticks / 4);
  std::vector<double> slot_delta(static_cast<size_t>(config.herd_size), 0.0);
  for (int64_t t = 1; t <= config.ticks; ++t) {
    AdvanceWalk(script.values, walk, t, rng);
    auto& reads = script.reads[static_cast<size_t>(t)];
    for (int r = 0; r < std::min(4, config.reads_per_tick); ++r) {
      reads.push_back(PointRead(
          static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(n) - 1)),
          rng.Uniform(5.0, 15.0)));
    }
    auto& subs = script.sub_ops[static_cast<size_t>(t)];
    if (t == t_subscribe) {
      // The herd: every slot registers in the same tick, forcing the
      // manager to evaluate (and possibly escalate) the whole population
      // against one tick's escalation cap.
      for (int slot = 0; slot < config.herd_size; ++slot) {
        ScenarioSubOp op;
        op.kind = ScenarioSubOp::kSubscribe;
        op.slot = slot;
        if (rng.Bernoulli(0.6)) {
          op.query.kind = AggregateKind::kSum;
          op.query.source_ids = {slot % n};
          op.delta = rng.Uniform(5.0, 15.0);
        } else {
          op.query.kind = AggregateKind::kSum;
          for (int k = 0; k < std::min(5, n); ++k) {
            op.query.source_ids.push_back((slot + k) % n);
          }
          op.delta = rng.Uniform(10.0, 25.0);
        }
        slot_delta[static_cast<size_t>(slot)] = op.delta;
        subs.push_back(op);
      }
    } else if (t == t_tighten) {
      // Mass re-precision: every bound drops to 30% at once, so the
      // shared-refresh amortization (≤1 escalation per value per tick)
      // must spread the re-tightening over the following ticks.
      for (int slot = 0; slot < config.herd_size; ++slot) {
        ScenarioSubOp op;
        op.kind = ScenarioSubOp::kReprecision;
        op.slot = slot;
        op.delta = slot_delta[static_cast<size_t>(slot)] * 0.3;
        subs.push_back(op);
      }
    } else if (t == t_drop) {
      for (int slot = 0; slot < config.herd_size; ++slot) {
        ScenarioSubOp op;
        op.kind = ScenarioSubOp::kUnsubscribe;
        op.slot = slot;
        subs.push_back(op);
      }
    }
  }
  return script;
}

}  // namespace

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kFlashCrowd:
      return "flash_crowd";
    case ScenarioKind::kHotspotMigration:
      return "hotspot_migration";
    case ScenarioKind::kCorrelatedBursts:
      return "correlated_bursts";
    case ScenarioKind::kThunderingHerd:
      return "thundering_herd";
  }
  return "unknown";
}

bool ScenarioScript::IsValid() const {
  return num_sources > 0 && num_edges > 0 && ticks > 0 &&
         values.num_hosts() == static_cast<size_t>(num_sources) &&
         values.duration() == static_cast<size_t>(ticks) + 1 &&
         reads.size() == static_cast<size_t>(ticks) + 1 &&
         sub_ops.size() == static_cast<size_t>(ticks) + 1 &&
         max_sub_slots >= 0;
}

ScenarioScript BuildScenario(const ScenarioConfig& config) {
  if (!config.IsValid()) return ScenarioScript{};
  switch (config.kind) {
    case ScenarioKind::kFlashCrowd:
      return BuildFlashCrowd(config);
    case ScenarioKind::kHotspotMigration:
      return BuildHotspotMigration(config);
    case ScenarioKind::kCorrelatedBursts:
      return BuildCorrelatedBursts(config);
    case ScenarioKind::kThunderingHerd:
      return BuildThunderingHerd(config);
  }
  return ScenarioScript{};
}

std::vector<int> UpdatedIds(const Trace& values, int64_t t) {
  std::vector<int> ids;
  if (t < 1 || static_cast<size_t>(t) >= values.duration()) return ids;
  for (size_t id = 0; id < values.hosts.size(); ++id) {
    if (values.hosts[id][static_cast<size_t>(t)] !=
        values.hosts[id][static_cast<size_t>(t - 1)]) {
      ids.push_back(static_cast<int>(id));
    }
  }
  return ids;
}

Result<Trace> LoadScenarioTrace(const std::string& path,
                                RuntimeCounters* counters) {
  Result<Trace> loaded = LoadTraceCsv(path);
  if (!loaded.ok() && counters != nullptr) {
    counters->rejected_traces.fetch_add(1, std::memory_order_relaxed);
  }
  return loaded;
}

}  // namespace apc
