#include "baseline/exact_caching.h"

#include <algorithm>
#include <limits>

namespace apc {

ExactCachingSystem::ExactCachingSystem(
    const ExactCachingParams& params,
    std::vector<std::unique_ptr<UpdateStream>> streams)
    : params_(params),
      streams_(std::move(streams)),
      state_(streams_.size()),
      costs_(params.costs) {}

double ExactCachingSystem::value(int id) const {
  return streams_.at(static_cast<size_t>(id))->current();
}

void ExactCachingSystem::Tick(int64_t /*now*/) {
  for (size_t id = 0; id < streams_.size(); ++id) {
    streams_[id]->Next();
    RecordWrite(static_cast<int>(id));
  }
}

void ExactCachingSystem::TickTrace(int64_t /*now*/) {
  for (size_t id = 0; id < streams_.size(); ++id) {
    double before = streams_[id]->current();
    double after = streams_[id]->Next();
    if (after != before) RecordWrite(static_cast<int>(id));
  }
}

double ExactCachingSystem::ExecuteQuery(const Query& query, int64_t /*now*/) {
  double sum = 0.0;
  double max = -std::numeric_limits<double>::infinity();
  double min = std::numeric_limits<double>::infinity();
  for (int id : query.source_ids) {
    RecordRead(id);
    double v = value(id);
    sum += v;
    max = std::max(max, v);
    min = std::min(min, v);
  }
  switch (query.kind) {
    case AggregateKind::kSum:
      return sum;
    case AggregateKind::kMax:
      return max;
    case AggregateKind::kMin:
      return min;
    case AggregateKind::kAvg:
      return query.source_ids.empty()
                 ? 0.0
                 : sum / static_cast<double>(query.source_ids.size());
  }
  return sum;
}

void ExactCachingSystem::RecordWrite(int id) {
  if (cached_.count(id) > 0) {
    // The cached replica must be kept exact: every source write is pushed.
    costs_.RecordValueRefresh();
  }
  ++state_[static_cast<size_t>(id)].writes;
  MaybeReevaluate(id);
}

void ExactCachingSystem::RecordRead(int id) {
  if (cached_.count(id) == 0) {
    // Remote read of an uncached value.
    costs_.RecordQueryRefresh();
  }
  ++state_[static_cast<size_t>(id)].reads;
  MaybeReevaluate(id);
}

void ExactCachingSystem::MaybeReevaluate(int id) {
  ValueState& st = state_[static_cast<size_t>(id)];
  if (st.reads + st.writes < params_.reevaluation_x) return;

  double cnc = static_cast<double>(st.reads) * params_.costs.cqr;
  double cc = static_cast<double>(st.writes) * params_.costs.cvr;
  double benefit = cnc - cc;
  bool want_cached = cc < cnc;
  bool is_cached = cached_.count(id) > 0;

  if (want_cached && !is_cached) {
    if (cached_.size() < params_.cache_capacity) {
      cached_.insert(id);
    } else if (params_.cache_capacity > 0) {
      // Evict the cached value with the lowest benefit, if ours is higher.
      int victim = -1;
      double victim_benefit = std::numeric_limits<double>::infinity();
      for (int cid : cached_) {
        double b = state_[static_cast<size_t>(cid)].last_benefit;
        if (b < victim_benefit || (b == victim_benefit && cid > victim)) {
          victim = cid;
          victim_benefit = b;
        }
      }
      if (victim >= 0 && victim_benefit < benefit) {
        // The source is notified of the eviction, so it stops pushing
        // updates for the victim immediately.
        cached_.erase(victim);
        cached_.insert(id);
      }
    }
  } else if (!want_cached && is_cached) {
    cached_.erase(id);
  }

  st.last_benefit = benefit;
  st.reads = 0;
  st.writes = 0;
}

}  // namespace apc
