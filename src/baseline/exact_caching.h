#ifndef APC_BASELINE_EXACT_CACHING_H_
#define APC_BASELINE_EXACT_CACHING_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cost_model.h"
#include "data/update_stream.h"
#include "query/aggregate.h"

namespace apc {

/// Parameters of the adaptive exact-caching baseline derived from the
/// replication algorithm of [WJH97] (paper §4.6).
struct ExactCachingParams {
  RefreshCosts costs;
  /// Reevaluate a value's caching decision whenever its read+write counter
  /// reaches x. The paper tunes x per run over roughly [3, 45].
  int reevaluation_x = 10;
  /// Cache capacity χ.
  size_t cache_capacity = 50;
};

/// State-of-the-art adaptive algorithm for deciding whether to cache exact
/// replicas (paper §4.6, after [WJH97]):
///
///  * per value, count reads r and writes w since the last reevaluation;
///  * whenever r + w >= x, compare the projected cost of not caching
///    (Cnc = r·Cqr, every read goes remote) with the projected cost of
///    caching (Cc = w·Cvr, every write is pushed); cache iff Cc < Cnc;
///  * with limited cache space, evict the values with the lowest benefit
///    Cnc − Cc; evictions are reported to the source, which then stops
///    pushing updates (unlike interval caching, this protocol requires
///    eviction notifications).
///
/// Queries over exact replicas read every accessed value: cached values are
/// free, uncached values cost one remote read Cqr each. There is no notion
/// of a precision constraint — every answer is exact.
class ExactCachingSystem {
 public:
  ExactCachingSystem(const ExactCachingParams& params,
                     std::vector<std::unique_ptr<UpdateStream>> streams);

  /// Advances all sources one tick; every write to a cached value costs
  /// Cvr (the push to the cache).
  void Tick(int64_t now);

  /// Advances all sources one tick, counting a write only for sources whose
  /// value actually changed — the trace-replay variant: a SeriesStream
  /// sitting on a flat segment (or past its end) produced no update, so
  /// charging a push for it would overstate the baseline's cost.
  void TickTrace(int64_t now);

  /// Executes a query: reads every value in `source_ids`; each uncached
  /// value incurs a remote read (Cqr). Returns the exact aggregate.
  double ExecuteQuery(const Query& query, int64_t now);

  CostTracker& costs() { return costs_; }
  const CostTracker& costs() const { return costs_; }
  bool IsCached(int id) const { return cached_.count(id) > 0; }
  size_t num_cached() const { return cached_.size(); }
  double value(int id) const;

 private:
  struct ValueState {
    int64_t reads = 0;
    int64_t writes = 0;
    /// Benefit Cnc − Cc computed at the last reevaluation; used as the
    /// eviction priority for cached values.
    double last_benefit = 0.0;
  };

  /// Runs the [WJH97] reevaluation for `id` if its counters reached x.
  void MaybeReevaluate(int id);
  void RecordRead(int id);
  void RecordWrite(int id);

  ExactCachingParams params_;
  std::vector<std::unique_ptr<UpdateStream>> streams_;
  std::vector<ValueState> state_;
  std::unordered_set<int> cached_;
  CostTracker costs_;
};

}  // namespace apc

#endif  // APC_BASELINE_EXACT_CACHING_H_
