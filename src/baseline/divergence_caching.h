#ifndef APC_BASELINE_DIVERGENCE_CACHING_H_
#define APC_BASELINE_DIVERGENCE_CACHING_H_

#include <deque>
#include <vector>

#include "baseline/stale_system.h"

namespace apc {

/// Parameters of the Divergence Caching baseline [HSW94] (paper §4.7).
struct DivergenceCachingParams {
  RefreshCosts costs;
  /// Moving-window size: the cache tracks the k most recent reads of each
  /// value and the source the k most recent writes. The paper (and
  /// [HSW94]'s empirical trials) set k = 23.
  int window_k = 23;
  /// Bound used before enough history accumulates.
  double initial_bound = 1.0;
};

/// Divergence Caching [HSW94]: rather than adjusting precision
/// incrementally, it "continually resets the precision from scratch using
/// detailed projections for data access and update patterns" based on the
/// k most recent reads and writes.
///
/// Layering note: this policy plugs into StaleCacheSystem, which charges
/// refreshes through the shared protocol core's CostTracker
/// (core/cost_model.h) exactly like the interval systems; the projection
/// logic below is what [HSW94] substitutes for the adaptive ProtocolCell
/// width walk that our algorithm (AdaptiveStaleBounds) uses.
///
/// At each refresh of a value this implementation:
///  1. estimates the write rate λw and read rate λr from the moving
///     windows, and the constraint range [δmin, δmax] from the constraints
///     of recent reads;
///  2. evaluates the projected cost rate
///        Ω(g) = Cvr·λw/g + Cqr·λr·P(δ < g)
///     and installs the minimizing divergence window, the interior optimum
///     g* = sqrt(Cvr·λw·(δmax−δmin)/(Cqr·λr)) clamped to [0, δmax] (g = 0
///     degenerates to exact caching: push every update).
///
/// Note the vocabulary of the algorithm is a *finite* divergence window:
/// deciding to stop caching a value altogether (g = ∞) is not among its
/// moves — per the paper (§1.3, §4.6–4.7), subsuming the cache/don't-cache
/// decision is exactly what the adaptive precision-setting algorithm adds
/// over prior work. This also matches the published Figure 14, where the
/// Divergence Caching curve at δavg = 0 sits at push-every-update cost
/// rather than at the cheaper never-cache cost.
class DivergenceCachingBounds : public StaleBoundPolicy {
 public:
  DivergenceCachingBounds(const DivergenceCachingParams& params,
                          int num_values);

  double InitialBound(int id) override;
  double OnRefresh(int id, RefreshType type, int64_t now) override;
  void ObserveWrite(int id, int64_t now) override;
  void ObserveRead(int id, int64_t now, double constraint) override;

  /// Projected-cost minimization for one value given rate and constraint
  /// estimates; returns a bound in [0, delta_max]. Exposed for unit
  /// testing.
  static double OptimalBound(const RefreshCosts& costs, double write_rate,
                             double read_rate, double delta_min,
                             double delta_max);

 private:
  struct History {
    std::deque<int64_t> write_times;
    std::deque<int64_t> read_times;
    std::deque<double> read_constraints;
  };

  /// Events-per-tick estimate from a timestamp window; 0 when the window
  /// is too short to tell.
  static double EstimateRate(const std::deque<int64_t>& times, int64_t now);

  DivergenceCachingParams params_;
  std::vector<History> history_;
};

}  // namespace apc

#endif  // APC_BASELINE_DIVERGENCE_CACHING_H_
