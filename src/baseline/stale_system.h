#ifndef APC_BASELINE_STALE_SYSTEM_H_
#define APC_BASELINE_STALE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/adaptive_policy.h"
#include "core/cost_model.h"
#include "core/protocol_cell.h"
#include "util/rng.h"

namespace apc {

/// Strategy that sets the divergence bound (maximum number of source
/// updates a cached copy may lag behind) in the stale-value caching setting
/// of [HSW94] / paper §4.7. Implemented by our stale-adapted algorithm and
/// by the Divergence Caching baseline.
class StaleBoundPolicy {
 public:
  virtual ~StaleBoundPolicy() = default;

  /// Bound assigned to every value before the first refresh.
  virtual double InitialBound(int id) = 0;

  /// Called when value `id` is refreshed (either kind); returns the new
  /// effective bound: 0 = exact caching (push every update), infinity =
  /// effectively uncached (never push, every read goes remote).
  virtual double OnRefresh(int id, RefreshType type, int64_t now) = 0;

  /// Observation hooks; Divergence Caching monitors read/write history,
  /// our algorithm ignores them.
  virtual void ObserveWrite(int id, int64_t now);
  virtual void ObserveRead(int id, int64_t now, double constraint);
};

/// Our algorithm specialized to stale-value approximations (paper §4.7):
/// per-value multiplicative bound adjustment with cost factor
/// theta' = Cvr/Cqr, thresholds in units of updates. Each value's state is
/// a ProtocolCell — the same per-value state machine the interval systems
/// drive (core/protocol_cell.h) — with the retained raw width serving as
/// the raw divergence bound; the cell's shipped-interval state is unused
/// here because stale-value approximations carry no interval.
class AdaptiveStaleBounds : public StaleBoundPolicy {
 public:
  /// `params` should already carry theta_multiplier = 1 (see
  /// StalePolicyParams::ToAdaptiveParams).
  AdaptiveStaleBounds(const AdaptivePolicyParams& params, int num_values,
                      uint64_t seed);

  double InitialBound(int id) override;
  double OnRefresh(int id, RefreshType type, int64_t now) override;

  double raw_bound(int id) const {
    return cells_.at(static_cast<size_t>(id)).raw_width();
  }

 private:
  std::vector<ProtocolCell> cells_;
};

/// Configuration of the stale-value caching simulator.
struct StaleSystemConfig {
  RefreshCosts costs;
  int num_sources = 50;
  /// Probability that a source receives an update in a given tick (the
  /// paper's synthetic experiments update every time unit: 1.0).
  double update_probability = 1.0;
  /// Optional bursty write regimes: when > 0, each source alternates
  /// between the base regime (update_probability per tick) and a burst
  /// regime (burst_update_probability per tick), with exponentially
  /// distributed phase durations of mean regime_mean_seconds. This mirrors
  /// the bursty sources of the paper's network-monitoring evaluation;
  /// projection-based baselines must then chase a moving write rate.
  double burst_update_probability = 0.0;
  double regime_mean_seconds = 300.0;
};

/// Discrete-time simulator of the Divergence Caching environment: each
/// cached copy carries an update counter and a bound; exceeding the bound
/// triggers a push (cost Cvr); a query whose staleness constraint is
/// tighter than the bound triggers a pull (cost Cqr). Both refresh kinds
/// reset the counter and let the policy reset the bound.
class StaleCacheSystem {
 public:
  StaleCacheSystem(const StaleSystemConfig& config,
                   std::unique_ptr<StaleBoundPolicy> policy, uint64_t seed);

  /// Applies one tick of updates across all sources.
  void Tick(int64_t now);

  /// Applies one update to each id in `ids` — the trace-driven variant of
  /// Tick: the caller (a recorded trace or scenario script) decides which
  /// sources moved this tick instead of the simulator's own Bernoulli
  /// draws. Unknown ids are ignored.
  void ApplyUpdates(const std::vector<int>& ids, int64_t now);

  /// Reads every id in `ids` under staleness constraint `constraint`
  /// (maximum acceptable divergence bound, in updates).
  void ExecuteRead(const std::vector<int>& ids, double constraint,
                   int64_t now);

  CostTracker& costs() { return costs_; }
  const CostTracker& costs() const { return costs_; }
  /// True when source `id` is currently in its burst regime (always false
  /// without burst configuration). Used by workload generators that model
  /// activity-following readers.
  bool InBurst(int id) const {
    return config_.burst_update_probability > 0.0 &&
           in_burst_.at(static_cast<size_t>(id));
  }
  double bound(int id) const { return bounds_.at(static_cast<size_t>(id)); }
  int64_t pending_updates(int id) const {
    return counters_.at(static_cast<size_t>(id));
  }
  StaleBoundPolicy* policy() { return policy_.get(); }

 private:
  /// Advances source `id`'s write-rate regime and returns the update
  /// probability in force this tick.
  double CurrentUpdateProbability(int id);

  StaleSystemConfig config_;
  std::unique_ptr<StaleBoundPolicy> policy_;
  std::vector<double> bounds_;
  std::vector<int64_t> counters_;
  std::vector<bool> in_burst_;
  std::vector<double> regime_left_;
  CostTracker costs_;
  Rng rng_;
};

}  // namespace apc

#endif  // APC_BASELINE_STALE_SYSTEM_H_
