#include "baseline/divergence_caching.h"

#include <algorithm>
#include <cmath>

#include "util/mathutil.h"

namespace apc {

DivergenceCachingBounds::DivergenceCachingBounds(
    const DivergenceCachingParams& params, int num_values)
    : params_(params), history_(static_cast<size_t>(num_values)) {}

double DivergenceCachingBounds::InitialBound(int /*id*/) {
  return params_.initial_bound;
}

void DivergenceCachingBounds::ObserveWrite(int id, int64_t now) {
  History& h = history_[static_cast<size_t>(id)];
  h.write_times.push_back(now);
  while (static_cast<int>(h.write_times.size()) > params_.window_k) {
    h.write_times.pop_front();
  }
}

void DivergenceCachingBounds::ObserveRead(int id, int64_t now,
                                          double constraint) {
  History& h = history_[static_cast<size_t>(id)];
  h.read_times.push_back(now);
  h.read_constraints.push_back(constraint);
  while (static_cast<int>(h.read_times.size()) > params_.window_k) {
    h.read_times.pop_front();
    h.read_constraints.pop_front();
  }
}

double DivergenceCachingBounds::EstimateRate(
    const std::deque<int64_t>& times, int64_t now) {
  if (times.size() < 2) return 0.0;
  int64_t span = now - times.front();
  if (span <= 0) span = 1;
  return static_cast<double>(times.size()) / static_cast<double>(span);
}

double DivergenceCachingBounds::OptimalBound(const RefreshCosts& costs,
                                             double write_rate,
                                             double read_rate,
                                             double delta_min,
                                             double delta_max) {
  // Degenerate projections. With no observed writes any bound is free of
  // pushes; keep the copy exact. A constraint window with no staleness
  // slack (delta_max == 0) forces exact caching outright. With no observed
  // reads the widest permitted window minimizes pushes.
  if (write_rate <= 0.0 || delta_max <= 0.0) return 0.0;
  if (read_rate <= 0.0) return delta_max;

  auto projected_cost = [&](double g) {
    if (g <= 0.0) return costs.cvr * write_rate;
    double p_refresh;
    if (delta_max > delta_min) {
      p_refresh = std::clamp((g - delta_min) / (delta_max - delta_min), 0.0,
                             1.0);
    } else {
      // All constraints equal delta_max: a bound up to it never fails.
      p_refresh = (g > delta_max) ? 1.0 : 0.0;
    }
    return costs.cvr * write_rate / g + costs.cqr * read_rate * p_refresh;
  };

  // Candidates: exact caching (g = 0), the interior stationary point of
  // the projected cost, and the widest window delta_max. The installed
  // bound is always finite — see the class comment: "stop caching this
  // value" is not in the algorithm's vocabulary.
  double interior;
  if (delta_max > delta_min) {
    interior = std::sqrt(costs.cvr * write_rate * (delta_max - delta_min) /
                         (costs.cqr * read_rate));
    interior = std::clamp(interior, std::max(delta_min, 1e-9), delta_max);
  } else {
    interior = delta_max;
  }

  double best_g = 0.0;
  double best_cost = projected_cost(0.0);
  for (double g : {interior, delta_max}) {
    double cost = projected_cost(g);
    if (cost < best_cost) {
      best_g = g;
      best_cost = cost;
    }
  }
  return best_g;
}

double DivergenceCachingBounds::OnRefresh(int id, RefreshType /*type*/,
                                          int64_t now) {
  const History& h = history_[static_cast<size_t>(id)];
  double write_rate = EstimateRate(h.write_times, now);
  double read_rate = EstimateRate(h.read_times, now);
  if (h.write_times.size() < 2 && h.read_times.size() < 2) {
    return params_.initial_bound;  // not enough history to project
  }
  double delta_min = kInfinity;
  double delta_max = 0.0;
  for (double c : h.read_constraints) {
    delta_min = std::min(delta_min, c);
    delta_max = std::max(delta_max, c);
  }
  if (h.read_constraints.empty()) {
    delta_min = 0.0;
    delta_max = 0.0;
  }
  return OptimalBound(params_.costs, write_rate, read_rate, delta_min,
                      delta_max);
}

}  // namespace apc
