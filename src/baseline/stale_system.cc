#include "baseline/stale_system.h"

namespace apc {

void StaleBoundPolicy::ObserveWrite(int /*id*/, int64_t /*now*/) {}
void StaleBoundPolicy::ObserveRead(int /*id*/, int64_t /*now*/,
                                   double /*constraint*/) {}

AdaptiveStaleBounds::AdaptiveStaleBounds(const AdaptivePolicyParams& params,
                                         int num_values, uint64_t seed) {
  cells_.reserve(static_cast<size_t>(num_values));
  Rng root(seed);
  for (int i = 0; i < num_values; ++i) {
    cells_.emplace_back(std::make_unique<AdaptivePolicy>(params, root.Fork()));
  }
}

double AdaptiveStaleBounds::InitialBound(int id) {
  return cells_.at(static_cast<size_t>(id)).EffectiveWidth();
}

double AdaptiveStaleBounds::OnRefresh(int id, RefreshType type,
                                      int64_t now) {
  ProtocolCell& cell = cells_.at(static_cast<size_t>(id));
  cell.AdvanceWidth(type, /*escaped_above=*/false, now);
  return cell.EffectiveWidth();
}

StaleCacheSystem::StaleCacheSystem(const StaleSystemConfig& config,
                                   std::unique_ptr<StaleBoundPolicy> policy,
                                   uint64_t seed)
    : config_(config),
      policy_(std::move(policy)),
      costs_(config.costs),
      rng_(seed) {
  bounds_.resize(static_cast<size_t>(config_.num_sources));
  counters_.assign(static_cast<size_t>(config_.num_sources), 0);
  in_burst_.assign(static_cast<size_t>(config_.num_sources), false);
  regime_left_.assign(static_cast<size_t>(config_.num_sources), 0.0);
  for (int id = 0; id < config_.num_sources; ++id) {
    bounds_[static_cast<size_t>(id)] = policy_->InitialBound(id);
    if (config_.burst_update_probability > 0.0) {
      in_burst_[static_cast<size_t>(id)] = rng_.Bernoulli(0.5);
      regime_left_[static_cast<size_t>(id)] =
          rng_.Exponential(1.0 / config_.regime_mean_seconds);
    }
  }
}

double StaleCacheSystem::CurrentUpdateProbability(int id) {
  if (config_.burst_update_probability <= 0.0) {
    return config_.update_probability;
  }
  auto idx = static_cast<size_t>(id);
  regime_left_[idx] -= 1.0;
  if (regime_left_[idx] <= 0.0) {
    in_burst_[idx] = !in_burst_[idx];
    regime_left_[idx] = rng_.Exponential(1.0 / config_.regime_mean_seconds);
  }
  return in_burst_[idx] ? config_.burst_update_probability
                        : config_.update_probability;
}

void StaleCacheSystem::Tick(int64_t now) {
  for (int id = 0; id < config_.num_sources; ++id) {
    double p = CurrentUpdateProbability(id);
    if (p < 1.0 && !rng_.Bernoulli(p)) continue;
    policy_->ObserveWrite(id, now);
    int64_t& counter = counters_[static_cast<size_t>(id)];
    ++counter;
    double bound = bounds_[static_cast<size_t>(id)];
    // The copy promises to lag at most `bound` updates; one more update
    // would break the promise, so the source pushes (value-initiated).
    if (static_cast<double>(counter) > bound) {
      costs_.RecordValueRefresh();
      counter = 0;
      bounds_[static_cast<size_t>(id)] =
          policy_->OnRefresh(id, RefreshType::kValueInitiated, now);
    }
  }
}

void StaleCacheSystem::ApplyUpdates(const std::vector<int>& ids,
                                    int64_t now) {
  for (int id : ids) {
    if (id < 0 || id >= config_.num_sources) continue;
    policy_->ObserveWrite(id, now);
    int64_t& counter = counters_[static_cast<size_t>(id)];
    ++counter;
    double bound = bounds_[static_cast<size_t>(id)];
    if (static_cast<double>(counter) > bound) {
      costs_.RecordValueRefresh();
      counter = 0;
      bounds_[static_cast<size_t>(id)] =
          policy_->OnRefresh(id, RefreshType::kValueInitiated, now);
    }
  }
}

void StaleCacheSystem::ExecuteRead(const std::vector<int>& ids,
                                   double constraint, int64_t now) {
  for (int id : ids) {
    policy_->ObserveRead(id, now, constraint);
    double bound = bounds_[static_cast<size_t>(id)];
    // The query needs divergence at most `constraint`; the cached copy only
    // guarantees `bound`. A weaker guarantee forces a remote read.
    if (bound > constraint) {
      costs_.RecordQueryRefresh();
      counters_[static_cast<size_t>(id)] = 0;
      bounds_[static_cast<size_t>(id)] =
          policy_->OnRefresh(id, RefreshType::kQueryInitiated, now);
    }
  }
}

}  // namespace apc
