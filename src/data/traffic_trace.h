#ifndef APC_DATA_TRAFFIC_TRACE_H_
#define APC_DATA_TRAFFIC_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace apc {

/// A set of per-host value series sampled once per second. hosts[h][t] is
/// the traffic level (bytes/second, smoothed) of host h at second t.
struct Trace {
  std::vector<std::vector<double>> hosts;

  size_t num_hosts() const { return hosts.size(); }
  size_t duration() const { return hosts.empty() ? 0 : hosts[0].size(); }
};

/// Synthetic stand-in for the Paxson/Floyd wide-area traffic traces used in
/// the paper's §4.3 (publicly distributed then, not shipped here).
///
/// The generator superposes heavy-tailed on/off flows per host — the
/// standard explanation of the self-similarity [PF95] documents — then
/// applies the same preprocessing as the paper: a 60-second moving-window
/// average sampled every second, values clamped to [0, 5.2e6] bytes/s.
/// Hosts additionally alternate between long active and idle regimes so
/// that, as in the paper's Figures 4–5, some hosts "become active after a
/// period of inactivity".
struct TrafficTraceParams {
  int num_hosts = 50;
  /// Trace length in seconds (the paper uses a two-hour window).
  int duration_seconds = 7200;
  /// Concurrent on/off flows superposed per host.
  int flows_per_host = 6;
  /// Pareto shape for ON/OFF durations; 1 < shape < 2 gives the infinite-
  /// variance durations that produce long-range dependence.
  double duration_shape = 1.5;
  /// Minimum ON and OFF durations (seconds).
  double on_min_seconds = 2.0;
  double off_min_seconds = 6.0;
  /// Per-flow transfer rate while ON: Pareto(shape=rate_shape, xm=rate_min),
  /// capped at rate_cap bytes/s.
  double rate_shape = 1.2;
  double rate_min = 5e3;
  double rate_cap = 1.5e6;
  /// Host-level activity regimes (seconds, exponential means).
  double active_mean_seconds = 900.0;
  double idle_mean_seconds = 450.0;
  /// Smoothing window (seconds) and final clamp, matching the paper.
  int smoothing_window_seconds = 60;
  double level_cap = 5.2e6;

  bool IsValid() const;
};

/// Generates a deterministic synthetic trace for the given seed.
Trace GenerateTrafficTrace(const TrafficTraceParams& params, uint64_t seed);

/// Applies an s-second trailing moving average to `series` (the paper's
/// "one minute moving window average ... every second").
std::vector<double> MovingAverage(const std::vector<double>& series,
                                  int window);

/// Returns indices of the `k` hosts with the largest total traffic, most
/// trafficked first — the paper picks "the 50 most heavily trafficked
/// hosts" from the raw trace.
std::vector<size_t> TopHostsByVolume(const Trace& trace, size_t k);

}  // namespace apc

#endif  // APC_DATA_TRAFFIC_TRACE_H_
