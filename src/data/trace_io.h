#ifndef APC_DATA_TRACE_IO_H_
#define APC_DATA_TRACE_IO_H_

#include <string>

#include "data/traffic_trace.h"
#include "util/status.h"

namespace apc {

/// Writes a trace as CSV: one row per second, one column per host. Lets
/// users export the synthetic trace or import a real one (e.g. actual
/// network monitoring data) in its place.
Status SaveTraceCsv(const Trace& trace, const std::string& path);

/// Reads a trace written by SaveTraceCsv (or any rectangular numeric CSV
/// with the same layout). Returns Corruption on ragged rows or non-numeric
/// fields, IOError when the file cannot be opened, InvalidArgument on an
/// empty file.
Result<Trace> LoadTraceCsv(const std::string& path);

}  // namespace apc

#endif  // APC_DATA_TRACE_IO_H_
