#ifndef APC_DATA_TRACE_IO_H_
#define APC_DATA_TRACE_IO_H_

#include <string>

#include "data/traffic_trace.h"
#include "util/status.h"

namespace apc {

/// Header line SaveTraceCsv writes: `# apcache-trace-v1 hosts=H duration=T`.
/// Loaders use it to detect truncation (a file cut at a row boundary is
/// otherwise a perfectly rectangular, shorter trace).
extern const char kTraceCsvMagic[];

/// Writes a trace as CSV: a dimension header comment, then one row per
/// second, one column per host. Values are written with max_digits10
/// significant digits so a loaded trace reproduces the saved doubles
/// bit-for-bit — the property the trace-replay parity harness relies on.
/// Lets users export the synthetic trace or import a real one (e.g. actual
/// network monitoring data) in its place.
Status SaveTraceCsv(const Trace& trace, const std::string& path);

/// Reads a trace written by SaveTraceCsv (or any rectangular numeric CSV
/// with the same layout; the header is optional so hand-made files load
/// too). Returns Corruption on ragged rows, non-numeric fields, or a
/// header whose declared dimensions disagree with the rows actually
/// present (a truncated or padded file); IOError when the file cannot be
/// opened; InvalidArgument on an empty file.
Result<Trace> LoadTraceCsv(const std::string& path);

}  // namespace apc

#endif  // APC_DATA_TRACE_IO_H_
