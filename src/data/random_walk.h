#ifndef APC_DATA_RANDOM_WALK_H_
#define APC_DATA_RANDOM_WALK_H_

#include <memory>
#include <vector>

#include "data/update_stream.h"
#include "util/rng.h"

namespace apc {

/// Configuration of a one-dimensional random walk. The paper's synthetic
/// experiments use an unbiased walk whose per-second step is sampled
/// uniformly from [0.5, 1.5] (§4.2); §4.5 additionally studies biased walks
/// where upward moves are much more likely than downward ones.
struct RandomWalkParams {
  double start = 0.0;
  double step_lo = 0.5;
  double step_hi = 1.5;
  /// Probability that a step moves up; 0.5 is the unbiased walk.
  double up_probability = 0.5;

  bool IsValid() const {
    return step_lo >= 0.0 && step_hi >= step_lo && up_probability >= 0.0 &&
           up_probability <= 1.0;
  }
};

/// Random-walk update stream: V += ±U[step_lo, step_hi] each tick.
class RandomWalkStream : public UpdateStream {
 public:
  RandomWalkStream(const RandomWalkParams& params, uint64_t seed);

  double Next() override;
  double current() const override { return value_; }

  const RandomWalkParams& params() const { return params_; }

 private:
  RandomWalkParams params_;
  Rng rng_;
  double value_;
};

/// Decorator that tees every value an inner stream produces into a
/// recorded series. recorded() starts at the inner stream's value at
/// construction time and gains one entry per Next(), so recorded()[t] is
/// the value visible at time t — exactly one Trace host row, and feeding
/// it back through a SeriesStream replays the run value-for-value.
class RecordingStream : public UpdateStream {
 public:
  explicit RecordingStream(std::unique_ptr<UpdateStream> inner);

  double Next() override;
  double current() const override { return inner_->current(); }

  const std::vector<double>& recorded() const { return recorded_; }

 private:
  std::unique_ptr<UpdateStream> inner_;
  std::vector<double> recorded_;
};

/// Plays back a precomputed series: current() starts at series[0] (the
/// value at time 0) and the i-th Next() returns series[i]. After the series
/// is exhausted the last value repeats (sources never disappear mid-run).
class SeriesStream : public UpdateStream {
 public:
  explicit SeriesStream(std::vector<double> series);

  double Next() override;
  double current() const override { return value_; }

  size_t position() const { return pos_; }

 private:
  std::vector<double> series_;
  size_t pos_ = 0;
  double value_;
};

}  // namespace apc

#endif  // APC_DATA_RANDOM_WALK_H_
