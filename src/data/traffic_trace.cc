#include "data/traffic_trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace apc {

bool TrafficTraceParams::IsValid() const {
  return num_hosts > 0 && duration_seconds > 0 && flows_per_host > 0 &&
         duration_shape > 1.0 && on_min_seconds > 0.0 &&
         off_min_seconds > 0.0 && rate_shape > 1.0 && rate_min > 0.0 &&
         rate_cap >= rate_min && active_mean_seconds > 0.0 &&
         idle_mean_seconds > 0.0 && smoothing_window_seconds > 0 &&
         level_cap > 0.0;
}

namespace {

/// One on/off flow: alternates Pareto-distributed ON bursts (at a per-burst
/// rate) with Pareto-distributed OFF silences.
class OnOffFlow {
 public:
  OnOffFlow(const TrafficTraceParams& p, Rng* rng) : p_(p), rng_(rng) {
    // Start in a random phase so flows are not synchronized at t=0.
    on_ = rng_->Bernoulli(0.5);
    remaining_ = SampleDuration();
    rate_ = on_ ? SampleRate() : 0.0;
  }

  /// Rate contributed during the next one-second tick.
  double Tick() {
    double rate = on_ ? rate_ : 0.0;
    remaining_ -= 1.0;
    if (remaining_ <= 0.0) {
      on_ = !on_;
      remaining_ = SampleDuration();
      rate_ = on_ ? SampleRate() : 0.0;
    }
    return rate;
  }

 private:
  double SampleDuration() {
    double min = on_ ? p_.on_min_seconds : p_.off_min_seconds;
    return rng_->Pareto(p_.duration_shape, min);
  }
  double SampleRate() {
    return std::min(rng_->Pareto(p_.rate_shape, p_.rate_min), p_.rate_cap);
  }

  const TrafficTraceParams& p_;
  Rng* rng_;
  bool on_;
  double remaining_;
  double rate_;
};

}  // namespace

std::vector<double> MovingAverage(const std::vector<double>& series,
                                  int window) {
  std::vector<double> out(series.size(), 0.0);
  if (window <= 1) return series;
  double sum = 0.0;
  for (size_t t = 0; t < series.size(); ++t) {
    sum += series[t];
    if (t >= static_cast<size_t>(window)) sum -= series[t - window];
    size_t n = std::min(t + 1, static_cast<size_t>(window));
    out[t] = sum / static_cast<double>(n);
  }
  return out;
}

Trace GenerateTrafficTrace(const TrafficTraceParams& params, uint64_t seed) {
  Trace trace;
  if (!params.IsValid()) return trace;
  Rng root(seed);
  trace.hosts.reserve(static_cast<size_t>(params.num_hosts));

  for (int h = 0; h < params.num_hosts; ++h) {
    Rng rng = root.Fork();
    std::vector<OnOffFlow> flows;
    flows.reserve(static_cast<size_t>(params.flows_per_host));
    for (int f = 0; f < params.flows_per_host; ++f) {
      flows.emplace_back(params, &rng);
    }

    // Host-level regime switching: long active phases interleaved with
    // idle phases during which the host sends (almost) nothing.
    bool active = rng.Bernoulli(0.7);
    double regime_left = rng.Exponential(
        1.0 / (active ? params.active_mean_seconds
                      : params.idle_mean_seconds));

    std::vector<double> raw(static_cast<size_t>(params.duration_seconds));
    for (int t = 0; t < params.duration_seconds; ++t) {
      double level = 0.0;
      for (auto& flow : flows) level += flow.Tick();
      if (!active) level = 0.0;  // idle hosts send nothing, exactly
      raw[static_cast<size_t>(t)] = std::min(level, params.level_cap);
      regime_left -= 1.0;
      if (regime_left <= 0.0) {
        active = !active;
        regime_left = rng.Exponential(
            1.0 / (active ? params.active_mean_seconds
                          : params.idle_mean_seconds));
      }
    }

    std::vector<double> smoothed =
        MovingAverage(raw, params.smoothing_window_seconds);
    // Traffic levels are integer byte counts: quantize so that idle hosts
    // (and slow-moving averages) form exactly-constant plateaus, as in the
    // real counter-derived traces -- this is what makes exact caching of
    // quiet hosts worthwhile for the baselines of paper SS4.6.
    for (double& v : smoothed) {
      v = std::round(std::min(v, params.level_cap));
    }
    trace.hosts.push_back(std::move(smoothed));
  }
  return trace;
}

std::vector<size_t> TopHostsByVolume(const Trace& trace, size_t k) {
  std::vector<std::pair<double, size_t>> volume;
  volume.reserve(trace.hosts.size());
  for (size_t h = 0; h < trace.hosts.size(); ++h) {
    double total = std::accumulate(trace.hosts[h].begin(),
                                   trace.hosts[h].end(), 0.0);
    volume.emplace_back(total, h);
  }
  std::sort(volume.begin(), volume.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<size_t> out;
  out.reserve(std::min(k, volume.size()));
  for (size_t i = 0; i < volume.size() && i < k; ++i) {
    out.push_back(volume[i].second);
  }
  return out;
}

}  // namespace apc
