#include "data/random_walk.h"

namespace apc {

RandomWalkStream::RandomWalkStream(const RandomWalkParams& params,
                                   uint64_t seed)
    : params_(params), rng_(seed), value_(params.start) {}

double RandomWalkStream::Next() {
  double step = rng_.Uniform(params_.step_lo, params_.step_hi);
  if (!rng_.Bernoulli(params_.up_probability)) step = -step;
  value_ += step;
  return value_;
}

RecordingStream::RecordingStream(std::unique_ptr<UpdateStream> inner)
    : inner_(std::move(inner)) {
  recorded_.push_back(inner_->current());
}

double RecordingStream::Next() {
  double value = inner_->Next();
  recorded_.push_back(value);
  return value;
}

SeriesStream::SeriesStream(std::vector<double> series)
    : series_(std::move(series)),
      pos_(series_.empty() ? 0 : 1),
      value_(series_.empty() ? 0.0 : series_.front()) {}

double SeriesStream::Next() {
  if (pos_ < series_.size()) {
    value_ = series_[pos_];
    ++pos_;
  }
  return value_;
}

}  // namespace apc
