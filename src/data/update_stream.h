#ifndef APC_DATA_UPDATE_STREAM_H_
#define APC_DATA_UPDATE_STREAM_H_

#include <memory>

namespace apc {

/// A stream of values for one source datum, advanced once per simulation
/// tick (the paper's synthetic experiments update every time unit; trace
/// playback reproduces recorded timing by embedding it in the series).
class UpdateStream {
 public:
  virtual ~UpdateStream() = default;

  /// Advances one tick and returns the new exact value.
  virtual double Next() = 0;

  /// The value produced by the most recent Next() (or the initial value
  /// before the first call).
  virtual double current() const = 0;
};

}  // namespace apc

#endif  // APC_DATA_UPDATE_STREAM_H_
