#include "data/trace_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace apc {

Status SaveTraceCsv(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  size_t duration = trace.duration();
  for (size_t t = 0; t < duration; ++t) {
    for (size_t h = 0; h < trace.hosts.size(); ++h) {
      if (h > 0) out << ',';
      out << trace.hosts[h][t];
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<Trace> LoadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || errno == ERANGE) {
        return Status::Corruption("non-numeric field '" + field +
                                  "' at line " + std::to_string(line_no));
      }
      row.push_back(v);
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      return Status::Corruption("ragged row at line " +
                                std::to_string(line_no));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("empty trace file: " + path);
  }

  Trace trace;
  size_t num_hosts = rows.front().size();
  trace.hosts.assign(num_hosts, std::vector<double>(rows.size()));
  for (size_t t = 0; t < rows.size(); ++t) {
    for (size_t h = 0; h < num_hosts; ++h) {
      trace.hosts[h][t] = rows[t][h];
    }
  }
  return trace;
}

}  // namespace apc
