#include "data/trace_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace apc {

const char kTraceCsvMagic[] = "# apcache-trace-v1";

namespace {

/// Parses "hosts=H duration=T" from the header tail. Returns false on any
/// malformed field (the caller reports Corruption).
bool ParseHeader(const std::string& line, size_t* hosts, size_t* duration) {
  std::stringstream ss(line.substr(std::strlen(kTraceCsvMagic)));
  std::string token;
  bool saw_hosts = false;
  bool saw_duration = false;
  while (ss >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) return false;
    std::string key = token.substr(0, eq);
    char* end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(token.c_str() + eq + 1, &end, 10);
    if (end == token.c_str() + eq + 1 || *end != '\0' || errno == ERANGE) {
      return false;
    }
    if (key == "hosts") {
      *hosts = static_cast<size_t>(v);
      saw_hosts = true;
    } else if (key == "duration") {
      *duration = static_cast<size_t>(v);
      saw_duration = true;
    } else {
      return false;
    }
  }
  return saw_hosts && saw_duration;
}

}  // namespace

Status SaveTraceCsv(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  size_t duration = trace.duration();
  out << kTraceCsvMagic << " hosts=" << trace.hosts.size()
      << " duration=" << duration << '\n';
  // max_digits10: enough decimal digits that strtod recovers every double
  // bit-for-bit, which is what makes save/load a true round trip.
  out.precision(std::numeric_limits<double>::max_digits10);
  for (size_t t = 0; t < duration; ++t) {
    for (size_t h = 0; h < trace.hosts.size(); ++h) {
      if (h > 0) out << ',';
      out << trace.hosts[h][t];
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<Trace> LoadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  size_t line_no = 0;
  bool have_header = false;
  size_t header_hosts = 0;
  size_t header_duration = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.compare(0, std::strlen(kTraceCsvMagic), kTraceCsvMagic) == 0) {
      if (have_header || line_no != 1 ||
          !ParseHeader(line, &header_hosts, &header_duration)) {
        return Status::Corruption("malformed trace header at line " +
                                  std::to_string(line_no));
      }
      have_header = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;  // comments are free-form
    std::vector<double> row;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || errno == ERANGE) {
        return Status::Corruption("non-numeric field '" + field +
                                  "' at line " + std::to_string(line_no));
      }
      row.push_back(v);
    }
    if (!rows.empty() && row.size() != rows.front().size()) {
      return Status::Corruption("ragged row at line " +
                                std::to_string(line_no));
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("empty trace file: " + path);
  }
  if (have_header) {
    // The header is what catches truncation at a row boundary — without it
    // a cut file is just a shorter (still rectangular) trace.
    if (rows.front().size() != header_hosts || rows.size() != header_duration) {
      return Status::Corruption(
          "trace dimensions " + std::to_string(rows.front().size()) + "x" +
          std::to_string(rows.size()) + " disagree with header " +
          std::to_string(header_hosts) + "x" +
          std::to_string(header_duration) + " (truncated file?): " + path);
    }
  }

  Trace trace;
  size_t num_hosts = rows.front().size();
  trace.hosts.assign(num_hosts, std::vector<double>(rows.size()));
  for (size_t t = 0; t < rows.size(); ++t) {
    for (size_t h = 0; h < num_hosts; ++h) {
      trace.hosts[h][t] = rows[t][h];
    }
  }
  return trace;
}

}  // namespace apc
