#ifndef APC_HIERARCHY_HIERARCHY_H_
#define APC_HIERARCHY_HIERARCHY_H_

#include <memory>
#include <vector>

#include "core/adaptive_policy.h"
#include "core/cost_model.h"
#include "data/update_stream.h"

namespace apc {

/// Binds a tier's adaptive-policy parameters to the link its refreshes
/// cross: cvr/cqr are overwritten from the link costs and the cost factor
/// uses the interval model's theta = 2·Cvr/Cqr. Shared by the sequential
/// HierarchicalSystem and the concurrent TieredEngine so their lockstep
/// parity is structural, not two copies kept identical by hand.
AdaptivePolicyParams BindTierCosts(AdaptivePolicyParams params,
                                   const RefreshCosts& costs);

/// The derived-tier interval construction (paper §5): width
/// max(effective_width, parent width) centered on the parent interval,
/// then hulled with the parent so containment (A_derived ⊇ A_parent) is
/// exact under floating-point rounding. The one definition behind both
/// HierarchicalSystem::RefreshEdge and TieredEngine's derived refreshes.
Interval DerivedHull(double effective_width, const Interval& parent);

/// Multi-level approximate caching — the extension sketched in the paper's
/// future work (§5): "each data object resides on one source and there is
/// a hierarchy of caches ... the precision of an approximation in one
/// cache may affect the precision of derived approximations in other
/// caches in the hierarchy."
///
/// Topology: each value lives on one source; a single regional (L1) cache
/// holds an interval per value, refreshed over the expensive WAN link; a
/// set of edge (L2) caches each hold a derived interval per value,
/// refreshed from L1 over the cheap LAN link. Queries arrive at edges.
///
/// Derived-precision invariant: an edge interval is valid only because it
/// contains the regional interval (the edge never sees the exact value
/// outside of escalated reads), so every shipped edge interval satisfies
/// A_edge ⊇ A_regional — an edge can never be more precise than its
/// parent. Width setting at both levels uses the paper's adaptive
/// algorithm, with the cost factor of the link the refresh crosses.
struct HierarchyConfig {
  int num_sources = 50;
  int num_edges = 4;
  /// Costs on the source <-> regional link (WAN: expensive).
  RefreshCosts wan{4.0, 8.0};
  /// Costs on the regional <-> edge link (LAN: cheap).
  RefreshCosts lan{1.0, 2.0};
  /// Adaptivity and thresholds for the regional widths (source policy) and
  /// the per-edge widths. cvr/cqr inside are overwritten from wan/lan.
  AdaptivePolicyParams regional_policy;
  AdaptivePolicyParams edge_policy;

  bool IsValid() const {
    return num_sources > 0 && num_edges > 0 && wan.IsValid() &&
           lan.IsValid();
  }
};

/// The two-level protocol engine.
///
/// Pushes (value-initiated): when a source value escapes the regional
/// interval, the source ships a new regional interval (cost wan.cvr), and
/// every edge whose interval no longer contains the new regional interval
/// receives a derived refresh (cost lan.cvr each).
///
/// Reads (query-initiated): a read at an edge with precision constraint δ
/// is served from the edge interval when narrow enough; otherwise it
/// escalates to the regional cache (cost lan.cqr) and, if the regional
/// interval is also too wide, on to the source (cost wan.cqr), exactly the
/// single-level protocol applied per hop.
class HierarchicalSystem {
 public:
  HierarchicalSystem(const HierarchyConfig& config,
                     std::vector<std::unique_ptr<UpdateStream>> streams,
                     uint64_t seed);

  /// Advances all sources one tick and performs the push cascade.
  void Tick(int64_t now);

  /// Reads value `id` at edge `edge` under precision constraint
  /// `constraint`; returns an interval of width <= constraint that
  /// contains the exact value. Performs escalating query-initiated
  /// refreshes as needed.
  Interval Read(int edge, int id, double constraint, int64_t now);

  /// Begins the measured period on both links.
  void BeginMeasurement(int64_t now);
  void EndMeasurement(int64_t now);

  const CostTracker& wan_costs() const { return wan_costs_; }
  const CostTracker& lan_costs() const { return lan_costs_; }
  /// Combined cost per tick over the measured period.
  double TotalCostRate() const;

  Interval regional_interval(int id) const;
  Interval edge_interval(int edge, int id) const;
  double regional_raw_width(int id) const;
  double edge_raw_width(int edge, int id) const;
  double exact_value(int id) const;
  int num_edges() const { return config_.num_edges; }
  int num_sources() const { return config_.num_sources; }

 private:
  struct RegionalEntry {
    std::unique_ptr<UpdateStream> stream;
    std::unique_ptr<AdaptivePolicy> policy;  // lives at the source
    double raw_width = 0.0;
    Interval interval;
  };
  struct EdgeEntry {
    std::unique_ptr<AdaptivePolicy> policy;  // lives at the regional cache
    double raw_width = 0.0;
    Interval interval;
  };

  /// Ships a new regional interval for `id` centered on the exact value
  /// and cascades derived refreshes (LAN pushes) to edges whose interval
  /// no longer contains it. `skip_edge` exempts the edge that triggered an
  /// escalated read — it receives its derived interval in the read reply
  /// it already paid for.
  void RefreshRegional(int id, RefreshType type, int64_t now,
                       int skip_edge = -1);

  /// Ships a derived interval for (edge, id): centered like the regional
  /// interval, width max(edge raw width, regional width) so that it always
  /// contains the regional interval.
  void RefreshEdge(int edge, int id, RefreshType type, int64_t now);

  EdgeEntry& edge_entry(int edge, int id) {
    return edges_[static_cast<size_t>(edge)][static_cast<size_t>(id)];
  }
  const EdgeEntry& edge_entry(int edge, int id) const {
    return edges_[static_cast<size_t>(edge)][static_cast<size_t>(id)];
  }

  HierarchyConfig config_;
  std::vector<RegionalEntry> regional_;
  std::vector<std::vector<EdgeEntry>> edges_;  // [edge][id]
  CostTracker wan_costs_;
  CostTracker lan_costs_;
};

}  // namespace apc

#endif  // APC_HIERARCHY_HIERARCHY_H_
