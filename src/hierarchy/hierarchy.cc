#include "hierarchy/hierarchy.h"

#include <algorithm>

#include "util/rng.h"

namespace apc {

AdaptivePolicyParams BindTierCosts(AdaptivePolicyParams params,
                                   const RefreshCosts& costs) {
  params.cvr = costs.cvr;
  params.cqr = costs.cqr;
  params.theta_multiplier = 2.0;
  return params;
}

Interval DerivedHull(double effective_width, const Interval& parent) {
  double width = std::max(effective_width, parent.Width());
  Interval centered = Interval::Centered(parent.Center(), width);
  return Interval(std::min(centered.lo(), parent.lo()),
                  std::max(centered.hi(), parent.hi()));
}

HierarchicalSystem::HierarchicalSystem(
    const HierarchyConfig& config,
    std::vector<std::unique_ptr<UpdateStream>> streams, uint64_t seed)
    : config_(config), wan_costs_(config.wan), lan_costs_(config.lan) {
  Rng seeder(seed);
  AdaptivePolicyParams regional_params =
      BindTierCosts(config_.regional_policy, config_.wan);
  AdaptivePolicyParams edge_params =
      BindTierCosts(config_.edge_policy, config_.lan);

  regional_.resize(streams.size());
  for (size_t id = 0; id < streams.size(); ++id) {
    RegionalEntry& entry = regional_[id];
    entry.stream = std::move(streams[id]);
    entry.policy = std::make_unique<AdaptivePolicy>(regional_params,
                                                    seeder.NextUint64());
    entry.raw_width = regional_params.initial_width;
    entry.interval = Interval::Centered(
        entry.stream->current(),
        entry.policy->EffectiveWidth(entry.raw_width));
  }

  edges_.resize(static_cast<size_t>(config_.num_edges));
  for (auto& edge : edges_) {
    edge.resize(regional_.size());
    for (size_t id = 0; id < regional_.size(); ++id) {
      EdgeEntry& entry = edge[id];
      entry.policy = std::make_unique<AdaptivePolicy>(edge_params,
                                                      seeder.NextUint64());
      entry.raw_width = edge_params.initial_width;
      entry.interval =
          DerivedHull(entry.policy->EffectiveWidth(entry.raw_width),
                      regional_[id].interval);
    }
  }
}

void HierarchicalSystem::RefreshRegional(int id, RefreshType type,
                                         int64_t now, int skip_edge) {
  if (type == RefreshType::kValueInitiated) {
    wan_costs_.RecordValueRefresh();
  } else {
    wan_costs_.RecordQueryRefresh();
  }
  RegionalEntry& entry = regional_[static_cast<size_t>(id)];
  RefreshContext ctx;
  ctx.type = type;
  ctx.escaped_above = entry.stream->current() > entry.interval.hi();
  ctx.time = now;
  entry.raw_width = entry.policy->NextWidth(entry.raw_width, ctx);
  entry.interval = Interval::Centered(
      entry.stream->current(),
      entry.policy->EffectiveWidth(entry.raw_width));

  // Cascade: derived edge intervals must keep containing the regional
  // one. From an edge's perspective this is always a value-initiated push
  // (its parent's data moved), whatever triggered the regional refresh.
  for (int edge = 0; edge < config_.num_edges; ++edge) {
    if (edge == skip_edge) continue;
    if (!edge_entry(edge, id).interval.Contains(entry.interval)) {
      lan_costs_.RecordValueRefresh();
      RefreshEdge(edge, id, RefreshType::kValueInitiated, now);
    }
  }
}

void HierarchicalSystem::RefreshEdge(int edge, int id, RefreshType type,
                                     int64_t now) {
  EdgeEntry& entry = edge_entry(edge, id);
  const RegionalEntry& parent = regional_[static_cast<size_t>(id)];
  RefreshContext ctx;
  ctx.type = type;
  ctx.time = now;
  entry.raw_width = entry.policy->NextWidth(entry.raw_width, ctx);
  // Derived precision: the edge never learns more than the regional cache
  // knows, so the shipped interval is at least as wide as the parent's.
  entry.interval = DerivedHull(entry.policy->EffectiveWidth(entry.raw_width),
                               parent.interval);
}

void HierarchicalSystem::Tick(int64_t now) {
  for (size_t id = 0; id < regional_.size(); ++id) {
    RegionalEntry& entry = regional_[id];
    double v = entry.stream->Next();
    if (!entry.interval.Contains(v)) {
      RefreshRegional(static_cast<int>(id), RefreshType::kValueInitiated,
                      now);
    }
  }
}

Interval HierarchicalSystem::Read(int edge, int id, double constraint,
                                  int64_t now) {
  EdgeEntry& entry = edge_entry(edge, id);
  if (entry.interval.Width() <= constraint) {
    return entry.interval;  // served locally, free
  }

  // Escalate to the regional cache: the edge pays one LAN read and its
  // width shrinks (query-initiated refresh of the derived approximation).
  lan_costs_.RecordQueryRefresh();
  RegionalEntry& parent = regional_[static_cast<size_t>(id)];
  Interval answer = parent.interval;
  if (answer.Width() > constraint) {
    // Regional interval too wide as well: escalate to the source over the
    // WAN, which returns the exact value and a fresh regional interval.
    RefreshRegional(id, RefreshType::kQueryInitiated, now, edge);
    answer = Interval::Exact(parent.stream->current());
  }
  RefreshEdge(edge, id, RefreshType::kQueryInitiated, now);
  return answer;
}

void HierarchicalSystem::BeginMeasurement(int64_t now) {
  wan_costs_.BeginMeasurement(now);
  lan_costs_.BeginMeasurement(now);
}

void HierarchicalSystem::EndMeasurement(int64_t now) {
  wan_costs_.EndMeasurement(now);
  lan_costs_.EndMeasurement(now);
}

double HierarchicalSystem::TotalCostRate() const {
  return wan_costs_.CostRate() + lan_costs_.CostRate();
}

Interval HierarchicalSystem::regional_interval(int id) const {
  return regional_[static_cast<size_t>(id)].interval;
}

Interval HierarchicalSystem::edge_interval(int edge, int id) const {
  return edge_entry(edge, id).interval;
}

double HierarchicalSystem::regional_raw_width(int id) const {
  return regional_[static_cast<size_t>(id)].raw_width;
}

double HierarchicalSystem::edge_raw_width(int edge, int id) const {
  return edge_entry(edge, id).raw_width;
}

double HierarchicalSystem::exact_value(int id) const {
  return regional_[static_cast<size_t>(id)].stream->current();
}

}  // namespace apc
