#ifndef APC_RUNTIME_PARTITION_H_
#define APC_RUNTIME_PARTITION_H_

#include <cstdint>

namespace apc {
namespace runtime_internal {

/// splitmix64 finalizer: spreads consecutive ids uniformly across shards.
/// The ONE partition function of the runtime — ShardedEngine, TieredEngine,
/// and the UpdateBus ring router must agree on id→shard routing, so it
/// lives here instead of in per-consumer copies. Callers cast their int id
/// to uint64_t first (sign-extending negatives), so every consumer hashes
/// identical bit patterns.
inline uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace runtime_internal
}  // namespace apc

#endif  // APC_RUNTIME_PARTITION_H_
