#ifndef APC_RUNTIME_RUNTIME_UTIL_H_
#define APC_RUNTIME_RUNTIME_UTIL_H_

#include <cstdint>

#include "runtime/partition.h"
#include "runtime/shard.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {
namespace runtime_internal {

/// RAII read lock honoring a ReadLockMode: shared acquisition normally,
/// exclusive in the kExclusive bench baseline. Used by every engine's
/// non-seqlock snapshot paths and observability reads (seqlock-mode
/// observability also lands here — those reads are rare and want a
/// consistent locked view, not an optimistic one).
///
/// To clang's analysis this is a scoped SHARED capability in both modes:
/// the kExclusive branch over-holds (exclusive where shared is claimed),
/// which is safe — read paths never write guarded state under a ReadLock.
class APC_SCOPED_CAPABILITY ReadLock {
 public:
  // The bodies are exempt from analysis (NO_THREAD_SAFETY_ANALYSIS): the
  // kExclusive branch acquires exclusively under a shared-acquire
  // declaration, a mode mix clang cannot type. Callers see the shared
  // contract; the lock-order validator still checks both branches.
  ReadLock(SharedMutex& mu, ReadLockMode mode)
      APC_ACQUIRE_SHARED(mu) APC_NO_THREAD_SAFETY_ANALYSIS
      : mu_(mu), exclusive_(mode == ReadLockMode::kExclusive) {
    if (exclusive_) {
      mu_.lock();
    } else {
      mu_.lock_shared();
    }
  }
  ~ReadLock() APC_RELEASE_GENERIC() APC_NO_THREAD_SAFETY_ANALYSIS {
    if (exclusive_) {
      mu_.unlock();
    } else {
      mu_.unlock_shared();
    }
  }
  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

 private:
  SharedMutex& mu_;
  const bool exclusive_;
};

}  // namespace runtime_internal
}  // namespace apc

#endif  // APC_RUNTIME_RUNTIME_UTIL_H_
