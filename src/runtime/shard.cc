#include "runtime/shard.h"

#include <limits>

namespace apc {

namespace {

/// RAII read lock that honors the bench-baseline downgrade: shared
/// acquisition normally, exclusive when `exclusive` is set.
class ReadLock {
 public:
  ReadLock(std::shared_mutex& mu, bool exclusive)
      : mu_(mu), exclusive_(exclusive) {
    if (exclusive_) {
      mu_.lock();
    } else {
      mu_.lock_shared();
    }
  }
  ~ReadLock() {
    if (exclusive_) {
      mu_.unlock();
    } else {
      mu_.unlock_shared();
    }
  }
  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

 private:
  std::shared_mutex& mu_;
  const bool exclusive_;
};

}  // namespace

Shard::Shard(int index, const SystemConfig& config, size_t capacity,
             uint64_t seed, RuntimeCounters* counters,
             bool exclusive_read_locks)
    : index_(index),
      config_(config),
      counters_(counters),
      exclusive_read_locks_(exclusive_read_locks),
      cache_(capacity),
      costs_(config.costs),
      rng_(seed) {}

bool Shard::AddSource(std::unique_ptr<Source> source) {
  if (source == nullptr) return false;
  bool inserted = by_id_.emplace(source->id(), sources_.size()).second;
  if (!inserted) return false;  // duplicate id: rejected, caller decides
  sources_.push_back(std::move(source));
  return true;
}

Source* Shard::FindSource(int id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : sources_[it->second].get();
}

void Shard::PopulateInitial(int64_t now) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  for (auto& src : sources_) {
    CachedApprox approx = src->InitialApprox(now);
    cache_.Offer(src->id(), approx, src->raw_width());
  }
}

// Keep TickSourceLocked/PullExactLocked in lockstep with CacheSystem::Tick
// and CacheSystem::PullExact (cache/system.cc): the runtime's determinism
// guarantee is that both charge and refresh identically, and the
// SingleShardMatchesCacheSystem* tests fail on any drift.
void Shard::TickSourceLocked(Source* src, int64_t now) {
  src->Tick();
  if (counters_ != nullptr) {
    counters_->updates_applied.fetch_add(1, std::memory_order_relaxed);
  }
  // The source tests validity against the approximation it last shipped —
  // caches never report evictions (paper §2), so refreshes are pushed even
  // for entries the cache has dropped.
  if (!src->NeedsValueRefresh(now)) return;
  costs_.RecordValueRefresh();
  if (counters_ != nullptr) {
    counters_->value_refreshes.fetch_add(1, std::memory_order_relaxed);
  }
  CachedApprox approx = src->Refresh(RefreshType::kValueInitiated, now);
  if (config_.push_loss_probability > 0.0 &&
      rng_.Bernoulli(config_.push_loss_probability)) {
    // The message is lost: the source has already updated its own notion of
    // the shipped interval, but the cache never sees it.
    ++lost_pushes_;
    if (counters_ != nullptr) {
      counters_->lost_pushes.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  cache_.Offer(src->id(), approx, src->raw_width());
}

void Shard::RecordRejectedUpdateLocked() {
  ++rejected_updates_;
  if (counters_ != nullptr) {
    counters_->rejected_updates.fetch_add(1, std::memory_order_relaxed);
  }
}

void Shard::TickAll(int64_t now) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  for (auto& src : sources_) TickSourceLocked(src.get(), now);
}

void Shard::TickSource(int id, int64_t now) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  Source* src = FindSource(id);
  if (src == nullptr) {
    RecordRejectedUpdateLocked();
    return;
  }
  TickSourceLocked(src, now);
}

void Shard::TickSources(const std::vector<std::pair<int, int64_t>>& updates) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  for (const auto& [id, now] : updates) {
    Source* src = FindSource(id);
    if (src == nullptr) {
      RecordRejectedUpdateLocked();
      continue;
    }
    TickSourceLocked(src, now);
  }
}

Interval Shard::VisibleInterval(int id, int64_t now) const {
  ReadLock lock(mu_, exclusive_read_locks_);
  const CacheEntry* entry = cache_.Find(id);
  if (entry == nullptr) return Interval::Unbounded();
  return entry->approx.AtTime(now);
}

void Shard::FillIntervals(const std::vector<ShardSlot>& slots,
                          std::vector<QueryItem>* items, int64_t now) const {
  ReadLock lock(mu_, exclusive_read_locks_);
  for (const auto& [pos, id] : slots) {
    const CacheEntry* entry = cache_.Find(id);
    (*items)[pos].interval =
        entry == nullptr ? Interval::Unbounded() : entry->approx.AtTime(now);
  }
}

double Shard::PullExactLocked(int id, int64_t now) {
  costs_.RecordQueryRefresh();
  if (counters_ != nullptr) {
    counters_->query_refreshes.fetch_add(1, std::memory_order_relaxed);
  }
  Source* src = FindSource(id);
  CachedApprox approx = src->Refresh(RefreshType::kQueryInitiated, now);
  cache_.Offer(id, approx, src->raw_width());
  return src->value();
}

double Shard::PullExact(int id, int64_t now) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (!Owns(id)) {
    if (counters_ != nullptr) {
      counters_->rejected_query_ids.fetch_add(1, std::memory_order_relaxed);
    }
    return std::numeric_limits<double>::quiet_NaN();
  }
  return PullExactLocked(id, now);
}

void Shard::PullExactMany(const std::vector<ShardSlot>& slots,
                          std::vector<QueryItem>* items, int64_t now) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  for (const auto& [pos, id] : slots) {
    if (!Owns(id)) {
      // Keep the snapshot interval; the caller already excluded unowned
      // ids, so this only fires for standalone (engine-less) misuse.
      if (counters_ != nullptr) {
        counters_->rejected_query_ids.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    (*items)[pos].interval = Interval::Exact(PullExactLocked(id, now));
  }
}

int Shard::PullCandidateRun(AggregateKind kind, double constraint,
                            int first_idx, std::vector<QueryItem>* items,
                            int64_t now) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  int idx = first_idx;
  while (idx >= 0) {
    int id = (*items)[static_cast<size_t>(idx)].source_id;
    if (!Owns(id)) return idx;  // next candidate lives on another shard
    Interval exact = Interval::Exact(PullExactLocked(id, now));
    // One charge per distinct id: a duplicated id inside the query becomes
    // exact in every slot, so the elimination never re-selects it.
    for (auto& item : *items) {
      if (item.source_id == id) item.interval = exact;
    }
    idx = kind == AggregateKind::kMax
              ? NextMaxRefreshCandidate(*items, constraint)
              : NextMinRefreshCandidate(*items, constraint);
  }
  return -1;
}

Interval Shard::PointRead(int id, double max_width, int64_t now) {
  // The exclusive baseline does the whole read under its one exclusive
  // acquisition, exactly like the pre-shared_mutex runtime — a second
  // acquisition here would bias the bench comparison in shared's favor.
  if (!exclusive_read_locks_) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const CacheEntry* entry = cache_.Find(id);
    if (entry != nullptr) {
      Interval visible = entry->approx.AtTime(now);
      if (visible.Width() <= max_width) return visible;
    }
  }
  std::lock_guard<std::shared_mutex> lock(mu_);
  // Check (again, in shared mode) under the exclusive lock: a refresh may
  // have landed between the two acquisitions, making the pull (and its
  // Cqr charge) needless.
  const CacheEntry* entry = cache_.Find(id);
  if (entry != nullptr) {
    Interval visible = entry->approx.AtTime(now);
    if (visible.Width() <= max_width) return visible;
  }
  if (!Owns(id)) {
    if (counters_ != nullptr) {
      counters_->rejected_query_ids.fetch_add(1, std::memory_order_relaxed);
    }
    return Interval::Unbounded();
  }
  return Interval::Exact(PullExactLocked(id, now));
}

void Shard::BeginMeasurement(int64_t now) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  costs_.BeginMeasurement(now);
}

void Shard::EndMeasurement(int64_t now) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  costs_.EndMeasurement(now);
}

CostTracker Shard::CostsSnapshot() const {
  ReadLock lock(mu_, exclusive_read_locks_);
  return costs_;
}

std::pair<double, size_t> Shard::RawWidthSum() const {
  ReadLock lock(mu_, exclusive_read_locks_);
  double total = 0.0;
  for (const auto& src : sources_) total += src->raw_width();
  return {total, sources_.size()};
}

size_t Shard::CacheSize() const {
  ReadLock lock(mu_, exclusive_read_locks_);
  return cache_.size();
}

size_t Shard::CacheCapacity() const { return cache_.capacity(); }

int64_t Shard::lost_pushes() const {
  ReadLock lock(mu_, exclusive_read_locks_);
  return lost_pushes_;
}

int64_t Shard::rejected_updates() const {
  ReadLock lock(mu_, exclusive_read_locks_);
  return rejected_updates_;
}

}  // namespace apc
