#include "runtime/shard.h"

#include <algorithm>
#include <limits>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "runtime/runtime_util.h"

namespace apc {

using runtime_internal::ReadLock;

void RuntimeCounters::RegisterWith(obs::MetricsRegistry* registry,
                                   const std::string& prefix) const {
  registry->RegisterCounter(prefix + ".value_refreshes", &value_refreshes);
  registry->RegisterCounter(prefix + ".query_refreshes", &query_refreshes);
  registry->RegisterCounter(prefix + ".lost_pushes", &lost_pushes);
  registry->RegisterCounter(prefix + ".queries_executed", &queries_executed);
  registry->RegisterCounter(prefix + ".updates_applied", &updates_applied);
  registry->RegisterCounter(prefix + ".rejected_updates", &rejected_updates);
  registry->RegisterCounter(prefix + ".rejected_query_ids",
                            &rejected_query_ids);
  registry->RegisterCounter(prefix + ".rejected_sources", &rejected_sources);
  registry->RegisterCounter(prefix + ".rejected_traces", &rejected_traces);
  registry->RegisterCounter("read.seqlock_retries", &seqlock_retries);
  registry->RegisterCounter("read.shared_fallbacks", &shared_fallbacks);
}

Shard::Shard(int index, const SystemConfig& config, size_t capacity,
             uint64_t seed, RuntimeCounters* counters, ReadLockMode read_mode)
    : index_(index),
      counters_(counters),
      read_mode_(read_mode),
      table_({config.costs, capacity, config.push_loss_probability}, seed) {}

bool Shard::AddSource(std::unique_ptr<Source> source) {
  if (source == nullptr) return false;
  // Construction-time only, but the lock keeps the guarded-member
  // contract unconditional (and is charged exactly once per source).
  WriterMutexLock lock(mu_);
  bool inserted = by_id_.emplace(source->id(), sources_.size()).second;
  if (!inserted) return false;  // duplicate id: rejected, caller decides
  table_.Register(source->id());
  sources_.push_back(std::move(source));
  return true;
}

size_t Shard::num_sources() const {
  ReaderMutexLock lock(mu_);
  return sources_.size();
}

SnapshotRead Shard::TryVisibleIntervalNoLock(int id, int64_t now,
                                             Interval* out) const {
  return table_.TryVisibleInterval(id, now, out);
}

Source* Shard::FindSource(int id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : sources_[it->second].get();
}

void Shard::SetChangeSink(IntervalChangeSink* sink) { sink_ = sink; }

void Shard::EnableChangeTracking() {
  WriterMutexLock lock(mu_);
  table_.EnableChangeTracking();
}

void Shard::SetAttribution(obs::AttributionTable* sink) {
  WriterMutexLock lock(mu_);
  table_.SetAttribution(sink);
}

void Shard::PublishChangesLocked(int64_t now) {
  if (sink_ == nullptr || !table_.has_dirty_ids()) return;
  dirty_scratch_.clear();
  table_.DrainDirtyIds(&dirty_scratch_);
  sink_->OnIntervalChanges(dirty_scratch_, now);
}

void Shard::PopulateInitial(int64_t now) {
  WriterMutexLock lock(mu_);
  for (auto& src : sources_) {
    table_.OfferInitial(src->id(), src->cell(), src->value(), now);
  }
  PublishChangesLocked(now);
}

// TickSourceLocked/PullExactLocked drive the SAME ProtocolTable methods as
// CacheSystem::Tick and CacheSystem::PullExact: the runtime's determinism
// guarantee — both charge and refresh identically, pinned by the
// SingleShardMatchesCacheSystem* tests — now holds by construction rather
// than by hand-maintained imitation.
void Shard::TickSourceLocked(Source* src, int64_t now) {
  src->Tick();
  if (counters_ != nullptr) {
    counters_->updates_applied.fetch_add(1, std::memory_order_relaxed);
  }
  ValueTickOutcome outcome =
      table_.OnValueTick(src->id(), src->cell(), src->value(), now);
  if (counters_ != nullptr) {
    if (outcome.refreshed) {
      counters_->value_refreshes.fetch_add(1, std::memory_order_relaxed);
    }
    if (outcome.lost) {
      counters_->lost_pushes.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Shard::RecordSeqlockRetry(int id, int64_t now) const {
  if (counters_ != nullptr) {
    counters_->seqlock_retries.fetch_add(1, std::memory_order_relaxed);
  }
  obs::TraceRecorder::Record(obs::TraceEvent::kSeqlockRetry, id, now);
}

void Shard::RecordSharedFallback(int id, int64_t now,
                                 int64_t torn_count) const {
  if (counters_ != nullptr) {
    counters_->shared_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  obs::TraceRecorder::Record(obs::TraceEvent::kSharedFallback, id, now,
                             torn_count);
}

void Shard::RecordRejectedUpdateLocked(int id, int64_t now) {
  ++rejected_updates_;
  if (counters_ != nullptr) {
    counters_->rejected_updates.fetch_add(1, std::memory_order_relaxed);
  }
  obs::FlightRecorder::NoteRejectedInput("unowned update id", id, now);
}

void Shard::RecordRejectedQueryId(int id, int64_t now) const {
  if (counters_ != nullptr) {
    counters_->rejected_query_ids.fetch_add(1, std::memory_order_relaxed);
  }
  obs::FlightRecorder::NoteRejectedInput("unowned query id", id, now);
}

void Shard::TickAll(int64_t now) {
  WriterMutexLock lock(mu_);
  for (auto& src : sources_) TickSourceLocked(src.get(), now);
  PublishChangesLocked(now);
}

void Shard::TickSource(int id, int64_t now) {
  WriterMutexLock lock(mu_);
  Source* src = FindSource(id);
  if (src == nullptr) {
    RecordRejectedUpdateLocked(id, now);
    return;
  }
  TickSourceLocked(src, now);
  PublishChangesLocked(now);
}

void Shard::TickSources(const std::vector<std::pair<int, int64_t>>& updates) {
  WriterMutexLock lock(mu_);
  // Batch maximum, not the last element: with multiple bus producers the
  // batch need not be time-ordered, and publishing a change at an earlier
  // logical time than the tick that produced it would let the notifier
  // snapshot a stale (narrower) interval.
  int64_t last_now = 0;
  for (const auto& [id, now] : updates) {
    last_now = std::max(last_now, now);
    Source* src = FindSource(id);
    if (src == nullptr) {
      RecordRejectedUpdateLocked(id, now);
      continue;
    }
    TickSourceLocked(src, now);
  }
  PublishChangesLocked(last_now);
}

void Shard::ApplyEvents(const UpdateEvent* events, size_t count) {
  // Root span of the asynchronous update path: one drained bus burst and
  // every value-initiated refresh cascade it triggers.
  obs::TraceScope span(obs::SpanKind::kTick, /*id=*/-1,
                       count > 0 ? events[0].now : 0);
  WriterMutexLock lock(mu_);
  // Batch-maximum publish time, for the same reason as TickSources.
  int64_t last_now = 0;
  for (size_t i = 0; i < count; ++i) {
    const UpdateEvent& event = events[i];
    last_now = std::max(last_now, event.now);
    if (event.source_id == UpdateEvent::kAllSources) {
      for (auto& src : sources_) TickSourceLocked(src.get(), event.now);
      continue;
    }
    Source* src = FindSource(event.source_id);
    if (src == nullptr) {
      RecordRejectedUpdateLocked(event.source_id, event.now);
      continue;
    }
    TickSourceLocked(src, event.now);
  }
  PublishChangesLocked(last_now);
}

Interval Shard::VisibleInterval(int id, int64_t now) const {
  if (read_mode_ == ReadLockMode::kSeqlock) {
    Interval out;
    if (TryVisibleIntervalNoLock(id, now, &out) != SnapshotRead::kTorn) {
      return out;
    }
    // Torn by a racing refresh: settle it under the shared lock.
    RecordSeqlockRetry(id, now);
    RecordSharedFallback(id, now, 1);
  }
  ReadLock lock(mu_, read_mode_);
  return table_.VisibleInterval(id, now);
}

void Shard::FillIntervals(const std::vector<ShardSlot>& slots,
                          std::vector<QueryItem>* items, int64_t now) const {
  if (read_mode_ == ReadLockMode::kSeqlock) {
    // Optimistic pass: no lock at all for entries whose seqlock validates.
    // Torn entries (a refresh raced the copy) are collected and settled
    // under one shared acquisition — rare, so the hot path allocates
    // nothing and touches no lock word. The scratch is thread-local so the
    // steady-state read performs zero heap allocations (asserted by
    // tests/alloc_free_read_test.cc).
    static thread_local std::vector<size_t> torn;
    torn.clear();
    for (size_t i = 0; i < slots.size(); ++i) {
      const auto& [pos, id] = slots[i];
      Interval out;
      if (TryVisibleIntervalNoLock(id, now, &out) == SnapshotRead::kTorn) {
        RecordSeqlockRetry(id, now);
        torn.push_back(i);
      } else {
        (*items)[pos].interval = out;
      }
    }
    if (torn.empty()) return;
    RecordSharedFallback(/*id=*/-1, now, static_cast<int64_t>(torn.size()));
    ReadLock lock(mu_, read_mode_);
    for (size_t i : torn) {
      const auto& [pos, id] = slots[i];
      (*items)[pos].interval = table_.VisibleInterval(id, now);
    }
    return;
  }
  ReadLock lock(mu_, read_mode_);
  for (const auto& [pos, id] : slots) {
    (*items)[pos].interval = table_.VisibleInterval(id, now);
  }
}

double Shard::PullExactLocked(Source* src, int64_t now) {
  obs::TraceScope span(obs::SpanKind::kSourcePull, src->id(), now);
  if (counters_ != nullptr) {
    counters_->query_refreshes.fetch_add(1, std::memory_order_relaxed);
  }
  return table_.Pull(src->id(), src->cell(), src->value(), now);
}

double Shard::PullExact(int id, int64_t now) {
  WriterMutexLock lock(mu_);
  Source* src = FindSource(id);
  if (src == nullptr) {
    RecordRejectedQueryId(id, now);
    return std::numeric_limits<double>::quiet_NaN();
  }
  double value = PullExactLocked(src, now);
  PublishChangesLocked(now);
  return value;
}

void Shard::PullExactMany(const std::vector<ShardSlot>& slots,
                          std::vector<QueryItem>* items, int64_t now) {
  WriterMutexLock lock(mu_);
  for (const auto& [pos, id] : slots) {
    Source* src = FindSource(id);
    if (src == nullptr) {
      // Keep the snapshot interval; the caller already excluded unowned
      // ids, so this only fires for standalone (engine-less) misuse.
      RecordRejectedQueryId(id, now);
      continue;
    }
    (*items)[pos].interval = Interval::Exact(PullExactLocked(src, now));
  }
  PublishChangesLocked(now);
}

int Shard::PullCandidateRun(AggregateKind kind, double constraint,
                            int first_idx, std::vector<QueryItem>* items,
                            int64_t now) {
  WriterMutexLock lock(mu_);
  int idx = first_idx;
  while (idx >= 0) {
    int id = (*items)[static_cast<size_t>(idx)].source_id;
    Source* src = FindSource(id);
    if (src == nullptr) {
      PublishChangesLocked(now);
      return idx;  // next candidate lives on another shard
    }
    Interval exact = Interval::Exact(PullExactLocked(src, now));
    // One charge per distinct id: a duplicated id inside the query becomes
    // exact in every slot, so the elimination never re-selects it.
    for (auto& item : *items) {
      if (item.source_id == id) item.interval = exact;
    }
    idx = kind == AggregateKind::kMax
              ? NextMaxRefreshCandidate(*items, constraint)
              : NextMinRefreshCandidate(*items, constraint);
  }
  PublishChangesLocked(now);
  return -1;
}

Interval Shard::PointRead(int id, double max_width, int64_t now) {
  // Root span of a point read's lifecycle (kFull only, like kReadStart):
  // retries, fallbacks, and the exact pull all land under it.
  obs::TraceScope span(obs::SpanKind::kPointRead, id, now);
  obs::TraceRecorder::Record(obs::TraceEvent::kReadStart, id, now,
                             static_cast<int64_t>(read_mode_));
  // Fast path per mode; the exclusive baseline does the whole read under
  // its one exclusive acquisition, exactly like the original runtime — a
  // second acquisition there would bias the bench comparison.
  if (read_mode_ == ReadLockMode::kSeqlock) {
    Interval visible;
    SnapshotRead read = TryVisibleIntervalNoLock(id, now, &visible);
    if (read == SnapshotRead::kHit && visible.Width() <= max_width) {
      return visible;
    }
    if (read == SnapshotRead::kTorn) RecordSeqlockRetry(id, now);
  } else if (read_mode_ == ReadLockMode::kShared) {
    ReaderMutexLock lock(mu_);
    const ProtocolEntry* entry = table_.Find(id);
    if (entry != nullptr) {
      Interval visible = entry->approx.AtTime(now);
      if (visible.Width() <= max_width) return visible;
    }
  }
  WriterMutexLock lock(mu_);
  // Check (again, in the optimistic modes) under the exclusive lock: a
  // refresh may have landed between the two acquisitions, making the pull
  // (and its Cqr charge) needless.
  const ProtocolEntry* entry = table_.Find(id);
  if (entry != nullptr) {
    Interval visible = entry->approx.AtTime(now);
    if (visible.Width() <= max_width) return visible;
  }
  Source* src = FindSource(id);
  if (src == nullptr) {
    RecordRejectedQueryId(id, now);
    return Interval::Unbounded();
  }
  Interval result = Interval::Exact(PullExactLocked(src, now));
  PublishChangesLocked(now);
  return result;
}

void Shard::BeginMeasurement(int64_t now) {
  WriterMutexLock lock(mu_);
  table_.costs().BeginMeasurement(now);
}

void Shard::EndMeasurement(int64_t now) {
  WriterMutexLock lock(mu_);
  table_.costs().EndMeasurement(now);
}

CostTracker Shard::CostsSnapshot() const {
  ReadLock lock(mu_, read_mode_);
  return table_.costs();
}

std::pair<double, size_t> Shard::RawWidthSum() const {
  ReadLock lock(mu_, read_mode_);
  double total = 0.0;
  for (const auto& src : sources_) total += src->raw_width();
  return {total, sources_.size()};
}

size_t Shard::CacheSize() const {
  ReadLock lock(mu_, read_mode_);
  return table_.size();
}

size_t Shard::CacheCapacity() const {
  ReaderMutexLock lock(mu_);
  return table_.capacity();
}

int64_t Shard::lost_pushes() const {
  ReadLock lock(mu_, read_mode_);
  return table_.lost_pushes();
}

int64_t Shard::rejected_updates() const {
  ReadLock lock(mu_, read_mode_);
  return rejected_updates_;
}

double Shard::SourceValue(int id) const {
  ReadLock lock(mu_, read_mode_);
  Source* src = FindSource(id);
  return src == nullptr ? std::numeric_limits<double>::quiet_NaN()
                        : src->value();
}

}  // namespace apc
