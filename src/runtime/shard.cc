#include "runtime/shard.h"

#include <cassert>

namespace apc {

Shard::Shard(int index, const SystemConfig& config, size_t capacity,
             uint64_t seed, RuntimeCounters* counters)
    : index_(index),
      config_(config),
      counters_(counters),
      cache_(capacity),
      costs_(config.costs),
      rng_(seed) {}

void Shard::AddSource(std::unique_ptr<Source> source) {
  bool inserted = by_id_.emplace(source->id(), sources_.size()).second;
  assert(inserted && "duplicate source id");
  if (!inserted) return;
  sources_.push_back(std::move(source));
}

Source* Shard::SourceById(int id) const {
  return sources_[by_id_.at(id)].get();
}

void Shard::PopulateInitial(int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& src : sources_) {
    CachedApprox approx = src->InitialApprox(now);
    cache_.Offer(src->id(), approx, src->raw_width());
  }
}

// Keep TickSourceLocked/PullExactLocked in lockstep with CacheSystem::Tick
// and CacheSystem::PullExact (cache/system.cc): the runtime's determinism
// guarantee is that both charge and refresh identically, and the
// SingleShardMatchesCacheSystem* tests fail on any drift.
void Shard::TickSourceLocked(Source* src, int64_t now) {
  src->Tick();
  if (counters_ != nullptr) {
    counters_->updates_applied.fetch_add(1, std::memory_order_relaxed);
  }
  // The source tests validity against the approximation it last shipped —
  // caches never report evictions (paper §2), so refreshes are pushed even
  // for entries the cache has dropped.
  if (!src->NeedsValueRefresh(now)) return;
  costs_.RecordValueRefresh();
  if (counters_ != nullptr) {
    counters_->value_refreshes.fetch_add(1, std::memory_order_relaxed);
  }
  CachedApprox approx = src->Refresh(RefreshType::kValueInitiated, now);
  if (config_.push_loss_probability > 0.0 &&
      rng_.Bernoulli(config_.push_loss_probability)) {
    // The message is lost: the source has already updated its own notion of
    // the shipped interval, but the cache never sees it.
    ++lost_pushes_;
    if (counters_ != nullptr) {
      counters_->lost_pushes.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  cache_.Offer(src->id(), approx, src->raw_width());
}

void Shard::TickAll(int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& src : sources_) TickSourceLocked(src.get(), now);
}

void Shard::TickSource(int id, int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  TickSourceLocked(SourceById(id), now);
}

void Shard::TickSources(const std::vector<std::pair<int, int64_t>>& updates) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, now] : updates) TickSourceLocked(SourceById(id), now);
}

Interval Shard::VisibleInterval(int id, int64_t now) const {
  std::lock_guard<std::mutex> lock(mu_);
  const CacheEntry* entry = cache_.Find(id);
  if (entry == nullptr) return Interval::Unbounded();
  return entry->approx.AtTime(now);
}

void Shard::FillIntervals(const std::vector<ShardSlot>& slots,
                          std::vector<QueryItem>* items, int64_t now) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [pos, id] : slots) {
    const CacheEntry* entry = cache_.Find(id);
    (*items)[pos].interval =
        entry == nullptr ? Interval::Unbounded() : entry->approx.AtTime(now);
  }
}

double Shard::PullExactLocked(int id, int64_t now) {
  costs_.RecordQueryRefresh();
  if (counters_ != nullptr) {
    counters_->query_refreshes.fetch_add(1, std::memory_order_relaxed);
  }
  Source* src = SourceById(id);
  CachedApprox approx = src->Refresh(RefreshType::kQueryInitiated, now);
  cache_.Offer(id, approx, src->raw_width());
  return src->value();
}

double Shard::PullExact(int id, int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  return PullExactLocked(id, now);
}

void Shard::PullExactMany(const std::vector<ShardSlot>& slots,
                          std::vector<QueryItem>* items, int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [pos, id] : slots) {
    (*items)[pos].interval = Interval::Exact(PullExactLocked(id, now));
  }
}

Interval Shard::PointRead(int id, double max_width, int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  const CacheEntry* entry = cache_.Find(id);
  if (entry != nullptr) {
    Interval visible = entry->approx.AtTime(now);
    if (visible.Width() <= max_width) return visible;
  }
  return Interval::Exact(PullExactLocked(id, now));
}

void Shard::BeginMeasurement(int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  costs_.BeginMeasurement(now);
}

void Shard::EndMeasurement(int64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  costs_.EndMeasurement(now);
}

CostTracker Shard::CostsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return costs_;
}

std::pair<double, size_t> Shard::RawWidthSum() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& src : sources_) total += src->raw_width();
  return {total, sources_.size()};
}

size_t Shard::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

size_t Shard::CacheCapacity() const { return cache_.capacity(); }

int64_t Shard::lost_pushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lost_pushes_;
}

}  // namespace apc
