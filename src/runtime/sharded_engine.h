#ifndef APC_RUNTIME_SHARDED_ENGINE_H_
#define APC_RUNTIME_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "cache/system.h"
#include "query/aggregate.h"
#include "runtime/shard.h"
#include "runtime/update_bus.h"
#include "subscribe/subscription_manager.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {

/// Configuration of the concurrent serving runtime. `system.cache_capacity`
/// is the total χ, partitioned as evenly as possible across shards;
/// `system.costs` and `system.push_loss_probability` apply per shard.
struct EngineConfig {
  SystemConfig system;
  int num_shards = 1;
  uint64_t seed = 0;
  /// Per-ring capacity of the update bus (backpressure bound for
  /// producers; the bus keeps one ring per shard). Must be positive: a
  /// zero-capacity bus would block every producer forever.
  size_t bus_capacity = 1024;
  /// How snapshot reads acquire shards (see ReadLockMode): optimistic
  /// per-entry seqlock validation by default; kShared and kExclusive are
  /// the bench baselines the seqlock path is measured against.
  ReadLockMode read_lock_mode = ReadLockMode::kSeqlock;
  /// Capacity of the subscription NotificationHub (backpressure bound for
  /// the notifier; must be positive).
  size_t subscription_hub_capacity = 1024;

  /// Full validation, checked at engine construction so a bad
  /// configuration is rejected up front instead of failing later
  /// (a 0-capacity bus deadlocks producers; more shards than cache
  /// capacity leaves shards with a zero-entry cache slice; a loss
  /// probability outside [0, 1] breaks the Bernoulli draw).
  bool IsValid() const {
    return num_shards > 0 &&
           static_cast<size_t>(num_shards) <= system.cache_capacity &&
           bus_capacity > 0 && subscription_hub_capacity > 0 &&
           system.costs.IsValid() &&
           system.push_loss_probability >= 0.0 &&
           system.push_loss_probability <= 1.0;
  }
};

/// Engine-wide cost aggregate, summed over the per-shard CostTrackers.
struct EngineCosts {
  int64_t value_refreshes = 0;
  int64_t query_refreshes = 0;
  double total_cost = 0.0;
  /// Measured ticks of the longest-measuring shard (shards share the
  /// logical clock, so under normal use they are all equal).
  int64_t measured_ticks = 0;

  /// Average cost per tick Ω over the measured period.
  double CostRate() const {
    return measured_ticks > 0
               ? total_cost / static_cast<double>(measured_ticks)
               : 0.0;
  }
};

/// The concurrent serving runtime: hash-partitions sources across N
/// reader/writer-locked shards and multiplexes precision-bounded point
/// reads and aggregate queries from many threads over the adaptive-
/// precision refresh protocol. Snapshot reads take shard locks shared, so
/// constraint-satisfied reads (the common case the protocol optimizes for)
/// proceed concurrently; only refreshes acquire exclusively. Cross-shard
/// aggregate queries snapshot the visible intervals, compute the paper's
/// refresh selection globally (greedy widest-first for SUM/AVG, iterative
/// candidate elimination for MAX/MIN), then batch the exact pulls per
/// shard — MAX/MIN elimination runs inside the owning shard for runs of
/// consecutive candidates, one lock acquisition per run.
///
/// Malformed input is rejected, not fatal: update events and query ids
/// naming sources no shard owns are skipped and counted in the
/// RuntimeCounters (`rejected_updates`, `rejected_query_ids`), and
/// duplicate ids within one query are pulled (and charged) once.
///
/// Every returned interval satisfies the query's precision constraint: the
/// result is composed from the snapshot plus exact pulls, so concurrent
/// updates can only affect *which* values are pulled, never the width
/// guarantee.
///
/// Updates arrive either synchronously via TickAll (the sequential
/// simulator's lockstep, useful for deterministic replay — a single-shard
/// engine driven this way reproduces CacheSystem costs exactly) or
/// asynchronously through the UpdateBus, drained by the pump thread started
/// with StartUpdatePump().
///
/// Standing queries: Subscribe registers a precision-bounded continuous
/// query (point read or aggregate) whose fresh answers are pushed through
/// notifications() whenever the guaranteed interval moves or widens past
/// the subscription's bound — the write path feeds the subscription layer
/// through the protocol core's change-detection hook, so one refresh is
/// amortized across every subscriber of a value (src/subscribe/).
class ShardedEngine : private SubscriptionHost {
 public:
  /// Takes ownership of `sources`; each is routed to its shard by id hash.
  /// `config` must satisfy EngineConfig::IsValid() — asserted in debug
  /// builds and sanitized (shard count and bus capacity clamped into their
  /// valid ranges) in release, per the no-exceptions contract. Sources
  /// that are null, carry a duplicate id, or carry a precision policy with
  /// an invalid configuration are rejected here — counted in
  /// RuntimeCounters::rejected_sources — instead of corrupting a run
  /// later.
  ShardedEngine(const EngineConfig& config,
                std::vector<std::unique_ptr<Source>> sources);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  size_t num_sources() const { return num_sources_; }
  int ShardOf(int id) const;
  Shard& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const Shard& shard(int i) const { return *shards_[static_cast<size_t>(i)]; }

  /// Ships every source's initial approximation (free of charge).
  void PopulateInitial(int64_t now);

  /// Synchronous lockstep update of every shard (deterministic path).
  void TickAll(int64_t now);

  /// Executes a precision-bounded aggregate query at `now`; thread-safe.
  /// The result interval's width is at most the query's constraint.
  Interval ExecuteQuery(const Query& query, int64_t now);

  /// Precision-bounded read of a single source value; pulls the exact
  /// value only when the cached interval is wider than `max_width`.
  Interval PointRead(int id, double max_width, int64_t now);

  // -- standing queries (the subscription subsystem) -------------------

  /// Registers a standing precision-bounded query with bound `delta`; the
  /// initial answer is queued immediately at epoch 1. Returns the positive
  /// sub_id, or -1 when the query is empty, the bound invalid, or any id
  /// unowned. Thread-safe.
  int64_t Subscribe(const Query& query, double delta, int64_t now) {
    return subscriptions_.Subscribe(query, delta, now);
  }
  /// Drops a standing query. Returns false when unknown. Thread-safe.
  bool Unsubscribe(int64_t sub_id) {
    return subscriptions_.Unsubscribe(sub_id);
  }
  /// Live re-precisioning of a standing query (no re-registration): a
  /// tightened bound re-evaluates immediately and pushes once it is met.
  bool Reprecision(int64_t sub_id, double delta, int64_t now) {
    return subscriptions_.Reprecision(sub_id, delta, now);
  }
  /// The hub subscriber threads drain.
  NotificationHub& notifications() { return subscriptions_.hub(); }
  SubscriptionManager& subscriptions() { return subscriptions_; }
  const SubscriptionManager& subscriptions() const { return subscriptions_; }

  /// Current exact value of `id` (NaN when unowned) — checker/test
  /// observability, charge-free.
  double ExactValue(int id) const;

  // -- asynchronous update path --------------------------------------
  UpdateBus& bus() { return bus_; }

  /// Starts the pump thread draining the bus into shards. Returns true
  /// when the pump is running (newly started or already); returns false —
  /// and starts nothing — once the bus has been closed: the asynchronous
  /// update path is single-use per engine.
  bool StartUpdatePump();

  /// Closes the bus, waits for the backlog to drain, and joins the pump.
  void StopUpdatePump();

  // -- measurement and observability ---------------------------------
  void BeginMeasurement(int64_t now);
  void EndMeasurement(int64_t now);
  EngineCosts TotalCosts() const;
  const RuntimeCounters& counters() const { return counters_; }
  int64_t lost_pushes() const;

  /// The engine's metrics registry: every RuntimeCounters tally (under
  /// "engine." / "read."), the update bus ("bus."), and the subscription
  /// layer ("subs.") registered at construction. Snapshot it directly or
  /// through an obs::SnapshotExporter. Under APC_OBS=0 snapshots are empty.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Attaches a cost-attribution sink to every shard's protocol table
  /// (non-owning; nullptr detaches). Call before any concurrent access —
  /// construction-time wiring, like the change sink. The sink then mirrors
  /// every refresh charge, reconciling with TotalCosts() bit-for-bit when
  /// attached before the first charge.
  void SetAttribution(obs::AttributionTable* sink);

  /// Mean retained raw width across all sources (convergence observable).
  double MeanRawWidth() const;

  /// Number of sources hosted by each shard (partition balance).
  std::vector<size_t> ShardSourceCounts() const;

 private:
  void PumpLoop();

  // SubscriptionHost: the engine surface the subscription manager drives.
  Interval SubscriptionSnapshot(int id, int64_t now) const override;
  Interval SubscriptionPull(int id, int64_t now) override;
  bool SubscriptionOwns(int id) const override;
  void SubscriptionActivate() override;

  /// Declared first: destroyed last, after every component whose metrics
  /// it references has unregistered by simply going away — snapshots are
  /// only taken while the engine is alive, so the non-owning registration
  /// never dangles.
  obs::MetricsRegistry metrics_;
  EngineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t num_sources_ = 0;
  RuntimeCounters counters_;
  UpdateBus bus_;
  /// Rank kControl: Stop closes the bus (kQueue) and joins under it.
  Mutex pump_mu_{LockRank::kControl, "sharded.pump_mu"};
  std::thread pump_ APC_GUARDED_BY(pump_mu_);
  bool pump_running_ APC_GUARDED_BY(pump_mu_) = false;
  /// Declared last: destroyed first, so the notifier thread is joined
  /// while the shards it reads through are still alive.
  SubscriptionManager subscriptions_;
};

}  // namespace apc

#endif  // APC_RUNTIME_SHARDED_ENGINE_H_
