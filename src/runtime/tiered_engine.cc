#include "runtime/tiered_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "hierarchy/hierarchy.h"
#include "obs/attribution.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "runtime/runtime_util.h"

namespace apc {

using runtime_internal::MixId;
using runtime_internal::ReadLock;

void TieredCounters::RegisterWith(obs::MetricsRegistry* registry,
                                  const std::string& prefix) const {
  registry->RegisterCounter(prefix + ".reads", &reads);
  registry->RegisterCounter(prefix + ".edge_hits", &edge_hits);
  registry->RegisterCounter(prefix + ".regional_hits", &regional_hits);
  registry->RegisterCounter(prefix + ".source_pulls", &source_pulls);
  registry->RegisterCounter(prefix + ".derived_pushes", &derived_pushes);
  registry->RegisterCounter(prefix + ".updates_applied", &updates_applied);
  registry->RegisterCounter(prefix + ".rejected_reads", &rejected_reads);
  registry->RegisterCounter(prefix + ".rejected_updates", &rejected_updates);
  registry->RegisterCounter(prefix + ".rejected_sources", &rejected_sources);
  registry->RegisterCounter(prefix + ".lost_wan_pushes", &lost_wan_pushes);
  registry->RegisterCounter(prefix + ".lost_lan_pushes", &lost_lan_pushes);
}

namespace {

/// Release-mode counterpart of the IsValid() assert: every knob is forced
/// into its valid range, falling back to documented defaults where no
/// clamp makes sense (an invalid policy parameter set would otherwise
/// produce inf/NaN widths mid-run — theta = 2·cvr/0 alone is infinite).
TieredConfig Sanitize(TieredConfig config) {
  if (config.num_edges < 1) config.num_edges = 1;
  if (config.num_shards < 1) config.num_shards = 1;
  if (config.bus_capacity < 1) config.bus_capacity = 1;
  if (config.subscription_hub_capacity < 1) {
    config.subscription_hub_capacity = 1;
  }
  if (!config.wan.IsValid()) config.wan = TieredConfig{}.wan;
  if (!config.lan.IsValid()) config.lan = TieredConfig{}.lan;
  config.wan_push_loss = std::clamp(config.wan_push_loss, 0.0, 1.0);
  config.lan_push_loss = std::clamp(config.lan_push_loss, 0.0, 1.0);
  if (!BindTierCosts(config.regional_policy, config.wan).IsValid()) {
    config.regional_policy = AdaptivePolicyParams{};
  }
  if (!BindTierCosts(config.edge_policy, config.lan).IsValid()) {
    config.edge_policy = AdaptivePolicyParams{};
  }
  return config;
}

/// Final shard count after the every-shard-owns-an-id clamp — needed in
/// the member-init list so the bus can be built with one ring per shard.
int EffectiveShards(int configured, size_t num_streams) {
  const int n = static_cast<int>(num_streams);
  return (n > 0 && configured > n) ? n : configured;
}

}  // namespace

bool TieredConfig::IsValid() const {
  return num_edges > 0 && num_shards > 0 && bus_capacity > 0 &&
         subscription_hub_capacity > 0 &&
         wan.IsValid() && lan.IsValid() && wan_push_loss >= 0.0 &&
         wan_push_loss <= 1.0 && lan_push_loss >= 0.0 &&
         lan_push_loss <= 1.0 &&
         BindTierCosts(regional_policy, wan).IsValid() &&
         BindTierCosts(edge_policy, lan).IsValid();
}

TieredEngine::TieredEngine(const TieredConfig& config,
                           std::vector<std::unique_ptr<UpdateStream>> streams)
    : config_(Sanitize(config)),
      bus_(config_.bus_capacity,
           static_cast<size_t>(
               EffectiveShards(config_.num_shards, streams.size()))),
      subscriptions_(this, config_.subscription_hub_capacity) {
  assert(config.IsValid());
  const int n = static_cast<int>(streams.size());
  // Every shard must own at least one id, or its χ slice would be dead
  // weight; clamp like ShardedEngine rather than crash (no exceptions).
  // EffectiveShards applies the same clamp for the bus's ring count above.
  config_.num_shards = EffectiveShards(config_.num_shards, streams.size());
  const int num_shards = config_.num_shards;
  const int num_edges = config_.num_edges;

  const AdaptivePolicyParams regional_params =
      BindTierCosts(config_.regional_policy, config_.wan);
  const AdaptivePolicyParams edge_params =
      BindTierCosts(config_.edge_policy, config_.lan);

  // Policy seeds are drawn in HierarchicalSystem's exact order — regional
  // policies in id order, then edge policies edge-major — from one master
  // Rng, so a seed-matched sequential system owns identical policy RNG
  // streams entity for entity. The shard partition never touches this.
  Rng seeder(config_.seed);
  std::vector<uint64_t> regional_seeds(static_cast<size_t>(n));
  for (auto& s : regional_seeds) s = seeder.NextUint64();
  std::vector<std::vector<uint64_t>> edge_seeds(
      static_cast<size_t>(num_edges),
      std::vector<uint64_t>(static_cast<size_t>(n)));
  for (auto& edge : edge_seeds) {
    for (auto& s : edge) s = seeder.NextUint64();
  }

  // Partition ids (ascending within each shard, so single-shard engines
  // iterate in id order like the sequential system).
  std::vector<std::vector<int>> shard_ids(static_cast<size_t>(num_shards));
  for (int id = 0; id < n; ++id) {
    if (streams[static_cast<size_t>(id)] == nullptr) continue;
    shard_ids[static_cast<size_t>(MixId(static_cast<uint64_t>(id)) %
                                  static_cast<uint64_t>(num_shards))]
        .push_back(id);
  }

  auto slice = [](size_t total, int i, int parts) {
    return total * static_cast<size_t>(i + 1) / static_cast<size_t>(parts) -
           total * static_cast<size_t>(i) / static_cast<size_t>(parts);
  };

  regional_.reserve(static_cast<size_t>(num_shards));
  edges_.resize(static_cast<size_t>(num_edges));
  for (int s = 0; s < num_shards; ++s) {
    const std::vector<int>& ids = shard_ids[static_cast<size_t>(s)];
    // capacity 0 = one slot per owned id: the no-eviction topology of
    // HierarchicalSystem, and the default.
    size_t regional_cap = config_.regional_capacity == 0
                              ? ids.size()
                              : slice(config_.regional_capacity, s, num_shards);
    size_t edge_cap = config_.edge_capacity == 0
                          ? ids.size()
                          : slice(config_.edge_capacity, s, num_shards);

    auto rs = std::make_unique<RegionalShard>(
        ProtocolTable::Config{config_.wan, regional_cap,
                              config_.wan_push_loss},
        config_.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(s)));
    // No thread can see the shards yet, but populating under their locks
    // keeps the guarded-member contract unconditional (charged once, at
    // construction). Lock order regional -> edge, same as every run-time
    // path. `initial_values[i]` seeds the edge cells of ids[i].
    std::vector<double> initial_values;
    initial_values.reserve(ids.size());
    {
      WriterMutexLock rlock(rs->mu);
      for (int id : ids) {
        rs->by_id.emplace(id, rs->sources.size());
        rs->table.Register(id);
        rs->sources.push_back(std::make_unique<Source>(
            id, std::move(streams[static_cast<size_t>(id)]),
            std::make_unique<AdaptivePolicy>(
                regional_params, regional_seeds[static_cast<size_t>(id)])));
        initial_values.push_back(rs->sources.back()->value());
      }
    }
    for (int e = 0; e < num_edges; ++e) {
      auto es = std::make_unique<EdgeShard>(
          ProtocolTable::Config{config_.lan, edge_cap, config_.lan_push_loss},
          config_.seed ^
              (0xbf58476d1ce4e5b9ULL *
               static_cast<uint64_t>(1 + e * num_shards + s)));
      WriterMutexLock elock(es->mu);
      es->cells.reserve(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        int id = ids[i];
        es->by_id.emplace(id, es->cells.size());
        es->table.Register(id);
        // The cell's constructor-time shipment is a placeholder;
        // PopulateInitial replaces it with the proper derived hull.
        es->cells.emplace_back(
            std::make_unique<AdaptivePolicy>(
                edge_params,
                edge_seeds[static_cast<size_t>(e)][static_cast<size_t>(id)]),
            initial_values[i], 0);
      }
      edges_[static_cast<size_t>(e)].push_back(std::move(es));
    }
    num_sources_ += ids.size();
    regional_.push_back(std::move(rs));
  }

  int64_t rejected = n - static_cast<int64_t>(num_sources_);
  if (rejected > 0) {
    counters_.rejected_sources.fetch_add(rejected, std::memory_order_relaxed);
  }
  // Observability: one registry per engine, fed by the components' own
  // lock-free tallies (non-owning registration; all members of this).
  counters_.RegisterWith(&metrics_, "tiered");
  bus_.RegisterMetrics(&metrics_, "tiered.bus");
  subscriptions_.RegisterMetrics(&metrics_);
  obs::TraceRecorder::RegisterMetrics(&metrics_);
}

void TieredEngine::SetAttribution(obs::AttributionTable* sink) {
  for (auto& rs : regional_) {
    WriterMutexLock lock(rs->mu);
    rs->table.SetAttribution(sink);
  }
  for (auto& edge : edges_) {
    for (auto& es : edge) {
      WriterMutexLock lock(es->mu);
      es->table.SetAttribution(sink);
    }
  }
}

TieredEngine::~TieredEngine() {
  StopUpdatePump();
  // Join the notifier before members die; the tiers stay alive until after.
  subscriptions_.Shutdown();
}

void TieredEngine::SubscriptionActivate() {
  // Subscriptions attach at the regional tier: its tables feed the
  // change-detection hook (edge tables stay untracked). Enabled lazily on
  // the first Subscribe so subscription-free engines pay nothing.
  for (auto& rs : regional_) {
    WriterMutexLock lock(rs->mu);
    rs->table.EnableChangeTracking();
  }
}

void TieredEngine::PublishRegionalChangesLocked(RegionalShard& rs,
                                                int64_t now) {
  if (!rs.table.has_dirty_ids()) return;
  rs.dirty_scratch.clear();
  rs.table.DrainDirtyIds(&rs.dirty_scratch);
  subscriptions_.OnIntervalChanges(rs.dirty_scratch, now);
}

int TieredEngine::ShardOf(int id) const {
  return static_cast<int>(MixId(static_cast<uint64_t>(id)) %
                          regional_.size());
}

bool TieredEngine::Owns(int id) const {
  const RegionalShard& rs = *regional_[static_cast<size_t>(ShardOf(id))];
  return rs.by_id.count(id) != 0;
}

SnapshotRead TieredEngine::TryEdgeVisibleNoLock(const EdgeShard& es, int id,
                                                int64_t now, Interval* out) {
  return es.table.TryVisibleInterval(id, now, out);
}

CachedApprox TieredEngine::DerivedApprox(const ProtocolCell& cell,
                                         const Interval& parent,
                                         int64_t now) {
  CachedApprox approx;
  approx.base = DerivedHull(cell.EffectiveWidth(), parent);
  approx.refresh_time = now;
  return approx;
}

void TieredEngine::PopulateInitial(int64_t now) {
  for (size_t s = 0; s < regional_.size(); ++s) {
    RegionalShard& rs = *regional_[s];
    WriterMutexLock rlock(rs.mu);
    for (auto& src : rs.sources) {
      rs.table.OfferInitial(src->id(), src->cell(), src->value(), now);
    }
    PublishRegionalChangesLocked(rs, now);
    for (auto& edge : edges_) {
      EdgeShard& es = *edge[s];
      WriterMutexLock elock(es.mu);
      for (auto& src : rs.sources) {
        int id = src->id();
        Interval parent = src->cell().last_shipped().AtTime(now);
        ProtocolCell& cell = es.cells[es.by_id.at(id)];
        CachedApprox approx = DerivedApprox(cell, parent, now);
        cell.ShipDerived(approx);
        es.table.OfferDerivedInitial(id, approx, cell.raw_width());
      }
    }
  }
}

void TieredEngine::TickSourceLocked(RegionalShard& rs, int shard,
                                    Source* src, int64_t now) {
  src->Tick();
  counters_.updates_applied.fetch_add(1, std::memory_order_relaxed);
  ValueTickOutcome outcome =
      rs.table.OnValueTick(src->id(), src->cell(), src->value(), now);
  if (outcome.lost) {
    counters_.lost_wan_pushes.fetch_add(1, std::memory_order_relaxed);
  }
  // A lost WAN push never reached the regional cache, so no edge can have
  // fallen out of containment — nothing to fan out (and charging a LAN
  // push for an undelivered regional interval would be wrong).
  if (outcome.refreshed && !outcome.lost) {
    FanOutLocked(rs, shard, src->id(),
                 src->cell().last_shipped().AtTime(now), now,
                 /*skip_edge=*/-1);
  }
}

void TieredEngine::FanOutLocked(RegionalShard& rs, int shard, int id,
                                const Interval& parent, int64_t now,
                                int skip_edge) {
  (void)rs;  // the capability parameter: exclusivity of rs.mu is the contract
  obs::TraceScope span(obs::SpanKind::kFanOut, id, now);
  for (int e = 0; e < config_.num_edges; ++e) {
    if (e == skip_edge) continue;
    EdgeShard& es = *edges_[static_cast<size_t>(e)][static_cast<size_t>(shard)];
    WriterMutexLock lock(es.mu);
    ProtocolCell& cell = es.cells[es.by_id.at(id)];
    // Containment is tested against the sender-side record of what was
    // last shipped to this edge (the cell), not against the edge cache:
    // edges never report evictions, and a charged-but-lost LAN push must
    // not be resent until the parent escapes the interval the regional
    // cache BELIEVES the edge holds — the paper's source-side rule, one
    // level down.
    if (cell.last_shipped().AtTime(now).Contains(parent)) continue;
    cell.AdvanceWidth(RefreshType::kValueInitiated, /*escaped_above=*/false,
                      now);
    CachedApprox approx = DerivedApprox(cell, parent, now);
    cell.ShipDerived(approx);
    ValueTickOutcome shipped = es.table.OfferDerived(
        id, approx, cell.raw_width(), RefreshType::kValueInitiated);
    if (shipped.lost) {
      counters_.lost_lan_pushes.fetch_add(1, std::memory_order_relaxed);
    }
    counters_.derived_pushes.fetch_add(1, std::memory_order_relaxed);
  }
}

void TieredEngine::InstallDerived(const RegionalShard& rs, EdgeShard& es,
                                  int id, const Interval& parent,
                                  RefreshType type, int64_t now) {
  (void)rs;  // the capability parameter: rs.mu (shared) pins `parent`
  WriterMutexLock lock(es.mu);
  ProtocolCell& cell = es.cells[es.by_id.at(id)];
  cell.AdvanceWidth(type, /*escaped_above=*/false, now);
  CachedApprox approx = DerivedApprox(cell, parent, now);
  cell.ShipDerived(approx);
  es.table.OfferDerived(id, approx, cell.raw_width(), type);
}

void TieredEngine::TickAll(int64_t now) {
  // Root span of the synchronous update path; the per-id fan-out spans
  // nest under it.
  obs::TraceScope span(obs::SpanKind::kTick, /*id=*/-1, now);
  for (size_t s = 0; s < regional_.size(); ++s) {
    RegionalShard& rs = *regional_[s];
    WriterMutexLock lock(rs.mu);
    for (auto& src : rs.sources) {
      TickSourceLocked(rs, static_cast<int>(s), src.get(), now);
    }
    PublishRegionalChangesLocked(rs, now);
  }
}

void TieredEngine::TickSource(int id, int64_t now) {
  int s = ShardOf(id);
  RegionalShard& rs = *regional_[static_cast<size_t>(s)];
  WriterMutexLock lock(rs.mu);
  auto it = rs.by_id.find(id);
  if (it == rs.by_id.end()) {
    counters_.rejected_updates.fetch_add(1, std::memory_order_relaxed);
    obs::FlightRecorder::NoteRejectedInput("unowned update id", id, now);
    return;
  }
  TickSourceLocked(rs, s, rs.sources[it->second].get(), now);
  PublishRegionalChangesLocked(rs, now);
}

void TieredEngine::ApplyShardEvents(int shard, const UpdateEvent* events,
                                    size_t count) {
  // Root span of the asynchronous update path: one drained bus burst.
  obs::TraceScope span(obs::SpanKind::kTick, /*id=*/-1,
                       count > 0 ? events[0].now : 0);
  RegionalShard& rs = *regional_[static_cast<size_t>(shard)];
  WriterMutexLock lock(rs.mu);
  int64_t last_now = 0;
  for (size_t i = 0; i < count; ++i) {
    const UpdateEvent& e = events[i];
    last_now = std::max(last_now, e.now);
    if (e.source_id == UpdateEvent::kAllSources) {
      // This ring's copy of a broadcast: tick every source this shard owns.
      for (auto& src : rs.sources) {
        TickSourceLocked(rs, shard, src.get(), e.now);
      }
      continue;
    }
    auto it = rs.by_id.find(e.source_id);
    if (it == rs.by_id.end()) {
      counters_.rejected_updates.fetch_add(1, std::memory_order_relaxed);
      obs::FlightRecorder::NoteRejectedInput("unowned update id",
                                             e.source_id, e.now);
      continue;
    }
    TickSourceLocked(rs, shard, rs.sources[it->second].get(), e.now);
  }
  PublishRegionalChangesLocked(rs, last_now);
}

Interval TieredEngine::Read(int edge, int id, double constraint,
                            int64_t now) {
  // Root span of a tiered read (kFull only); escalation-hop spans nest
  // under it. The ReaderScope tags any Cqr this read's escalations charge
  // (LAN install, WAN pull) as query-initiated-by-a-query.
  obs::TraceScope span(obs::SpanKind::kTieredRead, id, now);
  obs::ReaderScope reader(obs::ReaderKind::kQuery, /*reader_id=*/id);
  counters_.reads.fetch_add(1, std::memory_order_relaxed);
  if (edge < 0 || edge >= config_.num_edges || !Owns(id)) {
    counters_.rejected_reads.fetch_add(1, std::memory_order_relaxed);
    obs::FlightRecorder::NoteRejectedInput("rejected tiered read", id, now);
    return Interval::Unbounded();
  }
  const int s = ShardOf(id);
  RegionalShard& rs = *regional_[static_cast<size_t>(s)];
  EdgeShard& es = *edges_[static_cast<size_t>(edge)][static_cast<size_t>(s)];

  // Edge-local fast path — the read the protocol optimizes for. In
  // seqlock mode this touches no lock word at all; a torn read simply
  // escalates into the locked path below, which re-checks.
  if (config_.read_lock_mode == ReadLockMode::kSeqlock) {
    Interval visible;
    if (TryEdgeVisibleNoLock(es, id, now, &visible) == SnapshotRead::kHit &&
        visible.Width() <= constraint) {
      counters_.edge_hits.fetch_add(1, std::memory_order_relaxed);
      return visible;
    }
  } else {
    ReadLock lock(es.mu, config_.read_lock_mode);
    Interval visible = es.table.VisibleInterval(id, now);
    if (visible.Width() <= constraint) {
      counters_.edge_hits.fetch_add(1, std::memory_order_relaxed);
      return visible;
    }
  }

  // Escalation. Lock order is always regional shard before edge shard;
  // holding the regional lock (shared here) excludes fan-outs, so the
  // regional interval read below cannot be overwritten between the read
  // and the derived install — that is what keeps A_edge ⊇ A_regional.
  obs::TraceScope regional_hop(obs::SpanKind::kEscalateRegional, id, now);
  obs::TraceRecorder::Record(obs::TraceEvent::kEscalateRegional, id, now,
                             edge);
  {
    ReadLock rlock(rs.mu, config_.read_lock_mode);
    {
      // Re-check the edge under its lock: a refresh (or a neighbor's
      // escalation) may have narrowed it since the optimistic miss, in
      // which case nothing is charged.
      ReadLock elock(es.mu, config_.read_lock_mode);
      Interval visible = es.table.VisibleInterval(id, now);
      if (visible.Width() <= constraint) {
        counters_.edge_hits.fetch_add(1, std::memory_order_relaxed);
        return visible;
      }
    }
    Interval regional = rs.table.VisibleInterval(id, now);
    if (regional.Width() <= constraint) {
      // One LAN Cqr (charged by the derived install) buys the regional
      // interval; the edge receives its derived hull in the reply.
      InstallDerived(rs, es, id, regional, RefreshType::kQueryInitiated,
                     now);
      counters_.regional_hits.fetch_add(1, std::memory_order_relaxed);
      return regional;
    }
  }

  // The regional interval is too wide as well: take the regional lock
  // exclusively, re-check (a racing pull may have satisfied the bound, in
  // which case the WAN charge is saved), and pull from the source.
  WriterMutexLock xlock(rs.mu);
  Interval regional = rs.table.VisibleInterval(id, now);
  Interval answer;
  if (regional.Width() <= constraint) {
    counters_.regional_hits.fetch_add(1, std::memory_order_relaxed);
    answer = regional;
  } else {
    obs::TraceScope source_hop(obs::SpanKind::kEscalateSource, id, now);
    obs::TraceRecorder::Record(obs::TraceEvent::kEscalateSource, id, now,
                               edge);
    Source* src = rs.sources[rs.by_id.at(id)].get();
    {
      obs::TraceScope pull(obs::SpanKind::kSourcePull, id, now);
      rs.table.Pull(src->id(), src->cell(), src->value(), now);
    }
    counters_.source_pulls.fetch_add(1, std::memory_order_relaxed);
    regional = src->cell().last_shipped().AtTime(now);
    // The recentered regional interval cascades to the OTHER edges as LAN
    // pushes; the reading edge gets its derived interval in the reply it
    // already paid for (HierarchicalSystem's skip_edge rule).
    FanOutLocked(rs, s, id, regional, now, /*skip_edge=*/edge);
    answer = Interval::Exact(src->value());
    PublishRegionalChangesLocked(rs, now);
  }
  InstallDerived(rs, es, id, regional, RefreshType::kQueryInitiated,
                     now);
  return answer;
}

Interval TieredEngine::SubscriptionSnapshot(int id, int64_t now) const {
  return regional_interval(id, now);
}

Interval TieredEngine::SubscriptionPull(int id, int64_t now) {
  if (!Owns(id)) return Interval::Unbounded();
  const int s = ShardOf(id);
  RegionalShard& rs = *regional_[static_cast<size_t>(s)];
  WriterMutexLock lock(rs.mu);
  // One WAN Cqr recenters the regional interval; the fan-out ships the
  // news to every edge that fell out of containment — a subscription
  // escalation is charged exactly like an escalated read's source pull.
  Source* src = rs.sources[rs.by_id.at(id)].get();
  {
    obs::TraceScope pull(obs::SpanKind::kSourcePull, id, now);
    rs.table.Pull(src->id(), src->cell(), src->value(), now);
  }
  counters_.source_pulls.fetch_add(1, std::memory_order_relaxed);
  Interval regional = src->cell().last_shipped().AtTime(now);
  FanOutLocked(rs, s, id, regional, now, /*skip_edge=*/-1);
  PublishRegionalChangesLocked(rs, now);
  return rs.table.VisibleInterval(id, now);
}

bool TieredEngine::StartUpdatePump() {
  MutexLock lock(pump_mu_);
  if (pump_running_) return true;
  if (bus_.closed()) return false;  // a closed bus never reopens
  pump_running_ = true;
  pump_ = std::thread([this] { PumpLoop(); });
  return true;
}

void TieredEngine::StopUpdatePump() {
  MutexLock lock(pump_mu_);
  if (!pump_running_) return;
  bus_.Close();
  pump_.join();
  pump_running_ = false;
}

void TieredEngine::PumpLoop() {
  // The bus keeps one ring per regional shard (RingOf == ShardOf), so a
  // drained burst belongs to exactly one shard and is applied under ONE
  // exclusive lock acquisition — no per-event regrouping, no flush
  // barriers: broadcasts are already fanned into every ring in per-source
  // FIFO order by the bus itself.
  constexpr size_t kMaxBatch = 256;
  std::vector<UpdateEvent> batch;
  size_t ring = 0;
  size_t n = 0;
  while ((n = bus_.PopBatch(&batch, kMaxBatch, &ring)) > 0) {
    ApplyShardEvents(static_cast<int>(ring), batch.data(), n);
  }
}

void TieredEngine::BeginMeasurement(int64_t now) {
  for (size_t s = 0; s < regional_.size(); ++s) {
    RegionalShard& rs = *regional_[s];
    WriterMutexLock lock(rs.mu);
    rs.table.costs().BeginMeasurement(now);
    for (auto& edge : edges_) {
      EdgeShard& es = *edge[s];
      WriterMutexLock elock(es.mu);
      es.table.costs().BeginMeasurement(now);
    }
  }
}

void TieredEngine::EndMeasurement(int64_t now) {
  for (size_t s = 0; s < regional_.size(); ++s) {
    RegionalShard& rs = *regional_[s];
    WriterMutexLock lock(rs.mu);
    rs.table.costs().EndMeasurement(now);
    for (auto& edge : edges_) {
      EdgeShard& es = *edge[s];
      WriterMutexLock elock(es.mu);
      es.table.costs().EndMeasurement(now);
    }
  }
}

namespace {

void Accumulate(EngineCosts* total, const CostTracker& costs) {
  total->value_refreshes += costs.value_refreshes();
  total->query_refreshes += costs.query_refreshes();
  total->total_cost += costs.total_cost();
  if (costs.measured_ticks() > total->measured_ticks) {
    total->measured_ticks = costs.measured_ticks();
  }
}

}  // namespace

EngineCosts TieredEngine::WanCosts() const {
  EngineCosts total;
  for (const auto& rs : regional_) {
    ReaderMutexLock lock(rs->mu);
    Accumulate(&total, rs->table.costs());
  }
  return total;
}

EngineCosts TieredEngine::LanCosts() const {
  EngineCosts total;
  for (const auto& edge : edges_) {
    for (const auto& es : edge) {
      ReaderMutexLock lock(es->mu);
      Accumulate(&total, es->table.costs());
    }
  }
  return total;
}

double TieredEngine::TotalCostRate() const {
  return WanCosts().CostRate() + LanCosts().CostRate();
}

int64_t TieredEngine::lost_wan_pushes() const {
  int64_t total = 0;
  for (const auto& rs : regional_) {
    ReaderMutexLock lock(rs->mu);
    total += rs->table.lost_pushes();
  }
  return total;
}

int64_t TieredEngine::lost_lan_pushes() const {
  int64_t total = 0;
  for (const auto& edge : edges_) {
    for (const auto& es : edge) {
      ReaderMutexLock lock(es->mu);
      total += es->table.lost_pushes();
    }
  }
  return total;
}

Interval TieredEngine::regional_interval(int id, int64_t now) const {
  if (!Owns(id)) return Interval::Unbounded();
  const RegionalShard& rs = *regional_[static_cast<size_t>(ShardOf(id))];
  ReaderMutexLock lock(rs.mu);
  return rs.table.VisibleInterval(id, now);
}

Interval TieredEngine::edge_interval(int edge, int id, int64_t now) const {
  if (edge < 0 || edge >= config_.num_edges || !Owns(id)) {
    return Interval::Unbounded();
  }
  const EdgeShard& es =
      *edges_[static_cast<size_t>(edge)][static_cast<size_t>(ShardOf(id))];
  ReaderMutexLock lock(es.mu);
  return es.table.VisibleInterval(id, now);
}

double TieredEngine::regional_raw_width(int id) const {
  if (!Owns(id)) return std::numeric_limits<double>::quiet_NaN();
  const RegionalShard& rs = *regional_[static_cast<size_t>(ShardOf(id))];
  ReaderMutexLock lock(rs.mu);
  return rs.sources[rs.by_id.at(id)]->raw_width();
}

double TieredEngine::edge_raw_width(int edge, int id) const {
  if (edge < 0 || edge >= config_.num_edges || !Owns(id)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const EdgeShard& es =
      *edges_[static_cast<size_t>(edge)][static_cast<size_t>(ShardOf(id))];
  ReaderMutexLock lock(es.mu);
  return es.cells[es.by_id.at(id)].raw_width();
}

double TieredEngine::exact_value(int id) const {
  if (!Owns(id)) return std::numeric_limits<double>::quiet_NaN();
  const RegionalShard& rs = *regional_[static_cast<size_t>(ShardOf(id))];
  ReaderMutexLock lock(rs.mu);
  return rs.sources[rs.by_id.at(id)]->value();
}

bool TieredEngine::DerivedInvariantHolds(int64_t now) const {
  for (size_t s = 0; s < regional_.size(); ++s) {
    const RegionalShard& rs = *regional_[s];
    // The regional shard lock freezes every mutation of this shard's
    // (regional, edge) state — fan-outs need it exclusively, installs at
    // least shared with the then-current parent — so the check is valid
    // at any instant, not just at quiescence.
    ReaderMutexLock rlock(rs.mu);
    for (const auto& [id, idx] : rs.by_id) {
      const ProtocolEntry* regional = rs.table.Find(id);
      if (regional == nullptr) continue;  // evicted: nothing to compare
      Interval parent = regional->approx.AtTime(now);
      for (const auto& edge : edges_) {
        const EdgeShard& es = *edge[s];
        ReaderMutexLock elock(es.mu);
        if (!es.table.VisibleInterval(id, now).Contains(parent)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace apc
