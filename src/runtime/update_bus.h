#ifndef APC_RUNTIME_UPDATE_BUS_H_
#define APC_RUNTIME_UPDATE_BUS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runtime/partition.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {

/// One source-update command flowing through the bus. `source_id` of
/// kAllSources means "advance every source one tick" — the batched form of
/// the sequential simulator's global Tick. A specific id advances only that
/// source, which is how trace-driven and per-source update arrival models
/// feed the runtime.
struct UpdateEvent {
  int64_t now = 0;
  int source_id = -1;

  static constexpr int kAllSources = -1;
};

/// Bounded multi-producer single-consumer bus carrying source updates into
/// the runtime's shards, built from per-shard ring buffers so the pump can
/// apply a whole drained burst under ONE shard-lock acquisition.
///
/// Structure: `num_rings` bounded rings (one per shard in the engines),
/// each a power-of-two array of sequence-stamped cells. A specific
/// source_id routes to ring MixId(id) % num_rings — the engines' own
/// partition function, so ring index == shard index. A kAllSources tick
/// broadcasts one copy into EVERY ring: per-source event order must
/// include the global ticks (a source observing time move backwards would
/// corrupt its interval growth), and each shard ticks exactly its own
/// sources from its own ring.
///
/// Producer protocol (the batch-reservation pattern): acquire `n` credits
/// from the ring's credit counter (all-or-nothing, enforcing the EXACT
/// logical capacity), then reserve a contiguous range of cells with a
/// single tail.fetch_add(n) — one atomic per batch, not per event — then
/// write the cells and publish each by storing its sequence number.
/// Producers with no credits block (closed-loop backpressure, exactly the
/// old deque semantics); TryPush fails instead. An acquired credit
/// guarantees the target cell is already recycled, so producers never wait
/// on the consumer while holding a reservation.
///
/// Consumer protocol: PopBatch drains one ring per call (round-robin over
/// non-empty rings), reading the contiguous published prefix, then
/// recycles the cells and returns the credits. Close() wakes everyone:
/// producers fail fast, and once every ring's backlog drains PopBatch
/// returns 0.
class UpdateBus {
 public:
  /// `capacity` is the per-ring logical bound (the backpressure contract);
  /// the default single ring makes the bus a drop-in bounded MPSC queue.
  explicit UpdateBus(size_t capacity = 1024, size_t num_rings = 1);

  /// Enqueues `event`, blocking while its destination ring is full (every
  /// ring, for a kAllSources broadcast). Returns false (and drops the
  /// event) when the bus has been closed.
  bool Push(const UpdateEvent& event);

  /// Non-blocking variant: returns false when full or closed. A
  /// kAllSources broadcast is all-or-nothing — it fails without enqueuing
  /// anything unless every ring has room.
  bool TryPush(const UpdateEvent& event);

  /// Batched blocking push: reserves each same-destination run of `events`
  /// with one credit acquisition and one tail reservation per ring
  /// (chunked to the ring capacity), preserving the events' order.
  /// Returns how many events were accepted — short only when the bus
  /// closes mid-batch.
  size_t PushBatch(const UpdateEvent* events, size_t count);

  /// Moves up to `max_batch` events from ONE ring into `*out` (cleared
  /// first), round-robin across non-empty rings; `*source_ring` (optional)
  /// receives the ring index, which is the shard index when the owner
  /// built one ring per shard. Blocks until an event is available or the
  /// bus is closed and fully drained; returns the number of events
  /// delivered (0 only at shutdown). Single consumer by contract.
  size_t PopBatch(std::vector<UpdateEvent>* out, size_t max_batch,
                  size_t* source_ring = nullptr);

  /// Closes the bus: subsequent pushes fail, and once the backlog drains
  /// PopBatch returns 0.
  void Close();

  bool closed() const { return closed_.load(std::memory_order_acquire); }
  /// Events currently queued across all rings (a broadcast counts once per
  /// ring it landed in).
  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t num_rings() const { return rings_.size(); }
  /// Total events ever accepted (monotonic; broadcasts count once).
  int64_t total_pushed() const {
    return total_pushed_.load(std::memory_order_relaxed);
  }

  /// Ring carrying `source_id`'s events: MixId(id) % num_rings, the same
  /// partition the engines use for id→shard. Meaningless for kAllSources,
  /// which broadcasts.
  size_t RingOf(int source_id) const {
    return static_cast<size_t>(
        runtime_internal::MixId(static_cast<uint64_t>(source_id)) %
        rings_.size());
  }

  /// Registers this bus's traffic metrics with `registry` under
  /// "<prefix>." names: enqueued/drained/drain_batches counters, a
  /// queue_depth gauge, and a drain_batch_size histogram. Non-owning; call
  /// during engine construction, before concurrent use. All no-ops under
  /// APC_OBS=0.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix);

 private:
  /// One ring slot. `seq` is the Vyukov sequence stamp: it equals the cell's
  /// next position when free for a producer, position+1 once published,
  /// and position+physical_capacity after the consumer recycles it.
  // contracts-lint: allow(raw-atomic) -- the sequence stamp IS the cell's
  // publication protocol (lock-free MPSC handoff), not a tally; a mutex
  // per cell would reinstate the global-lock bus this replaces.
  struct alignas(64) Cell {
    std::atomic<uint64_t> seq{0};
    UpdateEvent event;
  };

  /// One bounded ring. The cursors are cache-line-separated: producers
  /// contend on tail+credits, only the consumer touches head.
  struct alignas(64) Ring {
    explicit Ring(size_t logical_capacity);
    Ring(const Ring&) = delete;
    Ring& operator=(const Ring&) = delete;

    std::unique_ptr<Cell[]> cells;
    uint64_t mask = 0;  // physical capacity (pow2) - 1
    // contracts-lint: allow(raw-atomic) -- lock-free ring cursors: tail is
    // the single-atomic batch reservation point, credits enforce the exact
    // logical capacity, head is the consumer's drain cursor. These ARE the
    // queue's synchronization, not tallies.
    alignas(64) std::atomic<uint64_t> tail{0};
    alignas(64) std::atomic<int64_t> credits{0};
    alignas(64) std::atomic<uint64_t> head{0};
  };

  bool IsBroadcast(const UpdateEvent& event) const {
    return event.source_id == UpdateEvent::kAllSources && rings_.size() > 1;
  }
  /// All-or-nothing credit grab on one ring; never blocks.
  static bool TryAcquireCredits(Ring& ring, int64_t n);
  /// Blocking credit grab; fails only when the bus closes.
  bool AcquireCredits(Ring& ring, int64_t n);
  /// Credits on EVERY ring (ascending order, deadlock-free because the
  /// consumer never blocks on a producer); rolls back on failure.
  bool AcquireBroadcastCredits(int64_t n, bool blocking);
  /// Reserves `n` cells with one tail.fetch_add and publishes `events`.
  static void WriteRange(Ring& ring, const UpdateEvent* events, size_t n);
  /// One same-destination run: credits → reserve → publish → bookkeeping.
  bool PushRun(const UpdateEvent* events, size_t n, bool broadcast,
               size_t ring_index, bool blocking);
  /// Drains the contiguous published prefix of one ring (up to max_batch).
  size_t DrainRing(Ring& ring, std::vector<UpdateEvent>* out,
                   size_t max_batch);

  const size_t capacity_;  // logical per-ring bound
  std::deque<Ring> rings_;
  size_t next_ring_ = 0;  // consumer-only round-robin cursor

  /// Parking lot only: producers with no credits and the idle consumer
  /// wait here (timed, so a missed notify costs a millisecond, never a
  /// hang). The queue state itself is lock-free (rank kQueue — taken with
  /// no other lock held, never before an engine lock).
  mutable Mutex mu_{LockRank::kQueue, "bus.mu"};
  CondVar not_full_;
  CondVar not_empty_;

  // contracts-lint: allow(raw-atomic) -- close/accept handshake state read
  // on the lock-free push path: closed_ gates acceptance, pending_pushes_
  // lets the consumer distinguish "drained" from "a producer is mid-
  // reservation" at shutdown, total_pushed_ is the progress API the tests
  // and drivers poll without the parking-lot lock.
  std::atomic<bool> closed_{false};
  std::atomic<int64_t> total_pushed_{0};
  std::atomic<int64_t> pending_pushes_{0};

  // Observability (read lock-free by snapshots). `enqueued_` counts
  // accepted events once (a broadcast is one event); `drained_` counts
  // per-ring deliveries, so with broadcasts drained >= enqueued.
  obs::ObsCounter enqueued_;
  obs::ObsCounter drained_;
  obs::ObsCounter drain_batches_;
  obs::Gauge queue_depth_;
  obs::HistogramMetric drain_batch_size_{1.0, 4096.0, 24};
};

}  // namespace apc

#endif  // APC_RUNTIME_UPDATE_BUS_H_
