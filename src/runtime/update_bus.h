#ifndef APC_RUNTIME_UPDATE_BUS_H_
#define APC_RUNTIME_UPDATE_BUS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {

/// One source-update command flowing through the bus. `source_id` of
/// kAllSources means "advance every source one tick" — the batched form of
/// the sequential simulator's global Tick. A specific id advances only that
/// source, which is how trace-driven and per-source update arrival models
/// feed the runtime.
struct UpdateEvent {
  int64_t now = 0;
  int source_id = -1;

  static constexpr int kAllSources = -1;
};

/// Bounded multi-producer single-consumer queue carrying source updates
/// into the runtime's shards. Producers (workload updaters, trace
/// replayers) block when the bus is full — closed-loop backpressure, so a
/// slow consumer throttles its producers instead of the queue growing
/// without bound. The consumer drains events in batches, which is what lets
/// the engine amortize one shard-lock acquisition over many updates.
///
/// Close() wakes everyone: producers fail fast (Push returns false) and the
/// consumer drains whatever remains, then PopBatch returns 0.
class UpdateBus {
 public:
  explicit UpdateBus(size_t capacity = 1024);

  /// Enqueues `event`, blocking while the bus is full. Returns false (and
  /// drops the event) when the bus has been closed.
  bool Push(const UpdateEvent& event);

  /// Non-blocking variant: returns false when full or closed.
  bool TryPush(const UpdateEvent& event);

  /// Moves up to `max_batch` events into `*out` (cleared first). Blocks
  /// until at least one event is available or the bus is closed and
  /// drained; returns the number of events delivered (0 only at shutdown).
  size_t PopBatch(std::vector<UpdateEvent>* out, size_t max_batch);

  /// Closes the bus: subsequent pushes fail, and once the backlog drains
  /// PopBatch returns 0.
  void Close();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Total events ever accepted (monotonic; for progress reporting).
  int64_t total_pushed() const;

  /// Registers this bus's traffic metrics with `registry` under
  /// "<prefix>." names: enqueued/drained/drain_batches counters, a
  /// queue_depth gauge, and a drain_batch_size histogram. Non-owning; call
  /// during engine construction, before concurrent use. All no-ops under
  /// APC_OBS=0.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix);

 private:
  const size_t capacity_;
  /// Innermost lock of the update path: producers and the pump drain hold
  /// no other lock while touching the queue (rank kQueue — closed under
  /// kControl at shutdown, never taken before an engine lock).
  mutable Mutex mu_{LockRank::kQueue, "bus.mu"};
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<UpdateEvent> queue_ APC_GUARDED_BY(mu_);
  bool closed_ APC_GUARDED_BY(mu_) = false;
  int64_t total_pushed_ APC_GUARDED_BY(mu_) = 0;

  // Observability (updated under mu_, read lock-free by snapshots).
  obs::ObsCounter enqueued_;
  obs::ObsCounter drained_;
  obs::ObsCounter drain_batches_;
  obs::Gauge queue_depth_;
  obs::HistogramMetric drain_batch_size_{1.0, 4096.0, 24};
};

}  // namespace apc

#endif  // APC_RUNTIME_UPDATE_BUS_H_
