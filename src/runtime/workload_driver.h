#ifndef APC_RUNTIME_WORKLOAD_DRIVER_H_
#define APC_RUNTIME_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/adaptive_policy.h"
#include "data/random_walk.h"
#include "data/traffic_trace.h"
#include "query/query_gen.h"
#include "runtime/sharded_engine.h"
#include "runtime/tiered_engine.h"
#include "stats/histogram.h"
#include "stats/stats.h"

namespace apc {

/// One regime of a phase-shifting workload. Each query thread issues
/// `queries_per_thread` requests in the phase before moving to the next;
/// the updater thread follows the globally slowest thread's phase, so the
/// update:query ratio flips for the whole system when the run crosses a
/// phase boundary. Dynamic-precision policies are exactly the components
/// such regime changes stress: the per-value widths tuned during a
/// read-heavy phase are wrong for the write-heavy phase that follows, and
/// the adaptive δ must re-converge.
struct WorkloadPhase {
  /// Queries each thread issues in this phase (> 0).
  int64_t queries_per_thread = 0;
  /// Mix of single-source point reads (width bound = the query constraint)
  /// interleaved into each thread's stream; the rest are aggregates.
  double point_read_fraction = 0.0;
  /// Zipf exponent for source selection during the phase (0 = uniform).
  double zipf_s = 0.0;
  /// Tick-all events pushed per updater burst while this phase is active;
  /// 0 pauses updates for the phase (a pure-read regime).
  int update_burst = 8;

  bool IsValid() const {
    return queries_per_thread > 0 && point_read_fraction >= 0.0 &&
           point_read_fraction <= 1.0 && zipf_s >= 0.0 && update_burst >= 0;
  }
};

/// Configuration of the closed-loop concurrent load generator. Each query
/// thread owns independent QueryGenerators (and thus independent Rng
/// streams derived from `seed`), issues its phases' precision-bounded
/// queries back-to-back, and validates that every result interval
/// satisfies its constraint. An optional updater thread streams tick-all
/// events through the engine's UpdateBus while queries run, so
/// value-initiated refreshes race with query-initiated ones the way a live
/// deployment's would.
///
/// When `phases` is empty the run is a single phase assembled from the
/// legacy scalar knobs (`queries_per_thread`, `point_read_fraction`,
/// `update_burst`, `workload.zipf_s`), which keeps old configs working
/// unchanged.
struct DriverConfig {
  int num_threads = 2;
  int64_t queries_per_thread = 1000;
  QueryWorkloadParams workload;
  /// Streams source updates through the UpdateBus during the run. The
  /// driver starts and stops the engine's pump thread itself.
  bool run_updates = true;
  /// Tick-all events pushed per updater burst (bounded by bus capacity).
  int update_burst = 8;
  /// Mix of single-source point reads (width bound = the query constraint)
  /// interleaved into each thread's stream; the rest are aggregates.
  double point_read_fraction = 0.0;
  /// Phase schedule; empty = one phase from the scalar knobs above.
  std::vector<WorkloadPhase> phases;
  uint64_t seed = 1;

  bool IsValid() const {
    if (num_threads <= 0 || point_read_fraction < 0.0 ||
        point_read_fraction > 1.0 || !workload.IsValid()) {
      return false;
    }
    if (phases.empty()) {
      return queries_per_thread > 0 && update_burst > 0;
    }
    for (const WorkloadPhase& phase : phases) {
      if (!phase.IsValid()) return false;
    }
    return true;
  }
};

/// Outcome of a driver run. Latencies are per-query service times in
/// microseconds, aggregated across threads from per-thread log-spaced
/// histograms; `violations` counts result intervals wider than their
/// constraint (must be 0 — the runtime's precision guarantee).
struct DriverReport {
  int64_t queries = 0;
  int64_t violations = 0;
  /// Malformed-input tallies snapshotted from the engine's RuntimeCounters
  /// at the end of the run: update events naming ids no shard owns, and
  /// query/point-read ids dropped from requests. Both are 0 for well-formed
  /// workloads; the bench JSON persists them so malformed-input rates land
  /// in the committed trajectory.
  int64_t rejected_updates = 0;
  int64_t rejected_query_ids = 0;
  /// Logical ticks pushed through the update bus — only events the bus
  /// actually accepted (0 when updates are off), so the tick count and the
  /// EndMeasurement clock never include pushes rejected at shutdown.
  int64_t ticks = 0;
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;
  EngineCosts costs;
};

/// Geo-skewed tiered workload: every query thread has a home edge and
/// draws precision-bounded point reads Zipf-skewed over a per-edge rotated
/// id space, so each edge has its own hotspot (edge e's hottest id is
/// e·num_sources/num_edges). Phases rotate every thread's home edge by one
/// (phase p: thread t reads edge (t + p) % num_edges), migrating each
/// hotspot to a different edge mid-run — the per-(edge, value) derived
/// widths tuned for one affinity are wrong for the next, and the adaptive
/// δ policies must re-converge, the regime shift dynamic-precision systems
/// are sensitive to.
struct TieredWorkloadConfig {
  int num_threads = 2;
  /// Total queries each thread issues across all phases (> 0).
  int64_t queries_per_thread = 1000;
  /// Id space; reads target ids 0..num_sources-1, all of which the engine
  /// must own — RunTieredWorkload refuses to run (zero report) otherwise,
  /// so a config/engine mismatch can never masquerade as precision
  /// violations.
  int num_sources = 50;
  /// Zipf exponent of the per-edge hotspot (0 = uniform, no hotspot).
  double zipf_s = 1.1;
  /// Distribution of read precision constraints.
  ConstraintParams constraints{20.0, 1.0};
  /// Streams tick-all events through the engine's UpdateBus during the
  /// run; `update_burst` events per updater burst (0 = no updates).
  bool run_updates = true;
  int update_burst = 8;
  /// Number of edge-affinity phases; each thread splits its query budget
  /// evenly across them (remainder to the last phase).
  int num_phases = 1;
  uint64_t seed = 1;

  bool IsValid() const {
    return num_threads > 0 && queries_per_thread > 0 && num_sources > 0 &&
           zipf_s >= 0.0 && constraints.IsValid() && update_burst >= 0 &&
           num_phases > 0 && num_phases <= queries_per_thread;
  }
};

/// Outcome of a tiered driver run: latency/throughput plus where reads
/// were served (edge / regional / source) and the per-link costs.
struct TieredDriverReport {
  int64_t queries = 0;
  /// Result intervals wider than their constraint (must be 0).
  int64_t violations = 0;
  int64_t ticks = 0;
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;
  /// Read-path outcome tallies from TieredCounters.
  int64_t edge_hits = 0;
  int64_t regional_hits = 0;
  int64_t source_pulls = 0;
  int64_t derived_pushes = 0;
  int64_t lost_wan_pushes = 0;
  int64_t lost_lan_pushes = 0;
  /// Per-link cost aggregates over the measured period.
  EngineCosts wan;
  EngineCosts lan;

  double TotalCostRate() const { return wan.CostRate() + lan.CostRate(); }
};

/// Configuration of the subscription workload: a population of standing
/// precision-bounded queries (subscriber count × churn × δ_sub
/// distribution) registered against a ShardedEngine the driver builds in
/// place, with subscriber threads draining the NotificationHub while the
/// updater streams ticks through the UpdateBus — the push-side mirror of
/// the polling workloads above.
struct SubscriptionWorkloadConfig {
  /// Engine shape; `system.cache_capacity` etc. apply as usual. The driver
  /// builds the engine itself (it must also build the seed-identical twin
  /// for the polling-equivalent replay).
  EngineConfig engine;
  int num_sources = 64;
  RandomWalkParams walk;
  AdaptivePolicyParams policy;
  /// Standing queries registered before measurement begins.
  int num_subscribers = 64;
  /// Threads draining the hub (the "clients").
  int subscriber_threads = 2;
  /// Fraction of single-source subscriptions; the rest are group_size-id
  /// aggregates rotating through SUM/MAX/MIN/AVG.
  double point_fraction = 1.0;
  int group_size = 8;
  /// Distribution of per-subscription bounds δ_sub.
  ConstraintParams deltas{20.0, 1.0};
  /// Update ticks streamed through the bus during measurement.
  int64_t ticks = 2000;
  int update_burst = 8;
  /// Subscription churn: unsubscribe-a-random-standing-query-and-register-
  /// a-fresh-one operations performed by a control thread during the run.
  int churn_ops = 0;
  /// Live Reprecision operations (random subscription, fresh δ_sub draw)
  /// interleaved with the churn.
  int reprecision_ops = 0;
  /// Runs the lockstep polling-equivalent replay and fills the polling_*
  /// report fields — the savings claim is computed here, in one place.
  bool run_polling_equivalent = true;
  /// Runs the concurrent no-missed-violation checker during the run.
  bool run_violation_checker = true;
  uint64_t seed = 1;

  bool IsValid() const {
    return engine.IsValid() && num_sources > 0 && num_subscribers > 0 &&
           subscriber_threads > 0 && point_fraction >= 0.0 &&
           point_fraction <= 1.0 && group_size > 0 &&
           group_size <= num_sources && deltas.IsValid() && ticks > 0 &&
           update_burst > 0 && churn_ops >= 0 && reprecision_ops >= 0;
  }
};

/// Outcome of a subscription driver run. The polling_* fields hold the
/// measured polling-equivalent workload (same standing set, one poll per
/// subscription per tick against a seed-identical fresh engine), so every
/// bench's savings claim divides numbers computed by this one function.
/// Client-link charging uses the engine's own cost model: one Cvr per
/// pushed notification, one Cqr per poll round trip.
struct SubscriptionDriverReport {
  int64_t subscriptions = 0;
  /// Notifications queued during measurement (registration answers are
  /// pre-measurement and excluded).
  int64_t notifications = 0;
  /// Notifications actually drained by subscriber threads (whole run).
  int64_t delivered = 0;
  int64_t escalations = 0;
  int64_t evaluations = 0;
  int64_t suppressed = 0;
  int64_t churn_ops = 0;
  int64_t reprecision_ops = 0;
  /// Concurrent no-missed-violation probes and failures (must be 0): a
  /// probe fails when a subscriber-held answer no longer contains the true
  /// value and no fresher notification is queued or in flight.
  int64_t checker_probes = 0;
  int64_t missed_violations = 0;
  /// Per-subscription epoch regressions observed at drain time (only
  /// checkable — and guaranteed 0 — with one subscriber thread).
  int64_t order_regressions = 0;
  int64_t ticks = 0;
  double wall_seconds = 0.0;
  double notifications_per_second = 0.0;
  /// Delivery lag in logical ticks (drain-time clock − answer compute
  /// tick) over change-driven notifications.
  double delivery_lag_ticks_mean = 0.0;
  double delivery_lag_ticks_p99 = 0.0;
  /// Lag percentiles from the engine's metrics registry histogram
  /// ("subs.delivery_lag_ticks", fed by the subscriber threads through
  /// SubscriptionManager::RecordDeliveryLag). Falls back to the driver's
  /// own merged histogram under APC_OBS=0, so the fields are populated in
  /// both builds.
  double delivery_lag_ticks_p50 = 0.0;
  double delivery_lag_ticks_p90 = 0.0;
  /// Engine-side Cvr/Cqr over the measured period (subscription run).
  EngineCosts costs;
  /// notifications × Cvr: the client-link push traffic.
  double client_push_cost = 0.0;
  /// costs.total_cost + client_push_cost.
  double subscription_total_cost = 0.0;
  // -- the measured polling equivalent (0 when disabled) ----------------
  int64_t polls = 0;
  EngineCosts polling_costs;
  /// polls × Cqr: the client-link poll traffic.
  double polling_client_cost = 0.0;
  /// polling_costs.total_cost + polling_client_cost — the number the
  /// subscription_total_cost savings claim is measured against.
  double polling_equivalent_cost = 0.0;
};

/// Builds n random-walk sources with per-source forked policy/stream seeds
/// — the standard source population for runtime benches and tests.
std::vector<std::unique_ptr<Source>> BuildRandomWalkSources(
    int n, const RandomWalkParams& walk, const AdaptivePolicyParams& policy,
    uint64_t seed);

/// Builds n bare random-walk update streams with per-stream seeds forked
/// from `seed` — the source population for TieredEngine and
/// HierarchicalSystem (which own the policies themselves). Deterministic:
/// two calls with equal arguments produce identical stream sets, which is
/// what the lockstep parity harnesses rely on.
std::vector<std::unique_ptr<UpdateStream>> BuildRandomWalkStreams(
    int n, const RandomWalkParams& walk, uint64_t seed);

/// Builds one SeriesStream-backed source per trace host: source id h plays
/// back trace.hosts[h] (value at time t = hosts[h][t]; the last value
/// repeats past the end). The per-source policy seeds are forked from
/// `seed` in exactly the order BuildRandomWalkSources forks them — the
/// stream-seed slot is drawn and discarded — so a trace recorded from a
/// BuildRandomWalkSources population replays against policies whose
/// probabilistic grow/shrink decisions are bit-for-bit the original run's.
std::vector<std::unique_ptr<Source>> BuildTraceSources(
    const Trace& trace, const AdaptivePolicyParams& policy, uint64_t seed);

/// Builds one bare SeriesStream per trace host, for the engines that own
/// their precision policies (TieredEngine, HierarchicalSystem, baselines).
std::vector<std::unique_ptr<UpdateStream>> BuildTraceStreams(
    const Trace& trace);

/// Runs the closed-loop workload against `engine`: populates the cache,
/// begins measurement, fans out query threads (plus the updater when
/// enabled), joins everything, ends measurement, and returns the merged
/// report. With `run_updates` set the engine's UpdateBus is closed when
/// the run ends, so each engine supports one updating run. An invalid
/// config yields the zero report without touching the engine.
DriverReport RunWorkload(ShardedEngine& engine, const DriverConfig& config);

/// Runs the geo-skewed tiered workload against `engine`: populates both
/// tiers, begins measurement, fans out query threads issuing
/// precision-bounded edge reads (plus the updater when enabled), joins
/// everything, ends measurement, and returns the merged report. With
/// `run_updates` set the engine's UpdateBus is closed when the run ends,
/// so each engine supports one updating run. An invalid config yields the
/// zero report without touching the engine.
TieredDriverReport RunTieredWorkload(TieredEngine& engine,
                                     const TieredWorkloadConfig& config);

/// Runs the subscription workload: builds the engine, registers the
/// standing-query population, fans out subscriber/updater/churn/checker
/// threads, joins everything, then (when enabled) replays the measured
/// polling equivalent against a seed-identical fresh engine. An invalid
/// config yields the zero report.
SubscriptionDriverReport RunSubscriptionWorkload(
    const SubscriptionWorkloadConfig& config);

}  // namespace apc

#endif  // APC_RUNTIME_WORKLOAD_DRIVER_H_
