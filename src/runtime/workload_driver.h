#ifndef APC_RUNTIME_WORKLOAD_DRIVER_H_
#define APC_RUNTIME_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/adaptive_policy.h"
#include "data/random_walk.h"
#include "query/query_gen.h"
#include "runtime/sharded_engine.h"
#include "stats/histogram.h"
#include "stats/stats.h"

namespace apc {

/// Configuration of the closed-loop concurrent load generator. Each query
/// thread owns an independent QueryGenerator (and thus an independent Rng
/// stream derived from `seed`), issues `queries_per_thread` precision-
/// bounded aggregate queries back-to-back, and validates that every result
/// interval satisfies its constraint. An optional updater thread streams
/// tick-all events through the engine's UpdateBus while queries run, so
/// value-initiated refreshes race with query-initiated ones the way a live
/// deployment's would.
struct DriverConfig {
  int num_threads = 2;
  int64_t queries_per_thread = 1000;
  QueryWorkloadParams workload;
  /// Streams source updates through the UpdateBus during the run. The
  /// driver starts and stops the engine's pump thread itself.
  bool run_updates = true;
  /// Tick-all events pushed per updater burst (bounded by bus capacity).
  int update_burst = 8;
  /// Mix of single-source point reads (width bound = the query constraint)
  /// interleaved into each thread's stream; the rest are aggregates.
  double point_read_fraction = 0.0;
  uint64_t seed = 1;

  bool IsValid() const {
    return num_threads > 0 && queries_per_thread > 0 && update_burst > 0 &&
           point_read_fraction >= 0.0 && point_read_fraction <= 1.0 &&
           workload.IsValid();
  }
};

/// Outcome of a driver run. Latencies are per-query service times in
/// microseconds, aggregated across threads from per-thread log-spaced
/// histograms; `violations` counts result intervals wider than their
/// constraint (must be 0 — the runtime's precision guarantee).
struct DriverReport {
  int64_t queries = 0;
  int64_t violations = 0;
  /// Logical ticks pushed through the update bus (0 when updates are off).
  int64_t ticks = 0;
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;
  EngineCosts costs;
};

/// Builds n random-walk sources with per-source forked policy/stream seeds
/// — the standard source population for runtime benches and tests.
std::vector<std::unique_ptr<Source>> BuildRandomWalkSources(
    int n, const RandomWalkParams& walk, const AdaptivePolicyParams& policy,
    uint64_t seed);

/// Runs the closed-loop workload against `engine`: populates the cache,
/// begins measurement, fans out query threads (plus the updater when
/// enabled), joins everything, ends measurement, and returns the merged
/// report. With `run_updates` set the engine's UpdateBus is closed when
/// the run ends, so each engine supports one updating run. An invalid
/// config yields the zero report without touching the engine.
DriverReport RunWorkload(ShardedEngine& engine, const DriverConfig& config);

}  // namespace apc

#endif  // APC_RUNTIME_WORKLOAD_DRIVER_H_
