#include "runtime/update_bus.h"

#include <thread>

#include "obs/trace.h"

namespace apc {

UpdateBus::Ring::Ring(size_t logical_capacity) {
  size_t physical = 1;
  while (physical < logical_capacity) physical <<= 1;
  cells = std::make_unique<Cell[]>(physical);
  mask = physical - 1;
  // Cell i starts free for position i: seq == position marks "recycled,
  // ready for the producer that reserved this position".
  for (size_t i = 0; i < physical; ++i) {
    cells[i].seq.store(i, std::memory_order_relaxed);
  }
  credits.store(static_cast<int64_t>(logical_capacity),
                std::memory_order_relaxed);
}

UpdateBus::UpdateBus(size_t capacity, size_t num_rings)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (num_rings == 0) num_rings = 1;
  for (size_t i = 0; i < num_rings; ++i) rings_.emplace_back(capacity_);
}

void UpdateBus::RegisterMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) {
  registry->RegisterCounter(prefix + ".enqueued", &enqueued_);
  registry->RegisterCounter(prefix + ".drained", &drained_);
  registry->RegisterCounter(prefix + ".drain_batches", &drain_batches_);
  registry->RegisterGauge(prefix + ".queue_depth", &queue_depth_);
  registry->RegisterHistogram(prefix + ".drain_batch_size",
                              &drain_batch_size_);
}

bool UpdateBus::TryAcquireCredits(Ring& ring, int64_t n) {
  int64_t current = ring.credits.load(std::memory_order_relaxed);
  while (current >= n) {
    // Acquire on success: synchronizes with the consumer's release credit
    // return, making the recycled cells visible before we write them.
    if (ring.credits.compare_exchange_weak(current, current - n,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

bool UpdateBus::AcquireCredits(Ring& ring, int64_t n) {
  if (closed_.load(std::memory_order_acquire)) return false;
  if (TryAcquireCredits(ring, n)) return true;
  MutexLock lock(mu_);
  for (;;) {
    if (closed_.load(std::memory_order_acquire)) return false;
    if (TryAcquireCredits(ring, n)) return true;
    // Timed wait: a notify can race the re-check (the consumer returns
    // credits without the parking-lot lock), so never park unbounded.
    not_full_.WaitFor(mu_, 1);
  }
}

bool UpdateBus::AcquireBroadcastCredits(int64_t n, bool blocking) {
  for (size_t r = 0; r < rings_.size(); ++r) {
    bool ok = blocking ? AcquireCredits(rings_[r], n)
                       : (!closed_.load(std::memory_order_acquire) &&
                          TryAcquireCredits(rings_[r], n));
    if (!ok) {
      for (size_t i = 0; i < r; ++i) {
        rings_[i].credits.fetch_add(n, std::memory_order_release);
      }
      not_full_.NotifyAll();
      return false;
    }
  }
  return true;
}

void UpdateBus::WriteRange(Ring& ring, const UpdateEvent* events, size_t n) {
  // THE batch reservation: one fetch_add claims n contiguous positions for
  // this producer, however many producers are racing.
  uint64_t pos = ring.tail.fetch_add(n, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    Cell& cell = ring.cells[(pos + i) & ring.mask];
    // An acquired credit guarantees the cell is already recycled (credits
    // are returned only after recycling, and the consumer recycles in
    // order); the spin is a correctness backstop that never iterates.
    while (cell.seq.load(std::memory_order_acquire) != pos + i) {
      std::this_thread::yield();
    }
    cell.event = events[i];
    cell.seq.store(pos + i + 1, std::memory_order_release);
  }
}

bool UpdateBus::PushRun(const UpdateEvent* events, size_t n, bool broadcast,
                        size_t ring_index, bool blocking) {
  // pending_pushes_ must cover the whole accept window (seq_cst pairs with
  // the consumer's shutdown check): once a producer passes the closed_
  // gate, the consumer cannot conclude "drained" until the events are
  // published.
  pending_pushes_.fetch_add(1, std::memory_order_seq_cst);
  bool acquired;
  if (broadcast) {
    acquired = AcquireBroadcastCredits(static_cast<int64_t>(n), blocking);
  } else if (blocking) {
    acquired = AcquireCredits(rings_[ring_index], static_cast<int64_t>(n));
  } else {
    acquired = !closed_.load(std::memory_order_seq_cst) &&
               TryAcquireCredits(rings_[ring_index], static_cast<int64_t>(n));
  }
  if (!acquired) {
    pending_pushes_.fetch_sub(1, std::memory_order_seq_cst);
    return false;
  }
  if (broadcast) {
    for (Ring& ring : rings_) WriteRange(ring, events, n);
  } else {
    WriteRange(rings_[ring_index], events, n);
  }
  total_pushed_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  pending_pushes_.fetch_sub(1, std::memory_order_seq_cst);

  enqueued_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
  int64_t depth = static_cast<int64_t>(size());
  queue_depth_.Set(depth);
  for (size_t i = 0; i < n; ++i) {
    obs::TraceRecorder::Record(obs::TraceEvent::kBusEnqueue,
                               events[i].source_id, events[i].now, depth);
  }
  not_empty_.NotifyOne();
  return true;
}

bool UpdateBus::Push(const UpdateEvent& event) {
  bool broadcast = IsBroadcast(event);
  size_t ring = broadcast ? 0 : RingOf(event.source_id);
  return PushRun(&event, 1, broadcast, ring, /*blocking=*/true);
}

bool UpdateBus::TryPush(const UpdateEvent& event) {
  bool broadcast = IsBroadcast(event);
  size_t ring = broadcast ? 0 : RingOf(event.source_id);
  return PushRun(&event, 1, broadcast, ring, /*blocking=*/false);
}

size_t UpdateBus::PushBatch(const UpdateEvent* events, size_t count) {
  size_t accepted = 0;
  size_t i = 0;
  while (i < count) {
    // Maximal same-destination run, chunked to the per-ring capacity so a
    // single reservation can always be satisfied.
    bool broadcast = IsBroadcast(events[i]);
    size_t ring = broadcast ? 0 : RingOf(events[i].source_id);
    size_t j = i + 1;
    while (j < count && j - i < capacity_ &&
           IsBroadcast(events[j]) == broadcast &&
           (broadcast || RingOf(events[j].source_id) == ring)) {
      ++j;
    }
    size_t n = j - i;
    if (!PushRun(events + i, n, broadcast, ring, /*blocking=*/true)) break;
    accepted += n;
    i = j;
  }
  return accepted;
}

size_t UpdateBus::DrainRing(Ring& ring, std::vector<UpdateEvent>* out,
                            size_t max_batch) {
  uint64_t head = ring.head.load(std::memory_order_relaxed);
  size_t n = 0;
  while (n < max_batch) {
    Cell& cell = ring.cells[(head + n) & ring.mask];
    // seq == position+1 marks "published"; the drain stops at the first
    // unpublished cell, so a mid-reservation producer only delays its own
    // suffix, never reorders anything.
    if (cell.seq.load(std::memory_order_acquire) !=
        head + n + 1) {
      break;
    }
    out->push_back(cell.event);
    ++n;
  }
  if (n == 0) return 0;
  for (size_t i = 0; i < n; ++i) {
    Cell& cell = ring.cells[(head + i) & ring.mask];
    cell.seq.store(head + i + ring.mask + 1, std::memory_order_release);
  }
  ring.head.store(head + n, std::memory_order_release);
  ring.credits.fetch_add(static_cast<int64_t>(n), std::memory_order_release);
  return n;
}

size_t UpdateBus::PopBatch(std::vector<UpdateEvent>* out, size_t max_batch,
                           size_t* source_ring) {
  out->clear();
  if (max_batch == 0) return 0;
  for (;;) {
    for (size_t k = 0; k < rings_.size(); ++k) {
      size_t r = (next_ring_ + k) % rings_.size();
      size_t n = DrainRing(rings_[r], out, max_batch);
      if (n == 0) continue;
      next_ring_ = (r + 1) % rings_.size();
      if (source_ring != nullptr) *source_ring = r;
      drained_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
      drain_batches_.fetch_add(1, std::memory_order_relaxed);
      drain_batch_size_.Record(static_cast<double>(n));
      queue_depth_.Set(static_cast<int64_t>(size()));
      obs::TraceRecorder::Record(obs::TraceEvent::kBusDrainBatch, /*id=*/-1,
                                 out->back().now, static_cast<int64_t>(n));
      not_full_.NotifyAll();
      return n;
    }
    if (closed_.load(std::memory_order_seq_cst) &&
        pending_pushes_.load(std::memory_order_seq_cst) == 0) {
      // No producer is mid-accept, so tails are final; if every ring's
      // head caught up, the backlog is truly drained. (A publish that
      // landed between the scan above and this check just loops again.)
      bool drained = true;
      for (Ring& ring : rings_) {
        if (ring.head.load(std::memory_order_acquire) !=
            ring.tail.load(std::memory_order_acquire)) {
          drained = false;
          break;
        }
      }
      if (drained) return 0;
      continue;
    }
    MutexLock lock(mu_);
    // Timed wait: producers notify without the parking-lot lock, so a
    // notify can land between the scan and the wait; the timeout bounds
    // that race to a millisecond.
    not_empty_.WaitFor(mu_, 1);
  }
}

void UpdateBus::Close() {
  closed_.store(true, std::memory_order_seq_cst);
  // Take the parking lot once so no waiter can be between its closed_
  // check and its wait when the notifications fire.
  { MutexLock lock(mu_); }
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
}

size_t UpdateBus::size() const {
  size_t total = 0;
  for (const Ring& ring : rings_) {
    uint64_t tail = ring.tail.load(std::memory_order_acquire);
    uint64_t head = ring.head.load(std::memory_order_acquire);
    if (tail > head) total += static_cast<size_t>(tail - head);
  }
  return total;
}

}  // namespace apc
