#include "runtime/update_bus.h"

#include "obs/trace.h"

namespace apc {

UpdateBus::UpdateBus(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void UpdateBus::RegisterMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) {
  registry->RegisterCounter(prefix + ".enqueued", &enqueued_);
  registry->RegisterCounter(prefix + ".drained", &drained_);
  registry->RegisterCounter(prefix + ".drain_batches", &drain_batches_);
  registry->RegisterGauge(prefix + ".queue_depth", &queue_depth_);
  registry->RegisterHistogram(prefix + ".drain_batch_size",
                              &drain_batch_size_);
}

bool UpdateBus::Push(const UpdateEvent& event) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return false;
  queue_.push_back(event);
  ++total_pushed_;
  size_t depth = queue_.size();
  lock.unlock();
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.Set(static_cast<int64_t>(depth));
  obs::TraceRecorder::Record(obs::TraceEvent::kBusEnqueue, event.source_id,
                             event.now, static_cast<int64_t>(depth));
  not_empty_.notify_one();
  return true;
}

bool UpdateBus::TryPush(const UpdateEvent& event) {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(event);
    ++total_pushed_;
    depth = queue_.size();
  }
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.Set(static_cast<int64_t>(depth));
  obs::TraceRecorder::Record(obs::TraceEvent::kBusEnqueue, event.source_id,
                             event.now, static_cast<int64_t>(depth));
  not_empty_.notify_one();
  return true;
}

size_t UpdateBus::PopBatch(std::vector<UpdateEvent>* out, size_t max_batch) {
  out->clear();
  if (max_batch == 0) return 0;
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  size_t n = queue_.size() < max_batch ? queue_.size() : max_batch;
  for (size_t i = 0; i < n; ++i) {
    out->push_back(queue_.front());
    queue_.pop_front();
  }
  size_t depth = queue_.size();
  lock.unlock();
  if (n > 0) {
    drained_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
    drain_batches_.fetch_add(1, std::memory_order_relaxed);
    drain_batch_size_.Record(static_cast<double>(n));
    queue_depth_.Set(static_cast<int64_t>(depth));
    obs::TraceRecorder::Record(obs::TraceEvent::kBusDrainBatch, /*id=*/-1,
                               out->back().now, static_cast<int64_t>(n));
    not_full_.notify_all();
  }
  return n;
}

void UpdateBus::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool UpdateBus::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t UpdateBus::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int64_t UpdateBus::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pushed_;
}

}  // namespace apc
