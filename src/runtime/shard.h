#ifndef APC_RUNTIME_SHARD_H_
#define APC_RUNTIME_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/source.h"
#include "cache/system.h"
#include "core/interval.h"
#include "core/protocol_table.h"
#include "obs/metrics.h"
#include "query/aggregate.h"
#include "runtime/update_bus.h"
#include "subscribe/change_sink.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {

/// How snapshot reads acquire the shard. The runtime's hot path is a read
/// that the cache already satisfies; the three modes trade lock traffic on
/// exactly that path and exist side by side so the bench measures (rather
/// than assumes) what each step buys:
///
///  * kSeqlock   — the default. Snapshot reads validate an optimistic
///                 per-entry read against the ProtocolTable's versioned
///                 slots and take NO shard lock at all; only a torn read
///                 (a racing refresh of the same entry) falls back to the
///                 shared lock. Refreshes still serialize exclusively.
///  * kShared    — snapshot reads take the shard's shared_mutex shared
///                 (the pre-seqlock runtime): readers don't serialize
///                 against each other, but every read still pays two
///                 atomic RMWs on the shared lock word.
///  * kExclusive — every access exclusive (the original runtime); the
///                 bench's contention baseline.
enum class ReadLockMode {
  kSeqlock,
  kShared,
  kExclusive,
};

/// Engine-wide tallies kept in lock-free counters so monitoring threads can
/// observe totals without taking any shard lock. Shards bump these
/// alongside their own (mutex-guarded) CostTracker; after a quiescent point
/// the two views agree exactly. The fields are obs::Counter — striped under
/// APC_OBS=1, a single plain atomic under APC_OBS=0 — so the .load() /
/// .fetch_add() accessor surface (and the exact-total guarantee) is
/// identical in both builds.
struct RuntimeCounters {
  obs::Counter value_refreshes;
  obs::Counter query_refreshes;
  obs::Counter lost_pushes;
  obs::Counter queries_executed;
  obs::Counter updates_applied;
  /// Update events naming a source id no shard owns: skipped and counted
  /// rather than crashing the pump thread.
  obs::Counter rejected_updates;
  /// Query/point-read source ids no shard owns: dropped from the request
  /// and counted (the malformed id contributes nothing to the result).
  obs::Counter rejected_query_ids;
  /// Sources rejected at engine construction: null, duplicate id, or a
  /// precision policy whose configuration is invalid (see
  /// PrecisionPolicy::IsValidConfig).
  obs::Counter rejected_sources;
  /// Trace files rejected at load time: unreadable, empty, ragged, or a
  /// dimension header disagreeing with the rows present (see
  /// data/trace_io.h). Counted by the scenario harness, never fatal.
  obs::Counter rejected_traces;

  /// Observability-only tallies for the seqlock read path (no-ops under
  /// APC_OBS=0): optimistic reads that tore against a racing refresh, and
  /// shared-lock acquisitions taken to settle them.
  obs::ObsCounter seqlock_retries;
  obs::ObsCounter shared_fallbacks;

  /// Registers every field with `registry` under "<prefix>." names (the
  /// seqlock pair under "read."). Non-owning; this struct must outlive the
  /// registry's snapshots.
  void RegisterWith(obs::MetricsRegistry* registry,
                    const std::string& prefix) const;
};

/// A slot to fill in (or pull for) a query's item vector: the index into the
/// caller's `items` array paired with the source id living on this shard.
using ShardSlot = std::pair<size_t, int>;

/// One partition of the concurrent runtime: a slice of the environment
/// owning the sources hashed to it, their share of the cache capacity, and
/// a shared-core ProtocolTable. All public methods are thread-safe; batch
/// variants take the shard lock once per call so a query crossing the
/// shard pays one lock acquisition rather than one per value.
///
/// Writes (ticks, pulls) always hold the shard's shared_mutex exclusively.
/// Pure snapshot reads (FillIntervals, VisibleInterval, the satisfied
/// branch of PointRead) follow the configured ReadLockMode: optimistic
/// per-entry seqlock validation by default — the read hot path acquires no
/// lock at all — with shared- and exclusive-acquisition modes kept as
/// measurable bench baselines.
///
/// The refresh semantics are the shared protocol core's
/// (core/protocol_table.h), the same table the sequential CacheSystem
/// drives: value-initiated refreshes are charged even when the push is
/// lost in transit, eviction ordering uses raw widths, and every
/// query-initiated pull re-offers the fresh approximation to the cache. A
/// single-shard engine driven in lockstep from one thread and seeded like
/// the CacheSystem therefore reproduces its cost accounting exactly,
/// including under push-loss injection (tested in tests/runtime_test.cc).
class Shard {
 public:
  /// `capacity` is this shard's slice of the system's cache capacity χ.
  /// `counters` (owned by the engine) may be null in unit tests.
  Shard(int index, const SystemConfig& config, size_t capacity, uint64_t seed,
        RuntimeCounters* counters,
        ReadLockMode read_mode = ReadLockMode::kSeqlock);

  /// Registers a source on this shard. Returns false — and drops the
  /// source — when it is null or its id is already registered. Not
  /// thread-safe; sources are added during engine construction, before any
  /// concurrent access.
  bool AddSource(std::unique_ptr<Source> source);

  int index() const { return index_; }
  size_t num_sources() const;
  /// Safe without the lock: the id map is immutable once construction ends.
  bool Owns(int id) const { return by_id_.count(id) != 0; }

  /// Attaches the subscription subsystem's change sink. Once tracking is
  /// also enabled (EnableChangeTracking), every mutating method hands the
  /// ids whose cached visible interval changed to the sink WHILE still
  /// holding the shard lock (the sink only enqueues), so a change is
  /// always in flight before the mutation is observable — the ordering the
  /// no-missed-violation checker relies on. Not thread-safe; call during
  /// engine construction, before any concurrent access.
  void SetChangeSink(IntervalChangeSink* sink);

  /// Turns on the protocol table's dirty-id recording, under the shard
  /// lock — called on the first Subscribe (SubscriptionActivate), so
  /// subscription-free engines never pay for change tracking. Thread-safe.
  void EnableChangeTracking();

  /// Attaches the engine's cost-attribution sink to this shard's protocol
  /// table (non-owning; see ProtocolTable::SetAttribution). Not
  /// thread-safe; call during engine construction, before any concurrent
  /// access, like SetChangeSink.
  void SetAttribution(obs::AttributionTable* sink);

  /// Ships every owned source's initial approximation (free of charge).
  void PopulateInitial(int64_t now);

  /// Advances every owned source one tick and performs the value-initiated
  /// refreshes the new values trigger, in source-registration order.
  void TickAll(int64_t now);

  /// Advances a single owned source and performs its value-initiated
  /// refresh if triggered. An unknown id is skipped and counted in
  /// RuntimeCounters::rejected_updates (and rejected_updates()).
  void TickSource(int id, int64_t now);

  /// Applies a batch of single-source updates under one lock acquisition.
  /// Pairs naming ids this shard does not own are skipped and counted.
  void TickSources(const std::vector<std::pair<int, int64_t>>& updates);

  /// Applies one drained bus burst under ONE lock acquisition: a
  /// kAllSources event ticks every owned source at its time, a specific id
  /// ticks that source (unowned ids are skipped and counted as rejected).
  /// Changes are published once at the batch-maximum time, like
  /// TickSources. This is the pump's whole-burst entry point — the reason
  /// the bus drains per-ring batches.
  void ApplyEvents(const UpdateEvent* events, size_t count);

  /// The interval a query sees for `id` at `now`: the cached interval, or
  /// the unbounded interval when the value is not cached.
  Interval VisibleInterval(int id, int64_t now) const;

  /// Fills `items->at(slot.first).interval` with the visible interval of
  /// `slot.second` for every slot. In seqlock mode this takes no lock for
  /// entries whose optimistic read validates, and one shared acquisition
  /// for any that tore; in the other modes it is one acquisition total.
  void FillIntervals(const std::vector<ShardSlot>& slots,
                     std::vector<QueryItem>* items, int64_t now) const;

  /// Pulls the exact value of `id` (query-initiated refresh): charges Cqr,
  /// adjusts the source's width, re-offers the fresh approximation, and
  /// returns the exact value. An unowned id is charge-free, counted as
  /// rejected, and yields NaN.
  double PullExact(int id, int64_t now);

  /// Pulls every slot's source exactly and stores Interval::Exact into the
  /// corresponding item, under one lock acquisition. Slots naming unowned
  /// ids keep their snapshot interval and are counted as rejected.
  void PullExactMany(const std::vector<ShardSlot>& slots,
                     std::vector<QueryItem>* items, int64_t now);

  /// Runs the MAX/MIN candidate-elimination loop for as long as the next
  /// candidate is owned by this shard, under ONE exclusive lock
  /// acquisition: pulls the candidate, stores the exact interval into every
  /// item with that source id (a duplicated id is charged once), and
  /// recomputes. `first_idx` is the candidate that routed the caller here
  /// (already known to live on this shard). Returns the first candidate
  /// index owned by another shard, or -1 when the constraint is satisfied.
  /// `kind` must be kMax or kMin.
  int PullCandidateRun(AggregateKind kind, double constraint, int first_idx,
                       std::vector<QueryItem>* items, int64_t now);

  /// Precision-bounded point read: returns the cached interval when its
  /// width already satisfies `max_width` (optimistic or shared read per
  /// the mode), otherwise takes the exclusive lock, re-checks — a racing
  /// refresh may have satisfied the bound in between, in which case
  /// nothing is charged — and pulls the exact value (one query-initiated
  /// refresh). An unowned id yields the unbounded interval, charge-free,
  /// counted as rejected.
  Interval PointRead(int id, double max_width, int64_t now);

  void BeginMeasurement(int64_t now);
  void EndMeasurement(int64_t now);

  /// Copy of this shard's cost tracker (consistent snapshot under lock).
  CostTracker CostsSnapshot() const;

  /// Sum of retained raw widths across owned sources (for engine-level
  /// MeanRawWidth), plus the count, as one locked snapshot.
  std::pair<double, size_t> RawWidthSum() const;

  size_t CacheSize() const;
  size_t CacheCapacity() const;
  int64_t lost_pushes() const;
  int64_t rejected_updates() const;

  /// Current exact value of an owned source (consistent under the shard
  /// lock), or NaN for an unowned id. Charge-free observability — the
  /// no-missed-violation checker reads truth through this.
  double SourceValue(int id) const;

 private:
  /// Owned source for `id`, or nullptr (never throws — pump hardening).
  Source* FindSource(int id) const APC_REQUIRES_SHARED(mu_);
  void TickSourceLocked(Source* src, int64_t now) APC_REQUIRES(mu_);
  void RecordRejectedUpdateLocked(int id, int64_t now) APC_REQUIRES(mu_);
  void RecordRejectedQueryId(int id, int64_t now) const;
  /// Query-initiated exact pull of `src` (charges Cqr, re-offers the fresh
  /// approximation); requires the shard lock held exclusively.
  double PullExactLocked(Source* src, int64_t now) APC_REQUIRES(mu_);
  /// Drains the table's dirty ids to the change sink; requires the shard
  /// lock held exclusively. No-op without a sink.
  void PublishChangesLocked(int64_t now) APC_REQUIRES(mu_);
  /// Observability taps for the seqlock read path: counter bump (skipped
  /// when the shard is engine-less) plus a trace event when recording.
  void RecordSeqlockRetry(int id, int64_t now) const;
  void RecordSharedFallback(int id, int64_t now, int64_t torn_count) const;
  /// The seqlock optimistic read — the ONE sanctioned analysis carve-out:
  /// it touches `table_`'s versioned slots with no shard lock by design
  /// (validation detects torn reads), which GUARDED_BY cannot type.
  SnapshotRead TryVisibleIntervalNoLock(int id, int64_t now, Interval* out)
      const APC_NO_THREAD_SAFETY_ANALYSIS;

  const int index_;
  RuntimeCounters* const counters_;
  const ReadLockMode read_mode_;

  /// One lock class kEngineShard for every shard: engines take shard locks
  /// one at a time (never two shards nested), after the subscription
  /// manager's mutex and before edge/queue/leaf classes.
  mutable SharedMutex mu_{LockRank::kEngineShard, "shard.mu"};
  std::vector<std::unique_ptr<Source>> sources_ APC_GUARDED_BY(mu_);
  /// Immutable once construction ends (AddSource documents this); Owns()
  /// reads it lock-free from any thread, so it is deliberately unguarded.
  std::unordered_map<int, size_t> by_id_;
  ProtocolTable table_ APC_GUARDED_BY(mu_);
  int64_t rejected_updates_ APC_GUARDED_BY(mu_) = 0;
  /// Set once before concurrent use (SetChangeSink documents this); the
  /// pointee is thread-safe (it only enqueues), so unguarded like by_id_.
  IntervalChangeSink* sink_ = nullptr;
  std::vector<int> dirty_scratch_ APC_GUARDED_BY(mu_);  // exclusive-lock scratch
};

}  // namespace apc

#endif  // APC_RUNTIME_SHARD_H_
