#include "runtime/workload_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

namespace apc {

namespace {

/// Layout shared by every thread's latency histogram so they merge.
Histogram MakeLatencyHistogram() {
  return Histogram::LogSpaced(/*lo=*/0.1, /*hi=*/1e7, /*bins=*/200);
}

/// Precision constraints are satisfied exactly by construction; the
/// tolerance only absorbs floating-point rounding in interval sums.
bool ViolatesConstraint(const Interval& result, double constraint) {
  double tolerance = 1e-9 * (1.0 + std::fabs(constraint));
  return result.Width() > constraint + tolerance;
}

struct ThreadResult {
  Histogram latency_us = MakeLatencyHistogram();
  SummaryStats stats;
  int64_t violations = 0;
};

/// The run's phase schedule: the configured phases, or the single phase the
/// legacy scalar knobs describe.
std::vector<WorkloadPhase> EffectiveSchedule(const DriverConfig& config) {
  if (!config.phases.empty()) return config.phases;
  WorkloadPhase phase;
  phase.queries_per_thread = config.queries_per_thread;
  phase.point_read_fraction = config.point_read_fraction;
  phase.zipf_s = config.workload.zipf_s;
  phase.update_burst = config.update_burst;
  return {phase};
}

}  // namespace

std::vector<std::unique_ptr<Source>> BuildRandomWalkSources(
    int n, const RandomWalkParams& walk, const AdaptivePolicyParams& policy,
    uint64_t seed) {
  Rng master(seed);
  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    uint64_t stream_seed = master.NextUint64();
    uint64_t policy_seed = master.NextUint64();
    sources.push_back(std::make_unique<Source>(
        id, std::make_unique<RandomWalkStream>(walk, stream_seed),
        std::make_unique<AdaptivePolicy>(policy, policy_seed)));
  }
  return sources;
}

DriverReport RunWorkload(ShardedEngine& engine, const DriverConfig& config) {
  if (!config.IsValid()) return DriverReport{};
  const std::vector<WorkloadPhase> schedule = EffectiveSchedule(config);
  const size_t num_threads = static_cast<size_t>(config.num_threads);

  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  std::atomic<int64_t> clock{0};
  std::atomic<bool> stop_updates{false};
  // Phase each worker is currently in; the updater follows the slowest
  // worker so the update:query regime flips system-wide at the boundary.
  std::vector<std::atomic<int>> thread_phase(num_threads);
  for (auto& phase : thread_phase) phase.store(0, std::memory_order_relaxed);

  std::thread updater;
  // StartUpdatePump fails when the engine's bus was already closed by a
  // previous updating run; the workload then runs against static values.
  bool updates_running = config.run_updates && engine.StartUpdatePump();
  if (updates_running) {
    // The updater streams tick-all events through the bus as fast as
    // backpressure allows; a slow pump throttles it instead of the queue
    // growing without bound. The clock only advances past events the bus
    // ACCEPTED: a push rejected at shutdown must not inflate the tick
    // count, the EndMeasurement clock, or CostRate()'s denominator.
    updater = std::thread([&] {
      while (!stop_updates.load(std::memory_order_relaxed)) {
        // Slowest worker's phase decides the regime.
        int slowest = static_cast<int>(schedule.size()) - 1;
        for (const auto& phase : thread_phase) {
          slowest = std::min(slowest, phase.load(std::memory_order_relaxed));
        }
        int burst = schedule[static_cast<size_t>(slowest)].update_burst;
        if (burst == 0) {
          // Updates paused for this phase (pure-read regime): sleep rather
          // than spin so the pause doesn't steal cycles from the query
          // workers it is supposed to leave unperturbed.
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          continue;
        }
        for (int i = 0; i < burst; ++i) {
          int64_t t = clock.load(std::memory_order_relaxed) + 1;
          if (!engine.bus().Push({t, UpdateEvent::kAllSources})) return;
          clock.store(t, std::memory_order_relaxed);
        }
        std::this_thread::yield();
      }
    });
  }

  std::vector<ThreadResult> results(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  auto wall_start = std::chrono::steady_clock::now();

  for (int ti = 0; ti < config.num_threads; ++ti) {
    workers.emplace_back([&, ti] {
      ThreadResult& local = results[static_cast<size_t>(ti)];
      uint64_t t = static_cast<uint64_t>(ti);
      Rng rng(config.seed ^ (0xD517ULL + 0xBF58476DULL * t));
      for (size_t p = 0; p < schedule.size(); ++p) {
        const WorkloadPhase& phase = schedule[p];
        thread_phase[static_cast<size_t>(ti)].store(
            static_cast<int>(p), std::memory_order_relaxed);
        QueryWorkloadParams workload = config.workload;
        workload.zipf_s = phase.zipf_s;
        QueryGenerator gen(workload,
                           config.seed ^ (0xA11CEULL + 0x9E3779B9ULL * t +
                                          0x51CEB00BULL * p));
        for (int64_t q = 0; q < phase.queries_per_thread; ++q) {
          Query query = gen.Next();
          int64_t now = clock.load(std::memory_order_relaxed);
          bool point_read = phase.point_read_fraction > 0.0 &&
                            rng.Bernoulli(phase.point_read_fraction);
          auto t0 = std::chrono::steady_clock::now();
          Interval result =
              point_read ? engine.PointRead(query.source_ids.front(),
                                            query.constraint, now)
                         : engine.ExecuteQuery(query, now);
          auto t1 = std::chrono::steady_clock::now();
          double us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          local.latency_us.Add(us);
          local.stats.Add(us);
          if (ViolatesConstraint(result, query.constraint)) {
            ++local.violations;
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  auto wall_end = std::chrono::steady_clock::now();

  if (updates_running) {
    stop_updates.store(true, std::memory_order_relaxed);
    updater.join();
    engine.StopUpdatePump();  // closes the bus and drains the backlog
  }

  // With no updates the measured period is 0 ticks; CostRate() then
  // reports 0 rather than pretending the whole run was one tick.
  int64_t final_tick = clock.load(std::memory_order_relaxed);
  engine.EndMeasurement(final_tick);

  DriverReport report;
  Histogram merged = MakeLatencyHistogram();
  SummaryStats stats;
  for (const ThreadResult& local : results) {
    merged.Merge(local.latency_us);
    stats.Merge(local.stats);
    report.violations += local.violations;
  }
  int64_t queries_per_thread = 0;
  for (const WorkloadPhase& phase : schedule) {
    queries_per_thread += phase.queries_per_thread;
  }
  report.queries =
      static_cast<int64_t>(config.num_threads) * queries_per_thread;
  report.ticks = final_tick;
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  report.queries_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.queries) / report.wall_seconds
          : 0.0;
  report.latency_mean_us = stats.mean();
  report.latency_max_us = stats.max();
  report.latency_p50_us = merged.Quantile(0.50);
  report.latency_p95_us = merged.Quantile(0.95);
  report.latency_p99_us = merged.Quantile(0.99);
  report.costs = engine.TotalCosts();
  report.rejected_updates =
      engine.counters().rejected_updates.load(std::memory_order_relaxed);
  report.rejected_query_ids =
      engine.counters().rejected_query_ids.load(std::memory_order_relaxed);
  return report;
}

}  // namespace apc
