#include "runtime/workload_driver.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

namespace apc {

namespace {

/// Layout shared by every thread's latency histogram so they merge.
Histogram MakeLatencyHistogram() {
  return Histogram::LogSpaced(/*lo=*/0.1, /*hi=*/1e7, /*bins=*/200);
}

/// Precision constraints are satisfied exactly by construction; the
/// tolerance only absorbs floating-point rounding in interval sums.
bool ViolatesConstraint(const Interval& result, double constraint) {
  double tolerance = 1e-9 * (1.0 + std::fabs(constraint));
  return result.Width() > constraint + tolerance;
}

struct ThreadResult {
  Histogram latency_us = MakeLatencyHistogram();
  SummaryStats stats;
  int64_t violations = 0;
};

}  // namespace

std::vector<std::unique_ptr<Source>> BuildRandomWalkSources(
    int n, const RandomWalkParams& walk, const AdaptivePolicyParams& policy,
    uint64_t seed) {
  Rng master(seed);
  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    uint64_t stream_seed = master.NextUint64();
    uint64_t policy_seed = master.NextUint64();
    sources.push_back(std::make_unique<Source>(
        id, std::make_unique<RandomWalkStream>(walk, stream_seed),
        std::make_unique<AdaptivePolicy>(policy, policy_seed)));
  }
  return sources;
}

DriverReport RunWorkload(ShardedEngine& engine, const DriverConfig& config) {
  if (!config.IsValid()) return DriverReport{};
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  std::atomic<int64_t> clock{0};
  std::atomic<bool> stop_updates{false};

  std::thread updater;
  // StartUpdatePump fails when the engine's bus was already closed by a
  // previous updating run; the workload then runs against static values.
  bool updates_running = config.run_updates && engine.StartUpdatePump();
  if (updates_running) {
    // The updater streams tick-all events through the bus as fast as
    // backpressure allows; a slow pump throttles it instead of the queue
    // growing without bound.
    updater = std::thread([&] {
      while (!stop_updates.load(std::memory_order_relaxed)) {
        for (int i = 0; i < config.update_burst; ++i) {
          int64_t t = clock.fetch_add(1, std::memory_order_relaxed) + 1;
          if (!engine.bus().Push({t, UpdateEvent::kAllSources})) return;
        }
        std::this_thread::yield();
      }
    });
  }

  std::vector<ThreadResult> results(
      static_cast<size_t>(config.num_threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config.num_threads));
  auto wall_start = std::chrono::steady_clock::now();

  for (int ti = 0; ti < config.num_threads; ++ti) {
    workers.emplace_back([&, ti] {
      ThreadResult& local = results[static_cast<size_t>(ti)];
      uint64_t t = static_cast<uint64_t>(ti);
      QueryGenerator gen(config.workload,
                         config.seed ^ (0xA11CEULL + 0x9E3779B9ULL * t));
      Rng rng(config.seed ^ (0xD517ULL + 0xBF58476DULL * t));
      for (int64_t q = 0; q < config.queries_per_thread; ++q) {
        Query query = gen.Next();
        int64_t now = clock.load(std::memory_order_relaxed);
        bool point_read = config.point_read_fraction > 0.0 &&
                          rng.Bernoulli(config.point_read_fraction);
        auto t0 = std::chrono::steady_clock::now();
        Interval result =
            point_read
                ? engine.PointRead(query.source_ids.front(), query.constraint,
                                   now)
                : engine.ExecuteQuery(query, now);
        auto t1 = std::chrono::steady_clock::now();
        double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
        local.latency_us.Add(us);
        local.stats.Add(us);
        if (ViolatesConstraint(result, query.constraint)) ++local.violations;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  auto wall_end = std::chrono::steady_clock::now();

  if (updates_running) {
    stop_updates.store(true, std::memory_order_relaxed);
    updater.join();
    engine.StopUpdatePump();  // closes the bus and drains the backlog
  }

  // With no updates the measured period is 0 ticks; CostRate() then
  // reports 0 rather than pretending the whole run was one tick.
  int64_t final_tick = clock.load(std::memory_order_relaxed);
  engine.EndMeasurement(final_tick);

  DriverReport report;
  Histogram merged = MakeLatencyHistogram();
  SummaryStats stats;
  for (const ThreadResult& local : results) {
    merged.Merge(local.latency_us);
    stats.Merge(local.stats);
    report.violations += local.violations;
  }
  report.queries =
      static_cast<int64_t>(config.num_threads) * config.queries_per_thread;
  report.ticks = final_tick;
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  report.queries_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.queries) / report.wall_seconds
          : 0.0;
  report.latency_mean_us = stats.mean();
  report.latency_max_us = stats.max();
  report.latency_p50_us = merged.Quantile(0.50);
  report.latency_p95_us = merged.Quantile(0.95);
  report.latency_p99_us = merged.Quantile(0.99);
  report.costs = engine.TotalCosts();
  return report;
}

}  // namespace apc
