#include "runtime/workload_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <unordered_map>
#include <unordered_set>

namespace apc {

namespace {

/// Layout shared by every thread's latency histogram so they merge.
Histogram MakeLatencyHistogram() {
  return Histogram::LogSpaced(/*lo=*/0.1, /*hi=*/1e7, /*bins=*/200);
}

/// Precision constraints are satisfied exactly by construction; the
/// tolerance only absorbs floating-point rounding in interval sums.
bool ViolatesConstraint(const Interval& result, double constraint) {
  double tolerance = 1e-9 * (1.0 + std::fabs(constraint));
  return result.Width() > constraint + tolerance;
}

struct ThreadResult {
  Histogram latency_us = MakeLatencyHistogram();
  SummaryStats stats;
  int64_t violations = 0;
};

/// The run's phase schedule: the configured phases, or the single phase the
/// legacy scalar knobs describe.
std::vector<WorkloadPhase> EffectiveSchedule(const DriverConfig& config) {
  if (!config.phases.empty()) return config.phases;
  WorkloadPhase phase;
  phase.queries_per_thread = config.queries_per_thread;
  phase.point_read_fraction = config.point_read_fraction;
  phase.zipf_s = config.workload.zipf_s;
  phase.update_burst = config.update_burst;
  return {phase};
}

/// Pushes one updater burst of tick-all events — the closed-loop
/// discipline both drivers share: the clock only advances past events the
/// bus ACCEPTED, so the tick count, the EndMeasurement clock, and
/// CostRate()'s denominator never include pushes rejected at shutdown.
/// Returns false once the bus is closed (the updater must exit).
bool PushTickBurst(UpdateBus& bus, std::atomic<int64_t>& clock, int burst) {
  // One PushBatch per burst: the bus reserves each ring's range with a
  // single atomic instead of `burst` lock-and-notify round trips. The
  // scratch is thread_local so the steady-state updater allocates nothing.
  static thread_local std::vector<UpdateEvent> events;
  events.clear();
  int64_t t = clock.load(std::memory_order_relaxed);
  for (int i = 1; i <= burst; ++i) {
    events.push_back({t + i, UpdateEvent::kAllSources});
  }
  size_t accepted = bus.PushBatch(events.data(), events.size());
  if (accepted > 0) {
    clock.store(t + static_cast<int64_t>(accepted),
                std::memory_order_relaxed);
  }
  return accepted == events.size();
}

/// Merged latency/violation view over the per-thread results (histograms
/// merge exactly because every thread uses the one shared layout).
struct LatencySummary {
  int64_t violations = 0;
  double mean_us = 0.0;
  double max_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

LatencySummary Summarize(const std::vector<ThreadResult>& results) {
  Histogram merged = MakeLatencyHistogram();
  SummaryStats stats;
  LatencySummary out;
  for (const ThreadResult& local : results) {
    merged.Merge(local.latency_us);
    stats.Merge(local.stats);
    out.violations += local.violations;
  }
  out.mean_us = stats.mean();
  out.max_us = stats.max();
  out.p50_us = merged.Quantile(0.50);
  out.p95_us = merged.Quantile(0.95);
  out.p99_us = merged.Quantile(0.99);
  return out;
}

}  // namespace

std::vector<std::unique_ptr<Source>> BuildRandomWalkSources(
    int n, const RandomWalkParams& walk, const AdaptivePolicyParams& policy,
    uint64_t seed) {
  Rng master(seed);
  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    uint64_t stream_seed = master.NextUint64();
    uint64_t policy_seed = master.NextUint64();
    sources.push_back(std::make_unique<Source>(
        id, std::make_unique<RandomWalkStream>(walk, stream_seed),
        std::make_unique<AdaptivePolicy>(policy, policy_seed)));
  }
  return sources;
}

std::vector<std::unique_ptr<UpdateStream>> BuildRandomWalkStreams(
    int n, const RandomWalkParams& walk, uint64_t seed) {
  Rng master(seed);
  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.reserve(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    streams.push_back(
        std::make_unique<RandomWalkStream>(walk, master.NextUint64()));
  }
  return streams;
}

std::vector<std::unique_ptr<Source>> BuildTraceSources(
    const Trace& trace, const AdaptivePolicyParams& policy, uint64_t seed) {
  Rng master(seed);
  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(trace.hosts.size());
  for (size_t id = 0; id < trace.hosts.size(); ++id) {
    // Draw (and discard) the stream-seed slot so the policy seeds come out
    // identical to BuildRandomWalkSources(n, ..., seed) — replaying a
    // recorded trace reproduces the original per-source policy decisions.
    (void)master.NextUint64();
    uint64_t policy_seed = master.NextUint64();
    sources.push_back(std::make_unique<Source>(
        static_cast<int>(id), std::make_unique<SeriesStream>(trace.hosts[id]),
        std::make_unique<AdaptivePolicy>(policy, policy_seed)));
  }
  return sources;
}

std::vector<std::unique_ptr<UpdateStream>> BuildTraceStreams(
    const Trace& trace) {
  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.reserve(trace.hosts.size());
  for (const std::vector<double>& series : trace.hosts) {
    streams.push_back(std::make_unique<SeriesStream>(series));
  }
  return streams;
}

DriverReport RunWorkload(ShardedEngine& engine, const DriverConfig& config) {
  if (!config.IsValid()) return DriverReport{};
  const std::vector<WorkloadPhase> schedule = EffectiveSchedule(config);
  const size_t num_threads = static_cast<size_t>(config.num_threads);

  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  std::atomic<int64_t> clock{0};
  std::atomic<bool> stop_updates{false};
  // Phase each worker is currently in; the updater follows the slowest
  // worker so the update:query regime flips system-wide at the boundary.
  std::vector<std::atomic<int>> thread_phase(num_threads);
  for (auto& phase : thread_phase) phase.store(0, std::memory_order_relaxed);

  std::thread updater;
  // StartUpdatePump fails when the engine's bus was already closed by a
  // previous updating run; the workload then runs against static values.
  bool updates_running = config.run_updates && engine.StartUpdatePump();
  if (updates_running) {
    // The updater streams tick-all events through the bus as fast as
    // backpressure allows; a slow pump throttles it instead of the queue
    // growing without bound (tick discipline: see PushTickBurst).
    updater = std::thread([&] {
      while (!stop_updates.load(std::memory_order_relaxed)) {
        // Slowest worker's phase decides the regime.
        int slowest = static_cast<int>(schedule.size()) - 1;
        for (const auto& phase : thread_phase) {
          slowest = std::min(slowest, phase.load(std::memory_order_relaxed));
        }
        int burst = schedule[static_cast<size_t>(slowest)].update_burst;
        if (burst == 0) {
          // Updates paused for this phase (pure-read regime): sleep rather
          // than spin so the pause doesn't steal cycles from the query
          // workers it is supposed to leave unperturbed.
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          continue;
        }
        if (!PushTickBurst(engine.bus(), clock, burst)) return;
        std::this_thread::yield();
      }
    });
  }

  std::vector<ThreadResult> results(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  auto wall_start = std::chrono::steady_clock::now();

  for (int ti = 0; ti < config.num_threads; ++ti) {
    workers.emplace_back([&, ti] {
      ThreadResult& local = results[static_cast<size_t>(ti)];
      uint64_t t = static_cast<uint64_t>(ti);
      Rng rng(config.seed ^ (0xD517ULL + 0xBF58476DULL * t));
      for (size_t p = 0; p < schedule.size(); ++p) {
        const WorkloadPhase& phase = schedule[p];
        thread_phase[static_cast<size_t>(ti)].store(
            static_cast<int>(p), std::memory_order_relaxed);
        QueryWorkloadParams workload = config.workload;
        workload.zipf_s = phase.zipf_s;
        QueryGenerator gen(workload,
                           config.seed ^ (0xA11CEULL + 0x9E3779B9ULL * t +
                                          0x51CEB00BULL * p));
        // Hoisted and reused: Next(&query) recycles source_ids capacity,
        // so the steady-state query loop performs no heap allocation.
        Query query;
        for (int64_t q = 0; q < phase.queries_per_thread; ++q) {
          gen.Next(&query);
          int64_t now = clock.load(std::memory_order_relaxed);
          bool point_read = phase.point_read_fraction > 0.0 &&
                            rng.Bernoulli(phase.point_read_fraction);
          auto t0 = std::chrono::steady_clock::now();
          Interval result =
              point_read ? engine.PointRead(query.source_ids.front(),
                                            query.constraint, now)
                         : engine.ExecuteQuery(query, now);
          auto t1 = std::chrono::steady_clock::now();
          double us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          local.latency_us.Add(us);
          local.stats.Add(us);
          if (ViolatesConstraint(result, query.constraint)) {
            ++local.violations;
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  auto wall_end = std::chrono::steady_clock::now();

  if (updates_running) {
    stop_updates.store(true, std::memory_order_relaxed);
    updater.join();
    engine.StopUpdatePump();  // closes the bus and drains the backlog
  }

  // With no updates the measured period is 0 ticks; CostRate() then
  // reports 0 rather than pretending the whole run was one tick.
  int64_t final_tick = clock.load(std::memory_order_relaxed);
  engine.EndMeasurement(final_tick);

  DriverReport report;
  LatencySummary latency = Summarize(results);
  report.violations = latency.violations;
  int64_t queries_per_thread = 0;
  for (const WorkloadPhase& phase : schedule) {
    queries_per_thread += phase.queries_per_thread;
  }
  report.queries =
      static_cast<int64_t>(config.num_threads) * queries_per_thread;
  report.ticks = final_tick;
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  report.queries_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.queries) / report.wall_seconds
          : 0.0;
  report.latency_mean_us = latency.mean_us;
  report.latency_max_us = latency.max_us;
  report.latency_p50_us = latency.p50_us;
  report.latency_p95_us = latency.p95_us;
  report.latency_p99_us = latency.p99_us;
  report.costs = engine.TotalCosts();
  report.rejected_updates =
      engine.counters().rejected_updates.load(std::memory_order_relaxed);
  report.rejected_query_ids =
      engine.counters().rejected_query_ids.load(std::memory_order_relaxed);
  return report;
}

TieredDriverReport RunTieredWorkload(TieredEngine& engine,
                                     const TieredWorkloadConfig& config) {
  if (!config.IsValid()) return TieredDriverReport{};
  // A misconfigured id space is a caller error, not a protocol failure:
  // reads of ids the engine does not own would return the unbounded
  // interval and masquerade as precision violations — the signal the
  // benches and tests gate on. Refuse to run instead.
  for (int id = 0; id < config.num_sources; ++id) {
    if (!engine.Owns(id)) return TieredDriverReport{};
  }
  const size_t num_threads = static_cast<size_t>(config.num_threads);
  const int num_edges = engine.num_edges();
  const int num_sources = config.num_sources;

  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  std::atomic<int64_t> clock{0};
  std::atomic<bool> stop_updates{false};
  std::thread updater;
  bool updates_running = config.run_updates && config.update_burst > 0 &&
                         engine.StartUpdatePump();
  if (updates_running) {
    updater = std::thread([&] {
      while (!stop_updates.load(std::memory_order_relaxed)) {
        if (!PushTickBurst(engine.bus(), clock, config.update_burst)) return;
        std::this_thread::yield();
      }
    });
  }

  std::vector<ThreadResult> results(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  auto wall_start = std::chrono::steady_clock::now();

  for (int ti = 0; ti < config.num_threads; ++ti) {
    workers.emplace_back([&, ti] {
      ThreadResult& local = results[static_cast<size_t>(ti)];
      uint64_t t = static_cast<uint64_t>(ti);
      // A single-id "SUM" workload reuses the query generator's Zipf draw
      // and constraint distribution for point reads: rank 0 is the
      // hottest key before the per-edge rotation below.
      QueryWorkloadParams workload;
      workload.num_sources = num_sources;
      workload.group_size = 1;
      workload.zipf_s = config.zipf_s;
      workload.constraints = config.constraints;
      QueryGenerator gen(workload,
                         config.seed ^ (0xA11CEULL + 0x9E3779B9ULL * t));
      int64_t issued = 0;
      for (int p = 0; p < config.num_phases; ++p) {
        // Phase p: this thread's home edge rotates by one, so every
        // hotspot lands on a different edge than the phase before.
        int edge = (ti + p) % num_edges;
        int hot_base = edge * num_sources / num_edges;
        int64_t budget = config.queries_per_thread / config.num_phases;
        if (p == config.num_phases - 1) {
          budget = config.queries_per_thread - issued;
        }
        Query query;
        for (int64_t q = 0; q < budget; ++q, ++issued) {
          gen.Next(&query);
          int id = (hot_base + query.source_ids.front()) % num_sources;
          int64_t now = clock.load(std::memory_order_relaxed);
          auto t0 = std::chrono::steady_clock::now();
          Interval result = engine.Read(edge, id, query.constraint, now);
          auto t1 = std::chrono::steady_clock::now();
          double us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          local.latency_us.Add(us);
          local.stats.Add(us);
          if (ViolatesConstraint(result, query.constraint)) {
            ++local.violations;
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  auto wall_end = std::chrono::steady_clock::now();

  if (updates_running) {
    stop_updates.store(true, std::memory_order_relaxed);
    updater.join();
    engine.StopUpdatePump();  // closes the bus and drains the backlog
  }

  int64_t final_tick = clock.load(std::memory_order_relaxed);
  engine.EndMeasurement(final_tick);

  TieredDriverReport report;
  LatencySummary latency = Summarize(results);
  report.violations = latency.violations;
  report.queries = static_cast<int64_t>(config.num_threads) *
                   config.queries_per_thread;
  report.ticks = final_tick;
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  report.queries_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.queries) / report.wall_seconds
          : 0.0;
  report.latency_mean_us = latency.mean_us;
  report.latency_max_us = latency.max_us;
  report.latency_p50_us = latency.p50_us;
  report.latency_p95_us = latency.p95_us;
  report.latency_p99_us = latency.p99_us;
  const TieredCounters& counters = engine.counters();
  report.edge_hits = counters.edge_hits.load(std::memory_order_relaxed);
  report.regional_hits =
      counters.regional_hits.load(std::memory_order_relaxed);
  report.source_pulls = counters.source_pulls.load(std::memory_order_relaxed);
  report.derived_pushes =
      counters.derived_pushes.load(std::memory_order_relaxed);
  report.lost_wan_pushes = engine.lost_wan_pushes();
  report.lost_lan_pushes = engine.lost_lan_pushes();
  report.wan = engine.WanCosts();
  report.lan = engine.LanCosts();
  return report;
}

namespace {

/// One standing-query specification of the subscription workload.
struct SubSpec {
  Query query;
  double delta = 0.0;
};

/// Draws the `index`-th standing query: a point subscription with
/// probability `point_fraction`, otherwise a group_size-id aggregate
/// rotating through SUM/MAX/MIN/AVG. Deterministic given the generators.
SubSpec DrawSubSpec(int index, const SubscriptionWorkloadConfig& config,
                    Rng& rng, ConstraintGenerator& deltas) {
  SubSpec spec;
  spec.delta = deltas.Next();
  spec.query.constraint = spec.delta;
  if (rng.Bernoulli(config.point_fraction)) {
    spec.query.kind = AggregateKind::kSum;  // a 1-id SUM is a point read
    spec.query.source_ids = {static_cast<int>(
        rng.UniformInt(0, config.num_sources - 1))};
    return spec;
  }
  constexpr AggregateKind kKinds[] = {AggregateKind::kSum,
                                      AggregateKind::kMax,
                                      AggregateKind::kMin,
                                      AggregateKind::kAvg};
  spec.query.kind = kKinds[index % 4];
  std::unordered_set<int> chosen;
  while (static_cast<int>(chosen.size()) < config.group_size) {
    chosen.insert(static_cast<int>(rng.UniformInt(0, config.num_sources - 1)));
  }
  spec.query.source_ids.assign(chosen.begin(), chosen.end());
  std::sort(spec.query.source_ids.begin(), spec.query.source_ids.end());
  return spec;
}

/// Counter snapshot used to confine the report to the measured period.
struct SubCounterSnapshot {
  int64_t notifications = 0;
  int64_t escalations = 0;
  int64_t evaluations = 0;
  int64_t suppressed = 0;
};

SubCounterSnapshot SnapshotSubCounters(const SubscriptionManager& subs) {
  const SubscriptionCounters& c = subs.counters();
  SubCounterSnapshot snap;
  snap.notifications = c.notifications.load(std::memory_order_relaxed);
  snap.escalations = c.escalations.load(std::memory_order_relaxed);
  snap.evaluations = c.evaluations.load(std::memory_order_relaxed);
  snap.suppressed = c.suppressed.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace

SubscriptionDriverReport RunSubscriptionWorkload(
    const SubscriptionWorkloadConfig& config) {
  if (!config.IsValid()) return SubscriptionDriverReport{};

  ShardedEngine engine(
      config.engine,
      BuildRandomWalkSources(config.num_sources, config.walk, config.policy,
                             config.seed));
  engine.PopulateInitial(0);

  // Register the standing-query population; the registration answers
  // (epoch 1) are queued — and their escalations charged — before
  // measurement begins, the usual warm-up discipline.
  Rng spec_rng(config.seed ^ 0x5ABB0ULL);
  ConstraintGenerator delta_gen(config.deltas, config.seed ^ 0xDE17A);
  std::vector<SubSpec> specs;
  std::vector<int64_t> sub_ids;
  specs.reserve(static_cast<size_t>(config.num_subscribers));
  for (int i = 0; i < config.num_subscribers; ++i) {
    specs.push_back(DrawSubSpec(i, config, spec_rng, delta_gen));
    sub_ids.push_back(
        engine.Subscribe(specs.back().query, specs.back().delta, 0));
  }
  // The point subscriptions the concurrent checker probes: (sub_id,
  // source_id) value pairs, so the checker thread shares nothing mutable.
  std::vector<std::pair<int64_t, int>> probes;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].query.source_ids.size() == 1 && sub_ids[i] > 0) {
      probes.push_back({sub_ids[i], specs[i].query.source_ids.front()});
    }
  }

  SubCounterSnapshot warmup = SnapshotSubCounters(engine.subscriptions());
  engine.BeginMeasurement(0);

  std::atomic<int64_t> clock{0};
  std::atomic<bool> stop_control{false};
  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> order_regressions{0};
  std::atomic<int64_t> checker_probes{0};
  std::atomic<int64_t> missed_violations{0};
  std::atomic<int64_t> churn_done{0};
  std::atomic<int64_t> reprecision_done{0};

  auto wall_start = std::chrono::steady_clock::now();

  // Subscriber threads drain the hub for the whole run; they exit when the
  // hub closes at shutdown. Delivery lag histograms are per-thread and
  // merged at the end; registration answers (epoch 1) are not change
  // deliveries and stay out of the lag statistics.
  const size_t num_consumers = static_cast<size_t>(config.subscriber_threads);
  std::vector<Histogram> lag(num_consumers, Histogram(0.0, 4096.0, 256));
  std::vector<SummaryStats> lag_stats(num_consumers);
  std::vector<std::thread> consumers;
  for (size_t ci = 0; ci < num_consumers; ++ci) {
    consumers.emplace_back([&, ci] {
      std::vector<Notification> batch;
      // Per-subscription epoch ordering is only observable with a single
      // consumer (two consumers race on processing order by design).
      std::unordered_map<int64_t, int64_t> last_epoch;
      while (engine.notifications().PopBatch(&batch, 64) > 0) {
        delivered.fetch_add(static_cast<int64_t>(batch.size()),
                            std::memory_order_relaxed);
        for (const Notification& record : batch) {
          if (num_consumers == 1) {
            int64_t& prev = last_epoch[record.sub_id];
            if (record.epoch <= prev) {
              order_regressions.fetch_add(1, std::memory_order_relaxed);
            }
            prev = record.epoch;
          }
          if (record.epoch > 1) {
            double ticks_late = static_cast<double>(
                clock.load(std::memory_order_relaxed) - record.now);
            if (ticks_late < 0.0) ticks_late = 0.0;
            lag[ci].Add(ticks_late);
            lag_stats[ci].Add(ticks_late);
            engine.subscriptions().RecordDeliveryLag(ticks_late);
          }
        }
      }
    });
  }

  // The updater streams exactly `ticks` tick-all events, then stops; the
  // pump applies them, each application publishing its interval changes to
  // the subscription layer.
  bool updates_running = engine.StartUpdatePump();
  std::thread updater([&] {
    if (!updates_running) return;
    int64_t pushed = 0;
    while (pushed < config.ticks) {
      int burst = static_cast<int>(
          std::min<int64_t>(config.update_burst, config.ticks - pushed));
      if (!PushTickBurst(engine.bus(), clock, burst)) return;
      pushed += burst;
      std::this_thread::yield();
    }
  });

  // Control thread: churn (unsubscribe + fresh registration) and live
  // Reprecision, interleaved, until the quotas are spent or the run ends.
  std::thread control;
  if (config.churn_ops > 0 || config.reprecision_ops > 0) {
    control = std::thread([&] {
      Rng churn_rng(config.seed ^ 0xC0117);
      ConstraintGenerator churn_deltas(config.deltas, config.seed ^ 0x11F2);
      std::vector<int64_t> live = sub_ids;
      int spec_index = config.num_subscribers;
      while (!stop_control.load(std::memory_order_relaxed)) {
        bool more = false;
        if (churn_done.load(std::memory_order_relaxed) < config.churn_ops) {
          size_t i = static_cast<size_t>(
              churn_rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
          engine.Unsubscribe(live[i]);
          SubSpec spec =
              DrawSubSpec(spec_index++, config, churn_rng, churn_deltas);
          live[i] = engine.Subscribe(
              spec.query, spec.delta, clock.load(std::memory_order_relaxed));
          churn_done.fetch_add(1, std::memory_order_relaxed);
          more = true;
        }
        if (reprecision_done.load(std::memory_order_relaxed) <
            config.reprecision_ops) {
          size_t i = static_cast<size_t>(
              churn_rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
          engine.Reprecision(live[i], churn_deltas.Next(),
                             clock.load(std::memory_order_relaxed));
          reprecision_done.fetch_add(1, std::memory_order_relaxed);
          more = true;
        }
        if (!more) break;  // both quotas spent
        std::this_thread::yield();
      }
    });
  }

  // The concurrent no-missed-violation checker. A probe is judged only
  // when no change is in flight before AND after reading the true value,
  // and the latest-queued epoch did not move — any interleaving that could
  // explain a mismatch benignly is skipped, so a counted violation is a
  // real missed notification.
  std::thread checker;
  if (config.run_violation_checker && !probes.empty()) {
    checker = std::thread([&] {
      Rng probe_rng(config.seed ^ 0xCCCC7);
      const SubscriptionManager& subs = engine.subscriptions();
      while (!stop_control.load(std::memory_order_relaxed)) {
        const auto& [sid, source_id] = probes[static_cast<size_t>(
            probe_rng.UniformInt(0, static_cast<int64_t>(probes.size()) - 1))];
        Interval answer;
        int64_t epoch = 0;
        if (!subs.LatestAnswer(sid, &answer, &epoch)) continue;
        if (subs.in_flight() != 0) {
          std::this_thread::yield();
          continue;
        }
        double truth = engine.ExactValue(source_id);
        Interval answer_after;
        int64_t epoch_after = 0;
        if (!subs.LatestAnswer(sid, &answer_after, &epoch_after) ||
            epoch_after != epoch || subs.in_flight() != 0) {
          continue;
        }
        checker_probes.fetch_add(1, std::memory_order_relaxed);
        if (!answer.Contains(truth)) {
          missed_violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  updater.join();
  if (updates_running) engine.StopUpdatePump();  // drains the backlog
  engine.subscriptions().WaitQuiescent();  // every change fully evaluated
  stop_control.store(true, std::memory_order_relaxed);
  if (control.joinable()) control.join();
  if (checker.joinable()) checker.join();

  int64_t final_tick = clock.load(std::memory_order_relaxed);
  engine.EndMeasurement(final_tick);
  auto wall_end = std::chrono::steady_clock::now();
  SubCounterSnapshot measured = SnapshotSubCounters(engine.subscriptions());

  // Close the hub so subscriber threads drain the tail and exit.
  engine.subscriptions().Shutdown();
  for (auto& consumer : consumers) consumer.join();

  SubscriptionDriverReport report;
  report.subscriptions = config.num_subscribers;
  report.notifications = measured.notifications - warmup.notifications;
  report.delivered = delivered.load(std::memory_order_relaxed);
  report.escalations = measured.escalations - warmup.escalations;
  report.evaluations = measured.evaluations - warmup.evaluations;
  report.suppressed = measured.suppressed - warmup.suppressed;
  report.churn_ops = churn_done.load(std::memory_order_relaxed);
  report.reprecision_ops = reprecision_done.load(std::memory_order_relaxed);
  report.checker_probes = checker_probes.load(std::memory_order_relaxed);
  report.missed_violations = missed_violations.load(std::memory_order_relaxed);
  report.order_regressions = order_regressions.load(std::memory_order_relaxed);
  report.ticks = final_tick;
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  report.notifications_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.notifications) / report.wall_seconds
          : 0.0;
  Histogram merged_lag(0.0, 4096.0, 256);
  SummaryStats merged_stats;
  for (size_t ci = 0; ci < num_consumers; ++ci) {
    merged_lag.Merge(lag[ci]);
    merged_stats.Merge(lag_stats[ci]);
  }
  report.delivery_lag_ticks_mean = merged_stats.mean();
  report.delivery_lag_ticks_p99 = merged_lag.Quantile(0.99);
  // Percentiles come from the registry's delivery-lag histogram (fed by
  // the consumer threads above) when the obs layer is compiled in; under
  // APC_OBS=0 the histogram is a no-op and the driver's own merged
  // histogram fills them instead.
  const obs::HistogramMetric& reg_lag =
      engine.subscriptions().delivery_lag_histogram();
  if (reg_lag.Count() > 0) {
    obs::HistogramMetric::Snapshot reg_snap = reg_lag.TakeSnapshot();
    report.delivery_lag_ticks_p50 = reg_snap.Quantile(0.50);
    report.delivery_lag_ticks_p90 = reg_snap.Quantile(0.90);
    report.delivery_lag_ticks_p99 = reg_snap.Quantile(0.99);
  } else {
    report.delivery_lag_ticks_p50 = merged_lag.Quantile(0.50);
    report.delivery_lag_ticks_p90 = merged_lag.Quantile(0.90);
  }
  report.costs = engine.TotalCosts();
  const RefreshCosts& link = config.engine.system.costs;
  report.client_push_cost =
      static_cast<double>(report.notifications) * link.cvr;
  report.subscription_total_cost =
      report.costs.total_cost + report.client_push_cost;

  // The measured polling equivalent: the registration-time standing set,
  // polled once per subscription per tick in lockstep against a
  // seed-identical fresh engine (identical walks, identical policies). One
  // warm-up poll round mirrors the Subscribe-time evaluations, then the
  // measured period covers the same `ticks` updates the subscription run
  // streamed. Churn/Reprecision are not replayed: the baseline is the
  // polling cost of the standing set as registered.
  if (config.run_polling_equivalent) {
    ShardedEngine poll_engine(
        config.engine,
        BuildRandomWalkSources(config.num_sources, config.walk,
                               config.policy, config.seed));
    poll_engine.PopulateInitial(0);
    for (const SubSpec& spec : specs) {
      poll_engine.ExecuteQuery(spec.query, 0);
    }
    poll_engine.BeginMeasurement(0);
    for (int64_t t = 1; t <= config.ticks; ++t) {
      poll_engine.TickAll(t);
      for (const SubSpec& spec : specs) {
        poll_engine.ExecuteQuery(spec.query, t);
        ++report.polls;
      }
    }
    poll_engine.EndMeasurement(config.ticks);
    report.polling_costs = poll_engine.TotalCosts();
    report.polling_client_cost =
        static_cast<double>(report.polls) * link.cqr;
    report.polling_equivalent_cost =
        report.polling_costs.total_cost + report.polling_client_cost;
  }
  return report;
}

}  // namespace apc
