#include "runtime/workload_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

namespace apc {

namespace {

/// Layout shared by every thread's latency histogram so they merge.
Histogram MakeLatencyHistogram() {
  return Histogram::LogSpaced(/*lo=*/0.1, /*hi=*/1e7, /*bins=*/200);
}

/// Precision constraints are satisfied exactly by construction; the
/// tolerance only absorbs floating-point rounding in interval sums.
bool ViolatesConstraint(const Interval& result, double constraint) {
  double tolerance = 1e-9 * (1.0 + std::fabs(constraint));
  return result.Width() > constraint + tolerance;
}

struct ThreadResult {
  Histogram latency_us = MakeLatencyHistogram();
  SummaryStats stats;
  int64_t violations = 0;
};

/// The run's phase schedule: the configured phases, or the single phase the
/// legacy scalar knobs describe.
std::vector<WorkloadPhase> EffectiveSchedule(const DriverConfig& config) {
  if (!config.phases.empty()) return config.phases;
  WorkloadPhase phase;
  phase.queries_per_thread = config.queries_per_thread;
  phase.point_read_fraction = config.point_read_fraction;
  phase.zipf_s = config.workload.zipf_s;
  phase.update_burst = config.update_burst;
  return {phase};
}

/// Pushes one updater burst of tick-all events — the closed-loop
/// discipline both drivers share: the clock only advances past events the
/// bus ACCEPTED, so the tick count, the EndMeasurement clock, and
/// CostRate()'s denominator never include pushes rejected at shutdown.
/// Returns false once the bus is closed (the updater must exit).
bool PushTickBurst(UpdateBus& bus, std::atomic<int64_t>& clock, int burst) {
  for (int i = 0; i < burst; ++i) {
    int64_t t = clock.load(std::memory_order_relaxed) + 1;
    if (!bus.Push({t, UpdateEvent::kAllSources})) return false;
    clock.store(t, std::memory_order_relaxed);
  }
  return true;
}

/// Merged latency/violation view over the per-thread results (histograms
/// merge exactly because every thread uses the one shared layout).
struct LatencySummary {
  int64_t violations = 0;
  double mean_us = 0.0;
  double max_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

LatencySummary Summarize(const std::vector<ThreadResult>& results) {
  Histogram merged = MakeLatencyHistogram();
  SummaryStats stats;
  LatencySummary out;
  for (const ThreadResult& local : results) {
    merged.Merge(local.latency_us);
    stats.Merge(local.stats);
    out.violations += local.violations;
  }
  out.mean_us = stats.mean();
  out.max_us = stats.max();
  out.p50_us = merged.Quantile(0.50);
  out.p95_us = merged.Quantile(0.95);
  out.p99_us = merged.Quantile(0.99);
  return out;
}

}  // namespace

std::vector<std::unique_ptr<Source>> BuildRandomWalkSources(
    int n, const RandomWalkParams& walk, const AdaptivePolicyParams& policy,
    uint64_t seed) {
  Rng master(seed);
  std::vector<std::unique_ptr<Source>> sources;
  sources.reserve(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    uint64_t stream_seed = master.NextUint64();
    uint64_t policy_seed = master.NextUint64();
    sources.push_back(std::make_unique<Source>(
        id, std::make_unique<RandomWalkStream>(walk, stream_seed),
        std::make_unique<AdaptivePolicy>(policy, policy_seed)));
  }
  return sources;
}

std::vector<std::unique_ptr<UpdateStream>> BuildRandomWalkStreams(
    int n, const RandomWalkParams& walk, uint64_t seed) {
  Rng master(seed);
  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.reserve(static_cast<size_t>(n));
  for (int id = 0; id < n; ++id) {
    streams.push_back(
        std::make_unique<RandomWalkStream>(walk, master.NextUint64()));
  }
  return streams;
}

DriverReport RunWorkload(ShardedEngine& engine, const DriverConfig& config) {
  if (!config.IsValid()) return DriverReport{};
  const std::vector<WorkloadPhase> schedule = EffectiveSchedule(config);
  const size_t num_threads = static_cast<size_t>(config.num_threads);

  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  std::atomic<int64_t> clock{0};
  std::atomic<bool> stop_updates{false};
  // Phase each worker is currently in; the updater follows the slowest
  // worker so the update:query regime flips system-wide at the boundary.
  std::vector<std::atomic<int>> thread_phase(num_threads);
  for (auto& phase : thread_phase) phase.store(0, std::memory_order_relaxed);

  std::thread updater;
  // StartUpdatePump fails when the engine's bus was already closed by a
  // previous updating run; the workload then runs against static values.
  bool updates_running = config.run_updates && engine.StartUpdatePump();
  if (updates_running) {
    // The updater streams tick-all events through the bus as fast as
    // backpressure allows; a slow pump throttles it instead of the queue
    // growing without bound (tick discipline: see PushTickBurst).
    updater = std::thread([&] {
      while (!stop_updates.load(std::memory_order_relaxed)) {
        // Slowest worker's phase decides the regime.
        int slowest = static_cast<int>(schedule.size()) - 1;
        for (const auto& phase : thread_phase) {
          slowest = std::min(slowest, phase.load(std::memory_order_relaxed));
        }
        int burst = schedule[static_cast<size_t>(slowest)].update_burst;
        if (burst == 0) {
          // Updates paused for this phase (pure-read regime): sleep rather
          // than spin so the pause doesn't steal cycles from the query
          // workers it is supposed to leave unperturbed.
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          continue;
        }
        if (!PushTickBurst(engine.bus(), clock, burst)) return;
        std::this_thread::yield();
      }
    });
  }

  std::vector<ThreadResult> results(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  auto wall_start = std::chrono::steady_clock::now();

  for (int ti = 0; ti < config.num_threads; ++ti) {
    workers.emplace_back([&, ti] {
      ThreadResult& local = results[static_cast<size_t>(ti)];
      uint64_t t = static_cast<uint64_t>(ti);
      Rng rng(config.seed ^ (0xD517ULL + 0xBF58476DULL * t));
      for (size_t p = 0; p < schedule.size(); ++p) {
        const WorkloadPhase& phase = schedule[p];
        thread_phase[static_cast<size_t>(ti)].store(
            static_cast<int>(p), std::memory_order_relaxed);
        QueryWorkloadParams workload = config.workload;
        workload.zipf_s = phase.zipf_s;
        QueryGenerator gen(workload,
                           config.seed ^ (0xA11CEULL + 0x9E3779B9ULL * t +
                                          0x51CEB00BULL * p));
        for (int64_t q = 0; q < phase.queries_per_thread; ++q) {
          Query query = gen.Next();
          int64_t now = clock.load(std::memory_order_relaxed);
          bool point_read = phase.point_read_fraction > 0.0 &&
                            rng.Bernoulli(phase.point_read_fraction);
          auto t0 = std::chrono::steady_clock::now();
          Interval result =
              point_read ? engine.PointRead(query.source_ids.front(),
                                            query.constraint, now)
                         : engine.ExecuteQuery(query, now);
          auto t1 = std::chrono::steady_clock::now();
          double us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          local.latency_us.Add(us);
          local.stats.Add(us);
          if (ViolatesConstraint(result, query.constraint)) {
            ++local.violations;
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  auto wall_end = std::chrono::steady_clock::now();

  if (updates_running) {
    stop_updates.store(true, std::memory_order_relaxed);
    updater.join();
    engine.StopUpdatePump();  // closes the bus and drains the backlog
  }

  // With no updates the measured period is 0 ticks; CostRate() then
  // reports 0 rather than pretending the whole run was one tick.
  int64_t final_tick = clock.load(std::memory_order_relaxed);
  engine.EndMeasurement(final_tick);

  DriverReport report;
  LatencySummary latency = Summarize(results);
  report.violations = latency.violations;
  int64_t queries_per_thread = 0;
  for (const WorkloadPhase& phase : schedule) {
    queries_per_thread += phase.queries_per_thread;
  }
  report.queries =
      static_cast<int64_t>(config.num_threads) * queries_per_thread;
  report.ticks = final_tick;
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  report.queries_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.queries) / report.wall_seconds
          : 0.0;
  report.latency_mean_us = latency.mean_us;
  report.latency_max_us = latency.max_us;
  report.latency_p50_us = latency.p50_us;
  report.latency_p95_us = latency.p95_us;
  report.latency_p99_us = latency.p99_us;
  report.costs = engine.TotalCosts();
  report.rejected_updates =
      engine.counters().rejected_updates.load(std::memory_order_relaxed);
  report.rejected_query_ids =
      engine.counters().rejected_query_ids.load(std::memory_order_relaxed);
  return report;
}

TieredDriverReport RunTieredWorkload(TieredEngine& engine,
                                     const TieredWorkloadConfig& config) {
  if (!config.IsValid()) return TieredDriverReport{};
  // A misconfigured id space is a caller error, not a protocol failure:
  // reads of ids the engine does not own would return the unbounded
  // interval and masquerade as precision violations — the signal the
  // benches and tests gate on. Refuse to run instead.
  for (int id = 0; id < config.num_sources; ++id) {
    if (!engine.Owns(id)) return TieredDriverReport{};
  }
  const size_t num_threads = static_cast<size_t>(config.num_threads);
  const int num_edges = engine.num_edges();
  const int num_sources = config.num_sources;

  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  std::atomic<int64_t> clock{0};
  std::atomic<bool> stop_updates{false};
  std::thread updater;
  bool updates_running = config.run_updates && config.update_burst > 0 &&
                         engine.StartUpdatePump();
  if (updates_running) {
    updater = std::thread([&] {
      while (!stop_updates.load(std::memory_order_relaxed)) {
        if (!PushTickBurst(engine.bus(), clock, config.update_burst)) return;
        std::this_thread::yield();
      }
    });
  }

  std::vector<ThreadResult> results(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  auto wall_start = std::chrono::steady_clock::now();

  for (int ti = 0; ti < config.num_threads; ++ti) {
    workers.emplace_back([&, ti] {
      ThreadResult& local = results[static_cast<size_t>(ti)];
      uint64_t t = static_cast<uint64_t>(ti);
      // A single-id "SUM" workload reuses the query generator's Zipf draw
      // and constraint distribution for point reads: rank 0 is the
      // hottest key before the per-edge rotation below.
      QueryWorkloadParams workload;
      workload.num_sources = num_sources;
      workload.group_size = 1;
      workload.zipf_s = config.zipf_s;
      workload.constraints = config.constraints;
      QueryGenerator gen(workload,
                         config.seed ^ (0xA11CEULL + 0x9E3779B9ULL * t));
      int64_t issued = 0;
      for (int p = 0; p < config.num_phases; ++p) {
        // Phase p: this thread's home edge rotates by one, so every
        // hotspot lands on a different edge than the phase before.
        int edge = (ti + p) % num_edges;
        int hot_base = edge * num_sources / num_edges;
        int64_t budget = config.queries_per_thread / config.num_phases;
        if (p == config.num_phases - 1) {
          budget = config.queries_per_thread - issued;
        }
        for (int64_t q = 0; q < budget; ++q, ++issued) {
          Query query = gen.Next();
          int id = (hot_base + query.source_ids.front()) % num_sources;
          int64_t now = clock.load(std::memory_order_relaxed);
          auto t0 = std::chrono::steady_clock::now();
          Interval result = engine.Read(edge, id, query.constraint, now);
          auto t1 = std::chrono::steady_clock::now();
          double us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          local.latency_us.Add(us);
          local.stats.Add(us);
          if (ViolatesConstraint(result, query.constraint)) {
            ++local.violations;
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  auto wall_end = std::chrono::steady_clock::now();

  if (updates_running) {
    stop_updates.store(true, std::memory_order_relaxed);
    updater.join();
    engine.StopUpdatePump();  // closes the bus and drains the backlog
  }

  int64_t final_tick = clock.load(std::memory_order_relaxed);
  engine.EndMeasurement(final_tick);

  TieredDriverReport report;
  LatencySummary latency = Summarize(results);
  report.violations = latency.violations;
  report.queries = static_cast<int64_t>(config.num_threads) *
                   config.queries_per_thread;
  report.ticks = final_tick;
  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  report.queries_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.queries) / report.wall_seconds
          : 0.0;
  report.latency_mean_us = latency.mean_us;
  report.latency_max_us = latency.max_us;
  report.latency_p50_us = latency.p50_us;
  report.latency_p95_us = latency.p95_us;
  report.latency_p99_us = latency.p99_us;
  const TieredCounters& counters = engine.counters();
  report.edge_hits = counters.edge_hits.load(std::memory_order_relaxed);
  report.regional_hits =
      counters.regional_hits.load(std::memory_order_relaxed);
  report.source_pulls = counters.source_pulls.load(std::memory_order_relaxed);
  report.derived_pushes =
      counters.derived_pushes.load(std::memory_order_relaxed);
  report.lost_wan_pushes = engine.lost_wan_pushes();
  report.lost_lan_pushes = engine.lost_lan_pushes();
  report.wan = engine.WanCosts();
  report.lan = engine.LanCosts();
  return report;
}

}  // namespace apc
