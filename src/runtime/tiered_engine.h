#ifndef APC_RUNTIME_TIERED_ENGINE_H_
#define APC_RUNTIME_TIERED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/source.h"
#include "core/adaptive_policy.h"
#include "core/protocol_table.h"
#include "data/update_stream.h"
#include "obs/metrics.h"
#include "runtime/shard.h"
#include "runtime/sharded_engine.h"
#include "runtime/update_bus.h"
#include "subscribe/subscription_manager.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace apc {

/// Configuration of the tiered (edge/regional) concurrent runtime — the
/// concurrent realization of the hierarchy extension (paper §5, the
/// sequential HierarchicalSystem): every value lives on one source, a
/// single regional tier refreshes over the expensive WAN link, and
/// `num_edges` edge tiers refresh from the regional tier over the cheap
/// LAN link. Reads arrive at edges.
struct TieredConfig {
  int num_edges = 4;
  /// Shards per tier. Ids are hash-partitioned once; edge shard s and
  /// regional shard s own the same ids, which is what makes the
  /// regional-before-edge lock order deadlock-free.
  int num_shards = 1;
  /// Costs on the source <-> regional link (WAN: expensive).
  RefreshCosts wan{4.0, 8.0};
  /// Costs on the regional <-> edge link (LAN: cheap).
  RefreshCosts lan{1.0, 2.0};
  /// Width adaptivity for the regional tier (policies live at the sources)
  /// and the edge tiers (policies live at the regional cache). cvr/cqr
  /// inside are overwritten from wan/lan, exactly like HierarchicalSystem.
  AdaptivePolicyParams regional_policy;
  AdaptivePolicyParams edge_policy;
  /// Cache capacity χ of the regional tier / of EACH edge tier,
  /// partitioned across shards. 0 means "one slot per source" (no
  /// eviction) — the HierarchicalSystem topology, and the parity setting.
  size_t regional_capacity = 0;
  size_t edge_capacity = 0;
  /// Failure injection per link: probability that a value-initiated push
  /// (source->regional over WAN, regional->edge derived push over LAN) is
  /// lost in transit after being charged. Escalated-read replies are never
  /// dropped. 0 disables.
  double wan_push_loss = 0.0;
  double lan_push_loss = 0.0;
  /// How edge-local snapshot reads acquire their shard (see ReadLockMode):
  /// optimistic seqlock validation by default; kShared/kExclusive are the
  /// bench baselines.
  ReadLockMode read_lock_mode = ReadLockMode::kSeqlock;
  /// Per-ring capacity of the update bus (backpressure bound for
  /// producers; the bus keeps one ring per regional shard). Must be
  /// positive.
  size_t bus_capacity = 1024;
  /// Capacity of the subscription NotificationHub (must be positive).
  size_t subscription_hub_capacity = 1024;
  uint64_t seed = 0;

  bool IsValid() const;
};

/// Engine-wide tallies in lock-free counters, observable without any shard
/// lock. The fields are obs::Counter — striped under APC_OBS=1, a single
/// plain atomic under APC_OBS=0 — so the .load()/.fetch_add() surface and
/// the exact-total guarantee are identical in both builds.
struct TieredCounters {
  obs::Counter reads;
  /// Reads served from the edge interval, free of charge.
  obs::Counter edge_hits;
  /// Escalated reads satisfied by the regional interval (one LAN Cqr).
  obs::Counter regional_hits;
  /// Escalations that went all the way to the source (one LAN Cqr plus one
  /// WAN Cqr); the answer is the exact value.
  obs::Counter source_pulls;
  /// Derived LAN pushes fanned out by regional refreshes (charged,
  /// delivered or not).
  obs::Counter derived_pushes;
  obs::Counter updates_applied;
  /// Reads naming an edge or id the engine does not host; update events
  /// naming an unknown id. Counted, never fatal.
  obs::Counter rejected_reads;
  obs::Counter rejected_updates;
  /// Streams rejected at construction (null).
  obs::Counter rejected_sources;

  /// Observability-only per-link loss tallies (no-ops under APC_OBS=0):
  /// charged-but-lost WAN pushes (source -> regional) and LAN derived
  /// pushes (regional -> edge). At quiescence they equal the exact
  /// lock-summed lost_wan_pushes()/lost_lan_pushes() accessors.
  obs::ObsCounter lost_wan_pushes;
  obs::ObsCounter lost_lan_pushes;

  /// Registers every field with `registry` under "<prefix>." names.
  /// Non-owning; this struct must outlive the registry's snapshots.
  void RegisterWith(obs::MetricsRegistry* registry,
                    const std::string& prefix) const;
};

/// The tiered concurrent serving runtime: N edge tiers (LAN costs) backed
/// by one regional tier (WAN costs), every tier a set of shards driving
/// the shared protocol core (core/protocol_table.h) — the same table the
/// sequential engines use, which is what makes the lockstep parity with
/// HierarchicalSystem hold by construction.
///
/// Reads (query-initiated): a read at an edge first validates an
/// optimistic seqlock read of the edge interval — the hot path takes no
/// lock at all. Only when the edge interval is wider than the constraint
/// does it escalate: one LAN Cqr buys the regional interval (and a derived
/// refresh of the edge entry); if the regional interval is also too wide,
/// one WAN Cqr pulls the exact value from the source, recenters the
/// regional interval, and fans derived refreshes out to the other edges.
/// Per-hop charging is exactly HierarchicalSystem's.
///
/// Pushes (value-initiated): when a source value escapes the regional
/// interval, the regional refresh is charged one WAN Cvr (even if failure
/// injection then drops the push), and every edge whose last-shipped
/// interval no longer contains the new regional interval receives a
/// derived refresh at one LAN Cvr each. Updates arrive synchronously via
/// TickAll/TickSource (the deterministic lockstep path) or asynchronously
/// through the UpdateBus drained by the pump thread; the fan-out happens
/// at delivery, under the same locks as the regional refresh.
///
/// Derived-precision invariant (paper §5): every edge interval is a hull
/// of the regional interval it was derived from, so A_edge ⊇ A_regional —
/// an edge can never be more precise than its parent. All mutations of the
/// (regional, edge) state of an id happen while holding the id's regional
/// shard lock (fan-out exclusively, read installs at least shared), with
/// the edge shard lock nested inside, so the invariant is observable at
/// any instant under the regional shard lock — not just at quiescence —
/// whenever LAN pushes are reliable (a charged-but-lost LAN push leaves
/// the affected edge stale by design; see DerivedInvariantHolds).
///
/// Determinism: a TieredEngine with any shard/edge count, driven in
/// lockstep from one thread with lan_push_loss == wan_push_loss == 0 and
/// default capacities, reproduces the sequential HierarchicalSystem's
/// answers, intervals, raw widths, and WAN/LAN charges exactly (policy
/// RNG streams are per-entity, so even the shard partition does not
/// perturb them). The 1-edge/1-shard case is the pinned acceptance bar;
/// tests/tiered_engine_test.cc enforces both.
///
/// Standing queries: subscriptions attach at the REGIONAL tier — the push
/// gateway of the topology. A subscription answer is built from regional
/// guaranteed intervals; an escalation costs one WAN Cqr (the
/// query-initiated regional refresh) and fans the recentered interval out
/// to the edges, exactly like a source pull on the read path, so the
/// subscription layer pays per-hop costs identical to an escalated read.
class TieredEngine : private SubscriptionHost {
 public:
  /// `streams[i]` drives source id i. Null streams are rejected and
  /// counted in TieredCounters::rejected_sources. `config` must satisfy
  /// TieredConfig::IsValid() — asserted in debug builds, sanitized
  /// (clamped into valid ranges) in release per the no-exceptions
  /// contract. Call PopulateInitial before serving.
  TieredEngine(const TieredConfig& config,
               std::vector<std::unique_ptr<UpdateStream>> streams);
  ~TieredEngine();

  TieredEngine(const TieredEngine&) = delete;
  TieredEngine& operator=(const TieredEngine&) = delete;

  int num_edges() const { return config_.num_edges; }
  int num_shards() const { return static_cast<int>(regional_.size()); }
  size_t num_sources() const { return num_sources_; }
  int ShardOf(int id) const;
  /// Safe without any lock: the id maps are immutable after construction.
  bool Owns(int id) const;

  /// Ships every source's initial regional approximation and every edge's
  /// initial derived hull, free of charge (warm-up absorbs the cost).
  void PopulateInitial(int64_t now);

  /// Synchronous lockstep update of every source (deterministic path):
  /// advances each stream one tick and performs the value-initiated
  /// refresh cascade (WAN push + LAN fan-out) the new values trigger.
  void TickAll(int64_t now);

  /// Advances a single source; unknown ids are counted as rejected.
  void TickSource(int id, int64_t now);

  /// Precision-bounded read of `id` at `edge`: returns an interval of
  /// width <= `constraint` that contains the exact value (when pushes are
  /// reliable), escalating edge -> regional -> source as needed and
  /// charging per hop. An unknown edge or id yields the unbounded
  /// interval, charge-free, counted in rejected_reads. Thread-safe.
  Interval Read(int edge, int id, double constraint, int64_t now);

  // -- standing queries (the subscription subsystem) -------------------

  /// Registers a standing precision-bounded query over the regional tier;
  /// the initial answer is queued immediately at epoch 1. Returns the
  /// positive sub_id, or -1 when the query is empty, the bound invalid,
  /// or any id unowned. Thread-safe.
  int64_t Subscribe(const Query& query, double delta, int64_t now) {
    return subscriptions_.Subscribe(query, delta, now);
  }
  /// Drops a standing query. Returns false when unknown. Thread-safe.
  bool Unsubscribe(int64_t sub_id) {
    return subscriptions_.Unsubscribe(sub_id);
  }
  /// Live re-precisioning of a standing query without re-registration.
  bool Reprecision(int64_t sub_id, double delta, int64_t now) {
    return subscriptions_.Reprecision(sub_id, delta, now);
  }
  NotificationHub& notifications() { return subscriptions_.hub(); }
  SubscriptionManager& subscriptions() { return subscriptions_; }
  const SubscriptionManager& subscriptions() const { return subscriptions_; }

  // -- asynchronous update path --------------------------------------
  UpdateBus& bus() { return bus_; }
  /// Starts the pump thread draining the bus into the regional tier (the
  /// LAN fan-out happens at delivery). Returns false once the bus has
  /// been closed — the asynchronous path is single-use per engine.
  bool StartUpdatePump();
  /// Closes the bus, drains the backlog, and joins the pump.
  void StopUpdatePump();

  // -- measurement and observability ---------------------------------
  void BeginMeasurement(int64_t now);
  void EndMeasurement(int64_t now);
  /// Aggregated WAN-link (regional tier) / LAN-link (all edge tiers)
  /// costs, summed over the per-shard CostTrackers.
  EngineCosts WanCosts() const;
  EngineCosts LanCosts() const;
  /// Combined WAN+LAN cost per tick over the measured period.
  double TotalCostRate() const;
  int64_t lost_wan_pushes() const;
  int64_t lost_lan_pushes() const;
  const TieredCounters& counters() const { return counters_; }

  /// The engine's metrics registry: every TieredCounters tally (under
  /// "tiered."), the update bus ("tiered.bus."), and the subscription
  /// layer ("subs.") registered at construction. Under APC_OBS=0
  /// snapshots are empty.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Attaches a cost-attribution sink to every tier's protocol table
  /// (non-owning; nullptr detaches). Call before any concurrent access.
  /// WAN and LAN charges of one id land in the same per-source slot; the
  /// sink's totals reconcile with WanCosts() + LanCosts() combined when
  /// attached before the first charge.
  void SetAttribution(obs::AttributionTable* sink);

  /// Observability accessors (consistent snapshots under the owning shard
  /// locks). Unknown ids/edges yield the unbounded interval / NaN.
  Interval regional_interval(int id, int64_t now = 0) const;
  Interval edge_interval(int edge, int id, int64_t now = 0) const;
  double regional_raw_width(int id) const;
  double edge_raw_width(int edge, int id) const;
  double exact_value(int id) const;

  /// Checks A_edge ⊇ A_regional for every cached (edge, id) pair whose
  /// regional entry is cached, under the per-id regional shard locks — a
  /// true concurrent check, valid mid-run. Guaranteed to hold whenever
  /// lan_push_loss == 0; a lost LAN push legitimately leaves one edge
  /// stale until the next delivered refresh.
  bool DerivedInvariantHolds(int64_t now = 0) const;

 private:
  /// One partition of the regional tier: the sources hashed to it (stream
  /// + ProtocolCell with the WAN-bound policy) and their share of the
  /// regional cache, a shared-core ProtocolTable charging WAN costs.
  struct RegionalShard {
    RegionalShard(const ProtocolTable::Config& table_config, uint64_t seed)
        : table(table_config, seed) {}
    /// Rank kEngineShard: taken after the subscription manager's mutex,
    /// before any edge shard (regional -> edge, never the reverse).
    mutable SharedMutex mu{LockRank::kEngineShard, "regional.mu"};
    std::vector<std::unique_ptr<Source>> sources APC_GUARDED_BY(mu);
    std::unordered_map<int, size_t> by_id;  // immutable after construction
    ProtocolTable table APC_GUARDED_BY(mu);
    std::vector<int> dirty_scratch APC_GUARDED_BY(mu);  // exclusive scratch
  };

  /// One partition of one edge tier: the derived cells (per-value raw
  /// width + last-shipped hull + LAN-bound policy — sender-side state
  /// conceptually owned by the regional cache) and the edge cache slice, a
  /// ProtocolTable charging LAN costs. Locked after the matching regional
  /// shard, never before.
  struct EdgeShard {
    EdgeShard(const ProtocolTable::Config& table_config, uint64_t seed)
        : table(table_config, seed) {}
    /// Rank kEdgeShard: only ever taken under the matching regional
    /// shard's lock (or alone, for edge-local snapshot reads).
    mutable SharedMutex mu{LockRank::kEdgeShard, "edge.mu"};
    std::vector<ProtocolCell> cells APC_GUARDED_BY(mu);
    std::unordered_map<int, size_t> by_id;  // immutable after construction
    ProtocolTable table APC_GUARDED_BY(mu);
  };

  /// Builds the derived approximation for an edge: DerivedHull
  /// (hierarchy/hierarchy.h) of the parent interval at the cell's
  /// effective width — literally the function HierarchicalSystem ships
  /// through, so the parity of the construction is structural.
  static CachedApprox DerivedApprox(const ProtocolCell& cell,
                                    const Interval& parent, int64_t now);

  /// Advances one source and runs the value-initiated refresh cascade.
  /// `rs` is the owning regional shard (== *regional_[shard]); its lock
  /// must be held exclusively.
  void TickSourceLocked(RegionalShard& rs, int shard, Source* src,
                        int64_t now) APC_REQUIRES(rs.mu);

  /// Ships derived refreshes to every edge (except `skip_edge`) whose
  /// last-shipped interval no longer contains `parent`, charging one LAN
  /// Cvr each. `rs` (== *regional_[shard]) must be held exclusively —
  /// that exclusivity is what freezes the (regional, edge) state of the
  /// shard's ids; takes each edge shard lock in turn (rank order
  /// regional -> edge).
  void FanOutLocked(RegionalShard& rs, int shard, int id,
                    const Interval& parent, int64_t now, int skip_edge)
      APC_REQUIRES(rs.mu);

  /// Installs a derived hull of `parent` at (edge shard, id) as a refresh
  /// of kind `type`, charging the edge table per OfferDerived. `rs` is the
  /// regional shard matching `es`; holding it (shared suffices) keeps the
  /// parent interval from being overwritten mid-install. Takes the edge
  /// shard lock exclusively.
  void InstallDerived(const RegionalShard& rs, EdgeShard& es, int id,
                      const Interval& parent, RefreshType type, int64_t now)
      APC_REQUIRES_SHARED(rs.mu);

  /// Applies one drained bus burst to regional shard `shard` under ONE
  /// exclusive lock acquisition — the pump's whole-burst entry point. A
  /// kAllSources event ticks every source of this shard (its per-ring
  /// broadcast copy); unknown ids are counted as rejected. Changes are
  /// published once, at the batch-maximum time (the bus batch need not be
  /// time-ordered).
  void ApplyShardEvents(int shard, const UpdateEvent* events, size_t count);
  void PumpLoop();

  // SubscriptionHost: the regional tier is the subscription surface.
  Interval SubscriptionSnapshot(int id, int64_t now) const override;
  Interval SubscriptionPull(int id, int64_t now) override;
  bool SubscriptionOwns(int id) const override { return Owns(id); }
  void SubscriptionActivate() override;

  /// Hands the regional table's dirty ids to the subscription manager
  /// (enqueue-only). Requires the regional shard lock held exclusively.
  void PublishRegionalChangesLocked(RegionalShard& rs, int64_t now)
      APC_REQUIRES(rs.mu);

  /// The seqlock optimistic edge read — the sanctioned analysis carve-out
  /// (see Shard::TryVisibleIntervalNoLock): touches the edge table's
  /// versioned slots with no lock by design.
  static SnapshotRead TryEdgeVisibleNoLock(const EdgeShard& es, int id,
                                           int64_t now, Interval* out)
      APC_NO_THREAD_SAFETY_ANALYSIS;

  /// Declared first: destroyed last, so the non-owning registrations of
  /// member-owned metrics never dangle while snapshots can be taken.
  obs::MetricsRegistry metrics_;
  TieredConfig config_;
  std::vector<std::unique_ptr<RegionalShard>> regional_;
  /// edges_[edge][shard]; edge shard s owns exactly the ids of regional
  /// shard s.
  std::vector<std::vector<std::unique_ptr<EdgeShard>>> edges_;
  size_t num_sources_ = 0;
  TieredCounters counters_;
  UpdateBus bus_;
  /// Rank kControl: Stop closes the bus (kQueue) and joins under it.
  Mutex pump_mu_{LockRank::kControl, "tiered.pump_mu"};
  std::thread pump_ APC_GUARDED_BY(pump_mu_);
  bool pump_running_ APC_GUARDED_BY(pump_mu_) = false;
  /// Declared last: destroyed first, so the notifier thread is joined
  /// while the tiers it reads through are still alive.
  SubscriptionManager subscriptions_;
};

}  // namespace apc

#endif  // APC_RUNTIME_TIERED_ENGINE_H_
