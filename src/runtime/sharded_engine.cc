#include "runtime/sharded_engine.h"

#include <cassert>

#include "obs/attribution.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "runtime/runtime_util.h"

namespace apc {

using runtime_internal::MixId;

namespace {

// Release builds clamp rather than crash (no-exceptions contract): at
// least one shard, and no more shards than cache capacity so every
// shard's χ slice is non-empty (matching EngineConfig::IsValid). A named
// helper because the bus needs the FINAL shard count in the member-init
// list — one ring per shard, so ring index == shard index.
int ClampedShardCount(const EngineConfig& config) {
  size_t capacity = config.system.cache_capacity;
  int n = config.num_shards < 1 ? 1 : config.num_shards;
  if (capacity > 0 && static_cast<size_t>(n) > capacity) {
    n = static_cast<int>(capacity);
  }
  return n;
}

}  // namespace

ShardedEngine::ShardedEngine(const EngineConfig& config,
                             std::vector<std::unique_ptr<Source>> sources)
    : config_(config),
      bus_(config.bus_capacity < 1 ? 1 : config.bus_capacity,
           static_cast<size_t>(ClampedShardCount(config))),
      subscriptions_(this, config.subscription_hub_capacity) {
  assert(config.IsValid());
  size_t capacity = config.system.cache_capacity;
  int n = ClampedShardCount(config);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Partition χ so the slices sum exactly to the total capacity.
    size_t cap_lo = capacity * static_cast<size_t>(i) / static_cast<size_t>(n);
    size_t cap_hi =
        capacity * static_cast<size_t>(i + 1) / static_cast<size_t>(n);
    // Shard 0 inherits the engine seed unmangled so that a single-shard
    // engine draws the same push-loss Bernoulli stream as a CacheSystem
    // constructed with the same seed — the determinism guarantee then
    // holds even with failure injection enabled.
    shards_.push_back(std::make_unique<Shard>(
        i, config.system, cap_hi - cap_lo,
        config.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i)),
        &counters_, config.read_lock_mode));
  }
  for (auto& src : sources) {
    // Reject malformed sources at construction: null, an invalid policy
    // configuration (would produce NaN widths mid-run), or a duplicate id
    // (rejected by its shard). Count only accepted sources, so
    // num_sources() always equals the sum of ShardSourceCounts().
    if (src == nullptr || src->policy() == nullptr ||
        !src->policy()->IsValidConfig()) {
      counters_.rejected_sources.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (shards_[static_cast<size_t>(ShardOf(src->id()))]->AddSource(
            std::move(src))) {
      ++num_sources_;
    } else {
      counters_.rejected_sources.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Wire the write path into the subscription layer: every shard hands the
  // ids whose cached interval changed to the manager (enqueue-only, under
  // the shard lock), and the manager's notifier does the rest.
  for (auto& shard : shards_) shard->SetChangeSink(&subscriptions_);
  // Observability: one registry per engine, fed by the components' own
  // lock-free tallies (non-owning registration; all members of this).
  counters_.RegisterWith(&metrics_, "engine");
  bus_.RegisterMetrics(&metrics_, "bus");
  subscriptions_.RegisterMetrics(&metrics_);
  obs::TraceRecorder::RegisterMetrics(&metrics_);
}

void ShardedEngine::SetAttribution(obs::AttributionTable* sink) {
  for (auto& shard : shards_) shard->SetAttribution(sink);
}

ShardedEngine::~ShardedEngine() {
  StopUpdatePump();
  // Join the notifier before members die; shards stay alive until after.
  subscriptions_.Shutdown();
}

int ShardedEngine::ShardOf(int id) const {
  return static_cast<int>(MixId(static_cast<uint64_t>(id)) %
                          shards_.size());
}

void ShardedEngine::PopulateInitial(int64_t now) {
  for (auto& shard : shards_) shard->PopulateInitial(now);
}

void ShardedEngine::TickAll(int64_t now) {
  // Root span of the synchronous update path: one lockstep tick across
  // every shard and the refresh cascades it triggers.
  obs::TraceScope span(obs::SpanKind::kTick, /*id=*/-1, now);
  for (auto& shard : shards_) shard->TickAll(now);
}

Interval ShardedEngine::ExecuteQuery(const Query& query, int64_t now) {
  // Root span of an aggregate query (kFull only); the ReaderScope tags any
  // Cqr charge the selection's pulls trigger as query-initiated-by-a-query
  // in the attribution table.
  obs::TraceScope span(obs::SpanKind::kQuery, /*id=*/-1, now);
  obs::ReaderScope reader(obs::ReaderKind::kQuery, /*reader_id=*/-1);
  counters_.queries_executed.fetch_add(1, std::memory_order_relaxed);

  // Per-thread scratch reused across queries: the serving hot path does no
  // steady-state heap allocation (buffers keep their capacity). Safe to
  // share across engines on the same thread — only the first num_shards()
  // group slots are read, and each is cleared before use.
  static thread_local std::vector<QueryItem> items;
  static thread_local std::vector<std::vector<ShardSlot>> groups;
  const size_t nshards = shards_.size();
  if (groups.size() < nshards) groups.resize(nshards);

  // Snapshot the visible intervals, one (shared) lock acquisition per shard
  // touched. Ids no shard owns are malformed input: dropped from the item
  // set and counted, so the aggregate ranges over the known sources only.
  items.clear();
  for (int id : query.source_ids) {
    if (!shards_[static_cast<size_t>(ShardOf(id))]->Owns(id)) {
      counters_.rejected_query_ids.fetch_add(1, std::memory_order_relaxed);
      obs::FlightRecorder::NoteRejectedInput("unowned query id", id, now);
      continue;
    }
    QueryItem item;
    item.source_id = id;
    items.push_back(item);
  }
  for (size_t s = 0; s < nshards; ++s) groups[s].clear();
  for (size_t pos = 0; pos < items.size(); ++pos) {
    groups[static_cast<size_t>(ShardOf(items[pos].source_id))].push_back(
        {pos, items[pos].source_id});
  }
  for (size_t s = 0; s < nshards; ++s) {
    if (!groups[s].empty()) shards_[s]->FillIntervals(groups[s], &items, now);
  }

  switch (query.kind) {
    case AggregateKind::kSum:
    case AggregateKind::kAvg: {
      // One-shot global selection on the snapshot, then exact pulls batched
      // per shard (the groups scratch is reused for the pull slots). The
      // non-pulled items keep their snapshot intervals, so the result width
      // is exactly what the selection guaranteed even if other threads
      // refresh those values concurrently. A source id occurring more than
      // once is pulled — and charged — once: the first occurrence becomes
      // the pull slot and the exact interval is copied to its twins after
      // the batch.
      static thread_local std::vector<size_t> selection;
      if (query.kind == AggregateKind::kSum) {
        SumRefreshSelectionInto(items, query.constraint, &selection);
      } else {
        AvgRefreshSelectionInto(items, query.constraint, &selection);
      }
      for (size_t s = 0; s < nshards; ++s) groups[s].clear();
      for (size_t i = 0; i < selection.size(); ++i) {
        size_t idx = selection[i];
        int id = items[idx].source_id;
        bool duplicate = false;
        for (size_t j = 0; j < i && !duplicate; ++j) {
          duplicate = items[selection[j]].source_id == id;
        }
        if (!duplicate) {
          groups[static_cast<size_t>(ShardOf(id))].push_back({idx, id});
        }
      }
      for (size_t s = 0; s < nshards; ++s) {
        if (!groups[s].empty()) {
          shards_[s]->PullExactMany(groups[s], &items, now);
        }
      }
      // Propagate each pulled exact value to every occurrence of its id.
      for (size_t s = 0; s < nshards; ++s) {
        for (const auto& [pos, id] : groups[s]) {
          for (auto& item : items) {
            if (item.source_id == id) item.interval = items[pos].interval;
          }
        }
      }
      return query.kind == AggregateKind::kSum ? SumInterval(items)
                                               : AvgInterval(items);
    }
    case AggregateKind::kMax:
    case AggregateKind::kMin: {
      // Iterative candidate elimination; each pull either tightens the
      // result's determining bound or eliminates candidates, so the loop
      // terminates (every pull makes one item exact). The elimination runs
      // inside the owning shard for as long as consecutive candidates stay
      // there — one lock acquisition per shard per run of candidates, not
      // one per pull (a single-shard engine does the whole loop under one
      // lock). The pull sequence is identical to pulling candidates one at
      // a time, so the CacheSystem determinism guarantee is unaffected.
      int idx = query.kind == AggregateKind::kMax
                    ? NextMaxRefreshCandidate(items, query.constraint)
                    : NextMinRefreshCandidate(items, query.constraint);
      while (idx >= 0) {
        int id = items[static_cast<size_t>(idx)].source_id;
        idx = shards_[static_cast<size_t>(ShardOf(id))]->PullCandidateRun(
            query.kind, query.constraint, idx, &items, now);
      }
      return query.kind == AggregateKind::kMax ? MaxInterval(items)
                                               : MinInterval(items);
    }
  }
  return Interval(0.0, 0.0);
}

Interval ShardedEngine::PointRead(int id, double max_width, int64_t now) {
  obs::ReaderScope reader(obs::ReaderKind::kQuery, /*reader_id=*/id);
  counters_.queries_executed.fetch_add(1, std::memory_order_relaxed);
  return shards_[static_cast<size_t>(ShardOf(id))]->PointRead(id, max_width,
                                                              now);
}

bool ShardedEngine::StartUpdatePump() {
  MutexLock lock(pump_mu_);
  if (pump_running_) return true;
  if (bus_.closed()) return false;  // a closed bus never reopens
  pump_running_ = true;
  pump_ = std::thread([this] { PumpLoop(); });
  return true;
}

void ShardedEngine::StopUpdatePump() {
  MutexLock lock(pump_mu_);
  if (!pump_running_) return;
  bus_.Close();
  pump_.join();
  pump_running_ = false;
}

void ShardedEngine::PumpLoop() {
  constexpr size_t kMaxBatch = 256;
  std::vector<UpdateEvent> batch;
  // The bus has one ring per shard and routes with the engine's own
  // partition function (tick-alls are broadcast into every ring), so a
  // drained burst belongs to exactly one shard: the whole burst applies
  // under ONE lock acquisition, with per-source event order intact.
  size_t ring = 0;
  size_t n = 0;
  while ((n = bus_.PopBatch(&batch, kMaxBatch, &ring)) > 0) {
    shards_[ring]->ApplyEvents(batch.data(), n);
  }
}

void ShardedEngine::BeginMeasurement(int64_t now) {
  for (auto& shard : shards_) shard->BeginMeasurement(now);
}

void ShardedEngine::EndMeasurement(int64_t now) {
  for (auto& shard : shards_) shard->EndMeasurement(now);
}

EngineCosts ShardedEngine::TotalCosts() const {
  EngineCosts total;
  for (const auto& shard : shards_) {
    CostTracker costs = shard->CostsSnapshot();
    total.value_refreshes += costs.value_refreshes();
    total.query_refreshes += costs.query_refreshes();
    total.total_cost += costs.total_cost();
    if (costs.measured_ticks() > total.measured_ticks) {
      total.measured_ticks = costs.measured_ticks();
    }
  }
  return total;
}

int64_t ShardedEngine::lost_pushes() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->lost_pushes();
  return total;
}

double ShardedEngine::MeanRawWidth() const {
  double sum = 0.0;
  size_t count = 0;
  for (const auto& shard : shards_) {
    auto [shard_sum, shard_count] = shard->RawWidthSum();
    sum += shard_sum;
    count += shard_count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::vector<size_t> ShardedEngine::ShardSourceCounts() const {
  std::vector<size_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) counts.push_back(shard->num_sources());
  return counts;
}

double ShardedEngine::ExactValue(int id) const {
  return shards_[static_cast<size_t>(ShardOf(id))]->SourceValue(id);
}

Interval ShardedEngine::SubscriptionSnapshot(int id, int64_t now) const {
  const Shard& shard = *shards_[static_cast<size_t>(ShardOf(id))];
  if (!shard.Owns(id)) return Interval::Unbounded();
  return shard.VisibleInterval(id, now);
}

Interval ShardedEngine::SubscriptionPull(int id, int64_t now) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(id))];
  // One query-initiated refresh (Cqr) that re-offers the fresh interval;
  // the post-refresh GUARANTEED interval is the subscription answer
  // material — never the bare exact value, which would go stale silently.
  shard.PullExact(id, now);
  return shard.VisibleInterval(id, now);
}

bool ShardedEngine::SubscriptionOwns(int id) const {
  return shards_[static_cast<size_t>(ShardOf(id))]->Owns(id);
}

void ShardedEngine::SubscriptionActivate() {
  for (auto& shard : shards_) shard->EnableChangeTracking();
}

}  // namespace apc
