// apcache_sim — command-line driver for the simulation harness.
//
// Runs the paper's workloads with arbitrary parameters without writing
// code. Examples:
//
//   apcache_sim --workload=network --tq=1 --delta_avg=100000 --theta=4
//   apcache_sim --workload=network --delta_avg=0 --delta1=1000
//               --baseline=exact   (continuation of the previous line)
//   apcache_sim --workload=walk --tq=2 --delta_avg=20 --alpha=0.25
//   apcache_sim --workload=stale --tq=5 --delta_avg=8 --baseline=divergence
//
// Flags (defaults in [brackets]): --workload={network,walk,stale}
// [network], --tq [1], --delta_avg [100000], --rho [0.5], --theta [1],
// --alpha [1], --delta0 [1000], --delta1 [inf], --chi [50],
// --max_fraction [0], --horizon, --warmup, --seed [42],
// --loss (push-loss probability) [0],
// --baseline={none,exact,divergence} [none].
#include <cstdio>

#include "sim/experiments.h"
#include "util/flags.h"

namespace {

void PrintResult(const char* label, const apc::SimResult& r) {
  std::printf("%-28s cost/s %8.3f | pushes %8lld pulls %8lld | Pvr %.4f "
              "Pqr %.4f | mean width %.1f\n",
              label, r.cost_rate, static_cast<long long>(r.value_refreshes),
              static_cast<long long>(r.query_refreshes), r.pvr, r.pqr,
              r.mean_raw_width);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apc;

  FlagParser flags;
  Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 2;
  }

  if (flags.Has("help")) {
    std::printf(
        "usage: apcache_sim [--flag=value ...]\n"
        "  --workload={network,walk,stale}   workload family [network]\n"
        "  --baseline={none,exact,divergence} also run a baseline [none]\n"
        "  --tq --delta_avg --rho --theta --alpha  workload/algorithm\n"
        "  --delta0 --delta1 (use 'inf')           thresholds\n"
        "  --chi --max_fraction --loss             cache size, MAX share,\n"
        "                                          push-loss probability\n"
        "  --horizon --warmup --seed               run control\n");
    return 0;
  }

  std::string workload = flags.GetStringOr("workload", "network");
  std::string baseline = flags.GetStringOr("baseline", "none");

  // Every numeric flag can fail to parse; funnel errors through one check.
  auto d = [&](const char* name, double fallback) {
    Result<double> r = flags.GetDoubleOr(name, fallback);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      std::exit(2);
    }
    return r.value();
  };
  auto i = [&](const char* name, int64_t fallback) {
    Result<int64_t> r = flags.GetIntOr(name, fallback);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      std::exit(2);
    }
    return r.value();
  };

  if (workload == "network") {
    NetworkExperiment exp;
    exp.tq = d("tq", 1.0);
    exp.delta_avg = d("delta_avg", 100e3);
    exp.rho = d("rho", 0.5);
    exp.theta = d("theta", 1.0);
    exp.alpha = d("alpha", 1.0);
    exp.delta0 = d("delta0", 1e3);
    exp.delta1 = d("delta1", kInfinity);
    exp.chi = static_cast<size_t>(i("chi", 50));
    exp.max_fraction = d("max_fraction", 0.0);
    exp.horizon = i("horizon", 7200);
    exp.warmup = i("warmup", 1200);
    exp.seed = static_cast<uint64_t>(i("seed", 42));

    double loss = d("loss", 0.0);
    if (loss > 0.0) {
      SimConfig config = exp.ToSimConfig();
      config.system.push_loss_probability = loss;
      AdaptivePolicy prototype(exp.ToPolicyParams(), exp.seed ^ 0x9a11ce);
      SimResult r = RunIntervalSimulation(
          config, MakeTraceStreams(SharedNetworkTrace()), prototype);
      PrintResult("adaptive (lossy pushes)", r);
    } else {
      PrintResult("adaptive approximate", RunNetworkAdaptive(exp));
    }
    if (baseline == "exact") {
      int best_x = 0;
      SimResult r =
          RunNetworkExactCaching(exp, DefaultExactCachingXGrid(), &best_x);
      char label[64];
      std::snprintf(label, sizeof(label), "exact caching (x=%d)", best_x);
      PrintResult(label, r);
    }
    return 0;
  }

  if (workload == "walk") {
    WalkExperiment exp;
    exp.tq = d("tq", 2.0);
    exp.delta_avg = d("delta_avg", 20.0);
    exp.rho = d("rho", 1.0);
    exp.theta = d("theta", 1.0);
    exp.alpha = d("alpha", 1.0);
    exp.fixed_width = d("fixed_width", 0.0);
    exp.horizon = i("horizon", 200000);
    exp.warmup = i("warmup", 5000);
    exp.seed = static_cast<uint64_t>(i("seed", 7));
    PrintResult(exp.fixed_width > 0 ? "fixed width" : "adaptive",
                RunWalkExperiment(exp));
    return 0;
  }

  if (workload == "stale") {
    StaleExperiment exp;
    exp.tq = d("tq", 1.0);
    exp.delta_avg = d("delta_avg", 7.0);
    exp.rho = d("rho", 1.0);
    exp.alpha = d("alpha", 1.0);
    exp.horizon = i("horizon", 30000);
    exp.warmup = i("warmup", 3000);
    exp.seed = static_cast<uint64_t>(i("seed", 11));
    PrintResult("stale-adaptive (ours)", RunStaleAdaptive(exp));
    if (baseline == "divergence") {
      PrintResult("divergence caching", RunStaleDivergenceCaching(exp));
    }
    return 0;
  }

  std::fprintf(stderr,
               "error: unknown --workload=%s (network, walk, stale)\n",
               workload.c_str());
  return 2;
}
