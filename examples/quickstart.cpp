// Quickstart: the adaptive precision-setting algorithm in ~60 lines.
//
// One numeric source performs a random walk; a cache holds an interval
// approximation of it. The source grows the interval when the value
// escapes (value-initiated refresh) and shrinks it when a query finds it
// too wide (query-initiated refresh), converging to the width that
// minimizes total refresh cost — with no monitoring or history.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "cache/system.h"
#include "core/adaptive_policy.h"
#include "data/random_walk.h"

int main() {
  using namespace apc;

  // 1. Configure the environment: a pushed update costs 1 message, a
  //    remote read costs 2 (request + response) => cost factor theta = 1.
  SystemConfig config;
  config.costs = {/*cvr=*/1.0, /*cqr=*/2.0};
  config.cache_capacity = 1;

  // 2. Configure the algorithm. alpha = 1 doubles/halves the width on each
  //    adjustment; thresholds are disabled for this demo.
  AdaptivePolicyParams params;
  params.cvr = config.costs.cvr;
  params.cqr = config.costs.cqr;
  params.alpha = 1.0;
  params.initial_width = 1.0;

  // 3. Wire a source (random walk, step ~ U[0.5, 1.5] per tick) to a cache.
  RandomWalkParams walk;
  std::vector<std::unique_ptr<Source>> sources;
  sources.push_back(std::make_unique<Source>(
      /*id=*/0, std::make_unique<RandomWalkStream>(walk, /*seed=*/42),
      std::make_unique<AdaptivePolicy>(params, /*seed=*/7)));
  CacheSystem system(config, std::move(sources));
  system.PopulateInitial(0);
  system.costs().BeginMeasurement(0);

  // 4. Drive the simulation: one update per tick, one bounded query every
  //    other tick asking for the value within +/- 10.
  std::printf("%8s %12s %22s %12s\n", "tick", "value", "cached interval",
              "raw width");
  for (int64_t t = 1; t <= 20000; ++t) {
    system.Tick(t);
    if (t % 2 == 0) {
      Query query{AggregateKind::kSum, {0}, /*constraint=*/20.0};
      system.ExecuteQuery(query, t);
    }
    if (t % 2000 == 0) {
      const CacheEntry* entry = system.cache().Find(0);
      std::printf("%8lld %12.2f %22s %12.3f\n", static_cast<long long>(t),
                  system.source(0)->value(),
                  entry->approx.base.ToString().c_str(),
                  system.source(0)->raw_width());
    }
  }

  // 5. Inspect the outcome: the width has converged and the realized cost
  //    rate reflects the balance theta*Pvr ~ Pqr.
  const CostTracker& costs = system.costs();
  std::printf("\nvalue-initiated refreshes: %lld\n",
              static_cast<long long>(costs.value_refreshes()));
  std::printf("query-initiated refreshes: %lld\n",
              static_cast<long long>(costs.query_refreshes()));
  std::printf("converged width:           %.3f\n",
              system.source(0)->raw_width());
  std::printf("\nThe two refresh counts are close: that balance is how the "
              "algorithm finds the optimal width (paper Section 3).\n");
  return 0;
}
