// Web-page caching with stale-value approximations — the paper's §2.1/§5
// suggestion: "environments that cache Web pages could use our approach
// ... if the deviation between the exact copy at the source and the stale
// cached replica can be measured numerically."
//
// Here the deviation metric is the number of edits not yet reflected in
// the cached copy. Each cached page carries a divergence bound g set by
// the stale-value specialization of the adaptive algorithm (theta' =
// Cvr/Cqr): hot, tightly-read pages converge to small bounds (origin
// pushes often), rarely edited or rarely read pages to large ones. No
// per-page tuning is configured — only the edit and read streams.
//
// Build & run:  ./build/examples/web_cache
#include <cstdio>
#include <memory>

#include "baseline/stale_system.h"
#include "core/stale_policy.h"
#include "util/rng.h"

int main() {
  using namespace apc;

  constexpr int kPages = 6;
  const char* kNames[kPages] = {"/home",    "/news",  "/api/status",
                                "/blog",    "/about", "/archive"};
  // Edits and reads per second, and how many missed edits a reader of
  // each page tolerates.
  const double kEditRate[kPages] = {0.02, 0.5, 1.0, 0.05, 0.001, 0.0005};
  const double kReadRate[kPages] = {0.8, 0.6, 0.9, 0.05, 0.02, 0.002};
  const double kTolerance[kPages] = {2.0, 5.0, 1.0, 10.0, 50.0, 100.0};

  StalePolicyParams params;
  params.cvr = 1.0;  // push one message
  params.cqr = 2.0;  // read is request + response
  params.alpha = 1.0;
  params.delta0 = 1.0;
  params.initial_bound = 2.0;

  std::printf("%-14s %10s %10s %12s %10s %10s\n", "page", "edits/s",
              "reads/s", "bound g", "pushes", "pulls");
  double total_cost = 0.0;
  const int64_t kHorizon = 200000;
  for (int page = 0; page < kPages; ++page) {
    // One single-page cache system per page: the update probability models
    // this page's edit stream.
    StaleSystemConfig config;
    config.costs = {params.cvr, params.cqr};
    config.num_sources = 1;
    config.update_probability = kEditRate[page];

    auto policy = std::make_unique<AdaptiveStaleBounds>(
        params.ToAdaptiveParams(), 1, 100 + page);
    StaleCacheSystem system(config, std::move(policy), 200 + page);
    system.costs().BeginMeasurement(0);

    Rng readers(300 + page);
    for (int64_t t = 1; t <= kHorizon; ++t) {
      system.Tick(t);  // edits arrive at kEditRate
      if (readers.Bernoulli(kReadRate[page])) {
        system.ExecuteRead({0}, kTolerance[page], t);
      }
    }
    system.costs().EndMeasurement(kHorizon);
    total_cost += system.costs().CostRate();
    std::printf("%-14s %10.4f %10.4f %12.2f %10lld %10lld\n", kNames[page],
                kEditRate[page], kReadRate[page], system.bound(0),
                static_cast<long long>(system.costs().value_refreshes()),
                static_cast<long long>(system.costs().query_refreshes()));
  }
  std::printf("\ntotal cost rate: %.4f messages/s\n", total_cost);
  std::printf("\nThe busy status endpoint converges to a tight bound "
              "(push-mostly); the archive converges to a huge one "
              "(pull-rarely). Same algorithm, same parameters.\n");
  return 0;
}
