// Two-level caching demo (paper §5 future work): a regional cache feeds
// four edge dashboards over a cheap LAN while talking to the sources over
// an expensive WAN. Each edge dashboard polls a handful of sensors with
// its own precision needs; the adaptive algorithm sets widths per link, so
// WAN traffic is shared across edges while each edge pays only LAN prices
// for its precision.
//
// Build & run:  ./build/examples/edge_dashboard
#include <cstdio>
#include <memory>

#include "data/random_walk.h"
#include "hierarchy/hierarchy.h"
#include "util/rng.h"

int main() {
  using namespace apc;

  HierarchyConfig config;
  config.num_sources = 20;
  config.num_edges = 4;
  config.wan = {4.0, 8.0};  // pushes cost 4, pulls 8 across the WAN
  config.lan = {1.0, 2.0};
  config.regional_policy.alpha = 1.0;
  config.regional_policy.initial_width = 4.0;
  config.edge_policy.alpha = 1.0;
  config.edge_policy.initial_width = 8.0;

  RandomWalkParams walk;
  std::vector<std::unique_ptr<UpdateStream>> streams;
  Rng seeder(99);
  for (int id = 0; id < config.num_sources; ++id) {
    streams.push_back(
        std::make_unique<RandomWalkStream>(walk, seeder.NextUint64()));
  }

  HierarchicalSystem system(config, std::move(streams), 7);
  system.BeginMeasurement(0);

  Rng workload(5);
  for (int64_t t = 1; t <= 100000; ++t) {
    system.Tick(t);
    // Each edge reads one random sensor per tick; edges 0-1 run tight
    // dashboards (slack 10), edges 2-3 loose ones (slack 60).
    for (int edge = 0; edge < config.num_edges; ++edge) {
      int id = static_cast<int>(
          workload.UniformInt(0, config.num_sources - 1));
      double slack = edge < 2 ? 10.0 : 60.0;
      Interval answer = system.Read(edge, id, slack, t);
      if (answer.Width() > slack || !answer.Contains(system.exact_value(id))) {
        std::printf("BUG: bad answer at t=%lld\n", static_cast<long long>(t));
        return 1;
      }
    }
  }
  system.EndMeasurement(100000);

  std::printf("two-level system, 20 sensors, 4 edges, 100k s:\n");
  std::printf("  WAN cost rate : %8.3f  (pushes %lld, pulls %lld)\n",
              system.wan_costs().CostRate(),
              static_cast<long long>(system.wan_costs().value_refreshes()),
              static_cast<long long>(system.wan_costs().query_refreshes()));
  std::printf("  LAN cost rate : %8.3f  (pushes %lld, pulls %lld)\n",
              system.lan_costs().CostRate(),
              static_cast<long long>(system.lan_costs().value_refreshes()),
              static_cast<long long>(system.lan_costs().query_refreshes()));
  std::printf("  total         : %8.3f\n", system.TotalCostRate());

  std::printf("\nsample widths (value 0): regional %.2f | edges",
              system.regional_interval(0).Width());
  for (int edge = 0; edge < config.num_edges; ++edge) {
    std::printf(" %.2f", system.edge_interval(edge, 0).Width());
  }
  std::printf("\nTight edges converge near the regional width (they cannot "
              "be more precise than their parent — the paper's derived-"
              "precision effect); loose edges stay wide and cheap.\n");
  return 0;
}
