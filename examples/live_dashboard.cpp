// Live dashboard demo: the subscriber-driven inversion of the polling
// pattern in concurrent_server.cpp.
//
// The same fleet of 64 "sensors" feeds a 4-shard runtime engine — but
// instead of client threads re-issuing precision-bounded queries to learn
// that an answer changed, the dashboard registers STANDING queries once
// (a fleet-wide SUM, a hottest-sensor MAX, and a handful of per-sensor
// point watches) and the engine pushes fresh answers through the
// NotificationHub only when a guaranteed interval escapes the answer the
// dashboard already holds or widens past its bound. One refresh is
// amortized across every subscriber of a value, and mid-run the dashboard
// tightens its SUM bound with Reprecision — live, without
// re-registration.
//
// Build & run:  ./build/examples/live_dashboard [export.json]
// With a path argument, the final apcache-obs-v1 document (attribution
// section included) is also written to that file — scripts/check.sh --obs
// uses this to validate a real export against the schema.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/adaptive_policy.h"
#include "obs/attribution.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "runtime/sharded_engine.h"
#include "runtime/workload_driver.h"

int main(int argc, char** argv) {
  using namespace apc;

  // 1. The environment and the runtime: identical to concurrent_server —
  //    64 random-walk sensors, 4 shards, adaptive per-value widths.
  constexpr int kSensors = 64;
  AdaptivePolicyParams policy;
  policy.alpha = 1.0;
  EngineConfig config;
  config.num_shards = 4;
  // Headroom over the hash partition's imbalance: capacity is sliced
  // evenly across shards, so a tight 64/64 fit would evict on whichever
  // shard drew the most sensors and the fleet aggregates would go
  // unbounded.
  config.system.cache_capacity = 96;
  config.seed = 42;
  ShardedEngine engine(
      config, BuildRandomWalkSources(kSensors, RandomWalkParams{}, policy,
                                     /*seed=*/42));
  // Attribution rides along from the first charge: every refresh the run
  // pays lands in a per-sensor slot, split Cvr/Cqr and by reader.
  obs::AttributionTable attribution;
  engine.SetAttribution(&attribution);
  engine.PopulateInitial(0);

  // 2. Subscribe: the dashboard's standing queries, registered ONCE — a
  //    SUM over the first rack of 8 sensors, a fleet-wide hottest-sensor
  //    MAX, and four per-sensor watches.
  Query rack_sum;
  rack_sum.kind = AggregateKind::kSum;
  for (int id = 0; id < 8; ++id) rack_sum.source_ids.push_back(id);
  int64_t sum_sub = engine.Subscribe(rack_sum, /*delta=*/50.0, 0);

  Query hottest;
  hottest.kind = AggregateKind::kMax;
  for (int id = 0; id < kSensors; ++id) hottest.source_ids.push_back(id);
  int64_t max_sub = engine.Subscribe(hottest, /*delta=*/5.0, 0);

  std::unordered_map<int64_t, const char*> label = {
      {sum_sub, "rack SUM"}, {max_sub, "hottest MAX"}};
  for (int id = 0; id < 4; ++id) {
    Query watch;
    watch.kind = AggregateKind::kSum;
    watch.source_ids = {id};
    label[engine.Subscribe(watch, /*delta=*/2.0, 0)] = "sensor watch";
  }
  std::printf("registered %zu standing queries\n",
              engine.subscriptions().num_subscriptions());
  engine.BeginMeasurement(0);  // registration answers are warm-up

  // 3. The dashboard thread: drains the hub until it closes. No polling —
  //    every record it sees is an answer that actually changed. Each drain
  //    feeds the registry's delivery-lag histogram (wall tick at drain
  //    minus the answer's compute tick), so the ops sidebar's lag
  //    quantiles are live numbers, not placeholders.
  std::atomic<int64_t> wall_tick{0};
  std::thread dashboard([&] {
    std::vector<Notification> batch;
    std::unordered_map<int64_t, int64_t> updates_of;
    while (engine.notifications().PopBatch(&batch, 32) > 0) {
      for (const Notification& record : batch) {
        ++updates_of[record.sub_id];
        int64_t lag = wall_tick.load(std::memory_order_relaxed) - record.now;
        engine.subscriptions().RecordDeliveryLag(
            lag > 0 ? static_cast<double>(lag) : 0.0);
        // Print the interesting feeds; per-sensor watches just count.
        if (record.sub_id == sum_sub || record.sub_id == max_sub) {
          std::printf("  t=%3lld  %-11s epoch %3lld  answer %s (width %.3g)\n",
                      static_cast<long long>(record.now),
                      label[record.sub_id],
                      static_cast<long long>(record.epoch),
                      record.answer.ToString().c_str(),
                      record.answer.Width());
        }
      }
    }
    std::printf("\ndashboard: notifications per standing query\n");
    for (const auto& [sub_id, n] : updates_of) {
      std::printf("  sub %lld (%s): %lld updates\n",
                  static_cast<long long>(sub_id), label[sub_id],
                  static_cast<long long>(n));
    }
  });

  // 4. The world moves: 40 update ticks, each fully evaluated before the
  //    next (WaitQuiescent — the lockstep discipline, so the demo's output
  //    is deterministic). Notifications flow only when a guaranteed
  //    interval escapes a held answer or a bound is re-met.
  //    Every 10 ticks the ops sidebar of the dashboard renders a metrics
  //    snapshot straight from the engine's registry — the same consistent
  //    view the JSON exporter serializes, read here without touching any
  //    engine lock.
  auto ops_sidebar = [&](int64_t t) {
    obs::MetricsRegistry::Snapshot snap = engine.metrics().TakeSnapshot();
    std::printf(
        "  t=%3lld  [ops] evals %lld  escalations %lld  suppressed %lld  "
        "hub depth %lld  lag p50/p99 %.1f/%.1f ticks\n",
        static_cast<long long>(t),
        static_cast<long long>(snap.CounterValue("subs.evaluations")),
        static_cast<long long>(snap.CounterValue("subs.escalations")),
        static_cast<long long>(snap.CounterValue("subs.suppressed")),
        static_cast<long long>(snap.GaugeValue("subs.hub.queue_depth")),
        snap.HistogramQuantile("subs.delivery_lag_ticks", 0.50),
        snap.HistogramQuantile("subs.delivery_lag_ticks", 0.99));
  };

  for (int64_t t = 1; t <= 40; ++t) {
    wall_tick.store(t, std::memory_order_relaxed);
    engine.TickAll(t);
    engine.subscriptions().WaitQuiescent();
    if (t % 10 == 0) ops_sidebar(t);
    if (t == 20) {
      // Mid-run re-precisioning: the dashboard zooms in on the hottest
      // sensor — same subscription, a much tighter bound, effective
      // immediately (no re-registration). The tightening evaluates at
      // once: the too-wide answer is escalated and a bound-meeting answer
      // is pushed as soon as one exists.
      std::printf("  t= 20  >>> Reprecision: hottest MAX bound 5 -> 1.5\n");
      engine.Reprecision(max_sub, 1.5, t);
    }
  }
  engine.subscriptions().WaitQuiescent();
  engine.EndMeasurement(40);

  // 5. What it cost: escalations (charged query refreshes) versus the
  //    evaluations that rode shared refreshes or were suppressed.
  const SubscriptionCounters& c = engine.subscriptions().counters();
  std::printf("\nevaluations %lld  escalations %lld  suppressed %lld\n",
              static_cast<long long>(c.evaluations.load()),
              static_cast<long long>(c.escalations.load()),
              static_cast<long long>(c.suppressed.load()));
  std::printf("engine refreshes: %lld value-initiated, %lld query-initiated "
              "(cost %.0f)\n",
              static_cast<long long>(engine.TotalCosts().value_refreshes),
              static_cast<long long>(engine.TotalCosts().query_refreshes),
              engine.TotalCosts().total_cost);

  // 6. WHO cost that: the attribution table names the sensors driving the
  //    bill — refresh counts split value- vs query-initiated, the Cqr side
  //    further split by reader (ad-hoc query vs standing subscription),
  //    and the latest shipped bound width. Empty under -DAPC_OBS=0.
  std::vector<obs::AttributionTable::SourceStats> by_cost =
      attribution.Snapshot();
  if (by_cost.size() > 1) {  // guard keeps the obs-off stub path sort-free
    std::sort(by_cost.begin(), by_cost.end(),
              [](const obs::AttributionTable::SourceStats& a,
                 const obs::AttributionTable::SourceStats& b) {
                return a.value_cost + a.query_cost >
                       b.value_cost + b.query_cost;
              });
  }
  std::printf("\ntop refreshers (cost = Cvr + Cqr side):\n");
  for (size_t i = 0; i < by_cost.size() && i < 5; ++i) {
    const obs::AttributionTable::SourceStats& s = by_cost[i];
    std::printf(
        "  sensor %2d  cost %6.1f  (%lld pushes, %lld pulls: %lld query / "
        "%lld sub)  width %.3g\n",
        s.id, s.value_cost + s.query_cost,
        static_cast<long long>(s.value_refreshes),
        static_cast<long long>(s.query_refreshes),
        static_cast<long long>(s.query_reader_refreshes),
        static_cast<long long>(s.subscription_reader_refreshes),
        s.last_width);
  }

  // 7. The run's full registry snapshot — attribution section included —
  //    serialized the way a scrape endpoint would hand it out (under
  //    -DAPC_OBS=0 this prints a stub document and the sidebar above reads
  //    all zeros — the dashboard itself is unchanged).
  obs::SnapshotExporter exporter(&engine.metrics());
  exporter.AttachAttribution(&attribution);
  std::printf("\nfinal metrics export:\n%s\n", exporter.ToJson().c_str());
  if (argc > 1) {
    bool ok = exporter.WriteFile(argv[1]);
    std::printf("export %s to %s\n", ok ? "written" : "FAILED", argv[1]);
  }

  engine.subscriptions().Shutdown();  // closes the hub; dashboard drains out
  dashboard.join();
  return 0;
}
