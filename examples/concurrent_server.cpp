// Concurrent serving demo: the adaptive-precision protocol under load.
//
// A fleet of 64 "sensors" (random walks) feeds a 4-shard runtime engine.
// An updater thread streams sensor updates through the UpdateBus while four
// client threads issue precision-bounded aggregate queries and point reads
// concurrently. Each client's precision constraint is honored no matter how
// the threads interleave, and the per-value adaptive width policy keeps
// tuning itself to minimize refresh cost — exactly the paper's protocol,
// now multiplexed across threads.
//
// Build & run:  ./build/examples/concurrent_server
#include <cstdio>

#include "core/adaptive_policy.h"
#include "runtime/sharded_engine.h"
#include "runtime/workload_driver.h"

int main() {
  using namespace apc;

  // 1. The environment: 64 sensor values, each a random walk, each owning
  //    an instance of the adaptive precision policy (alpha = 1).
  constexpr int kSensors = 64;
  AdaptivePolicyParams policy;
  policy.alpha = 1.0;
  auto sources = BuildRandomWalkSources(kSensors, RandomWalkParams{}, policy,
                                        /*seed=*/42);

  // 2. The runtime: sources hash-partitioned across 4 mutex-guarded shards
  //    sharing a cache of capacity 48 (so some values stay uncached and
  //    queries must pull them exactly).
  EngineConfig config;
  config.num_shards = 4;
  config.system.cache_capacity = 48;
  config.seed = 42;
  ShardedEngine engine(config, std::move(sources));

  std::printf("partition: ");
  for (size_t count : engine.ShardSourceCounts()) {
    std::printf("%zu ", count);
  }
  std::printf("sensors across %d shards\n", engine.num_shards());

  // 3. The load: 4 closed-loop client threads, 5000 queries each — a mix of
  //    bounded SUMs over 10 sensors, bounded MAX/MIN, and point reads —
  //    racing an updater that streams sensor ticks through the UpdateBus.
  DriverConfig driver;
  driver.num_threads = 4;
  driver.queries_per_thread = 5000;
  driver.workload.num_sources = kSensors;
  driver.workload.group_size = 10;
  driver.workload.max_fraction = 0.25;
  driver.workload.min_fraction = 0.25;
  driver.workload.constraints.avg = 20.0;
  driver.workload.constraints.rho = 1.0;
  driver.point_read_fraction = 0.25;
  driver.run_updates = true;
  driver.seed = 7;
  DriverReport report = RunWorkload(engine, driver);

  // 4. What happened.
  std::printf("\nserved %lld queries in %.3f s  (%.0f queries/s)\n",
              static_cast<long long>(report.queries), report.wall_seconds,
              report.queries_per_second);
  std::printf("latency: p50 %.1f us   p95 %.1f us   p99 %.1f us\n",
              report.latency_p50_us, report.latency_p95_us,
              report.latency_p99_us);
  std::printf("precision violations: %lld (the protocol guarantees 0)\n",
              static_cast<long long>(report.violations));
  std::printf("sensor ticks streamed through the bus: %lld\n",
              static_cast<long long>(report.ticks));
  std::printf("refreshes: %lld value-initiated, %lld query-initiated "
              "(cost %.0f, %.2f per tick)\n",
              static_cast<long long>(report.costs.value_refreshes),
              static_cast<long long>(report.costs.query_refreshes),
              report.costs.total_cost, report.costs.CostRate());
  std::printf("mean retained width after the run: %.3g\n",
              engine.MeanRawWidth());
  return report.violations == 0 ? 0 : 1;
}
