// Sensor fleet aggregation: mixed precision requirements and thresholds.
//
// Twenty temperature sensors drift as random walks. Two consumers query
// the cache:
//   * a control loop that needs EXACT readings of its 5 sensors, and
//   * a logging dashboard happy with a +/- 5 degree total.
// This is the workload for which the thresholds delta0/delta1 exist: with
// delta0 > 0 the algorithm snaps precise-enough intervals to exact copies
// (serving the control loop from cache), while the dashboard's sensors
// keep wide, cheap intervals.
//
// Build & run:  ./build/examples/sensor_aggregation
#include <cstdio>
#include <memory>

#include "cache/system.h"
#include "core/adaptive_policy.h"
#include "data/random_walk.h"
#include "util/rng.h"

int main() {
  using namespace apc;

  constexpr int kSensors = 20;

  SystemConfig config;
  config.costs = {1.0, 2.0};
  config.cache_capacity = kSensors;

  AdaptivePolicyParams params;
  params.cvr = 1.0;
  params.cqr = 2.0;
  params.alpha = 1.0;
  params.delta0 = 0.05;  // widths below 0.05 degrees snap to exact copies
  params.delta1 = kInfinity;
  params.initial_width = 2.0;

  RandomWalkParams walk;
  walk.start = 20.0;     // degrees
  walk.step_lo = 0.005;  // slow thermal drift per second
  walk.step_hi = 0.02;

  std::vector<std::unique_ptr<Source>> sources;
  Rng seeder(2024);
  for (int id = 0; id < kSensors; ++id) {
    sources.push_back(std::make_unique<Source>(
        id, std::make_unique<RandomWalkStream>(walk, seeder.NextUint64()),
        std::make_unique<AdaptivePolicy>(params, seeder.NextUint64())));
  }
  CacheSystem system(config, std::move(sources));
  system.PopulateInitial(0);
  system.costs().BeginMeasurement(0);

  Query control{AggregateKind::kSum, {0, 1, 2, 3, 4}, /*constraint=*/0.0};
  Query dashboard{AggregateKind::kSum,
                  {5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19},
                  /*constraint=*/5.0};

  for (int64_t t = 1; t <= 50000; ++t) {
    system.Tick(t);
    if (t % 5 == 0) system.ExecuteQuery(control, t);    // 0.2 Hz control
    if (t % 10 == 0) system.ExecuteQuery(dashboard, t);  // 0.1 Hz logging
  }
  system.costs().EndMeasurement(50000);

  double control_width = 0.0, dashboard_width = 0.0;
  for (int id = 0; id < 5; ++id) {
    control_width += system.source(id)->raw_width() / 5.0;
  }
  for (int id = 5; id < kSensors; ++id) {
    dashboard_width += system.source(id)->raw_width() / 15.0;
  }

  std::printf("after 50000 s:\n");
  std::printf("  control-loop sensors mean width  : %.4f deg", control_width);
  std::printf("  (snapped to exact copies below delta0 = %.2f)\n",
              params.delta0);
  std::printf("  dashboard sensors mean width     : %.4f deg\n",
              dashboard_width);
  std::printf("  cost rate                        : %.4f msg/s\n",
              system.costs().CostRate());
  std::printf("  pushes %lld, pulls %lld\n",
              static_cast<long long>(system.costs().value_refreshes()),
              static_cast<long long>(system.costs().query_refreshes()));
  std::printf("\nThe same cache serves exact reads and loose aggregates; "
              "each sensor's precision settles where ITS readers need "
              "it.\n");
  return 0;
}
