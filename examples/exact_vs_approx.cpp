// Subsumption demo: one algorithm, three caching personalities.
//
// The paper's key structural claim is that adaptive precision setting
// strictly generalizes adaptive exact caching: with delta1 = delta0 every
// approximation is either an exact copy or effectively uncached, and the
// width dynamics become a cache/don't-cache decision. This example runs
// the SAME implementation in three configurations against the [WJH97]
// exact-caching baseline:
//
//   A. delta1 = delta0 (exact-or-nothing) on an exact-precision workload
//      -> should track the baseline;
//   B. delta1 = inf on the same workload -> intervals cannot help SUM
//      queries that demand exactness;
//   C. delta1 = inf with precision slack -> intervals win big.
//
// Build & run:  ./build/examples/exact_vs_approx
#include <cstdio>

#include "sim/experiments.h"

int main() {
  using namespace apc;

  NetworkExperiment base;
  base.tq = 1.0;
  base.theta = 1.0;
  base.rho = 0.5;
  base.delta0 = 1e3;

  std::printf("workload: SUM over 10 of 50 traced hosts, 1 query/s, 2h\n\n");

  NetworkExperiment exact_workload = base;
  exact_workload.delta_avg = 0.0;
  SimResult baseline =
      RunNetworkExactCaching(exact_workload, DefaultExactCachingXGrid());
  std::printf("[WJH97] adaptive exact caching, exact queries : %8.2f "
              "msg/s\n", baseline.cost_rate);

  NetworkExperiment a = exact_workload;
  a.delta1 = a.delta0;  // exact-or-nothing personality
  SimResult ra = RunNetworkAdaptive(a);
  std::printf("A. ours, delta1 = delta0, exact queries       : %8.2f "
              "msg/s  (subsumes the baseline)\n", ra.cost_rate);

  NetworkExperiment b = exact_workload;
  b.delta1 = kInfinity;
  SimResult rb = RunNetworkAdaptive(b);
  std::printf("B. ours, delta1 = inf,    exact queries       : %8.2f "
              "msg/s  (intervals can't help exact SUMs)\n", rb.cost_rate);

  NetworkExperiment c = base;
  c.delta_avg = 100e3;
  c.delta1 = kInfinity;
  SimResult rc = RunNetworkAdaptive(c);
  std::printf("C. ours, delta1 = inf,    100K slack          : %8.2f "
              "msg/s  (%.1fx cheaper than exact caching)\n", rc.cost_rate,
              baseline.cost_rate / rc.cost_rate);

  std::printf("\nSame code path in all three rows — only the thresholds "
              "changed. Set delta1 = delta0 and you have an exact-caching "
              "algorithm; open them up and precision becomes a tunable "
              "resource.\n");
  return 0;
}
