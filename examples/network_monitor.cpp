// Network monitoring dashboard — the paper's motivating scenario.
//
// A monitoring station caches approximate traffic levels for 50 hosts and
// answers two standing dashboard panels every second:
//   * "total traffic across my hosts"    (bounded SUM, slack 100 KB/s)
//   * "worst offender right now"         (bounded MAX, slack 20 KB/s)
// The cached intervals answer most panel refreshes without touching the
// network; the adaptive algorithm keeps them exactly as precise as the
// panels need and no more.
//
// Also demonstrates exporting the synthetic trace to CSV (Status-based
// error handling) so a real trace can be dropped in instead.
//
// Build & run:  ./build/examples/network_monitor
#include <cstdio>
#include <memory>

#include "core/adaptive_policy.h"
#include "data/trace_io.h"
#include "query/query_gen.h"
#include "sim/experiments.h"

int main() {
  using namespace apc;

  const Trace& trace = SharedNetworkTrace();
  std::printf("loaded trace: %zu hosts x %zu seconds\n", trace.num_hosts(),
              trace.duration());

  // Optional: export for inspection / substitution with real data.
  std::string csv_path = "/tmp/apcache_trace.csv";
  Status s = SaveTraceCsv(trace, csv_path);
  if (s.ok()) {
    std::printf("trace exported to %s (drop in your own CSV and load it "
                "with LoadTraceCsv)\n\n", csv_path.c_str());
  } else {
    std::printf("trace export skipped: %s\n\n", s.ToString().c_str());
  }

  NetworkExperiment exp;
  exp.tq = 0.5;          // two panel refreshes per second
  exp.delta_avg = 100e3; // SUM slack
  exp.rho = 0.2;
  exp.max_fraction = 0.5;  // half the panel refreshes are MAX queries
  exp.theta = 1.0;

  SimResult ours = RunNetworkAdaptive(exp);

  // What would the same dashboard cost with classic exact caching?
  SimResult exact = RunNetworkExactCaching(exp, DefaultExactCachingXGrid());

  std::printf("dashboard cost (messages/second over a 2h trace):\n");
  std::printf("  adaptive approximate caching : %8.2f\n", ours.cost_rate);
  std::printf("    pushes %lld, pulls %lld\n",
              static_cast<long long>(ours.value_refreshes),
              static_cast<long long>(ours.query_refreshes));
  std::printf("  adaptive exact caching       : %8.2f\n", exact.cost_rate);
  std::printf("  saving                       : %7.1fx\n",
              exact.cost_rate / ours.cost_rate);

  // Tighten the panels and watch the algorithm renegotiate precision.
  std::printf("\nprecision slack vs cost (SUM-only panels, Tq = 1):\n");
  std::printf("%14s %12s %14s\n", "slack (B/s)", "cost", "mean width");
  for (double slack : {10e3, 50e3, 100e3, 500e3}) {
    NetworkExperiment point;
    point.tq = 1.0;
    point.delta_avg = slack;
    point.rho = 0.2;
    SimResult r = RunNetworkAdaptive(point);
    std::printf("%14.0f %12.2f %14.0f\n", slack, r.cost_rate,
                r.mean_raw_width);
  }
  std::printf("\nLooser panels => wider intervals => fewer messages. The "
              "algorithm discovers this tradeoff by itself.\n");
  return 0;
}
