#include <gtest/gtest.h>

#include "core/variants/history_policy.h"
#include "core/variants/time_varying.h"
#include "core/variants/uncentered_policy.h"

namespace apc {
namespace {

AdaptivePolicyParams Theta1Params() {
  AdaptivePolicyParams p;
  p.cvr = 1.0;
  p.cqr = 2.0;  // theta = 1: all adjustments deterministic
  p.alpha = 1.0;
  p.initial_width = 8.0;
  return p;
}

RefreshContext EscapeAbove(int64_t t = 0) {
  return {RefreshType::kValueInitiated, true, t};
}
RefreshContext EscapeBelow(int64_t t = 0) {
  return {RefreshType::kValueInitiated, false, t};
}
RefreshContext QueryRefresh(int64_t t = 0) {
  return {RefreshType::kQueryInitiated, false, t};
}

// ---------------------------------------------------------------------------
// UncenteredPolicy
// ---------------------------------------------------------------------------

TEST(UncenteredPolicyTest, StartsSymmetric) {
  UncenteredPolicy policy(Theta1Params(), 1);
  EXPECT_DOUBLE_EQ(policy.lower_width(), 4.0);
  EXPECT_DOUBLE_EQ(policy.upper_width(), 4.0);
  EXPECT_DOUBLE_EQ(policy.InitialWidth(), 8.0);
}

TEST(UncenteredPolicyTest, GrowsOnlyTheEscapedSide) {
  UncenteredPolicy policy(Theta1Params(), 1);
  double total = policy.NextWidth(8.0, EscapeAbove());
  EXPECT_DOUBLE_EQ(policy.upper_width(), 8.0);   // doubled
  EXPECT_DOUBLE_EQ(policy.lower_width(), 4.0);   // untouched
  EXPECT_DOUBLE_EQ(total, 12.0);

  total = policy.NextWidth(total, EscapeBelow());
  EXPECT_DOUBLE_EQ(policy.lower_width(), 8.0);
  EXPECT_DOUBLE_EQ(total, 16.0);
}

TEST(UncenteredPolicyTest, ShrinksBothSidesOnQueryRefresh) {
  UncenteredPolicy policy(Theta1Params(), 1);
  policy.NextWidth(8.0, EscapeAbove());  // upper=8, lower=4
  double total = policy.NextWidth(12.0, QueryRefresh());
  EXPECT_DOUBLE_EQ(policy.upper_width(), 4.0);
  EXPECT_DOUBLE_EQ(policy.lower_width(), 2.0);
  EXPECT_DOUBLE_EQ(total, 6.0);
}

TEST(UncenteredPolicyTest, MakeApproxUsesAsymmetricExtents) {
  UncenteredPolicy policy(Theta1Params(), 1);
  policy.NextWidth(8.0, EscapeAbove());  // upper=8, lower=4
  CachedApprox approx = policy.MakeApprox(100.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(approx.base.lo(), 96.0);
  EXPECT_DOUBLE_EQ(approx.base.hi(), 108.0);
  EXPECT_EQ(approx.refresh_time, 5);
}

TEST(UncenteredPolicyTest, ThresholdsApplyToTotalWidth) {
  AdaptivePolicyParams p = Theta1Params();
  p.delta0 = 2.0;
  p.delta1 = 100.0;
  UncenteredPolicy policy(p, 1);
  EXPECT_DOUBLE_EQ(policy.EffectiveWidth(1.0), 0.0);
  EXPECT_EQ(policy.EffectiveWidth(200.0), kInfinity);
  CachedApprox exact = policy.MakeApprox(5.0, 1.0, 0);
  EXPECT_TRUE(exact.base.IsExact());
  CachedApprox unbounded = policy.MakeApprox(5.0, 200.0, 0);
  EXPECT_TRUE(unbounded.base.IsUnbounded());
}

TEST(UncenteredPolicyTest, CloneKeepsPerValueState) {
  UncenteredPolicy policy(Theta1Params(), 1);
  policy.NextWidth(8.0, EscapeAbove());
  auto clone = policy.Clone();
  auto* cloned = dynamic_cast<UncenteredPolicy*>(clone.get());
  ASSERT_NE(cloned, nullptr);
  EXPECT_DOUBLE_EQ(cloned->upper_width(), 8.0);
  EXPECT_DOUBLE_EQ(cloned->lower_width(), 4.0);
}

// ---------------------------------------------------------------------------
// TimeVaryingPolicy
// ---------------------------------------------------------------------------

TEST(TimeVaryingPolicyTest, SqrtGrowthWidensShippedInterval) {
  TimeVaryingPolicy policy(Theta1Params(), TimeVaryingMode::kSqrtGrowth,
                           0.5, 1);
  CachedApprox approx = policy.MakeApprox(0.0, 8.0, 0);
  EXPECT_DOUBLE_EQ(approx.AtTime(0).Width(), 8.0);
  // Relative growth: each side grows coeff*(W/2)*sqrt(t) = 0.5*4*sqrt(t);
  // at t=16 each side +8 => width + 16.
  EXPECT_DOUBLE_EQ(approx.AtTime(16).Width(), 24.0);
}

TEST(TimeVaryingPolicyTest, CbrtGrowthExponent) {
  TimeVaryingPolicy policy(Theta1Params(), TimeVaryingMode::kCbrtGrowth,
                           1.0, 1);
  CachedApprox approx = policy.MakeApprox(0.0, 8.0, 0);
  // Each side grows 1.0*(8/2)*t^(1/3) = 4*3 at t=27 => width + 24.
  EXPECT_NEAR(approx.AtTime(27).Width(), 8.0 + 24.0, 1e-9);
}

TEST(TimeVaryingPolicyTest, GrowthScalesWithShippedWidth) {
  TimeVaryingPolicy policy(Theta1Params(), TimeVaryingMode::kSqrtGrowth,
                           0.5, 1);
  CachedApprox narrow = policy.MakeApprox(0.0, 2.0, 0);
  CachedApprox wide = policy.MakeApprox(0.0, 8.0, 0);
  double narrow_growth = narrow.AtTime(16).Width() - 2.0;
  double wide_growth = wide.AtTime(16).Width() - 8.0;
  EXPECT_DOUBLE_EQ(wide_growth, 4.0 * narrow_growth);
}

TEST(TimeVaryingPolicyTest, LinearDriftTranslatesWithoutWidening) {
  TimeVaryingPolicy policy(Theta1Params(), TimeVaryingMode::kLinearDrift,
                           2.0, 1);
  CachedApprox approx = policy.MakeApprox(10.0, 8.0, 0);
  Interval at5 = approx.AtTime(5);
  EXPECT_DOUBLE_EQ(at5.Width(), 8.0);
  EXPECT_DOUBLE_EQ(at5.Center(), 20.0);  // drifted up 2*5
}

TEST(TimeVaryingPolicyTest, WidthAdaptationMatchesBaseAlgorithm) {
  TimeVaryingPolicy policy(Theta1Params(), TimeVaryingMode::kSqrtGrowth,
                           0.5, 1);
  EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, EscapeAbove()), 16.0);
  EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, QueryRefresh()), 4.0);
}

TEST(TimeVaryingPolicyTest, ThresholdSnappedApproxStaysStatic) {
  AdaptivePolicyParams p = Theta1Params();
  p.delta0 = 2.0;
  p.delta1 = 100.0;
  TimeVaryingPolicy policy(p, TimeVaryingMode::kSqrtGrowth, 0.5, 1);
  CachedApprox exact = policy.MakeApprox(5.0, 1.0, 0);
  EXPECT_TRUE(exact.base.IsExact());
  EXPECT_TRUE(exact.IsStatic());
  CachedApprox unbounded = policy.MakeApprox(5.0, 150.0, 0);
  EXPECT_TRUE(unbounded.base.IsUnbounded());
  EXPECT_TRUE(unbounded.IsStatic());
}

TEST(TimeVaryingPolicyTest, CloneKeepsModeAndCoeff) {
  TimeVaryingPolicy policy(Theta1Params(), TimeVaryingMode::kLinearDrift,
                           3.0, 1);
  auto clone = policy.Clone();
  auto* cloned = dynamic_cast<TimeVaryingPolicy*>(clone.get());
  ASSERT_NE(cloned, nullptr);
  EXPECT_EQ(cloned->mode(), TimeVaryingMode::kLinearDrift);
  EXPECT_DOUBLE_EQ(cloned->coeff(), 3.0);
}

// ---------------------------------------------------------------------------
// HistoryPolicy
// ---------------------------------------------------------------------------

TEST(HistoryPolicyTest, WindowOneMatchesBaseAlgorithm) {
  HistoryPolicy policy(Theta1Params(), /*window=*/1, 1.0, 1);
  EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, EscapeAbove()), 16.0);
  EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, QueryRefresh()), 4.0);
}

TEST(HistoryPolicyTest, MajorityVoteControlsDirection) {
  HistoryPolicy policy(Theta1Params(), /*window=*/3, 1.0, 1);
  // History: V -> grow.
  EXPECT_GT(policy.NextWidth(8.0, EscapeAbove()), 8.0);
  // History: V,V -> grow.
  EXPECT_GT(policy.NextWidth(8.0, EscapeAbove()), 8.0);
  // History: V,V,Q -> majority still V -> grow even though a query refresh
  // just happened (this is exactly how the variant differs from the base).
  EXPECT_GT(policy.NextWidth(8.0, QueryRefresh()), 8.0);
  // History becomes V,Q,Q -> majority Q -> shrink.
  EXPECT_LT(policy.NextWidth(8.0, QueryRefresh()), 8.0);
}

TEST(HistoryPolicyTest, TieLeavesWidthUnchanged) {
  HistoryPolicy policy(Theta1Params(), /*window=*/2, 1.0, 1);
  policy.NextWidth(8.0, EscapeAbove());          // history: V
  double w = policy.NextWidth(8.0, QueryRefresh());  // history: V,Q tie
  EXPECT_DOUBLE_EQ(w, 8.0);
}

TEST(HistoryPolicyTest, RecencyWeightBreaksTies) {
  // With recency weight < 1, the most recent event dominates a tie.
  HistoryPolicy policy(Theta1Params(), /*window=*/2, 0.5, 1);
  policy.NextWidth(8.0, EscapeAbove());              // history: V
  double w = policy.NextWidth(8.0, QueryRefresh());  // V,Q weighted: Q wins
  EXPECT_LT(w, 8.0);
}

TEST(HistoryPolicyTest, WindowIsBounded) {
  HistoryPolicy policy(Theta1Params(), /*window=*/2, 1.0, 1);
  // Fill history with V's, then two Q's must flip the majority: the old
  // V's fell out of the window.
  for (int i = 0; i < 10; ++i) policy.NextWidth(8.0, EscapeAbove());
  policy.NextWidth(8.0, QueryRefresh());             // history: V,Q (tie)
  double w = policy.NextWidth(8.0, QueryRefresh());  // history: Q,Q
  EXPECT_LT(w, 8.0);
}

TEST(HistoryPolicyTest, CloneCarriesHistory) {
  HistoryPolicy policy(Theta1Params(), /*window=*/3, 1.0, 1);
  policy.NextWidth(8.0, EscapeAbove());
  policy.NextWidth(8.0, EscapeAbove());
  auto clone = policy.Clone();
  // Clone's history is V,V: one query refresh still leaves a V majority,
  // so the clone grows.
  EXPECT_GT(clone->NextWidth(8.0, QueryRefresh()), 8.0);
}

TEST(HistoryPolicyTest, WindowClampedToAtLeastOne) {
  HistoryPolicy policy(Theta1Params(), /*window=*/0, 1.0, 1);
  EXPECT_EQ(policy.window(), 1);
}

}  // namespace
}  // namespace apc
