// The read hot path's allocation contract, enforced: once per-thread
// scratch buffers are warm, PointRead, ExecuteQuery (all four aggregate
// kinds), and the driver's query-generation loop perform ZERO heap
// allocations in steady state — in every read-lock mode. The test swaps in
// counting global operator new/delete and asserts the measured window is
// allocation-free, so any std::stable_sort temporary buffer, by-value
// vector return, or per-query Query construction that sneaks back into the
// path fails loudly here instead of showing up as a latency regression.
//
// Run by the tier-1 suite and by scripts/check.sh --alloc (a
// release-with-asserts build, where inlining makes the zero-alloc claim
// about the real production code). Deliberately NOT in the
// tsan/asan concurrency suites: sanitizer runtimes own the allocator.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "runtime/sharded_engine.h"
#include "runtime/workload_driver.h"

namespace {

std::atomic<bool> g_count_allocations{false};
std::atomic<std::int64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
#ifdef APC_ALLOC_TEST_BACKTRACE
    void* frames[16];
    int n = backtrace(frames, 16);
    backtrace_symbols_fd(frames, n, 2);
    std::fprintf(stderr, "---- alloc of %zu bytes\n", size);
#endif
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();  // replacement new must not return null
  return p;
}

}  // namespace

// Global replacements: every operator new in the binary funnels through
// the counter. Deletes must pair with malloc above.
void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace apc {
namespace {

/// Allocations observed while running `body` with counting enabled.
template <typename Body>
std::int64_t CountAllocations(Body&& body) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  body();
  g_count_allocations.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(AllocFreeReadTest, SteadyStateReadsAllocateNothing) {
  constexpr int kSources = 24;
  for (ReadLockMode mode : {ReadLockMode::kSeqlock, ReadLockMode::kShared,
                            ReadLockMode::kExclusive}) {
    EngineConfig config;
    // Every shard gets a capacity slice covering the full population: ids
    // are hash-partitioned unevenly, so a merely-equal total capacity
    // would leave some shard over-subscribed and churning evictions —
    // each eviction/re-insert pair is a map-node allocation. The
    // no-eviction steady state (the parity topology) re-offers entries in
    // place and never touches the allocator.
    config.system.cache_capacity = 3 * kSources;
    config.num_shards = 3;
    config.seed = 11;
    config.read_lock_mode = mode;
    ShardedEngine engine(
        config, BuildRandomWalkSources(kSources, RandomWalkParams{},
                                       AdaptivePolicyParams{}, /*seed=*/11));
    engine.PopulateInitial(0);

    // The driver's query mix: every aggregate kind, uniform ids — plus a
    // second Zipf-skewed generator so both id-sampling routes are covered.
    QueryWorkloadParams workload;
    workload.num_sources = kSources;
    workload.group_size = 8;
    workload.max_fraction = 0.25;
    workload.min_fraction = 0.25;
    workload.avg_fraction = 0.25;
    QueryGenerator uniform_gen(workload, /*seed=*/21);
    workload.zipf_s = 1.1;
    QueryGenerator zipf_gen(workload, /*seed=*/22);

    // Warm-up: touches every thread-local scratch buffer (query items,
    // shard groups, selection + sort order, torn-read indices) and the
    // hoisted Query's capacity, exactly like a serving thread's first
    // requests.
    Query query;
    auto run_queries = [&](int64_t now) {
      for (QueryGenerator* gen : {&uniform_gen, &zipf_gen}) {
        for (int i = 0; i < 32; ++i) {
          gen->Next(&query);
          engine.ExecuteQuery(query, now);
          engine.PointRead(query.source_ids.front(), query.constraint, now);
        }
      }
    };
    run_queries(/*now=*/0);

    // The measured window: identical traffic, zero allocations allowed.
    std::int64_t allocations = CountAllocations([&] { run_queries(1); });
    EXPECT_EQ(allocations, 0)
        << "read path allocated in steady state in mode "
        << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace apc
