// Trace round-trip replay property (the recording half of the scenario
// harness): record a live CacheSystem run through RecordingStream, persist
// the recorded trace through trace_io, reload it, and replay it with
// BuildTraceSources. The replay must be bit-for-bit the original run —
// same answer intervals, same charges, same retained raw widths — in the
// sequential system and in the single-shard engine in every read-lock
// mode. This is what makes a recorded trace a faithful substitute for the
// workload that produced it.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cache/system.h"
#include "core/adaptive_policy.h"
#include "data/random_walk.h"
#include "data/trace_io.h"
#include "query/query_gen.h"
#include "runtime/sharded_engine.h"
#include "runtime/workload_driver.h"
#include "util/rng.h"

namespace apc {
namespace {

constexpr int kSources = 12;
constexpr int64_t kTicks = 160;
constexpr uint64_t kSeed = 77;

QueryWorkloadParams MakeWorkload() {
  QueryWorkloadParams workload;
  workload.num_sources = kSources;
  workload.group_size = 4;
  workload.max_fraction = 0.2;
  workload.avg_fraction = 0.2;
  return workload;
}

/// Sources with the exact BuildRandomWalkSources seed discipline (one
/// stream seed, one policy seed per id, in id order) but with each walk
/// wrapped in a RecordingStream so the run leaves a trace behind.
std::vector<std::unique_ptr<Source>> MakeRecordedSources(
    const AdaptivePolicyParams& policy,
    std::vector<const RecordingStream*>* recorders) {
  Rng master(kSeed);
  std::vector<std::unique_ptr<Source>> sources;
  for (int id = 0; id < kSources; ++id) {
    uint64_t stream_seed = master.NextUint64();
    uint64_t policy_seed = master.NextUint64();
    auto recording = std::make_unique<RecordingStream>(
        std::make_unique<RandomWalkStream>(RandomWalkParams{}, stream_seed));
    recorders->push_back(recording.get());
    sources.push_back(std::make_unique<Source>(
        id, std::move(recording),
        std::make_unique<AdaptivePolicy>(policy, policy_seed)));
  }
  return sources;
}

/// Everything a replay must reproduce bit-for-bit.
struct RunLog {
  std::vector<Interval> answers;
  int64_t value_refreshes = 0;
  int64_t query_refreshes = 0;
  double total_cost = 0.0;
  std::vector<double> raw_widths;
};

RunLog DriveSequential(CacheSystem& system) {
  RunLog log;
  system.PopulateInitial(0);
  system.costs().BeginMeasurement(0);
  QueryGenerator queries(MakeWorkload(), kSeed ^ 0xC4);
  for (int64_t t = 1; t <= kTicks; ++t) {
    system.Tick(t);
    log.answers.push_back(system.ExecuteQuery(queries.Next(), t));
  }
  system.costs().EndMeasurement(kTicks);
  log.value_refreshes = system.costs().value_refreshes();
  log.query_refreshes = system.costs().query_refreshes();
  log.total_cost = system.costs().total_cost();
  for (int id = 0; id < kSources; ++id) {
    log.raw_widths.push_back(system.source(id)->raw_width());
  }
  return log;
}

/// Records the reference run and returns its trace (already persisted and
/// reloaded through trace_io, so what the replays consume is exactly what
/// a file on disk would hold) plus the log to reproduce.
void RecordReferenceRun(Trace* trace, RunLog* log) {
  AdaptivePolicyParams policy;
  std::vector<const RecordingStream*> recorders;
  SystemConfig config;
  config.cache_capacity = kSources;
  CacheSystem system(config, MakeRecordedSources(policy, &recorders), kSeed);
  *log = DriveSequential(system);

  Trace recorded;
  for (const RecordingStream* recording : recorders) {
    recorded.hosts.push_back(recording->recorded());
  }
  ASSERT_EQ(recorded.num_hosts(), static_cast<size_t>(kSources));
  // recorded()[t] is the value visible at time t: the initial value plus
  // one Next() per tick.
  ASSERT_EQ(recorded.duration(), static_cast<size_t>(kTicks) + 1);

  std::string path = testing::TempDir() + "/replay_trace.csv";
  ASSERT_TRUE(SaveTraceCsv(recorded, path).ok());
  auto loaded = LoadTraceCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().hosts, recorded.hosts)
      << "trace_io round trip is not bit-for-bit";
  *trace = loaded.value();
  std::remove(path.c_str());
}

TEST(TraceReplayTest, SequentialReplayIsBitForBit) {
  Trace trace;
  RunLog reference;
  RecordReferenceRun(&trace, &reference);

  SystemConfig config;
  config.cache_capacity = kSources;
  CacheSystem replay(config, BuildTraceSources(trace, AdaptivePolicyParams{},
                                               kSeed),
                     kSeed);
  RunLog replayed = DriveSequential(replay);

  ASSERT_EQ(replayed.answers.size(), reference.answers.size());
  for (size_t i = 0; i < reference.answers.size(); ++i) {
    ASSERT_EQ(replayed.answers[i], reference.answers[i])
        << "answer diverged at tick " << (i + 1);
  }
  EXPECT_EQ(replayed.value_refreshes, reference.value_refreshes);
  EXPECT_EQ(replayed.query_refreshes, reference.query_refreshes);
  EXPECT_DOUBLE_EQ(replayed.total_cost, reference.total_cost);
  for (int id = 0; id < kSources; ++id) {
    EXPECT_DOUBLE_EQ(replayed.raw_widths[static_cast<size_t>(id)],
                     reference.raw_widths[static_cast<size_t>(id)])
        << "raw width diverged for source " << id;
  }
}

TEST(TraceReplayTest, EngineReplayMatchesInAllReadModes) {
  Trace trace;
  RunLog reference;
  RecordReferenceRun(&trace, &reference);

  for (ReadLockMode mode : {ReadLockMode::kSeqlock, ReadLockMode::kShared,
                            ReadLockMode::kExclusive}) {
    EngineConfig config;
    config.system.cache_capacity = kSources;
    config.num_shards = 1;
    config.seed = kSeed;
    config.read_lock_mode = mode;
    ShardedEngine engine(
        config, BuildTraceSources(trace, AdaptivePolicyParams{}, kSeed));
    engine.PopulateInitial(0);
    engine.BeginMeasurement(0);
    QueryGenerator queries(MakeWorkload(), kSeed ^ 0xC4);
    for (int64_t t = 1; t <= kTicks; ++t) {
      engine.TickAll(t);
      Interval answer = engine.ExecuteQuery(queries.Next(), t);
      ASSERT_EQ(answer, reference.answers[static_cast<size_t>(t - 1)])
          << "engine diverged at tick " << t << " in mode "
          << static_cast<int>(mode);
    }
    engine.EndMeasurement(kTicks);
    EngineCosts costs = engine.TotalCosts();
    EXPECT_EQ(costs.value_refreshes, reference.value_refreshes);
    EXPECT_EQ(costs.query_refreshes, reference.query_refreshes);
    EXPECT_DOUBLE_EQ(costs.total_cost, reference.total_cost);
  }
}

/// A replay through engines that own their policies: the same loaded trace
/// must drive two independently constructed TieredEngine instances to
/// identical charges and read answers (the engine-agnostic half of the
/// replay contract — any engine fed BuildTraceStreams sees the same
/// update sequence).
TEST(TraceReplayTest, TieredReplayIsReproducible) {
  Trace trace;
  RunLog reference;
  RecordReferenceRun(&trace, &reference);

  auto drive = [&trace](std::vector<Interval>* answers) {
    TieredConfig config;
    config.num_edges = 2;
    config.num_shards = 1;
    config.seed = kSeed;
    TieredEngine engine(config, BuildTraceStreams(trace));
    engine.PopulateInitial(0);
    engine.BeginMeasurement(0);
    Rng rng(kSeed ^ 0x7E);
    for (int64_t t = 1; t <= kTicks; ++t) {
      engine.TickAll(t);
      int id = rng.UniformInt(0, kSources - 1);
      int edge = rng.UniformInt(0, 1);
      answers->push_back(engine.Read(edge, id, rng.Uniform(2.0, 10.0), t));
    }
    engine.EndMeasurement(kTicks);
    EngineCosts wan = engine.WanCosts();
    EngineCosts lan = engine.LanCosts();
    return wan.total_cost + lan.total_cost;
  };

  std::vector<Interval> first_answers;
  std::vector<Interval> second_answers;
  double first_cost = drive(&first_answers);
  double second_cost = drive(&second_answers);
  EXPECT_EQ(first_answers, second_answers);
  EXPECT_DOUBLE_EQ(first_cost, second_cost);
}

}  // namespace
}  // namespace apc
