#include "util/flags.h"

#include <gtest/gtest.h>

#include <limits>

namespace apc {
namespace {

FlagParser Parsed(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  FlagParser parser;
  Status s = parser.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return parser;
}

TEST(FlagParserTest, EmptyArgsOk) {
  FlagParser parser;
  const char* argv[] = {"prog"};
  EXPECT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_FALSE(parser.Has("anything"));
}

TEST(FlagParserTest, ParsesKeyValue) {
  FlagParser p = Parsed({"--tq=0.5", "--workload=walk"});
  EXPECT_TRUE(p.Has("tq"));
  EXPECT_DOUBLE_EQ(p.GetDouble("tq").value(), 0.5);
  EXPECT_EQ(p.GetString("workload").value(), "walk");
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  FlagParser p = Parsed({"--verbose"});
  EXPECT_TRUE(p.GetBoolOr("verbose", false).value());
  EXPECT_FALSE(p.GetBoolOr("quiet", false).value());
}

TEST(FlagParserTest, ExplicitBooleans) {
  FlagParser p = Parsed({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(p.GetBoolOr("a", false).value());
  EXPECT_FALSE(p.GetBoolOr("b", true).value());
  EXPECT_TRUE(p.GetBoolOr("c", false).value());
  EXPECT_FALSE(p.GetBoolOr("d", true).value());
}

TEST(FlagParserTest, MalformedBooleanIsError) {
  FlagParser p = Parsed({"--a=maybe"});
  EXPECT_FALSE(p.GetBoolOr("a", false).ok());
}

TEST(FlagParserTest, RejectsPositionalArguments) {
  FlagParser parser;
  const char* argv[] = {"prog", "positional"};
  Status s = parser.Parse(2, argv);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, RejectsSingleDash) {
  FlagParser parser;
  const char* argv[] = {"prog", "-x=1"};
  EXPECT_FALSE(parser.Parse(2, argv).ok());
}

TEST(FlagParserTest, RejectsEmptyName) {
  FlagParser parser;
  const char* argv[] = {"prog", "--=5"};
  EXPECT_FALSE(parser.Parse(2, argv).ok());
}

TEST(FlagParserTest, MissingFlagIsNotFound) {
  FlagParser p = Parsed({});
  EXPECT_EQ(p.GetDouble("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(p.GetInt("nope").status().code(), StatusCode::kNotFound);
}

TEST(FlagParserTest, UnparsableNumberIsInvalidArgument) {
  FlagParser p = Parsed({"--x=abc", "--y=1.5"});
  EXPECT_EQ(p.GetDouble("x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetInt("y").status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, InfinityLiteral) {
  FlagParser p = Parsed({"--delta1=inf"});
  EXPECT_EQ(p.GetDouble("delta1").value(),
            std::numeric_limits<double>::infinity());
}

TEST(FlagParserTest, FallbacksApplyOnlyWhenAbsent) {
  FlagParser p = Parsed({"--x=3"});
  EXPECT_DOUBLE_EQ(p.GetDoubleOr("x", 9.0).value(), 3.0);
  EXPECT_DOUBLE_EQ(p.GetDoubleOr("y", 9.0).value(), 9.0);
  EXPECT_EQ(p.GetIntOr("x", 9).value(), 3);
  EXPECT_EQ(p.GetStringOr("z", "dflt"), "dflt");
  // Present but malformed still errors even with a fallback.
  FlagParser q = Parsed({"--x=bad"});
  EXPECT_FALSE(q.GetDoubleOr("x", 9.0).ok());
}

TEST(FlagParserTest, LastValueWinsAndOrderPreserved) {
  FlagParser p = Parsed({"--a=1", "--b=2", "--a=3"});
  EXPECT_EQ(p.GetInt("a").value(), 3);
  ASSERT_EQ(p.names().size(), 2u);
  EXPECT_EQ(p.names()[0], "a");
  EXPECT_EQ(p.names()[1], "b");
}

TEST(FlagParserTest, NegativeNumbers) {
  FlagParser p = Parsed({"--x=-2.5", "--n=-7"});
  EXPECT_DOUBLE_EQ(p.GetDouble("x").value(), -2.5);
  EXPECT_EQ(p.GetInt("n").value(), -7);
}

}  // namespace
}  // namespace apc
