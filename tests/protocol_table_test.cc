#include "core/protocol_table.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/adaptive_policy.h"
#include "core/precision_policy.h"

namespace apc {
namespace {

/// Deterministic adaptive policy: costs {1, 2} give theta = 1, so a
/// value-initiated refresh ALWAYS doubles the raw width (grow probability
/// min(theta, 1) = 1) and a query-initiated refresh ALWAYS halves it.
AdaptivePolicyParams DeterministicParams() {
  AdaptivePolicyParams params;
  params.cvr = 1.0;
  params.cqr = 2.0;
  params.alpha = 1.0;
  params.initial_width = 1.0;
  return params;
}

ProtocolCell MakeCell(double value, const AdaptivePolicyParams& params) {
  return ProtocolCell(std::make_unique<AdaptivePolicy>(params, /*seed=*/7),
                      value);
}

ProtocolTable::Config TableConfig(size_t capacity,
                                  double push_loss_probability = 0.0) {
  ProtocolTable::Config config;
  config.costs = {1.0, 2.0};
  config.capacity = capacity;
  config.push_loss_probability = push_loss_probability;
  return config;
}

TEST(ProtocolCellTest, RefreshAdjustsWidthAndReships) {
  ProtocolCell cell = MakeCell(10.0, DeterministicParams());
  EXPECT_DOUBLE_EQ(cell.raw_width(), 1.0);
  EXPECT_TRUE(cell.last_shipped().Valid(10.0, 0));

  // 10.6 escaped [9.5, 10.5]: the value-initiated refresh doubles the
  // width and ships a fresh interval centered on the new value.
  EXPECT_TRUE(cell.NeedsValueRefresh(10.6, 1));
  CachedApprox approx = cell.Refresh(10.6, RefreshType::kValueInitiated, 1);
  EXPECT_DOUBLE_EQ(cell.raw_width(), 2.0);
  EXPECT_TRUE(approx.Valid(10.6, 1));
  EXPECT_DOUBLE_EQ(approx.base.Width(), 2.0);

  // A pull halves it again.
  cell.Refresh(10.6, RefreshType::kQueryInitiated, 2);
  EXPECT_DOUBLE_EQ(cell.raw_width(), 1.0);
}

TEST(ProtocolCellTest, RawWidthRetainedAcrossThresholdSnapping) {
  AdaptivePolicyParams params = DeterministicParams();
  params.delta0 = 0.3;  // effective 0 below
  params.delta1 = 3.0;  // effective infinity at or above
  ProtocolCell cell = MakeCell(0.0, params);

  // Raw 1 -> 2 -> 4: the shipped width snaps to infinity at 4, but the
  // retained raw width keeps its true value and keeps adjusting from it
  // (paper §2) — the next pull halves 4, not infinity.
  cell.Refresh(0.0, RefreshType::kValueInitiated, 1);
  cell.Refresh(0.0, RefreshType::kValueInitiated, 2);
  EXPECT_DOUBLE_EQ(cell.raw_width(), 4.0);
  EXPECT_EQ(cell.EffectiveWidth(), kInfinity);
  EXPECT_TRUE(cell.last_shipped().base.IsUnbounded());

  cell.Refresh(0.0, RefreshType::kQueryInitiated, 3);
  EXPECT_DOUBLE_EQ(cell.raw_width(), 2.0);
  EXPECT_DOUBLE_EQ(cell.EffectiveWidth(), 2.0);

  // 2 -> 1 -> 0.5 -> 0.25: below delta0 the shipped copy is exact while
  // the raw width stays 0.25.
  cell.Refresh(0.0, RefreshType::kQueryInitiated, 4);
  cell.Refresh(0.0, RefreshType::kQueryInitiated, 5);
  cell.Refresh(0.0, RefreshType::kQueryInitiated, 6);
  EXPECT_DOUBLE_EQ(cell.raw_width(), 0.25);
  EXPECT_DOUBLE_EQ(cell.EffectiveWidth(), 0.0);
  EXPECT_TRUE(cell.last_shipped().base.IsExact());
}

TEST(EntryStoreTest, OfferExReportsEviction) {
  EntryStore store(2);
  CachedApprox approx;
  approx.base = Interval(0.0, 1.0);
  EXPECT_TRUE(store.OfferEx(1, approx, 8.0).cached);
  EXPECT_TRUE(store.OfferEx(2, approx, 4.0).cached);

  // Full: a narrower offer evicts the widest (id 1, raw 8).
  EntryStore::OfferResult result = store.OfferEx(3, approx, 2.0);
  EXPECT_TRUE(result.cached);
  EXPECT_EQ(result.evicted_id, 1);

  // An offer at least as wide as the widest incumbent is rejected.
  result = store.OfferEx(4, approx, 4.0);
  EXPECT_FALSE(result.cached);
  EXPECT_EQ(result.evicted_id, -1);
  EXPECT_EQ(store.size(), 2u);
}

TEST(ProtocolTableTest, ChargedButLostPushes) {
  // Loss probability 1: every push is dropped, yet Cvr is still charged —
  // the source paid for the message whether or not it arrived.
  ProtocolTable table(TableConfig(4, /*push_loss_probability=*/1.0),
                      /*seed=*/3);
  ASSERT_TRUE(table.Register(0));
  ProtocolCell cell = MakeCell(0.0, DeterministicParams());
  table.costs().BeginMeasurement(0);

  ValueTickOutcome outcome = table.OnValueTick(0, cell, 5.0, 1);
  EXPECT_TRUE(outcome.refreshed);
  EXPECT_TRUE(outcome.lost);
  EXPECT_EQ(table.costs().value_refreshes(), 1);
  EXPECT_EQ(table.lost_pushes(), 1);
  EXPECT_EQ(table.Find(0), nullptr) << "the cache must never see the push";
  // The cell's own shipped interval DID advance: no resend until the value
  // escapes the new interval.
  EXPECT_FALSE(cell.NeedsValueRefresh(5.0, 1));
  EXPECT_EQ(table.OnValueTick(0, cell, 5.0, 2).refreshed, false);
}

TEST(ProtocolTableTest, ValueTickChargesOnlyOnEscape) {
  ProtocolTable table(TableConfig(4), /*seed=*/3);
  ASSERT_TRUE(table.Register(0));
  ProtocolCell cell = MakeCell(0.0, DeterministicParams());
  table.costs().BeginMeasurement(0);
  table.OfferInitial(0, cell, 0.0, 0);
  EXPECT_EQ(table.costs().value_refreshes(), 0) << "initial ship is free";

  EXPECT_FALSE(table.OnValueTick(0, cell, 0.4, 1).refreshed)
      << "0.4 is inside [-0.5, 0.5]";
  EXPECT_TRUE(table.OnValueTick(0, cell, 0.6, 2).refreshed);
  EXPECT_EQ(table.costs().value_refreshes(), 1);
  ASSERT_NE(table.Find(0), nullptr);
  EXPECT_TRUE(table.Find(0)->approx.Valid(0.6, 2));
}

TEST(ProtocolTableTest, PullChargesAndReoffersEveryTime) {
  ProtocolTable table(TableConfig(4), /*seed=*/3);
  ASSERT_TRUE(table.Register(0));
  ProtocolCell cell = MakeCell(1.0, DeterministicParams());
  table.costs().BeginMeasurement(0);

  // First pull: the value was never cached; the pull both charges Cqr and
  // installs the fresh approximation.
  EXPECT_DOUBLE_EQ(table.Pull(0, cell, 1.0, 1), 1.0);
  EXPECT_EQ(table.costs().query_refreshes(), 1);
  ASSERT_NE(table.Find(0), nullptr);
  double first_width = table.Find(0)->raw_width;
  EXPECT_DOUBLE_EQ(first_width, 0.5);  // deterministic halving

  // Every subsequent pull re-offers: the entry tracks the shrinking width.
  table.Pull(0, cell, 1.0, 2);
  EXPECT_EQ(table.costs().query_refreshes(), 2);
  EXPECT_DOUBLE_EQ(table.Find(0)->raw_width, 0.25);
}

TEST(ProtocolTableTest, EvictionUsesRawWidthsAndMirrorsSlots) {
  ProtocolTable table(TableConfig(1), /*seed=*/3);
  ASSERT_TRUE(table.Register(0));
  ASSERT_TRUE(table.Register(1));
  EXPECT_FALSE(table.Register(1)) << "duplicate registration rejected";

  AdaptivePolicyParams wide = DeterministicParams();
  wide.initial_width = 8.0;
  ProtocolCell wide_cell = MakeCell(0.0, wide);
  ProtocolCell narrow_cell = MakeCell(0.0, DeterministicParams());

  table.OfferInitial(0, wide_cell, 0.0, 0);
  ASSERT_NE(table.Find(0), nullptr);
  Interval seen;
  EXPECT_EQ(table.TryVisibleInterval(0, 0, &seen), SnapshotRead::kHit);
  EXPECT_EQ(seen, table.VisibleInterval(0, 0));

  // The narrower offer evicts id 0; both the store and the optimistic
  // read slots must agree.
  table.OfferInitial(1, narrow_cell, 0.0, 0);
  EXPECT_EQ(table.Find(0), nullptr);
  ASSERT_NE(table.Find(1), nullptr);
  EXPECT_EQ(table.TryVisibleInterval(0, 0, &seen), SnapshotRead::kMiss);
  EXPECT_TRUE(seen.IsUnbounded());
  EXPECT_EQ(table.TryVisibleInterval(1, 0, &seen), SnapshotRead::kHit);
  EXPECT_EQ(seen, table.VisibleInterval(1, 0));

  // An unregistered id reads as a definitive miss, never a tear.
  EXPECT_EQ(table.TryVisibleInterval(99, 0, &seen), SnapshotRead::kMiss);
  EXPECT_TRUE(seen.IsUnbounded());
}

// The slot slab's id -> index map is dense (a direct vector load) for
// small non-negative ids and falls back to a hash map for negative or
// huge ids; both routes must serve identical seqlock reads.
TEST(EntryStoreTest, SlabServesDenseAndSparseIds) {
  constexpr int kHugeId = 1 << 21;  // beyond the dense-map limit
  EntryStore store(4);
  ASSERT_TRUE(store.RegisterSlot(3));        // dense route
  ASSERT_TRUE(store.RegisterSlot(kHugeId));  // sparse route: huge
  ASSERT_TRUE(store.RegisterSlot(-7));       // sparse route: negative
  EXPECT_FALSE(store.RegisterSlot(3));       // duplicates rejected
  EXPECT_EQ(store.num_slots(), 3u);
  for (int id : {3, kHugeId, -7}) {
    EXPECT_TRUE(store.HasSlot(id));
    EXPECT_NE(store.SlotIndexOf(id), EntryStore::kNoSlot);
  }
  EXPECT_EQ(store.SlotIndexOf(12345), EntryStore::kNoSlot);
  EXPECT_EQ(store.SlotIndexOf(-1), EntryStore::kNoSlot);
  EXPECT_EQ(store.SlotIndexOf(kHugeId + 1), EntryStore::kNoSlot);
}

// The optimistic read must serve dense, huge, and negative ids alike: the
// dense id takes the direct vector load, the other two the hash fallback,
// and all three hit the same contiguous slab.
TEST(ProtocolTableTest, OptimisticReadServesDenseAndSparseIds) {
  constexpr int kHugeId = 1 << 21;
  ProtocolTable table(TableConfig(4), /*seed=*/3);
  ASSERT_TRUE(table.Register(3));
  ASSERT_TRUE(table.Register(kHugeId));
  ASSERT_TRUE(table.Register(-7));

  CachedApprox approx;
  approx.base = Interval(1.0, 2.0);
  for (int id : {3, kHugeId, -7}) {
    Interval visible;
    EXPECT_EQ(table.TryVisibleInterval(id, /*now=*/0, &visible),
              SnapshotRead::kMiss)
        << "uncached id " << id << " must read as a definitive miss";
    table.OfferDerivedInitial(id, approx, 1.0);
    ASSERT_EQ(table.TryVisibleInterval(id, /*now=*/0, &visible),
              SnapshotRead::kHit)
        << "slab read failed for id " << id;
    EXPECT_EQ(visible, table.VisibleInterval(id, /*now=*/0));
  }
  Interval out;
  EXPECT_EQ(table.TryVisibleInterval(12345, 0, &out), SnapshotRead::kMiss);
  EXPECT_EQ(table.TryVisibleInterval(-1, 0, &out), SnapshotRead::kMiss);
}

TEST(ProtocolTableTest, OptimisticReadMatchesAuthoritativeOverTime) {
  ProtocolTable table(TableConfig(2), /*seed=*/3);
  ASSERT_TRUE(table.Register(5));
  ProtocolCell cell(std::make_unique<FixedWidthPolicy>(1.0), 2.0);
  table.OfferInitial(5, cell, 2.0, 0);
  // The optimistic read reconstructs the CachedApprox (including its
  // time-evolution fields) from the versioned slot; it must agree with
  // the authoritative locked read at every time.
  for (int64_t now : {0, 3, 10}) {
    Interval optimistic;
    ASSERT_EQ(table.TryVisibleInterval(5, now, &optimistic),
              SnapshotRead::kHit);
    EXPECT_EQ(optimistic, table.VisibleInterval(5, now));
  }
}

}  // namespace
}  // namespace apc
