#include "core/stale_policy.h"

#include <gtest/gtest.h>

namespace apc {
namespace {

TEST(StalePolicyParamsTest, LowersWithThetaMultiplierOne) {
  StalePolicyParams sp;
  sp.cvr = 1.0;
  sp.cqr = 2.0;
  sp.alpha = 1.0;
  sp.delta0 = 1.0;
  sp.delta1 = kInfinity;
  sp.initial_bound = 2.0;

  AdaptivePolicyParams ap = sp.ToAdaptiveParams();
  EXPECT_DOUBLE_EQ(ap.theta_multiplier, 1.0);
  // theta' = Cvr/Cqr = 0.5, not 2*Cvr/Cqr = 1.
  EXPECT_DOUBLE_EQ(ap.Theta(), 0.5);
  EXPECT_DOUBLE_EQ(ap.initial_width, 2.0);
  EXPECT_DOUBLE_EQ(ap.delta0, 1.0);
  EXPECT_TRUE(ap.IsValid());
}

TEST(StalePolicyParamsTest, FactoryBuildsWorkingPolicy) {
  StalePolicyParams sp;
  sp.cvr = 1.0;
  sp.cqr = 2.0;
  sp.initial_bound = 4.0;
  auto policy = MakeStaleAdaptivePolicy(sp, 3);
  ASSERT_NE(policy, nullptr);
  EXPECT_DOUBLE_EQ(policy->InitialWidth(), 4.0);
  // theta' = 0.5 < 1: every query-initiated refresh shrinks.
  EXPECT_DOUBLE_EQ(policy->ShrinkProbability(), 1.0);
  EXPECT_DOUBLE_EQ(policy->GrowProbability(), 0.5);
}

TEST(StalePolicyParamsTest, ExactWorkloadThresholds) {
  // The paper's §4.7 setting for delta_avg = 0: delta1 = delta0 = 1, so
  // bounds snap to 0 (exact) or infinity (uncached) only.
  StalePolicyParams sp;
  sp.delta0 = 1.0;
  sp.delta1 = 1.0;
  auto policy = MakeStaleAdaptivePolicy(sp, 3);
  EXPECT_DOUBLE_EQ(policy->EffectiveWidth(0.5), 0.0);
  EXPECT_EQ(policy->EffectiveWidth(1.5), kInfinity);
}

TEST(StaleCostModelConsistency, ThetaPrimeIsHalfIntervalTheta) {
  StalePolicyParams sp;
  sp.cvr = 3.0;
  sp.cqr = 2.0;
  AdaptivePolicyParams interval_params;
  interval_params.cvr = 3.0;
  interval_params.cqr = 2.0;
  EXPECT_DOUBLE_EQ(sp.ToAdaptiveParams().Theta() * 2.0,
                   interval_params.Theta());
}

}  // namespace
}  // namespace apc
