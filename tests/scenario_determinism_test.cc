// Scenario determinism (the replay guarantee the committed bench rests
// on): the same (config, policy, options) cell run twice must produce
// identical metric rows — every field, compared through the DebugString
// rendering, with no wall-clock anywhere. Covers all four scenarios under
// all four policies, plus seed sensitivity (different seeds must actually
// change the workload) as a guard against a generator that ignores its
// seed and makes the determinism claim vacuous.
#include <gtest/gtest.h>

#include <string>

#include "scenario/scenario.h"
#include "scenario/scenario_runner.h"

namespace apc {
namespace {

const ScenarioKind kAllKinds[] = {
    ScenarioKind::kFlashCrowd,
    ScenarioKind::kHotspotMigration,
    ScenarioKind::kCorrelatedBursts,
    ScenarioKind::kThunderingHerd,
};

const PolicyKind kAllPolicies[] = {
    PolicyKind::kAdaptive,
    PolicyKind::kExact,
    PolicyKind::kStale,
    PolicyKind::kDivergence,
};

ScenarioScript MakeScript(ScenarioKind kind, uint64_t seed) {
  ScenarioConfig config;
  config.kind = kind;
  config.ticks = 100;
  config.seed = seed;
  return BuildScenario(config);
}

TEST(ScenarioDeterminismTest, IdenticalRunsProduceIdenticalRows) {
  for (ScenarioKind kind : kAllKinds) {
    ScenarioScript script = MakeScript(kind, 7);
    for (PolicyKind policy : kAllPolicies) {
      ScenarioMetrics first = RunScenario(script, policy);
      ScenarioMetrics second = RunScenario(script, policy);
      EXPECT_EQ(first.DebugString(), second.DebugString())
          << ScenarioKindName(kind) << "/" << PolicyKindName(policy);
    }
  }
}

TEST(ScenarioDeterminismTest, RebuiltScriptReplaysIdentically) {
  // Building the script twice from the same config and running each copy
  // must agree — generation itself is part of the determinism contract.
  for (ScenarioKind kind : kAllKinds) {
    ScenarioMetrics first = RunScenario(MakeScript(kind, 7),
                                        PolicyKind::kAdaptive);
    ScenarioMetrics second = RunScenario(MakeScript(kind, 7),
                                         PolicyKind::kAdaptive);
    EXPECT_EQ(first.DebugString(), second.DebugString())
        << ScenarioKindName(kind);
  }
}

TEST(ScenarioDeterminismTest, SeedActuallyShapesTheWorkload) {
  for (ScenarioKind kind : kAllKinds) {
    ScenarioScript a = MakeScript(kind, 7);
    ScenarioScript b = MakeScript(kind, 8);
    EXPECT_NE(a.values.hosts, b.values.hosts) << ScenarioKindName(kind);
  }
}

}  // namespace
}  // namespace apc
