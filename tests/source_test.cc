#include "cache/source.h"

#include <gtest/gtest.h>

#include "core/adaptive_policy.h"
#include "data/random_walk.h"

namespace apc {
namespace {

AdaptivePolicyParams Theta1Params(double initial_width = 8.0) {
  AdaptivePolicyParams p;
  p.cvr = 1.0;
  p.cqr = 2.0;
  p.alpha = 1.0;
  p.initial_width = initial_width;
  return p;
}

std::unique_ptr<Source> MakeSource(double start_value, double initial_width) {
  auto stream = std::make_unique<SeriesStream>(std::vector<double>{
      start_value, start_value + 1, start_value + 2, start_value + 100});
  auto policy =
      std::make_unique<AdaptivePolicy>(Theta1Params(initial_width), 1);
  return std::make_unique<Source>(0, std::move(stream), std::move(policy));
}

TEST(SourceTest, InitialState) {
  auto src = MakeSource(10.0, 8.0);
  EXPECT_EQ(src->id(), 0);
  EXPECT_DOUBLE_EQ(src->value(), 10.0);
  EXPECT_DOUBLE_EQ(src->raw_width(), 8.0);
  // Initial approximation centered on the start value.
  EXPECT_DOUBLE_EQ(src->last_approx().base.Center(), 10.0);
  EXPECT_DOUBLE_EQ(src->last_approx().base.Width(), 8.0);
}

TEST(SourceTest, NoRefreshWhileValueInsideInterval) {
  auto src = MakeSource(10.0, 8.0);  // interval [6, 14]
  src->Tick();                       // 11
  EXPECT_FALSE(src->NeedsValueRefresh(1));
  src->Tick();  // 12
  EXPECT_FALSE(src->NeedsValueRefresh(2));
}

TEST(SourceTest, DetectsEscapeAndDirection) {
  auto src = MakeSource(10.0, 8.0);  // interval [6, 14]
  src->Tick();                       // 11
  src->Tick();                       // 12
  src->Tick();                       // 110 -> escaped above
  src->Tick();                       // holds 110
  EXPECT_TRUE(src->NeedsValueRefresh(4));
  EXPECT_TRUE(src->EscapedAbove(4));
}

TEST(SourceTest, ValueRefreshGrowsWidthAndRecenters) {
  auto src = MakeSource(10.0, 8.0);
  src->Tick();
  src->Tick();
  src->Tick();  // value 110, escaped
  CachedApprox approx = src->Refresh(RefreshType::kValueInitiated, 4);
  EXPECT_DOUBLE_EQ(src->raw_width(), 16.0);  // theta=1, alpha=1: doubled
  EXPECT_DOUBLE_EQ(approx.base.Center(), 110.0);
  EXPECT_DOUBLE_EQ(approx.base.Width(), 16.0);
  EXPECT_EQ(approx.refresh_time, 4);
  EXPECT_FALSE(src->NeedsValueRefresh(4));
}

TEST(SourceTest, QueryRefreshShrinksWidth) {
  auto src = MakeSource(10.0, 8.0);
  CachedApprox approx = src->Refresh(RefreshType::kQueryInitiated, 1);
  EXPECT_DOUBLE_EQ(src->raw_width(), 4.0);
  EXPECT_DOUBLE_EQ(approx.base.Width(), 4.0);
}

TEST(SourceTest, LastApproxTracksRefreshes) {
  auto src = MakeSource(10.0, 8.0);
  src->Refresh(RefreshType::kQueryInitiated, 1);
  EXPECT_DOUBLE_EQ(src->last_approx().base.Width(), 4.0);
}

TEST(SourceTest, EscapeBelowIsDetected) {
  auto stream = std::make_unique<SeriesStream>(
      std::vector<double>{10.0, -50.0});
  auto src = std::make_unique<Source>(
      0, std::move(stream), std::make_unique<AdaptivePolicy>(Theta1Params(), 1));
  src->Tick();  // -50
  EXPECT_TRUE(src->NeedsValueRefresh(2));
  EXPECT_FALSE(src->EscapedAbove(2));
}

TEST(SourceTest, InitialApproxRestampsTime) {
  auto src = MakeSource(10.0, 8.0);
  CachedApprox approx = src->InitialApprox(5);
  EXPECT_EQ(approx.refresh_time, 5);
  EXPECT_DOUBLE_EQ(approx.base.Width(), 8.0);
}

}  // namespace
}  // namespace apc
