#include "stats/stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace apc {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SummaryStatsTest, SingleValue) {
  SummaryStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SummaryStatsTest, KnownMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryStatsTest, NumericallyStableForLargeOffsets) {
  SummaryStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(SummaryStatsTest, MergeEqualsSequential) {
  Rng rng(3);
  SummaryStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(-10, 10);
    whole.Add(x);
    (i < 400 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SeriesRecorderTest, RecordsInOrder) {
  SeriesRecorder rec;
  EXPECT_TRUE(rec.empty());
  rec.Record(1, 10.0);
  rec.Record(2, 20.0);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.points()[0].time, 1);
  EXPECT_DOUBLE_EQ(rec.points()[1].value, 20.0);
}

TEST(SeriesRecorderTest, Mean) {
  SeriesRecorder rec;
  EXPECT_DOUBLE_EQ(rec.Mean(), 0.0);
  rec.Record(0, 2.0);
  rec.Record(1, 4.0);
  EXPECT_DOUBLE_EQ(rec.Mean(), 3.0);
}

}  // namespace
}  // namespace apc
