#include "runtime/tiered_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "data/random_walk.h"
#include "hierarchy/hierarchy.h"
#include "runtime/workload_driver.h"
#include "util/rng.h"

namespace apc {
namespace {

constexpr uint64_t kSeed = 4001;

constexpr ReadLockMode kAllModes[] = {ReadLockMode::kSeqlock,
                                      ReadLockMode::kShared,
                                      ReadLockMode::kExclusive};

HierarchyConfig SequentialConfig(int sources, int edges) {
  HierarchyConfig config;
  config.num_sources = sources;
  config.num_edges = edges;
  config.wan = {4.0, 8.0};
  config.lan = {1.0, 2.0};
  config.regional_policy.alpha = 1.0;
  config.regional_policy.initial_width = 4.0;
  config.edge_policy.alpha = 1.0;
  config.edge_policy.initial_width = 8.0;
  return config;
}

TieredConfig TieredFrom(const HierarchyConfig& sequential, int num_shards,
                        uint64_t seed) {
  TieredConfig config;
  config.num_edges = sequential.num_edges;
  config.num_shards = num_shards;
  config.wan = sequential.wan;
  config.lan = sequential.lan;
  config.regional_policy = sequential.regional_policy;
  config.edge_policy = sequential.edge_policy;
  config.seed = seed;
  return config;
}

std::vector<std::unique_ptr<UpdateStream>> WalkStreams(int n,
                                                       uint64_t seed) {
  return BuildRandomWalkStreams(n, RandomWalkParams{}, seed);
}

TEST(TieredConfigTest, Validation) {
  TieredConfig config;
  EXPECT_TRUE(config.IsValid());

  TieredConfig bad = config;
  bad.num_edges = 0;
  EXPECT_FALSE(bad.IsValid());

  bad = config;
  bad.num_shards = 0;
  EXPECT_FALSE(bad.IsValid());

  bad = config;
  bad.bus_capacity = 0;
  EXPECT_FALSE(bad.IsValid());

  bad = config;
  bad.wan.cvr = 0.0;
  EXPECT_FALSE(bad.IsValid());

  bad = config;
  bad.lan_push_loss = 1.5;
  EXPECT_FALSE(bad.IsValid());

  bad = config;
  bad.edge_policy.alpha = -1.0;
  EXPECT_FALSE(bad.IsValid());
}

/// The acceptance bar of the tiered runtime: a TieredEngine driven in
/// lockstep from one thread reproduces the sequential HierarchicalSystem's
/// answers, intervals, raw widths, and per-link charges exactly. Policy
/// RNG streams are per-entity (one policy instance per regional value and
/// per (edge, value)), so the guarantee holds for ANY edge and shard
/// count; the 1-edge/1-shard case is the pinned acceptance criterion.
void ExpectTieredLockstepParity(int num_sources, int num_edges,
                                int num_shards, ReadLockMode mode,
                                int64_t ticks, uint64_t stream_seed) {
  HierarchyConfig seq_config = SequentialConfig(num_sources, num_edges);
  HierarchicalSystem sequential(seq_config,
                                WalkStreams(num_sources, stream_seed), kSeed);
  sequential.BeginMeasurement(0);

  TieredConfig tiered_config = TieredFrom(seq_config, num_shards, kSeed);
  tiered_config.read_lock_mode = mode;
  TieredEngine tiered(tiered_config, WalkStreams(num_sources, stream_seed));
  tiered.PopulateInitial(0);
  tiered.BeginMeasurement(0);

  Rng seq_reads(kSeed ^ 0xF00D);
  Rng tiered_reads(kSeed ^ 0xF00D);
  for (int64_t t = 1; t <= ticks; ++t) {
    sequential.Tick(t);
    tiered.TickAll(t);
    // Two reads per tick from identical draw streams.
    for (int r = 0; r < 2; ++r) {
      int edge = static_cast<int>(
          seq_reads.UniformInt(0, num_edges - 1));
      int id = static_cast<int>(seq_reads.UniformInt(0, num_sources - 1));
      double constraint = seq_reads.Uniform(0.0, 30.0);
      ASSERT_EQ(tiered_reads.UniformInt(0, num_edges - 1), edge);
      ASSERT_EQ(tiered_reads.UniformInt(0, num_sources - 1), id);
      ASSERT_EQ(tiered_reads.Uniform(0.0, 30.0), constraint);

      Interval expected = sequential.Read(edge, id, constraint, t);
      Interval actual = tiered.Read(edge, id, constraint, t);
      ASSERT_EQ(actual, expected)
          << "answer diverged at tick " << t << " (edge " << edge << ", id "
          << id << ", constraint " << constraint << ")";
    }
    for (int id = 0; id < num_sources; ++id) {
      ASSERT_EQ(tiered.regional_interval(id, t),
                sequential.regional_interval(id))
          << "regional interval diverged at tick " << t << ", id " << id;
      ASSERT_EQ(tiered.regional_raw_width(id),
                sequential.regional_raw_width(id));
      ASSERT_EQ(tiered.exact_value(id), sequential.exact_value(id));
      for (int e = 0; e < num_edges; ++e) {
        ASSERT_EQ(tiered.edge_interval(e, id, t),
                  sequential.edge_interval(e, id))
            << "edge interval diverged at tick " << t << ", edge " << e
            << ", id " << id;
        ASSERT_EQ(tiered.edge_raw_width(e, id),
                  sequential.edge_raw_width(e, id));
      }
    }
  }
  sequential.EndMeasurement(ticks);
  tiered.EndMeasurement(ticks);

  EngineCosts wan = tiered.WanCosts();
  EngineCosts lan = tiered.LanCosts();
  EXPECT_EQ(wan.value_refreshes, sequential.wan_costs().value_refreshes());
  EXPECT_EQ(wan.query_refreshes, sequential.wan_costs().query_refreshes());
  EXPECT_DOUBLE_EQ(wan.total_cost, sequential.wan_costs().total_cost());
  EXPECT_EQ(lan.value_refreshes, sequential.lan_costs().value_refreshes());
  EXPECT_EQ(lan.query_refreshes, sequential.lan_costs().query_refreshes());
  EXPECT_DOUBLE_EQ(lan.total_cost, sequential.lan_costs().total_cost());
  EXPECT_DOUBLE_EQ(tiered.TotalCostRate(), sequential.TotalCostRate());
  // The workload genuinely exercised every hop.
  EXPECT_GT(wan.value_refreshes, 0) << "weak setup: no WAN pushes";
  EXPECT_GT(wan.query_refreshes, 0) << "weak setup: no source escalations";
  EXPECT_GT(lan.value_refreshes, 0) << "weak setup: no derived fan-out";
  EXPECT_GT(lan.query_refreshes, 0) << "weak setup: no edge escalations";
}

// The pinned acceptance criterion: 1 edge / 1 shard / 1 thread.
TEST(TieredEngineTest, LockstepParityOneEdgeOneShard) {
  for (ReadLockMode mode : kAllModes) {
    ExpectTieredLockstepParity(/*num_sources=*/6, /*num_edges=*/1,
                               /*num_shards=*/1, mode, /*ticks=*/400,
                               kSeed ^ 0x11);
  }
}

// Per-entity policy RNG streams make the guarantee independent of the
// edge count and even of the shard partition (lockstep, one thread).
TEST(TieredEngineTest, LockstepParityMultiEdgeMultiShard) {
  ExpectTieredLockstepParity(/*num_sources=*/8, /*num_edges=*/3,
                             /*num_shards=*/1, ReadLockMode::kSeqlock,
                             /*ticks=*/300, kSeed ^ 0x22);
  ExpectTieredLockstepParity(/*num_sources=*/8, /*num_edges=*/3,
                             /*num_shards=*/3, ReadLockMode::kSeqlock,
                             /*ticks=*/300, kSeed ^ 0x22);
}

// Updates delivered through the bus (tick-all and per-source events) must
// land exactly like synchronous lockstep ticks, fan-out included.
TEST(TieredEngineTest, UpdateBusMatchesSynchronousTicks) {
  constexpr int kSources = 10;
  constexpr int64_t kTicks = 150;
  HierarchyConfig seq_config = SequentialConfig(kSources, 2);
  TieredConfig config = TieredFrom(seq_config, 2, kSeed);

  TieredEngine lockstep(config, WalkStreams(kSources, kSeed ^ 0x33));
  lockstep.PopulateInitial(0);
  lockstep.BeginMeasurement(0);
  for (int64_t t = 1; t <= kTicks; ++t) lockstep.TickAll(t);
  lockstep.EndMeasurement(kTicks);

  TieredEngine via_bus(config, WalkStreams(kSources, kSeed ^ 0x33));
  via_bus.PopulateInitial(0);
  via_bus.BeginMeasurement(0);
  ASSERT_TRUE(via_bus.StartUpdatePump());
  for (int64_t t = 1; t <= kTicks; ++t) {
    ASSERT_TRUE(via_bus.bus().Push({t, UpdateEvent::kAllSources}));
  }
  via_bus.StopUpdatePump();
  via_bus.EndMeasurement(kTicks);

  TieredEngine via_per_source(config, WalkStreams(kSources, kSeed ^ 0x33));
  via_per_source.PopulateInitial(0);
  via_per_source.BeginMeasurement(0);
  ASSERT_TRUE(via_per_source.StartUpdatePump());
  for (int64_t t = 1; t <= kTicks; ++t) {
    for (int id = 0; id < kSources; ++id) {
      ASSERT_TRUE(via_per_source.bus().Push({t, id}));
    }
  }
  via_per_source.StopUpdatePump();
  via_per_source.EndMeasurement(kTicks);

  EngineCosts expected_wan = lockstep.WanCosts();
  EngineCosts expected_lan = lockstep.LanCosts();
  for (TieredEngine* engine : {&via_bus, &via_per_source}) {
    EngineCosts wan = engine->WanCosts();
    EngineCosts lan = engine->LanCosts();
    EXPECT_EQ(wan.value_refreshes, expected_wan.value_refreshes);
    EXPECT_DOUBLE_EQ(wan.total_cost, expected_wan.total_cost);
    EXPECT_EQ(lan.value_refreshes, expected_lan.value_refreshes);
    EXPECT_DOUBLE_EQ(lan.total_cost, expected_lan.total_cost);
    for (int id = 0; id < kSources; ++id) {
      EXPECT_EQ(engine->regional_interval(id, kTicks),
                lockstep.regional_interval(id, kTicks));
      for (int e = 0; e < 2; ++e) {
        EXPECT_EQ(engine->edge_interval(e, id, kTicks),
                  lockstep.edge_interval(e, id, kTicks));
      }
    }
  }
  EXPECT_EQ(via_per_source.counters().updates_applied.load(),
            kSources * kTicks);
}

// Satellite: escalation charging under push loss. A lost WAN push is
// charged (the source paid for the message) but never reaches the
// regional cache, so it must not cascade LAN pushes; a lost LAN push is
// charged on the LAN link and leaves only that edge stale.
TEST(TieredEngineTest, EscalationChargingUnderWanPushLoss) {
  constexpr int kSources = 8;
  HierarchyConfig seq_config = SequentialConfig(kSources, 2);
  TieredConfig config = TieredFrom(seq_config, 1, kSeed);
  config.wan_push_loss = 1.0;  // every WAN push is lost in transit
  TieredEngine engine(config, WalkStreams(kSources, kSeed ^ 0x44));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  Rng rng(kSeed);
  for (int64_t t = 1; t <= 300; ++t) {
    engine.TickAll(t);
    // Loose reads only: value-initiated traffic dominates.
    engine.Read(static_cast<int>(rng.UniformInt(0, 1)),
                static_cast<int>(rng.UniformInt(0, kSources - 1)), 1e6, t);
  }
  engine.EndMeasurement(300);

  EngineCosts wan = engine.WanCosts();
  EngineCosts lan = engine.LanCosts();
  EXPECT_GT(wan.value_refreshes, 0) << "weak setup: no WAN pushes";
  // Charged-but-lost: every WAN push was charged AND lost.
  EXPECT_EQ(engine.lost_wan_pushes(), wan.value_refreshes);
  // An undelivered regional interval must not fan out LAN pushes.
  EXPECT_EQ(lan.value_refreshes, 0);
  EXPECT_EQ(engine.counters().derived_pushes.load(), 0);
  EXPECT_EQ(engine.lost_lan_pushes(), 0);
  // The invariant survives WAN loss: edges still contain the (stale)
  // regional interval.
  EXPECT_TRUE(engine.DerivedInvariantHolds(300));
}

TEST(TieredEngineTest, EscalationChargingUnderLanPushLoss) {
  constexpr int kSources = 8;
  HierarchyConfig seq_config = SequentialConfig(kSources, 3);
  TieredConfig config = TieredFrom(seq_config, 1, kSeed);
  config.lan_push_loss = 0.5;
  TieredEngine engine(config, WalkStreams(kSources, kSeed ^ 0x55));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  Rng rng(kSeed + 1);
  int64_t violations = 0;
  for (int64_t t = 1; t <= 400; ++t) {
    engine.TickAll(t);
    int edge = static_cast<int>(rng.UniformInt(0, 2));
    int id = static_cast<int>(rng.UniformInt(0, kSources - 1));
    double constraint = rng.Uniform(0.0, 20.0);
    Interval answer = engine.Read(edge, id, constraint, t);
    if (answer.Width() > constraint + 1e-9) ++violations;
  }
  engine.EndMeasurement(400);

  EngineCosts lan = engine.LanCosts();
  // Every derived push was charged, delivered or not (charged-but-lost),
  // and the injection genuinely fired.
  EXPECT_GT(engine.lost_lan_pushes(), 0) << "injection never fired";
  EXPECT_EQ(lan.value_refreshes, engine.counters().derived_pushes.load());
  EXPECT_GT(lan.value_refreshes, engine.lost_lan_pushes())
      << "weak setup: every push lost";
  // The WIDTH guarantee is loss-proof: escalation re-reads authoritative
  // tiers, so a stale edge can only cost extra hops, never a wide answer.
  EXPECT_EQ(violations, 0);
}

// Tentpole concurrency property: derived-refresh fan-out races concurrent
// edge reads. Every result must satisfy its constraint, and the derived-
// precision invariant must hold at ANY sampled instant (all mutations of
// an id's tier pair happen under its regional shard lock), not just at
// quiescence. Run under TSan by scripts/check.sh --tsan.
TEST(TieredEngineTest, FanOutCorrectUnderConcurrentEdgeReads) {
  constexpr int kSources = 24;
  constexpr int kEdges = 3;
  for (ReadLockMode mode : kAllModes) {
    HierarchyConfig seq_config = SequentialConfig(kSources, kEdges);
    TieredConfig config = TieredFrom(seq_config, 2, kSeed);
    config.read_lock_mode = mode;
    TieredEngine engine(config, WalkStreams(kSources, kSeed ^ 0x66));
    engine.PopulateInitial(0);

    std::atomic<bool> stop{false};
    std::atomic<int64_t> ticks{0};
    std::thread ticker([&] {
      for (int64_t t = 1; !stop.load(std::memory_order_relaxed); ++t) {
        engine.TickAll(t);
        ticks.store(t, std::memory_order_relaxed);
      }
    });
    std::thread checker([&] {
      // The invariant is checked mid-run, racing the ticker's fan-outs.
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t now = ticks.load(std::memory_order_relaxed);
        ASSERT_TRUE(engine.DerivedInvariantHolds(now))
            << "A_edge ⊉ A_regional observed mid-run in mode "
            << static_cast<int>(mode);
      }
    });
    std::vector<std::thread> readers;
    std::atomic<int64_t> violations{0};
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&, r] {
        Rng rng(kSeed + 10 + static_cast<uint64_t>(r));
        for (int q = 0; q < 400; ++q) {
          int edge = static_cast<int>(rng.UniformInt(0, kEdges - 1));
          int id = static_cast<int>(rng.UniformInt(0, kSources - 1));
          double constraint = rng.Uniform(0.0, 25.0);
          int64_t now = ticks.load(std::memory_order_relaxed);
          Interval answer = engine.Read(edge, id, constraint, now);
          if (answer.Width() > constraint + 1e-9) ++violations;
        }
      });
    }
    for (auto& reader : readers) reader.join();
    stop.store(true);
    checker.join();
    ticker.join();

    EXPECT_EQ(violations.load(), 0)
        << "constraint violated in mode " << static_cast<int>(mode);
    EXPECT_GT(ticks.load(), 0) << "ticker made no progress";
    EXPECT_TRUE(engine.DerivedInvariantHolds(ticks.load()));
    EXPECT_EQ(engine.counters().reads.load(), 3 * 400);
  }
}

// Every read lands in exactly one outcome bucket, and loose reads are
// free while tight reads escalate and charge.
TEST(TieredEngineTest, ReadOutcomeCountersPartitionReads) {
  constexpr int kSources = 10;
  HierarchyConfig seq_config = SequentialConfig(kSources, 2);
  TieredEngine engine(TieredFrom(seq_config, 1, kSeed),
                      WalkStreams(kSources, kSeed ^ 0x77));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  // Edge initial width 8 >= regional initial width 4.
  Interval loose = engine.Read(0, 0, /*constraint=*/100.0, 0);
  EXPECT_LE(loose.Width(), 100.0);
  EXPECT_EQ(engine.counters().edge_hits.load(), 1);
  EXPECT_DOUBLE_EQ(engine.LanCosts().total_cost, 0.0) << "local reads are free";

  Interval medium = engine.Read(0, 0, /*constraint=*/5.0, 0);
  EXPECT_LE(medium.Width(), 5.0);
  EXPECT_EQ(engine.counters().regional_hits.load(), 1);
  EXPECT_EQ(engine.LanCosts().query_refreshes, 1);
  EXPECT_EQ(engine.WanCosts().query_refreshes, 0);

  Interval tight = engine.Read(1, 0, /*constraint=*/0.0, 0);
  EXPECT_TRUE(tight.IsExact());
  EXPECT_EQ(engine.counters().source_pulls.load(), 1);
  EXPECT_EQ(engine.WanCosts().query_refreshes, 1);

  // Unknown edge / id: rejected, charge-free, unbounded.
  EXPECT_TRUE(engine.Read(7, 0, 1.0, 0).IsUnbounded());
  EXPECT_TRUE(engine.Read(0, 999, 1.0, 0).IsUnbounded());
  EXPECT_EQ(engine.counters().rejected_reads.load(), 2);

  const TieredCounters& counters = engine.counters();
  EXPECT_EQ(counters.reads.load(),
            counters.edge_hits.load() + counters.regional_hits.load() +
                counters.source_pulls.load() +
                counters.rejected_reads.load());

  // Unknown update ids are rejected, not fatal.
  engine.TickSource(999, 1);
  EXPECT_EQ(counters.rejected_updates.load(), 1);
}

// The tiered workload driver: geo-skewed phase-shifting run completes,
// meets every constraint, and surfaces the tier hit mix.
TEST(TieredWorkloadTest, GeoSkewedPhaseShiftingRunCompletes) {
  constexpr int kSources = 32;
  HierarchyConfig seq_config = SequentialConfig(kSources, 4);
  TieredConfig config = TieredFrom(seq_config, 2, kSeed);
  TieredEngine engine(config, WalkStreams(kSources, kSeed ^ 0x88));

  TieredWorkloadConfig workload;
  workload.num_threads = 3;
  workload.queries_per_thread = 400;
  workload.num_sources = kSources;
  workload.zipf_s = 1.1;
  workload.constraints = {15.0, 1.0};
  workload.run_updates = true;
  workload.update_burst = 8;
  workload.num_phases = 3;
  workload.seed = kSeed;
  TieredDriverReport report = RunTieredWorkload(engine, workload);

  EXPECT_EQ(report.queries, 3 * 400);
  EXPECT_EQ(report.violations, 0)
      << "a returned interval exceeded its precision constraint";
  EXPECT_GT(report.ticks, 0) << "updater made no progress";
  EXPECT_GT(report.queries_per_second, 0.0);
  EXPECT_EQ(report.edge_hits + report.regional_hits + report.source_pulls,
            report.queries);
  // The constraint mix genuinely exercises all three outcomes.
  EXPECT_GT(report.edge_hits, 0);
  EXPECT_GT(report.regional_hits + report.source_pulls, 0);
  EXPECT_GT(report.wan.total_cost + report.lan.total_cost, 0.0);
  EXPECT_EQ(engine.counters().reads.load(), report.queries);

  // An invalid config yields the zero report without touching the engine.
  TieredWorkloadConfig invalid = workload;
  invalid.num_threads = 0;
  EXPECT_EQ(RunTieredWorkload(engine, invalid).queries, 0);

  // An id space the engine does not fully own is refused up front — a
  // config/engine mismatch must not masquerade as precision violations.
  TieredWorkloadConfig mismatched = workload;
  mismatched.num_sources = kSources + 10;
  EXPECT_EQ(RunTieredWorkload(engine, mismatched).queries, 0);
}

// Null streams are rejected and counted; the engine stays fully usable.
TEST(TieredEngineTest, NullStreamsRejectedAtConstruction) {
  auto streams = WalkStreams(6, kSeed ^ 0x99);
  streams[2] = nullptr;
  HierarchyConfig seq_config = SequentialConfig(6, 2);
  TieredEngine engine(TieredFrom(seq_config, 2, kSeed), std::move(streams));
  EXPECT_EQ(engine.num_sources(), 5u);
  EXPECT_EQ(engine.counters().rejected_sources.load(), 1);
  EXPECT_FALSE(engine.Owns(2));
  engine.PopulateInitial(0);
  EXPECT_TRUE(engine.Read(0, 0, 1e9, 0).Width() < kInfinity);
}

}  // namespace
}  // namespace apc
