#include "data/random_walk.h"

#include <gtest/gtest.h>

#include <cmath>

namespace apc {
namespace {

TEST(RandomWalkParamsTest, Validation) {
  RandomWalkParams p;
  EXPECT_TRUE(p.IsValid());
  p.step_lo = -1.0;
  EXPECT_FALSE(p.IsValid());
  p = RandomWalkParams();
  p.step_hi = 0.1;  // < step_lo
  EXPECT_FALSE(p.IsValid());
  p = RandomWalkParams();
  p.up_probability = 1.5;
  EXPECT_FALSE(p.IsValid());
}

TEST(RandomWalkStreamTest, StartsAtConfiguredValue) {
  RandomWalkParams p;
  p.start = 42.0;
  RandomWalkStream stream(p, 1);
  EXPECT_DOUBLE_EQ(stream.current(), 42.0);
}

TEST(RandomWalkStreamTest, StepMagnitudeWithinBounds) {
  RandomWalkParams p;  // steps in [0.5, 1.5]
  RandomWalkStream stream(p, 1);
  double prev = stream.current();
  for (int i = 0; i < 10000; ++i) {
    double next = stream.Next();
    double step = std::fabs(next - prev);
    EXPECT_GE(step, 0.5);
    EXPECT_LE(step, 1.5);
    prev = next;
  }
}

TEST(RandomWalkStreamTest, UnbiasedWalkHasSmallDrift) {
  RandomWalkParams p;
  RandomWalkStream stream(p, 5);
  const int n = 100000;
  double final = 0.0;
  for (int i = 0; i < n; ++i) final = stream.Next();
  // Final displacement ~ N(0, n * E[s^2]); |final| beyond 5 sigma would be
  // suspicious. sigma = sqrt(n * 13/12) ~ 329.
  EXPECT_LT(std::fabs(final), 5 * std::sqrt(n * 13.0 / 12.0));
}

TEST(RandomWalkStreamTest, BiasedWalkDriftsUpward) {
  RandomWalkParams p;
  p.up_probability = 0.9;
  RandomWalkStream stream(p, 5);
  double final = 0.0;
  for (int i = 0; i < 10000; ++i) final = stream.Next();
  // Expected drift per step = (0.9 - 0.1) * 1.0 = 0.8.
  EXPECT_GT(final, 10000 * 0.8 * 0.8);
}

TEST(RandomWalkStreamTest, DeterministicAcrossSeeds) {
  RandomWalkParams p;
  RandomWalkStream a(p, 77), b(p, 77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(a.Next(), b.Next());
  }
}

TEST(RandomWalkStreamTest, CurrentTracksNext) {
  RandomWalkParams p;
  RandomWalkStream stream(p, 1);
  double v = stream.Next();
  EXPECT_DOUBLE_EQ(stream.current(), v);
}

TEST(SeriesStreamTest, PlaysBackInOrder) {
  // current() is the value at time 0; the i-th Next() is the value at
  // tick i.
  SeriesStream stream({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(stream.current(), 1.0);
  EXPECT_DOUBLE_EQ(stream.Next(), 2.0);
  EXPECT_DOUBLE_EQ(stream.Next(), 3.0);
}

TEST(SeriesStreamTest, HoldsLastValueAfterExhaustion) {
  SeriesStream stream({1.0, 2.0});
  EXPECT_DOUBLE_EQ(stream.Next(), 2.0);
  EXPECT_DOUBLE_EQ(stream.Next(), 2.0);
  EXPECT_DOUBLE_EQ(stream.Next(), 2.0);
  EXPECT_DOUBLE_EQ(stream.current(), 2.0);
}

TEST(SeriesStreamTest, EmptySeriesIsSafe) {
  SeriesStream stream({});
  EXPECT_DOUBLE_EQ(stream.current(), 0.0);
  EXPECT_DOUBLE_EQ(stream.Next(), 0.0);
}

}  // namespace
}  // namespace apc
