// FlightRecorder: an armed recorder turns failures into evidence. The
// core test forces a scenario-checker failure (via the runner's
// inject_containment_skew fault hook) and asserts the dump file exists,
// is seq-ordered, reports the drop counter, and carries a COMPLETE span
// tree — every span closed, every parent link resolvable. The storm test
// drives NoteRejectedInput across the threshold. Everything degrades to
// a no-op under APC_OBS=0, asserted explicitly.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "scenario/scenario.h"
#include "scenario/scenario_runner.h"

namespace apc {
namespace {

#if APC_OBS
std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string contents;
  char buf[512];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  return contents;
}

struct DumpLine {
  uint64_t seq = 0;
  uint64_t op = 0;
  uint32_t span = 0;
  uint32_t parent = 0;
  uint32_t tid = 0;
  std::string event;
  int32_t id = 0;
  int64_t now = 0;
  int64_t arg = 0;
};

// Parses the documented dump format: header lines prefixed '#', then one
// event per line as `seq op span parent tid event id now arg`.
std::vector<DumpLine> ParseDump(const std::string& contents,
                                std::vector<std::string>* header) {
  std::vector<DumpLine> lines;
  std::istringstream in(contents);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      header->push_back(line);
      continue;
    }
    std::istringstream fields(line);
    DumpLine rec;
    fields >> rec.seq >> rec.op >> rec.span >> rec.parent >> rec.tid >>
        rec.event >> rec.id >> rec.now >> rec.arg;
    EXPECT_FALSE(fields.fail()) << "malformed dump line: " << line;
    lines.push_back(rec);
  }
  return lines;
}

bool HeaderHas(const std::vector<std::string>& header,
               const std::string& needle) {
  for (const std::string& line : header) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}
#endif  // APC_OBS

// A forced checker failure while armed must produce a dump whose events
// are seq-ordered and whose span layer forms complete trees: every
// span_begin has its span_end, every tagged record's span exists, and
// every nonzero parent names another span of the same operation.
TEST(FlightRecorderTest, CheckerFailureDumpsOrderedCompleteSpanTree) {
  obs::TraceRecorder::Reset();
  obs::FlightRecorder::SetDumpDir(testing::TempDir());
  // kFull: the dump carries the per-read root spans, so the tree check
  // below covers the whole taxonomy, not just the low-frequency kinds.
  obs::FlightRecorder::Arm(/*ring_capacity=*/1 << 15,
                           obs::TraceLevel::kFull);

  ScenarioConfig config;
  config.kind = ScenarioKind::kFlashCrowd;
  config.num_sources = 16;
  config.ticks = 40;
  config.reads_per_tick = 4;
  config.seed = 7;
  ScenarioScript script = BuildScenario(config);
  ASSERT_TRUE(script.IsValid());

  ScenarioRunOptions options;
  options.num_shards = 1;  // lockstep: the dump is exact, not best-effort
  // Shift the checker's ground truth far outside every shipped bound:
  // deterministic containment failures with a perfectly healthy engine.
  options.inject_containment_skew = 1e9;
  ScenarioMetrics metrics =
      RunScenario(script, PolicyKind::kAdaptive, options);
  EXPECT_GT(metrics.containment_failures, 0);

  std::string path = obs::FlightRecorder::last_dump_path();
  obs::FlightRecorder::Disarm();
#if APC_OBS
  ASSERT_FALSE(path.empty());
  std::string contents = ReadWholeFile(path);
  ASSERT_FALSE(contents.empty());
  std::remove(path.c_str());

  std::vector<std::string> header;
  std::vector<DumpLine> lines = ParseDump(contents, &header);
  EXPECT_TRUE(HeaderHas(header, "# reason: read containment failure"));
  EXPECT_TRUE(HeaderHas(header, "# level: full"));
  EXPECT_TRUE(HeaderHas(header, "# trace_dropped:"));
  EXPECT_TRUE(HeaderHas(header,
                        "# columns: seq op span parent tid event id now arg"));
  ASSERT_FALSE(lines.empty());

  // Strict global seq order.
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_LT(lines[i - 1].seq, lines[i].seq);
  }

  // Span-tree completeness. The run quiesced before the dump and the ring
  // is larger than the event count, so no begin/end was overwritten.
  std::set<std::pair<uint64_t, uint32_t>> begins;
  std::set<std::pair<uint64_t, uint32_t>> ends;
  std::map<uint64_t, std::set<uint32_t>> spans_of_op;
  bool saw_read_root = false;
  for (const DumpLine& rec : lines) {
    if (rec.event == "span_begin") {
      EXPECT_TRUE(begins.insert({rec.op, rec.span}).second)
          << "duplicate span " << rec.op << ":" << rec.span;
      spans_of_op[rec.op].insert(rec.span);
      if (rec.arg == static_cast<int64_t>(obs::SpanKind::kPointRead) ||
          rec.arg == static_cast<int64_t>(obs::SpanKind::kQuery)) {
        saw_read_root = true;
      }
    } else if (rec.event == "span_end") {
      ends.insert({rec.op, rec.span});
    }
  }
  EXPECT_EQ(begins, ends);  // every span closed, no orphan ends
  EXPECT_TRUE(saw_read_root);
  for (const DumpLine& rec : lines) {
    if (rec.op == 0) continue;  // outside any span
    const std::set<uint32_t>& spans = spans_of_op[rec.op];
    EXPECT_TRUE(spans.count(rec.span) > 0)
        << rec.event << " tagged with unknown span " << rec.op << ":"
        << rec.span;
    if (rec.parent != 0) {
      EXPECT_TRUE(spans.count(rec.parent) > 0)
          << rec.event << " parent " << rec.parent << " missing in op "
          << rec.op;
    }
  }
#else
  // Stubs: arming is a no-op, no dump is ever produced.
  EXPECT_TRUE(path.empty());
  EXPECT_FALSE(obs::FlightRecorder::armed());
  EXPECT_EQ(obs::FlightRecorder::DumpOnFailure("x"), "");
#endif
  obs::TraceRecorder::Reset();
}

TEST(FlightRecorderTest, DumpOnFailureRequiresArming) {
  obs::TraceRecorder::Reset();
  EXPECT_FALSE(obs::FlightRecorder::armed());
  EXPECT_EQ(obs::FlightRecorder::DumpOnFailure("not armed"), "");
  obs::FlightRecorder::Arm(1 << 10);
#if APC_OBS
  EXPECT_TRUE(obs::FlightRecorder::armed());
  EXPECT_EQ(obs::TraceRecorder::level(), obs::TraceLevel::kFlight);
#endif
  obs::FlightRecorder::Disarm();
  EXPECT_FALSE(obs::FlightRecorder::armed());
  obs::TraceRecorder::Reset();
}

// kStormThreshold rejected inputs while armed trigger exactly one dump,
// with the storm reason and the rejected_input events retained.
TEST(FlightRecorderTest, RejectedInputStormDumpsOnce) {
  obs::TraceRecorder::Reset();
  obs::FlightRecorder::SetDumpDir(testing::TempDir());
  obs::FlightRecorder::Arm(/*ring_capacity=*/1 << 12);
  std::string before = obs::FlightRecorder::last_dump_path();
  for (int64_t i = 0; i < obs::FlightRecorder::kStormThreshold; ++i) {
    obs::FlightRecorder::NoteRejectedInput("bad update", /*id=*/-7,
                                           /*now=*/i);
  }
  std::string path = obs::FlightRecorder::last_dump_path();
  obs::FlightRecorder::Disarm();
#if APC_OBS
  // The process-wide rejection tally crossed exactly one multiple of the
  // threshold during the loop, so exactly one fresh dump appeared.
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path, before);
  std::string contents = ReadWholeFile(path);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("rejected-input storm (bad update)"),
            std::string::npos);
  EXPECT_NE(contents.find("rejected_input"), std::string::npos);
#else
  EXPECT_TRUE(path.empty());
#endif
  obs::TraceRecorder::Reset();
}

}  // namespace
}  // namespace apc
