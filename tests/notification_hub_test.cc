// NotificationHub semantics — the push-half twin of update_bus_test.cc:
// FIFO delivery, bounded backpressure, and close/drain shutdown must
// mirror the UpdateBus discipline exactly.
#include "subscribe/notification_hub.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace apc {
namespace {

Notification Rec(int64_t sub_id, int64_t epoch, int64_t now = 0) {
  Notification record;
  record.sub_id = sub_id;
  record.answer = Interval(static_cast<double>(epoch),
                           static_cast<double>(epoch) + 1.0);
  record.epoch = epoch;
  record.now = now;
  return record;
}

TEST(NotificationHubTest, PopDeliversInFifoOrder) {
  NotificationHub hub(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(hub.Push(Rec(i, i + 1)));
  EXPECT_EQ(hub.size(), 5u);
  std::vector<Notification> batch;
  EXPECT_EQ(hub.PopBatch(&batch, 16), 5u);
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(batch[static_cast<size_t>(i)].sub_id, i);
    EXPECT_EQ(batch[static_cast<size_t>(i)].epoch, i + 1);
    EXPECT_EQ(batch[static_cast<size_t>(i)].answer,
              Interval(static_cast<double>(i + 1),
                       static_cast<double>(i + 2)));
  }
}

TEST(NotificationHubTest, PopBatchRespectsMaxBatch) {
  NotificationHub hub(16);
  for (int i = 0; i < 10; ++i) hub.Push(Rec(i, 1));
  std::vector<Notification> batch;
  EXPECT_EQ(hub.PopBatch(&batch, 4), 4u);
  EXPECT_EQ(batch.front().sub_id, 0);
  EXPECT_EQ(hub.PopBatch(&batch, 4), 4u);
  EXPECT_EQ(batch.front().sub_id, 4);
  EXPECT_EQ(hub.PopBatch(&batch, 4), 2u);
}

TEST(NotificationHubTest, TryPushFailsWhenFull) {
  NotificationHub hub(2);
  EXPECT_TRUE(hub.TryPush(Rec(1, 1)));
  EXPECT_TRUE(hub.TryPush(Rec(2, 1)));
  EXPECT_FALSE(hub.TryPush(Rec(3, 1)));
  std::vector<Notification> batch;
  hub.PopBatch(&batch, 1);
  EXPECT_TRUE(hub.TryPush(Rec(3, 1)));
}

TEST(NotificationHubTest, CloseDrainsBacklogThenReturnsZero) {
  NotificationHub hub(8);
  hub.Push(Rec(1, 1));
  hub.Push(Rec(2, 1));
  hub.Close();
  EXPECT_FALSE(hub.Push(Rec(3, 1)));
  EXPECT_FALSE(hub.TryPush(Rec(3, 1)));
  std::vector<Notification> batch;
  EXPECT_EQ(hub.PopBatch(&batch, 16), 2u);
  EXPECT_EQ(hub.PopBatch(&batch, 16), 0u);
  EXPECT_TRUE(hub.closed());
}

TEST(NotificationHubTest, BlockedProducerUnblocksOnClose) {
  NotificationHub hub(1);
  EXPECT_TRUE(hub.Push(Rec(1, 1)));
  std::thread producer([&] {
    // Full: this push blocks until Close() wakes it, then fails.
    EXPECT_FALSE(hub.Push(Rec(2, 1)));
  });
  hub.Close();
  producer.join();
}

TEST(NotificationHubTest, MultipleProducersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  NotificationHub hub(32);  // smaller than the total: backpressure exercised
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&hub, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(hub.Push(Rec(p, i + 1)));
      }
    });
  }
  std::vector<int64_t> per_producer(kProducers, 0);
  int received = 0;
  std::vector<Notification> batch;
  while (received < kProducers * kPerProducer) {
    size_t n = hub.PopBatch(&batch, 64);
    ASSERT_GT(n, 0u);
    for (const Notification& record : batch) {
      // Per-producer FIFO: each producer's records arrive in epoch order.
      EXPECT_EQ(record.epoch,
                ++per_producer[static_cast<size_t>(record.sub_id)]);
    }
    received += static_cast<int>(n);
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(hub.total_pushed(), kProducers * kPerProducer);
  EXPECT_EQ(hub.size(), 0u);
}

// Multi-consumer drain: every record is delivered to exactly one consumer
// and nothing is lost or duplicated — the shape subscriber-thread pools
// rely on (UpdateBus is single-consumer; the hub is not).
TEST(NotificationHubTest, MultipleConsumersPartitionTheStream) {
  constexpr int kRecords = 2000;
  NotificationHub hub(64);
  std::vector<std::thread> consumers;
  std::atomic<int64_t> drained{0};
  std::vector<std::atomic<int>> seen(kRecords);
  for (auto& s : seen) s.store(0);
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<Notification> batch;
      while (hub.PopBatch(&batch, 16) > 0) {
        for (const Notification& record : batch) {
          seen[static_cast<size_t>(record.sub_id)].fetch_add(1);
          drained.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < kRecords; ++i) ASSERT_TRUE(hub.Push(Rec(i, 1)));
  hub.Close();
  for (auto& consumer : consumers) consumer.join();
  EXPECT_EQ(drained.load(), kRecords);
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)].load(), 1) << "record " << i;
  }
}

// -- PushBatch: the batch-reservation discipline -----------------------
// The manager's outbox flush delivers evaluation batches through
// PushBatch; its contract is Push's exactly — FIFO, bounded, blocking,
// close-drops-the-tail — with one lock acquisition per free-capacity
// chunk instead of one per record.

TEST(NotificationHubTest, PushBatchPreservesFifoOrder) {
  NotificationHub hub(8);
  std::vector<Notification> records;
  for (int i = 0; i < 5; ++i) records.push_back(Rec(i, i + 1));
  EXPECT_EQ(hub.PushBatch(records.data(), records.size()), 5u);
  EXPECT_EQ(hub.total_pushed(), 5);
  std::vector<Notification> batch;
  ASSERT_EQ(hub.PopBatch(&batch, 16), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(batch[static_cast<size_t>(i)].sub_id, i);
    EXPECT_EQ(batch[static_cast<size_t>(i)].epoch, i + 1);
  }
}

// A batch larger than the hub chunks through backpressure: the producer
// blocks per chunk while a consumer drains, and the stream arrives whole
// and in order — the hub-ordering regression test for batched delivery.
TEST(NotificationHubTest, PushBatchChunksThroughBackpressureInOrder) {
  constexpr int kRecords = 300;
  NotificationHub hub(16);  // much smaller than the batch
  std::vector<Notification> records;
  for (int i = 0; i < kRecords; ++i) records.push_back(Rec(7, i + 1));
  std::thread producer([&] {
    EXPECT_EQ(hub.PushBatch(records.data(), records.size()),
              static_cast<size_t>(kRecords));
  });
  int64_t next_epoch = 1;
  std::vector<Notification> batch;
  while (next_epoch <= kRecords) {
    size_t n = hub.PopBatch(&batch, 32);
    ASSERT_GT(n, 0u);
    for (const Notification& record : batch) {
      // Strictly increasing epochs: batched delivery must not reorder.
      EXPECT_EQ(record.epoch, next_epoch++);
    }
  }
  producer.join();
  EXPECT_EQ(hub.size(), 0u);
}

// Closing mid-batch drops exactly the unaccepted tail: the return value
// tells the caller how many records actually entered the stream.
TEST(NotificationHubTest, PushBatchPartialAcceptOnClose) {
  NotificationHub hub(2);
  std::vector<Notification> records;
  for (int i = 0; i < 5; ++i) records.push_back(Rec(i, i + 1));
  std::thread producer([&] {
    // First chunk of 2 fits; the hub closes while the rest waits.
    EXPECT_EQ(hub.PushBatch(records.data(), records.size()), 2u);
  });
  // Wait until the first chunk is in (the producer is blocked on the
  // full hub), then close.
  while (hub.size() < 2u) std::this_thread::yield();
  hub.Close();
  producer.join();
  std::vector<Notification> batch;
  EXPECT_EQ(hub.PopBatch(&batch, 16), 2u);
  EXPECT_EQ(batch[0].sub_id, 0);
  EXPECT_EQ(batch[1].sub_id, 1);
  EXPECT_EQ(hub.PopBatch(&batch, 16), 0u);
  // An empty batch against a closed hub accepts nothing.
  EXPECT_EQ(hub.PushBatch(records.data(), records.size()), 0u);
}

// Batch and single-record producers interleave freely; per-producer FIFO
// survives, mirroring MultipleProducersDeliverEverything.
TEST(NotificationHubTest, PushBatchAndPushInterleaveWithPerProducerFifo) {
  constexpr int kPerProducer = 400;
  NotificationHub hub(32);
  std::thread batcher([&] {
    std::vector<Notification> records;
    for (int i = 0; i < kPerProducer; ++i) records.push_back(Rec(0, i + 1));
    EXPECT_EQ(hub.PushBatch(records.data(), records.size()),
              static_cast<size_t>(kPerProducer));
  });
  std::thread single([&] {
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_TRUE(hub.Push(Rec(1, i + 1)));
    }
  });
  std::vector<int64_t> per_producer(2, 0);
  int received = 0;
  std::vector<Notification> batch;
  while (received < 2 * kPerProducer) {
    size_t n = hub.PopBatch(&batch, 64);
    ASSERT_GT(n, 0u);
    for (const Notification& record : batch) {
      EXPECT_EQ(record.epoch,
                ++per_producer[static_cast<size_t>(record.sub_id)]);
    }
    received += static_cast<int>(n);
  }
  batcher.join();
  single.join();
  EXPECT_EQ(hub.total_pushed(), 2 * kPerProducer);
}

}  // namespace
}  // namespace apc
