// NotificationHub semantics — the push-half twin of update_bus_test.cc:
// FIFO delivery, bounded backpressure, and close/drain shutdown must
// mirror the UpdateBus discipline exactly.
#include "subscribe/notification_hub.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace apc {
namespace {

Notification Rec(int64_t sub_id, int64_t epoch, int64_t now = 0) {
  Notification record;
  record.sub_id = sub_id;
  record.answer = Interval(static_cast<double>(epoch),
                           static_cast<double>(epoch) + 1.0);
  record.epoch = epoch;
  record.now = now;
  return record;
}

TEST(NotificationHubTest, PopDeliversInFifoOrder) {
  NotificationHub hub(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(hub.Push(Rec(i, i + 1)));
  EXPECT_EQ(hub.size(), 5u);
  std::vector<Notification> batch;
  EXPECT_EQ(hub.PopBatch(&batch, 16), 5u);
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(batch[static_cast<size_t>(i)].sub_id, i);
    EXPECT_EQ(batch[static_cast<size_t>(i)].epoch, i + 1);
    EXPECT_EQ(batch[static_cast<size_t>(i)].answer,
              Interval(static_cast<double>(i + 1),
                       static_cast<double>(i + 2)));
  }
}

TEST(NotificationHubTest, PopBatchRespectsMaxBatch) {
  NotificationHub hub(16);
  for (int i = 0; i < 10; ++i) hub.Push(Rec(i, 1));
  std::vector<Notification> batch;
  EXPECT_EQ(hub.PopBatch(&batch, 4), 4u);
  EXPECT_EQ(batch.front().sub_id, 0);
  EXPECT_EQ(hub.PopBatch(&batch, 4), 4u);
  EXPECT_EQ(batch.front().sub_id, 4);
  EXPECT_EQ(hub.PopBatch(&batch, 4), 2u);
}

TEST(NotificationHubTest, TryPushFailsWhenFull) {
  NotificationHub hub(2);
  EXPECT_TRUE(hub.TryPush(Rec(1, 1)));
  EXPECT_TRUE(hub.TryPush(Rec(2, 1)));
  EXPECT_FALSE(hub.TryPush(Rec(3, 1)));
  std::vector<Notification> batch;
  hub.PopBatch(&batch, 1);
  EXPECT_TRUE(hub.TryPush(Rec(3, 1)));
}

TEST(NotificationHubTest, CloseDrainsBacklogThenReturnsZero) {
  NotificationHub hub(8);
  hub.Push(Rec(1, 1));
  hub.Push(Rec(2, 1));
  hub.Close();
  EXPECT_FALSE(hub.Push(Rec(3, 1)));
  EXPECT_FALSE(hub.TryPush(Rec(3, 1)));
  std::vector<Notification> batch;
  EXPECT_EQ(hub.PopBatch(&batch, 16), 2u);
  EXPECT_EQ(hub.PopBatch(&batch, 16), 0u);
  EXPECT_TRUE(hub.closed());
}

TEST(NotificationHubTest, BlockedProducerUnblocksOnClose) {
  NotificationHub hub(1);
  EXPECT_TRUE(hub.Push(Rec(1, 1)));
  std::thread producer([&] {
    // Full: this push blocks until Close() wakes it, then fails.
    EXPECT_FALSE(hub.Push(Rec(2, 1)));
  });
  hub.Close();
  producer.join();
}

TEST(NotificationHubTest, MultipleProducersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  NotificationHub hub(32);  // smaller than the total: backpressure exercised
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&hub, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(hub.Push(Rec(p, i + 1)));
      }
    });
  }
  std::vector<int64_t> per_producer(kProducers, 0);
  int received = 0;
  std::vector<Notification> batch;
  while (received < kProducers * kPerProducer) {
    size_t n = hub.PopBatch(&batch, 64);
    ASSERT_GT(n, 0u);
    for (const Notification& record : batch) {
      // Per-producer FIFO: each producer's records arrive in epoch order.
      EXPECT_EQ(record.epoch,
                ++per_producer[static_cast<size_t>(record.sub_id)]);
    }
    received += static_cast<int>(n);
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(hub.total_pushed(), kProducers * kPerProducer);
  EXPECT_EQ(hub.size(), 0u);
}

// Multi-consumer drain: every record is delivered to exactly one consumer
// and nothing is lost or duplicated — the shape subscriber-thread pools
// rely on (UpdateBus is single-consumer; the hub is not).
TEST(NotificationHubTest, MultipleConsumersPartitionTheStream) {
  constexpr int kRecords = 2000;
  NotificationHub hub(64);
  std::vector<std::thread> consumers;
  std::atomic<int64_t> drained{0};
  std::vector<std::atomic<int>> seen(kRecords);
  for (auto& s : seen) s.store(0);
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<Notification> batch;
      while (hub.PopBatch(&batch, 16) > 0) {
        for (const Notification& record : batch) {
          seen[static_cast<size_t>(record.sub_id)].fetch_add(1);
          drained.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < kRecords; ++i) ASSERT_TRUE(hub.Push(Rec(i, 1)));
  hub.Close();
  for (auto& consumer : consumers) consumer.join();
  EXPECT_EQ(drained.load(), kRecords);
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)].load(), 1) << "record " << i;
  }
}

}  // namespace
}  // namespace apc
