#include "util/status.h"

#include <gtest/gtest.h>

namespace apc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("bad"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("missing"), StatusCode::kNotFound, "NotFound"},
      {Status::IOError("disk"), StatusCode::kIOError, "IOError"},
      {Status::OutOfRange("far"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Corruption("bits"), StatusCode::kCorruption, "Corruption"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos)
        << c.status.ToString();
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::IOError("cannot open /tmp/x");
  EXPECT_EQ(s.ToString(), "IOError: cannot open /tmp/x");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, WorksWithVectors) {
  Result<std::vector<double>> r(std::vector<double>{1.0, 2.0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

}  // namespace
}  // namespace apc
