// Reusable randomized op-sequence generator for lockstep fuzzing: a
// deterministic stream of tick / aggregate-read / point-read operations
// over a fixed source population, consumable by any pair of engines driven
// in lockstep (scenario_fuzz_test.cc drives the single-shard engine
// against the sequential CacheSystem; future harnesses can replay the same
// ops against other engine pairs).
#ifndef APC_TESTS_SCENARIO_FUZZ_COMMON_H_
#define APC_TESTS_SCENARIO_FUZZ_COMMON_H_

#include <cstdint>
#include <vector>

#include "query/aggregate.h"
#include "util/rng.h"

namespace apc {

struct FuzzOp {
  enum Kind { kTick, kAggRead, kPointRead };
  Kind kind = kTick;
  /// kAggRead only.
  Query query;
  /// kPointRead only: the source and its width bound.
  int id = 0;
  double width = 0.0;
};

/// Generates `num_ops` ops, deterministic in `seed`: ~1/3 ticks, the rest
/// reads (3/4 aggregates over 2-5 distinct ids with a mixed aggregate
/// kind, 1/4 point reads). Constraints span loose to tight so both the
/// constraint-satisfied fast path and the pull path are exercised.
inline std::vector<FuzzOp> GenerateFuzzOps(int num_ops, int num_sources,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<FuzzOp> ops;
  ops.reserve(static_cast<size_t>(num_ops));
  for (int i = 0; i < num_ops; ++i) {
    FuzzOp op;
    double draw = rng.Uniform(0.0, 1.0);
    if (draw < 1.0 / 3.0) {
      op.kind = FuzzOp::kTick;
    } else if (draw < 1.0 / 3.0 + 0.5) {
      op.kind = FuzzOp::kAggRead;
      double kind_draw = rng.Uniform(0.0, 1.0);
      op.query.kind = kind_draw < 0.55   ? AggregateKind::kSum
                      : kind_draw < 0.70 ? AggregateKind::kMax
                      : kind_draw < 0.85 ? AggregateKind::kMin
                                         : AggregateKind::kAvg;
      int group = rng.UniformInt(2, 5);
      if (group > num_sources) group = num_sources;
      // Distinct ids: start uniform, walk forward on collision.
      std::vector<bool> taken(static_cast<size_t>(num_sources), false);
      for (int k = 0; k < group; ++k) {
        int id = rng.UniformInt(0, num_sources - 1);
        while (taken[static_cast<size_t>(id)]) id = (id + 1) % num_sources;
        taken[static_cast<size_t>(id)] = true;
        op.query.source_ids.push_back(id);
      }
      op.query.constraint = rng.Uniform(1.0, 20.0);
    } else {
      op.kind = FuzzOp::kPointRead;
      op.id = rng.UniformInt(0, num_sources - 1);
      op.width = rng.Uniform(0.5, 10.0);
    }
    ops.push_back(op);
  }
  return ops;
}

}  // namespace apc

#endif  // APC_TESTS_SCENARIO_FUZZ_COMMON_H_
