#include "core/interval.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "util/rng.h"

namespace apc {
namespace {

TEST(IntervalTest, DefaultIsDegenerateZero) {
  Interval iv;
  EXPECT_EQ(iv.lo(), 0.0);
  EXPECT_EQ(iv.hi(), 0.0);
  EXPECT_TRUE(iv.IsExact());
}

TEST(IntervalTest, SwapsInvertedEndpoints) {
  Interval iv(5.0, 2.0);
  EXPECT_EQ(iv.lo(), 2.0);
  EXPECT_EQ(iv.hi(), 5.0);
}

TEST(IntervalTest, CenteredConstruction) {
  Interval iv = Interval::Centered(10.0, 4.0);
  EXPECT_DOUBLE_EQ(iv.lo(), 8.0);
  EXPECT_DOUBLE_EQ(iv.hi(), 12.0);
  EXPECT_DOUBLE_EQ(iv.Width(), 4.0);
  EXPECT_DOUBLE_EQ(iv.Center(), 10.0);
}

TEST(IntervalTest, CenteredWithInfiniteWidthIsUnbounded) {
  Interval iv = Interval::Centered(10.0, kInfinity);
  EXPECT_TRUE(iv.IsUnbounded());
  EXPECT_TRUE(iv.Contains(1e308));
  EXPECT_TRUE(iv.Contains(-1e308));
}

TEST(IntervalTest, UncenteredConstruction) {
  Interval iv = Interval::Uncentered(10.0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(iv.lo(), 9.0);
  EXPECT_DOUBLE_EQ(iv.hi(), 13.0);
}

TEST(IntervalTest, UncenteredWithInfiniteSides) {
  Interval iv = Interval::Uncentered(0.0, kInfinity, 1.0);
  EXPECT_EQ(iv.lo(), -kInfinity);
  EXPECT_DOUBLE_EQ(iv.hi(), 1.0);
  EXPECT_TRUE(iv.IsUnbounded());  // infinite total width
}

TEST(IntervalTest, ExactCopySemantics) {
  Interval iv = Interval::Exact(7.5);
  EXPECT_TRUE(iv.IsExact());
  EXPECT_EQ(iv.Width(), 0.0);
  EXPECT_EQ(iv.Precision(), kInfinity);
  EXPECT_TRUE(iv.Contains(7.5));
  EXPECT_FALSE(iv.Contains(7.5001));
}

TEST(IntervalTest, UnboundedSemantics) {
  Interval iv = Interval::Unbounded();
  EXPECT_TRUE(iv.IsUnbounded());
  EXPECT_FALSE(iv.IsExact());
  EXPECT_EQ(iv.Width(), kInfinity);
  EXPECT_EQ(iv.Precision(), 0.0);
}

TEST(IntervalTest, PrecisionIsReciprocalWidth) {
  EXPECT_DOUBLE_EQ(Interval(0.0, 4.0).Precision(), 0.25);
  EXPECT_DOUBLE_EQ(Interval(-2.0, 2.0).Precision(), 0.25);
}

TEST(IntervalTest, ValidityAtEndpointsIsInclusive) {
  Interval iv(3.0, 9.0);
  EXPECT_TRUE(iv.Contains(3.0));
  EXPECT_TRUE(iv.Contains(9.0));
  EXPECT_FALSE(iv.Contains(2.9999));
  EXPECT_FALSE(iv.Contains(9.0001));
}

TEST(IntervalTest, ContainsInterval) {
  Interval outer(0.0, 10.0);
  EXPECT_TRUE(outer.Contains(Interval(2.0, 8.0)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Interval(-1.0, 5.0)));
  EXPECT_TRUE(Interval::Unbounded().Contains(outer));
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(Interval(0, 5).Overlaps(Interval(5, 10)));  // shared endpoint
  EXPECT_TRUE(Interval(0, 5).Overlaps(Interval(3, 4)));
  EXPECT_FALSE(Interval(0, 5).Overlaps(Interval(6, 10)));
}

TEST(IntervalTest, SumIsMinkowski) {
  Interval a(1.0, 3.0), b(10.0, 14.0);
  Interval s = a + b;
  EXPECT_DOUBLE_EQ(s.lo(), 11.0);
  EXPECT_DOUBLE_EQ(s.hi(), 17.0);
  EXPECT_DOUBLE_EQ(s.Width(), a.Width() + b.Width());
}

TEST(IntervalTest, SumWithUnboundedIsUnbounded) {
  Interval s = Interval(1.0, 2.0) + Interval::Unbounded();
  EXPECT_TRUE(s.IsUnbounded());
}

TEST(IntervalTest, MaxOfIntervals) {
  Interval m = Interval::Max(Interval(0, 5), Interval(3, 4));
  EXPECT_DOUBLE_EQ(m.lo(), 3.0);
  EXPECT_DOUBLE_EQ(m.hi(), 5.0);
}

TEST(IntervalTest, MinOfIntervals) {
  Interval m = Interval::Min(Interval(0, 5), Interval(3, 4));
  EXPECT_DOUBLE_EQ(m.lo(), 0.0);
  EXPECT_DOUBLE_EQ(m.hi(), 4.0);
}

TEST(IntervalTest, Shifted) {
  Interval iv = Interval(1.0, 3.0).Shifted(10.0);
  EXPECT_DOUBLE_EQ(iv.lo(), 11.0);
  EXPECT_DOUBLE_EQ(iv.hi(), 13.0);
}

TEST(IntervalTest, InflatedGrows) {
  Interval iv = Interval(1.0, 3.0).Inflated(0.5);
  EXPECT_DOUBLE_EQ(iv.lo(), 0.5);
  EXPECT_DOUBLE_EQ(iv.hi(), 3.5);
}

TEST(IntervalTest, InflatedShrinkCollapsesToCenter) {
  Interval iv = Interval(1.0, 3.0).Inflated(-2.0);
  EXPECT_DOUBLE_EQ(iv.lo(), 2.0);
  EXPECT_DOUBLE_EQ(iv.hi(), 2.0);
}

TEST(IntervalTest, EqualityAndToString) {
  EXPECT_EQ(Interval(1, 2), Interval(1, 2));
  EXPECT_NE(Interval(1, 2), Interval(1, 3));
  EXPECT_EQ(Interval(1, 2).ToString(), "[1, 2]");
}

// ---------------------------------------------------------------------------
// Property sweeps: interval algebra invariants over random inputs.
// ---------------------------------------------------------------------------

class IntervalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalPropertyTest, SumContainsSumOfMembers) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    double va = rng.Uniform(-100, 100);
    double vb = rng.Uniform(-100, 100);
    Interval a = Interval::Centered(va, rng.Uniform(0, 10));
    Interval b = Interval::Centered(vb, rng.Uniform(0, 10));
    // Any points inside a and b sum to a point inside a+b.
    double pa = rng.Uniform(a.lo(), a.hi());
    double pb = rng.Uniform(b.lo(), b.hi());
    EXPECT_TRUE((a + b).Contains(pa + pb));
    EXPECT_TRUE((a + b).Contains(va + vb));
  }
}

TEST_P(IntervalPropertyTest, MaxContainsMaxOfMembers) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    double va = rng.Uniform(-100, 100);
    double vb = rng.Uniform(-100, 100);
    Interval a = Interval::Centered(va, rng.Uniform(0, 10));
    Interval b = Interval::Centered(vb, rng.Uniform(0, 10));
    EXPECT_TRUE(Interval::Max(a, b).Contains(std::max(va, vb)));
    EXPECT_TRUE(Interval::Min(a, b).Contains(std::min(va, vb)));
  }
}

TEST_P(IntervalPropertyTest, MaxWidthNeverExceedsWidestInput) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Interval a = Interval::Centered(rng.Uniform(-100, 100),
                                    rng.Uniform(0, 10));
    Interval b = Interval::Centered(rng.Uniform(-100, 100),
                                    rng.Uniform(0, 10));
    Interval m = Interval::Max(a, b);
    EXPECT_LE(m.Width(), std::max(a.Width(), b.Width()) + 1e-12);
  }
}

TEST_P(IntervalPropertyTest, SumIsCommutativeAndAssociative) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Interval a = Interval::Centered(rng.Uniform(-10, 10), rng.Uniform(0, 5));
    Interval b = Interval::Centered(rng.Uniform(-10, 10), rng.Uniform(0, 5));
    Interval c = Interval::Centered(rng.Uniform(-10, 10), rng.Uniform(0, 5));
    EXPECT_EQ(a + b, b + a);
    Interval lhs = (a + b) + c;
    Interval rhs = a + (b + c);
    EXPECT_NEAR(lhs.lo(), rhs.lo(), 1e-9);
    EXPECT_NEAR(lhs.hi(), rhs.hi(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace apc
