#include "core/adaptive_policy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace apc {
namespace {

AdaptivePolicyParams BaseParams() {
  AdaptivePolicyParams p;
  p.cvr = 1.0;
  p.cqr = 2.0;  // theta = 2*1/2 = 1
  p.alpha = 1.0;
  p.initial_width = 8.0;
  return p;
}

RefreshContext ValueRefresh() {
  return {RefreshType::kValueInitiated, true, 0};
}
RefreshContext QueryRefresh() {
  return {RefreshType::kQueryInitiated, false, 0};
}

TEST(AdaptivePolicyParamsTest, ThetaFormula) {
  AdaptivePolicyParams p = BaseParams();
  EXPECT_DOUBLE_EQ(p.Theta(), 1.0);
  p.cvr = 4.0;
  EXPECT_DOUBLE_EQ(p.Theta(), 4.0);
  p.theta_multiplier = 1.0;  // stale-value specialization
  EXPECT_DOUBLE_EQ(p.Theta(), 2.0);
}

TEST(AdaptivePolicyParamsTest, Validation) {
  EXPECT_TRUE(BaseParams().IsValid());
  AdaptivePolicyParams p = BaseParams();
  p.cvr = 0.0;
  EXPECT_FALSE(p.IsValid());
  p = BaseParams();
  p.alpha = -0.1;
  EXPECT_FALSE(p.IsValid());
  p = BaseParams();
  p.delta1 = 1.0;
  p.delta0 = 2.0;  // delta1 < delta0
  EXPECT_FALSE(p.IsValid());
  p = BaseParams();
  p.initial_width = 0.0;
  EXPECT_FALSE(p.IsValid());
}

TEST(AdaptivePolicyTest, ThetaOneAlwaysAdjusts) {
  // theta = 1: both adjustment probabilities are 1, so every refresh
  // deterministically doubles or halves the width (alpha = 1).
  AdaptivePolicy policy(BaseParams(), 1);
  EXPECT_DOUBLE_EQ(policy.GrowProbability(), 1.0);
  EXPECT_DOUBLE_EQ(policy.ShrinkProbability(), 1.0);
  EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, ValueRefresh()), 16.0);
  EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, QueryRefresh()), 4.0);
}

TEST(AdaptivePolicyTest, AlphaControlsMagnitude) {
  AdaptivePolicyParams p = BaseParams();
  p.alpha = 0.5;
  AdaptivePolicy policy(p, 1);
  EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, ValueRefresh()), 12.0);
  EXPECT_DOUBLE_EQ(policy.NextWidth(12.0, QueryRefresh()), 8.0);
}

TEST(AdaptivePolicyTest, AlphaZeroFreezesWidth) {
  AdaptivePolicyParams p = BaseParams();
  p.alpha = 0.0;
  AdaptivePolicy policy(p, 1);
  EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, ValueRefresh()), 8.0);
  EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, QueryRefresh()), 8.0);
}

TEST(AdaptivePolicyTest, ThetaAboveOneAlwaysGrowsSometimesShrinks) {
  AdaptivePolicyParams p = BaseParams();
  p.cvr = 4.0;  // theta = 4
  AdaptivePolicy policy(p, 99);
  EXPECT_DOUBLE_EQ(policy.GrowProbability(), 1.0);
  EXPECT_DOUBLE_EQ(policy.ShrinkProbability(), 0.25);

  // Growth is deterministic.
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, ValueRefresh()), 16.0);
  }
  // Shrinks happen at roughly rate 1/theta.
  int shrinks = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (policy.NextWidth(8.0, QueryRefresh()) < 8.0) ++shrinks;
  }
  EXPECT_NEAR(static_cast<double>(shrinks) / n, 0.25, 0.02);
}

TEST(AdaptivePolicyTest, ThetaBelowOneAlwaysShrinksSometimesGrows) {
  AdaptivePolicyParams p = BaseParams();
  p.cvr = 0.5;  // theta = 0.5
  AdaptivePolicy policy(p, 99);
  EXPECT_DOUBLE_EQ(policy.GrowProbability(), 0.5);
  EXPECT_DOUBLE_EQ(policy.ShrinkProbability(), 1.0);

  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(policy.NextWidth(8.0, QueryRefresh()), 4.0);
  }
  int grows = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (policy.NextWidth(8.0, ValueRefresh()) > 8.0) ++grows;
  }
  EXPECT_NEAR(static_cast<double>(grows) / n, 0.5, 0.02);
}

TEST(AdaptivePolicyTest, ThresholdSnapping) {
  AdaptivePolicyParams p = BaseParams();
  p.delta0 = 1.0;
  p.delta1 = 100.0;
  AdaptivePolicy policy(p, 1);
  EXPECT_DOUBLE_EQ(policy.EffectiveWidth(0.5), 0.0);     // below delta0
  EXPECT_DOUBLE_EQ(policy.EffectiveWidth(1.0), 1.0);     // at delta0: kept
  EXPECT_DOUBLE_EQ(policy.EffectiveWidth(50.0), 50.0);   // in between
  EXPECT_EQ(policy.EffectiveWidth(100.0), kInfinity);    // at delta1
  EXPECT_EQ(policy.EffectiveWidth(1e6), kInfinity);
}

TEST(AdaptivePolicyTest, Delta1EqualsDelta0IsExactOrNothing) {
  AdaptivePolicyParams p = BaseParams();
  p.delta0 = 1e3;
  p.delta1 = 1e3;
  AdaptivePolicy policy(p, 1);
  EXPECT_DOUBLE_EQ(policy.EffectiveWidth(999.0), 0.0);
  EXPECT_EQ(policy.EffectiveWidth(1000.0), kInfinity);
}

TEST(AdaptivePolicyTest, RawWidthRetainedAcrossThresholds) {
  // The raw width keeps adjusting below delta0 / above delta1 (the paper:
  // the source "still retains the original width").
  AdaptivePolicyParams p = BaseParams();
  p.delta0 = 4.0;
  AdaptivePolicy policy(p, 1);
  double raw = 2.0;  // effective width 0 (exact copy)
  EXPECT_DOUBLE_EQ(policy.EffectiveWidth(raw), 0.0);
  raw = policy.NextWidth(raw, ValueRefresh());
  EXPECT_DOUBLE_EQ(raw, 4.0);  // grew from the retained 2.0, not from 0
  EXPECT_DOUBLE_EQ(policy.EffectiveWidth(raw), 4.0);
}

TEST(AdaptivePolicyTest, MakeApproxSnapsToExact) {
  AdaptivePolicyParams p = BaseParams();
  p.delta0 = 4.0;
  AdaptivePolicy policy(p, 1);
  CachedApprox approx = policy.MakeApprox(10.0, 2.0, 0);
  EXPECT_TRUE(approx.base.IsExact());
  EXPECT_TRUE(approx.base.Contains(10.0));
}

TEST(AdaptivePolicyTest, MakeApproxSnapsToUnbounded) {
  AdaptivePolicyParams p = BaseParams();
  p.delta1 = 16.0;
  AdaptivePolicy policy(p, 1);
  CachedApprox approx = policy.MakeApprox(10.0, 20.0, 0);
  EXPECT_TRUE(approx.base.IsUnbounded());
}

TEST(AdaptivePolicyTest, WidthNeverUnderflowsToZero) {
  AdaptivePolicy policy(BaseParams(), 1);
  double w = 1.0;
  for (int i = 0; i < 5000; ++i) w = policy.NextWidth(w, QueryRefresh());
  EXPECT_GT(w, 0.0);
  // And it can recover.
  for (int i = 0; i < 5000; ++i) w = policy.NextWidth(w, ValueRefresh());
  EXPECT_GT(w, 1.0);
  EXPECT_TRUE(std::isfinite(w));
}

TEST(AdaptivePolicyTest, WidthNeverOverflowsToInfinity) {
  AdaptivePolicy policy(BaseParams(), 1);
  double w = 1.0;
  for (int i = 0; i < 5000; ++i) w = policy.NextWidth(w, ValueRefresh());
  EXPECT_TRUE(std::isfinite(w));
}

TEST(AdaptivePolicyTest, CloneForksIndependentStream) {
  AdaptivePolicyParams p = BaseParams();
  p.cvr = 4.0;  // theta = 4 so shrink decisions are random
  AdaptivePolicy policy(p, 7);
  auto clone = policy.Clone();
  // Clone has the same parameters.
  EXPECT_DOUBLE_EQ(clone->InitialWidth(), p.initial_width);
  // Streams diverge: run both and check they do not mirror each other
  // exactly (probability of full agreement over 64 random decisions ~0).
  int agreements = 0;
  for (int i = 0; i < 64; ++i) {
    double a = policy.NextWidth(8.0, QueryRefresh());
    double b = clone->NextWidth(8.0, QueryRefresh());
    if (a == b) ++agreements;
  }
  EXPECT_LT(agreements, 64);
}

// ---------------------------------------------------------------------------
// Property sweep: the stationary balance of the width process. For theta=1,
// equal numbers of value- and query-initiated refreshes leave the width
// unchanged in expectation (multiplicative symmetric walk).
// ---------------------------------------------------------------------------

class AdaptivePolicyThetaTest : public ::testing::TestWithParam<double> {};

TEST_P(AdaptivePolicyThetaTest, AdjustmentProbabilitiesMatchTheta) {
  AdaptivePolicyParams p = BaseParams();
  p.cqr = 2.0;
  p.cvr = GetParam();  // theta = cvr with cqr=2
  AdaptivePolicy policy(p, 1234);
  double theta = p.Theta();

  const int n = 40000;
  int grows = 0, shrinks = 0;
  for (int i = 0; i < n; ++i) {
    if (policy.NextWidth(8.0, ValueRefresh()) > 8.0) ++grows;
    if (policy.NextWidth(8.0, QueryRefresh()) < 8.0) ++shrinks;
  }
  EXPECT_NEAR(static_cast<double>(grows) / n, std::min(theta, 1.0), 0.02);
  EXPECT_NEAR(static_cast<double>(shrinks) / n, std::min(1.0 / theta, 1.0),
              0.02);
}

TEST_P(AdaptivePolicyThetaTest, ExpectedDriftBalancesAtTheta) {
  // In the stationary regime the algorithm equalizes theta*Pvr = Pqr. Feed
  // the policy refreshes in exactly that ratio and verify the log-width
  // drift is ~0: grows happen with probability min(theta,1) on a fraction
  // pvr of events, shrinks with min(1/theta,1) on pqr of events, and
  // theta*pvr = pqr makes expected grow count == expected shrink count.
  AdaptivePolicyParams p = BaseParams();
  p.cqr = 2.0;
  p.cvr = GetParam();
  AdaptivePolicy policy(p, 99);
  double theta = p.Theta();
  double pvr = 1.0 / (1.0 + theta);  // so pqr = theta*pvr, pvr+pqr=1
  Rng rng(5);

  double log_w = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    bool is_value = rng.Bernoulli(pvr);
    double w0 = 8.0;
    double w1 = policy.NextWidth(
        w0, is_value ? ValueRefresh() : QueryRefresh());
    log_w += std::log(w1 / w0);
  }
  // Mean drift per event should be close to zero relative to the step
  // magnitude log(2).
  EXPECT_NEAR(log_w / n, 0.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Thetas, AdaptivePolicyThetaTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace apc
