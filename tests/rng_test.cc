#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace apc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.Uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t x = rng.UniformInt(0, 9);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 9);
    saw_lo = saw_lo || x == 0;
    saw_hi = saw_hi || x == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    // Out-of-range probabilities are clamped, not UB.
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, ParetoRespectsMinimum) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(1.5, 3.0), 3.0);
  }
}

TEST(RngTest, ParetoIsHeavyTailed) {
  // With shape 1.2 the sample max over 10k draws should dwarf the median.
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.Pareto(1.2, 1.0));
  std::sort(xs.begin(), xs.end());
  double median = xs[xs.size() / 2];
  double max = xs.back();
  EXPECT_GT(max / median, 50.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0, sumsq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian(10.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream should not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(37), b(37);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ca.NextUint64(), cb.NextUint64());
  }
}

}  // namespace
}  // namespace apc
