#include "cache/multi_system.h"

#include <gtest/gtest.h>

#include "data/random_walk.h"
#include "util/rng.h"

namespace apc {
namespace {

MultiSystemConfig Config(int caches = 2) {
  MultiSystemConfig config;
  config.costs = {1.0, 2.0};
  config.num_caches = caches;
  config.policy.alpha = 1.0;
  config.policy.initial_width = 8.0;
  return config;
}

std::vector<std::unique_ptr<UpdateStream>> ConstantStreams(
    std::initializer_list<double> values) {
  std::vector<std::unique_ptr<UpdateStream>> streams;
  for (double v : values) {
    streams.push_back(
        std::make_unique<SeriesStream>(std::vector<double>(2000, v)));
  }
  return streams;
}

std::vector<std::unique_ptr<UpdateStream>> WalkStreams(int n,
                                                       uint64_t seed) {
  RandomWalkParams walk;
  std::vector<std::unique_ptr<UpdateStream>> streams;
  Rng seeder(seed);
  for (int i = 0; i < n; ++i) {
    streams.push_back(
        std::make_unique<RandomWalkStream>(walk, seeder.NextUint64()));
  }
  return streams;
}

TEST(MultiSystemConfigTest, Validation) {
  EXPECT_TRUE(Config().IsValid());
  MultiSystemConfig bad = Config();
  bad.num_caches = 0;
  EXPECT_FALSE(bad.IsValid());
}

TEST(MultiCacheSystemTest, InitialApproximationsPerCache) {
  MultiCacheSystem system(Config(3), ConstantStreams({5.0, 9.0}), 1);
  for (int cache = 0; cache < 3; ++cache) {
    EXPECT_TRUE(system.interval(cache, 0).Contains(5.0));
    EXPECT_TRUE(system.interval(cache, 1).Contains(9.0));
  }
}

TEST(MultiCacheSystemTest, PushGoesOnlyToInvalidatedCaches) {
  // Cache 0 pulls value 0 tightly (narrow interval), cache 1 never reads
  // (stays wide). A moderate jump invalidates only cache 0's interval.
  MultiCacheSystem system(Config(2), ConstantStreams({5.0}), 1);
  Query q{AggregateKind::kSum, {0}, /*constraint=*/1.0};
  system.ExecuteQuery(0, q, 1);  // cache 0's width -> 4
  EXPECT_LT(system.raw_width(0, 0), system.raw_width(1, 0));

  // Jump by 3: outside cache 0's [3, 7], inside cache 1's [1, 9].
  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.push_back(std::make_unique<SeriesStream>(
      std::vector<double>{5.0, 8.0}));
  MultiCacheSystem sys2(Config(2), std::move(streams), 1);
  Query tight{AggregateKind::kSum, {0}, 1.0};
  sys2.ExecuteQuery(0, tight, 0);  // cache 0 width 4 -> interval [3,7]
  sys2.costs().BeginMeasurement(0);
  sys2.Tick(1);                    // value 8 escapes cache 0 only
  EXPECT_EQ(sys2.costs().value_refreshes(), 1);
  EXPECT_TRUE(sys2.interval(0, 0).Contains(8.0));
  EXPECT_TRUE(sys2.interval(1, 0).Contains(8.0));
}

TEST(MultiCacheSystemTest, QueriesRefreshOnlyTheirCache) {
  MultiCacheSystem system(Config(2), ConstantStreams({5.0}), 1);
  double before = system.raw_width(1, 0);
  Query q{AggregateKind::kSum, {0}, /*constraint=*/0.5};
  system.ExecuteQuery(0, q, 1);
  EXPECT_LT(system.raw_width(0, 0), before);   // cache 0 shrank
  EXPECT_DOUBLE_EQ(system.raw_width(1, 0), before);  // cache 1 untouched
}

TEST(MultiCacheSystemTest, PerCacheWidthsDivergeWithWorkloads) {
  // Cache 0 reads tightly every tick; cache 1 loosely and rarely. Their
  // converged widths for the same value must differ substantially.
  MultiCacheSystem system(Config(2), WalkStreams(1, 3), 5);
  for (int64_t t = 1; t <= 20000; ++t) {
    system.Tick(t);
    Query tight{AggregateKind::kSum, {0}, 2.0};
    system.ExecuteQuery(0, tight, t);
    if (t % 50 == 0) {
      Query loose{AggregateKind::kSum, {0}, 200.0};
      system.ExecuteQuery(1, loose, t);
    }
  }
  EXPECT_LT(system.raw_width(0, 0) * 4.0, system.raw_width(1, 0));
}

TEST(MultiCacheSystemTest, AnswersContainTruthAndMeetConstraints) {
  MultiCacheSystem system(Config(3), WalkStreams(4, 7), 9);
  Rng rng(11);
  for (int64_t t = 1; t <= 3000; ++t) {
    system.Tick(t);
    int cache = static_cast<int>(rng.UniformInt(0, 2));
    Query q;
    q.kind = static_cast<AggregateKind>(rng.UniformInt(0, 3));
    q.source_ids = {0, 1, 2, 3};
    q.constraint = rng.Uniform(0.0, 25.0);
    double truth;
    {
      double sum = 0, mx = -kInfinity, mn = kInfinity;
      for (int id : q.source_ids) {
        double v = system.exact_value(id);
        sum += v;
        mx = std::max(mx, v);
        mn = std::min(mn, v);
      }
      switch (q.kind) {
        case AggregateKind::kSum: truth = sum; break;
        case AggregateKind::kMax: truth = mx; break;
        case AggregateKind::kMin: truth = mn; break;
        case AggregateKind::kAvg: truth = sum / 4.0; break;
        default: truth = sum;
      }
    }
    Interval answer = system.ExecuteQuery(cache, q, t);
    ASSERT_LE(answer.Width(), q.constraint + 1e-9) << "t=" << t;
    ASSERT_TRUE(answer.Contains(truth)) << "t=" << t;
  }
}

TEST(MultiCacheSystemTest, ValidityInvariantAcrossAllCaches) {
  MultiCacheSystem system(Config(3), WalkStreams(3, 13), 15);
  for (int64_t t = 1; t <= 2000; ++t) {
    system.Tick(t);
    for (int cache = 0; cache < 3; ++cache) {
      for (int id = 0; id < 3; ++id) {
        ASSERT_TRUE(system.interval(cache, id)
                        .Contains(system.exact_value(id)))
            << "cache=" << cache << " id=" << id << " t=" << t;
      }
    }
  }
}

TEST(MultiCacheSystemTest, MoreCachesMorePushCost) {
  auto run = [&](int caches) {
    MultiCacheSystem system(Config(caches), WalkStreams(2, 17), 19);
    system.costs().BeginMeasurement(0);
    for (int64_t t = 1; t <= 5000; ++t) system.Tick(t);
    system.costs().EndMeasurement(5000);
    return system.costs().CostRate();
  };
  // With no queries, each cache's interval only grows... it still incurs
  // pushes until grown wide; more caches => proportionally more pushes.
  EXPECT_GT(run(4), run(1));
}

}  // namespace
}  // namespace apc
