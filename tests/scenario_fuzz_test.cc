// Randomized lockstep fuzz: the single-shard engine against the
// sequential CacheSystem under GenerateFuzzOps sequences
// (scenario_fuzz_common.h). Both sides are built from seed-identical
// source populations and fed the identical op stream with a unique
// logical time per op; every read must return the same interval bit for
// bit and the run must account the same charges — across seeds and across
// all three read-lock modes. A point read on the engine mirrors as a
// single-id SUM on the sequential side (the same refresh decision by
// construction), so the fuzz also pins the PointRead/ExecuteQuery
// equivalence.
#include <gtest/gtest.h>

#include <vector>

#include "cache/system.h"
#include "query/aggregate.h"
#include "runtime/sharded_engine.h"
#include "runtime/workload_driver.h"
#include "scenario_fuzz_common.h"

namespace apc {
namespace {

constexpr int kSources = 10;
constexpr int kOps = 400;

void RunFuzzLockstep(uint64_t seed, ReadLockMode mode) {
  std::vector<FuzzOp> ops = GenerateFuzzOps(kOps, kSources, seed);

  SystemConfig sys_config;
  sys_config.cache_capacity = kSources;
  AdaptivePolicyParams policy;
  RandomWalkParams walk;

  CacheSystem sequential(
      sys_config, BuildRandomWalkSources(kSources, walk, policy, seed), seed);
  sequential.PopulateInitial(0);
  sequential.costs().BeginMeasurement(0);

  EngineConfig engine_config;
  engine_config.system = sys_config;
  engine_config.num_shards = 1;
  engine_config.seed = seed;
  engine_config.read_lock_mode = mode;
  ShardedEngine engine(engine_config,
                       BuildRandomWalkSources(kSources, walk, policy, seed));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  int64_t now = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    const FuzzOp& op = ops[i];
    ++now;  // unique logical time per op
    switch (op.kind) {
      case FuzzOp::kTick:
        sequential.Tick(now);
        engine.TickAll(now);
        break;
      case FuzzOp::kAggRead: {
        Interval expected = sequential.ExecuteQuery(op.query, now);
        Interval actual = engine.ExecuteQuery(op.query, now);
        ASSERT_EQ(actual, expected)
            << "aggregate diverged at op " << i << " seed " << seed
            << " mode " << static_cast<int>(mode);
        ASSERT_LE(actual.Width(),
                  op.query.constraint + 1e-9 * (1.0 + op.query.constraint));
        break;
      }
      case FuzzOp::kPointRead: {
        Query mirror;
        mirror.kind = AggregateKind::kSum;
        mirror.source_ids = {op.id};
        mirror.constraint = op.width;
        Interval expected = sequential.ExecuteQuery(mirror, now);
        Interval actual = engine.PointRead(op.id, op.width, now);
        ASSERT_EQ(actual, expected)
            << "point read diverged at op " << i << " seed " << seed
            << " mode " << static_cast<int>(mode);
        break;
      }
    }
  }
  sequential.costs().EndMeasurement(now);
  engine.EndMeasurement(now);

  EngineCosts costs = engine.TotalCosts();
  EXPECT_EQ(costs.value_refreshes, sequential.costs().value_refreshes());
  EXPECT_EQ(costs.query_refreshes, sequential.costs().query_refreshes());
  EXPECT_DOUBLE_EQ(costs.total_cost, sequential.costs().total_cost());
  EXPECT_DOUBLE_EQ(engine.MeanRawWidth(), sequential.MeanRawWidth());
  // The fuzz must have exercised the protocol, not ticked in place.
  EXPECT_GT(sequential.costs().query_refreshes() +
                sequential.costs().value_refreshes(),
            0);
}

TEST(ScenarioFuzzTest, LockstepParityAcrossSeeds) {
  for (uint64_t seed : {11u, 29u, 503u, 8191u}) {
    RunFuzzLockstep(seed, ReadLockMode::kSeqlock);
  }
}

TEST(ScenarioFuzzTest, LockstepParityAcrossReadModes) {
  for (ReadLockMode mode : {ReadLockMode::kShared, ReadLockMode::kExclusive}) {
    RunFuzzLockstep(137, mode);
  }
}

}  // namespace
}  // namespace apc
