#include "hierarchy/hierarchy.h"

#include <gtest/gtest.h>

#include "data/random_walk.h"
#include "util/rng.h"

namespace apc {
namespace {

HierarchyConfig SmallConfig(int sources = 3, int edges = 2) {
  HierarchyConfig config;
  config.num_sources = sources;
  config.num_edges = edges;
  config.wan = {4.0, 8.0};
  config.lan = {1.0, 2.0};
  config.regional_policy.alpha = 1.0;
  config.regional_policy.initial_width = 4.0;
  config.edge_policy.alpha = 1.0;
  config.edge_policy.initial_width = 8.0;
  return config;
}

std::vector<std::unique_ptr<UpdateStream>> ConstantStreams(
    std::initializer_list<double> values) {
  std::vector<std::unique_ptr<UpdateStream>> streams;
  for (double v : values) {
    streams.push_back(
        std::make_unique<SeriesStream>(std::vector<double>(500, v)));
  }
  return streams;
}

std::vector<std::unique_ptr<UpdateStream>> WalkStreams(int n,
                                                       uint64_t seed) {
  RandomWalkParams walk;
  std::vector<std::unique_ptr<UpdateStream>> streams;
  Rng seeder(seed);
  for (int i = 0; i < n; ++i) {
    streams.push_back(
        std::make_unique<RandomWalkStream>(walk, seeder.NextUint64()));
  }
  return streams;
}

TEST(HierarchyConfigTest, Validation) {
  EXPECT_TRUE(SmallConfig().IsValid());
  HierarchyConfig bad = SmallConfig();
  bad.num_edges = 0;
  EXPECT_FALSE(bad.IsValid());
  bad = SmallConfig();
  bad.wan.cvr = 0.0;
  EXPECT_FALSE(bad.IsValid());
}

TEST(HierarchicalSystemTest, InitialIntervalsNestAndContainValues) {
  HierarchicalSystem system(SmallConfig(), ConstantStreams({1.0, 5.0, 9.0}),
                            1);
  for (int id = 0; id < 3; ++id) {
    EXPECT_TRUE(system.regional_interval(id).Contains(
        system.exact_value(id)));
    for (int edge = 0; edge < 2; ++edge) {
      EXPECT_TRUE(system.edge_interval(edge, id)
                      .Contains(system.regional_interval(id)));
    }
  }
}

TEST(HierarchicalSystemTest, StableValuesCostNothing) {
  HierarchicalSystem system(SmallConfig(), ConstantStreams({1.0, 5.0, 9.0}),
                            1);
  system.BeginMeasurement(0);
  for (int64_t t = 1; t <= 100; ++t) system.Tick(t);
  EXPECT_EQ(system.wan_costs().value_refreshes(), 0);
  EXPECT_EQ(system.lan_costs().value_refreshes(), 0);
}

TEST(HierarchicalSystemTest, EscapeCascadesThroughLevels) {
  // Value jumps far outside every interval: one WAN push and one LAN push
  // per edge.
  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.push_back(std::make_unique<SeriesStream>(
      std::vector<double>{0.0, 1000.0, 1000.0}));
  HierarchyConfig config = SmallConfig(/*sources=*/1, /*edges=*/2);
  HierarchicalSystem system(config, std::move(streams), 1);
  system.BeginMeasurement(0);
  system.Tick(1);
  EXPECT_EQ(system.wan_costs().value_refreshes(), 1);
  EXPECT_EQ(system.lan_costs().value_refreshes(), 2);
  // Everything nests again afterwards.
  EXPECT_TRUE(system.regional_interval(0).Contains(1000.0));
  for (int edge = 0; edge < 2; ++edge) {
    EXPECT_TRUE(
        system.edge_interval(edge, 0).Contains(system.regional_interval(0)));
  }
}

TEST(HierarchicalSystemTest, LocalReadIsFree) {
  HierarchicalSystem system(SmallConfig(), ConstantStreams({5.0, 6.0, 7.0}),
                            1);
  system.BeginMeasurement(0);
  // Edge width is 8; a loose constraint is served locally.
  Interval answer = system.Read(0, 0, /*constraint=*/10.0, 1);
  EXPECT_EQ(system.lan_costs().query_refreshes(), 0);
  EXPECT_EQ(system.wan_costs().query_refreshes(), 0);
  EXPECT_TRUE(answer.Contains(5.0));
}

TEST(HierarchicalSystemTest, MediumReadStopsAtRegional) {
  HierarchicalSystem system(SmallConfig(), ConstantStreams({5.0, 6.0, 7.0}),
                            1);
  system.BeginMeasurement(0);
  // Regional width 4, edge width 8: a constraint of 5 needs the regional
  // interval but not the source.
  Interval answer = system.Read(0, 0, /*constraint=*/5.0, 1);
  EXPECT_EQ(system.lan_costs().query_refreshes(), 1);
  EXPECT_EQ(system.wan_costs().query_refreshes(), 0);
  EXPECT_LE(answer.Width(), 5.0);
  EXPECT_TRUE(answer.Contains(5.0));
}

TEST(HierarchicalSystemTest, TightReadEscalatesToSource) {
  HierarchicalSystem system(SmallConfig(), ConstantStreams({5.0, 6.0, 7.0}),
                            1);
  system.BeginMeasurement(0);
  Interval answer = system.Read(0, 0, /*constraint=*/1.0, 1);
  EXPECT_EQ(system.lan_costs().query_refreshes(), 1);
  EXPECT_EQ(system.wan_costs().query_refreshes(), 1);
  EXPECT_TRUE(answer.IsExact());
  EXPECT_TRUE(answer.Contains(5.0));
}

TEST(HierarchicalSystemTest, ReadAnswersAlwaysMeetConstraint) {
  HierarchicalSystem system(SmallConfig(5, 3), WalkStreams(5, 3), 9);
  Rng rng(4);
  for (int64_t t = 1; t <= 2000; ++t) {
    system.Tick(t);
    int edge = static_cast<int>(rng.UniformInt(0, 2));
    int id = static_cast<int>(rng.UniformInt(0, 4));
    double constraint = rng.Uniform(0.0, 30.0);
    Interval answer = system.Read(edge, id, constraint, t);
    ASSERT_LE(answer.Width(), constraint + 1e-9);
    ASSERT_TRUE(answer.Contains(system.exact_value(id)));
  }
}

TEST(HierarchicalSystemTest, NestingInvariantHoldsUnderChurn) {
  HierarchicalSystem system(SmallConfig(4, 3), WalkStreams(4, 5), 11);
  Rng rng(6);
  for (int64_t t = 1; t <= 2000; ++t) {
    system.Tick(t);
    if (t % 3 == 0) {
      system.Read(static_cast<int>(rng.UniformInt(0, 2)),
                  static_cast<int>(rng.UniformInt(0, 3)),
                  rng.Uniform(0.0, 20.0), t);
    }
    for (int id = 0; id < 4; ++id) {
      ASSERT_TRUE(
          system.regional_interval(id).Contains(system.exact_value(id)))
          << "regional validity broken at t=" << t;
      for (int edge = 0; edge < 3; ++edge) {
        ASSERT_TRUE(system.edge_interval(edge, id)
                        .Contains(system.regional_interval(id)))
            << "nesting broken at t=" << t;
      }
    }
  }
}

TEST(HierarchicalSystemTest, EdgeNeverMorePreciseThanParent) {
  // Hammer one edge with exact-precision reads: its raw width shrinks, but
  // the SHIPPED interval width stays >= the regional width (the derived-
  // precision effect of paper §5).
  HierarchicalSystem system(SmallConfig(1, 2), WalkStreams(1, 7), 13);
  for (int64_t t = 1; t <= 500; ++t) {
    system.Tick(t);
    system.Read(0, 0, /*constraint=*/0.0, t);
  }
  EXPECT_GE(system.edge_interval(0, 0).Width(),
            system.regional_interval(0).Width() - 1e-9);
}

TEST(HierarchicalSystemTest, SharedEdgesAmortizeWanTraffic) {
  // With many edges reading the same values, WAN cost should grow far
  // slower than total read volume: the regional cache absorbs it.
  auto run = [&](int edges) {
    HierarchicalSystem system(SmallConfig(5, edges), WalkStreams(5, 21),
                              17);
    system.BeginMeasurement(0);
    Rng rng(8);
    for (int64_t t = 1; t <= 4000; ++t) {
      system.Tick(t);
      for (int e = 0; e < edges; ++e) {
        system.Read(e, static_cast<int>(rng.UniformInt(0, 4)),
                    rng.Uniform(5.0, 25.0), t);
      }
    }
    system.EndMeasurement(4000);
    return system.wan_costs().CostRate();
  };
  double wan1 = run(1);
  double wan8 = run(8);
  // 8x the read volume should cost far less than 8x the WAN traffic.
  EXPECT_LT(wan8, 4.0 * wan1);
}

}  // namespace
}  // namespace apc
