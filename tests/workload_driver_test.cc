#include "runtime/workload_driver.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace apc {
namespace {

constexpr uint64_t kSeed = 31;
constexpr int kSources = 16;

std::vector<std::unique_ptr<Source>> MakeSources(int n) {
  return BuildRandomWalkSources(n, RandomWalkParams{},
                                AdaptivePolicyParams{}, kSeed);
}

QueryWorkloadParams MakeWorkload(int num_sources) {
  QueryWorkloadParams params;
  params.num_sources = num_sources;
  params.group_size = 4;
  params.max_fraction = 0.25;
  params.min_fraction = 0.25;
  params.constraints.avg = 20.0;
  params.constraints.rho = 1.0;
  return params;
}

ShardedEngine MakeEngine(int shards, size_t bus_capacity = 1024) {
  EngineConfig config;
  config.num_shards = shards;
  config.system.cache_capacity = kSources * 3 / 4;
  config.bus_capacity = bus_capacity;
  return ShardedEngine(config, MakeSources(kSources));
}

// Satellite fix: report.ticks (and the EndMeasurement clock feeding
// CostRate()) must count only updates the bus ACCEPTED. Closing the bus
// mid-run — legal through the public API — used to leave the clock
// advanced past a rejected push. The invariant below holds for every
// interleaving: each accepted tick-all event applies exactly one update
// per source, so updates_applied == ticks * num_sources.
TEST(WorkloadDriverTest, TickCountOnlyCountsAcceptedPushes) {
  ShardedEngine engine = MakeEngine(2, /*bus_capacity=*/4);

  DriverConfig config;
  config.num_threads = 2;
  config.queries_per_thread = 4000;
  config.workload = MakeWorkload(kSources);
  config.run_updates = true;
  config.update_burst = 64;  // bursts larger than the bus: backpressure
  config.seed = kSeed;

  DriverReport report;
  std::thread runner(
      [&] { report = RunWorkload(engine, config); });
  // Close the bus while the updater is streaming; its in-flight push is
  // rejected and must not count.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  engine.bus().Close();
  runner.join();

  EXPECT_EQ(report.queries, 2 * 4000);
  EXPECT_EQ(engine.counters().updates_applied.load(),
            report.ticks * kSources);
  EXPECT_EQ(report.costs.measured_ticks, report.ticks);
}

// The invariant also holds for a run that shuts down normally.
TEST(WorkloadDriverTest, TickAccountingConsistentOnCleanShutdown) {
  ShardedEngine engine = MakeEngine(2);

  DriverConfig config;
  config.num_threads = 2;
  config.queries_per_thread = 500;
  config.workload = MakeWorkload(kSources);
  config.run_updates = true;
  config.seed = kSeed;

  DriverReport report = RunWorkload(engine, config);
  EXPECT_GT(report.ticks, 0);
  EXPECT_EQ(engine.counters().updates_applied.load(),
            report.ticks * kSources);
  EXPECT_EQ(report.costs.measured_ticks, report.ticks);
  EXPECT_EQ(report.violations, 0);
}

TEST(WorkloadDriverTest, PhaseScheduleRunsEveryPhase) {
  ShardedEngine engine = MakeEngine(4);

  DriverConfig config;
  config.num_threads = 3;
  config.workload = MakeWorkload(kSources);
  config.run_updates = true;
  config.seed = kSeed;
  config.phases.resize(3);
  config.phases[0] = {/*queries_per_thread=*/200,
                      /*point_read_fraction=*/0.9, /*zipf_s=*/1.2,
                      /*update_burst=*/4};
  config.phases[1] = {/*queries_per_thread=*/100,
                      /*point_read_fraction=*/0.1, /*zipf_s=*/0.0,
                      /*update_burst=*/32};
  config.phases[2] = {/*queries_per_thread=*/150,
                      /*point_read_fraction=*/1.0, /*zipf_s=*/0.6,
                      /*update_burst=*/8};

  DriverReport report = RunWorkload(engine, config);
  EXPECT_EQ(report.queries, 3 * (200 + 100 + 150));
  EXPECT_EQ(engine.counters().queries_executed.load(), report.queries);
  EXPECT_EQ(report.violations, 0)
      << "phase shifts must not break the precision guarantee";
  EXPECT_EQ(engine.counters().updates_applied.load(),
            report.ticks * kSources);
}

// update_burst == 0 pauses the updater for the phase: a run whose only
// phase is paused streams no ticks even though run_updates is on.
TEST(WorkloadDriverTest, PausedUpdatePhaseStreamsNoTicks) {
  ShardedEngine engine = MakeEngine(2);

  DriverConfig config;
  config.num_threads = 2;
  config.workload = MakeWorkload(kSources);
  config.run_updates = true;
  config.seed = kSeed;
  config.phases.resize(1);
  config.phases[0] = {/*queries_per_thread=*/300,
                      /*point_read_fraction=*/0.5, /*zipf_s=*/0.0,
                      /*update_burst=*/0};

  DriverReport report = RunWorkload(engine, config);
  EXPECT_EQ(report.queries, 2 * 300);
  EXPECT_EQ(report.ticks, 0);
  EXPECT_EQ(engine.counters().updates_applied.load(), 0);
  EXPECT_EQ(report.violations, 0);
}

TEST(WorkloadDriverTest, InvalidPhaseYieldsZeroReport) {
  ShardedEngine engine = MakeEngine(1);

  DriverConfig config;
  config.num_threads = 1;
  config.workload = MakeWorkload(kSources);
  config.phases.resize(1);
  config.phases[0] = {/*queries_per_thread=*/0,  // invalid
                      /*point_read_fraction=*/0.5, /*zipf_s=*/0.0,
                      /*update_burst=*/8};

  DriverReport report = RunWorkload(engine, config);
  EXPECT_EQ(report.queries, 0);
  EXPECT_EQ(engine.counters().queries_executed.load(), 0)
      << "an invalid config must not touch the engine";
}

TEST(WorkloadDriverTest, ZipfSkewedRunKeepsPrecisionGuarantee) {
  ShardedEngine engine = MakeEngine(4);

  DriverConfig config;
  config.num_threads = 4;
  config.queries_per_thread = 400;
  config.workload = MakeWorkload(kSources);
  config.workload.zipf_s = 1.3;  // hot-key contention
  config.run_updates = true;
  config.point_read_fraction = 0.9;
  config.seed = kSeed;

  DriverReport report = RunWorkload(engine, config);
  EXPECT_EQ(report.queries, 4 * 400);
  EXPECT_EQ(report.violations, 0);
  EXPECT_EQ(engine.counters().queries_executed.load(), report.queries);
}

TEST(WorkloadDriverTest, InvalidSubscriptionConfigYieldsZeroReport) {
  SubscriptionWorkloadConfig config;
  config.num_subscribers = 0;  // invalid
  SubscriptionDriverReport report = RunSubscriptionWorkload(config);
  EXPECT_EQ(report.subscriptions, 0);
  EXPECT_EQ(report.notifications, 0);
  EXPECT_EQ(report.polls, 0);
}

// The subscription phase end to end: subscriber count × churn × δ_sub
// distribution, with the mid-run no-missed-violation checker and the
// polling-equivalent replay — the savings inequality the benches gate on
// is asserted here, at the source of the numbers.
TEST(WorkloadDriverTest, SubscriptionWorkloadBeatsPollingEquivalent) {
  SubscriptionWorkloadConfig config;
  config.engine.num_shards = 2;
  config.engine.system.cache_capacity = 24;
  config.engine.seed = kSeed;
  config.engine.subscription_hub_capacity = 1 << 14;
  config.num_sources = 24;
  config.num_subscribers = 16;
  config.subscriber_threads = 1;  // ordering checkable
  config.point_fraction = 0.75;
  config.group_size = 6;
  config.deltas = {6.0, 0.5};
  config.ticks = 200;
  config.churn_ops = 4;
  config.reprecision_ops = 4;
  config.seed = kSeed;

  SubscriptionDriverReport report = RunSubscriptionWorkload(config);
  EXPECT_EQ(report.subscriptions, 16);
  EXPECT_EQ(report.ticks, 200);
  EXPECT_GT(report.notifications, 0);
  EXPECT_GE(report.delivered, report.notifications);
  EXPECT_EQ(report.order_regressions, 0);
  EXPECT_EQ(report.missed_violations, 0);
  EXPECT_EQ(report.churn_ops, 4);
  EXPECT_EQ(report.reprecision_ops, 4);
  // The measured polling equivalent: one poll per subscription per tick.
  EXPECT_EQ(report.polls, 200 * 16);
  EXPECT_GT(report.polling_equivalent_cost, 0.0);
  // The headline inequality: standing queries never cost more than the
  // polling workload they replace.
  EXPECT_LE(report.subscription_total_cost, report.polling_equivalent_cost);
  // And the push traffic is far below one message per poll.
  EXPECT_LT(report.notifications, report.polls);
}

}  // namespace
}  // namespace apc
