// Tests for the MIN and AVG bounded aggregates that round out the paper's
// SUM/MAX workload.
#include <gtest/gtest.h>

#include <algorithm>

#include "query/aggregate.h"
#include "util/rng.h"

namespace apc {
namespace {

std::vector<QueryItem> Items(std::initializer_list<Interval> intervals) {
  std::vector<QueryItem> items;
  int id = 0;
  for (const Interval& iv : intervals) items.push_back({id++, iv});
  return items;
}

TEST(MinIntervalTest, TakesMinOfEndpoints) {
  auto items = Items({Interval(0, 5), Interval(3, 4), Interval(-10, 2)});
  Interval m = MinInterval(items);
  EXPECT_DOUBLE_EQ(m.lo(), -10.0);
  EXPECT_DOUBLE_EQ(m.hi(), 2.0);
}

TEST(MinIntervalTest, EmptyIsZero) {
  EXPECT_EQ(MinInterval({}), Interval(0, 0));
}

TEST(AvgIntervalTest, ScalesSumByCount) {
  auto items = Items({Interval(0, 4), Interval(2, 6)});
  Interval a = AvgInterval(items);
  EXPECT_DOUBLE_EQ(a.lo(), 1.0);
  EXPECT_DOUBLE_EQ(a.hi(), 5.0);
  EXPECT_DOUBLE_EQ(a.Width(), 4.0);  // (4 + 4) / 2
}

TEST(AvgIntervalTest, EmptyIsZero) {
  EXPECT_EQ(AvgInterval({}), Interval(0, 0));
}

TEST(MinSelectionTest, NoCandidateWhenConstraintMet) {
  auto items = Items({Interval(0, 5), Interval(3, 4)});
  // MIN interval is [0, 4]: width 4.
  EXPECT_EQ(NextMinRefreshCandidate(items, 4.0), -1);
  EXPECT_EQ(NextMinRefreshCandidate(items, 3.0), 0);
}

TEST(MinSelectionTest, PicksSmallestLowerEndpoint) {
  auto items = Items({Interval(0, 5), Interval(-3, 9), Interval(1, 2)});
  EXPECT_EQ(NextMinRefreshCandidate(items, 1.0), 1);
}

TEST(MinSelectionTest, DominatedItemsNeverChosen) {
  // Item 1's lo (4) is above min_hi (2): it cannot be the minimum.
  auto items = Items({Interval(0, 2), Interval(4, 9), Interval(-1, 3)});
  std::vector<int> refreshed;
  int idx;
  while ((idx = NextMinRefreshCandidate(items, 0.0)) >= 0) {
    refreshed.push_back(idx);
    auto& item = items[static_cast<size_t>(idx)];
    item.interval = Interval::Exact(item.interval.Center());
    ASSERT_LE(refreshed.size(), items.size());
  }
  EXPECT_TRUE(std::find(refreshed.begin(), refreshed.end(), 1) ==
              refreshed.end());
  EXPECT_DOUBLE_EQ(MinInterval(items).Width(), 0.0);
}

TEST(MinSelectionTest, AllExactReturnsMinusOne) {
  auto items = Items({Interval::Exact(1.0), Interval::Exact(5.0)});
  EXPECT_EQ(NextMinRefreshCandidate(items, 0.0), -1);
}

TEST(AvgSelectionTest, ScalesConstraintByCount) {
  // Widths 2, 8, 4 -> AVG width (14)/3. An AVG constraint of 7/3 equals a
  // SUM constraint of 7: refresh only the widest item.
  auto items = Items({Interval(0, 2), Interval(0, 8), Interval(0, 4)});
  auto sel = AvgRefreshSelection(items, 7.0 / 3.0);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], 1u);
}

TEST(AvgSelectionTest, EmptyWhenMet) {
  auto items = Items({Interval(0, 2), Interval(0, 4)});
  EXPECT_TRUE(AvgRefreshSelection(items, 3.0).empty());
}

class MinAvgPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinAvgPropertyTest, MinProtocolMeetsConstraintAndContainsTruth) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<QueryItem> items;
    std::vector<double> exact;
    int n = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < n; ++i) {
      double v = rng.Uniform(-100, 100);
      exact.push_back(v);
      items.push_back({i, Interval::Centered(v, rng.Uniform(0, 20))});
    }
    double constraint = rng.Uniform(0, 10);
    int idx;
    int rounds = 0;
    while ((idx = NextMinRefreshCandidate(items, constraint)) >= 0) {
      items[static_cast<size_t>(idx)].interval =
          Interval::Exact(exact[static_cast<size_t>(idx)]);
      ASSERT_LE(++rounds, n);
    }
    Interval result = MinInterval(items);
    EXPECT_LE(result.Width(), constraint + 1e-9);
    EXPECT_TRUE(
        result.Contains(*std::min_element(exact.begin(), exact.end())));
  }
}

TEST_P(MinAvgPropertyTest, MinIsMirrorOfMaxOnNegatedData) {
  Rng rng(GetParam() ^ 0x5a5a);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<QueryItem> items, negated;
    int n = static_cast<int>(rng.UniformInt(1, 10));
    for (int i = 0; i < n; ++i) {
      double center = rng.Uniform(-50, 50);
      double width = rng.Uniform(0, 10);
      items.push_back({i, Interval::Centered(center, width)});
      negated.push_back({i, Interval::Centered(-center, width)});
    }
    Interval min_iv = MinInterval(items);
    Interval max_iv = MaxInterval(negated);
    EXPECT_NEAR(min_iv.lo(), -max_iv.hi(), 1e-9);
    EXPECT_NEAR(min_iv.hi(), -max_iv.lo(), 1e-9);
    // Candidate choice mirrors as well.
    EXPECT_EQ(NextMinRefreshCandidate(items, 1.0),
              NextMaxRefreshCandidate(negated, 1.0));
  }
}

TEST_P(MinAvgPropertyTest, AvgSelectionGuaranteesConstraint) {
  Rng rng(GetParam() ^ 0xa7a7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<QueryItem> items;
    std::vector<double> exact;
    int n = static_cast<int>(rng.UniformInt(1, 12));
    double true_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      double v = rng.Uniform(-100, 100);
      exact.push_back(v);
      true_sum += v;
      items.push_back({i, Interval::Centered(v, rng.Uniform(0, 20))});
    }
    double constraint = rng.Uniform(0, 5);
    for (size_t idx : AvgRefreshSelection(items, constraint)) {
      items[idx].interval = Interval::Exact(exact[idx]);
    }
    Interval result = AvgInterval(items);
    EXPECT_LE(result.Width(), constraint + 1e-9);
    EXPECT_TRUE(result.Contains(true_sum / n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinAvgPropertyTest,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace apc
