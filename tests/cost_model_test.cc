#include "core/cost_model.h"

#include <gtest/gtest.h>

namespace apc {
namespace {

TEST(RefreshCostsTest, PaperCostFactors) {
  RefreshCosts loose{1.0, 2.0};
  EXPECT_DOUBLE_EQ(loose.ThetaInterval(), 1.0);
  EXPECT_DOUBLE_EQ(loose.ThetaStale(), 0.5);

  RefreshCosts two_phase{4.0, 2.0};
  EXPECT_DOUBLE_EQ(two_phase.ThetaInterval(), 4.0);
  EXPECT_DOUBLE_EQ(two_phase.ThetaStale(), 2.0);
}

TEST(RefreshCostsTest, Validation) {
  EXPECT_TRUE((RefreshCosts{1.0, 2.0}).IsValid());
  EXPECT_FALSE((RefreshCosts{0.0, 2.0}).IsValid());
  EXPECT_FALSE((RefreshCosts{1.0, -1.0}).IsValid());
}

TEST(CostTrackerTest, WarmupEventsExcluded) {
  CostTracker tracker(RefreshCosts{1.0, 2.0});
  tracker.RecordValueRefresh();
  tracker.RecordQueryRefresh();  // before measurement: excluded
  tracker.BeginMeasurement(100);
  tracker.RecordValueRefresh();
  tracker.RecordQueryRefresh();
  tracker.EndMeasurement(200);

  EXPECT_EQ(tracker.value_refreshes(), 1);
  EXPECT_EQ(tracker.query_refreshes(), 1);
  EXPECT_DOUBLE_EQ(tracker.total_cost(), 3.0);
  EXPECT_EQ(tracker.measured_ticks(), 100);
  EXPECT_DOUBLE_EQ(tracker.CostRate(), 0.03);
}

TEST(CostTrackerTest, MeasuredProbabilities) {
  CostTracker tracker(RefreshCosts{1.0, 2.0});
  tracker.BeginMeasurement(0);
  for (int i = 0; i < 25; ++i) tracker.RecordValueRefresh();
  for (int i = 0; i < 50; ++i) tracker.RecordQueryRefresh();
  tracker.EndMeasurement(1000);
  EXPECT_DOUBLE_EQ(tracker.MeasuredPvr(), 0.025);
  EXPECT_DOUBLE_EQ(tracker.MeasuredPqr(), 0.05);
  EXPECT_DOUBLE_EQ(tracker.CostRate(), (25.0 * 1 + 50.0 * 2) / 1000.0);
}

TEST(CostTrackerTest, ZeroTicksIsSafe) {
  CostTracker tracker(RefreshCosts{1.0, 2.0});
  EXPECT_DOUBLE_EQ(tracker.CostRate(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.MeasuredPvr(), 0.0);
  tracker.BeginMeasurement(5);
  tracker.EndMeasurement(5);
  EXPECT_DOUBLE_EQ(tracker.CostRate(), 0.0);
}

TEST(CostTrackerTest, CostWeightsByKind) {
  CostTracker tracker(RefreshCosts{4.0, 2.0});
  tracker.BeginMeasurement(0);
  tracker.RecordValueRefresh();  // 4
  tracker.RecordQueryRefresh();  // 2
  tracker.RecordQueryRefresh();  // 2
  tracker.EndMeasurement(1);
  EXPECT_DOUBLE_EQ(tracker.total_cost(), 8.0);
}

TEST(CostTrackerTest, NotMeasuringByDefault) {
  CostTracker tracker(RefreshCosts{1.0, 2.0});
  EXPECT_FALSE(tracker.measuring());
  tracker.BeginMeasurement(0);
  EXPECT_TRUE(tracker.measuring());
}

}  // namespace
}  // namespace apc
