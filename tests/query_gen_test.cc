#include "query/query_gen.h"

#include <gtest/gtest.h>

#include <set>

namespace apc {
namespace {

QueryWorkloadParams BaseParams() {
  QueryWorkloadParams p;
  p.num_sources = 50;
  p.group_size = 10;
  p.max_fraction = 0.0;
  p.constraints.avg = 100.0;
  p.constraints.rho = 0.5;
  return p;
}

TEST(QueryWorkloadParamsTest, Validation) {
  EXPECT_TRUE(BaseParams().IsValid());
  QueryWorkloadParams p = BaseParams();
  p.group_size = 51;  // > num_sources
  EXPECT_FALSE(p.IsValid());
  p = BaseParams();
  p.max_fraction = 1.5;
  EXPECT_FALSE(p.IsValid());
  p = BaseParams();
  p.num_sources = 0;
  EXPECT_FALSE(p.IsValid());
}

TEST(QueryGeneratorTest, GroupSizeAndDistinctIds) {
  QueryGenerator gen(BaseParams(), 1);
  for (int i = 0; i < 1000; ++i) {
    Query q = gen.Next();
    EXPECT_EQ(q.source_ids.size(), 10u);
    std::set<int> unique(q.source_ids.begin(), q.source_ids.end());
    EXPECT_EQ(unique.size(), q.source_ids.size());
    for (int id : q.source_ids) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, 50);
    }
  }
}

TEST(QueryGeneratorTest, PureSumWorkload) {
  QueryGenerator gen(BaseParams(), 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.Next().kind, AggregateKind::kSum);
  }
}

TEST(QueryGeneratorTest, PureMaxWorkload) {
  QueryWorkloadParams p = BaseParams();
  p.max_fraction = 1.0;
  QueryGenerator gen(p, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.Next().kind, AggregateKind::kMax);
  }
}

TEST(QueryGeneratorTest, MixedWorkloadFrequency) {
  QueryWorkloadParams p = BaseParams();
  p.max_fraction = 0.3;
  QueryGenerator gen(p, 4);
  int max_count = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next().kind == AggregateKind::kMax) ++max_count;
  }
  EXPECT_NEAR(static_cast<double>(max_count) / n, 0.3, 0.02);
}

TEST(QueryGeneratorTest, ConstraintsWithinConfiguredRange) {
  QueryGenerator gen(BaseParams(), 5);
  for (int i = 0; i < 1000; ++i) {
    double c = gen.Next().constraint;
    EXPECT_GE(c, 50.0);
    EXPECT_LE(c, 150.0);
  }
}

TEST(QueryGeneratorTest, AllSourcesEventuallySampled) {
  QueryGenerator gen(BaseParams(), 6);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    Query q = gen.Next();
    seen.insert(q.source_ids.begin(), q.source_ids.end());
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(QueryGeneratorTest, Deterministic) {
  QueryGenerator a(BaseParams(), 7), b(BaseParams(), 7);
  for (int i = 0; i < 100; ++i) {
    Query qa = a.Next();
    Query qb = b.Next();
    EXPECT_EQ(qa.source_ids, qb.source_ids);
    EXPECT_DOUBLE_EQ(qa.constraint, qb.constraint);
    EXPECT_EQ(qa.kind, qb.kind);
  }
}

TEST(QueryGeneratorTest, FourWayMixFrequencies) {
  QueryWorkloadParams p = BaseParams();
  p.max_fraction = 0.2;
  p.min_fraction = 0.3;
  p.avg_fraction = 0.1;
  QueryGenerator gen(p, 12);
  int counts[4] = {0, 0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<int>(gen.Next().kind)]++;
  }
  EXPECT_NEAR(counts[static_cast<int>(AggregateKind::kMax)] / double(n),
              0.2, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(AggregateKind::kMin)] / double(n),
              0.3, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(AggregateKind::kAvg)] / double(n),
              0.1, 0.02);
  EXPECT_NEAR(counts[static_cast<int>(AggregateKind::kSum)] / double(n),
              0.4, 0.02);
}

TEST(QueryGeneratorTest, FractionSumAboveOneIsInvalid) {
  QueryWorkloadParams p = BaseParams();
  p.max_fraction = 0.6;
  p.min_fraction = 0.6;
  EXPECT_FALSE(p.IsValid());
}

TEST(QueryGeneratorTest, GroupEqualsAllSources) {
  QueryWorkloadParams p = BaseParams();
  p.num_sources = 10;
  p.group_size = 10;
  QueryGenerator gen(p, 8);
  Query q = gen.Next();
  std::set<int> unique(q.source_ids.begin(), q.source_ids.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(QueryGeneratorTest, NegativeZipfExponentIsInvalid) {
  QueryWorkloadParams p = BaseParams();
  p.zipf_s = -0.5;
  EXPECT_FALSE(p.IsValid());
}

TEST(QueryGeneratorTest, ZipfSelectionSkewsTowardLowIds) {
  QueryWorkloadParams p = BaseParams();
  p.num_sources = 100;
  p.group_size = 1;  // single draws expose the marginal distribution
  p.zipf_s = 1.5;
  QueryGenerator gen(p, 9);
  int count_hot = 0;
  int count_cold = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    int id = gen.Next().source_ids.front();
    ASSERT_GE(id, 0);
    ASSERT_LT(id, 100);
    if (id == 0) ++count_hot;
    if (id >= 90) ++count_cold;
  }
  // s=1.5, n=100: P(id=0) ≈ 0.38, P(id >= 90) ≈ 0.4%. Loose bounds so the
  // test never flakes across seeds.
  EXPECT_GT(count_hot, n / 5);
  EXPECT_LT(count_cold, n / 20);
}

TEST(QueryGeneratorTest, ZipfGroupsStayDistinctAndInRange) {
  QueryWorkloadParams p = BaseParams();
  p.zipf_s = 1.2;
  QueryGenerator gen(p, 10);
  for (int i = 0; i < 500; ++i) {
    Query q = gen.Next();
    EXPECT_EQ(q.source_ids.size(), 10u);
    std::set<int> unique(q.source_ids.begin(), q.source_ids.end());
    EXPECT_EQ(unique.size(), q.source_ids.size());
    for (int id : q.source_ids) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, 50);
    }
  }
}

TEST(QueryGeneratorTest, ZipfIsDeterministic) {
  QueryWorkloadParams p = BaseParams();
  p.zipf_s = 0.8;
  QueryGenerator a(p, 11), b(p, 11);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Next().source_ids, b.Next().source_ids);
  }
}

// zipf_s == 0 must keep the historical uniform Rng stream bit-exact:
// configs and seeds from earlier runs reproduce the same queries.
TEST(QueryGeneratorTest, ZeroZipfMatchesUniformStream) {
  QueryWorkloadParams uniform = BaseParams();
  QueryWorkloadParams zipf_zero = BaseParams();
  zipf_zero.zipf_s = 0.0;
  QueryGenerator a(uniform, 13), b(zipf_zero, 13);
  for (int i = 0; i < 200; ++i) {
    Query qa = a.Next();
    Query qb = b.Next();
    EXPECT_EQ(qa.source_ids, qb.source_ids);
    EXPECT_DOUBLE_EQ(qa.constraint, qb.constraint);
  }
}

}  // namespace
}  // namespace apc
