// The subscription subsystem: standing precision-bounded queries over the
// concurrent engines.
//
// The acceptance bar is lockstep determinism: a 1-shard engine with one
// subscriber per source must produce, per tick, exactly the notifications
// implied by the sequential CacheSystem's interval changes — bit-for-bit
// answers, intervals, and charges (the mirror below re-derives the
// expected stream from CacheSystem state transitions alone). On top of
// that: shared-refresh amortization (one pull per value per tick no matter
// how many subscribers), live Reprecision, per-subscription ordered
// delivery under concurrency, and the no-missed-violation guarantee probed
// from a racing checker thread (the TSan targets).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/system.h"
#include "core/adaptive_policy.h"
#include "data/random_walk.h"
#include "query/constraint_gen.h"
#include "runtime/sharded_engine.h"
#include "runtime/tiered_engine.h"
#include "runtime/workload_driver.h"

namespace apc {
namespace {

constexpr uint64_t kSeed = 2024;

std::vector<std::unique_ptr<Source>> MakeSources(int n) {
  return BuildRandomWalkSources(n, RandomWalkParams{},
                                AdaptivePolicyParams{}, kSeed);
}

/// A source driven by an explicit series — fully deterministic dynamics
/// for the amortization and Reprecision tests (theta = 1 makes the width
/// updates themselves deterministic: always grow on value-initiated,
/// always halve on query-initiated).
std::unique_ptr<Source> SeriesSource(int id, std::vector<double> series) {
  return std::make_unique<Source>(
      id, std::make_unique<SeriesStream>(std::move(series)),
      std::make_unique<AdaptivePolicy>(AdaptivePolicyParams{}, kSeed + 7));
}

Query PointQuery(int id) {
  Query query;
  query.kind = AggregateKind::kSum;
  query.source_ids = {id};
  return query;
}

std::vector<Notification> DrainHub(NotificationHub& hub) {
  std::vector<Notification> all;
  std::vector<Notification> batch;
  while (hub.size() > 0) {
    hub.PopBatch(&batch, 256);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

TEST(SubscriptionTest, SubscribeDeliversInitialAnswerAtEpochOne) {
  EngineConfig config;
  config.num_shards = 1;
  config.system.cache_capacity = 8;
  config.seed = kSeed;
  ShardedEngine engine(config, MakeSources(8));
  engine.PopulateInitial(0);

  int64_t sub = engine.Subscribe(PointQuery(3), /*delta=*/100.0, 0);
  ASSERT_GT(sub, 0);
  std::vector<Notification> records = DrainHub(engine.notifications());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sub_id, sub);
  EXPECT_EQ(records[0].epoch, 1);
  EXPECT_EQ(records[0].now, 0);
  // A wide bound is met by the cached interval itself: no charges.
  EXPECT_EQ(engine.TotalCosts().query_refreshes, 0);
  EXPECT_LE(records[0].answer.Width(), 100.0);
  // The registration answer is the guaranteed interval, and it contains
  // the truth.
  EXPECT_TRUE(records[0].answer.Contains(engine.ExactValue(3)));
}

TEST(SubscriptionTest, SubscribeRejectsMalformedRequests) {
  EngineConfig config;
  config.num_shards = 1;
  config.system.cache_capacity = 4;
  ShardedEngine engine(config, MakeSources(4));
  engine.PopulateInitial(0);

  Query empty;
  EXPECT_EQ(engine.Subscribe(empty, 1.0, 0), -1);
  EXPECT_EQ(engine.Subscribe(PointQuery(0), -1.0, 0), -1);
  EXPECT_EQ(engine.Subscribe(PointQuery(999), 1.0, 0), -1);
  Query nan_bound = PointQuery(0);
  EXPECT_EQ(engine.Subscribe(nan_bound, std::nan(""), 0), -1);
  EXPECT_EQ(
      engine.subscriptions().counters().rejected.load(), 4);
  EXPECT_EQ(engine.notifications().size(), 0u);
  EXPECT_FALSE(engine.Unsubscribe(42));
  EXPECT_FALSE(engine.Reprecision(42, 1.0, 0));
}

// THE acceptance bar (see ISSUE): one subscriber per source on a 1-shard
// engine, versus a mirror that re-derives the expected notification stream
// from the sequential CacheSystem's interval changes. Answers, intervals,
// epochs, and total charges must match bit for bit.
TEST(SubscriptionTest, LockstepNotificationsMatchCacheSystem) {
  constexpr int kSources = 24;
  constexpr int64_t kTicks = 250;

  SystemConfig sys_config;
  // One slot per source: interval changes are exactly the refreshes, so
  // the mirror can detect them by comparing visible intervals.
  sys_config.cache_capacity = kSources;

  CacheSystem sequential(sys_config, MakeSources(kSources), kSeed);
  sequential.PopulateInitial(0);
  sequential.costs().BeginMeasurement(0);

  EngineConfig engine_config;
  engine_config.system = sys_config;
  engine_config.num_shards = 1;
  engine_config.seed = kSeed;
  engine_config.subscription_hub_capacity = 1 << 14;
  ShardedEngine engine(engine_config, MakeSources(kSources));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  // Per-source bounds: tight enough that escalations fire, wide enough
  // that some ticks pass without one.
  ConstraintGenerator deltas(ConstraintParams{3.0, 1.0}, kSeed ^ 0xD);
  std::vector<double> delta(kSources);
  for (double& d : delta) d = deltas.Next();

  // Mirror state: what the mirror believes each subscriber holds, plus the
  // interval it last saw per source.
  struct MirrorSub {
    Interval last = Interval::Unbounded();
    int64_t epoch = 0;
  };
  std::vector<MirrorSub> mirror(kSources);
  std::vector<Interval> seen(kSources);
  std::vector<int64_t> sub_of(kSources);

  // Evaluates source `id` on the sequential side at time `t` exactly the
  // way the manager evaluates its subscriber, appending the expected
  // notification (if any) to `expected`.
  auto mirror_eval = [&](int id, int64_t t,
                         std::vector<Notification>* expected) {
    Interval answer = sequential.table().VisibleInterval(id, t);
    if (answer.Width() > delta[static_cast<size_t>(id)]) {
      Query pull = PointQuery(id);
      pull.constraint = delta[static_cast<size_t>(id)];
      sequential.ExecuteQuery(pull, t);  // pulls iff too wide — one Cqr
      answer = sequential.table().VisibleInterval(id, t);
    }
    MirrorSub& sub = mirror[static_cast<size_t>(id)];
    bool first = sub.epoch == 0;
    bool moved = !sub.last.Contains(answer);
    bool regained = sub.last.Width() > delta[static_cast<size_t>(id)] &&
                    answer.Width() <= delta[static_cast<size_t>(id)];
    if (first || moved || regained) {
      Notification record;
      record.sub_id = sub_of[static_cast<size_t>(id)];
      record.answer = answer;
      record.epoch = ++sub.epoch;
      record.now = t;
      sub.last = answer;
      expected->push_back(record);
    }
    seen[static_cast<size_t>(id)] =
        sequential.table().VisibleInterval(id, t);
  };

  // Registration at t=0, in id order on both sides.
  std::vector<Notification> expected;
  for (int id = 0; id < kSources; ++id) {
    sub_of[static_cast<size_t>(id)] = engine.Subscribe(
        PointQuery(id), delta[static_cast<size_t>(id)], 0);
    ASSERT_GT(sub_of[static_cast<size_t>(id)], 0);
    mirror_eval(id, 0, &expected);
  }
  engine.subscriptions().WaitQuiescent();
  std::vector<Notification> actual = DrainHub(engine.notifications());
  ASSERT_EQ(actual.size(), expected.size());

  auto compare = [&](int64_t t) {
    ASSERT_EQ(actual.size(), expected.size()) << "tick " << t;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].sub_id, expected[i].sub_id) << "tick " << t;
      EXPECT_EQ(actual[i].epoch, expected[i].epoch) << "tick " << t;
      EXPECT_EQ(actual[i].now, expected[i].now) << "tick " << t;
      ASSERT_EQ(actual[i].answer, expected[i].answer)
          << "tick " << t << " sub " << expected[i].sub_id;
    }
  };
  compare(0);

  int64_t escalations_seen = 0;
  for (int64_t t = 1; t <= kTicks; ++t) {
    sequential.Tick(t);
    engine.TickAll(t);
    engine.subscriptions().WaitQuiescent();

    // Changed ids in id order (the drain order of a 1-shard tick), each
    // evaluated once — exactly the manager's batch semantics.
    expected.clear();
    for (int id = 0; id < kSources; ++id) {
      if (sequential.table().VisibleInterval(id, t) !=
          seen[static_cast<size_t>(id)]) {
        mirror_eval(id, t, &expected);
      }
    }
    actual = DrainHub(engine.notifications());
    compare(t);
    escalations_seen =
        engine.subscriptions().counters().escalations.load();
  }

  // Both paths were exercised...
  EXPECT_GT(escalations_seen, 0);
  EXPECT_GT(engine.subscriptions().counters().suppressed.load(), 0);
  // ...and the charges match bit for bit.
  sequential.costs().EndMeasurement(kTicks);
  engine.EndMeasurement(kTicks);
  EngineCosts costs = engine.TotalCosts();
  EXPECT_EQ(costs.value_refreshes, sequential.costs().value_refreshes());
  EXPECT_EQ(costs.query_refreshes, sequential.costs().query_refreshes());
  EXPECT_DOUBLE_EQ(costs.total_cost, sequential.costs().total_cost());
}

// Shared-refresh amortization, pinned deterministically: four subscribers
// with unmeetably tight bounds on ONE value cost exactly one escalation
// per tick — the first too-wide subscriber pulls, the rest ride along.
TEST(SubscriptionTest, SharedRefreshOnePullServesEverySubscriber) {
  constexpr int kSubscribers = 4;
  constexpr int64_t kTicks = 6;

  // Jumps of 10 per tick: every tick escapes the shipped interval.
  std::vector<double> series(kTicks + 1);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = 10.0 * static_cast<double>(i);
  }
  std::vector<std::unique_ptr<Source>> sources;
  sources.push_back(SeriesSource(0, series));

  EngineConfig config;
  config.num_shards = 1;
  config.system.cache_capacity = 1;
  config.seed = kSeed;
  ShardedEngine engine(config, std::move(sources));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  std::vector<int64_t> subs;
  for (int i = 0; i < kSubscribers; ++i) {
    subs.push_back(engine.Subscribe(PointQuery(0), /*delta=*/0.01, 0));
    ASSERT_GT(subs.back(), 0);
  }
  // Registration: the first subscriber escalates once; the per-value
  // per-tick cap makes the other three ride the refreshed interval.
  EXPECT_EQ(engine.TotalCosts().query_refreshes, 1);
  EXPECT_EQ(engine.subscriptions().counters().escalations.load(), 1);
  std::vector<Notification> records = DrainHub(engine.notifications());
  ASSERT_EQ(records.size(), static_cast<size_t>(kSubscribers));
  for (const Notification& record : records) {
    EXPECT_EQ(record.epoch, 1);
    EXPECT_EQ(record.answer, records.front().answer);
  }

  for (int64_t t = 1; t <= kTicks; ++t) {
    engine.TickAll(t);
    engine.subscriptions().WaitQuiescent();
    // One escalation per tick, total — not one per subscriber.
    EXPECT_EQ(engine.TotalCosts().query_refreshes, 1 + t);
    records = DrainHub(engine.notifications());
    // The value escaped, so every subscriber is renotified with the same
    // fresh guaranteed interval.
    ASSERT_EQ(records.size(), static_cast<size_t>(kSubscribers))
        << "tick " << t;
    for (const Notification& record : records) {
      EXPECT_EQ(record.epoch, 1 + t);
      EXPECT_EQ(record.answer, records.front().answer);
      EXPECT_TRUE(record.answer.Contains(engine.ExactValue(0)));
    }
  }
}

// Live re-precisioning: tightening evaluates immediately (one escalation)
// and ships once the bound is met; loosening ships nothing.
TEST(SubscriptionTest, ReprecisionTightensWithoutReregistration) {
  std::vector<std::unique_ptr<Source>> sources;
  sources.push_back(SeriesSource(0, {0.0, 0.0, 0.0}));
  EngineConfig config;
  config.num_shards = 1;
  config.system.cache_capacity = 1;
  ShardedEngine engine(config, std::move(sources));
  engine.PopulateInitial(0);
  engine.BeginMeasurement(0);

  // Wide bound: the initial width-1 interval satisfies it free of charge.
  int64_t sub = engine.Subscribe(PointQuery(0), /*delta=*/100.0, 0);
  ASSERT_GT(sub, 0);
  std::vector<Notification> records = DrainHub(engine.notifications());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].answer.Width(), 1.0);
  EXPECT_EQ(engine.TotalCosts().query_refreshes, 0);

  // Tighten to 0.6: the width-1 interval misses it, one pull halves the
  // width to 0.5, and the newly-met bound ships at epoch 2.
  ASSERT_TRUE(engine.Reprecision(sub, 0.6, 1));
  EXPECT_EQ(engine.TotalCosts().query_refreshes, 1);
  records = DrainHub(engine.notifications());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].epoch, 2);
  EXPECT_DOUBLE_EQ(records[0].answer.Width(), 0.5);
  EXPECT_LE(records[0].answer.Width(), 0.6);

  // Loosen to 50: nothing to say, nothing charged.
  int64_t evaluations =
      engine.subscriptions().counters().evaluations.load();
  ASSERT_TRUE(engine.Reprecision(sub, 50.0, 2));
  EXPECT_EQ(engine.subscriptions().counters().evaluations.load(),
            evaluations);
  EXPECT_EQ(engine.TotalCosts().query_refreshes, 1);
  EXPECT_EQ(engine.notifications().size(), 0u);
}

TEST(SubscriptionTest, UnsubscribeStopsNotifications) {
  std::vector<std::unique_ptr<Source>> sources;
  sources.push_back(SeriesSource(0, {0.0, 10.0, 20.0, 30.0}));
  EngineConfig config;
  config.num_shards = 1;
  config.system.cache_capacity = 1;
  ShardedEngine engine(config, std::move(sources));
  engine.PopulateInitial(0);

  int64_t sub = engine.Subscribe(PointQuery(0), 100.0, 0);
  ASSERT_TRUE(engine.Unsubscribe(sub));
  EXPECT_FALSE(engine.Unsubscribe(sub));  // idempotence: already gone
  for (int64_t t = 1; t <= 3; ++t) engine.TickAll(t);
  engine.subscriptions().WaitQuiescent();
  // Only the registration answer ever shipped.
  std::vector<Notification> records = DrainHub(engine.notifications());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].epoch, 1);
  EXPECT_EQ(engine.subscriptions().num_subscriptions(), 0u);
}

// Aggregate subscriptions: a SUM over several sources and a MAX ship
// answers whose width meets the bound after escalation, and the answers
// always contain the true aggregate.
TEST(SubscriptionTest, AggregateSubscriptionsMeetTheirBounds) {
  constexpr int kSources = 12;
  EngineConfig config;
  config.num_shards = 2;
  config.system.cache_capacity = kSources;
  config.seed = kSeed;
  ShardedEngine engine(config, MakeSources(kSources));
  engine.PopulateInitial(0);

  Query sum;
  sum.kind = AggregateKind::kSum;
  sum.source_ids = {0, 1, 2, 3, 4, 5};
  Query max;
  max.kind = AggregateKind::kMax;
  max.source_ids = {6, 7, 8, 9, 10, 11};
  int64_t sum_sub = engine.Subscribe(sum, /*delta=*/2.0, 0);
  int64_t max_sub = engine.Subscribe(max, /*delta=*/1.0, 0);
  ASSERT_GT(sum_sub, 0);
  ASSERT_GT(max_sub, 0);
  DrainHub(engine.notifications());  // registration answers: truth at t=0

  for (int64_t t = 1; t <= 40; ++t) {
    engine.TickAll(t);
    engine.subscriptions().WaitQuiescent();
    std::vector<Notification> records = DrainHub(engine.notifications());
    // A sub spanning both shards can be notified once per shard batch; an
    // early record may predate the other shard's tick. The subscriber's
    // held answer after the drain is the NEWEST record per sub — that one
    // saw the full post-tick state and must contain the current truth.
    std::unordered_map<int64_t, Notification> newest;
    for (const Notification& record : records) {
      Notification& slot = newest[record.sub_id];
      if (record.epoch > slot.epoch) slot = record;
    }
    for (const auto& [sub_id, record] : newest) {
      double truth = 0.0;
      const Query& query = sub_id == sum_sub ? sum : max;
      if (query.kind == AggregateKind::kSum) {
        for (int id : query.source_ids) truth += engine.ExactValue(id);
      } else {
        truth = engine.ExactValue(query.source_ids.front());
        for (int id : query.source_ids) {
          truth = std::max(truth, engine.ExactValue(id));
        }
      }
      EXPECT_TRUE(record.answer.Contains(truth))
          << "tick " << t << " sub " << sub_id << " answer "
          << record.answer.ToString() << " truth " << truth;
    }
  }
  // Escalations fired for the tight bounds, and both subscribers hold a
  // bound-satisfying answer whenever precision was attainable.
  EXPECT_GT(engine.subscriptions().counters().escalations.load(), 0);
}

// Per-subscription ordered delivery under real concurrency: a ticking
// writer races a draining consumer; epochs must arrive consecutively per
// subscription with non-decreasing compute ticks. (TSan target.)
TEST(SubscriptionTest, OrderedDeliveryUnderConcurrentTicks) {
  constexpr int kSources = 32;
  constexpr int64_t kTicks = 400;
  EngineConfig config;
  config.num_shards = 4;
  config.system.cache_capacity = kSources;
  config.seed = kSeed;
  config.subscription_hub_capacity = 256;
  ShardedEngine engine(config, MakeSources(kSources));
  engine.PopulateInitial(0);

  std::vector<int64_t> subs;
  for (int id = 0; id < kSources; ++id) {
    subs.push_back(engine.Subscribe(PointQuery(id), 4.0, 0));
    ASSERT_GT(subs.back(), 0);
  }

  std::atomic<int64_t> regressions{0};
  std::atomic<int64_t> drained{0};
  std::thread consumer([&] {
    std::unordered_map<int64_t, Notification> last;
    std::vector<Notification> batch;
    while (engine.notifications().PopBatch(&batch, 32) > 0) {
      drained.fetch_add(static_cast<int64_t>(batch.size()));
      for (const Notification& record : batch) {
        auto it = last.find(record.sub_id);
        if (it != last.end()) {
          if (record.epoch != it->second.epoch + 1 ||
              record.now < it->second.now) {
            regressions.fetch_add(1);
          }
        } else if (record.epoch != 1) {
          regressions.fetch_add(1);
        }
        last[record.sub_id] = record;
      }
    }
  });

  std::thread ticker([&] {
    for (int64_t t = 1; t <= kTicks; ++t) engine.TickAll(t);
  });
  ticker.join();
  engine.subscriptions().WaitQuiescent();
  int64_t queued = engine.subscriptions().counters().notifications.load();
  engine.subscriptions().Shutdown();  // closes the hub; consumer drains out
  consumer.join();

  EXPECT_EQ(regressions.load(), 0);
  EXPECT_EQ(drained.load(), queued);
  EXPECT_GT(queued, kSources);  // ticks actually produced notifications
}

// The no-missed-violation guarantee probed mid-run from a racing checker:
// whenever no change is in flight, every subscriber-held answer contains
// the true value. (TSan target.)
TEST(SubscriptionTest, NoMissedViolationUnderConcurrentTicks) {
  constexpr int kSources = 16;
  constexpr int64_t kTicks = 300;
  EngineConfig config;
  config.num_shards = 2;
  config.system.cache_capacity = kSources;
  config.seed = kSeed;
  config.subscription_hub_capacity = 1 << 14;
  ShardedEngine engine(config, MakeSources(kSources));
  engine.PopulateInitial(0);

  std::vector<int64_t> subs;
  for (int id = 0; id < kSources; ++id) {
    subs.push_back(engine.Subscribe(PointQuery(id), 3.0, 0));
  }

  std::atomic<bool> done{false};
  std::atomic<int64_t> probes{0};
  std::atomic<int64_t> violations{0};
  std::thread checker([&] {
    Rng rng(kSeed ^ 0xC43C);
    const SubscriptionManager& mgr = engine.subscriptions();
    while (!done.load(std::memory_order_relaxed)) {
      int id = static_cast<int>(rng.UniformInt(0, kSources - 1));
      Interval answer;
      int64_t epoch = 0;
      if (!mgr.LatestAnswer(subs[static_cast<size_t>(id)], &answer,
                            &epoch)) {
        continue;
      }
      if (mgr.in_flight() != 0) {
        std::this_thread::yield();
        continue;
      }
      double truth = engine.ExactValue(id);
      Interval answer_after;
      int64_t epoch_after = 0;
      if (!mgr.LatestAnswer(subs[static_cast<size_t>(id)], &answer_after,
                            &epoch_after) ||
          epoch_after != epoch || mgr.in_flight() != 0) {
        continue;
      }
      probes.fetch_add(1);
      if (!answer.Contains(truth)) violations.fetch_add(1);
    }
  });

  std::thread ticker([&] {
    for (int64_t t = 1; t <= kTicks; ++t) engine.TickAll(t);
  });
  ticker.join();
  engine.subscriptions().WaitQuiescent();
  done.store(true);
  checker.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(probes.load(), 0);
}

// Shutdown must not block even when the hub is full and nobody drains:
// Close fires before the notifier join, so a Push blocked on a full hub
// fails fast instead of deadlocking the engine destructor. (The ctest
// --timeout added for the notification suites turns a regression here
// into a fast failure, not a hung CI job.)
TEST(SubscriptionTest, DestructionWithFullUndrainedHubDoesNotHang) {
  EngineConfig config;
  config.num_shards = 1;
  config.system.cache_capacity = 8;
  config.seed = kSeed;
  config.subscription_hub_capacity = 2;  // tiny: fills immediately
  {
    ShardedEngine engine(config, MakeSources(8));
    engine.PopulateInitial(0);
    // Two registration answers fill the hub exactly (a third Subscribe
    // would block — the documented backpressure, which is why the fill
    // below comes from ticks evaluated by the notifier thread).
    engine.Subscribe(PointQuery(0), /*delta=*/100.0, 0);
    engine.Subscribe(PointQuery(1), /*delta=*/100.0, 0);
    for (int64_t t = 1; t <= 20; ++t) engine.TickAll(t);
    // No consumer ever drains; the engine (and its manager) must still
    // destruct cleanly even if the notifier is blocked pushing into the
    // full hub.
  }
  SUCCEED();
}

// Subscriptions on the tiered engine: the regional tier is the
// subscription surface; escalations charge WAN pulls and fan out to
// edges, and the derived-precision invariant survives the traffic.
TEST(SubscriptionTest, TieredEngineServesSubscriptions) {
  constexpr int kSources = 8;
  TieredConfig config;
  config.num_edges = 2;
  config.num_shards = 1;
  config.seed = kSeed;
  TieredEngine engine(
      config, BuildRandomWalkStreams(kSources, RandomWalkParams{}, kSeed));
  engine.PopulateInitial(0);

  int64_t tight = engine.Subscribe(PointQuery(0), /*delta=*/0.05, 0);
  int64_t wide = engine.Subscribe(PointQuery(1), /*delta=*/1e6, 0);
  ASSERT_GT(tight, 0);
  ASSERT_GT(wide, 0);
  // The tight registration escalated: at least one WAN source pull.
  EXPECT_GE(engine.counters().source_pulls.load(), 1);
  EXPECT_EQ(engine.Subscribe(PointQuery(kSources + 5), 1.0, 0), -1);
  DrainHub(engine.notifications());  // registration answers: truth at t=0

  int64_t notified = 0;
  for (int64_t t = 1; t <= 50; ++t) {
    engine.TickAll(t);
    engine.subscriptions().WaitQuiescent();
    for (const Notification& record :
         DrainHub(engine.notifications())) {
      ++notified;
      int id = record.sub_id == tight ? 0 : 1;
      EXPECT_TRUE(record.answer.Contains(engine.exact_value(id)))
          << "tick " << t;
    }
    EXPECT_TRUE(engine.DerivedInvariantHolds(t)) << "tick " << t;
  }
  EXPECT_GT(notified, 0);
  ASSERT_TRUE(engine.Reprecision(wide, 2.0, 51));
  ASSERT_TRUE(engine.Unsubscribe(tight));
  EXPECT_FALSE(engine.Unsubscribe(tight));
}

}  // namespace
}  // namespace apc
