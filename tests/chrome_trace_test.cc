// ChromeTraceExporter: dumped TraceRecord streams render as Chrome
// trace-event JSON (Perfetto / chrome://tracing). ToJson is a pure
// function of the record vector, so the golden tests below run
// identically in BOTH obs modes; the live-capture tests assert the real
// recorder + engine pipeline under APC_OBS and the valid-empty-document
// contract under APC_OBS=0.
#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "runtime/sharded_engine.h"
#include "runtime/workload_driver.h"

namespace apc {
namespace {

obs::TraceRecord Rec(uint64_t seq, uint64_t op, uint32_t span,
                     uint32_t parent, obs::TraceEvent event, int32_t id,
                     int64_t now, int64_t arg) {
  obs::TraceRecord rec;
  rec.seq = seq;
  rec.op = op;
  rec.span = span;
  rec.parent = parent;
  rec.event = event;
  rec.id = id;
  rec.now = now;
  rec.arg = arg;
  rec.tid = 0;
  return rec;
}

// The exact document for one span wrapping one instant event — byte for
// byte, so any schema drift (key rename, arg reorder) fails loudly.
TEST(ChromeTraceTest, GoldenSpanWithInstantEvent) {
  std::vector<obs::TraceRecord> records;
  records.push_back(Rec(1, 1, 1, 0, obs::TraceEvent::kSpanBegin, -1, 5,
                        static_cast<int64_t>(obs::SpanKind::kQuery)));
  records.push_back(
      Rec(2, 1, 1, 0, obs::TraceEvent::kOfferApplied, 7, 5, 0));
  records.push_back(Rec(3, 1, 1, 0, obs::TraceEvent::kSpanEnd, -1, 5,
                        static_cast<int64_t>(obs::SpanKind::kQuery)));
  // The instant event streams out when encountered; the complete ("X")
  // span event is emitted at its end record, stamped with the BEGIN's
  // seq as ts and the seq delta as dur.
  EXPECT_EQ(obs::ChromeTraceExporter::ToJson(records),
            "{\"traceEvents\":[\n"
            "{\"name\":\"offer_applied\",\"cat\":\"event\",\"ph\":\"i\","
            "\"ts\":2,\"s\":\"t\",\"pid\":1,\"tid\":0,"
            "\"args\":{\"op\":1,\"span\":1,\"parent\":0,\"id\":7,"
            "\"now\":5,\"arg\":0}},\n"
            "{\"name\":\"query\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":1,"
            "\"dur\":2,\"pid\":1,\"tid\":0,"
            "\"args\":{\"op\":1,\"span\":1,\"parent\":0,\"id\":-1,"
            "\"now\":5,\"arg\":1}}\n"
            "]}");
}

TEST(ChromeTraceTest, EmptyDumpYieldsValidEmptyDocument) {
  EXPECT_EQ(obs::ChromeTraceExporter::ToJson({}),
            "{\"traceEvents\":[\n\n]}");
}

// A begin with no end (the span was still open at dump time) renders with
// a duration running to the captured window's last seq; an end with no
// begin (its begin was overwritten in the ring) is dropped.
TEST(ChromeTraceTest, UnmatchedSpansFollowTheRingContract) {
  std::vector<obs::TraceRecord> records;
  records.push_back(Rec(10, 3, 1, 0, obs::TraceEvent::kSpanBegin, 4, 9,
                        static_cast<int64_t>(obs::SpanKind::kSourcePull)));
  records.push_back(Rec(11, 2, 5, 1, obs::TraceEvent::kSpanEnd, 8, 9,
                        static_cast<int64_t>(obs::SpanKind::kFanOut)));
  records.push_back(
      Rec(14, 0, 0, 0, obs::TraceEvent::kSeqlockRetry, 2, 9, 0));
  std::string json = obs::ChromeTraceExporter::ToJson(records);
  // Open span: runs from its begin (ts 10) to the last seq (14).
  EXPECT_NE(json.find("\"name\":\"source_pull\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10,\"dur\":4"), std::string::npos);
  // Orphaned end: dropped entirely.
  EXPECT_EQ(json.find("fan_out"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"seqlock_retry\""), std::string::npos);
}

// Nested spans keep their causal identity in args: the child names its
// parent span id within the same op, which is what lets a UI (or the
// flight-recorder test) rebuild the operation tree.
TEST(ChromeTraceTest, NestedSpansCarryParentLinks) {
  std::vector<obs::TraceRecord> records;
  records.push_back(Rec(1, 9, 1, 0, obs::TraceEvent::kSpanBegin, -1, 3,
                        static_cast<int64_t>(obs::SpanKind::kNotifyBatch)));
  records.push_back(Rec(2, 9, 2, 1, obs::TraceEvent::kSpanBegin, -1, 3,
                        static_cast<int64_t>(obs::SpanKind::kNotifyEval)));
  records.push_back(Rec(3, 9, 2, 1, obs::TraceEvent::kSpanEnd, -1, 3,
                        static_cast<int64_t>(obs::SpanKind::kNotifyEval)));
  records.push_back(Rec(4, 9, 1, 0, obs::TraceEvent::kSpanEnd, -1, 3,
                        static_cast<int64_t>(obs::SpanKind::kNotifyBatch)));
  std::string json = obs::ChromeTraceExporter::ToJson(records);
  EXPECT_NE(json.find("\"name\":\"notify_eval\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"notify_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"op\":9,\"span\":2,\"parent\":1,"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"op\":9,\"span\":1,\"parent\":0,"),
            std::string::npos);
}

TEST(ChromeTraceTest, WriteFileEmitsDocumentWithTrailingNewline) {
  std::string path =
      testing::TempDir() + "apcache_chrome_trace_test.json";
  std::vector<obs::TraceRecord> records;
  records.push_back(
      Rec(1, 0, 0, 0, obs::TraceEvent::kBusEnqueue, 3, 1, 2));
  ASSERT_TRUE(obs::ChromeTraceExporter::WriteFile(path, records));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[256];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, obs::ChromeTraceExporter::ToJson(records) + "\n");
}

// End-to-end: a real engine workload captured at kFull exports a document
// carrying the per-read root spans and their instant children. Under
// APC_OBS=0 the same pipeline yields the valid empty document.
TEST(ChromeTraceTest, LiveCaptureExportsReadSpans) {
  obs::TraceRecorder::Reset();
  obs::TraceRecorder::Enable(/*ring_capacity=*/1 << 14,
                             obs::TraceLevel::kFull);
  {
    EngineConfig config;
    config.num_shards = 2;
    config.system.cache_capacity = 16;
    config.seed = 99;
    ShardedEngine engine(
        config, BuildRandomWalkSources(16, RandomWalkParams{},
                                       AdaptivePolicyParams{}, 99));
    engine.PopulateInitial(0);
    for (int64_t now = 1; now <= 20; ++now) engine.TickAll(now);
    for (int id = 0; id < 16; ++id) engine.PointRead(id, 0.0, 21);
    Query query;
    query.kind = AggregateKind::kSum;
    query.source_ids = {0, 1, 2, 3};
    query.constraint = 0.0;
    engine.ExecuteQuery(query, 22);
  }
  obs::TraceRecorder::Disable();
  std::string json =
      obs::ChromeTraceExporter::ToJson(obs::TraceRecorder::DumpTrace());
  obs::TraceRecorder::Reset();
#if APC_OBS
  EXPECT_NE(json.find("\"name\":\"point_read\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  // Exact pulls nest under their read root: at least one span names a
  // nonzero parent.
  EXPECT_NE(json.find("\"name\":\"source_pull\""), std::string::npos);
#else
  EXPECT_EQ(json, "{\"traceEvents\":[\n\n]}");
#endif
}

}  // namespace
}  // namespace apc
